// The lossy-radio factory floor: the InstaPLC switchover story and the
// PR 3 fault matrix replayed with the device link behind a
// LossyRadioBackend -- an SNR ladder (healthy wire-equivalent radio down
// to below the association floor) crossed with the canonical fault
// scenarios, plus two roaming-storm cells. The headline is how far the
// wired watchdog bound (switchover_cycles + 1) x io_cycle degrades as
// link quality drops, and the acceptance gate is that the degradation
// curve is monotone down the ladder at the default seed.
//
// Modes:
//   --shards <n>      run a single shard count instead of {1, 8}
//   --csv             the per-cell CSV artifact of one run (the exact
//                     byte stream the CI diff gate compares across shard
//                     counts) instead of the rendered table
//   --sweep <k>       k seeded floors through the sweep pool; one
//                     fingerprint row per seed, byte-identical at any
//                     --jobs/--shards combination
//   --metrics <file>  Prometheus dump of the (first) run
//   --trace <file>    Chrome-trace JSON of the (first) run
//   --bench-json <f>  the SNR-ladder degradation curve (worst output gap
//                     vs watchdog bound per rung, per scenario family) as
//                     a JSON benchmark artifact
//   --profile-out <f> write the (first) run's measured cell-rate profile
//   --profile-in <f>  feed a calibration profile back (the SNR ladder is
//                     naturally skewed: dead rungs run far fewer events
//                     than healthy ones); implies the measured-rate
//                     partitioner unless --partitioner prefix
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "net/radio_floor.hpp"
#include "sim/partitioner.hpp"

namespace {

using steelnet::net::RadioCellReport;
using steelnet::net::RadioFloorOptions;
using steelnet::net::RadioFloorResult;

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

steelnet::sim::RateProfile g_profile_in;
bool g_measured = false;

RadioFloorOptions floor_options(std::uint64_t seed, std::size_t shards) {
  RadioFloorOptions opt;
  opt.seed = seed;
  opt.shards = shards;
  if (g_measured) {
    opt.measured_partition = true;
    opt.measured_weights = g_profile_in.weights();
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1);
  if (args.profile_in_path.has_value()) {
    std::ifstream in{*args.profile_in_path};
    if (!in) {
      std::cerr << "tab_radio: cannot read profile '" << *args.profile_in_path
                << "'\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    g_profile_in = sim::RateProfile::parse(text.str());
  }
  g_measured = args.wants_measured_partition();

  // --- SNR-ladder degradation curve -> BENCH_radio.json ---------------------
  if (args.bench_json_path.has_value()) {
    const RadioFloorResult r =
        net::run_radio_floor(floor_options(args.seed, args.shards == 0
                                                          ? 8
                                                          : args.shards));
    const bool monotone = net::degradation_monotone(r);
    if (args.profile_out_path.has_value()) {
      std::ofstream{*args.profile_out_path} << r.profile.to_text();
      std::cout << "wrote " << *args.profile_out_path << "\n";
    }
    std::ofstream out{*args.bench_json_path};
    out << "{\n  \"bench\": \"radio_snr_degradation\",\n"
        << "  \"context\": {\"seed\": " << args.seed
        << ", \"horizon_ns\": " << r.horizon_ns
        << ", \"watchdog_bound_ns\": " << r.watchdog_bound_ns
        << ", \"cells\": " << r.cells.size() << ", \"partitioner\": \""
        << (g_measured ? "measured" : "prefix")
        << "\", \"imbalance_permille\": " << r.imbalance_permille
        << "},\n  \"points\": [\n";
    bool first = true;
    for (const RadioCellReport& c : r.cells) {
      char line[320];
      std::snprintf(line, sizeof(line),
                    "%s    {\"cell\": \"%s\", \"scenario\": \"%s\", "
                    "\"snr_offset_millidb\": %" PRId64
                    ", \"max_output_gap_ns\": %" PRId64
                    ", \"gap_vs_bound_permille\": %" PRId64
                    ", \"drop_permille\": %" PRIu64 ", \"roams\": %" PRIu64
                    "}",
                    first ? "" : ",\n", c.name.c_str(), c.scenario.c_str(),
                    c.snr_offset_millidb, c.max_output_gap_ns,
                    c.max_output_gap_ns * 1000 / r.watchdog_bound_ns,
                    c.drop_permille(), c.roam_events);
      out << line;
      first = false;
    }
    out << "\n  ],\n  \"monotone_degradation\": "
        << (monotone ? "true" : "false")
        << ",\n  \"artifact_fp\": \"" << hex16(r.fingerprint()) << "\"\n}\n";
    std::cout << "wrote " << *args.bench_json_path << "\n";
    if (!monotone) {
      std::cerr << "tab_radio: degradation curve is NOT monotone down the "
                   "SNR ladder\n";
      return 1;
    }
    return 0;
  }

  // --- seed sweep (each task itself sharded) --------------------------------
  if (args.sweep > 0) {
    const std::size_t shards = args.shards == 0 ? 2 : args.shards;
    const auto slots = core::SweepRunner{args.jobs, shards}.run(
        args.sweep, [&](std::size_t i) {
          const RadioFloorResult r =
              net::run_radio_floor(floor_options(args.seed + i, shards));
          std::uint64_t drops = 0;
          std::uint64_t roams = 0;
          std::int64_t worst_gap = 0;
          for (const RadioCellReport& c : r.cells) {
            drops += c.radio_dropped_snr + c.radio_dropped_no_assoc +
                     c.radio_dropped_handoff;
            roams += c.roam_events;
            worst_gap = std::max(worst_gap, c.max_output_gap_ns);
          }
          struct Row {
            std::uint64_t fp, drops, roams;
            std::int64_t worst_gap;
          };
          return Row{r.fingerprint(), drops, roams, worst_gap};
        });
    core::CsvWriter csv(
        {"seed", "fingerprint", "radio_drops", "roams", "worst_gap_ns"});
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].ok()) {
        std::cerr << "tab_radio: sweep seed " << args.seed + i
                  << " failed: " << slots[i].error << "\n";
        return 1;
      }
      const auto& row = *slots[i].value;
      csv.add_row({std::to_string(args.seed + i), hex16(row.fp),
                   std::to_string(row.drops), std::to_string(row.roams),
                   std::to_string(row.worst_gap)});
    }
    csv.print(std::cout);
    return 0;
  }

  // --- table / CSV mode -----------------------------------------------------
  const std::vector<std::size_t> shard_counts =
      args.shards != 0 ? std::vector<std::size_t>{args.shards}
                       : std::vector<std::size_t>{1, 8};
  std::vector<RadioFloorResult> results;
  for (const std::size_t sh : shard_counts) {
    results.push_back(net::run_radio_floor(floor_options(args.seed, sh)));
  }

  if (args.metrics_path.has_value()) {
    std::ofstream{*args.metrics_path} << results.front().to_prometheus();
  }
  if (args.trace_path.has_value()) {
    std::ofstream{*args.trace_path} << results.front().to_chrome_trace();
  }
  if (args.profile_out_path.has_value()) {
    std::ofstream{*args.profile_out_path} << results.front().profile.to_text();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    // Placement diagnostics go to stderr so the CSV byte stream on
    // stdout stays the CI-compared artifact.
    std::cerr << "tab_radio: shards=" << shard_counts[i]
              << " partitioner=" << (g_measured ? "measured" : "prefix")
              << " imbalance_permille=" << results[i].imbalance_permille
              << "\n";
  }

  if (args.csv) {
    // The CI diff-gate artifact: the raw per-cell CSV of the FIRST run.
    std::cout << results.front().to_csv();
    return 0;
  }

  const RadioFloorResult& r = results.front();
  core::TextTable table({"cell", "scenario", "snr_off_db", "gap_ns",
                         "gap/bound", "drop_pm", "roams", "wdt"});
  for (const RadioCellReport& c : r.cells) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(c.max_output_gap_ns) /
                      static_cast<double>(r.watchdog_bound_ns));
    table.add_row({c.name, c.scenario,
                   std::to_string(c.snr_offset_millidb / 1000),
                   std::to_string(c.max_output_gap_ns), ratio,
                   std::to_string(c.drop_permille()),
                   std::to_string(c.roam_events),
                   std::to_string(c.watchdog_trips)});
  }
  table.print(std::cout);

  const bool monotone = net::degradation_monotone(r);
  std::cout << "watchdog bound: " << r.watchdog_bound_ns
            << " ns; degradation down the SNR ladder: "
            << (monotone ? "monotone" : "NOT MONOTONE") << "\n";
  if (!monotone) return 1;

  if (results.size() > 1) {
    const bool identical =
        results.front().fingerprint() == results.back().fingerprint() &&
        results.front().cells == results.back().cells;
    std::cout << "artifacts shards=" << shard_counts.front()
              << " vs shards=" << shard_counts.back() << ": "
              << (identical ? "byte-identical" : "DIVERGED") << "\n";
    if (!identical) return 1;
  }
  return 0;
}
