// Reproduces Fig. 4: "Even minor code changes in an eBPF application
// cause noticeable delays (left), while more real-time flows handled by
// XDP and eBPF increase jitter (right)."
//
// Left panel: delay CDFs of the six reflector variants (1 flow). The
// variants cluster: no-ring-buffer (Base/TS/TS-TS/TS-OW) vs ring-buffer
// (TS-RB/TS-D-RB).
// Right panel: jitter CDF of the Base variant at 1 vs 25 concurrent
// real-time flows.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "tap/reflection.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/42);
  args.warn_obs_unsupported("fig4_traffic_reflection");

  constexpr std::size_t kPackets = 10'000;

  std::cout << "=== Fig. 4 (left): reflection delay per eBPF variant, "
               "1 flow, " << kPackets << " packets ===\n\n";

  std::vector<std::unique_ptr<tap::ReflectionReport>> reports;
  std::vector<core::QuantileSeries> series;
  for (ebpf::ReflectorVariant v : ebpf::all_reflector_variants()) {
    tap::ReflectionConfig cfg;
    cfg.variant = v;
    cfg.packets = kPackets;
    cfg.seed = args.seed;
    reports.push_back(std::make_unique<tap::ReflectionReport>(
        tap::run_traffic_reflection(cfg)));
    series.push_back({reports.back()->variant,
                      &reports.back()->delay_us});
  }
  std::cout << core::quantile_table(series, "us") << '\n';

  std::cout << "delay CDF, no ring buffer (TS-TS):\n"
            << core::ascii_cdf(reports[2]->delay_us, "delay (us)") << '\n';
  std::cout << "delay CDF, ring buffer (TS-RB):\n"
            << core::ascii_cdf(reports[3]->delay_us, "delay (us)") << '\n';

  std::cout << "=== Fig. 4 (right): jitter vs concurrent flows (Base) "
               "===\n\n";
  tap::ReflectionConfig one;
  one.packets = kPackets;
  one.seed = args.seed + 1;
  const auto r1 = tap::run_traffic_reflection(one);
  tap::ReflectionConfig many = one;
  many.flows = 25;
  const auto r25 = tap::run_traffic_reflection(many);

  std::cout << core::quantile_table(
                   {{"1 flow", &r1.jitter_ns}, {"25 flows", &r25.jitter_ns}},
                   "ns")
            << '\n';
  std::cout << "jitter CDF, 1 flow:\n"
            << core::ascii_cdf(r1.jitter_ns, "jitter (ns)") << '\n';
  std::cout << "jitter CDF, 25 flows:\n"
            << core::ascii_cdf(r25.jitter_ns, "jitter (ns)") << '\n';

  std::cout << "paper's shape checks:\n"
            << "  [" << (reports[3]->delay_us.median() >
                                 reports[2]->delay_us.median() + 2.0
                             ? "ok"
                             : "MISMATCH")
            << "] ring-buffer variants form a separate, slower cluster\n"
            << "  [" << (r25.jitter_ns.percentile(99) >
                                 2 * r1.jitter_ns.percentile(99)
                             ? "ok"
                             : "MISMATCH")
            << "] 25 flows raise tail jitter by >2x (toward ~1 us)\n";
  return 0;
}
