// The fault matrix on the InstaPLC testbed: run the canonical fault
// scenarios (silent primary, loss burst, link flap, primary crash, plus
// the flap-shorter-than-watchdog control) through the seed-sweep harness
// and report, per scenario:
//   * whether/when the SDN app switched over and the measured switchover
//     latency against the watchdog bound (cycles+1) x cycle-time,
//   * per-cause drop counters -- which must tile the injected faults
//     exactly (conservation residual 0),
//   * the post-kill delivery count (must be 0),
//   * the run fingerprint, computed twice to prove byte-identical replay.
//
//   --sweep <n>       additionally run n seeded random fault scenarios
//                     (the CI smoke sweep) and report the same invariants
//   --jobs <n>        fan the independent runs out over n worker threads
//                     (default: hardware concurrency); every artifact is
//                     byte-identical to the --jobs 1 sequential loop
//   --csv             machine-readable rows instead of the rendered table
//   --trace <file>    Chrome-trace JSON of the silent-primary run
//   --metrics <file>  Prometheus dump of the silent-primary run
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "faults/scenario_runner.hpp"

namespace {

using steelnet::faults::ScenarioOutcome;

struct Row {
  ScenarioOutcome out;
  bool deterministic = false;
};

std::string us(steelnet::sim::SimTime t) {
  return std::to_string(t.nanos() / 1000) + "us";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1);

  faults::RunnerOptions opts;
  opts.keep_exports = args.trace_path.has_value() ||
                      args.metrics_path.has_value();
  const faults::ScenarioRunner runner{opts};

  std::vector<faults::FaultScenario> scenarios =
      faults::canonical_scenarios(args.seed);
  scenarios.push_back(faults::short_flap_scenario(args.seed));
  for (std::uint64_t i = 0; i < args.sweep; ++i) {
    scenarios.push_back(faults::random_scenario(args.seed + i));
  }

  // Every (scenario, replay) pair is an independent single-threaded
  // simulation; fan them out and reduce in scenario order, so the rows --
  // and with them every CSV/trace/metrics artifact -- are byte-identical
  // at any --jobs value.
  const auto slots =
      core::SweepRunner{args.jobs}.run(scenarios.size(), [&](std::size_t i) {
        Row row;
        row.out = runner.run(scenarios[i]);
        // Replay with the same seed: the whole outcome -- obs exports
        // included -- must be byte-identical.
        row.deterministic =
            runner.run(scenarios[i]).fingerprint() == row.out.fingerprint();
        return row;
      });

  std::vector<Row> rows;
  rows.reserve(scenarios.size());
  std::string trace_json;
  std::string metrics_prom;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].ok()) {
      std::cerr << "tab_faults: scenario '" << scenarios[i].name
                << "' (seed " << scenarios[i].seed
                << ") failed: " << slots[i].error << "\n";
      return 1;
    }
    Row row = *slots[i].value;
    if (opts.keep_exports && trace_json.empty()) {
      trace_json = row.out.trace_json;
      metrics_prom = row.out.metrics_prom;
    }
    rows.push_back(std::move(row));
  }

  const sim::SimTime bound = faults::switchover_bound(opts);

  if (args.csv) {
    std::cout << "scenario,seed,switched_over,switchover_at_ns,"
                 "switchover_latency_ns,bound_ns,max_output_gap_ns,"
                 "watchdog_trips,dropped_link_down,dropped_loss,"
                 "dropped_sender_down,dropped_receiver_down,suppressed_tx,"
                 "suppressed_rx,corrupted,duplicated,reordered,jittered,"
                 "residual,post_kill_deliveries,deterministic,fingerprint\n";
    for (const Row& r : rows) {
      const ScenarioOutcome& o = r.out;
      std::cout << o.scenario << ',' << o.seed << ','
                << (o.switched_over ? 1 : 0) << ','
                << o.switchover_at.nanos() << ','
                << o.switchover_latency.nanos() << ',' << bound.nanos() << ','
                << o.max_output_gap.nanos() << ',' << o.device_watchdog_trips
                << ',' << o.faults.dropped_link_down << ','
                << o.faults.dropped_loss << ','
                << o.faults.dropped_sender_down << ','
                << o.faults.dropped_receiver_down << ','
                << o.faults.suppressed_tx << ',' << o.faults.suppressed_rx
                << ',' << o.faults.corrupted << ',' << o.faults.duplicated
                << ',' << o.faults.reordered << ',' << o.faults.jittered
                << ',' << o.residual << ',' << o.post_kill_deliveries << ','
                << (r.deterministic ? 1 : 0) << ',' << o.fingerprint()
                << '\n';
    }
    return 0;
  }

  std::cout << "=== fault matrix: switchover latency and drop accounting "
               "(seed " << args.seed << ") ===\n\n";
  core::TextTable table({"scenario", "switchover", "latency", "bound",
                         "max gap", "trips", "wire drops", "residual",
                         "post-kill", "replay"});
  for (const Row& r : rows) {
    const ScenarioOutcome& o = r.out;
    table.add_row(
        {o.scenario,
         o.switched_over ? "at " + us(o.switchover_at) : "none",
         o.switched_over ? us(o.switchover_latency) : "-", us(bound),
         us(o.max_output_gap), std::to_string(o.device_watchdog_trips),
         std::to_string(o.faults.wire_drops()), std::to_string(o.residual),
         std::to_string(o.post_kill_deliveries),
         r.deterministic ? "identical" : "DIVERGED"});
  }
  table.print(std::cout);

  std::cout << "\ndrop causes per scenario:\n";
  core::TextTable drops({"scenario", "link_down", "loss", "sender_down",
                         "receiver_down", "suppressed", "corrupt", "dup",
                         "reorder", "jitter"});
  for (const Row& r : rows) {
    const auto& f = r.out.faults;
    drops.add_row({r.out.scenario, std::to_string(f.dropped_link_down),
                   std::to_string(f.dropped_loss),
                   std::to_string(f.dropped_sender_down),
                   std::to_string(f.dropped_receiver_down),
                   std::to_string(f.suppressed_tx + f.suppressed_rx),
                   std::to_string(f.corrupted), std::to_string(f.duplicated),
                   std::to_string(f.reordered), std::to_string(f.jittered)});
  }
  drops.print(std::cout);

  bool conserved = true;
  bool no_leaks = true;
  bool replayed = true;
  bool bounded = true;
  int switchovers = 0;
  for (const Row& r : rows) {
    conserved &= r.out.residual == 0;
    no_leaks &= r.out.post_kill_deliveries == 0;
    replayed &= r.deterministic;
    if (r.out.switched_over) {
      ++switchovers;
      bounded &= r.out.switchover_latency <= bound;
    }
  }
  std::cout << "\nshape checks:\n"
            << "  [" << (conserved ? "ok" : "MISMATCH")
            << "] per-cause drop counters tile injected faults exactly "
               "(residual 0 everywhere)\n"
            << "  [" << (no_leaks ? "ok" : "MISMATCH")
            << "] no frame created after a kill was ever delivered\n"
            << "  [" << (bounded && switchovers >= 3 ? "ok" : "MISMATCH")
            << "] every switchover landed within the watchdog bound "
            << us(bound) << " (" << switchovers << " switchovers)\n"
            << "  [" << (replayed ? "ok" : "MISMATCH")
            << "] every scenario replays byte-identically from its seed\n";

  if (args.trace_path) {
    std::ofstream os(*args.trace_path, std::ios::binary);
    if (!os) {
      std::cerr << "tab_faults: cannot open " << *args.trace_path << "\n";
      return 1;
    }
    os << trace_json;
    std::cout << "\nwrote Chrome-trace JSON to " << *args.trace_path << "\n";
  }
  if (args.metrics_path) {
    std::ofstream os(*args.metrics_path, std::ios::binary);
    if (!os) {
      std::cerr << "tab_faults: cannot open " << *args.metrics_path << "\n";
      return 1;
    }
    os << metrics_prom;
    std::cout << "wrote Prometheus metrics to " << *args.metrics_path << "\n";
  }
  return conserved && no_leaks && replayed && bounded ? 0 : 1;
}
