// Fleet-scale vPLC orchestration: place a >= 1000-controller fleet on a
// >= 50-node leaf-spine data center and drive it through the three
// tab_orch experiments:
//
//   * rolling upgrade -- drain/reboot every compute node; a gentle grace
//     upgrades the fleet through make-before-break handovers (zero
//     control gaps), an aggressive grace reboots stragglers out from
//     under their vPLCs and every resulting gap lands in the accounted
//     SLO ledger;
//   * rack-failure storm ladder -- crash 1/2/4/8 hosts of one rack at the
//     same instant and watch the switchover-latency distribution broaden
//     against the (watchdog_heartbeats + 1) x heartbeat_period bound as
//     per-node activation queues fill;
//   * placement ablation -- bin-packing vs latency-aware under identical
//     fleets: rack-locality, load spread, and what a rack-0 storm costs a
//     consolidated fleet vs a spread one.
//
// Every run is accounted: failovers_started == switchovers +
// currently_down (residual 0), switchovers_within_bound + slo_violations
// == switchovers, frame conservation residual 0, and every run is
// executed twice to prove byte-identical replay.
//
//   --sweep <n>       additionally run n seeded rack-failure storms (the
//                     CI smoke sweep) under the same invariants
//   --jobs <n>        fan independent runs over n workers (default:
//                     hardware concurrency); every artifact is
//                     byte-identical to --jobs 1
//   --csv             machine-readable rows instead of rendered tables
//   --metrics <file>  Prometheus dump of the full-rack storm run
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "orch/orch_runner.hpp"

namespace {

using steelnet::orch::OrchConfig;
using steelnet::orch::OrchOutcome;
using steelnet::orch::OrchScenario;
using steelnet::orch::PolicyKind;

struct Row {
  std::string label;
  OrchOutcome out;
  bool deterministic = false;
};

std::string fmt_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fus", us);
  return buf;
}

std::string fmt_frac(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", f);
  return buf;
}

OrchConfig base_config(std::uint64_t seed) {
  OrchConfig cfg;
  cfg.seed = seed;
  return cfg;  // defaults: 8 racks x 8 nodes, 1024 vPLCs, 2 s horizon
}

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1);
  if (args.trace_path.has_value()) {
    std::cerr << "tab_orch: placement traces are CSV, not Chrome-trace; "
                 "--trace ignored\n";
  }

  struct Plan {
    std::string label;
    OrchConfig cfg;
  };
  std::vector<Plan> plans;
  auto add = [&](std::string label, OrchScenario sc, PolicyKind pol,
                 std::uint32_t storm, std::uint32_t victim) {
    OrchConfig cfg = base_config(args.seed);
    cfg.scenario = sc;
    cfg.policy = pol;
    cfg.storm_nodes = storm;
    cfg.victim_rack = victim;
    plans.push_back({std::move(label), cfg});
  };
  add("steady/latency", OrchScenario::kSteady, PolicyKind::kLatencyAware, 0,
      orch::kNoRack);
  add("steady/binpack", OrchScenario::kSteady, PolicyKind::kBinPack, 0,
      orch::kNoRack);
  add("upgrade-gentle", OrchScenario::kRollingUpgrade,
      PolicyKind::kLatencyAware, 0, orch::kNoRack);
  add("upgrade-aggressive", OrchScenario::kRollingAggressive,
      PolicyKind::kLatencyAware, 0, orch::kNoRack);
  for (const std::uint32_t storm : {1u, 2u, 4u, 8u}) {
    add("storm-" + std::to_string(storm) + "/latency",
        OrchScenario::kRackFailure, PolicyKind::kLatencyAware, storm, 0);
  }
  add("storm-8/binpack", OrchScenario::kRackFailure, PolicyKind::kBinPack, 8,
      0);
  // The --metrics artifact rides the full-rack latency-aware storm.
  const std::size_t metrics_plan = 7;  // storm-8/latency
  if (args.metrics_path.has_value()) {
    plans[metrics_plan].cfg.keep_exports = true;
  }
  const std::size_t canonical = plans.size();
  for (std::uint64_t i = 0; i < args.sweep; ++i) {
    OrchConfig cfg = base_config(args.seed + i);
    cfg.scenario = OrchScenario::kRackFailure;
    cfg.storm_nodes = 8;  // victim rack drawn from the seed's storm stream
    plans.push_back({"sweep-" + std::to_string(args.seed + i), cfg});
  }

  // Every (plan, replay) pair is an independent single-threaded
  // simulation; fan them out and reduce in plan order, so all artifacts
  // are byte-identical at any --jobs value.
  const auto slots =
      core::SweepRunner{args.jobs}.run(plans.size(), [&](std::size_t i) {
        Row row;
        row.label = plans[i].label;
        row.out = orch::OrchRunner::run(plans[i].cfg);
        row.deterministic = orch::OrchRunner::run(plans[i].cfg).fingerprint() ==
                            row.out.fingerprint();
        return row;
      });

  std::vector<Row> rows;
  rows.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].ok()) {
      std::cerr << "tab_orch: plan '" << plans[i].label
                << "' failed: " << slots[i].error << "\n";
      return 1;
    }
    rows.push_back(*slots[i].value);
  }

  if (args.csv) {
    std::cout << "run,scenario,policy,seed,nodes,vplcs,placements,migrations,"
                 "failovers,switchovers,within_bound,slo_violations,"
                 "violations_queue,violations_cold,graceful_handovers,"
                 "cold_restarts,queue_peak,bound_ns,lat_count,lat_mean_us,"
                 "lat_p50_us,lat_p99_us,lat_max_us,availability,"
                 "rack_local,util_spread,down_now,residual,net_residual,"
                 "deterministic,fingerprint\n";
    for (const Row& r : rows) {
      const OrchOutcome& o = r.out;
      std::cout << r.label << ',' << o.scenario << ',' << o.policy << ','
                << o.seed << ',' << o.compute_nodes << ',' << o.vplcs_placed
                << ',' << o.fleet.placements << ',' << o.fleet.migrations
                << ',' << o.fleet.failovers_started << ','
                << o.fleet.switchovers << ','
                << o.fleet.switchovers_within_bound << ','
                << o.fleet.slo_violations << ','
                << o.fleet.violations_activation_queue << ','
                << o.fleet.violations_cold << ','
                << o.fleet.graceful_handovers << ',' << o.fleet.cold_restarts
                << ',' << o.fleet.activation_queue_peak << ','
                << o.watchdog_bound_ns << ',' << o.latency_count << ','
                << o.latency_mean_us << ',' << o.latency_p50_us << ','
                << o.latency_p99_us << ',' << o.latency_max_us << ','
                << o.availability << ',' << o.rack_local_fraction << ','
                << o.utilization_spread << ',' << o.currently_down << ','
                << o.ledger_residual << ',' << o.conservation_residual << ','
                << (r.deterministic ? 1 : 0) << ',' << o.fingerprint()
                << '\n';
    }
  } else {
    std::cout << "=== fleet orchestration: " << rows[0].out.vplcs_placed
              << " vPLCs on " << rows[0].out.compute_nodes
              << " nodes, watchdog bound "
              << fmt_us(static_cast<double>(rows[0].out.watchdog_bound_ns) /
                        1e3)
              << " (seed " << args.seed << ") ===\n\n";
    core::TextTable table({"run", "failovers", "switch", "in-bound", "viol",
                           "handover", "cold", "queue", "p50", "p99", "max",
                           "avail", "replay"});
    for (std::size_t i = 0; i < canonical; ++i) {
      const OrchOutcome& o = rows[i].out;
      table.add_row(
          {rows[i].label, std::to_string(o.fleet.failovers_started),
           std::to_string(o.fleet.switchovers),
           std::to_string(o.fleet.switchovers_within_bound),
           std::to_string(o.fleet.slo_violations),
           std::to_string(o.fleet.graceful_handovers),
           std::to_string(o.fleet.cold_restarts),
           std::to_string(o.fleet.activation_queue_peak),
           o.latency_count ? fmt_us(o.latency_p50_us) : "-",
           o.latency_count ? fmt_us(o.latency_p99_us) : "-",
           o.latency_count ? fmt_us(o.latency_max_us) : "-",
           fmt_frac(o.availability),
           rows[i].deterministic ? "identical" : "DIVERGED"});
    }
    table.print(std::cout);

    std::cout << "\nplacement ablation (steady fleet):\n";
    core::TextTable ab({"policy", "rack-local", "util max/mean",
                        "storm-8 switchovers", "storm-8 viol",
                        "storm-8 p99"});
    const OrchOutcome& lat_steady = rows[0].out;
    const OrchOutcome& bp_steady = rows[1].out;
    const OrchOutcome& lat_storm = rows[7].out;
    const OrchOutcome& bp_storm = rows[8].out;
    ab.add_row({"latency", fmt_frac(lat_steady.rack_local_fraction),
                fmt_frac(lat_steady.utilization_spread),
                std::to_string(lat_storm.fleet.switchovers),
                std::to_string(lat_storm.fleet.slo_violations),
                lat_storm.latency_count ? fmt_us(lat_storm.latency_p99_us)
                                        : "-"});
    ab.add_row({"binpack", fmt_frac(bp_steady.rack_local_fraction),
                fmt_frac(bp_steady.utilization_spread),
                std::to_string(bp_storm.fleet.switchovers),
                std::to_string(bp_storm.fleet.slo_violations),
                bp_storm.latency_count ? fmt_us(bp_storm.latency_p99_us)
                                       : "-"});
    ab.print(std::cout);
  }

  // --- shape checks (the exit code) ----------------------------------------
  bool scale_ok = true;
  bool accounted = true;
  bool replayed = true;
  bool settled = true;
  for (const Row& r : rows) {
    const OrchOutcome& o = r.out;
    scale_ok &= o.place_error.empty() && o.compute_nodes >= 50 &&
                o.vplcs_placed >= 1000;
    accounted &= o.ledger_residual == 0 && o.conservation_residual == 0 &&
                 o.fleet.switchovers_within_bound + o.fleet.slo_violations ==
                     o.fleet.switchovers;
    // Classification consistency: a violation-free run's worst gap fits
    // the bound.
    if (o.fleet.slo_violations == 0 && o.latency_count > 0) {
      accounted &= o.latency_max_us * 1e3 <=
                   static_cast<double>(o.watchdog_bound_ns);
    }
    replayed &= r.deterministic;
    if (o.scenario == "rack-failure") settled &= o.currently_down == 0;
  }
  const OrchOutcome& steady_lat = rows[0].out;
  const OrchOutcome& steady_bp = rows[1].out;
  const bool steady_quiet = steady_lat.fleet.failovers_started == 0 &&
                            steady_bp.fleet.failovers_started == 0 &&
                            steady_lat.availability == 1.0;
  const OrchOutcome& gentle = rows[2].out;
  const OrchOutcome& aggressive = rows[3].out;
  const bool upgraded =
      gentle.fleet.graceful_handovers > 0 &&
      gentle.fleet.nodes_rejoined == gentle.compute_nodes &&
      aggressive.fleet.nodes_rejoined == aggressive.compute_nodes &&
      aggressive.fleet.failovers_started > 0;
  const bool ladder = rows[7].out.fleet.switchovers >=
                      rows[4].out.fleet.switchovers;
  const bool ablation =
      steady_lat.rack_local_fraction >= 0.9 &&
      steady_bp.rack_local_fraction <= 0.5 &&
      steady_bp.utilization_spread > steady_lat.utilization_spread;

  // In CSV mode the checks still gate the exit code but report on stderr,
  // keeping the stdout artifact machine-parseable.
  std::ostream& rep = args.csv ? std::cerr : std::cout;
  rep << "\nshape checks:\n"
            << "  [" << (scale_ok ? "ok" : "MISMATCH")
            << "] every run placed >= 1000 vPLCs on >= 50 compute nodes\n"
            << "  [" << (accounted ? "ok" : "MISMATCH")
            << "] SLO ledger closed: failovers == switchovers + down, "
               "in-bound + violations == switchovers, frame residual 0\n"
            << "  [" << (steady_quiet ? "ok" : "MISMATCH")
            << "] steady fleet: zero failovers, availability 1.0\n"
            << "  [" << (upgraded ? "ok" : "MISMATCH")
            << "] rolling upgrades: gentle hands over gracefully, "
               "aggressive produces real accounted failovers, all nodes "
               "rejoin\n"
            << "  [" << (settled && ladder ? "ok" : "MISMATCH")
            << "] storm ladder: wider storms switch more vPLCs over and "
               "every storm settles (none left down)\n"
            << "  [" << (ablation ? "ok" : "MISMATCH")
            << "] ablation: latency-aware keeps rack locality, bin-packing "
               "consolidates (higher util spread)\n"
            << "  [" << (replayed ? "ok" : "MISMATCH")
            << "] every run replays byte-identically from its seed\n";

  if (args.metrics_path) {
    std::ofstream os(*args.metrics_path, std::ios::binary);
    if (!os) {
      std::cerr << "tab_orch: cannot open " << *args.metrics_path << "\n";
      return 1;
    }
    os << rows[metrics_plan].out.metrics_prom;
    std::cout << "wrote Prometheus metrics to " << *args.metrics_path << "\n";
  }

  return scale_ok && accounted && replayed && settled && steady_quiet &&
                 upgraded && ladder && ablation
             ? 0
             : 1;
}
