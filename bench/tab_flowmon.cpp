// The flowmon telemetry pipeline end to end: meters the §2.3 measured
// workload in-network, then reports what the collector saw -- per-flow
// table (top talkers), metering/export/collector counters, and the golden
// fingerprint that pins determinism. `--csv` dumps every measured flow as
// CSV instead (machine-readable companion to the table).
#include <cstdio>
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "flowmon/mix_scenario.hpp"
#include "flowmon/report.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/7);
  args.warn_obs_unsupported("tab_flowmon");

  flowmon::MeasuredMixSpec spec;
  spec.seed = args.seed;
  const auto result = flowmon::run_measured_mix(spec);

  if (args.csv) {
    std::cout << flowmon::flows_csv(result.flows);
    return 0;
  }

  std::cout << "=== flowmon: in-network flow telemetry over the measured "
               "§2.3 workload ===\n\n";
  std::cout << "meter:     " << result.meter.frames_seen << " frames seen, "
            << result.meter.records_exported << " records exported in "
            << result.meter.export_frames << " frames ("
            << result.meter.idle_expired << " idle-expired, "
            << result.meter.active_checkpoints << " checkpoints, "
            << result.meter.flushed << " flushed)\n";
  std::cout << "cache:     " << result.cache.lookups << " lookups, "
            << result.cache.hits << " hits, " << result.cache.inserts
            << " inserts, " << result.cache.erased << " erased, "
            << result.cache.probes << " probe steps, "
            << result.cache.dropped_full << " dropped at load cap\n";
  std::cout << "collector: " << result.collector.messages << " messages, "
            << result.collector.records << " records, "
            << result.collector.templates_learned << " templates, "
            << result.collector.lost_records << " lost, "
            << result.collector.malformed << " malformed\n";
  std::cout << "flows:     " << result.flows.size() << " measured (of "
            << result.flows_offered << " offered)\n";

  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(result.fingerprint));
  std::cout << "golden fingerprint: " << fp << "\n\n";

  std::cout << "top flows by bytes:\n"
            << flowmon::flows_table(result.flows, 15);
  std::cout << "\n(run with --csv for all "
            << result.flows.size() << " flows as CSV)\n";
  return 0;
}
