// The flowmon telemetry pipeline end to end: meters the §2.3 measured
// workload in-network, then reports what the collector saw -- per-flow
// table (top talkers), metering/export/collector counters, and the golden
// fingerprint that pins determinism -- followed by the two-tier collector
// federation (cell meters -> cell collectors -> plant collector over the
// simulated fabric) with its per-tier record-conservation table.
// `--csv` dumps the measured flows and the federation rows as CSV instead.
//
// `--bench-json <file>` (optionally with `--scale <n>` to cap the curve)
// switches to the FlowCache scaling bench: insert/expire throughput vs
// live-flow count for the legacy scan sweep vs the timer-wheel engine,
// with the expiry order fingerprint-pinned byte-identical across engines.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "flowmon/federation.hpp"
#include "flowmon/flow_cache.hpp"
#include "flowmon/mix_scenario.hpp"
#include "flowmon/report.hpp"

namespace {

using namespace steelnet;

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// --- FlowCache scaling curve ------------------------------------------

struct CachePoint {
  const char* engine;
  std::uint64_t live_flows = 0;
  double insert_per_s = 0.0;
  double expire_per_s = 0.0;
  std::uint64_t sweeps = 0;
  std::uint64_t wheel_fires = 0;
  std::uint64_t wheel_rearms = 0;
  std::uint64_t expiry_order_fp = 0;
};

constexpr std::int64_t kSpreadNs = 60'000'000'000;  // arrivals over 60 s
constexpr std::int64_t kIdleMs = 500;
constexpr std::int64_t kSweepStepMs = 100;

/// One curve point: fill the cache with `n` single-packet flows whose
/// arrivals are spread over 20 s of sim time, then sweep every 100 ms of
/// sim time until empty. Wall-clock timed; the expiry *order* is folded
/// into an FNV fingerprint that must match between engines.
CachePoint run_cache_point(flowmon::ExpiryEngine engine, std::uint64_t n) {
  flowmon::FlowCacheConfig cfg;
  cfg.capacity = static_cast<std::size_t>(n + n / 2);  // stay under load cap
  cfg.idle_timeout = sim::milliseconds(kIdleMs);
  cfg.active_timeout = sim::seconds(3600);  // idle-only expiry
  cfg.engine = engine;
  cfg.wheel_tick = sim::milliseconds(kSweepStepMs);
  flowmon::FlowCache cache{cfg};

  net::Frame frame;
  frame.dst = net::MacAddress{0x5d'0000'000001ULL};
  frame.ethertype = net::EtherType::kIpv4;
  frame.payload.assign(64, 0);

  const auto insert_t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    frame.src = net::MacAddress{0x5a'0000'000000ULL + i};
    const sim::SimTime at{static_cast<std::int64_t>(i) * kSpreadNs /
                          static_cast<std::int64_t>(n)};
    cache.record(frame, at);
  }
  const double insert_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    insert_t0)
          .count();

  CachePoint point;
  point.engine = engine == flowmon::ExpiryEngine::kWheel ? "wheel" : "scan";
  point.live_flows = cache.size();
  point.insert_per_s = insert_s > 0.0 ? double(n) / insert_s : 0.0;

  std::uint64_t fp = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&fp](std::uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ULL;
  };
  const auto expire_t0 = std::chrono::steady_clock::now();
  sim::SimTime t = sim::milliseconds(kIdleMs);
  while (cache.size() != 0) {
    cache.sweep(t, [&](const flowmon::FlowRecord& r, flowmon::EndReason) {
      mix(r.key.src.bits());
    });
    t = t + sim::milliseconds(kSweepStepMs);
    ++point.sweeps;
  }
  const double expire_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    expire_t0)
          .count();
  point.expire_per_s = expire_s > 0.0 ? double(n) / expire_s : 0.0;
  point.wheel_fires = cache.stats().wheel_fires;
  point.wheel_rearms = cache.stats().wheel_rearms;
  point.expiry_order_fp = fp;
  return point;
}

int run_cache_scaling(const bench::BenchArgs& args) {
  std::vector<std::uint64_t> sizes{10'000, 100'000, 1'000'000, 10'000'000};
  if (args.scale != 0) {
    std::erase_if(sizes, [&](std::uint64_t n) { return n > args.scale; });
    if (sizes.empty() || sizes.back() != args.scale)
      sizes.push_back(args.scale);
  }

  std::cout << "=== flowmon: FlowCache expiry scaling, scan vs timer wheel "
               "===\n\n";
  core::TextTable table({"live flows", "engine", "insert/s", "expire/s",
                         "sweeps", "wheel fires", "re-arms",
                         "expire speedup"});
  struct Pair {
    CachePoint scan, wheel;
  };
  std::vector<Pair> pairs;
  bool fp_ok = true;
  for (const std::uint64_t n : sizes) {
    Pair p{run_cache_point(flowmon::ExpiryEngine::kScan, n),
           run_cache_point(flowmon::ExpiryEngine::kWheel, n)};
    if (p.scan.expiry_order_fp != p.wheel.expiry_order_fp) fp_ok = false;
    const double speedup = p.scan.expire_per_s > 0.0
                               ? p.wheel.expire_per_s / p.scan.expire_per_s
                               : 0.0;
    for (const CachePoint* cp : {&p.scan, &p.wheel}) {
      table.add_row({std::to_string(cp->live_flows), cp->engine,
                     core::TextTable::num(cp->insert_per_s),
                     core::TextTable::num(cp->expire_per_s),
                     std::to_string(cp->sweeps),
                     std::to_string(cp->wheel_fires),
                     std::to_string(cp->wheel_rearms),
                     cp == &p.wheel ? core::TextTable::num(speedup) : "-"});
    }
    pairs.push_back(p);
  }
  std::cout << table.to_string();
  std::cout << "\nexpiry order: "
            << (fp_ok ? "byte-identical across engines (fingerprints match)"
                      : "MISMATCH between engines")
            << "\n";

  if (args.bench_json_path.has_value()) {
    std::ofstream out{*args.bench_json_path};
    out << "{\n  \"bench\": \"flowmon_cache_scaling\",\n"
        << "  \"context\": {\"arrival_spread_s\": "
        << kSpreadNs / 1'000'000'000 << ", \"idle_timeout_ms\": "
        << kIdleMs << ", \"sweep_interval_ms\": " << kSweepStepMs
        << ", \"wheel_tick_ms\": " << kSweepStepMs << "},\n"
        << "  \"points\": [\n";
    bool first = true;
    for (const Pair& p : pairs) {
      for (const CachePoint* cp : {&p.scan, &p.wheel}) {
        if (!first) out << ",\n";
        first = false;
        char line[512];
        std::snprintf(line, sizeof line,
                      "    {\"engine\": \"%s\", \"live_flows\": %llu, "
                      "\"insert_per_s\": %.1f, \"expire_per_s\": %.1f, "
                      "\"sweeps\": %llu, \"wheel_fires\": %llu, "
                      "\"wheel_rearms\": %llu, \"expiry_order_fp\": \"%s\"}",
                      cp->engine,
                      static_cast<unsigned long long>(cp->live_flows),
                      cp->insert_per_s, cp->expire_per_s,
                      static_cast<unsigned long long>(cp->sweeps),
                      static_cast<unsigned long long>(cp->wheel_fires),
                      static_cast<unsigned long long>(cp->wheel_rearms),
                      hex16(cp->expiry_order_fp).c_str());
        out << line;
      }
    }
    out << "\n  ],\n  \"speedup_expire\": {";
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const double speedup =
          pairs[i].scan.expire_per_s > 0.0
              ? pairs[i].wheel.expire_per_s / pairs[i].scan.expire_per_s
              : 0.0;
      char line[96];
      std::snprintf(line, sizeof line, "%s\"%llu\": %.2f",
                    i == 0 ? "" : ", ",
                    static_cast<unsigned long long>(
                        pairs[i].scan.live_flows),
                    speedup);
      out << line;
    }
    out << "},\n  \"expiry_order_identical\": "
        << (fp_ok ? "true" : "false") << "\n}\n";
    std::cout << "wrote " << *args.bench_json_path << "\n";
  }
  return fp_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/7);
  if (args.trace_path.has_value()) {
    std::cerr << "tab_flowmon: no frame tracing here; --trace ignored\n";
  }

  // Scaling-curve mode replaces the pipeline run entirely.
  if (args.bench_json_path.has_value() || args.scale != 0) {
    return run_cache_scaling(args);
  }

  flowmon::MeasuredMixSpec spec;
  spec.seed = args.seed;
  const auto result = flowmon::run_measured_mix(spec);

  flowmon::FederationSpec fed_spec;
  fed_spec.seed = args.seed;
  const auto fed = flowmon::run_federation(fed_spec);

  if (args.metrics_path.has_value()) {
    std::ofstream out{*args.metrics_path};
    out << fed.metrics_prom;
  }

  if (args.csv) {
    std::cout << flowmon::flows_csv(result.flows) << "\n"
              << flowmon::federation_csv(fed);
    return fed.cell_conservation_ok && fed.plant_conservation_ok ? 0 : 1;
  }

  std::cout << "=== flowmon: in-network flow telemetry over the measured "
               "§2.3 workload ===\n\n";
  std::cout << "meter:     " << result.meter.frames_seen << " frames seen, "
            << result.meter.records_exported << " records exported in "
            << result.meter.export_frames << " frames ("
            << result.meter.idle_expired << " idle-expired, "
            << result.meter.active_checkpoints << " checkpoints, "
            << result.meter.flushed << " flushed)\n";
  std::cout << "cache:     " << result.cache.lookups << " lookups, "
            << result.cache.hits << " hits, " << result.cache.inserts
            << " inserts, " << result.cache.erased << " erased, "
            << result.cache.probes << " probe steps, "
            << result.cache.dropped_full << " dropped at load cap\n";
  std::cout << "collector: " << result.collector.messages << " messages, "
            << result.collector.records << " records, "
            << result.collector.templates_learned << " templates, "
            << result.collector.lost_records << " lost, "
            << result.collector.malformed << " malformed\n";
  std::cout << "flows:     " << result.flows.size() << " measured (of "
            << result.flows_offered << " offered)\n";
  std::cout << "golden fingerprint: " << hex16(result.fingerprint) << "\n\n";

  std::cout << "top flows by bytes:\n"
            << flowmon::flows_table(result.flows, 15);

  std::uint64_t meter_exports = 0, cell_received = 0, cell_lost = 0,
                reexported = 0;
  for (const flowmon::TierRow& row : fed.cells) {
    meter_exports += row.offered;
    cell_received += row.received;
    cell_lost += row.lost;
    reexported += row.reexported;
  }
  std::cout << "\n=== collector federation: cell meters -> cell collectors "
               "-> plant (RFC 7011 on the wire) ===\n\n"
            << flowmon::federation_table(fed);
  std::cout << "\nconservation: meter exports (" << meter_exports
            << ") == cell received (" << cell_received << ") + cell lost ("
            << cell_lost << ")  ["
            << (fed.cell_conservation_ok ? "OK" : "VIOLATED") << "]\n"
            << "              cell re-exports (" << reexported
            << ") == plant received (" << fed.plant.received
            << ") + plant lost (" << fed.plant.lost << ")  ["
            << (fed.plant_conservation_ok ? "OK" : "VIOLATED") << "]\n";
  std::cout << "plant fingerprint: " << hex16(fed.plant_fingerprint)
            << "  (" << fed.frames_sent << " workload frames offered, "
            << fed.cell_flows_total << " flows tracked across cells)\n";

  std::cout << "\n(run with --csv for the full flow + federation CSVs; "
               "--bench-json <file> for the cache-scaling curve)\n";
  return fed.cell_conservation_ok && fed.plant_conservation_ok ? 0 : 1;
}
