// Reproduces Fig. 6: "ML-aware topologies achieve the lowest latency for
// both defect detection and object identification compared to traditional
// IT and OT networks."
//
// Median inference latency vs number of clients (32/64/128/256) for the
// classic industrial Ring, an IT Leaf-Spine, and the traffic-aware
// ML-aware design, for both applications.
#include <iostream>
#include <map>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "mlnet/inference.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1234);
  args.warn_obs_unsupported("fig6_ml_topology");

  const std::vector<std::size_t> client_counts{32, 64, 128, 256};

  for (mlnet::MlApp app : mlnet::all_ml_apps()) {
    std::cout << "=== Fig. 6: " << mlnet::to_string(app)
              << " -- median latency (ms) vs clients ===\n\n";
    core::TextTable table({"clients", "Ring", "Leaf Spine", "ML-aware",
                           "p99 Ring", "p99 Leaf Spine", "p99 ML-aware"});
    std::map<std::pair<int, std::size_t>, double> medians;
    for (std::size_t n : client_counts) {
      std::vector<std::string> row{std::to_string(n)};
      std::vector<std::string> p99s;
      for (mlnet::TopologyKind k : mlnet::all_topologies()) {
        mlnet::InferenceConfig cfg;
        cfg.topology = k;
        cfg.app = app;
        cfg.clients = n;
        cfg.duration = 2_s;
        cfg.seed = args.seed + n;
        const auto r = mlnet::run_inference_experiment(cfg);
        medians[{int(k), n}] = r.latency_ms.median();
        row.push_back(core::TextTable::num(r.latency_ms.median(), 3));
        p99s.push_back(core::TextTable::num(r.latency_ms.percentile(99), 3));
      }
      for (auto& p : p99s) row.push_back(std::move(p));
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    bool ordering_ok = true;
    for (std::size_t n : client_counts) {
      const double ring = medians[{int(mlnet::TopologyKind::kRing), n}];
      const double ls = medians[{int(mlnet::TopologyKind::kLeafSpine), n}];
      const double ml = medians[{int(mlnet::TopologyKind::kMlAware), n}];
      if (!(ml < ls && ls < ring)) ordering_ok = false;
    }
    std::cout << "\npaper's shape check: ["
              << (ordering_ok ? "ok" : "MISMATCH")
              << "] ML-aware < Leaf Spine < Ring at every client count\n\n";
  }

  // Infrastructure-cost context (the §5 "aligns inference accuracy with
  // infrastructure cost" point).
  std::cout << "=== infrastructure (256 clients, defect detection) ===\n\n";
  core::TextTable infra({"topology", "switches", "servers",
                         "frame bytes @0.95 acc"});
  for (mlnet::TopologyKind k : mlnet::all_topologies()) {
    mlnet::InferenceConfig cfg;
    cfg.topology = k;
    cfg.app = mlnet::MlApp::kDefectDetection;
    cfg.clients = 256;
    cfg.duration = 200_ms;  // just to build + sample
    const auto r = mlnet::run_inference_experiment(cfg);
    infra.add_row({r.topology, std::to_string(r.switches),
                   std::to_string(r.servers),
                   std::to_string(r.frame_bytes)});
  }
  infra.print(std::cout);
  return 0;
}
