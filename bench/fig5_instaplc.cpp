// Reproduces Fig. 5: "When the primary controller (vPLC1) for an I/O
// device fails, InstaPLC detects this, and dynamically switches to a
// backup controller (vPLC2). As a result, the I/O device remains
// controlled."
//
// (a) packets per 50 ms sent by vPLC1 and vPLC2; vPLC1 stops at t=1.5 s.
// (b) packets per 50 ms arriving at the I/O device: constant through the
//     switchover.
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "instaplc/instaplc.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv);
  args.warn_obs_unsupported("fig5_instaplc");  // tab_obs traces this run

  sim::Simulator simulator;
  net::Network network{simulator};

  auto& sw = network.add_node<sdn::SdnSwitchNode>("instaplc-switch");
  auto& dev_host = network.add_node<net::HostNode>("io-device",
                                                   net::MacAddress{0xD0});
  auto& v1_host = network.add_node<net::HostNode>("vplc1",
                                                  net::MacAddress{0x01});
  auto& v2_host = network.add_node<net::HostNode>("vplc2",
                                                  net::MacAddress{0x02});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1_host.id(), 0, sw.id(), 1);
  network.connect(v2_host.id(), 0, sw.id(), 2);

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});

  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  c1.cycle = 2_ms;
  profinet::CyclicController vplc1(v1_host, c1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(v2_host, c2);

  sim::TimeSeriesBinner from_v1(50_ms), from_v2(50_ms), to_io(50_ms);
  app.set_observer([&](instaplc::InstaPlcEvent e, sim::SimTime at) {
    switch (e) {
      case instaplc::InstaPlcEvent::kPrimaryCyclic:
        from_v1.record(at);
        break;
      case instaplc::InstaPlcEvent::kSecondaryCyclic:
        from_v2.record(at);
        break;
      case instaplc::InstaPlcEvent::kToDevice:
        to_io.record(at);
        break;
      default:
        break;
    }
  });

  // Timeline: vPLC1 connects at t=0, vPLC2 at t=100 ms, vPLC1 crashes at
  // t=1.5 s (as in Fig. 5), run to 3 s.
  vplc1.connect();
  simulator.schedule_at(100_ms, [&] { vplc2.connect(); });
  simulator.schedule_at(1500_ms, [&] { vplc1.stop(); });
  simulator.run_until(3_s);

  std::cout << "=== Fig. 5a: packets per 50 ms from the vPLCs ===\n\n";
  std::cout << core::ascii_timeseries(from_v1.bins(), "from vPLC1 (primary)")
            << '\n';
  std::cout << core::ascii_timeseries(from_v2.bins(),
                                      "from vPLC2 (secondary)")
            << '\n';

  std::cout << "=== Fig. 5b: packets per 50 ms arriving at the I/O device "
               "===\n\n";
  std::cout << core::ascii_timeseries(to_io.bins(), "to I/O") << '\n';

  // The numbers behind the picture.
  core::TextTable table({"metric", "value"});
  table.add_row({"vPLC1 stop injected at", "1.500 s"});
  table.add_row({"switchover at",
                 app.stats().switchover_at
                     ? app.stats().switchover_at->to_string()
                     : "(never)"});
  if (app.stats().switchover_at) {
    table.add_row({"detection + switchover latency",
                   (*app.stats().switchover_at - 1500_ms).to_string()});
  }
  table.add_row({"device watchdog trips",
                 std::to_string(device.counters().watchdog_trips)});
  table.add_row({"device state at end",
                 profinet::to_string(device.state())});
  table.add_row({"cyclic frames delivered to I/O",
                 std::to_string(device.counters().cyclic_rx)});

  // Gap analysis on the to-I/O series around the failure.
  double min_bin = 1e18;
  for (const auto& b : to_io.bins()) {
    if (b.start >= 200_ms && b.start < 2900_ms) {
      min_bin = std::min(min_bin, b.value);
    }
  }
  table.add_row({"min packets/50ms to I/O (steady window)",
                 core::TextTable::num(min_bin, 0)});
  table.print(std::cout);

  std::cout << "\npaper's shape checks:\n"
            << "  [" << (app.switched_over() ? "ok" : "MISMATCH")
            << "] data-plane switchover triggered after primary silence\n"
            << "  [" << (min_bin >= 15 ? "ok" : "MISMATCH")
            << "] I/O device remained controlled through the switchover "
               "(~25 pkts/50ms at 2 ms cycle)\n"
            << "  [" << (device.counters().watchdog_trips == 0 ? "ok"
                                                               : "MISMATCH")
            << "] device watchdog never expired\n";
  return 0;
}
