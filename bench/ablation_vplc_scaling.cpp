// §2.1: "current evaluations omit how systems scale; e.g., how
// performance changes when multiple robot applications, vPLCs, or other
// sources of network traffic are running simultaneously."
//
// We consolidate N vPLCs onto one virtualized server (shared host path,
// contention-scaled) and measure each control loop's cycle jitter at the
// device plus watchdog trips as N grows.
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "host/host_path.hpp"
#include "net/switch_node.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/stats.hpp"

namespace {

using namespace steelnet;
using namespace steelnet::sim::literals;

struct ScalingResult {
  sim::SampleSet cycle_error_us;  ///< |inter-arrival - cycle| at devices
  std::uint64_t watchdog_trips = 0;
};

ScalingResult run_one(std::size_t n_vplcs, sim::SimTime duration) {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig swcfg;
  swcfg.mac_learning = false;
  auto& sw = network.add_node<net::SwitchNode>("sw", swcfg);

  // One consolidated server runs every vPLC: all share the host path,
  // whose contention stage scales with the number of active loops.
  auto host_path = host::HostProfile::virtualized_rt(11);
  host_path->set_load(n_vplcs);

  ScalingResult result;
  std::vector<std::unique_ptr<profinet::CyclicController>> controllers;
  std::vector<std::unique_ptr<profinet::IoDevice>> devices;
  std::vector<std::optional<sim::SimTime>> last(n_vplcs);

  for (std::size_t i = 0; i < n_vplcs; ++i) {
    auto& plc_host = network.add_node<net::HostNode>(
        "vplc" + std::to_string(i), net::MacAddress{0x100 + i});
    auto& dev_host = network.add_node<net::HostNode>(
        "dev" + std::to_string(i), net::MacAddress{0x200 + i});
    network.connect(plc_host.id(), 0, sw.id(),
                    static_cast<net::PortId>(2 * i));
    network.connect(dev_host.id(), 0, sw.id(),
                    static_cast<net::PortId>(2 * i + 1));
    sw.add_fdb_entry(plc_host.mac(), static_cast<net::PortId>(2 * i));
    sw.add_fdb_entry(dev_host.mac(), static_cast<net::PortId>(2 * i + 1));
    plc_host.set_host_path(host_path.get());

    profinet::ControllerConfig cfg;
    cfg.ar_id = static_cast<std::uint16_t>(i + 1);
    cfg.device_mac = dev_host.mac();
    cfg.cycle = 2_ms;
    controllers.push_back(
        std::make_unique<profinet::CyclicController>(plc_host, cfg));
    devices.push_back(std::make_unique<profinet::IoDevice>(dev_host));
    devices.back()->set_output_handler(
        [&result, &last, i, &simulator](const std::vector<std::uint8_t>&,
                                        bool) {
          const auto now = simulator.now();
          if (last[i]) {
            result.cycle_error_us.add(
                std::abs((now - *last[i]).micros() - 2000.0));
          }
          last[i] = now;
        });
    controllers.back()->connect();
  }

  simulator.run_until(duration);
  for (const auto& d : devices) {
    result.watchdog_trips += d->counters().watchdog_trips;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = steelnet::bench::BenchArgs::parse(argc, argv);
  args.warn_obs_unsupported("ablation_vplc_scaling");

  std::cout << "=== §2.1: consolidating vPLCs on one server (2 ms cycles, "
               "5 s runs) ===\n\n";
  core::TextTable table({"vPLCs", "cycle error p50 (us)",
                         "cycle error p99 (us)", "p99.9 (us)", "max (us)",
                         "watchdog trips"});
  // Each consolidation level is its own 5 s simulation; sweep the levels
  // across the worker pool and tabulate in ascending-N order.
  const std::vector<std::size_t> levels{1, 4, 16, 32, 64};
  const auto slots = steelnet::core::SweepRunner{args.jobs}.run(
      levels.size(), [&](std::size_t i) { return run_one(levels[i], 5_s); });
  std::vector<double> p99s;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (!slots[i].ok()) {
      std::cerr << "ablation_vplc_scaling: N=" << levels[i]
                << " failed: " << slots[i].error << "\n";
      return 1;
    }
    const ScalingResult& r = *slots[i].value;
    p99s.push_back(r.cycle_error_us.percentile(99));
    table.add_row({std::to_string(levels[i]),
                   core::TextTable::num(r.cycle_error_us.percentile(50), 1),
                   core::TextTable::num(r.cycle_error_us.percentile(99), 1),
                   core::TextTable::num(r.cycle_error_us.percentile(99.9), 1),
                   core::TextTable::num(r.cycle_error_us.max(), 1),
                   std::to_string(r.watchdog_trips)});
  }
  table.print(std::cout);

  std::cout << "\nshape check: [" << (p99s.back() > 2 * p99s.front()
                                          ? "ok"
                                          : "MISMATCH")
            << "] consolidation degrades tail cycle accuracy (>2x p99 "
               "from 1 to 64 vPLCs)\n"
            << "the paper's point: this scaling dimension is exactly what "
               "published vPLC evaluations leave out.\n";
  return 0;
}
