// Ablation (§3 methodology): why Traffic Reflection uses one TAP clock.
//
// The same reflection delays are measured (a) by the tap's single clock
// at 8 ns resolution, and (b) as a naive two-endpoint setup with PTP-
// disciplined clocks would, across increasing path asymmetry. The tap
// measurement is exact; the PTP one inherits servo noise plus the
// unobservable asymmetry bias.
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "tap/reflection.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/7);
  args.warn_obs_unsupported("ablation_single_clock");

  std::cout << "=== Ablation: single-clock TAP vs two PTP clocks ===\n\n";

  core::TextTable table({"path asymmetry", "median |error|", "p99 |error|",
                         "max |error|"});
  for (const auto asym : {0_ns, 200_ns, 500_ns, 1000_ns}) {
    tap::ReflectionConfig cfg;
    cfg.packets = 5000;
    cfg.with_ptp_comparison = true;
    cfg.ptp.servo_noise = 30_ns;
    cfg.ptp.drift_ppb = 20;
    cfg.ptp.path_asymmetry = asym;
    cfg.seed = args.seed;
    const auto r = tap::run_traffic_reflection(cfg);

    sim::SampleSet err_ns;
    for (std::size_t i = 0; i < r.delay_us.raw().size(); ++i) {
      err_ns.add(std::abs(r.ptp_delay_us.raw()[i] - r.delay_us.raw()[i]) *
                 1e3);
    }
    table.add_row({asym.to_string(),
                   core::TextTable::num(err_ns.median(), 1) + " ns",
                   core::TextTable::num(err_ns.percentile(99), 1) + " ns",
                   core::TextTable::num(err_ns.max(), 1) + " ns"});
  }
  table.print(std::cout);

  std::cout << "\ntap timestamp quantization: 8 ns (bounded, unbiased); "
               "PTP error grows with asymmetry and is invisible to the "
               "protocol (§3, [63]).\n";
  return 0;
}
