// Google-benchmark microbenchmarks for the hot paths of every substrate.
#include <benchmark/benchmark.h>

#include <array>
#include <functional>
#include <memory>
#include <queue>

#include "core/sweep_runner.hpp"
#include "ebpf/programs.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "faults/scenario_runner.hpp"
#include "flowmon/flow_cache.hpp"
#include "net/host_node.hpp"
#include "net/switch_node.hpp"
#include "obs/hub.hpp"
#include "profinet/wire.hpp"
#include "sdn/pipeline.hpp"
#include "sim/event_queue.hpp"
#include "sim/partitioner.hpp"
#include "sim/random.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_ring.hpp"
#include "textmine/terms.hpp"

namespace {

using namespace steelnet;
using namespace steelnet::sim::literals;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{1};
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(sim::SimTime{rng.uniform_int(0, 1'000'000)}, [] {});
    }
    sim::SimTime t;
    sim::EventQueue::Callback cb;
    while (q.pop_next(t, cb)) benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_SimulatorPeriodicTasks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back(std::make_unique<sim::PeriodicTask>(
          simulator, 0_ns, 1_ms, [&fired] { ++fired; }));
    }
    simulator.run_until(1_s);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorPeriodicTasks);

void BM_RngNormal(benchmark::State& state) {
  sim::Rng rng{7};
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_EbpfVerify(benchmark::State& state) {
  const auto p = ebpf::make_reflector(ebpf::ReflectorVariant::kTsDRb);
  for (auto _ : state) benchmark::DoNotOptimize(ebpf::verify(p));
}
BENCHMARK(BM_EbpfVerify);

void BM_EbpfVmRun(benchmark::State& state) {
  const auto variant =
      static_cast<ebpf::ReflectorVariant>(state.range(0));
  auto p = ebpf::make_reflector(variant);
  ebpf::verify_or_throw(p);
  ebpf::Vm vm(std::move(p), ebpf::CostParams{}, 1);
  net::Frame f;
  f.payload.assign(64, 0);
  sim::SimTime now = sim::SimTime::zero();
  for (auto _ : state) {
    now += 1_us;
    benchmark::DoNotOptimize(vm.run(f, now));
    vm.ringbuf().drain();
  }
}
BENCHMARK(BM_EbpfVmRun)
    ->Arg(int(ebpf::ReflectorVariant::kBase))
    ->Arg(int(ebpf::ReflectorVariant::kTsRb));

void BM_PipelineMatch(benchmark::State& state) {
  sdn::Pipeline pipeline;
  sdn::Table table("t", {{sdn::FieldKind::kInPort, 0},
                         {sdn::FieldKind::kEthSrc, 0},
                         {sdn::FieldKind::kPayloadU8, 0}});
  for (std::uint64_t i = 0; i < std::uint64_t(state.range(0)); ++i) {
    sdn::TableEntry e;
    e.values = {i % 8, 0x100 + i, 0};
    e.masks = {~0ULL, ~0ULL, 0};
    e.actions = {sdn::ActionPrimitive::set_egress(net::PortId(i % 4))};
    table.add_entry(std::move(e));
  }
  pipeline.add_table(std::move(table));
  net::Frame f;
  f.src = net::MacAddress{0x100 + std::uint64_t(state.range(0)) - 1};
  f.payload.assign(16, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.process(f, 7 % 8));
  }
}
BENCHMARK(BM_PipelineMatch)->Arg(4)->Arg(64);

void BM_ProfinetCodec(benchmark::State& state) {
  profinet::CyclicData pdu;
  pdu.ar_id = 1;
  pdu.cycle_counter = 77;
  pdu.data.assign(std::size_t(state.range(0)), 0x5a);
  for (auto _ : state) {
    const auto bytes = profinet::encode(profinet::Pdu{pdu});
    benchmark::DoNotOptimize(profinet::decode(bytes));
  }
}
BENCHMARK(BM_ProfinetCodec)->Arg(20)->Arg(250);

void BM_AhoCorasickScan(benchmark::State& state) {
  textmine::AhoCorasick ac;
  const auto groups = textmine::fig1_term_groups();
  std::uint32_t id = 0;
  for (const auto& g : groups) {
    for (const auto& p : g.patterns) ac.add_pattern(p, id);
    ++id;
  }
  ac.build();
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "the data center network moves tcp traffic across the "
            "industrial network with profinet devices ";
  }
  for (auto _ : state) benchmark::DoNotOptimize(ac.find_words(text));
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(text.size()));
}
BENCHMARK(BM_AhoCorasickScan);

// The flowmon metering hot path: 1M synthetic frames spread over a
// configurable number of concurrent flows, with periodic expiry of the
// coldest half -- the insert / lookup / expire churn a MeterPoint puts a
// FlowCache through. Baseline for later perf PRs.
void BM_FlowCacheHotPath(benchmark::State& state) {
  constexpr std::size_t kFrames = 1'000'000;
  const auto num_flows = static_cast<std::uint64_t>(state.range(0));
  sim::Rng rng{42};
  // Pre-draw the frame sequence so the benchmark loop times the cache,
  // not the RNG: frames round-robin over flows with randomized sizes.
  std::vector<net::Frame> frames(num_flows);
  for (std::uint64_t i = 0; i < num_flows; ++i) {
    frames[i].src = net::MacAddress{0x0a'0000'000000ULL + i};
    frames[i].dst = net::MacAddress{0x0c'0000'000001ULL};
    frames[i].pcp = static_cast<std::uint8_t>(i & 0x7);
    frames[i].payload.resize(64 + std::size_t(rng.uniform_int(0, 1400)));
  }
  for (auto _ : state) {
    flowmon::FlowCache cache(2 * num_flows);
    sim::SimTime now = sim::SimTime::zero();
    std::size_t fi = 0;
    for (std::size_t i = 0; i < kFrames; ++i) {
      now = now + sim::nanoseconds(800);
      benchmark::DoNotOptimize(cache.record(frames[fi], now));
      if (++fi == frames.size()) fi = 0;
      // Periodic expiry sweep: evict every other flow, as an idle-timeout
      // pass would, so deletion (backward-shift) stays in the measurement.
      if ((i & 0xffff) == 0xffff) {
        std::vector<flowmon::FlowKey> victims;
        victims.reserve(cache.size() / 2);
        bool take = false;
        cache.for_each([&](const flowmon::FlowRecord& r) {
          if ((take = !take)) victims.push_back(r.key);
        });
        for (const auto& k : victims) cache.erase(k);
      }
    }
    benchmark::DoNotOptimize(cache.stats());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kFrames));
}
BENCHMARK(BM_FlowCacheHotPath)->Arg(64)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// The entire hot-path cost of an obs hook site when no hub is attached:
// one pointer-null test plus one trace-id test. This is the branch every
// instrumented frame touch pays in disabled mode; the acceptance bar is
// < 2 ns per frame.
void BM_ObsDisabledHookGuard(benchmark::State& state) {
  net::Frame f;
  obs::ObsHub* hub = nullptr;
  benchmark::DoNotOptimize(hub);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    if (hub != nullptr && f.trace_id != 0) ++hits;
    benchmark::DoNotOptimize(f.trace_id);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_ObsDisabledHookGuard);

// End-to-end forwarding with observability off (Arg 0) vs fully traced
// (Arg 1): the per-item delta is the whole-path cost of span recording.
void BM_ObsSwitchForwarding(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::Network network{simulator};
    obs::ObsHub hub;
    if (traced) network.set_obs(&hub);
    net::SwitchConfig cfg;
    cfg.mac_learning = false;
    auto& sw = network.add_node<net::SwitchNode>("sw", cfg);
    auto& a = network.add_node<net::HostNode>("a", net::MacAddress{1});
    auto& b = network.add_node<net::HostNode>("b", net::MacAddress{2});
    network.connect(a.id(), 0, sw.id(), 0);
    network.connect(b.id(), 0, sw.id(), 1);
    sw.add_fdb_entry(net::MacAddress{2}, 1);
    int got = 0;
    b.set_receiver([&](net::Frame, sim::SimTime) { ++got; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Frame f;
      f.dst = net::MacAddress{2};
      f.payload.resize(46);
      a.send(std::move(f));
    }
    simulator.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_ObsSwitchForwarding)->Arg(0)->Arg(1);

// Sweep throughput: the tab_faults-style seed sweep (independent seeded
// full-stack fault simulations) through the core::SweepRunner worker
// pool. Arg = --jobs; items/s at Arg(8) over Arg(1) is the recorded
// parallel-sweep speedup (the outputs themselves are byte-identical at
// any job count, which the SweepRunner tests pin).
void BM_SweepRunnerFaultScenarios(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  constexpr std::uint64_t kSeeds = 8;
  const faults::ScenarioRunner runner;
  std::vector<faults::FaultScenario> scenarios;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    scenarios.push_back(faults::random_scenario(seed));
  }
  for (auto _ : state) {
    const auto slots = runner.run_sweep(scenarios, jobs);
    for (const auto& slot : slots) {
      if (!slot.ok()) state.SkipWithError(slot.error.c_str());
    }
    benchmark::DoNotOptimize(slots);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kSeeds));
}
BENCHMARK(BM_SweepRunnerFaultScenarios)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---------------------------------------------------------------------------
// Event-kernel suite: the slab kernel (generation-counted slots + inplace
// callbacks) against a faithful mirror of the kernel it replaced
// (per-event shared_ptr<bool> liveness token + std::function callback).
// The >=2x schedule+fire acceptance bar of the allocation-free kernel
// work is measured here, with realistic frame-sized captures -- the
// delivery closures the simulator actually schedules carry a Frame image
// plus routing context, far beyond std::function's inline buffer.
// ---------------------------------------------------------------------------

namespace legacy {

/// The pre-slab event queue, verbatim in structure: one shared_ptr<bool>
/// control block per event, type-erased heap-allocating callbacks, dead
/// entries skipped at pop.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  class Handle {
   public:
    Handle() = default;
    [[nodiscard]] bool pending() const { return alive_ && *alive_; }
    void cancel() {
      if (alive_) *alive_ = false;
    }

   private:
    friend class EventQueue;
    explicit Handle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
  };

  Handle schedule(sim::SimTime at, Callback cb) {
    auto alive = std::make_shared<bool>(true);
    heap_.push(Entry{at, seq_++, std::move(cb), alive});
    return Handle{std::move(alive)};
  }

  bool pop_next(sim::SimTime& time_out, Callback& cb_out) {
    while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
    if (heap_.empty()) return false;
    auto& top = const_cast<Entry&>(heap_.top());
    time_out = top.time;
    cb_out = std::move(top.cb);
    *top.alive = false;
    heap_.pop();
    return true;
  }

 private:
  struct Entry {
    sim::SimTime time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace legacy

/// What a wire-delivery closure really carries: a frame image plus the
/// destination. 88 bytes -- over std::function's inline buffer (16 on
/// libstdc++), under the slab kernel's 128-byte capture budget.
struct DeliveryCapture {
  std::array<std::uint8_t, 72> wire;
  std::uint64_t node;
  std::uint32_t port;
  std::uint32_t pad;
};

template <typename Queue>
void event_kernel_schedule_fire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{1};
  std::vector<std::int64_t> times(n);
  for (auto& t : times) t = rng.uniform_int(0, 1'000'000);
  DeliveryCapture proto{};
  proto.wire.fill(0x5a);
  std::uint64_t sink = 0;
  // The queue lives across iterations: this measures the steady-state
  // schedule+fire cost (the slab and heap stay warm), not first-run
  // growth. The legacy kernel still allocates per event here.
  Queue q;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      proto.node = i;
      q.schedule(sim::SimTime{times[i]},
                 [proto, &sink] { sink += proto.node + proto.wire[0]; });
    }
    sim::SimTime t;
    typename Queue::Callback cb;
    while (q.pop_next(t, cb)) cb();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void BM_EventKernelScheduleFire(benchmark::State& state) {
  event_kernel_schedule_fire<sim::EventQueue>(state);
}
BENCHMARK(BM_EventKernelScheduleFire)->Arg(1024)->Arg(16384);

void BM_EventKernelScheduleFireLegacy(benchmark::State& state) {
  event_kernel_schedule_fire<legacy::EventQueue>(state);
}
BENCHMARK(BM_EventKernelScheduleFireLegacy)->Arg(1024)->Arg(16384);

/// Cancellation-heavy mix, the retransmit-timer shape: schedule a window,
/// cancel and reschedule half of it, then drain. Exercises the handle
/// machinery (generation bump vs shared_ptr flag) on top of the heap.
template <typename Queue, typename Handle>
void event_kernel_cancel_heavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Rng rng{2};
  std::vector<std::int64_t> times(n);
  for (auto& t : times) t = rng.uniform_int(0, 1'000'000);
  DeliveryCapture proto{};
  std::uint64_t sink = 0;
  std::vector<Handle> handles(n);
  Queue q;  // persists across iterations: steady-state cost
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      proto.node = i;
      handles[i] = q.schedule(sim::SimTime{times[i]},
                              [proto, &sink] { sink += proto.node; });
    }
    for (std::size_t i = 0; i < n; i += 2) {
      handles[i].cancel();
      handles[i] = q.schedule(sim::SimTime{times[i] + 500'000},
                              [proto, &sink] { sink += proto.port; });
    }
    sim::SimTime t;
    typename Queue::Callback cb;
    while (q.pop_next(t, cb)) cb();
    benchmark::DoNotOptimize(sink);
  }
  // Items = schedules + cancels.
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n + n));
}

void BM_EventKernelCancelHeavy(benchmark::State& state) {
  event_kernel_cancel_heavy<sim::EventQueue, sim::EventHandle>(state);
}
BENCHMARK(BM_EventKernelCancelHeavy)->Arg(8192);

void BM_EventKernelCancelHeavyLegacy(benchmark::State& state) {
  event_kernel_cancel_heavy<legacy::EventQueue, legacy::EventQueue::Handle>(
      state);
}
BENCHMARK(BM_EventKernelCancelHeavyLegacy)->Arg(8192);

/// End-to-end cyclic frames/second through the pooled data path: a
/// host<->host echo loop drawing every frame from the FramePool. Counters
/// pin the recycling claims: pool_reuse_ratio ~ 1 after warm-up, and
/// slot_capacity stays at the steady-state working set instead of
/// tracking total events scheduled.
void BM_KernelCyclicFrames(benchmark::State& state) {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& a = network.add_node<net::HostNode>("a", net::MacAddress{1});
  auto& b = network.add_node<net::HostNode>("b", net::MacAddress{2});
  network.connect(a.id(), 0, b.id(), 0,
                  net::LinkParams{1'000'000'000, 500_ns});
  std::uint64_t echoes = 0;
  b.set_receiver([&](net::Frame f, sim::SimTime) {
    net::Frame reply = network.frame_pool().make(46);
    reply.dst = net::MacAddress{1};
    reply.src = net::MacAddress{2};
    network.frame_pool().recycle(std::move(f));
    b.send(std::move(reply));
  });
  a.set_receiver([&](net::Frame f, sim::SimTime) {
    ++echoes;
    network.frame_pool().recycle(std::move(f));
    net::Frame next = network.frame_pool().make(46);
    next.dst = net::MacAddress{2};
    next.src = net::MacAddress{1};
    a.send(std::move(next));
  });
  {
    net::Frame first = network.frame_pool().make(46);
    first.dst = net::MacAddress{2};
    first.src = net::MacAddress{1};
    a.send(std::move(first));
  }
  std::uint64_t frames = 0;
  for (auto _ : state) {
    const std::uint64_t before = echoes;
    simulator.run_until(simulator.now() + 1_ms);
    frames += 2 * (echoes - before);  // request + response per echo
  }
  state.SetItemsProcessed(int64_t(frames));
  const auto& ps = network.frame_pool().stats();
  state.counters["pool_reuse_ratio"] = benchmark::Counter(
      ps.acquired != 0 ? double(ps.reused) / double(ps.acquired) : 0.0);
  state.counters["pool_free_buffers"] =
      benchmark::Counter(double(network.frame_pool().free_buffers()));
  state.counters["event_slot_capacity"] =
      benchmark::Counter(double(simulator.event_slot_capacity()));
}
BENCHMARK(BM_KernelCyclicFrames);

// ---------------------------------------------------------------------------
// PDES-kernel suite: the null-message protocol and partition hot paths
// the shard-balancing work touched. Regenerated into BENCH_kernel.json.
// ---------------------------------------------------------------------------

// One full conservative run of a 4-cell ping ring at 1us lookahead:
// every cell forwards each message around the ring, so progress is
// bounded by the null-message protocol (snapshot, drain, advance,
// publish) rather than by event execution. Items = protocol rounds, so
// items/s is the round rate the fast-path work speeds up.
void BM_NullMessageRound(benchmark::State& state) {
  constexpr std::uint32_t kCells = 4;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::ShardedSimulator ss;
    for (std::uint32_t i = 0; i < kCells; ++i) {
      ss.add_cell("c" + std::to_string(i));
    }
    for (std::uint32_t i = 0; i < kCells; ++i) {
      ss.connect(i, (i + 1) % kCells, 1_us);
    }
    for (std::uint32_t i = 0; i < kCells; ++i) {
      ss.cell(i).set_handler([](sim::ShardedSimulator::Cell& c,
                                const sim::ShardMsg& m) {
        c.send((c.id() + 1) % kCells, m);
      });
    }
    ss.cell(0).sim().schedule_at(sim::SimTime::zero(), [&ss] {
      ss.cell(0).send(1, sim::ShardMsg{});
    });
    const auto stats = ss.run(10_ms, 1);
    rounds += stats.rounds;
    benchmark::DoNotOptimize(stats.events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
}
BENCHMARK(BM_NullMessageRound);

// The publish half of a protocol round in isolation: coalesced (shadow
// compare, store only when the frontier advanced -- what cell_round now
// does) vs unconditional release store (what it did before). The
// frontier advances once every 16 rounds, the shape of a cell whose
// LBTS is pinned by a slow neighbour.
void BM_ClockPublish(benchmark::State& state) {
  const bool coalesced = state.range(0) != 0;
  alignas(64) std::atomic<std::int64_t> pub{0};
  std::int64_t shadow = 0;
  std::int64_t frontier = 0;
  std::uint64_t tick = 0;
  for (auto _ : state) {
    if ((++tick & 0xf) == 0) ++frontier;
    if (coalesced) {
      if (frontier > shadow) {
        shadow = frontier;
        pub.store(frontier, std::memory_order_release);
      }
    } else {
      pub.store(frontier, std::memory_order_release);
    }
    benchmark::DoNotOptimize(pub);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ClockPublish)->Arg(0)->Arg(1);

// SpscRing drain cost: one-at-a-time try_pop vs the batched try_pop_n
// drain_inbound now uses. Single-threaded on a pre-filled ring, so the
// delta is pure per-pop overhead (head/tail atomics amortized across
// the batch).
void BM_SpscRingPop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  sim::SpscRing<sim::ShardMsg> ring{1024};
  std::uint64_t drained = 0;
  sim::ShardMsg buf[64];
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint64_t i = 0; i < 1024; ++i) {
      sim::ShardMsg m;
      m.seq = i;
      ring.try_push(std::move(m));
    }
    state.ResumeTiming();
    // Force every popped message to be fully materialized in both
    // variants -- as in the kernel's drain loop, which moves each message
    // into the staging heap -- so the comparison isolates the cursor
    // machinery instead of letting one side elide the 160-byte copy.
    if (batch == 1) {
      sim::ShardMsg m;
      while (ring.try_pop(m)) {
        benchmark::DoNotOptimize(m);
        drained += 1;
      }
    } else {
      std::size_t n = 0;
      while ((n = ring.try_pop_n(buf, batch)) != 0) {
        benchmark::DoNotOptimize(buf);
        drained += n;
      }
    }
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SpscRingPop)->Arg(1)->Arg(16)->Arg(64);

// Partition compute cost at campus scale: the prefix-quota walk vs the
// measured-rate LPT bin-pack over seeded random weights. Placement runs
// once per simulation, so this pins that LPT stays negligible relative
// to any run it could place (sub-millisecond even at 4096 cells).
void BM_PartitionCompute(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool lpt = state.range(1) != 0;
  sim::Rng rng{11};
  std::vector<std::uint64_t> weights(n);
  for (auto& w : weights) {
    w = static_cast<std::uint64_t>(rng.uniform_int(1, 10'000));
  }
  const sim::PrefixQuotaPartitioner prefix;
  const sim::LptPartitioner measured;
  const sim::Partitioner& strategy =
      lpt ? static_cast<const sim::Partitioner&>(measured)
          : static_cast<const sim::Partitioner&>(prefix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.assign(weights, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PartitionCompute)
    ->Args({240, 0})->Args({240, 1})->Args({4096, 0})->Args({4096, 1});

void BM_SwitchForwarding(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator simulator;
    net::Network network{simulator};
    net::SwitchConfig cfg;
    cfg.mac_learning = false;
    auto& sw = network.add_node<net::SwitchNode>("sw", cfg);
    auto& a = network.add_node<net::HostNode>("a", net::MacAddress{1});
    auto& b = network.add_node<net::HostNode>("b", net::MacAddress{2});
    network.connect(a.id(), 0, sw.id(), 0);
    network.connect(b.id(), 0, sw.id(), 1);
    sw.add_fdb_entry(net::MacAddress{2}, 1);
    int got = 0;
    b.set_receiver([&](net::Frame, sim::SimTime) { ++got; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      net::Frame f;
      f.dst = net::MacAddress{2};
      f.payload.resize(46);
      a.send(std::move(f));
    }
    simulator.run();
    benchmark::DoNotOptimize(got);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_SwitchForwarding);

}  // namespace
