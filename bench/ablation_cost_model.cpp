// Ablation (DESIGN.md): replace the stochastic eBPF cost model with its
// deterministic counterpart. The Fig. 4 CDF spread collapses to vertical
// lines -- i.e. the published variability is *entirely* produced by the
// modelled execution-environment effects (cache misses, ring-buffer
// contention, IRQs), not by the protocol or network.
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "tap/reflection.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/11);
  args.warn_obs_unsupported("ablation_cost_model");

  std::cout << "=== Ablation: stochastic vs deterministic eBPF cost model "
               "(TS-RB, 1 flow, 5000 packets) ===\n\n";

  tap::ReflectionConfig stochastic;
  stochastic.variant = ebpf::ReflectorVariant::kTsRb;
  stochastic.packets = 5000;
  stochastic.seed = args.seed;
  const auto rs = tap::run_traffic_reflection(stochastic);

  tap::ReflectionConfig deterministic = stochastic;
  deterministic.costs =
      ebpf::CostModel::deterministic(tap::fig4_calibrated_costs());
  const auto rd = tap::run_traffic_reflection(deterministic);

  std::cout << core::quantile_table({{"stochastic", &rs.delay_us},
                                     {"deterministic", &rd.delay_us}},
                                    "us")
            << '\n';

  const double spread_s = rs.delay_us.max() - rs.delay_us.min();
  const double spread_d = rd.delay_us.max() - rd.delay_us.min();
  core::TextTable table({"model", "delay spread (us)", "p99 jitter (ns)"});
  table.add_row({"stochastic", core::TextTable::num(spread_s, 3),
                 core::TextTable::num(rs.jitter_ns.percentile(99), 1)});
  table.add_row({"deterministic", core::TextTable::num(spread_d, 3),
                 core::TextTable::num(rd.jitter_ns.percentile(99), 1)});
  table.print(std::cout);

  std::cout << "\nshape check: ["
            << (spread_d < spread_s / 20.0 ? "ok" : "MISMATCH")
            << "] deterministic costs collapse the CDF spread (>20x)\n";
  return 0;
}
