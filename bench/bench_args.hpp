// Shared CLI surface of every steelnet bench binary.
//
// All table/figure executables accept the same four flags:
//   --seed <n>       RNG seed (each binary keeps its historical default, so
//                    no-arg output is unchanged)
//   --csv            machine-readable output instead of the rendered table
//   --trace <file>   write a Chrome-trace/Perfetto JSON of the run
//   --metrics <file> write a Prometheus-style metrics dump of the run
//   --sweep <n>      where supported: sweep n seeds instead of the single
//                    default run (ignored by binaries without a sweep mode)
//   --jobs <n>       worker threads for independent sweep runs (default:
//                    hardware concurrency; --jobs 1 is the sequential
//                    loop). Output is byte-identical at any job count.
//   --scale <n>      where supported: size ceiling of a scaling curve
//                    (e.g. tab_flowmon's max live-flow count)
//   --bench-json <f> where supported: write the scaling curve as a JSON
//                    benchmark artifact
//   --shards <n>     where supported: worker shards of one sharded
//                    simulation (tab_campus); orthogonal to --jobs
//   --skew           where supported: skewed-load workload variant (e.g.
//                    tab_campus hot-zone storms)
//   --partitioner <prefix|measured>
//                    where supported: cell->shard placement strategy
//   --profile-out <file>
//                    write the run's measured cell-rate profile
//   --profile-in <file>
//                    read a cell-rate profile; implies the measured
//                    partitioner unless --partitioner prefix is explicit
// plus --help. Binaries without an obs wiring still accept --trace and
// --metrics but warn on stderr that nothing will be produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

namespace steelnet::bench {

struct BenchArgs {
  std::uint64_t seed = 0;
  bool csv = false;
  std::optional<std::string> trace_path;
  std::optional<std::string> metrics_path;
  /// --sweep <n>: number of seeds to sweep; 0 means "no sweep requested".
  std::uint64_t sweep = 0;
  /// --jobs <n>: worker threads for independent runs (core::SweepRunner
  /// semantics: 0 means hardware concurrency, 1 the sequential loop).
  std::size_t jobs = 0;
  /// --scale <n>: where supported, the size ceiling of a scaling curve
  /// (e.g. tab_flowmon's max live-flow count); 0 = binary default.
  std::uint64_t scale = 0;
  /// --bench-json <file>: where supported, write a google-benchmark-style
  /// JSON artifact of the scaling curve.
  std::optional<std::string> bench_json_path;
  /// --shards <n>: where supported, worker shards of ONE sharded
  /// simulation (sim::ShardedSimulator semantics; orthogonal to --jobs,
  /// which parallelizes across independent runs). 0 = binary default.
  std::size_t shards = 0;
  /// --skew: where supported, the skewed-load workload variant.
  bool skew = false;
  /// --partitioner <prefix|measured>: placement strategy override;
  /// unset means "binary default" (prefix, or measured when a profile
  /// was supplied via --profile-in).
  std::optional<std::string> partitioner;
  /// --profile-out <file>: write the measured cell-rate profile.
  std::optional<std::string> profile_out_path;
  /// --profile-in <file>: read a calibration cell-rate profile.
  std::optional<std::string> profile_in_path;

  /// True when the run should use the measured-rate partitioner: asked
  /// for explicitly, or implied by a supplied calibration profile.
  [[nodiscard]] bool wants_measured_partition() const {
    if (partitioner.has_value()) return *partitioner == "measured";
    return profile_in_path.has_value();
  }

  /// Parses argv; exits on --help (0) and on malformed/unknown flags (2).
  static BenchArgs parse(int argc, char** argv,
                         std::uint64_t default_seed = 0) {
    BenchArgs args;
    args.seed = default_seed;
    const char* prog = argc > 0 ? argv[0] : "bench";
    auto need_value = [&](int i, std::string_view flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << prog << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i];
      if (a == "--seed") {
        args.seed = std::strtoull(need_value(i, a), nullptr, 0);
        ++i;
      } else if (a == "--csv") {
        args.csv = true;
      } else if (a == "--trace") {
        args.trace_path = need_value(i, a);
        ++i;
      } else if (a == "--metrics") {
        args.metrics_path = need_value(i, a);
        ++i;
      } else if (a == "--sweep") {
        args.sweep = std::strtoull(need_value(i, a), nullptr, 0);
        ++i;
      } else if (a == "--jobs") {
        args.jobs =
            static_cast<std::size_t>(std::strtoull(need_value(i, a),
                                                   nullptr, 0));
        ++i;
      } else if (a == "--scale") {
        args.scale = std::strtoull(need_value(i, a), nullptr, 0);
        ++i;
      } else if (a == "--bench-json") {
        args.bench_json_path = need_value(i, a);
        ++i;
      } else if (a == "--shards") {
        args.shards =
            static_cast<std::size_t>(std::strtoull(need_value(i, a),
                                                   nullptr, 0));
        ++i;
      } else if (a == "--skew") {
        args.skew = true;
      } else if (a == "--partitioner") {
        args.partitioner = need_value(i, a);
        ++i;
        if (*args.partitioner != "prefix" && *args.partitioner != "measured") {
          std::cerr << prog << ": --partitioner must be 'prefix' or "
                    << "'measured', got '" << *args.partitioner << "'\n";
          std::exit(2);
        }
      } else if (a == "--profile-out") {
        args.profile_out_path = need_value(i, a);
        ++i;
      } else if (a == "--profile-in") {
        args.profile_in_path = need_value(i, a);
        ++i;
      } else if (a == "--help" || a == "-h") {
        std::cout << "usage: " << prog
                  << " [--seed <n>] [--csv] [--trace <file>]"
                     " [--metrics <file>] [--sweep <n>] [--jobs <n>]"
                     " [--scale <n>] [--bench-json <file>]"
                     " [--shards <n>] [--skew]"
                     " [--partitioner <prefix|measured>]"
                     " [--profile-out <file>] [--profile-in <file>]\n";
        std::exit(0);
      } else {
        std::cerr << prog << ": unknown argument '" << a
                  << "' (try --help)\n";
        std::exit(2);
      }
    }
    return args;
  }

  /// For binaries without an obs wiring: warn when a trace/metrics file
  /// was requested that this binary cannot produce.
  void warn_obs_unsupported(const char* prog) const {
    if (trace_path.has_value() || metrics_path.has_value()) {
      std::cerr << prog
                << ": this bench has no obs wiring; --trace/--metrics "
                   "ignored\n";
    }
  }
};

}  // namespace steelnet::bench
