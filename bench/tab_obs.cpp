// The observability plane on the Fig. 5 switchover run: attach an ObsHub
// to the InstaPLC scenario, trace every cyclic frame hop by hop, and
// decompose one post-switchover vPLC2 -> I/O-device delivery into its
// per-hop latency contributions (host tx, egress queue, link, switch
// pipeline, XDP, host rx). The hop rows tile the end-to-end latency
// exactly -- the "sum check" row asserts sum(hops) == delivered - created
// to the nanosecond.
//
//   --trace <file>    write the whole run as Chrome-trace JSON (open in
//                     Perfetto / chrome://tracing)
//   --metrics <file>  dump the metrics registry as Prometheus text
//   --csv             print every recorded span as CSV instead of tables
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "instaplc/instaplc.hpp"
#include "obs/exporters.hpp"
#include "obs/hub.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv);

  sim::Simulator simulator;
  net::Network network{simulator};
  obs::ObsHub hub;
  network.set_obs(&hub);

  // Same topology and timeline as fig5_instaplc, now fully instrumented.
  auto& sw = network.add_node<sdn::SdnSwitchNode>("instaplc-switch");
  auto& dev_host = network.add_node<net::HostNode>("io-device",
                                                   net::MacAddress{0xD0});
  auto& v1_host = network.add_node<net::HostNode>("vplc1",
                                                  net::MacAddress{0x01});
  auto& v2_host = network.add_node<net::HostNode>("vplc2",
                                                  net::MacAddress{0x02});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1_host.id(), 0, sw.id(), 1);
  network.connect(v2_host.id(), 0, sw.id(), 2);

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});

  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  c1.cycle = 2_ms;
  profinet::CyclicController vplc1(v1_host, c1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(v2_host, c2);

  // Every module binds its counters onto the shared registry.
  network.register_metrics(hub);
  sw.register_metrics(hub);
  dev_host.register_metrics(hub);
  v1_host.register_metrics(hub);
  v2_host.register_metrics(hub);
  device.register_metrics(hub);
  vplc1.register_metrics(hub);
  vplc2.register_metrics(hub);
  app.register_metrics(hub, sw.name());
  obs::Snapshotter snapshotter(simulator, hub.metrics(), 250_ms);

  vplc1.connect();
  simulator.schedule_at(100_ms, [&] { vplc2.connect(); });
  simulator.schedule_at(1500_ms, [&] { vplc1.stop(); });
  simulator.run_until(3_s);

  if (args.csv) {
    std::cout << obs::spans_csv(hub.tracer());
    return 0;
  }

  std::cout << "=== per-frame hop latency breakdown on the Fig. 5 "
               "switchover run ===\n\n";
  std::cout << "traced " << hub.tracer().spans().size() << " spans over "
            << hub.tracer().track_count() << " tracks; "
            << hub.deliveries().size() << " end-to-end deliveries; "
            << snapshotter.snapshots_taken() << " metric snapshots\n";
  if (!app.stats().switchover_at) {
    std::cout << "MISMATCH: no switchover happened; nothing to break down\n";
    return 1;
  }
  const auto switchover = *app.stats().switchover_at;
  std::cout << "switchover at " << switchover.to_string() << "\n\n";

  // The frame under the microscope: the first cyclic frame delivered to
  // the I/O device after vPLC2 took over.
  const auto io_track = hub.track("io-device");
  std::optional<obs::Delivery> pick;
  for (const auto& d : hub.deliveries()) {
    if (d.at == io_track && d.created_at >= switchover) {
      pick = d;
      break;
    }
  }
  if (!pick) {
    std::cout << "MISMATCH: no post-switchover delivery to io-device\n";
    return 1;
  }

  std::cout << "frame trace #" << pick->trace_id
            << ": vplc2 -> io-device, created " << pick->created_at.to_string()
            << ", delivered " << pick->delivered_at.to_string() << "\n\n";

  core::TextTable table({"hop", "where", "start (ns)", "end (ns)",
                         "duration (ns)", "share"});
  const auto rows = hub.breakdown(pick->trace_id);
  const double e2e_ns = static_cast<double>(pick->latency().nanos());
  std::int64_t sum_ns = 0;
  for (const auto& r : rows) {
    sum_ns += r.duration().nanos();
    table.add_row({r.hop, r.track, std::to_string(r.start.nanos()),
                   std::to_string(r.end.nanos()),
                   std::to_string(r.duration().nanos()),
                   core::TextTable::pct(
                       static_cast<double>(r.duration().nanos()) / e2e_ns)});
  }
  table.add_row({"total", "(sum of hops)", "", "", std::to_string(sum_ns),
                 core::TextTable::pct(static_cast<double>(sum_ns) / e2e_ns)});
  table.print(std::cout);

  const std::int64_t e2e = pick->latency().nanos();
  const std::int64_t residual = e2e - sum_ns;
  std::cout << "\nend-to-end latency: " << e2e << " ns; sum of hops: "
            << sum_ns << " ns; residual: " << residual << " ns\n";

  // A taste of the metrics plane next to the trace plane.
  std::cout << "\nregistry excerpt (full dump via --metrics <file>):\n";
  core::TextTable mt({"metric", "value"});
  for (const auto& s : hub.metrics().snapshot()) {
    if (s.path.module == "instaplc" || s.path.name == "frames_delivered" ||
        (s.path.node == "io-device" && s.path.name == "received")) {
      mt.add_row({s.path.node + "/" + s.path.module + "/" + s.path.name,
                  core::TextTable::num(s.value, 0)});
    }
  }
  mt.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  [" << (std::abs(residual) <= 1 ? "ok" : "MISMATCH")
            << "] hop durations tile the end-to-end latency (<= 1 ns "
               "residual)\n"
            << "  [" << (rows.size() >= 5 ? "ok" : "MISMATCH")
            << "] breakdown covers host tx, queueing, link, switch "
               "pipeline, and host rx\n"
            << "  [" << (device.counters().watchdog_trips == 0 ? "ok"
                                                               : "MISMATCH")
            << "] tracing perturbed nothing: device watchdog never "
               "expired\n";

  if (args.trace_path) {
    std::ofstream os(*args.trace_path, std::ios::binary);
    if (!os) {
      std::cerr << "tab_obs: cannot open " << *args.trace_path << "\n";
      return 1;
    }
    obs::write_chrome_trace(os, hub.tracer());
    std::cout << "\nwrote Chrome-trace JSON to " << *args.trace_path
              << " (open at https://ui.perfetto.dev)\n";
  }
  if (args.metrics_path) {
    std::ofstream os(*args.metrics_path, std::ios::binary);
    if (!os) {
      std::cerr << "tab_obs: cannot open " << *args.metrics_path << "\n";
      return 1;
    }
    os << hub.metrics().to_prometheus();
    std::cout << "wrote Prometheus metrics to " << *args.metrics_path << "\n";
  }
  return 0;
}
