// Reproduces Fig. 1: "Industrial networking terms are underrepresented in
// recent SIGCOMM and HotNets proceedings."
//
// The mining pipeline (Aho-Corasick over term groups with permutations,
// word boundaries, longest-match shadowing) is the real thing; the corpus
// is synthetic and calibrated (see DESIGN.md substitution table), since
// ACM full texts cannot be redistributed.
#include <cmath>
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "textmine/corpus.hpp"
#include "textmine/terms.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args =
      bench::BenchArgs::parse(argc, argv, /*default_seed=*/20251117);
  args.warn_obs_unsupported("fig1_research_gap");

  std::cout << "=== Fig. 1: term occurrences (with permutations) in recent "
               "SIGCOMM/HotNets proceedings ===\n\n";

  textmine::CorpusSpec spec{};  // ~250 synthetic full papers
  spec.seed = args.seed;
  const auto docs = textmine::generate_corpus(spec);
  const auto groups = textmine::fig1_term_groups();
  const auto counts = textmine::count_terms(groups, docs);
  const auto published = textmine::fig1_published_counts();

  core::TextTable table(
      {"term group", "patterns", "occurrences", "paper reports", "bar"});
  std::uint64_t peak = 1;
  for (const auto& c : counts) peak = std::max(peak, c.count);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // Log-ish bar so the 0..3005 range stays printable.
    const auto bar_len = static_cast<std::size_t>(
        counts[i].count == 0
            ? 0
            : 1 + 40.0 * std::log10(double(counts[i].count) + 1) /
                      std::log10(double(peak) + 1));
    table.add_row({counts[i].name,
                   std::to_string(groups[i].patterns.size()),
                   std::to_string(counts[i].count),
                   std::to_string(published[i]),
                   std::string(bar_len, '#')});
  }
  table.print(std::cout);

  std::cout << "\ncorpus: " << docs.size() << " documents, "
            << spec.words_per_document << " words each (synthetic; "
            << "counts calibrated to the published values)\n";
  std::cout << "research gap: industrial terms (top rows) vs classic "
               "networking terms (bottom rows)\n";
  return 0;
}
