// Ablation (DESIGN.md): InstaPLC's data-plane liveness threshold.
//
// The paper makes the threshold "a configurable number of I/O cycles".
// Too low: a jittery-but-alive primary (vPLC on a loaded host with
// multi-ms scheduling stalls) triggers spurious switchovers. Too high:
// real failures are detected late and the device watchdog may expire
// first. The sweep shows the trade-off.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "host/samplers.hpp"
#include "host/host_path.hpp"
#include "instaplc/instaplc.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace steelnet;
using namespace steelnet::sim::literals;

/// A vPLC host with rare but long scheduling stalls (overloaded node).
std::unique_ptr<host::HostPath> stall_prone_host(std::uint64_t seed) {
  auto tx = std::make_unique<host::ParetoTailSampler>(
      50_us, /*tail_prob=*/0.004, /*scale=*/2_ms, /*alpha=*/1.6, seed);
  auto rx = std::make_unique<host::FixedSampler>(20_us);
  return std::make_unique<host::HostPath>(std::move(rx), std::move(tx));
}

struct SweepResult {
  bool false_switchover = false;
  sim::SimTime detection_latency;
  std::uint64_t device_trips = 0;
};

SweepResult run_one(std::uint16_t threshold, bool inject_failure,
                    std::uint64_t seed) {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<sdn::SdnSwitchNode>("sdn");
  auto& dev_host = network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  auto& a_host = network.add_node<net::HostNode>("v1", net::MacAddress{0x1});
  auto& b_host = network.add_node<net::HostNode>("v2", net::MacAddress{0x2});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(a_host.id(), 0, sw.id(), 1);
  network.connect(b_host.id(), 0, sw.id(), 2);
  auto stalls = stall_prone_host(seed);
  a_host.set_host_path(stalls.get());

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw,
                            {.device_port = 0, .switchover_cycles = threshold});
  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  profinet::CyclicController vplc1(a_host, c1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(b_host, c2);

  vplc1.connect();
  simulator.schedule_at(100_ms, [&] { vplc2.connect(); });
  const auto fail_at = 10_s;
  if (inject_failure) {
    simulator.schedule_at(fail_at, [&] { vplc1.stop(); });
  }
  simulator.run_until(inject_failure ? fail_at + 2_s : 20_s);

  SweepResult r;
  r.device_trips = device.counters().watchdog_trips;
  if (app.switched_over()) {
    if (!inject_failure || *app.stats().switchover_at < fail_at) {
      r.false_switchover = true;
    } else {
      r.detection_latency = *app.stats().switchover_at - fail_at;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = steelnet::bench::BenchArgs::parse(argc, argv,
                                                      /*default_seed=*/101);
  args.warn_obs_unsupported("ablation_watchdog_sweep");

  std::cout << "=== Ablation: InstaPLC switchover threshold (I/O cycles of "
               "primary silence) ===\n"
            << "primary vPLC on a stall-prone host (Pareto tail stalls up "
               "to several ms); 2 ms cycle; device watchdog factor 3\n\n";

  core::TextTable table({"threshold (cycles)", "false switchover (no fail)",
                         "detection latency (real fail)",
                         "device watchdog trips (real fail)"});
  // Each (threshold, inject_failure) cell is an independent simulation;
  // sweep them across the worker pool and reduce in threshold order.
  const std::vector<std::uint16_t> thresholds{1, 2, 3, 5, 8, 16};
  const auto slots = steelnet::core::SweepRunner{args.jobs}.run(
      2 * thresholds.size(), [&](std::size_t i) {
        return run_one(thresholds[i / 2], /*inject_failure=*/(i % 2) != 0,
                       args.seed);
      });
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    if (!slots[2 * t].ok() || !slots[2 * t + 1].ok()) {
      std::cerr << "ablation_watchdog_sweep: threshold "
                << thresholds[t] << " failed: "
                << (slots[2 * t].ok() ? slots[2 * t + 1].error
                                      : slots[2 * t].error)
                << "\n";
      return 1;
    }
    const SweepResult& quiet = *slots[2 * t].value;
    const SweepResult& fail = *slots[2 * t + 1].value;
    table.add_row(
        {std::to_string(thresholds[t]),
         quiet.false_switchover ? "YES" : "no",
         fail.false_switchover ? "(false trigger)"
                               : fail.detection_latency.to_string(),
         std::to_string(fail.device_trips)});
  }
  table.print(std::cout);

  std::cout << "\ntrade-off: small thresholds misfire on host jitter; "
               "large ones let the device's own watchdog (3 cycles) expire "
               "before the switchover lands.\n";
  return 0;
}
