// The campus at fleet scale on the sharded kernel: hundreds of
// production cells, tens of thousands of PROFINET devices, one
// sim::ShardedSimulator run -- the workload that motivates conservative
// parallel simulation in the first place.
//
// Default mode runs the table campus at shards 1 and 8 and reports, per
// shard count, the cyclic/report/drop totals plus the artifact
// fingerprint -- which must be identical across the two rows (the
// determinism headline this PR's tests and CI gate pin). Modes:
//
//   --shards <n>      run a single shard count instead of {1, 8}
//   --csv             the per-cell CSV artifact of one run (the exact
//                     byte stream the CI diff gate compares across shard
//                     counts) instead of the rendered table
//   --sweep <k>       k seeded small campuses through the seed-sweep
//                     harness (each itself sharded via --shards); prints
//                     one fingerprint row per seed, byte-identical at any
//                     --jobs/--shards combination
//   --metrics <file>  Prometheus dump of the (first) run
//   --trace <file>    Chrome-trace JSON of the (first) run
//   --bench-json <f>  the BIG campus (240 cells x 48 devices ~ 11.5k
//                     PROFINET endpoints) over a shard ladder {1,2,4,8};
//                     the shards=1 rung doubles as the calibration run
//                     whose measured profile drives a second, profile-
//                     guided pass over shards {2,4,8} -- so each threaded
//                     rung appears twice (prefix vs measured placement),
//                     with per-rung partition map / per-shard loads /
//                     imbalance recorded for post-hoc diagnosis
//   --scale <n>       override the big campus cell count (default 240)
//   --skew            hot-zone variant: the first quarter of the cells
//                     runs 4x cyclic rate + fault storms (the workload
//                     the measured-rate partitioner exists for)
//   --partitioner <prefix|measured>  placement strategy of the run
//   --profile-out <f> write the (first) run's measured cell-rate profile
//   --profile-in <f>  feed a calibration profile back; implies the
//                     measured partitioner unless --partitioner prefix
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "net/campus.hpp"
#include "sim/partitioner.hpp"

namespace {

using steelnet::net::CampusOptions;
using steelnet::net::CampusPartitioner;
using steelnet::net::CampusResult;

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

CampusOptions table_options(std::uint64_t seed) {
  CampusOptions opt;
  opt.cells = 48;
  opt.devices_per_cell = 8;
  opt.cycle = steelnet::sim::milliseconds(4);
  opt.horizon = steelnet::sim::milliseconds(150);
  opt.seed = seed;
  opt.faults = true;
  return opt;
}

CampusOptions big_options(std::uint64_t seed, std::size_t cells) {
  CampusOptions opt;
  opt.cells = cells == 0 ? 240 : cells;
  opt.devices_per_cell = 48;
  opt.cycle = steelnet::sim::milliseconds(8);
  opt.horizon = steelnet::sim::milliseconds(250);
  opt.backbone_degree = 3;
  opt.seed = seed;
  return opt;
}

struct Totals {
  std::uint64_t cyclic_tx = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t reports_rx = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t drops = 0;
};

Totals totals_of(const CampusResult& r) {
  Totals t;
  for (const auto& c : r.cells) {
    t.cyclic_tx += c.cyclic_tx;
    t.frames_delivered += c.frames_delivered;
    t.reports_rx += c.reports_received;
    t.watchdog_trips += c.watchdog_trips;
    t.drops += c.dropped_loss + c.dropped_link_down + c.dropped_sender_down +
               c.dropped_receiver_down;
  }
  return t;
}

steelnet::sim::RateProfile load_profile(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::cerr << "tab_campus: cannot read profile '" << path << "'\n";
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return steelnet::sim::RateProfile::parse(text.str());
}

void write_profile(const std::string& path,
                   const steelnet::sim::RateProfile& profile) {
  std::ofstream out{path};
  out << profile.to_text();
  std::cerr << "tab_campus: wrote profile " << path << " ("
            << profile.cells.size() << " cells)\n";
}

/// JSON array of an integer vector, e.g. "[3,1,0]".
template <typename V>
std::string json_array(const V& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(v[i]);
  }
  out += "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1);

  // --- big-campus shard ladder -> BENCH_campus.json ------------------------
  //
  // The shards=1 rung doubles as the calibration run: its measured
  // profile drives a second, profile-guided pass over shards {2,4,8}, so
  // every threaded rung appears twice (prefix vs measured placement).
  // All fingerprints must be identical -- placement must never leak into
  // artifacts -- and under --skew the measured pass must beat prefix on
  // the max/mean load ratio (asserted; wall clock is recorded but only
  // meaningful on multi-core hosts).
  if (args.bench_json_path.has_value()) {
    struct Rung {
      std::size_t shards;
      const char* strategy;
      double wall_s;
      double frames_per_s;
      std::uint64_t fp;
      std::uint64_t events;
      std::uint64_t delivered;
      std::uint64_t imbalance_permille;
      std::vector<std::uint32_t> partition;
      std::vector<std::uint64_t> shard_events;
    };
    std::vector<Rung> rungs;
    sim::RateProfile calibration;
    const auto run_rung = [&](std::size_t sh, bool measured) {
      CampusOptions opt = big_options(args.seed, args.scale);
      opt.shards = sh;
      opt.skew = args.skew;
      if (measured) {
        opt.partitioner = CampusPartitioner::kMeasuredRate;
        opt.measured_weights = calibration.weights();
      }
      const CampusResult r = net::run_campus(opt);
      const Totals t = totals_of(r);
      rungs.push_back({sh, measured ? "measured" : "prefix",
                       r.stats.wall_seconds,
                       r.stats.wall_seconds > 0.0
                           ? static_cast<double>(t.frames_delivered) /
                                 r.stats.wall_seconds
                           : 0.0,
                       r.fingerprint(), r.stats.events, t.frames_delivered,
                       r.imbalance_permille, r.partition, r.shard_events});
      std::fprintf(stderr,
                   "tab_campus: shards=%zu partitioner=%s wall=%.2fs "
                   "imbalance=%" PRIu64 " fp=%s\n",
                   sh, rungs.back().strategy, r.stats.wall_seconds,
                   r.imbalance_permille, hex16(r.fingerprint()).c_str());
      if (sh == 1 && !measured) calibration = r.profile;
      return rungs.front().fp == rungs.back().fp;
    };
    for (const std::size_t sh : {1, 2, 4, 8}) {
      if (!run_rung(sh, /*measured=*/false)) {
        std::cerr << "tab_campus: artifact fingerprint diverged at shards="
                  << sh << " -- determinism bug\n";
        return 1;
      }
    }
    for (const std::size_t sh : {2, 4, 8}) {
      if (!run_rung(sh, /*measured=*/true)) {
        std::cerr << "tab_campus: measured partition changed artifacts at "
                  << "shards=" << sh << " -- determinism bug\n";
        return 1;
      }
    }
    if (args.profile_out_path.has_value()) {
      write_profile(*args.profile_out_path, calibration);
    }
    const auto rung_at = [&](std::size_t sh, const char* strategy) {
      for (const Rung& r : rungs) {
        if (r.shards == sh && std::string(r.strategy) == strategy) return &r;
      }
      return static_cast<const Rung*>(nullptr);
    };
    if (args.skew) {
      // The headline claim of the skewed ladder: measured placement must
      // balance what prefix-quota cannot. (Deterministic, so assertable
      // even on one core, unlike wall clock.)
      const Rung* p8 = rung_at(8, "prefix");
      const Rung* m8 = rung_at(8, "measured");
      if (p8 != nullptr && m8 != nullptr &&
          m8->imbalance_permille >= p8->imbalance_permille) {
        std::cerr << "tab_campus: measured partitioner did not improve the "
                  << "load ratio at shards=8 (prefix=" << p8->imbalance_permille
                  << " measured=" << m8->imbalance_permille << ")\n";
        return 1;
      }
    }

    const CampusOptions copt = big_options(args.seed, args.scale);
    std::ofstream out{*args.bench_json_path};
    out << "{\n  \"bench\": \"campus_shard_scaling\",\n"
        << "  \"context\": {\"cells\": " << copt.cells
        << ", \"devices\": " << copt.cells * copt.devices_per_cell
        << ", \"horizon_ms\": " << copt.horizon.nanos() / 1'000'000
        << ", \"seed\": " << args.seed
        << ", \"skew\": " << (args.skew ? "true" : "false")
        << ", \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << "},\n  \"points\": [\n";
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      const Rung& r = rungs[i];
      char line[320];
      std::snprintf(line, sizeof(line),
                    "    {\"shards\": %zu, \"partitioner\": \"%s\", "
                    "\"wall_s\": %.3f, \"frames_per_s\": %.1f, "
                    "\"events\": %" PRIu64 ", \"frames_delivered\": %" PRIu64
                    ", \"imbalance_permille\": %" PRIu64
                    ", \"artifact_fp\": \"%s\",\n",
                    r.shards, r.strategy, r.wall_s, r.frames_per_s, r.events,
                    r.delivered, r.imbalance_permille, hex16(r.fp).c_str());
      out << line << "     \"shard_events\": " << json_array(r.shard_events)
          << ",\n     \"partition\": " << json_array(r.partition) << "}"
          << (i + 1 < rungs.size() ? "," : "") << "\n";
    }
    const double base = rungs.front().wall_s;
    out << "  ],\n  \"speedup\": {";
    bool first = true;
    for (const Rung& r : rungs) {
      if (std::string(r.strategy) != "prefix") continue;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s\"%zu\": %.2f",
                    first ? "" : ", ", r.shards,
                    r.wall_s > 0.0 ? base / r.wall_s : 0.0);
      out << cell;
      first = false;
    }
    out << "},\n  \"measured_vs_prefix\": {";
    first = true;
    for (const std::size_t sh : {2, 4, 8}) {
      const Rung* p = rung_at(sh, "prefix");
      const Rung* m = rung_at(sh, "measured");
      if (p == nullptr || m == nullptr) continue;
      char cell[192];
      std::snprintf(cell, sizeof(cell),
                    "%s\"%zu\": {\"wall_prefix_s\": %.3f, "
                    "\"wall_measured_s\": %.3f, \"imbalance_prefix\": %" PRIu64
                    ", \"imbalance_measured\": %" PRIu64 "}",
                    first ? "" : ", ", sh, p->wall_s, m->wall_s,
                    p->imbalance_permille, m->imbalance_permille);
      out << cell;
      first = false;
    }
    out << "},\n  \"artifacts_identical\": true\n}\n";
    std::cout << "wrote " << *args.bench_json_path << "\n";
    return 0;
  }

  // --- seed sweep (each task itself sharded) --------------------------------
  if (args.sweep > 0) {
    const std::size_t shards = args.shards == 0 ? 2 : args.shards;
    const auto slots =
        core::SweepRunner{args.jobs, shards}.run(
            args.sweep, [&](std::size_t i) {
              CampusOptions opt = table_options(args.seed + i);
              opt.cells = 12;
              opt.devices_per_cell = 3;
              opt.horizon = sim::milliseconds(80);
              opt.shards = shards;
              opt.skew = args.skew;
              const CampusResult r = net::run_campus(opt);
              return std::pair<std::uint64_t, Totals>{r.fingerprint(),
                                                      totals_of(r)};
            });
    core::CsvWriter csv({"seed", "fingerprint", "cyclic_tx", "reports_rx",
                         "watchdog_trips", "drops"});
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].ok()) {
        std::cerr << "tab_campus: sweep seed " << args.seed + i
                  << " failed: " << slots[i].error << "\n";
        return 1;
      }
      const auto& [fp, t] = *slots[i].value;
      csv.add_row({std::to_string(args.seed + i), hex16(fp),
                   std::to_string(t.cyclic_tx), std::to_string(t.reports_rx),
                   std::to_string(t.watchdog_trips),
                   std::to_string(t.drops)});
    }
    csv.print(std::cout);
    return 0;
  }

  // --- table / CSV mode -----------------------------------------------------
  const std::vector<std::size_t> shard_counts =
      args.shards != 0 ? std::vector<std::size_t>{args.shards}
                       : std::vector<std::size_t>{1, 8};
  sim::RateProfile profile_in;
  if (args.profile_in_path.has_value()) {
    profile_in = load_profile(*args.profile_in_path);
  }
  std::vector<CampusResult> results;
  for (const std::size_t sh : shard_counts) {
    CampusOptions opt = table_options(args.seed);
    opt.shards = sh;
    opt.skew = args.skew;
    if (args.wants_measured_partition()) {
      opt.partitioner = CampusPartitioner::kMeasuredRate;
      opt.measured_weights = profile_in.weights();
    }
    results.push_back(net::run_campus(opt));
    std::fprintf(stderr,
                 "tab_campus: shards=%zu imbalance_permille=%" PRIu64 "\n", sh,
                 results.back().imbalance_permille);
  }
  if (args.profile_out_path.has_value()) {
    write_profile(*args.profile_out_path, results.front().profile);
  }

  if (args.metrics_path.has_value()) {
    std::ofstream{*args.metrics_path} << results.front().to_prometheus();
  }
  if (args.trace_path.has_value()) {
    std::ofstream{*args.trace_path} << results.front().to_chrome_trace();
  }

  if (args.csv) {
    // The CI diff-gate artifact: the raw per-cell CSV of the FIRST run.
    std::cout << results.front().to_csv();
    return 0;
  }

  core::TextTable table({"shards", "events", "cyclic_tx", "delivered",
                         "reports_rx", "wdt_trips", "drops", "fingerprint"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CampusResult& r = results[i];
    const Totals t = totals_of(r);
    table.add_row({std::to_string(shard_counts[i]),
                   std::to_string(r.stats.events),
                   std::to_string(t.cyclic_tx),
                   std::to_string(t.frames_delivered),
                   std::to_string(t.reports_rx),
                   std::to_string(t.watchdog_trips), std::to_string(t.drops),
                   hex16(r.fingerprint())});
  }
  table.print(std::cout);
  if (results.size() > 1) {
    const bool identical =
        results.front().fingerprint() == results.back().fingerprint() &&
        results.front().cells == results.back().cells;
    std::cout << "artifacts shards=" << shard_counts.front()
              << " vs shards=" << shard_counts.back() << ": "
              << (identical ? "byte-identical" : "DIVERGED") << "\n";
    if (!identical) return 1;
  }
  return 0;
}
