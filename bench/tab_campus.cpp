// The campus at fleet scale on the sharded kernel: hundreds of
// production cells, tens of thousands of PROFINET devices, one
// sim::ShardedSimulator run -- the workload that motivates conservative
// parallel simulation in the first place.
//
// Default mode runs the table campus at shards 1 and 8 and reports, per
// shard count, the cyclic/report/drop totals plus the artifact
// fingerprint -- which must be identical across the two rows (the
// determinism headline this PR's tests and CI gate pin). Modes:
//
//   --shards <n>      run a single shard count instead of {1, 8}
//   --csv             the per-cell CSV artifact of one run (the exact
//                     byte stream the CI diff gate compares across shard
//                     counts) instead of the rendered table
//   --sweep <k>       k seeded small campuses through the seed-sweep
//                     harness (each itself sharded via --shards); prints
//                     one fingerprint row per seed, byte-identical at any
//                     --jobs/--shards combination
//   --metrics <file>  Prometheus dump of the (first) run
//   --trace <file>    Chrome-trace JSON of the (first) run
//   --bench-json <f>  the BIG campus (240 cells x 48 devices ~ 11.5k
//                     PROFINET endpoints) over a shard ladder {1,2,4,8},
//                     frames/sec headline per rung, written as a
//                     google-benchmark-style JSON artifact
//   --scale <n>       override the big campus cell count (default 240)
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "net/campus.hpp"

namespace {

using steelnet::net::CampusOptions;
using steelnet::net::CampusResult;

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

CampusOptions table_options(std::uint64_t seed) {
  CampusOptions opt;
  opt.cells = 48;
  opt.devices_per_cell = 8;
  opt.cycle = steelnet::sim::milliseconds(4);
  opt.horizon = steelnet::sim::milliseconds(150);
  opt.seed = seed;
  opt.faults = true;
  return opt;
}

CampusOptions big_options(std::uint64_t seed, std::size_t cells) {
  CampusOptions opt;
  opt.cells = cells == 0 ? 240 : cells;
  opt.devices_per_cell = 48;
  opt.cycle = steelnet::sim::milliseconds(8);
  opt.horizon = steelnet::sim::milliseconds(250);
  opt.backbone_degree = 3;
  opt.seed = seed;
  return opt;
}

struct Totals {
  std::uint64_t cyclic_tx = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t reports_rx = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t drops = 0;
};

Totals totals_of(const CampusResult& r) {
  Totals t;
  for (const auto& c : r.cells) {
    t.cyclic_tx += c.cyclic_tx;
    t.frames_delivered += c.frames_delivered;
    t.reports_rx += c.reports_received;
    t.watchdog_trips += c.watchdog_trips;
    t.drops += c.dropped_loss + c.dropped_link_down + c.dropped_sender_down +
               c.dropped_receiver_down;
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/1);

  // --- big-campus shard ladder -> BENCH_campus.json ------------------------
  if (args.bench_json_path.has_value()) {
    const std::vector<std::size_t> ladder = {1, 2, 4, 8};
    struct Rung {
      std::size_t shards;
      double wall_s;
      double frames_per_s;
      std::uint64_t fp;
      std::uint64_t events;
      std::uint64_t delivered;
    };
    std::vector<Rung> rungs;
    std::size_t devices_total = 0;
    for (const std::size_t sh : ladder) {
      CampusOptions opt = big_options(args.seed, args.scale);
      opt.shards = sh;
      devices_total = opt.cells * opt.devices_per_cell;
      const CampusResult r = net::run_campus(opt);
      const Totals t = totals_of(r);
      rungs.push_back({sh, r.stats.wall_seconds,
                       r.stats.wall_seconds > 0.0
                           ? static_cast<double>(t.frames_delivered) /
                                 r.stats.wall_seconds
                           : 0.0,
                       r.fingerprint(), r.stats.events, t.frames_delivered});
      std::fprintf(stderr, "tab_campus: shards=%zu wall=%.2fs fp=%s\n", sh,
                   r.stats.wall_seconds, hex16(r.fingerprint()).c_str());
      if (rungs.front().fp != rungs.back().fp) {
        std::cerr << "tab_campus: artifact fingerprint diverged at shards="
                  << sh << " -- determinism bug\n";
        return 1;
      }
    }
    std::ofstream out{*args.bench_json_path};
    out << "{\n  \"bench\": \"campus_shard_scaling\",\n"
        << "  \"context\": {\"cells\": " << big_options(args.seed,
                                                        args.scale).cells
        << ", \"devices\": " << devices_total
        << ", \"horizon_ms\": 250, \"seed\": " << args.seed
        << ", \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << "},\n  \"points\": [\n";
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      const Rung& r = rungs[i];
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    {\"shards\": %zu, \"wall_s\": %.3f, "
                    "\"frames_per_s\": %.1f, \"events\": %" PRIu64
                    ", \"frames_delivered\": %" PRIu64
                    ", \"artifact_fp\": \"%s\"}%s\n",
                    r.shards, r.wall_s, r.frames_per_s, r.events, r.delivered,
                    hex16(r.fp).c_str(), i + 1 < rungs.size() ? "," : "");
      out << line;
    }
    const double base = rungs.front().wall_s;
    out << "  ],\n  \"speedup\": {";
    for (std::size_t i = 0; i < rungs.size(); ++i) {
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%s\"%zu\": %.2f",
                    i == 0 ? "" : ", ", rungs[i].shards,
                    rungs[i].wall_s > 0.0 ? base / rungs[i].wall_s : 0.0);
      out << cell;
    }
    out << "},\n  \"artifacts_identical\": true\n}\n";
    std::cout << "wrote " << *args.bench_json_path << "\n";
    return 0;
  }

  // --- seed sweep (each task itself sharded) --------------------------------
  if (args.sweep > 0) {
    const std::size_t shards = args.shards == 0 ? 2 : args.shards;
    const auto slots =
        core::SweepRunner{args.jobs, shards}.run(
            args.sweep, [&](std::size_t i) {
              CampusOptions opt = table_options(args.seed + i);
              opt.cells = 12;
              opt.devices_per_cell = 3;
              opt.horizon = sim::milliseconds(80);
              opt.shards = shards;
              const CampusResult r = net::run_campus(opt);
              return std::pair<std::uint64_t, Totals>{r.fingerprint(),
                                                      totals_of(r)};
            });
    core::CsvWriter csv({"seed", "fingerprint", "cyclic_tx", "reports_rx",
                         "watchdog_trips", "drops"});
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].ok()) {
        std::cerr << "tab_campus: sweep seed " << args.seed + i
                  << " failed: " << slots[i].error << "\n";
        return 1;
      }
      const auto& [fp, t] = *slots[i].value;
      csv.add_row({std::to_string(args.seed + i), hex16(fp),
                   std::to_string(t.cyclic_tx), std::to_string(t.reports_rx),
                   std::to_string(t.watchdog_trips),
                   std::to_string(t.drops)});
    }
    csv.print(std::cout);
    return 0;
  }

  // --- table / CSV mode -----------------------------------------------------
  const std::vector<std::size_t> shard_counts =
      args.shards != 0 ? std::vector<std::size_t>{args.shards}
                       : std::vector<std::size_t>{1, 8};
  std::vector<CampusResult> results;
  for (const std::size_t sh : shard_counts) {
    CampusOptions opt = table_options(args.seed);
    opt.shards = sh;
    results.push_back(net::run_campus(opt));
  }

  if (args.metrics_path.has_value()) {
    std::ofstream{*args.metrics_path} << results.front().to_prometheus();
  }
  if (args.trace_path.has_value()) {
    std::ofstream{*args.trace_path} << results.front().to_chrome_trace();
  }

  if (args.csv) {
    // The CI diff-gate artifact: the raw per-cell CSV of the FIRST run.
    std::cout << results.front().to_csv();
    return 0;
  }

  core::TextTable table({"shards", "events", "cyclic_tx", "delivered",
                         "reports_rx", "wdt_trips", "drops", "fingerprint"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CampusResult& r = results[i];
    const Totals t = totals_of(r);
    table.add_row({std::to_string(shard_counts[i]),
                   std::to_string(r.stats.events),
                   std::to_string(t.cyclic_tx),
                   std::to_string(t.frames_delivered),
                   std::to_string(t.reports_rx),
                   std::to_string(t.watchdog_trips), std::to_string(t.drops),
                   hex16(r.fingerprint())});
  }
  table.print(std::cout);
  if (results.size() > 1) {
    const bool identical =
        results.front().fingerprint() == results.back().fingerprint() &&
        results.front().cells == results.back().cells;
    std::cout << "artifacts shards=" << shard_counts.front()
              << " vs shards=" << shard_counts.back() << ": "
              << (identical ? "byte-identical" : "DIVERGED") << "\n";
    if (!identical) return 1;
  }
  return 0;
}
