// Reproduces the §2.3 traffic-mix discussion as a table: the classic
// mice/medium/elephant taxonomy vs the new never-ending deterministic
// microflows that vPLCs add, and how the bytes-only classifier misfiles
// them.
#include <iostream>

#include "core/report.hpp"
#include "core/traffic_mix.hpp"

int main() {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  std::cout << "=== §2.3: flow taxonomy over a mixed DC + vPLC workload "
               "(1 h observation) ===\n\n";

  core::MixSpec spec;
  const auto flows = core::generate_mix(spec);
  const auto rows = core::tabulate_mix(flows);

  core::TextTable table({"class", "flows", "share of flows",
                         "share of bytes", "misfiled by bytes-only"});
  for (const auto& r : rows) {
    table.add_row({r.klass, std::to_string(r.count),
                   core::TextTable::pct(r.share_of_flows),
                   core::TextTable::pct(r.share_of_bytes),
                   std::to_string(r.misclassified_by_bytes_only)});
  }
  table.print(std::cout);

  // Where do the bytes-only misfiles land?
  std::size_t as_elephant = 0, as_medium = 0, as_mice = 0;
  for (const auto& f : flows) {
    if (core::classify(f) != core::FlowClass::kDeterministicMicroflow) {
      continue;
    }
    switch (core::classify_bytes_only(f)) {
      case core::FlowClass::kElephant: ++as_elephant; break;
      case core::FlowClass::kMedium: ++as_medium; break;
      case core::FlowClass::kMice: ++as_mice; break;
      default: break;
    }
  }
  std::cout << "\nvPLC microflows misfiled by the bytes-only taxonomy as: "
            << as_elephant << " elephants, " << as_medium << " medium, "
            << as_mice << " mice\n";
  std::cout << "(latency-sensitive like mice, never-ending like elephants "
               "-- a class of its own; §2.3)\n";
  return 0;
}
