// Reproduces the §2.3 traffic-mix discussion as a table -- measured, not
// synthesized: the mixed DC + vPLC workload actually runs through a
// simulated switch, a flowmon MeterPoint meters it in-network, IPFIX-style
// records travel over the same network to a CollectorNode, and the
// classifier inputs below are what the collector measured. The classic
// mice/medium/elephant taxonomy vs the never-ending deterministic
// microflows that vPLCs add, and how the bytes-only classifier misfiles
// them.
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/traffic_mix.hpp"
#include "flowmon/mix_scenario.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/7);
  args.warn_obs_unsupported("tab_traffic_mix");

  std::cout << "=== §2.3: flow taxonomy over a mixed DC + vPLC workload, "
               "measured in-network by flowmon ===\n\n";

  flowmon::MeasuredMixSpec spec;
  spec.seed = args.seed;
  const auto result = flowmon::run_measured_mix(spec);
  const auto thresholds = spec.thresholds();
  const auto rows = core::tabulate_mix(result.measured, thresholds);

  std::cout << "offered " << result.flows_offered << " flows ("
            << result.frames_sent << " frames over "
            << spec.observation.seconds() << " s); collector measured "
            << result.flows.size() << " flows from " << result.collector.records
            << " records in " << result.meter.export_frames
            << " export frames (" << result.collector.lost_records
            << " lost)\n\n";

  core::TextTable table({"class", "flows", "share of flows",
                         "share of bytes", "misfiled by bytes-only"});
  for (const auto& r : rows) {
    table.add_row({r.klass, std::to_string(r.count),
                   core::TextTable::pct(r.share_of_flows),
                   core::TextTable::pct(r.share_of_bytes),
                   std::to_string(r.misclassified_by_bytes_only)});
  }
  table.print(std::cout);

  // Where do the bytes-only misfiles land?
  std::size_t as_elephant = 0, as_medium = 0, as_mice = 0;
  for (const auto& f : result.measured) {
    if (core::classify(f, thresholds) !=
        core::FlowClass::kDeterministicMicroflow) {
      continue;
    }
    switch (core::classify_bytes_only(f, thresholds)) {
      case core::FlowClass::kElephant: ++as_elephant; break;
      case core::FlowClass::kMedium: ++as_medium; break;
      case core::FlowClass::kMice: ++as_mice; break;
      default: break;
    }
  }
  std::cout << "\nvPLC microflows misfiled by the bytes-only taxonomy as: "
            << as_elephant << " elephants, " << as_medium << " medium, "
            << as_mice << " mice\n";
  std::cout << "(latency-sensitive like mice, never-ending like elephants "
               "-- a class of its own; §2.3)\n";
  std::cout << "(periodicity and open-endedness detected from measured "
               "cadence -- no flow is told what it is)\n";

  // The original offline synthesis (1 h observation, unscaled volumes),
  // for comparison with the measured window above.
  std::cout << "\n--- offline synthesis (1 h, unscaled), for reference "
               "---\n\n";
  core::MixSpec offline;
  const auto synth_rows = core::tabulate_mix(core::generate_mix(offline));
  core::TextTable synth({"class", "flows", "share of flows",
                        "share of bytes", "misfiled by bytes-only"});
  for (const auto& r : synth_rows) {
    synth.add_row({r.klass, std::to_string(r.count),
                   core::TextTable::pct(r.share_of_flows),
                   core::TextTable::pct(r.share_of_bytes),
                   std::to_string(r.misclassified_by_bytes_only)});
  }
  synth.print(std::cout);
  return 0;
}
