// The §2.2 / §4 availability comparison: for each high-availability
// mechanism, inject a primary failure and measure the control gap the
// I/O device experiences, then translate gaps into yearly availability
// (99.9999% = 31.5 s/yr budget, one failure per month assumed).
//
// Mechanisms:
//   none            -- single vPLC, operator restarts it (~30 s)
//   k8s-restart     -- orchestrator reschedules the pod (~5 s; [57]
//                      reports 110 ms .. 55.4 s depending on failure)
//   hw-pair         -- classic redundant PLC pair w/ dedicated sync links
//                      (detection + 50..300 ms role change; §4 / [98])
//   InstaPLC        -- in-network switchover, no dedicated links
//
// The four measurements are independent single-threaded simulations and
// fan out over a core::SweepRunner pool (--jobs); results reduce in
// mechanism order, so the table and the --csv rows are byte-identical at
// any job count.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_args.hpp"
#include "core/availability.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "instaplc/instaplc.hpp"
#include "net/switch_node.hpp"
#include "plc/redundancy.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace steelnet;
using namespace steelnet::sim::literals;

/// Tracks cyclic arrivals at a device and reports the largest gap in
/// fresh *valid* output data around the failure.
struct GapProbe {
  std::optional<sim::SimTime> last;
  sim::SimTime max_gap;

  void attach(profinet::IoDevice& device, sim::Simulator& simulator) {
    device.set_output_handler(
        [this, &simulator](const std::vector<std::uint8_t>&, bool run) {
          if (!run) return;  // safe-state writes don't count as control
          const auto now = simulator.now();
          if (last) max_gap = std::max(max_gap, now - *last);
          last = now;
        });
  }
};

sim::SimTime measure_unprotected(sim::SimTime restart_delay) {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<net::SwitchNode>("sw");
  auto& dev_host = network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  auto& plc_host = network.add_node<net::HostNode>("plc", net::MacAddress{0x1});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(plc_host.id(), 0, sw.id(), 1);
  profinet::IoDevice device(dev_host);
  profinet::ControllerConfig cfg;
  cfg.device_mac = dev_host.mac();
  profinet::CyclicController vplc(plc_host, cfg);
  GapProbe probe;
  probe.attach(device, simulator);

  vplc.connect();
  simulator.schedule_at(1_s, [&] { vplc.stop(); });
  simulator.schedule_at(1_s + restart_delay, [&] { vplc.connect(); });
  simulator.run_until(1_s + restart_delay + 5_s);
  return probe.max_gap;
}

sim::SimTime measure_hw_pair() {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<net::SwitchNode>("sw");
  auto& dev_host = network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  auto& a_host = network.add_node<net::HostNode>("plc-a", net::MacAddress{0x1});
  auto& b_host = network.add_node<net::HostNode>("plc-b", net::MacAddress{0x2});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(a_host.id(), 0, sw.id(), 1);
  network.connect(b_host.id(), 0, sw.id(), 2);
  profinet::IoDevice device(dev_host);
  profinet::ControllerConfig cfg;
  cfg.device_mac = dev_host.mac();
  profinet::CyclicController primary(a_host, cfg);
  profinet::CyclicController secondary(b_host, cfg);
  GapProbe probe;
  probe.attach(device, simulator);

  plc::RedundancyConfig rcfg;  // 3x10ms detection + 100ms role change
  plc::RedundantPlcPair pair(primary, secondary, rcfg, simulator);
  pair.start();
  simulator.schedule_at(1_s, [&] { pair.fail_primary(); });
  simulator.run_until(5_s);
  return probe.max_gap;
}

sim::SimTime measure_instaplc() {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<sdn::SdnSwitchNode>("sdn");
  auto& dev_host = network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
  auto& a_host = network.add_node<net::HostNode>("v1", net::MacAddress{0x1});
  auto& b_host = network.add_node<net::HostNode>("v2", net::MacAddress{0x2});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(a_host.id(), 0, sw.id(), 1);
  network.connect(b_host.id(), 0, sw.id(), 2);
  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});
  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  profinet::CyclicController vplc1(a_host, c1);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(b_host, c2);
  GapProbe probe;
  probe.attach(device, simulator);

  vplc1.connect();
  simulator.schedule_at(100_ms, [&] { vplc2.connect(); });
  simulator.schedule_at(1_s, [&] { vplc1.stop(); });
  simulator.run_until(5_s);
  return probe.max_gap;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = steelnet::bench::BenchArgs::parse(argc, argv);
  args.warn_obs_unsupported("tab_availability");

  struct Mechanism {
    std::string name;
    std::string notes;
  };
  const std::vector<Mechanism> mechanisms = {
      {"none (operator restart)", "single vPLC, manual recovery"},
      {"k8s pod restart [57]", "orchestrated reschedule + reconnect"},
      {"hw redundant pair [98]", "dedicated sync links, 100 ms role change"},
      {"InstaPLC (in-network)", "no dedicated links, data-plane switchover"},
  };

  // Each measurement owns its whole testbed, so the four runs fan out
  // across the worker pool and reduce in mechanism order.
  const auto slots =
      core::SweepRunner{args.jobs}.run(mechanisms.size(), [](std::size_t i) {
        switch (i) {
          case 0:
            return measure_unprotected(30_s);
          case 1:
            return measure_unprotected(5_s);
          case 2:
            return measure_hw_pair();
          default:
            return measure_instaplc();
        }
      });

  std::vector<sim::SimTime> gaps;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (!slots[i].ok()) {
      std::cerr << "tab_availability: mechanism '" << mechanisms[i].name
                << "' failed: " << slots[i].error << "\n";
      return 1;
    }
    gaps.push_back(*slots[i].value);
  }

  const bool ordered = gaps[3] < gaps[2] && gaps[2] < gaps[1];

  if (args.csv) {
    std::cout << "mechanism,control_gap_ns,yearly_downtime_s,"
                 "availability_at_12_per_year,nines,meets_six_nines\n";
    for (std::size_t i = 0; i < mechanisms.size(); ++i) {
      const auto row = core::make_row(mechanisms[i].name, gaps[i]);
      std::cout << mechanisms[i].name << ',' << gaps[i].nanos() << ','
                << core::TextTable::num(row.yearly_downtime_seconds, 6) << ','
                << core::TextTable::num(row.availability_at_12_per_year, 9)
                << ','
                << core::TextTable::num(core::availability_to_nines(
                                            row.availability_at_12_per_year),
                                        3)
                << ',' << (row.meets_six_nines ? 1 : 0) << '\n';
    }
    return ordered ? 0 : 1;
  }

  std::cout << "=== §2.2/§4: availability per HA mechanism (measured "
               "control gap at the I/O device) ===\n\n";

  core::TextTable table({"mechanism", "control gap", "downtime/yr @12 fail",
                         "availability", "nines", ">= 99.9999%?", "notes"});
  for (std::size_t i = 0; i < mechanisms.size(); ++i) {
    const auto row = core::make_row(mechanisms[i].name, gaps[i]);
    table.add_row({mechanisms[i].name, gaps[i].to_string(),
                   core::TextTable::num(row.yearly_downtime_seconds, 2) + " s",
                   core::TextTable::num(
                       row.availability_at_12_per_year * 100.0, 6) + "%",
                   core::TextTable::num(core::availability_to_nines(
                                            row.availability_at_12_per_year),
                                        2),
                   row.meets_six_nines ? "yes" : "NO", mechanisms[i].notes});
  }
  table.print(std::cout);

  std::cout << "\nbudget: 99.9999% availability = "
            << core::downtime_per_year(0.999999).to_string()
            << " downtime per year (§2.2)\n";
  std::cout << "shape check: InstaPLC gap < hw pair gap < k8s restart gap "
            << "[" << (ordered ? "ok" : "MISMATCH") << "]\n";
  return ordered ? 0 : 1;
}
