// §2.1's kernel discussion, quantified cyclictest-style: per-packet host
// latency distributions for vanilla Linux, PREEMPT_RT and a dual-kernel
// RTOS, including the metric the paper says existing evaluations omit --
// *consecutive* jitter events (bursts), which is what actually expires a
// PROFINET watchdog.
#include <iostream>
#include <string>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "core/sweep_runner.hpp"
#include "host/kernel.hpp"
#include "sim/stats.hpp"

namespace {

/// One kernel's 200k-cycle sampling run -- independent per kernel kind,
/// so the three runs fan out across the sweep pool.
struct KernelRun {
  std::string name;
  steelnet::sim::SampleSet samples;
  std::size_t longest_miss_run = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/17);
  args.warn_obs_unsupported("ablation_kernels");

  constexpr int kSamples = 200'000;
  // A sample "misses" when the kernel stage alone eats more than half of
  // a 250 us motion-control budget (§2.1: latencies down to 250 us).
  const double budget_ns = 125'000;

  std::cout << "=== §2.1: kernel-induced latency, " << kSamples
            << " cycles ===\n\n";

  const std::vector<host::KernelKind> kinds{host::KernelKind::kVanilla,
                                            host::KernelKind::kPreemptRt,
                                            host::KernelKind::kDualKernel};
  // Each kernel model owns its RNG (derived from kind + seed): the three
  // sampling runs are independent and reduce in kind order.
  const auto slots = core::SweepRunner{args.jobs}.run(
      kinds.size(), [&](std::size_t i) {
        host::KernelModel model(kinds[i], args.seed);
        KernelRun run;
        run.name = to_string(kinds[i]);
        std::vector<bool> misses;
        misses.reserve(kSamples);
        for (int s = 0; s < kSamples; ++s) {
          const double ns = double(model.sample(64).nanos());
          run.samples.add(ns / 1000.0);  // us
          misses.push_back(ns > budget_ns);
        }
        run.longest_miss_run = sim::longest_true_run(misses);
        return run;
      });

  std::vector<KernelRun> runs;
  for (const auto& slot : slots) {
    if (!slot.ok()) {
      std::cerr << "ablation_kernels: sampling run failed: " << slot.error
                << "\n";
      return 1;
    }
    runs.push_back(*slot.value);
  }
  std::vector<core::QuantileSeries> series;
  for (const KernelRun& r : runs) series.push_back({r.name, &r.samples});
  std::cout << core::quantile_table(series, "us") << '\n';

  core::TextTable table({"kernel", "misses (>125 us)",
                         "longest consecutive-miss run",
                         "survives watchdog factor 3?"});
  for (const KernelRun& r : runs) {
    std::size_t misses = 0;
    for (double v : r.samples.raw()) {
      if (v > budget_ns / 1000.0) ++misses;
    }
    table.add_row({r.name, std::to_string(misses),
                   std::to_string(r.longest_miss_run),
                   r.longest_miss_run < 3 ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nshape checks (§2.1 [84]):\n"
            << "  [" << (runs[1].samples.percentile(99.99) <
                                 runs[0].samples.percentile(99.99)
                             ? "ok"
                             : "MISMATCH")
            << "] PREEMPT_RT beats vanilla at the 99.99th percentile\n"
            << "  [" << (runs[2].samples.percentile(99.99) <
                                 runs[1].samples.percentile(99.99)
                             ? "ok"
                             : "MISMATCH")
            << "] the dual-kernel RTOS beats PREEMPT_RT\n"
            << "  [" << (runs[1].samples.max() > runs[2].samples.max()
                             ? "ok"
                             : "MISMATCH")
            << "] PREEMPT_RT is still not hard real-time (worst case)\n";
  return 0;
}
