// §2.1's kernel discussion, quantified cyclictest-style: per-packet host
// latency distributions for vanilla Linux, PREEMPT_RT and a dual-kernel
// RTOS, including the metric the paper says existing evaluations omit --
// *consecutive* jitter events (bursts), which is what actually expires a
// PROFINET watchdog.
#include <iostream>
#include <vector>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "host/kernel.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace steelnet;
  using namespace steelnet::sim::literals;

  const auto args = bench::BenchArgs::parse(argc, argv, /*default_seed=*/17);
  args.warn_obs_unsupported("ablation_kernels");

  constexpr int kSamples = 200'000;
  // A sample "misses" when the kernel stage alone eats more than half of
  // a 250 us motion-control budget (§2.1: latencies down to 250 us).
  const double budget_ns = 125'000;

  std::cout << "=== §2.1: kernel-induced latency, " << kSamples
            << " cycles ===\n\n";

  std::vector<sim::SampleSet> samples;
  std::vector<core::QuantileSeries> series;
  std::vector<std::string> names;
  std::vector<std::size_t> longest_miss_runs;

  for (host::KernelKind kind :
       {host::KernelKind::kVanilla, host::KernelKind::kPreemptRt,
        host::KernelKind::kDualKernel}) {
    host::KernelModel model(kind, args.seed);
    sim::SampleSet s;
    std::vector<bool> misses;
    misses.reserve(kSamples);
    for (int i = 0; i < kSamples; ++i) {
      const double ns = double(model.sample(64).nanos());
      s.add(ns / 1000.0);  // us
      misses.push_back(ns > budget_ns);
    }
    longest_miss_runs.push_back(sim::longest_true_run(misses));
    samples.push_back(std::move(s));
    names.emplace_back(to_string(kind));
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    series.push_back({names[i], &samples[i]});
  }
  std::cout << core::quantile_table(series, "us") << '\n';

  core::TextTable table({"kernel", "misses (>125 us)",
                         "longest consecutive-miss run",
                         "survives watchdog factor 3?"});
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::size_t misses = 0;
    for (double v : samples[i].raw()) {
      if (v > budget_ns / 1000.0) ++misses;
    }
    table.add_row({names[i], std::to_string(misses),
                   std::to_string(longest_miss_runs[i]),
                   longest_miss_runs[i] < 3 ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nshape checks (§2.1 [84]):\n"
            << "  [" << (samples[1].percentile(99.99) <
                                 samples[0].percentile(99.99)
                             ? "ok"
                             : "MISMATCH")
            << "] PREEMPT_RT beats vanilla at the 99.99th percentile\n"
            << "  [" << (samples[2].percentile(99.99) <
                                 samples[1].percentile(99.99)
                             ? "ok"
                             : "MISMATCH")
            << "] the dual-kernel RTOS beats PREEMPT_RT\n"
            << "  [" << (samples[1].max() > samples[2].max() ? "ok"
                                                             : "MISMATCH")
            << "] PREEMPT_RT is still not hard real-time (worst case)\n";
  return 0;
}
