// Ablation (§1.1): what the 802.1Qbv time-aware shaper buys a real-time
// flow that shares an egress port with bursty best-effort traffic.
//
// Without gates, an RT frame can arrive just after a 1500 B best-effort
// frame started (~12 us head-of-line at 1 GbE). With a protected window
// aligned to the RT cycle, the guard band keeps the wire clear.
#include <iostream>

#include "bench_args.hpp"
#include "core/report.hpp"
#include "net/host_node.hpp"
#include "net/switch_node.hpp"
#include "sim/stats.hpp"
#include "tsn/gcl.hpp"

namespace {

using namespace steelnet;
using namespace steelnet::sim::literals;

sim::SampleSet run_one(bool with_gcl, int n_cycles) {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig scfg;
  scfg.mac_learning = false;
  auto& sw = network.add_node<net::SwitchNode>("sw", scfg);
  auto& rt_tx = network.add_node<net::HostNode>("rt", net::MacAddress{1});
  auto& be_tx = network.add_node<net::HostNode>("be", net::MacAddress{2});
  auto& rx = network.add_node<net::HostNode>("rx", net::MacAddress{3});
  network.connect(rt_tx.id(), 0, sw.id(), 0);
  network.connect(be_tx.id(), 0, sw.id(), 1);
  network.connect(rx.id(), 0, sw.id(), 2);
  sw.add_fdb_entry(net::MacAddress{3}, 2);

  // Protected window: first 30 us of every 500 us cycle for pcp >= 6.
  const auto cycle = 500_us;
  tsn::GateControlList gcl =
      tsn::make_protected_window_gcl(cycle, 30_us, 6);
  if (with_gcl) sw.set_gate_controller(2, &gcl);

  sim::SampleSet latency_us;
  rx.set_receiver([&](net::Frame f, sim::SimTime at) {
    if (f.pcp == 6) latency_us.add((at - f.created_at).micros());
  });

  // RT sender: one 84 B frame at the start of each cycle (phase 1 us).
  sim::PeriodicTask rt_task(simulator, 1_us, cycle, [&] {
    net::Frame f;
    f.dst = net::MacAddress{3};
    f.pcp = 6;
    f.payload.resize(40);
    rt_tx.send(std::move(f));
  });
  // Best-effort blaster: 1500 B frames as fast as the wire allows.
  sim::PeriodicTask be_task(simulator, 0_ns, 12_us, [&] {
    net::Frame f;
    f.dst = net::MacAddress{3};
    f.pcp = 0;
    f.payload.resize(1500);
    be_tx.send(std::move(f));
  });

  simulator.run_until(cycle * n_cycles);
  return latency_us;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = steelnet::bench::BenchArgs::parse(argc, argv);
  args.warn_obs_unsupported("ablation_tsn_gcl");

  std::cout << "=== Ablation: time-aware shaping (802.1Qbv) on a shared "
               "egress port ===\n"
            << "RT flow: 84 B every 500 us at pcp 6; best-effort: 1500 B "
               "line-rate at pcp 0; 1 GbE\n\n";

  const auto without = run_one(false, 4000);
  const auto with = run_one(true, 4000);

  std::cout << core::quantile_table(
                   {{"strict priority only", &without},
                    {"with protected window (GCL)", &with}},
                   "us")
            << '\n';

  const double spread_without =
      without.percentile(99.9) - without.percentile(1);
  const double spread_with = with.percentile(99.9) - with.percentile(1);
  core::TextTable table({"config", "p1..p99.9 spread (us)"});
  table.add_row({"strict priority only",
                 core::TextTable::num(spread_without, 3)});
  table.add_row({"with GCL", core::TextTable::num(spread_with, 3)});
  table.print(std::cout);

  std::cout << "\nshape check: [" << (spread_with < spread_without / 4
                                          ? "ok"
                                          : "MISMATCH")
            << "] the gate removes best-effort head-of-line variance from "
               "the RT flow\n";
  return 0;
}
