#include <gtest/gtest.h>

#include "net/switch_node.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet::profinet {
namespace {

using namespace steelnet::sim::literals;

/// Controller and device on one switch -- the minimal production cell.
struct CellFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::HostNode* plc_host;
  net::HostNode* dev_host;
  std::unique_ptr<CyclicController> controller;
  std::unique_ptr<IoDevice> device;

  explicit CellFixture(ControllerConfig cfg = {},
                       IoDeviceConfig dev_cfg = {}) {
    auto& sw = network.add_node<net::SwitchNode>("sw");
    plc_host = &network.add_node<net::HostNode>("plc", net::MacAddress{0xA});
    dev_host = &network.add_node<net::HostNode>("dev", net::MacAddress{0xB});
    network.connect(plc_host->id(), 0, sw.id(), 0);
    network.connect(dev_host->id(), 0, sw.id(), 1);
    cfg.device_mac = dev_host->mac();
    controller = std::make_unique<CyclicController>(*plc_host, cfg);
    device = std::make_unique<IoDevice>(*dev_host, dev_cfg);
  }
};

TEST(Exchange, ConnectEstablishesDataExchange) {
  CellFixture fx;
  bool accepted = false;
  fx.controller->set_connected_handler([&](bool ok) { accepted = ok; });
  fx.controller->connect();
  fx.simulator.run_until(50_ms);
  EXPECT_TRUE(accepted);
  EXPECT_EQ(fx.controller->state(), ControllerState::kRunning);
  EXPECT_EQ(fx.device->state(), DeviceState::kDataExchange);
  EXPECT_EQ(fx.device->active_ar(), 1);
}

TEST(Exchange, CyclicDataFlowsBothWays) {
  CellFixture fx;
  int inputs_seen = 0;
  std::vector<std::uint8_t> outputs_seen;
  fx.controller->set_input_handler(
      [&](const std::vector<std::uint8_t>&) { ++inputs_seen; });
  fx.controller->set_output_provider([](std::size_t n) {
    return std::vector<std::uint8_t>(n, 0x5a);
  });
  fx.device->set_output_handler(
      [&](const std::vector<std::uint8_t>& o, bool) { outputs_seen = o; });
  fx.controller->connect();
  fx.simulator.run_until(100_ms);
  // ~50 cycles of 2ms in 100ms.
  EXPECT_GT(inputs_seen, 30);
  EXPECT_GT(fx.controller->counters().cyclic_tx, 30u);
  EXPECT_GT(fx.device->counters().cyclic_rx, 30u);
  ASSERT_FALSE(outputs_seen.empty());
  EXPECT_EQ(outputs_seen[0], 0x5a);
}

TEST(Exchange, ParamRecordsDelivered) {
  ControllerConfig cfg;
  ParamRecord rec;
  rec.record_index = 7;
  rec.data = {1, 2, 3};
  cfg.records.push_back(rec);
  CellFixture fx{cfg};
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  ASSERT_TRUE(fx.device->param_records().contains(7));
  EXPECT_EQ(fx.device->param_records().at(7),
            (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Exchange, WatchdogTripsWhenControllerStops) {
  CellFixture fx;
  bool run_state = true;
  fx.device->set_output_handler(
      [&](const std::vector<std::uint8_t>&, bool run) { run_state = run; });
  fx.controller->connect();
  fx.simulator.run_until(50_ms);
  ASSERT_EQ(fx.device->state(), DeviceState::kDataExchange);

  fx.controller->stop();
  fx.simulator.run_until(100_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kWatchdogExpired);
  EXPECT_EQ(fx.device->counters().watchdog_trips, 1u);
  EXPECT_GE(fx.device->counters().alarms_sent, 1u);
  EXPECT_FALSE(run_state);  // outputs driven to safe state
}

TEST(Exchange, WatchdogRespectsFactor) {
  // watchdog_factor 3 at 2ms cycle -> must NOT trip within 6ms of silence
  // but must trip soon after.
  CellFixture fx;
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  fx.controller->stop();
  fx.simulator.run_until(20_ms + 5_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kDataExchange);
  fx.simulator.run_until(20_ms + 12_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kWatchdogExpired);
}

TEST(Exchange, AutoResumeAfterWatchdog) {
  CellFixture fx;
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  fx.controller->stop();
  fx.simulator.run_until(60_ms);
  ASSERT_EQ(fx.device->state(), DeviceState::kWatchdogExpired);
  // A standby adopts the AR and resumes transmission.
  fx.controller->adopt_running(100);
  // stop() set state to kStopped; adopt_running overrides.
  fx.simulator.run_until(100_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kDataExchange);
}

TEST(Exchange, NoAutoResumeWhenDisabled) {
  IoDeviceConfig dev_cfg;
  dev_cfg.auto_resume = false;
  CellFixture fx{ControllerConfig{}, dev_cfg};
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  fx.controller->stop();
  fx.simulator.run_until(60_ms);
  ASSERT_EQ(fx.device->state(), DeviceState::kWatchdogExpired);
  fx.controller->adopt_running(100);
  fx.simulator.run_until(100_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kWatchdogExpired);
}

TEST(Exchange, SecondArRejected) {
  CellFixture fx;
  fx.controller->connect();
  fx.simulator.run_until(20_ms);

  // A second controller targets the same device with another AR.
  auto& sw = dynamic_cast<net::SwitchNode&>(fx.network.node(0));
  auto& host2 = fx.network.add_node<net::HostNode>("plc2",
                                                   net::MacAddress{0xC});
  fx.network.connect(host2.id(), 0, sw.id(), 2);
  ControllerConfig cfg2;
  cfg2.ar_id = 2;
  cfg2.device_mac = fx.dev_host->mac();
  cfg2.max_connect_retries = 1;
  CyclicController second(host2, cfg2);
  bool accepted = true;
  second.set_connected_handler([&](bool ok) { accepted = ok; });
  second.connect();
  fx.simulator.run_until(60_ms);
  EXPECT_FALSE(accepted);
  EXPECT_GE(fx.device->counters().rejected_connects, 1u);
  // Original exchange unharmed.
  EXPECT_EQ(fx.device->state(), DeviceState::kDataExchange);
  EXPECT_EQ(fx.device->active_ar(), 1);
}

TEST(Exchange, ConnectRetriesThenGivesUp) {
  CellFixture fx;  // its controller is unused here
  // A controller aimed at a MAC nobody owns: the switch floods, every
  // host's NIC filter discards, and the retries run dry.
  ControllerConfig cfg;
  cfg.device_mac = net::MacAddress{0x99};
  cfg.max_connect_retries = 3;
  cfg.connect_timeout = 5_ms;
  auto& sw = dynamic_cast<net::SwitchNode&>(fx.network.node(0));
  auto& host = fx.network.add_node<net::HostNode>("plc-x",
                                                  net::MacAddress{0xD});
  fx.network.connect(host.id(), 0, sw.id(), 3);
  CyclicController lonely(host, cfg);
  bool result = true;
  bool called = false;
  lonely.set_connected_handler([&](bool ok) {
    called = true;
    result = ok;
  });
  lonely.connect();
  fx.simulator.run_until(200_ms);
  EXPECT_TRUE(called);
  EXPECT_FALSE(result);
  EXPECT_EQ(lonely.counters().connects_sent, 3u);
  EXPECT_EQ(lonely.state(), ControllerState::kIdle);
}

TEST(Exchange, ControllerDetectsDeviceLoss) {
  CellFixture fx;
  bool lost = false;
  fx.controller->set_device_lost_handler([&] { lost = true; });
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  // Kill the device side by detaching its receiver.
  fx.device.reset();
  fx.dev_host->set_receiver(nullptr);
  fx.simulator.run_until(60_ms);
  EXPECT_TRUE(lost);
  EXPECT_EQ(fx.controller->state(), ControllerState::kDeviceLost);
  EXPECT_EQ(fx.controller->counters().device_watchdog_trips, 1u);
}

TEST(Exchange, ReleaseReturnsDeviceToIdle) {
  CellFixture fx;
  fx.controller->connect();
  fx.simulator.run_until(20_ms);
  Release rel;
  rel.ar_id = 1;
  net::Frame f;
  f.dst = fx.dev_host->mac();
  f.ethertype = net::EtherType::kProfinetRt;
  f.payload = encode(Pdu{rel});
  fx.plc_host->send(std::move(f));
  // Controller still sends, but device ignores after release... the
  // device returns to idle and a fresh connect must succeed.
  fx.controller->stop();
  fx.simulator.run_until(40_ms);
  EXPECT_EQ(fx.device->state(), DeviceState::kIdle);
}

}  // namespace
}  // namespace steelnet::profinet
