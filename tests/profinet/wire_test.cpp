#include "profinet/wire.hpp"

#include <gtest/gtest.h>

namespace steelnet::profinet {
namespace {

template <typename T>
T round_trip(const T& pdu) {
  const auto bytes = encode(Pdu{pdu});
  const auto back = decode(bytes);
  EXPECT_TRUE(back.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*back));
  return std::get<T>(*back);
}

TEST(Wire, ConnectReqRoundTrip) {
  ConnectReq p;
  p.ar_id = 0x1234;
  p.cycle_time_us = 500;
  p.watchdog_factor = 7;
  p.input_bytes = 20;
  p.output_bytes = 40;
  const auto q = round_trip(p);
  EXPECT_EQ(q.ar_id, 0x1234);
  EXPECT_EQ(q.cycle_time_us, 500u);
  EXPECT_EQ(q.watchdog_factor, 7);
  EXPECT_EQ(q.input_bytes, 20);
  EXPECT_EQ(q.output_bytes, 40);
}

TEST(Wire, ConnectRespRoundTrip) {
  ConnectResp p;
  p.ar_id = 9;
  p.status = 1;
  p.device_id = 0xdeadbeef;
  const auto q = round_trip(p);
  EXPECT_EQ(q.ar_id, 9);
  EXPECT_EQ(q.status, 1);
  EXPECT_EQ(q.device_id, 0xdeadbeefu);
}

TEST(Wire, ParamRecordRoundTrip) {
  ParamRecord p;
  p.ar_id = 2;
  p.record_index = 0x10;
  p.data = {1, 2, 3, 4, 5};
  const auto q = round_trip(p);
  EXPECT_EQ(q.record_index, 0x10);
  EXPECT_EQ(q.data, p.data);
}

TEST(Wire, CyclicDataRoundTrip) {
  CyclicData p;
  p.ar_id = 3;
  p.cycle_counter = 0xbeef;
  p.data_status = 0b101;
  p.data = {0xff, 0x00, 0x7f};
  const auto q = round_trip(p);
  EXPECT_EQ(q.cycle_counter, 0xbeef);
  EXPECT_TRUE(q.running());
  EXPECT_TRUE(q.valid());
  EXPECT_EQ(q.data, p.data);
}

TEST(Wire, StoppedStatusFlags) {
  CyclicData p;
  p.data_status = 0b100;
  EXPECT_FALSE(p.running());
  EXPECT_TRUE(p.valid());
}

TEST(Wire, AlarmAndReleaseRoundTrip) {
  Alarm a;
  a.ar_id = 5;
  a.alarm_type = Alarm::kWatchdogExpired;
  EXPECT_EQ(round_trip(a).alarm_type, Alarm::kWatchdogExpired);
  Release r;
  r.ar_id = 6;
  EXPECT_EQ(round_trip(r).ar_id, 6);
}

TEST(Wire, ParamDoneRoundTrip) {
  ParamDone p;
  p.ar_id = 11;
  EXPECT_EQ(round_trip(p).ar_id, 11);
}

TEST(Wire, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode({}).has_value());
  EXPECT_FALSE(decode({99}).has_value());            // unknown type
  EXPECT_FALSE(decode({1, 0x34}).has_value());       // truncated ConnectReq
  // CyclicData claiming more data than present.
  CyclicData p;
  p.data = {1, 2, 3};
  auto bytes = encode(Pdu{p});
  bytes.pop_back();
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, PeekTypeAndAr) {
  CyclicData p;
  p.ar_id = 0xabcd;
  const auto bytes = encode(Pdu{p});
  EXPECT_EQ(peek_type(bytes), PduType::kCyclicData);
  EXPECT_EQ(peek_ar(bytes), 0xabcd);
  EXPECT_FALSE(peek_type({}).has_value());
  EXPECT_FALSE(peek_ar({5}).has_value());
  EXPECT_FALSE(peek_type({42}).has_value());
}

TEST(Wire, OffsetsMatchEncoding) {
  CyclicData p;
  p.ar_id = 0x1122;
  p.cycle_counter = 0x3344;
  p.data_status = 0x05;
  const auto bytes = encode(Pdu{p});
  EXPECT_EQ(bytes[offsets::kPduType],
            static_cast<std::uint8_t>(PduType::kCyclicData));
  EXPECT_EQ(bytes[offsets::kArId], 0x22);
  EXPECT_EQ(bytes[offsets::kArId + 1], 0x11);
  EXPECT_EQ(bytes[offsets::kCycleCounter], 0x44);
  EXPECT_EQ(bytes[offsets::kDataStatus], 0x05);
}

TEST(Wire, TypeNames) {
  EXPECT_STREQ(to_string(PduType::kCyclicData).c_str(), "CyclicData");
  EXPECT_STREQ(to_string(PduType::kConnectReq).c_str(), "ConnectReq");
}

}  // namespace
}  // namespace steelnet::profinet
