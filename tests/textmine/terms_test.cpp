#include "textmine/terms.hpp"

#include <gtest/gtest.h>

#include "textmine/corpus.hpp"

namespace steelnet::textmine {
namespace {

TEST(Permutations, TwoPartsTwoSeparators) {
  const auto p = expand_permutations({"it", "ot"}, {"/", "-"});
  ASSERT_EQ(p.size(), 4u);
  EXPECT_NE(std::find(p.begin(), p.end(), "it/ot"), p.end());
  EXPECT_NE(std::find(p.begin(), p.end(), "ot/it"), p.end());
  EXPECT_NE(std::find(p.begin(), p.end(), "it-ot"), p.end());
  EXPECT_NE(std::find(p.begin(), p.end(), "ot-it"), p.end());
}

TEST(Permutations, ThreeParts) {
  const auto p = expand_permutations({"a", "b", "c"}, {"/"});
  EXPECT_EQ(p.size(), 6u);
}

TEST(Fig1Groups, ThirteenGroupsInPaperOrder) {
  const auto groups = fig1_term_groups();
  ASSERT_EQ(groups.size(), 13u);
  EXPECT_EQ(groups.front().name, "vPLC");
  EXPECT_EQ(groups.back().name, "TCP/UDP/IPv4/IPv6");
  for (const auto& g : groups) EXPECT_FALSE(g.patterns.empty()) << g.name;
}

TEST(CountTerms, BasicCounting) {
  const auto groups = fig1_term_groups();
  const std::vector<std::string> docs{
      "we deploy a vplc next to the plc on the tsn network",
      "the internet and a data center meet tcp and udp",
  };
  const auto counts = count_terms(groups, docs);
  auto find = [&](const std::string& name) {
    for (const auto& c : counts) {
      if (c.name == name) return c.count;
    }
    return std::uint64_t(9999);
  };
  EXPECT_EQ(find("vPLC"), 1u);
  EXPECT_EQ(find("PLC"), 1u);  // the standalone plc; vplc doesn't count
  EXPECT_EQ(find("PROFINET/EtherCAT/TSN"), 1u);
  EXPECT_EQ(find("Internet"), 1u);
  EXPECT_EQ(find("Datacenter"), 1u);
  EXPECT_EQ(find("TCP/UDP/IPv4/IPv6"), 2u);
  EXPECT_EQ(find("Industrial Network"), 0u);
}

TEST(CountTerms, LongestMatchShadowsAcrossGroups) {
  const auto groups = fig1_term_groups();
  const std::vector<std::string> docs{
      "the industrial internet of things changes manufacturing"};
  const auto counts = count_terms(groups, docs);
  for (const auto& c : counts) {
    if (c.name == "IIoT") EXPECT_EQ(c.count, 1u);
    if (c.name == "Internet") EXPECT_EQ(c.count, 0u);  // shadowed by IIoT
  }
}

TEST(CountTerms, PluralNotDoubleCounted) {
  const auto groups = fig1_term_groups();
  const auto counts =
      count_terms(groups, {"many data centers and cyber-physical systems"});
  for (const auto& c : counts) {
    if (c.name == "Datacenter") EXPECT_EQ(c.count, 1u);
    if (c.name == "Cyber Physical System") EXPECT_EQ(c.count, 1u);
  }
}

TEST(Corpus, PublishedCountsReproducedExactly) {
  // The full Fig. 1 pipeline: generate the calibrated corpus, run the
  // real miner, compare against the published bar values.
  CorpusSpec spec;
  spec.documents = 50;           // smaller corpus for test speed
  spec.words_per_document = 800;
  const auto docs = generate_corpus(spec);
  const auto counts = count_terms(fig1_term_groups(), docs);
  const auto expected = fig1_published_counts();
  ASSERT_EQ(counts.size(), expected.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].count, expected[i]) << counts[i].name;
  }
}

TEST(Corpus, DeterministicPerSeed) {
  CorpusSpec spec;
  spec.documents = 5;
  spec.words_per_document = 100;
  const auto a = generate_corpus(spec);
  const auto b = generate_corpus(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  spec.seed += 1;
  const auto c = generate_corpus(spec);
  EXPECT_NE(a[0], c[0]);
}

TEST(Corpus, BackgroundVocabIsTermFree) {
  // No injections: the miner must find nothing in pure background prose.
  CorpusSpec spec;
  spec.documents = 10;
  spec.words_per_document = 2000;
  const auto docs = generate_corpus(
      spec, std::vector<std::uint64_t>(fig1_term_groups().size(), 0));
  for (const auto& c : count_terms(fig1_term_groups(), docs)) {
    EXPECT_EQ(c.count, 0u) << c.name;
  }
}

TEST(Corpus, CountGroupMismatchThrows) {
  EXPECT_THROW(generate_corpus(CorpusSpec{}, {1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace steelnet::textmine
