#include "textmine/aho_corasick.hpp"

#include <gtest/gtest.h>

namespace steelnet::textmine {
namespace {

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  ac.add_pattern("plc", 1);
  ac.build();
  const auto m = ac.find_all("the plc controls the plant plc");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].position, 4u);
  EXPECT_EQ(m[0].length, 3u);
  EXPECT_EQ(m[1].position, 27u);
}

TEST(AhoCorasick, CaseInsensitive) {
  AhoCorasick ac;
  ac.add_pattern("TSN", 1);
  ac.build();
  EXPECT_EQ(ac.find_all("tsn TSN Tsn").size(), 3u);
}

TEST(AhoCorasick, OverlappingPatterns) {
  AhoCorasick ac;
  ac.add_pattern("he", 1);
  ac.add_pattern("she", 2);
  ac.add_pattern("hers", 3);
  ac.build();
  const auto m = ac.find_all("ushers");
  // "she" at 1, "he" at 2, "hers" at 2.
  ASSERT_EQ(m.size(), 3u);
}

TEST(AhoCorasick, PatternIsSuffixOfAnother) {
  AhoCorasick ac;
  ac.add_pattern("datacenter", 1);
  ac.add_pattern("center", 2);
  ac.build();
  const auto m = ac.find_all("datacenter");
  ASSERT_EQ(m.size(), 2u);
}

TEST(AhoCorasick, WordBoundariesFilter) {
  AhoCorasick ac;
  ac.add_pattern("plc", 1);
  ac.build();
  // "vplc" and "plcs" contain plc but not on word boundaries.
  EXPECT_EQ(ac.find_words("vplc plcs").size(), 0u);
  EXPECT_EQ(ac.find_words("plc, (plc) plc").size(), 3u);
  EXPECT_EQ(ac.find_words("plc").size(), 1u);
}

TEST(AhoCorasick, MultiWordPatterns) {
  AhoCorasick ac;
  ac.add_pattern("data center", 1);
  ac.build();
  EXPECT_EQ(ac.find_words("a data center network").size(), 1u);
  EXPECT_EQ(ac.find_words("metadata centers").size(), 0u);
}

TEST(AhoCorasick, SpecialCharactersInPatterns) {
  AhoCorasick ac;
  ac.add_pattern("it/ot", 1);
  ac.add_pattern("industry 4.0", 2);
  ac.build();
  EXPECT_EQ(ac.find_words("the it/ot gap in industry 4.0 era").size(), 2u);
}

TEST(AhoCorasick, EmptyTextAndNoMatches) {
  AhoCorasick ac;
  ac.add_pattern("xyz", 1);
  ac.build();
  EXPECT_TRUE(ac.find_all("").empty());
  EXPECT_TRUE(ac.find_all("abcabc").empty());
}

TEST(AhoCorasick, UsageErrors) {
  AhoCorasick ac;
  EXPECT_THROW(ac.add_pattern("", 1), std::invalid_argument);
  ac.add_pattern("x", 1);
  EXPECT_THROW(ac.find_all("x"), std::logic_error);
  ac.build();
  EXPECT_THROW(ac.add_pattern("y", 2), std::logic_error);
  EXPECT_EQ(ac.pattern_count(), 1u);
}

TEST(AhoCorasick, ManyPatternsStress) {
  AhoCorasick ac;
  std::vector<std::string> pats;
  for (int i = 0; i < 200; ++i) {
    pats.push_back("term" + std::to_string(i));
    ac.add_pattern(pats.back(), std::uint32_t(i));
  }
  ac.build();
  std::string text;
  for (int i = 0; i < 200; ++i) text += pats[std::size_t(i)] + " ";
  const auto m = ac.find_words(text);
  // term1 matches also inside term10..term19? No: word boundaries block.
  EXPECT_EQ(m.size(), 200u);
}

}  // namespace
}  // namespace steelnet::textmine
