// The InstaPLC failover scenario of §4 / Fig. 5, end to end.
#include "instaplc/instaplc.hpp"

#include <gtest/gtest.h>

#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet::instaplc {
namespace {

using namespace steelnet::sim::literals;

struct InstaFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  sdn::SdnSwitchNode* sw;
  net::HostNode* dev_host;
  net::HostNode* vplc1_host;
  net::HostNode* vplc2_host;
  std::unique_ptr<profinet::IoDevice> device;
  std::unique_ptr<profinet::CyclicController> vplc1;
  std::unique_ptr<profinet::CyclicController> vplc2;
  std::unique_ptr<InstaPlcApp> app;

  static constexpr net::PortId kDevPort = 0;
  static constexpr net::PortId kV1Port = 1;
  static constexpr net::PortId kV2Port = 2;

  explicit InstaFixture(InstaPlcConfig cfg = {.device_port = kDevPort,
                                              .switchover_cycles = 3}) {
    sw = &network.add_node<sdn::SdnSwitchNode>("sdn");
    dev_host = &network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
    vplc1_host = &network.add_node<net::HostNode>("v1", net::MacAddress{0x1});
    vplc2_host = &network.add_node<net::HostNode>("v2", net::MacAddress{0x2});
    network.connect(dev_host->id(), 0, sw->id(), kDevPort);
    network.connect(vplc1_host->id(), 0, sw->id(), kV1Port);
    network.connect(vplc2_host->id(), 0, sw->id(), kV2Port);
    device = std::make_unique<profinet::IoDevice>(*dev_host);
    app = std::make_unique<InstaPlcApp>(*sw, cfg);

    profinet::ControllerConfig c1;
    c1.ar_id = 1;
    c1.device_mac = dev_host->mac();
    profinet::ParamRecord rec;
    rec.record_index = 3;
    rec.data = {9, 9};
    c1.records.push_back(rec);
    vplc1 = std::make_unique<profinet::CyclicController>(*vplc1_host, c1);

    profinet::ControllerConfig c2 = c1;
    c2.ar_id = 2;
    vplc2 = std::make_unique<profinet::CyclicController>(*vplc2_host, c2);
  }
};

TEST(InstaPlc, FirstConnectorBecomesPrimary) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  ASSERT_TRUE(fx.app->primary().has_value());
  EXPECT_EQ(fx.app->primary()->mac, fx.vplc1_host->mac());
  EXPECT_EQ(fx.app->primary()->ar_id, 1);
  EXPECT_EQ(fx.vplc1->state(), profinet::ControllerState::kRunning);
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
  EXPECT_FALSE(fx.app->secondary().has_value());
}

TEST(InstaPlc, TwinLearnsFromPrimaryExchange) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  const auto& twin = fx.app->twin();
  EXPECT_TRUE(twin.ready());
  EXPECT_EQ(twin.device_id(), 1u);
  EXPECT_EQ(twin.cycle_time_us(), 2000u);
  EXPECT_EQ(twin.watchdog_factor(), 3);
  ASSERT_TRUE(twin.learned_records().contains(3));
  EXPECT_EQ(twin.learned_records().at(3), (std::vector<std::uint8_t>{9, 9}));
}

TEST(InstaPlc, SecondaryConnectsToTwinNotDevice) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(100_ms);
  // The secondary believes it is running against the real device.
  EXPECT_EQ(fx.vplc2->state(), profinet::ControllerState::kRunning);
  ASSERT_TRUE(fx.app->secondary().has_value());
  EXPECT_EQ(fx.app->secondary()->ar_id, 2);
  // But the device saw exactly one AR and zero rejected connects: the
  // twin absorbed the whole second establishment.
  EXPECT_EQ(fx.device->active_ar(), 1);
  EXPECT_EQ(fx.device->counters().rejected_connects, 0u);
  EXPECT_EQ(fx.app->twin().secondary_ar(), 2);
}

TEST(InstaPlc, SecondaryReceivesDeviceInputsViaMirror) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  const auto rx_before = fx.vplc2->counters().cyclic_rx;
  fx.simulator.run_until(200_ms);
  // Rule (3): both vPLCs know the exact state of the I/O.
  EXPECT_GT(fx.vplc2->counters().cyclic_rx, rx_before + 30);
  EXPECT_GT(fx.vplc1->counters().cyclic_rx, 30u);
  EXPECT_EQ(fx.vplc2->state(), profinet::ControllerState::kRunning);
}

TEST(InstaPlc, SecondaryCyclicFramesDroppedBeforeSwitchover) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(200_ms);
  // The device only ever saw the primary's AR; secondary cyclic counted
  // at the switch but never delivered.
  EXPECT_GT(fx.app->stats().secondary_cyclic, 30u);
  EXPECT_EQ(fx.device->active_ar(), 1);
  EXPECT_FALSE(fx.app->switched_over());
}

TEST(InstaPlc, SwitchoverOnPrimarySilence) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(500_ms);

  fx.vplc1->stop();
  fx.simulator.run_until(1_s);
  ASSERT_TRUE(fx.app->switched_over());
  // Switchover detected within ~switchover_cycles+1 I/O cycles.
  const auto detect =
      *fx.app->stats().switchover_at - 500_ms;
  EXPECT_LE(detect, 10_ms);
  // Device stayed in (or returned to) data exchange under vPLC2.
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
  // Inputs flow to the secondary.
  const auto rx = fx.vplc2->counters().cyclic_rx;
  fx.simulator.run_until(1500_ms);
  EXPECT_GT(fx.vplc2->counters().cyclic_rx, rx + 100);
}

TEST(InstaPlc, DeviceNeverTripsWatchdogAcrossSwitchover) {
  // The whole point: detection (3 cycles) + data-plane rule flip beats
  // the device's own watchdog (3 cycles) because the secondary is
  // already synchronized and transmitting.
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(500_ms);
  fx.vplc1->stop();
  fx.simulator.run_until(3_s);
  EXPECT_TRUE(fx.app->switched_over());
  EXPECT_LE(fx.device->counters().watchdog_trips, 1u);
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
}

TEST(InstaPlc, ObserverSeesTimeline) {
  InstaFixture fx;
  std::vector<InstaPlcEvent> events;
  fx.app->set_observer(
      [&](InstaPlcEvent e, sim::SimTime) { events.push_back(e); });
  fx.vplc1->connect();
  fx.simulator.run_until(200_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(500_ms);
  fx.vplc1->stop();
  fx.simulator.run_until(1_s);
  const auto count = [&](InstaPlcEvent e) {
    return std::count(events.begin(), events.end(), e);
  };
  EXPECT_GT(count(InstaPlcEvent::kPrimaryCyclic), 100);
  EXPECT_GT(count(InstaPlcEvent::kSecondaryCyclic), 100);
  EXPECT_GT(count(InstaPlcEvent::kFromDevice), 200);
  EXPECT_GT(count(InstaPlcEvent::kToDevice), 300);
  EXPECT_EQ(count(InstaPlcEvent::kSwitchover), 1);
}

TEST(InstaPlc, NoSwitchoverWithoutSecondary) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(100_ms);
  fx.vplc1->stop();
  fx.simulator.run_until(1_s);
  EXPECT_FALSE(fx.app->switched_over());
  // Device trips its watchdog: no standby existed to take over.
  EXPECT_GE(fx.device->counters().watchdog_trips, 1u);
}

TEST(InstaPlc, ArIdRewrittenForDevice) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(500_ms);
  fx.vplc1->stop();
  fx.simulator.run_until(2_s);
  // vPLC2 talks AR 2; the device only has AR 1 open. The data plane
  // rewrites in flight -- the device keeps exchanging under AR 1.
  EXPECT_EQ(fx.device->active_ar(), 1);
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
  EXPECT_EQ(fx.vplc2->config().ar_id, 2);
}

// ---------------------------------------------------------------------
// Warm-standby lifecycle: the orchestrator snapshots a learned twin and
// restores it elsewhere.

TEST(InstaPlc, TwinSnapshotRoundTripsLearnedState) {
  InstaFixture fx;
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  const DigitalTwin& learned = fx.app->twin();
  ASSERT_TRUE(learned.ready());

  const TwinSnapshot snap = learned.snapshot();
  EXPECT_GT(snap.byte_size(), 0u);
  EXPECT_EQ(snap.device_id, learned.device_id());
  EXPECT_EQ(snap.cycle_time_us, learned.cycle_time_us());
  EXPECT_EQ(snap.watchdog_factor, learned.watchdog_factor());
  EXPECT_EQ(snap.learned_records, learned.learned_records());

  DigitalTwin restored;
  EXPECT_FALSE(restored.ready());
  restored.restore(snap);
  EXPECT_TRUE(restored.ready());
  EXPECT_EQ(restored.device_id(), learned.device_id());
  EXPECT_EQ(restored.cycle_time_us(), learned.cycle_time_us());
  EXPECT_EQ(restored.watchdog_factor(), learned.watchdog_factor());
  EXPECT_EQ(restored.learned_records(), learned.learned_records());
  // Session state and counters do NOT travel: the restored twin has
  // answered nobody yet and expects a fresh standby to connect.
  EXPECT_FALSE(restored.secondary_ar().has_value());
  EXPECT_EQ(restored.counters().answered_connects, 0u);
  // Snapshot of the restored twin is the same wire payload.
  EXPECT_EQ(restored.snapshot().byte_size(), snap.byte_size());
}

TEST(InstaPlc, EmptyTwinSnapshotRestoresToNotReady) {
  const DigitalTwin blank;
  const TwinSnapshot snap = blank.snapshot();
  DigitalTwin restored;
  restored.restore(snap);
  EXPECT_FALSE(restored.ready());
}

}  // namespace
}  // namespace steelnet::instaplc
