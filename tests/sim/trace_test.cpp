#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(Trace, RecordsInOrder) {
  Trace t;
  t.emit(1_ns, "a", "x");
  t.emit(2_ns, "b", "y");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.records()[0].key, "a");
  EXPECT_EQ(t.records()[1].value, "y");
}

TEST(Trace, FilterByKey) {
  Trace t;
  t.emit(1_ns, "tx", "1");
  t.emit(2_ns, "rx", "1");
  t.emit(3_ns, "tx", "2");
  const auto tx = t.filter("tx");
  ASSERT_EQ(tx.size(), 2u);
  EXPECT_EQ(tx[1].value, "2");
}

TEST(Trace, CsvFormat) {
  Trace t;
  t.emit(1500_ns, "k", "v");
  EXPECT_EQ(t.to_csv(), "1500,k,v\n");
}

TEST(Trace, FingerprintStableAndSensitive) {
  Trace a, b;
  a.emit(1_ns, "k", "v");
  b.emit(1_ns, "k", "v");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.emit(2_ns, "k", "v");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.emit(1_ns, "k", "v");
  t.clear();
  EXPECT_EQ(t.size(), 0u);
}

}  // namespace
}  // namespace steelnet::sim
