#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ns, [&] { order.push_back(3); });
  q.schedule(10_ns, [&] { order.push_back(1); });
  q.schedule(20_ns, [&] { order.push_back(2); });

  SimTime t;
  EventQueue::Callback cb;
  while (q.pop_next(t, cb)) cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ns, [&order, i] { order.push_back(i); });
  }
  SimTime t;
  EventQueue::Callback cb;
  while (q.pop_next(t, cb)) cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(1_ns, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());

  SimTime t;
  EventQueue::Callback cb;
  EXPECT_FALSE(q.pop_next(t, cb));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(1_ns, [] {});
  q.schedule(9_ns, [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), 9_ns);
}

TEST(EventQueue, EmptyQueueReportsMaxTime) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleOutlivesQueueSafely) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(1_ns, [] {});
  }
  // Queue destroyed; handle must not dangle.
  EXPECT_TRUE(h.pending());  // never fired, never cancelled
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

TEST(EventQueue, ClearDiscardsAll) {
  EventQueue q;
  q.schedule(1_ns, [] {});
  q.schedule(2_ns, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FiredEventIsNoLongerPending) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(1_ns, [&] { fired = true; });
  ASSERT_TRUE(h.pending());

  SimTime t;
  EventQueue::Callback cb;
  ASSERT_TRUE(q.pop_next(t, cb));
  // Popped == fired, even before the callback body runs: the handle must
  // not claim a pending event against an empty queue.
  EXPECT_FALSE(h.pending());
  cb();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  h.cancel();  // cancelling a fired event is a no-op
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, ClearKillsOutstandingHandles) {
  EventQueue q;
  auto a = q.schedule(1_ns, [] {});
  auto b = q.schedule(2_ns, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  // Cancel-after-clear: a stale handle must stay a safe no-op.
  a.cancel();
  b.cancel();
  EXPECT_FALSE(a.pending());
  SimTime t;
  EventQueue::Callback cb;
  EXPECT_FALSE(q.pop_next(t, cb));
}

}  // namespace
}  // namespace steelnet::sim
