#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30_ns, [&] { order.push_back(3); });
  q.schedule(10_ns, [&] { order.push_back(1); });
  q.schedule(20_ns, [&] { order.push_back(2); });

  SimTime t;
  EventQueue::Callback cb;
  while (q.pop_next(t, cb)) cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_ns, [&order, i] { order.push_back(i); });
  }
  SimTime t;
  EventQueue::Callback cb;
  while (q.pop_next(t, cb)) cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[size_t(i)], i);
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(1_ns, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());

  SimTime t;
  EventQueue::Callback cb;
  EXPECT_FALSE(q.pop_next(t, cb));
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(1_ns, [] {});
  q.schedule(9_ns, [] {});
  h.cancel();
  EXPECT_EQ(q.next_time(), 9_ns);
}

TEST(EventQueue, EmptyQueueReportsMaxTime) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::max());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, HandleOutlivesQueueSafely) {
  EventHandle h;
  {
    EventQueue q;
    h = q.schedule(1_ns, [] {});
  }
  // Queue destroyed; handle must not dangle.
  EXPECT_TRUE(h.pending());  // never fired, never cancelled
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, DefaultHandleNotPending) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

TEST(EventQueue, ClearDiscardsAll) {
  EventQueue q;
  q.schedule(1_ns, [] {});
  q.schedule(2_ns, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace steelnet::sim
