#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(TimerWheel, FiresInTickOrderFifoWithinTick) {
  TimerWheel wheel{1_ms};
  wheel.arm(5_ms, 50);
  wheel.arm(2_ms, 20);
  wheel.arm(5_ms, 51);  // same tick as 50: FIFO in arm order
  wheel.arm(3_ms, 30);
  EXPECT_EQ(wheel.armed(), 4u);

  std::vector<std::uint64_t> due;
  wheel.advance(10_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{20, 30, 50, 51}));
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, PartialAdvanceFiresOnlyWhatIsDue) {
  TimerWheel wheel{1_ms};
  wheel.arm(2_ms, 2);
  wheel.arm(7_ms, 7);
  std::vector<std::uint64_t> due;
  wheel.advance(4_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(wheel.armed(), 1u);
  wheel.advance(7_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{2, 7}));
}

TEST(TimerWheel, DeadlineMapsToFloorTickNeverLate) {
  // A deadline inside tick N fires when the wheel reaches tick N -- up
  // to one tick early, never after the deadline's tick has passed.
  TimerWheel wheel{1_ms};
  wheel.arm(SimTime{2'500'000}, 25);  // 2.5 ms -> tick 2
  std::vector<std::uint64_t> due;
  wheel.advance(SimTime{1'999'999}, due);
  EXPECT_TRUE(due.empty());
  wheel.advance(2_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{25}));
}

TEST(TimerWheel, PastDeadlinesClampToTheNextTick) {
  TimerWheel wheel{1_ms};
  std::vector<std::uint64_t> due;
  wheel.advance(10_ms, due);
  // Deadline already in the past: it may not vanish, it fires next tick.
  wheel.arm(3_ms, 99);
  wheel.advance(10_ms, due);  // same tick: not yet
  EXPECT_TRUE(due.empty());
  wheel.advance(11_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{99}));
}

TEST(TimerWheel, CancelAndRecookie) {
  TimerWheel wheel{1_ms};
  const auto a = wheel.arm(5_ms, 1);
  const auto b = wheel.arm(5_ms, 2);
  wheel.cancel(a);
  wheel.set_cookie(b, 22);
  EXPECT_EQ(wheel.armed(), 1u);
  std::vector<std::uint64_t> due;
  wheel.advance(10_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{22}));
}

TEST(TimerWheel, CascadesAcrossLevelBoundaries) {
  // Deadlines far beyond level 0's 64-tick span must trickle down
  // through the hierarchy and still fire on their exact tick.
  TimerWheel wheel{1_ms};
  const std::vector<std::int64_t> ticks{1,  63,   64,   65,  100, 4095,
                                        4096, 4097, 8191, 262144};
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    wheel.arm(sim::milliseconds(ticks[i]), ticks[i]);
  }
  std::vector<std::uint64_t> due;
  // Advance in uneven strides so boundary crossings happen mid-stride.
  for (std::int64_t now = 0; now <= 263000; now += 977) {
    wheel.advance(sim::milliseconds(now), due);
    // Never late: everything due so far must have fired.
    std::size_t expected = 0;
    for (const std::int64_t t : ticks) expected += (t <= now) ? 1 : 0;
    EXPECT_EQ(due.size(), expected) << "at " << now;
  }
  auto sorted = due;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(due, sorted);  // tick order overall
  EXPECT_EQ(due.size(), ticks.size());
  EXPECT_GT(wheel.cascades(), 0u);
}

TEST(TimerWheel, BeyondHorizonParksAndRefires) {
  // A deadline past the whole wheel's span (2^24 ticks) parks at the top
  // level and re-cascades as time approaches -- it still fires at its
  // own tick, not at the horizon.
  TimerWheel wheel{SimTime{1}};  // 1 ns ticks
  const std::int64_t horizon = std::int64_t{1} << 24;
  wheel.arm(SimTime{horizon + 1000}, 42);
  std::vector<std::uint64_t> due;
  wheel.advance(SimTime{horizon + 999}, due);
  EXPECT_TRUE(due.empty());
  wheel.advance(SimTime{horizon + 1000}, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{42}));
}

TEST(TimerWheel, SkipAheadWhenIdleStaysConsistent) {
  // With nothing armed, advance() jumps without walking ticks; timers
  // armed afterwards must still be placed relative to the new tick.
  TimerWheel wheel{1_ms};
  std::vector<std::uint64_t> due;
  wheel.advance(sim::seconds(500), due);
  wheel.arm(sim::seconds(500) + 3_ms, 7);
  wheel.advance(sim::seconds(500) + 10_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{7}));
}

TEST(TimerWheel, ClearDisarmsEverything) {
  TimerWheel wheel{1_ms};
  wheel.arm(5_ms, 1);
  wheel.arm(500_ms, 2);
  wheel.clear();
  EXPECT_EQ(wheel.armed(), 0u);
  std::vector<std::uint64_t> due;
  wheel.advance(1_s, due);
  EXPECT_TRUE(due.empty());
  // clear() also rewinds to the origin tick: early deadlines are armable
  // and fire again.
  wheel.clear();
  wheel.arm(1_ms, 3);
  wheel.advance(2_ms, due);
  EXPECT_EQ(due, (std::vector<std::uint64_t>{3}));
}

TEST(TimerWheel, PropertyRandomizedDeadlinesFireExactlyOnceInOrder) {
  // Deterministic pseudo-random workload (LCG): every timer fires
  // exactly once, in nondecreasing deadline-tick order, never late.
  TimerWheel wheel{1_ms};
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next_rand = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  constexpr std::size_t kTimers = 500;
  std::vector<std::int64_t> deadline_ms(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    deadline_ms[i] = 1 + static_cast<std::int64_t>(next_rand() % 20'000);
    wheel.arm(sim::milliseconds(deadline_ms[i]), i);
  }
  std::vector<std::uint64_t> due;
  std::int64_t now = 0;
  while (wheel.armed() != 0) {
    now += 1 + static_cast<std::int64_t>(next_rand() % 700);
    wheel.advance(sim::milliseconds(now), due);
    for (std::size_t k = 0; k < due.size(); ++k) {
      EXPECT_LE(deadline_ms[due[k]], now) << "fired late";
    }
  }
  ASSERT_EQ(due.size(), kTimers);
  std::vector<bool> fired(kTimers, false);
  std::int64_t prev_tick = -1;
  for (const std::uint64_t cookie : due) {
    EXPECT_FALSE(fired[cookie]) << "double fire of " << cookie;
    fired[cookie] = true;
    EXPECT_GE(deadline_ms[cookie], prev_tick) << "out of tick order";
    prev_tick = deadline_ms[cookie];
  }
}

}  // namespace
}  // namespace steelnet::sim
