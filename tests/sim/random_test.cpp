#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace steelnet::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{7};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng{3};
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{11};
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng{13};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{17};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  EXPECT_THROW(rng.pareto(-1, 1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{19};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng{23};
  std::vector<double> w{1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.categorical(w) == 1 ? 1 : 0;
  EXPECT_NEAR(double(ones) / n, 0.75, 0.01);
  EXPECT_THROW(rng.categorical({}), std::invalid_argument);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{42};
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, DeriveIsStableRegardlessOfDraws) {
  Rng a{42};
  Rng d1 = a.derive("link-3");
  a.next_u64();
  a.next_u64();
  Rng d2 = a.derive("link-3");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d1.next_u64(), d2.next_u64());
  Rng other = a.derive("link-4");
  EXPECT_NE(d1.next_u64(), other.next_u64());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{29};
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace steelnet::sim
