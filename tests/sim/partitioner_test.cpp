// The Partitioner contract: both strategies are deterministic, use every
// shard, clamp to the cell count, and fail with typed errors -- and the
// LPT tie-break rule (all-equal weights delegate to prefix-quota) pins
// uniform floors to their historical placement. RateProfile's text
// round-trip is the --profile-out/--profile-in unit.
#include "sim/partitioner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "sim/random.hpp"
#include "sim/sharded_simulator.hpp"

namespace steelnet::sim {
namespace {

std::uint64_t load_of(const std::vector<std::uint64_t>& w,
                      const std::vector<std::uint32_t>& map,
                      std::uint32_t shard) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (map[i] == shard) sum += w[i];
  }
  return sum;
}

TEST(PrefixQuota, MatchesTheKernelsStaticPartition) {
  // ShardedSimulator::partition() now delegates here; pin the other
  // direction too, so neither can drift from the historical walk.
  const std::vector<std::uint64_t> weights{100, 1, 1, 1, 7, 7, 3, 9};
  const PrefixQuotaPartitioner prefix;
  for (std::size_t shards = 1; shards <= weights.size(); ++shards) {
    EXPECT_EQ(prefix.assign(weights, shards),
              ShardedSimulator::partition(weights, shards))
        << "shards=" << shards;
  }
}

TEST(PrefixQuota, GroupsAreContiguousAndEveryShardNonempty) {
  const std::vector<std::uint64_t> weights{5, 5, 5, 5, 5, 5, 5, 5, 5, 5};
  const auto map = PrefixQuotaPartitioner{}.assign(weights, 4);
  ASSERT_EQ(map.size(), weights.size());
  for (std::size_t i = 1; i < map.size(); ++i) {
    EXPECT_GE(map[i], map[i - 1]);  // contiguous: shard ids never go back
  }
  EXPECT_EQ(map.back(), 3u);  // every shard used
}

TEST(Lpt, EqualWeightsReproducePrefixQuotaExactly) {
  const std::vector<std::uint64_t> weights(12, 7);
  const LptPartitioner lpt;
  const PrefixQuotaPartitioner prefix;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(lpt.assign(weights, shards), prefix.assign(weights, shards))
        << "shards=" << shards;
  }
}

TEST(Lpt, SkewedWeightsBeatPrefixQuotaOnImbalance) {
  // The tab_campus --skew shape: a hot contiguous block that prefix-quota
  // (fed the uniform *declared* weights) piles onto the first shards.
  std::vector<std::uint64_t> measured(16, 100);
  for (std::size_t i = 0; i < 4; ++i) measured[i] = 1'000;
  const std::vector<std::uint64_t> declared(16, 1);

  const auto naive = PrefixQuotaPartitioner{}.assign(declared, 4);
  const auto balanced = LptPartitioner{}.assign(measured, 4);
  const auto naive_stats = partition_stats(measured, naive);
  const auto lpt_stats = partition_stats(measured, balanced);
  EXPECT_LT(lpt_stats.imbalance_permille(), naive_stats.imbalance_permille());
  EXPECT_EQ(lpt_stats.total_load, naive_stats.total_load);
}

TEST(Lpt, DeterministicTieBreaksAndStableAcrossCalls) {
  sim::Rng rng{99};
  std::vector<std::uint64_t> weights(64);
  for (auto& w : weights) {
    w = static_cast<std::uint64_t>(rng.uniform_int(0, 500));
  }
  const LptPartitioner lpt;
  const auto first = lpt.assign(weights, 8);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(lpt.assign(weights, 8), first);
  // Contract checks on the result.
  EXPECT_NO_THROW(validate_assignment(first, weights.size(), 8));
  // Load-tie rule: two equal heaviest cells land on shards 0 and 1.
  const auto tied = lpt.assign({50, 50, 1, 1}, 2);
  EXPECT_EQ(tied[0], 0u);
  EXPECT_EQ(tied[1], 1u);
}

TEST(Lpt, GreedyPackingBalancesTheClassicExample) {
  // LPT on {7,6,5,4,3} over 2 shards packs greedily to {7,4,3}/{6,5} =
  // 14/11 -- one off the optimal 13/12, and well under the 18 the
  // contiguous prefix walk's best split ({7,6}/{5,4,3} = 13/12 happens
  // to be reachable here, but only because the heavy cells lead).
  const std::vector<std::uint64_t> weights{7, 6, 5, 4, 3};
  const auto map = LptPartitioner{}.assign(weights, 2);
  const std::uint64_t s0 = load_of(weights, map, 0);
  const std::uint64_t s1 = load_of(weights, map, 1);
  EXPECT_EQ(s0 + s1, 25u);
  // The LPT guarantee: max load <= (4/3 - 1/3m) x optimal = 14.4 here.
  EXPECT_LE(std::max(s0, s1), 14u);
}

TEST(Partitioners, SharedContractEdgeCases) {
  const PrefixQuotaPartitioner prefix;
  const LptPartitioner lpt;
  for (const Partitioner* p :
       {static_cast<const Partitioner*>(&prefix),
        static_cast<const Partitioner*>(&lpt)}) {
    // shards == 0 is a typed error.
    try {
      (void)p->assign({1, 2, 3}, 0);
      FAIL() << p->name() << ": expected PartitionError";
    } catch (const PartitionError& e) {
      EXPECT_EQ(e.code(), PartitionErrorCode::kBadShardCount);
    }
    // Empty weights yield an empty assignment.
    EXPECT_TRUE(p->assign({}, 4).empty());
    // Shards clamp to the cell count: 2 cells over 8 shards use {0, 1}.
    const auto clamped = p->assign({3, 3}, 8);
    ASSERT_EQ(clamped.size(), 2u);
    EXPECT_NO_THROW(validate_assignment(clamped, 2, 8));
    for (const std::uint32_t s : clamped) EXPECT_LT(s, 2u);
  }
}

TEST(PartitionStats, HandComputedImbalance) {
  // Loads {30, 10}: max 30, mean 20 -> 1500 permille.
  const auto stats = partition_stats({30, 10}, {0, 1});
  EXPECT_EQ(stats.total_load, 40u);
  EXPECT_EQ(stats.max_load, 30u);
  ASSERT_EQ(stats.shard_load.size(), 2u);
  EXPECT_EQ(stats.imbalance_permille(), 1500u);
  // Perfect balance reads exactly 1000.
  EXPECT_EQ(partition_stats({5, 5}, {0, 1}).imbalance_permille(), 1000u);
  // Empty partitions read 1000 (no signal, not a division crash).
  EXPECT_EQ(PartitionStats{}.imbalance_permille(), 1000u);
}

TEST(PartitionStats, SizeMismatchIsTyped) {
  try {
    (void)partition_stats({1, 2, 3}, {0, 1});
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.code(), PartitionErrorCode::kBadAssignment);
  }
}

TEST(ValidateAssignment, RejectsGapsAndOutOfRangeShards) {
  // Shard 1 unused out of 2 requested (with 2+ cells): invalid.
  EXPECT_THROW(validate_assignment({0, 0, 0}, 3, 2), PartitionError);
  // Shard id beyond the clamped count: invalid.
  EXPECT_THROW(validate_assignment({0, 5}, 2, 2), PartitionError);
  // Size mismatch: invalid.
  EXPECT_THROW(validate_assignment({0, 1}, 3, 2), PartitionError);
  EXPECT_NO_THROW(validate_assignment({0, 1, 0}, 3, 2));
}

TEST(RateProfile, TextRoundTripPreservesOrderAndCounts) {
  RateProfile p;
  p.cells.push_back({"cell_hot", 182'403, 5'521});
  p.cells.push_back({"cell_idle", 0, 0});
  p.cells.push_back({"cell_mid", 77, 3});
  const RateProfile back = RateProfile::parse(p.to_text());
  ASSERT_EQ(back.cells.size(), 3u);
  EXPECT_EQ(back.cells[0].name, "cell_hot");
  EXPECT_EQ(back.cells[0].events, 182'403u);
  EXPECT_EQ(back.cells[0].msgs, 5'521u);
  EXPECT_EQ(back.cells[1].name, "cell_idle");
  EXPECT_EQ(back.cells[2].msgs, 3u);
  // weights() clamps idle cells to 1 so LPT still counts occupancy.
  EXPECT_EQ(back.weights(),
            (std::vector<std::uint64_t>{187'924, 1, 80}));
}

TEST(RateProfile, ParserSkipsCommentsAndBlankLines) {
  const std::string text =
      "# steelnet cell-rate profile v1\n"
      "\n"
      "# calibration run, seed 1\n"
      "cell,events,msgs\n"
      "a,10,2\n"
      "\n"
      "b,3,0\n";
  const RateProfile p = RateProfile::parse(text);
  ASSERT_EQ(p.cells.size(), 2u);
  EXPECT_EQ(p.cells[0].name, "a");
  EXPECT_EQ(p.cells[1].events, 3u);
}

TEST(RateProfile, MalformedTextIsATypedError) {
  const char* kBad[] = {
      "",                                            // no header
      "cell,events\na,1\n",                          // wrong header
      "cell,events,msgs\na,1\n",                     // short row
      "cell,events,msgs\na,1,2,3\n",                 // long row
      "cell,events,msgs\na,x,2\n",                   // non-numeric count
  };
  for (const char* text : kBad) {
    try {
      (void)RateProfile::parse(text);
      FAIL() << "expected PartitionError for: " << text;
    } catch (const PartitionError& e) {
      EXPECT_EQ(e.code(), PartitionErrorCode::kMalformedProfile);
    }
  }
}

}  // namespace
}  // namespace steelnet::sim
