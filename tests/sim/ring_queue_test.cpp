#include "sim/ring_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace steelnet::sim {
namespace {

TEST(RingQueue, StartsEmpty) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(RingQueue, FifoOrder) {
  RingQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundTheBuffer) {
  // Interleaved push/pop walks head_ around the ring many times; order
  // must survive every wrap.
  RingQueue<int> q;
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    q.push_back(next_in++);
    q.push_back(next_in++);
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, GrowsPreservingOrderAcrossWrap) {
  RingQueue<int> q;
  // Rotate head_ to the middle of the initial 8-slot buffer...
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  // ...then push enough to force a wrapped grow (head_ != 0 at grow).
  for (int i = 0; i < 40; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
}

TEST(RingQueue, PopReleasesHeldResources) {
  RingQueue<std::shared_ptr<int>> q;
  auto obj = std::make_shared<int>(42);
  std::weak_ptr<int> watch = obj;
  q.push_back(std::move(obj));
  EXPECT_FALSE(watch.expired());
  q.pop_front();
  // pop_front must not leave the element alive in the ring slot.
  EXPECT_TRUE(watch.expired());
}

TEST(RingQueue, ClearEmptiesAndReleases) {
  RingQueue<std::string> q;
  for (int i = 0; i < 20; ++i) {
    q.push_back("payload-" + std::to_string(i));
  }
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push_back("after");
  EXPECT_EQ(q.front(), "after");
}

}  // namespace
}  // namespace steelnet::sim
