// SpscRing move semantics: the rvalue try_push overload used by the
// sharded kernel's route() must move on success and leave the value
// intact on a full-ring refusal (the backpressure loop retries the same
// message), under the unchanged acquire/release protocol -- the threaded
// soak below is what the TSan preset sweeps.
#include "sim/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>

namespace steelnet::sim {
namespace {

TEST(SpscRing, RvaluePushMovesThePayload) {
  SpscRing<std::unique_ptr<int>> ring{4};
  auto msg = std::make_unique<int>(42);
  EXPECT_TRUE(ring.try_push(std::move(msg)));
  EXPECT_EQ(msg, nullptr);  // moved out, not copied

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, RefusedRvaluePushLeavesTheMessageIntact) {
  SpscRing<std::unique_ptr<int>> ring{2};
  ASSERT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));

  auto msg = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(msg)));
  // The fullness check ran before the move: the producer still owns the
  // message and can retry it after draining.
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(*msg, 3);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.try_push(std::move(msg)));
  EXPECT_EQ(msg, nullptr);
}

TEST(SpscRing, MoveOnlyPayloadsSurviveTwoThreads) {
  constexpr std::uint64_t kMessages = 10'000;
  SpscRing<std::unique_ptr<std::uint64_t>> ring{64};

  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  std::thread consumer{[&] {
    std::unique_ptr<std::uint64_t> out;
    while (received < kMessages) {
      if (ring.try_pop(out)) {
        sum += *out;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  }};

  for (std::uint64_t i = 1; i <= kMessages; ++i) {
    auto msg = std::make_unique<std::uint64_t>(i);
    while (!ring.try_push(std::move(msg))) {
      // Backpressure: the refused push left `msg` intact; retry it.
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(sum, kMessages * (kMessages + 1) / 2);
}

}  // namespace
}  // namespace steelnet::sim
