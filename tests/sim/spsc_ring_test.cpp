// SpscRing move semantics: the rvalue try_push overload used by the
// sharded kernel's route() must move on success and leave the value
// intact on a full-ring refusal (the backpressure loop retries the same
// message), under the unchanged acquire/release protocol -- the threaded
// soak below is what the TSan preset sweeps.
#include "sim/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <thread>

namespace steelnet::sim {
namespace {

TEST(SpscRing, RvaluePushMovesThePayload) {
  SpscRing<std::unique_ptr<int>> ring{4};
  auto msg = std::make_unique<int>(42);
  EXPECT_TRUE(ring.try_push(std::move(msg)));
  EXPECT_EQ(msg, nullptr);  // moved out, not copied

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, RefusedRvaluePushLeavesTheMessageIntact) {
  SpscRing<std::unique_ptr<int>> ring{2};
  ASSERT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(2)));

  auto msg = std::make_unique<int>(3);
  EXPECT_FALSE(ring.try_push(std::move(msg)));
  // The fullness check ran before the move: the producer still owns the
  // message and can retry it after draining.
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(*msg, 3);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.try_push(std::move(msg)));
  EXPECT_EQ(msg, nullptr);
}

TEST(SpscRing, MoveOnlyPayloadsSurviveTwoThreads) {
  constexpr std::uint64_t kMessages = 10'000;
  SpscRing<std::unique_ptr<std::uint64_t>> ring{64};

  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  std::thread consumer{[&] {
    std::unique_ptr<std::uint64_t> out;
    while (received < kMessages) {
      if (ring.try_pop(out)) {
        sum += *out;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  }};

  for (std::uint64_t i = 1; i <= kMessages; ++i) {
    auto msg = std::make_unique<std::uint64_t>(i);
    while (!ring.try_push(std::move(msg))) {
      // Backpressure: the refused push left `msg` intact; retry it.
      std::this_thread::yield();
    }
  }
  consumer.join();

  EXPECT_EQ(received, kMessages);
  EXPECT_EQ(sum, kMessages * (kMessages + 1) / 2);
}

TEST(SpscRing, PopNReturnsPartialBatchAndZeroWhenEmpty) {
  SpscRing<int> ring{8};
  std::array<int, 8> out{};
  EXPECT_EQ(ring.try_pop_n(out.data(), out.size()), 0u);

  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(i));
  // max > available: the batch is the 3 queued elements, in FIFO order.
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(ring.try_pop_n(out.data(), out.size()), 0u);

  // max < available: exactly max come out, the rest stay queued.
  for (int i = 10; i < 15; ++i) ASSERT_TRUE(ring.try_push(i));
  ASSERT_EQ(ring.try_pop_n(out.data(), 2), 2u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 3u);
  EXPECT_EQ(out[0], 12);
  EXPECT_EQ(out[2], 14);
}

TEST(SpscRing, PopNCrossesTheWraparoundBoundary) {
  SpscRing<std::uint64_t> ring{4};
  ASSERT_EQ(ring.capacity(), 4u);
  // Advance the cursors to 3 so a full batch straddles index 3 -> 0.
  std::uint64_t scratch = 0;
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(scratch));
  }
  for (std::uint64_t i = 100; i < 104; ++i) ASSERT_TRUE(ring.try_push(i));

  std::array<std::uint64_t, 4> out{};
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i], 100 + i);
  // The freed slots are immediately reusable past the wrap.
  EXPECT_TRUE(ring.try_push(200u));
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 1u);
  EXPECT_EQ(out[0], 200u);
}

TEST(SpscRing, PopNMovesMoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring{4};
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(8)));

  std::array<std::unique_ptr<int>, 4> out;
  ASSERT_EQ(ring.try_pop_n(out.data(), out.size()), 2u);
  ASSERT_NE(out[0], nullptr);
  ASSERT_NE(out[1], nullptr);
  EXPECT_EQ(*out[0], 7);
  EXPECT_EQ(*out[1], 8);
  // Popped slots were moved-from, so re-pushing reuses them cleanly.
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(9)));
  ASSERT_EQ(ring.try_pop_n(out.data(), 1), 1u);
  EXPECT_EQ(*out[0], 9);
}

// The two-thread soak the TSan preset sweeps: a producer races a batched
// consumer over a small ring, so every acquire/release pairing of
// try_pop_n is exercised under real contention and wraparound.
TEST(SpscRing, BatchedPopSurvivesTwoThreads) {
  constexpr std::uint64_t kMessages = 100'000;
  SpscRing<std::uint64_t> ring{32};

  std::uint64_t received = 0;
  std::uint64_t sum = 0;
  bool fifo = true;
  std::thread consumer{[&] {
    std::array<std::uint64_t, 8> batch{};
    std::uint64_t expect = 1;
    while (received < kMessages) {
      const std::size_t n = ring.try_pop_n(batch.data(), batch.size());
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i] != expect++) fifo = false;
        sum += batch[i];
      }
      received += n;
    }
  }};

  for (std::uint64_t i = 1; i <= kMessages; ++i) {
    while (!ring.try_push(i)) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_EQ(received, kMessages);
  EXPECT_TRUE(fifo);
  EXPECT_EQ(sum, kMessages * (kMessages + 1) / 2);
}

}  // namespace
}  // namespace steelnet::sim
