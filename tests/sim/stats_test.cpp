#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3;
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 70; ++i) {
    const double x = i * 1.3 + 11;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(SampleSet, PercentilesNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(double(i));
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.percentile(50), 50.0);
  EXPECT_EQ(s.percentile(99), 99.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_EQ(s.median(), 50.0);
  EXPECT_THROW(static_cast<void>(s.percentile(101)), std::invalid_argument);
}

TEST(SampleSet, EmptyPercentileThrows) {
  SampleSet s;
  EXPECT_THROW(static_cast<void>(s.percentile(50)), std::logic_error);
  EXPECT_THROW(static_cast<void>(s.percentile(0)), std::logic_error);
  EXPECT_THROW(static_cast<void>(s.percentile(100)), std::logic_error);
}

TEST(SampleSet, SingleSampleEveryPercentile) {
  SampleSet s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.percentile(1), 42.0);
  EXPECT_EQ(s.percentile(50), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
  EXPECT_EQ(s.median(), 42.0);
}

TEST(SampleSet, PercentileRangeThrowsBothSides) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(static_cast<void>(s.percentile(-0.001)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(s.percentile(100.001)), std::invalid_argument);
}

TEST(SampleSet, CdfIsMonotoneAndEndsAtOne) {
  SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(double((i * 37) % 101));
  const auto cdf = s.cdf(50);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].cum_prob, cdf[i - 1].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(SampleSet, SuccessiveJitter) {
  SampleSet s;
  for (double x : {10.0, 12.0, 9.0, 9.0}) s.add(x);
  const auto d = s.successive_differences();
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
  EXPECT_NEAR(s.mean_successive_jitter(), 5.0 / 3.0, 1e-12);
}

TEST(SampleSet, InsertAfterQueryResorts) {
  SampleSet s;
  s.add(5);
  s.add(1);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps into bin 0
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, PercentileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(double(i) + 0.5);
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(99), 99.0, 1.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(Histogram, EmptyPercentileThrows) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_THROW(static_cast<void>(h.percentile(50)), std::logic_error);
  EXPECT_THROW(static_cast<void>(h.percentile(0)), std::logic_error);
}

TEST(Histogram, PercentileRangeChecked) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  EXPECT_THROW(static_cast<void>(h.percentile(-1)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(h.percentile(100.5)), std::invalid_argument);
}

TEST(Histogram, PercentileBoundariesNearestRank) {
  // All mass in bin 7 ([7,8), midpoint 7.5), with empty bins around it:
  // p=0 must not report the empty leading bin, p=100 the occupied one.
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 5; ++i) h.add(7.2);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.5);
}

TEST(Histogram, SingleSampleEveryPercentile) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.25);  // bin 0, midpoint 0.5
  EXPECT_DOUBLE_EQ(h.percentile(0), 0.5);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0.5);
}

TEST(TimeSeriesBinner, BinsPer50ms) {
  TimeSeriesBinner b(50_ms);
  b.record(0_ms);
  b.record(49_ms);
  b.record(50_ms);
  b.record(140_ms);
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0].value, 2.0);
  EXPECT_DOUBLE_EQ(bins[1].value, 1.0);
  EXPECT_DOUBLE_EQ(bins[2].value, 1.0);
  EXPECT_EQ(bins[1].start, 50_ms);
  EXPECT_DOUBLE_EQ(b.total(), 4.0);
}

TEST(TimeSeriesBinner, GapsAreZero) {
  TimeSeriesBinner b(10_ms);
  b.record(0_ms);
  b.record(35_ms);
  const auto bins = b.bins();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[1].value, 0.0);
  EXPECT_DOUBLE_EQ(bins[2].value, 0.0);
}

TEST(TimeSeriesBinner, RejectsBadInput) {
  EXPECT_THROW(TimeSeriesBinner(0_ms), std::invalid_argument);
  TimeSeriesBinner b(10_ms);
  EXPECT_THROW(b.record(SimTime{-5}), std::invalid_argument);
}

TEST(LongestTrueRun, Basics) {
  EXPECT_EQ(longest_true_run({}), 0u);
  EXPECT_EQ(longest_true_run({false, false}), 0u);
  EXPECT_EQ(longest_true_run({true, true, false, true}), 2u);
  EXPECT_EQ(longest_true_run({true, true, true}), 3u);
}

}  // namespace
}  // namespace steelnet::sim
