#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(SimTime, LiteralsAndConversions) {
  EXPECT_EQ((1_us).nanos(), 1'000);
  EXPECT_EQ((1_ms).nanos(), 1'000'000);
  EXPECT_EQ((1_s).nanos(), 1'000'000'000);
  EXPECT_DOUBLE_EQ((1500_ns).micros(), 1.5);
  EXPECT_DOUBLE_EQ((2500_us).millis(), 2.5);
  EXPECT_DOUBLE_EQ((1500_ms).seconds(), 1.5);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(1_ms + 500_us, 1500_us);
  EXPECT_EQ(1_ms - 1_us, 999_us);
  EXPECT_EQ(2_us * 3, 6_us);
  EXPECT_EQ(3 * 2_us, 6_us);
  EXPECT_EQ(10_ms / 3_ms, 3);
  EXPECT_EQ(10_ms % 3_ms, 1_ms);
}

TEST(SimTime, Comparison) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_LE(2_us, 2_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_EQ(SimTime::zero(), 0_ns);
  EXPECT_LT(1_s, SimTime::max());
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = 1_ms;
  t += 500_us;
  EXPECT_EQ(t, 1500_us);
  t -= 1_ms;
  EXPECT_EQ(t, 500_us);
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ((42_ns).to_string(), "42 ns");
  EXPECT_EQ((1500_ns).to_string(), "1.500 us");
  EXPECT_EQ((2500_us).to_string(), "2.500 ms");
  EXPECT_EQ((1500_ms).to_string(), "1.500 s");
}

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t, SimTime::zero());
}

}  // namespace
}  // namespace steelnet::sim
