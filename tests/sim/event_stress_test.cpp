// Cancellation-heavy stress for the slab event kernel: one million
// schedule/cancel/reschedule operations with interleaved fires must be
// bit-for-bit deterministic, and the recycled free list must never hand
// a stale generation back to an old handle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace steelnet::sim {
namespace {

/// Deterministic 64-bit LCG (MMIX constants) -- the test must not depend
/// on libc rand() or std::mt19937 layout.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
};

struct StressResult {
  std::uint64_t fire_digest = 1469598103934665603ULL;  // FNV-1a offset
  std::uint64_t fired = 0;
  std::uint64_t cancelled = 0;
  std::size_t peak_heap = 0;
  std::size_t slot_capacity = 0;
};

constexpr std::uint64_t kOps = 1'000'000;

StressResult run_stress(std::uint64_t seed) {
  StressResult r;
  EventQueue q;
  Lcg rng{seed};

  struct Live {
    EventHandle handle;
    std::uint64_t id;
  };
  std::vector<Live> live;
  // A sample of cancelled handles, re-checked against slot recycling: if
  // the free list ever reissued a generation, one of these would report
  // pending() again.
  std::vector<EventHandle> tombstones;

  std::uint64_t next_id = 0;
  SimTime now{0};

  auto mix = [&r](std::uint64_t v) {
    r.fire_digest = (r.fire_digest ^ v) * 1099511628211ULL;  // FNV-1a prime
  };

  auto schedule_one = [&] {
    const std::uint64_t id = next_id++;
    const SimTime at = now + SimTime{static_cast<std::int64_t>(
                                 1 + rng.next() % 10'000)};
    EventHandle h = q.schedule(at, [id, &mix] { mix(id); });
    EXPECT_TRUE(h.pending());
    live.push_back({std::move(h), id});
  };

  for (std::uint64_t op = 0; op < kOps; ++op) {
    const std::uint64_t pick = rng.next() % 100;
    if (pick < 55 || live.empty()) {
      schedule_one();
    } else if (pick < 75) {
      // Cancel a random live event (swap-remove keeps it O(1); order of
      // the live vector is itself deterministic, seeded by the LCG).
      const std::size_t i = rng.next() % live.size();
      live[i].handle.cancel();
      EXPECT_FALSE(live[i].handle.pending());
      ++r.cancelled;
      if (tombstones.size() < 4096) {
        tombstones.push_back(std::move(live[i].handle));
      }
      live[i] = std::move(live.back());
      live.pop_back();
    } else if (pick < 85) {
      // Reschedule: cancel then schedule the same id at a new time.
      const std::size_t i = rng.next() % live.size();
      const std::uint64_t id = live[i].id;
      live[i].handle.cancel();
      ++r.cancelled;
      const SimTime at = now + SimTime{static_cast<std::int64_t>(
                                   1 + rng.next() % 10'000)};
      live[i].handle = q.schedule(at, [id, &mix] { mix(id); });
      EXPECT_TRUE(live[i].handle.pending());
    } else {
      // Fire a burst: advance time and pop everything now due.
      now = now + SimTime{static_cast<std::int64_t>(rng.next() % 2'000)};
      SimTime t;
      EventQueue::Callback cb;
      while (q.next_time() <= now && q.pop_next(t, cb)) {
        mix(static_cast<std::uint64_t>(t.nanos()));
        cb();
        ++r.fired;
      }
      // Drop handles of events that just fired so `live` stays bounded.
      std::size_t w = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i].handle.pending()) {
          if (w != i) live[w] = std::move(live[i]);
          ++w;
        }
      }
      live.resize(w);
    }
    r.peak_heap = std::max(r.peak_heap, q.heap_size());
  }

  // Drain the remainder.
  SimTime t;
  EventQueue::Callback cb;
  while (q.pop_next(t, cb)) {
    mix(static_cast<std::uint64_t>(t.nanos()));
    cb();
    ++r.fired;
  }

  // No cancelled handle may ever come back to life: generations are
  // monotonic per slot, so recycling cannot reissue one.
  for (const EventHandle& h : tombstones) EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.live_size(), 0u);

  r.slot_capacity = q.slot_capacity();
  return r;
}

TEST(EventStress, MillionOpsDeterministicAndNoStaleGenerations) {
  const StressResult a = run_stress(0x5731'dead'beefULL);
  const StressResult b = run_stress(0x5731'dead'beefULL);

  // Same seed => byte-identical fire sequence (ids and times).
  EXPECT_EQ(a.fire_digest, b.fire_digest);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.cancelled, b.cancelled);

  // Everything scheduled either fired or was cancelled -- the lazy
  // reclamation path leaks nothing.
  EXPECT_GT(a.fired, 100'000u);
  EXPECT_GT(a.cancelled, 100'000u);

  // The slab recycles: every heap entry owns exactly one slot until it
  // is popped or reclaimed, so capacity is bounded by the peak heap
  // working set -- not by the million-op throughput.
  EXPECT_LE(a.slot_capacity, a.peak_heap);
  EXPECT_LT(a.slot_capacity, 500'000u);  // nowhere near kOps

  // A different seed exercises a different interleaving.
  const StressResult c = run_stress(0x1234'5678ULL);
  EXPECT_NE(c.fire_digest, a.fire_digest);
}

}  // namespace
}  // namespace steelnet::sim
