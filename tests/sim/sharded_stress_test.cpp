// Lookahead-edge stress: the conservative protocol at its worst case --
// 1 ns channel latency (the minimum legal lookahead), million-event
// cross-shard ping-pong, and ring backpressure bursts -- must neither
// deadlock nor stall, and must account for every event exactly.
#include <gtest/gtest.h>

#include <cstdint>

#include "sim/sharded_simulator.hpp"

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(ShardedStress, MillionEventPingPongAt1nsLookahead) {
  // Two cells, 1 ns latency both ways, unconditional bounce: exactly one
  // delivery per nanosecond of horizon, alternating cells. 1 ms horizon
  // = 1,000,000 cross-shard deliveries -- the exact count, no deadlock,
  // no stall, at 1 and 2 shards.
  for (const std::size_t shards : {1, 2}) {
    ShardedSimulator ss;
    ss.add_cell("ping");
    ss.add_cell("pong");
    ss.connect(0, 1, 1_ns);
    ss.connect(1, 0, 1_ns);
    const auto bounce = [](ShardedSimulator::Cell& self, const ShardMsg& m) {
      ShardMsg next;
      next.a = m.a + 1;
      self.send(self.id() == 0 ? 1 : 0, next);
    };
    ss.cell(0).set_handler(bounce);
    ss.cell(1).set_handler(bounce);
    ss.cell(0).sim().schedule_at(SimTime::zero(), [&ss] {
      ShardMsg m;
      ss.cell(0).send(1, m);
    });

    const ShardRunStats stats = ss.run(1_ms, shards);
    // Deliveries land at t = 1..1'000'000 ns inclusive; the send at the
    // horizon would deliver at horizon+1 and is counted, not executed.
    EXPECT_EQ(stats.msgs_delivered, 1'000'000u) << "shards=" << shards;
    EXPECT_EQ(stats.msgs_sent, 1'000'001u) << "shards=" << shards;
    EXPECT_EQ(stats.beyond_horizon, 1u) << "shards=" << shards;
    EXPECT_EQ(stats.events, 1u) << "shards=" << shards;  // the kickoff
    EXPECT_EQ(ss.cell(0).msgs_delivered() + ss.cell(1).msgs_delivered(),
              1'000'000u);
    // Perfect alternation: the two cells' delivery counts differ by 0.
    EXPECT_EQ(ss.cell(0).msgs_delivered(), 500'000u);
    EXPECT_EQ(ss.cell(1).msgs_delivered(), 500'000u);
  }
}

TEST(ShardedStress, BackpressureBurstOverTinyRingsDoesNotDeadlock) {
  // A burst far larger than the ring capacity forces the producer into
  // the backpressure path (drain-own-inbound + retry). With a cycle of
  // tiny rings and mutual bursts this is exactly the configuration that
  // deadlocks a naive blocking push. Exact delivery counts prove no loss
  // and no stall -- at 1 shard (producer and consumer on one thread) and
  // 2 shards (true concurrency).
  constexpr std::uint64_t kBurst = 512;
  for (const std::size_t shards : {1, 2}) {
    ShardedSimulator ss;
    ss.add_cell("a");
    ss.add_cell("b");
    ss.connect(0, 1, 1_ns, /*capacity=*/4);
    ss.connect(1, 0, 1_ns, /*capacity=*/4);
    std::uint64_t got_a = 0;
    std::uint64_t got_b = 0;
    ss.cell(0).set_handler(
        [&](ShardedSimulator::Cell&, const ShardMsg&) { ++got_a; });
    ss.cell(1).set_handler(
        [&](ShardedSimulator::Cell&, const ShardMsg&) { ++got_b; });
    // Both cells blast a full burst at each other in a single event.
    ss.cell(0).sim().schedule_at(SimTime::zero(), [&ss] {
      for (std::uint64_t k = 0; k < kBurst; ++k) {
        ShardMsg m;
        m.a = k;
        ss.cell(0).send(1, m, SimTime{static_cast<std::int64_t>(k)});
      }
    });
    ss.cell(1).sim().schedule_at(SimTime::zero(), [&ss] {
      for (std::uint64_t k = 0; k < kBurst; ++k) {
        ShardMsg m;
        m.a = k;
        ss.cell(1).send(0, m, SimTime{static_cast<std::int64_t>(k)});
      }
    });
    const ShardRunStats stats = ss.run(1_ms, shards);
    EXPECT_EQ(got_a, kBurst) << "shards=" << shards;
    EXPECT_EQ(got_b, kBurst) << "shards=" << shards;
    EXPECT_EQ(stats.msgs_delivered, 2 * kBurst);
    EXPECT_EQ(stats.beyond_horizon, 0u);
  }
}

TEST(ShardedStress, ZeroLookaheadCycleRejectedBeforeRunning) {
  // The classic pathological topology: a cycle whose total latency would
  // be zero. The driver rejects the *first* zero-latency edge with a
  // typed error -- conservative simulation never starts on a topology it
  // cannot bound.
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  ss.add_cell("c");
  ss.connect(0, 1, 1_ns);
  ss.connect(1, 2, 1_ns);
  try {
    ss.connect(2, 0, SimTime::zero());
    FAIL() << "expected ShardingError";
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kZeroLookahead);
    EXPECT_NE(std::string(e.what()).find("zero lookahead"),
              std::string::npos);
  }
}

TEST(ShardedStress, ManyCells1nsRingStaysExact) {
  // 16 cells in a 1 ns ring, each forwarding around the ring: a token
  // makes horizon/16 full laps. Exact per-cell delivery counts at 1, 4,
  // and 8 shards.
  constexpr std::size_t kCells = 16;
  for (const std::size_t shards : {1, 4, 8}) {
    ShardedSimulator ss;
    for (std::size_t i = 0; i < kCells; ++i) {
      ss.add_cell("r" + std::to_string(i));
    }
    for (std::size_t i = 0; i < kCells; ++i) {
      ss.connect(static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>((i + 1) % kCells), 1_ns);
    }
    const auto forward = [](ShardedSimulator::Cell& self, const ShardMsg& m) {
      ShardMsg next;
      next.a = m.a + 1;
      self.send((self.id() + 1) % kCells, next);
    };
    for (std::size_t i = 0; i < kCells; ++i) {
      ss.cell(static_cast<std::uint32_t>(i)).set_handler(forward);
    }
    ss.cell(0).sim().schedule_at(SimTime::zero(), [&ss] {
      ShardMsg m;
      ss.cell(0).send(1, m);
    });
    const ShardRunStats stats = ss.run(SimTime{160'000}, shards);
    // One delivery per nanosecond, hopping around the ring.
    EXPECT_EQ(stats.msgs_delivered, 160'000u) << "shards=" << shards;
    // 160'000 / 16 = 10'000 exact laps: every cell saw the same count.
    for (std::size_t i = 0; i < kCells; ++i) {
      EXPECT_EQ(ss.cell(static_cast<std::uint32_t>(i)).msgs_delivered(),
                10'000u)
          << "cell " << i << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace steelnet::sim
