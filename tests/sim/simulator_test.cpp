#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.schedule_in(10_ns, [&] { seen.push_back(sim.now()); });
  sim.schedule_in(5_ns, [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 5_ns);
  EXPECT_EQ(seen[1], 10_ns);
}

TEST(Simulator, RunUntilStopsAtDeadlineInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10_ns, [&] { ++fired; });
  sim.schedule_at(20_ns, [&] { ++fired; });
  sim.schedule_at(21_ns, [&] { ++fired; });
  const auto n = sim.run_until(20_ns);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20_ns);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator sim;
  sim.run_until(1_ms);
  EXPECT_EQ(sim.now(), 1_ms);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(10_ns, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5_ns, [] {}), SimError);
  EXPECT_THROW(sim.schedule_in(SimTime{-1}, [] {}), SimError);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(1_ns, [&] {
    order.push_back(1);
    sim.schedule_in(1_ns, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 2_ns);
}

TEST(Simulator, RequestStopHaltsLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1_ns, [&] {
    ++fired;
    sim.request_stop();
  });
  sim.schedule_in(2_ns, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ResetClearsState) {
  Simulator sim;
  sim.schedule_in(5_ns, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 5_ns);
  sim.reset();
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.events_pending(), 0u);
}

TEST(PeriodicTask, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 0_ns, 10_ns, [&] { fires.push_back(sim.now()); });
  sim.run_until(35_ns);
  ASSERT_EQ(fires.size(), 4u);  // t=0,10,20,30
  EXPECT_EQ(fires[3], 30_ns);
  EXPECT_EQ(task.fired(), 4u);
}

TEST(PeriodicTask, StopPreventsFurtherFirings) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, 0_ns, 10_ns, [&] {
    if (++count == 2) task.stop();
  });
  sim.run_until(100_ns);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, DestructorCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicTask task(sim, 0_ns, 10_ns, [&] { ++count; });
    sim.run_until(5_ns);
  }
  sim.run_until(100_ns);
  EXPECT_EQ(count, 1);
}

TEST(PeriodicTask, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTask(sim, 0_ns, 0_ns, [] {}), SimError);
}

TEST(PeriodicTask, SetPeriodTakesEffectNextCycle) {
  Simulator sim;
  std::vector<SimTime> fires;
  PeriodicTask task(sim, 0_ns, 10_ns, [&] {
    fires.push_back(sim.now());
    task.set_period(20_ns);
  });
  sim.run_until(50_ns);
  // t=0 (then period 20), t=20 wait -- first re-arm already used 10ns
  // because arm happens before fn(); subsequent use 20.
  ASSERT_GE(fires.size(), 2u);
  EXPECT_EQ(fires[0], 0_ns);
  EXPECT_EQ(fires[1], 10_ns);
  if (fires.size() > 2) EXPECT_EQ(fires[2], 30_ns);
}

}  // namespace
}  // namespace steelnet::sim
