// The sharded kernel's determinism contract, pinned:
//   * identical per-cell fire order and counters at shard counts
//     {1, 2, 4, 8},
//   * fire-order equivalence against run_reference(), the single-threaded
//     globally ordered engine, over randomized topologies (property test),
//   * messages-before-local ordering at equal timestamps,
//   * typed ShardingError for every protocol/topology misuse,
//   * cross-shard cancellation expressed as a message to the owning
//     shard, with exact EventQueue live/cancelled accounting per cell.
#include "sim/sharded_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "sim/random.hpp"

namespace steelnet::sim {
namespace {

using namespace steelnet::sim::literals;

// --- partition --------------------------------------------------------------

TEST(Partition, ContiguousNonemptyBalanced) {
  const std::vector<std::uint64_t> weights = {3, 1, 4, 1, 5, 9, 2, 6};
  for (std::size_t shards = 1; shards <= weights.size(); ++shards) {
    const auto assign = ShardedSimulator::partition(weights, shards);
    ASSERT_EQ(assign.size(), weights.size());
    // Contiguous and monotone: group ids never decrease, never skip.
    EXPECT_EQ(assign.front(), 0u);
    for (std::size_t i = 1; i < assign.size(); ++i) {
      EXPECT_GE(assign[i], assign[i - 1]);
      EXPECT_LE(assign[i], assign[i - 1] + 1);
    }
    // Every group 0..shards-1 is nonempty.
    EXPECT_EQ(assign.back(), shards - 1);
  }
}

TEST(Partition, FrontLoadedWeightsStillFillEveryShard) {
  // A pathological prefix (one huge cell) must not starve later shards.
  const auto assign = ShardedSimulator::partition({100, 1, 1, 1}, 4);
  EXPECT_EQ(assign, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Partition, ShardsClampedToCellCount) {
  const auto assign = ShardedSimulator::partition({1, 1}, 16);
  EXPECT_EQ(assign, (std::vector<std::uint32_t>{0, 1}));
}

TEST(Partition, ZeroShardsThrowsTyped) {
  try {
    (void)ShardedSimulator::partition({1}, 0);
    FAIL() << "expected ShardingError";
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kBadShardCount);
  }
}

// --- typed errors -----------------------------------------------------------

TEST(ShardingErrors, ZeroLookaheadChannelRejected) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  try {
    ss.connect(0, 1, SimTime::zero());
    FAIL() << "expected ShardingError";
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kZeroLookahead);
  }
  try {
    ss.connect(0, 1, SimTime{-5});
    FAIL() << "expected ShardingError";
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kZeroLookahead);
  }
}

TEST(ShardingErrors, SelfAndDuplicateChannelsRejected) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  try {
    ss.connect(0, 0, 1_us);
    FAIL();
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kSelfChannel);
  }
  ss.connect(0, 1, 1_us);
  try {
    ss.connect(0, 1, 2_us);
    FAIL();
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kDuplicateChannel);
  }
}

TEST(ShardingErrors, BadCellAndMissingChannel) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  try {
    ss.connect(0, 7, 1_us);
    FAIL();
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kBadCell);
  }
  ShardMsg msg;
  try {
    ss.cell(0).send(1, msg);  // no channel installed
    FAIL();
  } catch (const ShardingError& e) {
    EXPECT_EQ(e.code(), ShardingErrorCode::kNoChannel);
  }
}

TEST(ShardingErrors, RunMisuse) {
  {
    ShardedSimulator ss;
    try {
      ss.run(1_ms, 1);
      FAIL();
    } catch (const ShardingError& e) {
      EXPECT_EQ(e.code(), ShardingErrorCode::kNoCells);
    }
  }
  {
    ShardedSimulator ss;
    ss.add_cell("a");
    try {
      ss.run(1_ms, 0);
      FAIL();
    } catch (const ShardingError& e) {
      EXPECT_EQ(e.code(), ShardingErrorCode::kBadShardCount);
    }
  }
  {
    ShardedSimulator ss;
    ss.add_cell("a");
    ss.run(1_ms, 1);
    try {
      ss.run(1_ms, 1);
      FAIL();
    } catch (const ShardingError& e) {
      EXPECT_EQ(e.code(), ShardingErrorCode::kAlreadyRan);
    }
  }
}

// --- deterministic workload used by the shard-count sweep -------------------

/// Per-cell context of the bouncing-message workload: every cell runs a
/// periodic local task that sends hop-limited messages to its outbound
/// neighbors; receipt may bounce the message onward, decided by the
/// cell's own derived RNG (cell-local state only, so the decision
/// sequence is a pure function of the cell's deterministic history).
struct BounceCtx {
  std::vector<std::uint32_t> dsts;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<PeriodicTask> task;
  std::uint64_t received = 0;
  std::uint64_t bounced = 0;
};

struct BounceWorld {
  ShardedSimulator ss;
  std::vector<BounceCtx> ctx;
};

void build_bounce_world(BounceWorld& w, std::uint64_t seed,
                        std::size_t n_cells) {
  const Rng root(seed);
  Rng topo = root.derive("topology");
  for (std::size_t i = 0; i < n_cells; ++i) {
    w.ss.add_cell("cell" + std::to_string(i), 1 + i % 3);
  }
  w.ctx.resize(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    for (std::size_t j = 0; j < n_cells; ++j) {
      if (i == j) continue;
      // Ring edge always (keeps the graph connected); chords with p=0.3.
      const bool ring = j == (i + 1) % n_cells;
      if (ring || topo.bernoulli(0.3)) {
        w.ss.connect(static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(j),
                     SimTime{topo.uniform_int(1'000, 50'000)});
        w.ctx[i].dsts.push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
  w.ss.set_record_fire_log(true);
  for (std::size_t i = 0; i < n_cells; ++i) {
    ShardedSimulator::Cell& cell = w.ss.cell(static_cast<std::uint32_t>(i));
    BounceCtx& c = w.ctx[i];
    c.rng = std::make_unique<Rng>(0);
    *c.rng = root.derive("cell" + std::to_string(i));
    cell.set_handler([&c](ShardedSimulator::Cell& self, const ShardMsg& m) {
      ++c.received;
      if (m.b < 4 && !c.dsts.empty() && c.rng->bernoulli(0.6)) {
        ShardMsg next = m;
        next.b = m.b + 1;
        const auto pick = static_cast<std::size_t>(
            c.rng->uniform_int(0, static_cast<std::int64_t>(c.dsts.size()) -
                                      1));
        self.send(c.dsts[pick], next);
        ++c.bounced;
      }
    });
    const SimTime period{c.rng->uniform_int(10'000, 100'000)};
    c.task = std::make_unique<PeriodicTask>(
        cell.sim(), period, period, [&c, &cell] {
          if (c.dsts.empty()) return;
          ShardMsg m;
          m.kind = 1;
          m.b = 0;
          const auto pick = static_cast<std::size_t>(c.rng->uniform_int(
              0, static_cast<std::int64_t>(c.dsts.size()) - 1));
          cell.send(c.dsts[pick], m);
        });
  }
}

struct BounceOutcome {
  std::vector<std::vector<FireRecord>> logs;
  std::vector<std::uint64_t> received, bounced, sent, delivered;
  ShardRunStats stats;

  [[nodiscard]] bool operator==(const BounceOutcome& o) const {
    return logs == o.logs && received == o.received && bounced == o.bounced &&
           sent == o.sent && delivered == o.delivered &&
           stats.events == o.stats.events &&
           stats.msgs_delivered == o.stats.msgs_delivered &&
           stats.msgs_sent == o.stats.msgs_sent &&
           stats.beyond_horizon == o.stats.beyond_horizon;
  }
};

BounceOutcome harvest(BounceWorld& w, ShardRunStats stats) {
  BounceOutcome out;
  out.stats = stats;
  for (std::size_t i = 0; i < w.ctx.size(); ++i) {
    auto& cell = w.ss.cell(static_cast<std::uint32_t>(i));
    out.logs.push_back(cell.fire_log());
    out.received.push_back(w.ctx[i].received);
    out.bounced.push_back(w.ctx[i].bounced);
    out.sent.push_back(cell.msgs_sent());
    out.delivered.push_back(cell.msgs_delivered());
  }
  return out;
}

TEST(ShardedDeterminism, IdenticalAcrossShardCounts1248) {
  constexpr std::uint64_t kSeed = 7;
  constexpr std::size_t kCells = 9;
  const SimTime horizon = 3_ms;

  BounceWorld base;
  build_bounce_world(base, kSeed, kCells);
  const BounceOutcome golden = harvest(base, base.ss.run(horizon, 1));
  ASSERT_GT(golden.stats.msgs_delivered, 100u);

  for (const std::size_t shards : {2, 4, 8}) {
    BounceWorld w;
    build_bounce_world(w, kSeed, kCells);
    const BounceOutcome got = harvest(w, w.ss.run(horizon, shards));
    EXPECT_TRUE(got == golden) << "shards=" << shards
                               << " diverged from shards=1";
  }
}

TEST(ShardedDeterminism, RandomTopologyPropertyVsReference) {
  // Property: for random topologies and workloads, the threaded
  // conservative engine produces exactly the per-cell fire order of the
  // globally ordered single-threaded reference.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t cells = 2 + seed % 7;
    BounceWorld ref;
    build_bounce_world(ref, seed, cells);
    const BounceOutcome want = harvest(ref, ref.ss.run_reference(2_ms));

    const std::size_t shards = 1 + seed % 4;
    BounceWorld w;
    build_bounce_world(w, seed, cells);
    const BounceOutcome got = harvest(w, w.ss.run(2_ms, shards));
    EXPECT_TRUE(got == want)
        << "seed=" << seed << " cells=" << cells << " shards=" << shards
        << " diverged from run_reference";
  }
}

TEST(ShardedDeterminism, MessagesDeliverBeforeLocalEventsAtEqualTime) {
  // Channel latency 10us; sender fires at t=0, receiver has a local
  // event at exactly t=10us. The merge rule says the message executes
  // first -- at any shard count.
  for (const std::size_t shards : {1, 2}) {
    ShardedSimulator ss;
    ss.add_cell("tx");
    ss.add_cell("rx");
    ss.connect(0, 1, 10_us);
    ss.set_record_fire_log(true);
    ss.cell(0).sim().schedule_at(SimTime::zero(), [&ss] {
      ShardMsg m;
      ss.cell(0).send(1, m);
    });
    ss.cell(1).sim().schedule_at(10_us, [] {});
    ss.run(1_ms, shards);
    const auto& log = ss.cell(1).fire_log();
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].t_ns, 10'000);
    EXPECT_EQ(log[0].kind, 1u);  // the message...
    EXPECT_EQ(log[1].t_ns, 10'000);
    EXPECT_EQ(log[1].kind, 0u);  // ...then the local event
  }
}

// --- cross-shard cancellation + EventQueue accounting -----------------------

/// EventHandles are not thread-safe and never cross shards: a remote
/// cancel is a message whose handler cancels on the owning shard. The
/// audit pins the owning cell's live/cancelled accounting exactly, at
/// every shard count.
TEST(ShardedCancel, CrossShardCancelKeepsQueueAccountingExact) {
  struct Result {
    std::uint64_t fired, cancelled_total, pending;
  };
  const auto run_one = [](std::size_t shards) -> Result {
    ShardedSimulator ss;
    ss.add_cell("owner");
    ss.add_cell("canceller");
    ss.connect(1, 0, 5_us);
    std::map<std::uint64_t, EventHandle> armed;  // owned by cell 0 only
    std::uint64_t fired = 0;
    // Cell 0 arms 32 timers at 100us..131us, keyed 0..31.
    ss.cell(0).sim().schedule_at(SimTime::zero(), [&] {
      for (std::uint64_t k = 0; k < 32; ++k) {
        armed.emplace(k, ss.cell(0).sim().schedule_at(
                             100_us + SimTime{static_cast<std::int64_t>(k) *
                                              1'000},
                             [&fired] { ++fired; }));
      }
    });
    // Cell 1 asks for every even timer to be cancelled; the messages
    // arrive (5us + k us) << 100us, well before the timers fire.
    ss.cell(1).sim().schedule_at(SimTime::zero(), [&ss] {
      for (std::uint64_t k = 0; k < 32; k += 2) {
        ShardMsg m;
        m.kind = 1;
        m.a = k;
        ss.cell(1).send(0, m, SimTime{static_cast<std::int64_t>(k) * 1'000});
      }
    });
    ss.cell(0).set_handler([&armed](ShardedSimulator::Cell&,
                                    const ShardMsg& m) {
      const auto it = armed.find(m.a);
      ASSERT_NE(it, armed.end());
      it->second.cancel();
      armed.erase(it);
    });
    ss.run(1_ms, shards);
    return {fired, ss.cell(0).sim().events_cancelled(),
            ss.cell(0).sim().events_pending()};
  };

  for (const std::size_t shards : {1, 2}) {
    const Result r = run_one(shards);
    EXPECT_EQ(r.fired, 16u) << "shards=" << shards;
    EXPECT_EQ(r.cancelled_total, 16u) << "shards=" << shards;
    EXPECT_EQ(r.pending, 0u) << "shards=" << shards;
  }
}

/// Per-shard EventQueues share nothing: hammering one queue per thread
/// keeps every queue's live_size/cancelled_total/slot_capacity exactly
/// equal to the same pattern run sequentially.
TEST(ShardedCancel, PerThreadQueuesKeepIndependentAccounting) {
  struct Audit {
    std::size_t live;
    std::uint64_t cancelled;
    std::uint64_t scheduled;
  };
  const auto pattern = [](std::uint64_t salt) -> Audit {
    EventQueue q;
    std::vector<EventHandle> handles;
    for (std::uint64_t k = 0; k < 256; ++k) {
      handles.push_back(
          q.schedule(SimTime{static_cast<std::int64_t>(k + salt)}, [] {}));
    }
    for (std::size_t k = 0; k < handles.size(); k += 3) handles[k].cancel();
    SimTime t;
    EventQueue::Callback cb;
    for (int k = 0; k < 50; ++k) (void)q.pop_next(t, cb);
    return {q.live_size(), q.cancelled_total(), q.scheduled_total()};
  };

  std::vector<Audit> sequential;
  sequential.reserve(4);
  for (std::uint64_t s = 0; s < 4; ++s) sequential.push_back(pattern(s));

  std::vector<Audit> threaded(4);
  std::vector<std::thread> pool;
  pool.reserve(4);
  for (std::uint64_t s = 0; s < 4; ++s) {
    pool.emplace_back([&threaded, &pattern, s] { threaded[s] = pattern(s); });
  }
  for (auto& th : pool) th.join();

  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(threaded[s].live, sequential[s].live);
    EXPECT_EQ(threaded[s].cancelled, sequential[s].cancelled);
    EXPECT_EQ(threaded[s].scheduled, sequential[s].scheduled);
    EXPECT_EQ(threaded[s].cancelled, 86u);  // ceil(256 / 3)
  }
}

// --- termination / misc -----------------------------------------------------

TEST(ShardedSimulator, CellsWithNoChannelsJustRunLocally) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  // Unconnected cells run concurrently on their own shards, so anything
  // the two callbacks share must be atomic.
  std::atomic<int> fired{0};
  ss.cell(0).sim().schedule_at(10_us, [&] { ++fired; });
  ss.cell(1).sim().schedule_at(20_us, [&] { ++fired; });
  const ShardRunStats stats = ss.run(1_ms, 2);
  EXPECT_EQ(fired.load(), 2);
  EXPECT_EQ(stats.events, 2u);
  EXPECT_EQ(stats.msgs_sent, 0u);
}

TEST(ShardedSimulator, BeyondHorizonMessagesAreCountedNotExecuted) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  ss.connect(0, 1, 10_us);
  std::uint64_t delivered = 0;
  ss.cell(1).set_handler(
      [&](ShardedSimulator::Cell&, const ShardMsg&) { ++delivered; });
  // Sent at 95us + 10us latency = 105us > 100us horizon.
  ss.cell(0).sim().schedule_at(95_us, [&ss] {
    ShardMsg m;
    ss.cell(0).send(1, m);
  });
  const ShardRunStats stats = ss.run(100_us, 2);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stats.msgs_sent, 1u);
  EXPECT_EQ(stats.msgs_delivered, 0u);
  EXPECT_EQ(stats.beyond_horizon, 1u);
  EXPECT_EQ(ss.cell(1).msgs_beyond_horizon(), 1u);
}

TEST(ShardedSimulator, LookaheadReportsMinInboundLatency) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  ss.add_cell("c");
  ss.connect(0, 2, 30_us);
  ss.connect(1, 2, 7_us);
  EXPECT_EQ(ss.cell(2).lookahead(), 7_us);
  EXPECT_EQ(ss.cell(0).lookahead(), SimTime::max());
  EXPECT_EQ(ss.cell(0).latency_to(2), 30_us);
}

// --- pluggable placement ----------------------------------------------------

TEST(ShardedPlacement, MeasuredLptKeepsFireLogsIdenticalToReference) {
  // The core claim of the balancing work: placement decides wall-clock
  // only. A random measured profile scatters cells across shards in a
  // completely different layout than prefix-quota, and every per-cell
  // fire log must still match the single-threaded reference.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::size_t cells = 5 + seed;
    BounceWorld ref;
    build_bounce_world(ref, seed, cells);
    const BounceOutcome want = harvest(ref, ref.ss.run_reference(2_ms));

    Rng rng = Rng(seed).derive("measured-profile");
    std::vector<std::uint64_t> measured(cells);
    for (auto& w : measured) {
      w = static_cast<std::uint64_t>(rng.uniform_int(1, 100'000));
    }
    const LptPartitioner lpt;
    for (const std::size_t shards : {1, 2, 4, 8}) {
      BounceWorld w;
      build_bounce_world(w, seed, cells);
      w.ss.set_partitioner(&lpt);
      w.ss.set_measured_weights(measured);
      const BounceOutcome got = harvest(w, w.ss.run(2_ms, shards));
      EXPECT_TRUE(got == want)
          << "seed=" << seed << " shards=" << shards
          << " diverged under measured LPT placement";
      EXPECT_NO_THROW(validate_assignment(w.ss.partition_map(), cells,
                                          std::min(shards, cells)));
    }
  }
}

TEST(ShardedPlacement, EqualMeasuredWeightsReproducePrefixPartition) {
  // Regression pin of the LPT tie-break rule at the kernel level: a flat
  // calibration profile carries no signal, so the measured strategy
  // falls back to the prefix-quota walk over those same flat weights
  // instead of inventing a round-robin scatter.
  constexpr std::size_t kCells = 9;
  const std::vector<std::uint64_t> flat(kCells, 5);
  BounceWorld a;
  build_bounce_world(a, 3, kCells);
  const LptPartitioner lpt;
  a.ss.set_partitioner(&lpt);
  a.ss.set_measured_weights(flat);
  (void)a.ss.run(1_ms, 4);
  EXPECT_EQ(a.ss.partition_map(),
            PrefixQuotaPartitioner{}.assign(flat, 4));
}

TEST(ShardedPlacement, MeasuredWeightsSizeMismatchIsTyped) {
  ShardedSimulator ss;
  ss.add_cell("a");
  ss.add_cell("b");
  ss.set_measured_weights({1, 2, 3});  // 3 weights, 2 cells
  try {
    (void)ss.run(1_ms, 2);
    FAIL() << "expected PartitionError";
  } catch (const PartitionError& e) {
    EXPECT_EQ(e.code(), PartitionErrorCode::kProfileMismatch);
  }
}

TEST(ShardedPlacement, RateProfileReportsPerCellLoadInIdOrder) {
  BounceWorld w;
  build_bounce_world(w, 7, 6);
  const ShardRunStats stats = w.ss.run(2_ms, 2);
  const RateProfile profile = w.ss.rate_profile();
  ASSERT_EQ(profile.cells.size(), 6u);
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  for (std::size_t i = 0; i < profile.cells.size(); ++i) {
    EXPECT_EQ(profile.cells[i].name, "cell" + std::to_string(i));
    EXPECT_EQ(profile.cells[i].msgs,
              w.ss.cell(static_cast<std::uint32_t>(i)).msgs_delivered());
    events += profile.cells[i].events;
    msgs += profile.cells[i].msgs;
  }
  EXPECT_EQ(events, stats.events);
  EXPECT_EQ(msgs, stats.msgs_delivered);
  // The profile is itself part of the deterministic surface: a rerun at
  // a different shard count reproduces it byte for byte.
  BounceWorld w2;
  build_bounce_world(w2, 7, 6);
  (void)w2.ss.run(2_ms, 4);
  EXPECT_EQ(w2.ss.rate_profile().to_text(), profile.to_text());
}

}  // namespace
}  // namespace steelnet::sim
