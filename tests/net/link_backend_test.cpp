// The link-layer driver contract: typed connect() bit-rate guards, the
// scriptable FakeBackend (drop/rate/flight-time overrides consumed in
// transmit order, estimates never consuming), and the LossyRadioBackend
// (configuration validation, binding rules, the association/roaming state
// machine, and seeded per-frame determinism).
#include "net/link_backend.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/fake_backend.hpp"
#include "net/host_node.hpp"
#include "net/network.hpp"
#include "net/radio_backend.hpp"
#include "sim/simulator.hpp"

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

Frame make_frame(MacAddress dst, std::size_t payload = 46) {
  Frame f;
  f.dst = dst;
  f.payload.resize(payload);
  return f;
}

struct BackendHosts {
  sim::Simulator sim;
  Network net{sim};
  HostNode* a = nullptr;
  HostNode* b = nullptr;
  std::vector<sim::SimTime> rx;

  explicit BackendHosts(LinkParams params = {}, LinkBackend* backend = nullptr) {
    a = &net.add_node<HostNode>("a", MacAddress{1});
    b = &net.add_node<HostNode>("b", MacAddress{2});
    net.connect(a->id(), 0, b->id(), 0, params, backend);
    b->set_receiver([this](Frame, sim::SimTime at) { rx.push_back(at); });
  }
};

// ---------------------------------------------------------------------
// connect() bit-rate guards (the PR's zero-rate regression).

TEST(LinkGuards, ConnectRejectsZeroBitRate) {
  sim::Simulator sim;
  Network net{sim};
  auto& a = net.add_node<HostNode>("a", MacAddress{1});
  auto& b = net.add_node<HostNode>("b", MacAddress{2});
  try {
    net.connect(a.id(), 0, b.id(), 0, LinkParams{0, 500_ns});
    FAIL() << "zero bit rate must not connect";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.code(), LinkErrorCode::kZeroBitRate);
  }
  // The failed connect left no half-attached channel behind.
  EXPECT_FALSE(net.has_channel(a.id(), 0));
  EXPECT_FALSE(net.has_channel(b.id(), 0));
}

TEST(LinkGuards, ConnectRejectsAbsurdlySlowRate) {
  sim::Simulator sim;
  Network net{sim};
  auto& a = net.add_node<HostNode>("a", MacAddress{1});
  auto& b = net.add_node<HostNode>("b", MacAddress{2});
  try {
    net.connect(a.id(), 0, b.id(), 0, LinkParams{500, 500_ns});
    FAIL() << "a 500 bit/s link overflows SimTime serialization";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.code(), LinkErrorCode::kBitRateTooLow);
  }
  // Exactly kMinLinkBitRate is the slowest accepted link.
  net.connect(a.id(), 0, b.id(), 0, LinkParams{kMinLinkBitRate, 500_ns});
  EXPECT_EQ(net.channel_rate(a.id(), 0), kMinLinkBitRate);
}

TEST(LinkGuards, LinkErrorIsASimError) {
  // Pre-existing catch sites that only know sim::SimError keep working.
  sim::Simulator sim;
  Network net{sim};
  auto& a = net.add_node<HostNode>("a", MacAddress{1});
  auto& b = net.add_node<HostNode>("b", MacAddress{2});
  EXPECT_THROW(net.connect(a.id(), 0, b.id(), 0, LinkParams{0, 500_ns}),
               sim::SimError);
}

TEST(LinkGuards, DefaultBackendIsWired) {
  BackendHosts t;
  EXPECT_STREQ(t.net.channel_backend(t.a->id(), 0).kind(), "wired");
}

// ---------------------------------------------------------------------
// FakeBackend: scripted impairment, consumed in transmit order.

TEST(FakeBackend, ScriptedDropRateAndFlightTime) {
  FakeBackend fake;
  // Frame 1 dies; frame 2 is an ideal wire; frame 3 crawls at 100 Mbit/s
  // with 1 us of extra flight time; frame 4 onward falls back to wired.
  FakeAction kill;
  kill.drop = true;
  FakeAction crawl;
  crawl.rate_override = 100'000'000;
  crawl.extra_propagation = sim::microseconds(1);
  fake.script_global({kill, {}, crawl});
  BackendHosts t{LinkParams{1'000'000'000, 500_ns}, &fake};
  for (int i = 0; i < 4; ++i) t.a->send(make_frame(MacAddress{2}));
  t.sim.run();

  // The dropped frame still occupied the wire for its 672 ns: frame 2
  // starts at 672 ns (rx 1844 ns), frame 3 at 1344 ns for 6720 ns of
  // serialization plus 1 us of extra flight (rx 9564 ns), frame 4 back at
  // wire speed from 8064 ns -- overtaking frame 3's stretched flight.
  ASSERT_EQ(t.rx.size(), 3u);
  EXPECT_EQ(t.rx[0], 1844_ns);
  EXPECT_EQ(t.rx[1], 9236_ns);
  EXPECT_EQ(t.rx[2], 9564_ns);

  EXPECT_EQ(t.net.counters().frames_offered, 4u);
  EXPECT_EQ(t.net.counters().frames_delivered, 3u);
  EXPECT_EQ(t.net.counters().frames_dropped_backend, 1u);
  EXPECT_EQ(fake.frames_seen(), 4u);
  EXPECT_EQ(fake.frames_dropped(), 1u);
  EXPECT_EQ(fake.pending_actions(), 0u);
}

TEST(FakeBackend, PerPortScriptBeatsGlobal) {
  FakeBackend fake;
  BackendHosts t{LinkParams{}, &fake};
  FakeAction kill;
  kill.drop = true;
  kill.cause = "fake_port_drop";
  fake.script(t.a->id(), 0, {kill});
  fake.script_global({{}, {}});
  t.a->send(make_frame(MacAddress{2}));
  t.b->send(make_frame(MacAddress{1}));
  t.sim.run();
  // a's frame consumed the per-port drop; b's direction has no per-port
  // script and drew a pass from the global one.
  EXPECT_TRUE(t.rx.empty());
  EXPECT_EQ(t.net.counters().frames_delivered, 1u);
  EXPECT_EQ(t.net.counters().frames_dropped_backend, 1u);
  EXPECT_EQ(fake.pending_actions(), 1u);
}

TEST(FakeBackend, SerializationEstimatePeeksWithoutConsuming) {
  FakeBackend fake;
  BackendHosts t{LinkParams{1'000'000'000, 0_ns}, &fake};
  FakeAction crawl;
  crawl.rate_override = 100'000'000;
  fake.script(t.a->id(), 0, {crawl});
  const Frame probe = make_frame(MacAddress{2});
  // The estimate reflects the pending override and may be asked any
  // number of times without eating the scripted action.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.net.serialization_estimate(t.a->id(), 0, probe), 6720_ns);
  }
  EXPECT_EQ(fake.pending_actions(), 1u);
  EXPECT_EQ(fake.frames_seen(), 0u);
}

// ---------------------------------------------------------------------
// LossyRadioBackend: configuration and binding rules.

RadioConfig small_radio(double snr_offset_db = 0.0) {
  RadioConfig cfg;
  cfg.aps.push_back({"ap0", 0.0, 0.0});
  cfg.rates = {{2.0, 6'000'000},
               {9.0, 24'000'000},
               {18.0, 54'000'000}};
  cfg.snr_offset_db = snr_offset_db;
  return cfg;
}

std::vector<RadioWaypoint> parked_at(double x, double y) {
  return {{sim::SimTime::zero(), x, y}};
}

LinkErrorCode code_of(RadioConfig cfg) {
  try {
    LossyRadioBackend backend{std::move(cfg)};
  } catch (const LinkError& e) {
    return e.code();
  }
  ADD_FAILURE() << "config unexpectedly accepted";
  return LinkErrorCode::kZeroBitRate;
}

TEST(LossyRadio, ConstructorRejectsBadConfig) {
  auto no_aps = small_radio();
  no_aps.aps.clear();
  EXPECT_EQ(code_of(std::move(no_aps)), LinkErrorCode::kBadRadioConfig);

  auto no_rates = small_radio();
  no_rates.rates.clear();
  EXPECT_EQ(code_of(std::move(no_rates)), LinkErrorCode::kBadRadioConfig);

  auto slow_rung = small_radio();
  slow_rung.rates[0].bits_per_second = kMinLinkBitRate - 1;
  EXPECT_EQ(code_of(std::move(slow_rung)), LinkErrorCode::kBadRadioConfig);

  auto unsorted = small_radio();
  std::swap(unsorted.rates[0], unsorted.rates[2]);
  EXPECT_EQ(code_of(std::move(unsorted)), LinkErrorCode::kBadRadioConfig);

  auto bad_timer = small_radio();
  bad_timer.scan_interval = sim::SimTime::zero();
  EXPECT_EQ(code_of(std::move(bad_timer)), LinkErrorCode::kBadRadioConfig);
}

TEST(LossyRadio, StationValidationAndBinding) {
  LossyRadioBackend radio{small_radio()};
  EXPECT_THROW(radio.add_station("empty", {}), LinkError);
  const std::size_t st = radio.add_station("agv", parked_at(10.0, 0.0));

  radio.bind_link(1, 0, 2, 0, st);
  try {
    radio.bind_link(1, 0, 3, 0, st);
    FAIL() << "rebinding a bound endpoint must fail";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.code(), LinkErrorCode::kDuplicateBinding);
  }
  try {
    radio.bind_link(4, 0, 5, 0, st + 1);
    FAIL() << "binding an unknown station must fail";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.code(), LinkErrorCode::kUnboundStation);
  }
}

TEST(LossyRadio, ConnectRequiresABoundStation) {
  sim::Simulator sim;
  Network net{sim};
  auto& a = net.add_node<HostNode>("a", MacAddress{1});
  auto& b = net.add_node<HostNode>("b", MacAddress{2});
  LossyRadioBackend radio{small_radio()};
  try {
    net.connect(a.id(), 0, b.id(), 0, LinkParams{}, &radio);
    FAIL() << "connect over an unbound radio link must fail";
  } catch (const LinkError& e) {
    EXPECT_EQ(e.code(), LinkErrorCode::kUnboundStation);
  }
}

// ---------------------------------------------------------------------
// LossyRadioBackend: the association/roaming state machine and the
// seeded per-frame channel. Driven directly (no Network) -- the backend
// contract is plain (node, port, frame, now) calls in transmit order.

TEST(LossyRadio, AssociationOpensAfterTheHandshake) {
  LossyRadioBackend radio{small_radio()};
  const std::size_t st = radio.add_station("agv", parked_at(10.0, 0.0));
  radio.bind_link(1, 0, 2, 0, st);
  const Frame f = make_frame(MacAddress{2});
  const LinkParams params{};

  // t=0 lands inside the association handshake (assoc_delay = 2 ms):
  // the scan epoch associated the station but the air is not ready yet.
  const LinkTxPlan during = radio.plan_transmit(1, 0, f, params, 0_ns);
  EXPECT_FALSE(during.survives);
  EXPECT_STREQ(during.cause, "radio_handoff");

  // Well past the handshake at ~44 dB mean SNR the top rung carries the
  // frame with essentially zero error probability.
  const LinkTxPlan after = radio.plan_transmit(1, 0, f, params, 100_ms);
  EXPECT_TRUE(after.survives);
  EXPECT_EQ(after.bits_per_second, 54'000'000u);

  EXPECT_EQ(radio.counters().frames_planned, 2u);
  EXPECT_EQ(radio.counters().dropped_handoff, 1u);
  EXPECT_EQ(radio.counters().assoc_events, 1u);
  const auto status = radio.station_status(st);
  EXPECT_TRUE(status.associated);
  EXPECT_EQ(status.ap, 0u);
}

TEST(LossyRadio, BelowTheAssociationFloorNothingFlies) {
  // -45 dB offset pushes the mean SNR below assoc_min_snr_db: the station
  // never associates and every frame dies to "radio_no_assoc".
  LossyRadioBackend radio{small_radio(-45.0)};
  const std::size_t st = radio.add_station("agv", parked_at(10.0, 0.0));
  radio.bind_link(1, 0, 2, 0, st);
  const Frame f = make_frame(MacAddress{2});
  for (int i = 0; i < 5; ++i) {
    const LinkTxPlan plan =
        radio.plan_transmit(1, 0, f, LinkParams{}, sim::milliseconds(i * 10));
    EXPECT_FALSE(plan.survives);
    EXPECT_STREQ(plan.cause, "radio_no_assoc");
  }
  EXPECT_EQ(radio.counters().dropped_no_assoc, 5u);
  EXPECT_FALSE(radio.station_status(st).associated);
}

TEST(LossyRadio, ShuttlingStationRoamsBetweenAps) {
  RadioConfig cfg = small_radio();
  cfg.aps.push_back({"ap1", 20.0, 0.0});
  cfg.roam_hysteresis_db = 2.0;
  LossyRadioBackend radio{cfg};
  // One full shuttle: near ap0 for the first half, near ap1 afterwards.
  const std::size_t st = radio.add_station(
      "agv", {{sim::SimTime::zero(), 2.0, 0.0},
              {sim::milliseconds(500), 18.0, 0.0},
              {sim::seconds(1), 18.0, 0.0}});
  radio.bind_link(1, 0, 2, 0, st);
  const Frame f = make_frame(MacAddress{2});
  for (int i = 0; i <= 100; ++i) {
    (void)radio.plan_transmit(1, 0, f, LinkParams{},
                              sim::milliseconds(i * 10));
  }
  const auto status = radio.station_status(st);
  EXPECT_TRUE(status.associated);
  EXPECT_EQ(status.ap, 1u);  // ended up on the far AP
  EXPECT_EQ(status.roam_events, 1u);
  EXPECT_EQ(radio.counters().roam_events, 1u);
  EXPECT_GE(radio.counters().dropped_handoff, 1u);  // the dead-air window
}

TEST(LossyRadio, SameSeedReplaysTheExactChannel) {
  const auto run = [](std::uint64_t seed) {
    RadioConfig cfg = small_radio(-32.0);  // ~12 dB: FER territory
    cfg.seed = seed;
    LossyRadioBackend radio{cfg};
    radio.bind_link(1, 0, 2, 0,
                    radio.add_station("agv", parked_at(10.0, 0.0)));
    const Frame f = make_frame(MacAddress{2});
    for (int i = 0; i < 400; ++i) {
      (void)radio.plan_transmit(1, 0, f, LinkParams{},
                                sim::milliseconds(10 + i));
    }
    return radio.counters();
  };
  const RadioCounters one = run(7);
  const RadioCounters two = run(7);
  EXPECT_EQ(one.dropped_snr, two.dropped_snr);
  EXPECT_EQ(one.rate_bps_total, two.rate_bps_total);
  EXPECT_EQ(one.snr_millidb_total, two.snr_millidb_total);
  EXPECT_EQ(one.snr_millidb_min, two.snr_millidb_min);
  EXPECT_EQ(one.snr_millidb_max, two.snr_millidb_max);
  // At ~12 dB the logistic FER is 0.5: losses must actually occur, and a
  // different seed must draw a different channel.
  EXPECT_GT(one.dropped_snr, 0u);
  EXPECT_LT(one.dropped_snr, 400u);
  EXPECT_NE(one.snr_millidb_total, run(8).snr_millidb_total);
}

}  // namespace
}  // namespace steelnet::net
