#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/host_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

struct TwoHosts {
  sim::Simulator sim;
  Network net{sim};
  HostNode* a = nullptr;
  HostNode* b = nullptr;

  explicit TwoHosts(LinkParams params = {}) {
    a = &net.add_node<HostNode>("a", MacAddress{1});
    b = &net.add_node<HostNode>("b", MacAddress{2});
    net.connect(a->id(), 0, b->id(), 0, params);
  }
};

Frame make_frame(MacAddress dst, std::size_t payload = 46) {
  Frame f;
  f.dst = dst;
  f.payload.resize(payload);
  return f;
}

TEST(Network, DeliversFrameWithSerializationAndPropagation) {
  TwoHosts t{LinkParams{1'000'000'000, 500_ns}};
  sim::SimTime rx_at = sim::SimTime::zero();
  t.b->set_receiver([&](Frame, sim::SimTime at) { rx_at = at; });
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  // 64B wire + 20B overhead = 672 ns serialization + 500 ns propagation.
  EXPECT_EQ(rx_at, 1172_ns);
}

TEST(Network, FramesQueueBehindBusyChannel) {
  TwoHosts t{LinkParams{1'000'000'000, 0_ns}};
  std::vector<sim::SimTime> rx;
  t.b->set_receiver([&](Frame, sim::SimTime at) { rx.push_back(at); });
  t.a->send(make_frame(MacAddress{2}));
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0], 672_ns);
  EXPECT_EQ(rx[1], 1344_ns);
}

TEST(Network, HigherPcpOvertakesInHostQueue) {
  TwoHosts t{LinkParams{1'000'000'000, 0_ns}};
  std::vector<std::uint8_t> order;
  t.b->set_receiver([&](Frame f, sim::SimTime) { order.push_back(f.pcp); });
  // Three frames queued at once: first occupies the wire; among the two
  // waiting, pcp 6 must beat pcp 0 even though it was enqueued later.
  auto f0 = make_frame(MacAddress{2});
  f0.pcp = 0;
  auto f1 = make_frame(MacAddress{2});
  f1.pcp = 0;
  auto f2 = make_frame(MacAddress{2});
  f2.pcp = 6;
  t.a->send(std::move(f0));
  t.a->send(std::move(f1));
  t.a->send(std::move(f2));
  t.sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 6);
  EXPECT_EQ(order[2], 0);
}

TEST(Network, SendWithoutLinkCountsDrop) {
  sim::Simulator sim;
  Network net{sim};
  auto& h = net.add_node<HostNode>("lonely", MacAddress{1});
  h.send(make_frame(MacAddress{2}));
  sim.run();
  EXPECT_EQ(net.counters().frames_delivered, 0u);
  EXPECT_EQ(net.counters().frames_dropped_no_link, 1u);
}

TEST(Network, ConnectValidation) {
  sim::Simulator sim;
  Network net{sim};
  auto& a = net.add_node<HostNode>("a", MacAddress{1});
  auto& b = net.add_node<HostNode>("b", MacAddress{2});
  net.connect(a.id(), 0, b.id(), 0);
  EXPECT_THROW(net.connect(a.id(), 0, b.id(), 1), sim::SimError);
  EXPECT_THROW(net.connect(99, 0, 98, 0), sim::SimError);
}

TEST(Network, PeerLookup) {
  TwoHosts t;
  const auto p = t.net.peer(t.a->id(), 0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->first, t.b->id());
  EXPECT_EQ(p->second, 0);
  EXPECT_FALSE(t.net.peer(t.a->id(), 5).has_value());
}

TEST(Network, ChannelRate) {
  TwoHosts t{LinkParams{100'000'000, 0_ns}};
  EXPECT_EQ(t.net.channel_rate(t.a->id(), 0), 100'000'000u);
  EXPECT_THROW(t.net.channel_rate(t.a->id(), 9), sim::SimError);
}

TEST(Network, SrcMacAutofilledOnSend) {
  TwoHosts t;
  MacAddress seen_src;
  t.b->set_receiver([&](Frame f, sim::SimTime) { seen_src = f.src; });
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  EXPECT_EQ(seen_src, MacAddress{1});
}

TEST(Network, CountersTrackDelivery) {
  TwoHosts t;
  t.a->send(make_frame(MacAddress{2}));
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  EXPECT_EQ(t.net.counters().frames_delivered, 2u);
  EXPECT_EQ(t.net.counters().bytes_delivered, 128u);
  EXPECT_EQ(t.a->counters().sent, 2u);
  EXPECT_EQ(t.b->counters().received, 2u);
}

TEST(HostNode, NicProcessorDropAndTx) {
  struct Dropper : NicProcessor {
    NicAction process(Frame&, sim::SimTime, sim::SimTime& cost) override {
      cost = 100_ns;
      return NicAction::kDrop;
    }
  };
  TwoHosts t;
  Dropper d;
  t.b->set_nic_processor(&d);
  int received = 0;
  t.b->set_receiver([&](Frame, sim::SimTime) { ++received; });
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(t.b->counters().nic_drop, 1u);
}

TEST(HostNode, NicProcessorReflectsTx) {
  struct Reflector : NicProcessor {
    NicAction process(Frame& f, sim::SimTime, sim::SimTime& cost) override {
      std::swap(f.dst, f.src);
      cost = 250_ns;
      return NicAction::kTx;
    }
  };
  TwoHosts t{LinkParams{1'000'000'000, 0_ns}};
  Reflector r;
  t.b->set_nic_processor(&r);
  sim::SimTime echo_at = sim::SimTime::zero();
  t.a->set_receiver([&](Frame, sim::SimTime at) { echo_at = at; });
  t.a->send(make_frame(MacAddress{2}));
  t.sim.run();
  // 672 out + 250 prog + 672 back.
  EXPECT_EQ(echo_at, 1594_ns);
  EXPECT_EQ(t.b->counters().nic_tx, 1u);
}

}  // namespace
}  // namespace steelnet::net
