#include "net/switch_node.hpp"

#include <gtest/gtest.h>

#include "net/host_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

struct StarFixture {
  sim::Simulator sim;
  Network net{sim};
  SwitchNode* sw = nullptr;
  std::vector<HostNode*> hosts;

  explicit StarFixture(std::size_t n_hosts, SwitchConfig cfg = {}) {
    sw = &net.add_node<SwitchNode>("sw", cfg);
    for (std::size_t i = 0; i < n_hosts; ++i) {
      auto& h = net.add_node<HostNode>("h" + std::to_string(i),
                                       MacAddress{i + 1});
      net.connect(h.id(), 0, sw->id(), static_cast<PortId>(i));
      hosts.push_back(&h);
    }
  }
};

Frame to(MacAddress dst, std::uint8_t pcp = 0) {
  Frame f;
  f.dst = dst;
  f.pcp = pcp;
  f.payload.resize(46);
  return f;
}

TEST(SwitchNode, ForwardsViaStaticFdb) {
  StarFixture fx{3, SwitchConfig{.mac_learning = false}};
  fx.sw->add_fdb_entry(MacAddress{2}, 1);
  int got = 0;
  fx.hosts[1]->set_receiver([&](Frame, sim::SimTime) { ++got; });
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fx.sw->counters().frames_forwarded, 1u);
}

TEST(SwitchNode, UnknownUnicastDroppedWithoutLearning) {
  StarFixture fx{3, SwitchConfig{.mac_learning = false}};
  int got = 0;
  for (auto* h : fx.hosts) {
    h->set_receiver([&](Frame, sim::SimTime) { ++got; });
  }
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fx.sw->counters().frames_dropped_unknown, 1u);
}

TEST(SwitchNode, LearningFloodsThenForwards) {
  StarFixture fx{3, SwitchConfig{.mac_learning = true}};
  int h1 = 0, h2 = 0;
  fx.hosts[1]->set_receiver([&](Frame, sim::SimTime) { ++h1; });
  fx.hosts[2]->set_receiver([&](Frame, sim::SimTime) { ++h2; });
  // Unknown dst: floods to all other ports; the addressed host accepts,
  // the bystander's NIC filter discards.
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  EXPECT_EQ(h1, 1);
  EXPECT_EQ(h2, 0);
  EXPECT_EQ(fx.hosts[2]->counters().filtered, 1u);
  EXPECT_EQ(fx.sw->counters().frames_flooded, 1u);
  // Reply: switch has learned h0's location from the first frame.
  fx.hosts[1]->send(to(MacAddress{1}));
  fx.sim.run();
  EXPECT_EQ(fx.sw->counters().frames_forwarded, 1u);
  // h0 -> h1 again: learned, so no more flooding toward h2.
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  EXPECT_EQ(fx.sw->counters().frames_forwarded, 2u);
  EXPECT_EQ(fx.hosts[2]->counters().filtered, 1u);
}

TEST(SwitchNode, BroadcastFloodsAllButIngress) {
  StarFixture fx{4};
  int got = 0, self = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    fx.hosts[i]->set_receiver([&](Frame, sim::SimTime) { ++got; });
  }
  fx.hosts[0]->set_receiver([&](Frame, sim::SimTime) { ++self; });
  fx.hosts[0]->send(to(MacAddress::broadcast()));
  fx.sim.run();
  EXPECT_EQ(got, 3);
  EXPECT_EQ(self, 0);
}

TEST(SwitchNode, ProcessingDelayApplied) {
  StarFixture fx{2, SwitchConfig{.processing_delay = 10_us,
                                 .mac_learning = false}};
  fx.sw->add_fdb_entry(MacAddress{2}, 1);
  sim::SimTime at = sim::SimTime::zero();
  fx.hosts[1]->set_receiver([&](Frame, sim::SimTime t) { at = t; });
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  // 672 ser + 500 prop + 10us processing + 672 ser + 500 prop.
  EXPECT_EQ(at.nanos(), 672 + 500 + 10'000 + 672 + 500);
}

TEST(SwitchNode, StrictPriorityAtCongestion) {
  // Two senders blast one receiver; high-pcp frames should win the
  // contended egress port.
  StarFixture fx{3, SwitchConfig{.processing_delay = 0_ns,
                                 .mac_learning = false}};
  fx.sw->add_fdb_entry(MacAddress{3}, 2);
  std::vector<std::uint8_t> order;
  fx.hosts[2]->set_receiver(
      [&](Frame f, sim::SimTime) { order.push_back(f.pcp); });
  // Burst of 5 low + 5 high from two hosts at t=0.
  for (int i = 0; i < 5; ++i) fx.hosts[0]->send(to(MacAddress{3}, 0));
  for (int i = 0; i < 5; ++i) fx.hosts[1]->send(to(MacAddress{3}, 7));
  fx.sim.run();
  ASSERT_EQ(order.size(), 10u);
  // Under strict priority the pcp-7 frames must on average be delivered
  // earlier than the pcp-0 frames, and the tail is all best-effort.
  double high_pos = 0, low_pos = 0;
  for (int i = 0; i < 10; ++i) {
    (order[size_t(i)] == 7 ? high_pos : low_pos) += i;
  }
  EXPECT_LT(high_pos / 5.0, low_pos / 5.0);
  EXPECT_EQ(order.back(), 0);
}

TEST(SwitchNode, QueueOverflowDrops) {
  StarFixture fx{3, SwitchConfig{.processing_delay = 0_ns,
                                 .queue_capacity = 2,
                                 .mac_learning = false}};
  fx.sw->add_fdb_entry(MacAddress{3}, 2);
  int got = 0;
  fx.hosts[2]->set_receiver([&](Frame, sim::SimTime) { ++got; });
  // 2:1 oversubscription of h2's link -> the egress queue (capacity 2
  // frames) must overflow.
  for (int i = 0; i < 20; ++i) fx.hosts[0]->send(to(MacAddress{3}));
  for (int i = 0; i < 20; ++i) fx.hosts[1]->send(to(MacAddress{3}));
  fx.sim.run();
  EXPECT_LT(got, 40);
  EXPECT_GT(fx.sw->port_counters(2).dropped_overflow, 0u);
  EXPECT_EQ(got + int(fx.sw->port_counters(2).dropped_overflow), 40);
  // The same drops must be visible at the switch level, aggregated over
  // all ports -- here only port 2 ever overflows.
  EXPECT_EQ(fx.sw->counters().frames_dropped_overflow,
            fx.sw->port_counters(2).dropped_overflow);
  EXPECT_EQ(fx.sw->counters().frames_in, 40u);
}

TEST(SwitchNode, HairpinDropped) {
  StarFixture fx{2, SwitchConfig{.mac_learning = false}};
  fx.sw->add_fdb_entry(MacAddress{2}, 0);  // wrong: points back at sender
  int got = 0;
  fx.hosts[1]->set_receiver([&](Frame, sim::SimTime) { ++got; });
  fx.hosts[0]->send(to(MacAddress{2}));
  fx.sim.run();
  EXPECT_EQ(got, 0);
}

}  // namespace
}  // namespace steelnet::net
