#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

TEST(MacAddress, Formatting) {
  EXPECT_EQ(MacAddress{0x0253'0000'0001ULL}.to_string(), "02:53:00:00:00:01");
  EXPECT_EQ(MacAddress::broadcast().to_string(), "ff:ff:ff:ff:ff:ff");
}

TEST(MacAddress, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress{0x0100'0000'0000ULL}.is_multicast());
  EXPECT_FALSE(MacAddress{0x0253'0000'0001ULL}.is_multicast());
}

TEST(MacAddress, MasksTo48Bits) {
  EXPECT_EQ(MacAddress{0xffff'ffff'ffff'ffffULL}.bits(), 0xffff'ffff'ffffULL);
}

TEST(Frame, WireBytesPadsSmallPayloads) {
  Frame f;
  f.payload.resize(20);  // 20-byte industrial payload (§2.3)
  // 14 hdr + 46 padded + 4 fcs
  EXPECT_EQ(f.wire_bytes(), 64u);
  f.pcp = 6;  // adds 802.1Q tag
  EXPECT_EQ(f.wire_bytes(), 68u);
}

TEST(Frame, WireBytesLargePayload) {
  Frame f;
  f.payload.resize(1000);
  EXPECT_EQ(f.wire_bytes(), 14u + 1000u + 4u);
  EXPECT_EQ(f.occupancy_bytes(), f.wire_bytes() + 20u);
}

TEST(Frame, PayloadIntegerRoundTrip) {
  Frame f;
  f.payload.resize(32);
  f.write_u64(0, 0x1122'3344'5566'7788ULL);
  f.write_u32(8, 0xdeadbeef);
  f.write_u16(12, 0xcafe);
  EXPECT_EQ(f.read_u64(0), 0x1122'3344'5566'7788ULL);
  EXPECT_EQ(f.read_u32(8), 0xdeadbeef);
  EXPECT_EQ(f.read_u16(12), 0xcafe);
}

TEST(Frame, PayloadAccessBoundsChecked) {
  Frame f;
  f.payload.resize(10);
  EXPECT_THROW(f.read_u64(3), std::out_of_range);
  EXPECT_THROW(f.write_u64(3, 0), std::out_of_range);
  EXPECT_THROW(f.read_u32(7), std::out_of_range);
  EXPECT_THROW(f.write_u32(7, 0), std::out_of_range);
  EXPECT_THROW(f.read_u16(9), std::out_of_range);
  EXPECT_THROW(f.write_u16(9, 0), std::out_of_range);
}

TEST(Frame, PayloadAccessAtExactBoundary) {
  Frame f;
  f.payload.resize(10);
  // offset + width == size is legal for every accessor width.
  f.write_u64(2, 0x0102'0304'0506'0708ULL);
  EXPECT_EQ(f.read_u64(2), 0x0102'0304'0506'0708ULL);
  f.write_u32(6, 0xa1b2c3d4);
  EXPECT_EQ(f.read_u32(6), 0xa1b2c3d4u);
  f.write_u16(8, 0xbeef);
  EXPECT_EQ(f.read_u16(8), 0xbeefu);
}

TEST(Frame, HugeOffsetsDoNotWrapTheBoundsCheck) {
  // A fault-corrupted offset near SIZE_MAX must throw, not wrap
  // `offset + n` past the bound and read through as UB.
  Frame f;
  f.payload.resize(64);
  const std::size_t huge = std::numeric_limits<std::size_t>::max() - 3;
  EXPECT_THROW(f.read_u64(huge), std::out_of_range);
  EXPECT_THROW(f.write_u64(huge, 1), std::out_of_range);
  EXPECT_THROW(f.read_u32(huge), std::out_of_range);
  EXPECT_THROW(f.write_u32(huge, 1), std::out_of_range);
  EXPECT_THROW(f.read_u16(huge), std::out_of_range);
  EXPECT_THROW(f.write_u16(huge, 1), std::out_of_range);
}

TEST(Frame, EmptyPayloadAlwaysThrows) {
  Frame f;
  EXPECT_THROW(f.read_u64(0), std::out_of_range);
  EXPECT_THROW(f.read_u32(0), std::out_of_range);
  EXPECT_THROW(f.read_u16(0), std::out_of_range);
  EXPECT_THROW(f.write_u16(0, 1), std::out_of_range);
}

TEST(SerializationTime, GigabitMath) {
  // 64B frame + 20B overhead = 84B = 672 bits -> 672 ns at 1 Gb/s.
  EXPECT_EQ(serialization_time(84, 1'000'000'000).nanos(), 672);
  // At 100 Mb/s it is 10x longer.
  EXPECT_EQ(serialization_time(84, 100'000'000).nanos(), 6720);
  EXPECT_THROW(serialization_time(84, 0), std::invalid_argument);
}

TEST(SerializationTime, RoundsUp) {
  // 1 byte at 3 bps = 8/3 s -> rounds up.
  EXPECT_EQ(serialization_time(1, 3).nanos(), 2'666'666'667);
}

}  // namespace
}  // namespace steelnet::net
