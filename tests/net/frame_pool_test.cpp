#include "net/frame_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace steelnet::net {
namespace {

TEST(FramePool, MakeZeroFillsLikeAssign) {
  FramePool pool;
  Frame f = pool.make(46);
  ASSERT_EQ(f.payload.size(), 46u);
  for (std::uint8_t b : f.payload) EXPECT_EQ(b, 0u);

  // Dirty the buffer, recycle, and draw again: the reused buffer must be
  // byte-identical to a fresh assign(n, 0) -- pooling never changes what
  // goes on the wire.
  f.write_u64(0, 0xffff'ffff'ffff'ffffULL);
  pool.recycle(std::move(f));
  Frame g = pool.make(46);
  ASSERT_EQ(g.payload.size(), 46u);
  for (std::uint8_t b : g.payload) EXPECT_EQ(b, 0u);
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(FramePool, RecycleReusesTheSameBuffer) {
  FramePool pool;
  Frame f = pool.make(128);
  const std::uint8_t* data = f.payload.data();
  pool.recycle(std::move(f));
  EXPECT_EQ(pool.free_buffers(), 1u);

  Frame g = pool.make(64);  // smaller fits the recycled capacity
  EXPECT_EQ(g.payload.data(), data);
  EXPECT_EQ(pool.free_buffers(), 0u);
  EXPECT_EQ(pool.stats().acquired, 2u);
  EXPECT_EQ(pool.stats().fresh, 1u);
  EXPECT_EQ(pool.stats().reused, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
}

TEST(FramePool, CloneCopiesBytesAndMetadata) {
  FramePool pool;
  Frame f = pool.make(32);
  f.dst = MacAddress{0x0253'0000'0002ULL};
  f.src = MacAddress{0x0253'0000'0001ULL};
  f.ethertype = EtherType::kProfinetRt;
  f.pcp = 6;
  f.vlan_id = 10;
  f.flow_id = 77;
  f.seq = 123;
  f.created_at = sim::SimTime{42};
  f.trace_id = 999;
  f.write_u32(4, 0xdeadbeef);

  Frame c = pool.clone(f);
  EXPECT_EQ(c.payload, f.payload);
  EXPECT_EQ(c.dst.bits(), f.dst.bits());
  EXPECT_EQ(c.src.bits(), f.src.bits());
  EXPECT_EQ(c.ethertype, f.ethertype);
  EXPECT_EQ(c.pcp, f.pcp);
  EXPECT_EQ(c.vlan_id, f.vlan_id);
  EXPECT_EQ(c.flow_id, f.flow_id);
  EXPECT_EQ(c.seq, f.seq);
  EXPECT_EQ(c.created_at, f.created_at);
  EXPECT_EQ(c.trace_id, f.trace_id);
}

TEST(FramePool, FreeListIsBounded) {
  FramePool pool(/*max_buffers=*/2);
  std::vector<Frame> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(pool.make(16));
  for (Frame& f : frames) pool.recycle(std::move(f));
  // Only max_buffers returns stick; the excess falls through to the
  // allocator instead of growing the pool without bound.
  EXPECT_EQ(pool.free_buffers(), 2u);
  EXPECT_EQ(pool.stats().recycled, 2u);
  EXPECT_EQ(pool.stats().discarded, 3u);
}

TEST(FramePool, EmptyBuffersAreNotPooled) {
  FramePool pool;
  Frame f;  // default frame, no payload capacity
  pool.recycle(std::move(f));
  EXPECT_EQ(pool.free_buffers(), 0u);
  EXPECT_EQ(pool.stats().recycled, 0u);
}

TEST(FramePool, SteadyStateCycleIsAllocationStable) {
  // A cyclic producer/consumer pair settles to one pooled buffer that
  // round-trips forever: after the first cycle every acquire is a reuse.
  FramePool pool;
  for (int cycle = 0; cycle < 100; ++cycle) {
    Frame f = pool.make(46);
    f.write_u16(0, static_cast<std::uint16_t>(cycle));
    pool.recycle(std::move(f));
  }
  EXPECT_EQ(pool.stats().fresh, 1u);
  EXPECT_EQ(pool.stats().reused, 99u);
  EXPECT_EQ(pool.free_buffers(), 1u);
}

}  // namespace
}  // namespace steelnet::net
