// The lossy-radio factory floor: the sharded run must be byte-identical
// at any shard count, every cell's conservation ledger must balance, and
// the watchdog-bound degradation curve must be monotone down the SNR
// ladder (the tab_radio acceptance gate, pinned here at the default seed).
#include "net/radio_floor.hpp"

#include <gtest/gtest.h>

namespace steelnet::net {
namespace {

const RadioCellReport* cell_named(const RadioFloorResult& r,
                                  const std::string& name) {
  for (const RadioCellReport& c : r.cells) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(RadioFloor, ShardCountNeverChangesTheBytes) {
  RadioFloorOptions opt;
  opt.shards = 1;
  const RadioFloorResult r1 = run_radio_floor(opt);
  opt.shards = 8;
  const RadioFloorResult r8 = run_radio_floor(opt);

  ASSERT_EQ(r1.cells.size(), r8.cells.size());
  EXPECT_EQ(r1.cells, r8.cells);
  EXPECT_EQ(r1.fingerprint(), r8.fingerprint());
  EXPECT_EQ(r1.to_csv(), r8.to_csv());
  EXPECT_EQ(r1.to_prometheus(), r8.to_prometheus());
  EXPECT_EQ(r1.to_chrome_trace(), r8.to_chrome_trace());

  // Every cell's ledger balances: each offered frame resolved to exactly
  // one cause, radio drops included.
  for (const RadioCellReport& c : r1.cells) {
    EXPECT_EQ(c.residual, 0) << c.name;
    EXPECT_GT(c.frames_offered, 0u) << c.name;
  }

  // The acceptance curve behind bench/tab_radio: within every scenario
  // family the radio gets monotonically worse down the SNR ladder.
  EXPECT_TRUE(degradation_monotone(r1));

  // Curve endpoints. At the healthy rung the radio behaves like the wire:
  // no drops, and the InstaPLC watchdog bound still holds.
  const RadioCellReport* healthy = cell_named(r1, "clean_snr00");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(healthy->drop_permille(), 0u);
  EXPECT_LE(healthy->max_output_gap_ns, r1.watchdog_bound_ns);
  // At the bottom rung the station cannot even associate: total dead air,
  // the output gap degenerates to the full horizon.
  const RadioCellReport* dead = cell_named(r1, "clean_snr40");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->drop_permille(), 1000u);
  EXPECT_EQ(dead->max_output_gap_ns, r1.horizon_ns);

  // The roaming-storm cells actually roam, and each handoff's dead-air
  // window shows up as handoff drops.
  const RadioCellReport* roam = cell_named(r1, "roam_clean");
  ASSERT_NE(roam, nullptr);
  EXPECT_GT(roam->roam_events, 0u);
  EXPECT_GT(roam->radio_dropped_handoff, 0u);
}

TEST(RadioFloor, MeasuredPartitionKeepsArtifactsByteIdentical) {
  // The calibration round-trip on the naturally skewed SNR ladder: dead
  // rungs execute far fewer events than healthy ones, so the measured
  // profile genuinely reshuffles placement -- and nothing in the
  // artifacts may move. Short horizon: placement invariance doesn't need
  // the full 3s run.
  RadioFloorOptions calib;
  calib.horizon = sim::milliseconds(300);
  calib.shards = 1;
  const RadioFloorResult golden = run_radio_floor(calib);
  ASSERT_FALSE(golden.profile.cells.empty());

  RadioFloorOptions opt = calib;
  opt.shards = 8;
  opt.measured_partition = true;
  opt.measured_weights = golden.profile.weights();
  const RadioFloorResult measured = run_radio_floor(opt);
  EXPECT_EQ(measured.cells, golden.cells);
  EXPECT_EQ(measured.fingerprint(), golden.fingerprint());
  EXPECT_EQ(measured.to_csv(), golden.to_csv());
  EXPECT_EQ(measured.to_prometheus(), golden.to_prometheus());
  EXPECT_EQ(measured.profile.to_text(), golden.profile.to_text());

  // The placement itself differs from the prefix walk (the profile has
  // signal), and the diagnostics report a valid partition.
  RadioFloorOptions prefix_opt = calib;
  prefix_opt.shards = 8;
  const RadioFloorResult prefix = run_radio_floor(prefix_opt);
  EXPECT_EQ(prefix.fingerprint(), golden.fingerprint());
  EXPECT_NE(measured.partition, prefix.partition);
  EXPECT_LE(measured.imbalance_permille, prefix.imbalance_permille);
}

TEST(RadioFloor, MeasuredPartitionWithoutWeightsIsTyped) {
  RadioFloorOptions opt;
  opt.horizon = sim::milliseconds(100);
  opt.measured_partition = true;
  try {
    (void)run_radio_floor(opt);
    FAIL() << "expected PartitionError";
  } catch (const sim::PartitionError& e) {
    EXPECT_EQ(e.code(), sim::PartitionErrorCode::kProfileMismatch);
  }
}

TEST(RadioFloor, SeedSelectsTheFloor) {
  RadioFloorOptions opt;
  opt.shards = 4;
  const RadioFloorResult base = run_radio_floor(opt);
  opt.seed = 2;
  const RadioFloorResult other = run_radio_floor(opt);
  EXPECT_NE(base.fingerprint(), other.fingerprint());
  // Structure is seed-independent: same cells, same scenario grid.
  ASSERT_EQ(base.cells.size(), other.cells.size());
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    EXPECT_EQ(base.cells[i].name, other.cells[i].name);
    EXPECT_EQ(base.cells[i].scenario, other.cells[i].scenario);
  }
}

}  // namespace
}  // namespace steelnet::net
