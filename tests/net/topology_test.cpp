#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

struct PingResult {
  int delivered = 0;
  sim::SimTime last_rx;
};

PingResult ping(Fabric& f, std::size_t src, std::size_t dst) {
  PingResult r;
  f.host(dst).set_receiver([&](Frame, sim::SimTime at) {
    ++r.delivered;
    r.last_rx = at;
  });
  Frame frame;
  frame.dst = f.host(dst).mac();
  frame.payload.resize(46);
  f.host(src).send(std::move(frame));
  f.net->sim().run();
  return r;
}

TEST(Topology, StarAllPairsReachable) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_star(net, 4);
  install_shortest_path_routes(f);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t d = 0; d < 4; ++d) {
      if (s == d) continue;
      EXPECT_EQ(ping(f, s, d).delivered, 1) << s << "->" << d;
    }
  }
}

TEST(Topology, LineEndToEnd) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_line(net, 5, 1);
  install_shortest_path_routes(f);
  EXPECT_EQ(f.hosts.size(), 5u);
  EXPECT_EQ(f.switches.size(), 5u);
  EXPECT_EQ(ping(f, 0, 4).delivered, 1);
  EXPECT_EQ(route_hops(f, 0, 4), 5);
  EXPECT_EQ(route_hops(f, 0, 1), 2);
}

TEST(Topology, RingUsesShortSide) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_ring(net, 6, 1);
  install_shortest_path_routes(f);
  EXPECT_EQ(ping(f, 0, 1).delivered, 1);
  EXPECT_EQ(route_hops(f, 0, 1), 2);
  // Host 0 to host 5: one hop around the back, not five forward.
  EXPECT_EQ(route_hops(f, 0, 5), 2);
  // Opposite side of a 6-ring: 4 switches either way... 0->3 = 3 hops + 1.
  EXPECT_EQ(route_hops(f, 0, 3), 4);
}

TEST(Topology, RingRejectsTooSmall) {
  sim::Simulator sim;
  Network net{sim};
  EXPECT_THROW(build_ring(net, 2, 1), std::invalid_argument);
}

TEST(Topology, LeafSpineTwoHopsAcrossLeaves) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_leaf_spine(net, 2, 3, 2);
  install_shortest_path_routes(f);
  EXPECT_EQ(f.hosts.size(), 6u);
  EXPECT_EQ(f.switches.size(), 5u);
  // Same leaf: 1 switch. Cross leaf: leaf-spine-leaf = 3 switches.
  EXPECT_EQ(route_hops(f, 0, 1), 1);
  EXPECT_EQ(route_hops(f, 0, 2), 3);
  EXPECT_EQ(ping(f, 0, 5).delivered, 1);
}

TEST(Topology, TreeReachability) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_tree(net, 3, 2, 2);  // 1+2+4 switches, 8 hosts
  install_shortest_path_routes(f);
  EXPECT_EQ(f.switches.size(), 7u);
  EXPECT_EQ(f.hosts.size(), 8u);
  EXPECT_EQ(ping(f, 0, 7).delivered, 1);
  // Hosts on the same leaf: 1 switch.
  EXPECT_EQ(route_hops(f, 0, 1), 1);
  // Hosts across the root: up 2, root, down 2 = 5 switches.
  EXPECT_EQ(route_hops(f, 0, 7), 5);
}

TEST(Topology, AllPairsOnLeafSpine) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_leaf_spine(net, 2, 2, 2);
  install_shortest_path_routes(f);
  for (std::size_t s = 0; s < f.host_count(); ++s) {
    for (std::size_t d = 0; d < f.host_count(); ++d) {
      if (s == d) continue;
      EXPECT_GT(route_hops(f, s, d), 0) << s << "->" << d;
    }
  }
}

TEST(Topology, HostMacsAreUniqueAndLocal) {
  EXPECT_NE(host_mac(0), host_mac(1));
  EXPECT_FALSE(host_mac(7).is_multicast());
  EXPECT_EQ(host_mac(3).bits() & 0x0200'0000'0000ULL, 0x0200'0000'0000ULL);
}

TEST(Topology, RouteHopsUnreachableIsMinusOne) {
  sim::Simulator sim;
  Network net{sim};
  auto f = build_star(net, 2);
  // No routes installed: lookup fails.
  EXPECT_EQ(route_hops(f, 0, 1), -1);
}

}  // namespace
}  // namespace steelnet::net
