// Regression: HostPathModel hooks on HostNode actually delay traffic in
// both directions (net declares the interface; host implements it; this
// pins the wiring in between).
#include <gtest/gtest.h>

#include "host/host_path.hpp"
#include "net/host_node.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

struct Pair {
  sim::Simulator simulator;
  Network network{simulator};
  HostNode* a;
  HostNode* b;

  Pair() {
    a = &network.add_node<HostNode>("a", MacAddress{1});
    b = &network.add_node<HostNode>("b", MacAddress{2});
    network.connect(a->id(), 0, b->id(), 0,
                    LinkParams{1'000'000'000, 0_ns});
  }

  sim::SimTime one_way() {
    sim::SimTime at;
    b->set_receiver([&](Frame, sim::SimTime t) { at = t; });
    Frame f;
    f.dst = MacAddress{2};
    f.payload.resize(46);
    a->send(std::move(f));
    simulator.run();
    return at;
  }
};

TEST(HostPathIntegration, TxLatencyDelaysEmission) {
  Pair p;
  host::HostPath path(std::make_unique<host::FixedSampler>(0_us),
                      std::make_unique<host::FixedSampler>(10_us));
  p.a->set_host_path(&path);
  EXPECT_EQ(p.one_way(), 10_us + 672_ns);
}

TEST(HostPathIntegration, RxLatencyDelaysDelivery) {
  Pair p;
  host::HostPath path(std::make_unique<host::FixedSampler>(7_us),
                      std::make_unique<host::FixedSampler>(0_us));
  p.b->set_host_path(&path);
  EXPECT_EQ(p.one_way(), 672_ns + 7_us);
}

TEST(HostPathIntegration, IdealPathAddsNothing) {
  Pair p;
  auto ideal = host::HostProfile::ideal();
  p.a->set_host_path(ideal.get());
  p.b->set_host_path(ideal.get());
  EXPECT_EQ(p.one_way(), 672_ns);
}

TEST(HostPathIntegration, StochasticPathVariesPerFrame) {
  Pair p;
  auto jittery = host::HostProfile::server_vanilla(3);
  p.a->set_host_path(jittery.get());
  sim::SampleSet arrivals;
  p.b->set_receiver([&](Frame f, sim::SimTime t) {
    arrivals.add((t - f.created_at).micros());
  });
  for (int i = 0; i < 500; ++i) {
    Frame f;
    f.dst = MacAddress{2};
    f.payload.resize(46);
    p.a->send(std::move(f));
    p.simulator.run();
  }
  EXPECT_EQ(arrivals.count(), 500u);
  EXPECT_GT(arrivals.max(), arrivals.min() + 0.5);  // real variance
}

}  // namespace
}  // namespace steelnet::net
