// The campus determinism bar, tier-1: every export -- Prometheus, Chrome
// trace, per-cell CSV -- is byte-identical at shards 1 vs {2, 4, 8},
// and the cross-shard frame handoff runs through the receiving cell's
// FramePool (allocation-free steady state).
#include "net/campus.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace steelnet::net {
namespace {

CampusOptions small_campus(std::size_t shards) {
  CampusOptions opt;
  opt.cells = 10;
  opt.devices_per_cell = 3;
  opt.cycle = sim::milliseconds(4);
  opt.horizon = sim::milliseconds(80);
  opt.seed = 21;
  opt.shards = shards;
  return opt;
}

TEST(Campus, ArtifactsByteIdenticalAcrossShardCounts) {
  const CampusResult golden = run_campus(small_campus(1));
  const std::string csv = golden.to_csv();
  const std::string prom = golden.to_prometheus();
  const std::string trace = golden.to_chrome_trace();
  ASSERT_FALSE(csv.empty());
  ASSERT_FALSE(prom.empty());
  ASSERT_FALSE(trace.empty());

  for (const std::size_t shards : {2, 4, 8}) {
    const CampusResult r = run_campus(small_campus(shards));
    EXPECT_EQ(r.to_csv(), csv) << "shards=" << shards;
    EXPECT_EQ(r.to_prometheus(), prom) << "shards=" << shards;
    EXPECT_EQ(r.to_chrome_trace(), trace) << "shards=" << shards;
    EXPECT_EQ(r.fingerprint(), golden.fingerprint()) << "shards=" << shards;
    EXPECT_EQ(r.cells, golden.cells) << "shards=" << shards;
  }
}

TEST(Campus, CyclicTrafficActuallyRuns) {
  const CampusResult r = run_campus(small_campus(2));
  ASSERT_EQ(r.cells.size(), 10u);
  for (const CellReport& c : r.cells) {
    // ~80ms / 4ms cycle ~ 19 cycles per controller, 3 controllers.
    EXPECT_GT(c.cyclic_tx, 30u) << c.name;
    EXPECT_GT(c.cyclic_rx, 30u) << c.name;
    EXPECT_GT(c.frames_delivered, 100u) << c.name;
    EXPECT_EQ(c.watchdog_trips, 0u) << c.name;  // no faults configured
  }
}

TEST(Campus, CrossCellReportsFlowAndRecycleThroughThePool) {
  const CampusResult r = run_campus(small_campus(4));
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const CellReport& c : r.cells) {
    sent += c.reports_sent;
    received += c.reports_received;
    // Sink recycles every report frame it consumes, so the pool reuses
    // buffers once cyclic traffic is warm.
    EXPECT_GT(c.pool_reused, 0u) << c.name;
    if (c.reports_received > 0) {
      // Origin-to-sink latency includes the backbone channel latency, so
      // the per-report average is strictly above it.
      EXPECT_GT(c.report_latency_ns_total,
                static_cast<std::int64_t>(c.reports_received) * 20'000)
          << c.name;
      EXPECT_EQ(c.report_bytes, c.reports_received * 32) << c.name;
    }
  }
  EXPECT_GT(sent, 0u);
  // Every report sent before the lookahead edge of the horizon arrives;
  // the rest are counted beyond-horizon, never lost.
  EXPECT_LE(received, sent);
  EXPECT_GT(received, sent / 2);
}

TEST(Campus, ShardCountDoesNotLeakIntoStats) {
  const CampusResult a = run_campus(small_campus(1));
  const CampusResult b = run_campus(small_campus(8));
  EXPECT_EQ(a.stats.events, b.stats.events);
  EXPECT_EQ(a.stats.msgs_sent, b.stats.msgs_sent);
  EXPECT_EQ(a.stats.msgs_delivered, b.stats.msgs_delivered);
  EXPECT_EQ(a.stats.beyond_horizon, b.stats.beyond_horizon);
}

TEST(Campus, SeedChangesArtifactsUnderFaults) {
  // Without faults, the fault-free campus quantizes to the same integer
  // counters for nearby seeds (jitter shifts phases, not counts); the
  // fault storm is where the seed visibly bites -- crash times and lossy
  // windows move, so drops and outages differ.
  CampusOptions opt = small_campus(2);
  opt.faults = true;
  const CampusResult a = run_campus(opt);
  opt.seed = 22;
  const CampusResult b = run_campus(opt);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Campus, SkewedCampusByteIdenticalAcrossPartitionerAndShards) {
  // The headline determinism bar of the balancing work: the deliberately
  // skewed campus (hot first quarter) produces byte-identical artifacts
  // at any shard count AND under either placement strategy. Calibration
  // comes from a golden 1-shard run, exactly the --profile-out workflow.
  CampusOptions golden_opt = small_campus(1);
  golden_opt.skew = true;
  const CampusResult golden = run_campus(golden_opt);
  const std::string csv = golden.to_csv();
  const std::string prom = golden.to_prometheus();
  ASSERT_FALSE(csv.empty());
  const std::vector<std::uint64_t> measured = golden.profile.weights();
  ASSERT_EQ(measured.size(), golden_opt.cells);

  for (const std::size_t shards : {2, 4, 8}) {
    for (const bool use_measured : {false, true}) {
      CampusOptions opt = small_campus(shards);
      opt.skew = true;
      if (use_measured) {
        opt.partitioner = CampusPartitioner::kMeasuredRate;
        opt.measured_weights = measured;
      }
      const CampusResult r = run_campus(opt);
      EXPECT_EQ(r.to_csv(), csv)
          << "shards=" << shards << " measured=" << use_measured;
      EXPECT_EQ(r.to_prometheus(), prom)
          << "shards=" << shards << " measured=" << use_measured;
      EXPECT_EQ(r.fingerprint(), golden.fingerprint())
          << "shards=" << shards << " measured=" << use_measured;
      // The measured profile of every rerun matches the calibration run.
      EXPECT_EQ(r.profile.to_text(), golden.profile.to_text())
          << "shards=" << shards << " measured=" << use_measured;
    }
  }
}

TEST(Campus, MeasuredPartitionerReducesImbalanceOnSkew) {
  CampusOptions calib = small_campus(1);
  calib.skew = true;
  const CampusResult golden = run_campus(calib);

  CampusOptions prefix_opt = small_campus(4);
  prefix_opt.skew = true;
  const CampusResult prefix = run_campus(prefix_opt);

  CampusOptions measured_opt = prefix_opt;
  measured_opt.partitioner = CampusPartitioner::kMeasuredRate;
  measured_opt.measured_weights = golden.profile.weights();
  const CampusResult measured = run_campus(measured_opt);

  // The hot quarter piles onto the first shards under the contiguous
  // prefix walk; LPT over measured rates spreads it.
  EXPECT_LT(measured.imbalance_permille, prefix.imbalance_permille);
  EXPECT_EQ(measured.shard_events.size(), 4u);
  EXPECT_EQ(prefix.shard_events.size(), 4u);
  EXPECT_EQ(std::accumulate(measured.shard_events.begin(),
                            measured.shard_events.end(), std::uint64_t{0}),
            std::accumulate(prefix.shard_events.begin(),
                            prefix.shard_events.end(), std::uint64_t{0}));
}

TEST(Campus, SkewActuallySkewsTheLoad) {
  // Hot cells run a 4x faster cycle, so their measured rate dominates.
  CampusOptions opt = small_campus(2);
  opt.skew = true;
  const CampusResult r = run_campus(opt);
  ASSERT_EQ(r.profile.cells.size(), 10u);
  const std::uint64_t hot = r.profile.cells[0].events;
  const std::uint64_t cold = r.profile.cells[9].events;
  EXPECT_GT(hot, 2 * cold);
  // Without skew the same cells are near-uniform.
  const CampusResult flat = run_campus(small_campus(2));
  EXPECT_LT(flat.profile.cells[0].events,
            2 * flat.profile.cells[9].events);
}

TEST(Campus, MeasuredPartitionerWithoutWeightsIsTyped) {
  CampusOptions opt = small_campus(2);
  opt.partitioner = CampusPartitioner::kMeasuredRate;
  try {
    (void)run_campus(opt);
    FAIL() << "expected PartitionError";
  } catch (const sim::PartitionError& e) {
    EXPECT_EQ(e.code(), sim::PartitionErrorCode::kProfileMismatch);
  }
}

TEST(Campus, SingleCellCampusIsDegenerateButValid) {
  CampusOptions opt = small_campus(4);
  opt.cells = 1;  // no backbone, no reports -- just one PROFINET island
  const CampusResult r = run_campus(opt);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_GT(r.cells[0].cyclic_tx, 0u);
  EXPECT_EQ(r.cells[0].reports_sent, 0u);
}

}  // namespace
}  // namespace steelnet::net
