#include "tsn/ptp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace steelnet::tsn {
namespace {

using namespace steelnet::sim::literals;

TEST(PtpClock, OffsetBoundedByNoiseAndDrift) {
  PtpConfig cfg;
  cfg.servo_noise = 30_ns;
  cfg.drift_ppb = 50.0;
  PtpClock clk(cfg, 42);
  // Drift over one 125ms interval at 50ppb = 6.25ns; total offset should
  // stay well inside ~6 sigma + drift.
  for (int i = 0; i < 1000; ++i) {
    const auto t = 1_ms * i;
    clk.advance_to(t);
    EXPECT_LT(std::abs(double(clk.offset_at(t).nanos())), 200.0);
  }
}

TEST(PtpClock, AsymmetryBiasesEveryReading) {
  PtpConfig cfg;
  cfg.servo_noise = 1_ns;
  cfg.drift_ppb = 0;
  cfg.path_asymmetry = 500_ns;
  PtpClock clk(cfg, 1);
  double sum = 0;
  for (int i = 0; i < 100; ++i) {
    const auto t = 10_ms * i;
    clk.advance_to(t);
    sum += double(clk.offset_at(t).nanos());
  }
  EXPECT_NEAR(sum / 100.0, 500.0, 5.0);
}

TEST(PtpClock, DriftAccumulatesBetweenSyncs) {
  PtpConfig cfg;
  cfg.servo_noise = 0_ns;
  cfg.drift_ppb = 1000.0;  // 1 ppm
  cfg.sync_interval = 1_s;
  PtpClock clk(cfg, 7);
  clk.advance_to(0_ms);
  const auto o0 = clk.offset_at(0_ms);
  const auto o1 = clk.offset_at(500_ms);  // +0.5s at 1ppm = +500ns
  EXPECT_EQ((o1 - o0).nanos(), 500);
}

TEST(PtpClock, ReadIsTruePlusOffset) {
  PtpConfig cfg;
  cfg.servo_noise = 0_ns;
  cfg.drift_ppb = 0;
  cfg.path_asymmetry = 42_ns;
  PtpClock clk(cfg, 3);
  EXPECT_EQ(clk.read(1_ms), 1_ms + 42_ns);
}

TEST(PtpClock, RejectsBadConfig) {
  PtpConfig cfg;
  cfg.sync_interval = 0_ns;
  EXPECT_THROW(PtpClock(cfg, 1), std::invalid_argument);
}

TEST(PtpClock, DeterministicPerSeed) {
  PtpClock a(PtpConfig{}, 99), b(PtpConfig{}, 99);
  for (int i = 0; i < 50; ++i) {
    const auto t = 20_ms * i;
    a.advance_to(t);
    b.advance_to(t);
    EXPECT_EQ(a.offset_at(t), b.offset_at(t));
  }
}

TEST(QuantizedTimestamper, EightNanosecondGrid) {
  QuantizedTimestamper ts(8_ns);
  EXPECT_EQ(ts.stamp(0_ns), 0_ns);
  EXPECT_EQ(ts.stamp(7_ns), 0_ns);
  EXPECT_EQ(ts.stamp(8_ns), 8_ns);
  EXPECT_EQ(ts.stamp(1234_ns), 1232_ns);
}

TEST(QuantizedTimestamper, RejectsBadResolution) {
  EXPECT_THROW(QuantizedTimestamper(0_ns), std::invalid_argument);
}

TEST(QuantizedTimestamper, ErrorAlwaysUnderResolution) {
  QuantizedTimestamper ts(8_ns);
  for (std::int64_t t = 0; t < 1000; t += 7) {
    const auto e = sim::SimTime{t} - ts.stamp(sim::SimTime{t});
    EXPECT_GE(e.nanos(), 0);
    EXPECT_LT(e.nanos(), 8);
  }
}

}  // namespace
}  // namespace steelnet::tsn
