#include "tsn/gcl.hpp"

#include <gtest/gtest.h>

namespace steelnet::tsn {
namespace {

using namespace steelnet::sim::literals;

TEST(GateControlList, RejectsBadEntries) {
  EXPECT_THROW(GateControlList({}), std::invalid_argument);
  EXPECT_THROW(GateControlList({{0_ns, 0xff}}), std::invalid_argument);
}

TEST(GateControlList, CycleTimeIsSumOfEntries) {
  GateControlList gcl({{100_us, 0xff}, {400_us, 0x01}});
  EXPECT_EQ(gcl.cycle_time(), 500_us);
}

TEST(GateControlList, GateOpenFollowsEntries) {
  // First 100us: only pcp 7; rest: everything.
  GateControlList gcl({{100_us, 0x80}, {400_us, 0xff}});
  EXPECT_TRUE(gcl.gate_open(7, 50_us));
  EXPECT_FALSE(gcl.gate_open(0, 50_us));
  EXPECT_TRUE(gcl.gate_open(0, 150_us));
  // Next cycle, same phase.
  EXPECT_FALSE(gcl.gate_open(0, 550_us));
  EXPECT_TRUE(gcl.gate_open(7, 550_us));
}

TEST(GateControlList, BaseOffsetShiftsPhase) {
  GateControlList gcl({{100_us, 0x80}, {400_us, 0xff}}, 50_us);
  EXPECT_FALSE(gcl.gate_open(0, 60_us));   // phase 10us: RT window
  EXPECT_TRUE(gcl.gate_open(0, 200_us));   // phase 150us: open
}

TEST(GateControlList, CanStartRequiresWholeWindow) {
  GateControlList gcl({{100_us, 0x80}, {400_us, 0xff}});
  // pcp7 frame of 60us at t=30us: window has 70us left -> ok.
  EXPECT_TRUE(gcl.can_start(7, 30_us, 60_us));
  // pcp7 frame of 80us at t=30us: RT window closes in 70us, but the next
  // entry also has gate 7 open (0xff) -> still ok (contiguous run).
  EXPECT_TRUE(gcl.can_start(7, 30_us, 80_us));
  // pcp0 frame of 450us at t=100us: open run is 400us only -> no.
  EXPECT_FALSE(gcl.can_start(0, 100_us, 450_us));
  // pcp0 frame at t=50us (gate closed) -> no.
  EXPECT_FALSE(gcl.can_start(0, 50_us, 1_us));
}

TEST(GateControlList, GuardBandBlocksFrameSpanningClose) {
  // Open window 100us, closed 400us for pcp 0.
  GateControlList gcl({{100_us, 0xff}, {400_us, 0x80}});
  EXPECT_TRUE(gcl.can_start(0, 80_us, 20_us));   // fits exactly
  EXPECT_FALSE(gcl.can_start(0, 80_us, 21_us));  // would cross the close
}

TEST(GateControlList, NextOpportunityNowIfOpen) {
  GateControlList gcl({{100_us, 0xff}, {400_us, 0x80}});
  EXPECT_EQ(gcl.next_opportunity(0, 10_us, 20_us), 10_us);
}

TEST(GateControlList, NextOpportunityJumpsToNextWindow) {
  GateControlList gcl({{100_us, 0xff}, {400_us, 0x80}});
  // pcp0 at t=90us needs 20us; current window has 10us left; next chance
  // is the next cycle's first entry at 500us.
  EXPECT_EQ(gcl.next_opportunity(0, 90_us, 20_us), 500_us);
}

TEST(GateControlList, NextOpportunityForUnschedulableFrame) {
  GateControlList gcl({{100_us, 0xff}, {400_us, 0x80}});
  // 200us frame never fits the 100us open window; must not return now,
  // must make forward progress.
  const auto t = gcl.next_opportunity(0, 10_us, 200_us);
  EXPECT_GT(t, 10_us);
}

TEST(GateControlList, OpenRunCapsAtOneCycle) {
  GateControlList gcl({{100_us, 0xff}, {400_us, 0xff}});
  EXPECT_EQ(gcl.open_run_from(3, 0_us), 500_us);
}

TEST(GateControlList, ProtectedWindowHelper) {
  auto gcl = make_protected_window_gcl(1_ms, 100_us, 6);
  EXPECT_EQ(gcl.cycle_time(), 1_ms);
  EXPECT_TRUE(gcl.gate_open(7, 50_us));
  EXPECT_TRUE(gcl.gate_open(6, 50_us));
  EXPECT_FALSE(gcl.gate_open(5, 50_us));
  EXPECT_TRUE(gcl.gate_open(0, 500_us));
  EXPECT_THROW(make_protected_window_gcl(1_ms, 1_ms, 6),
               std::invalid_argument);
}

TEST(GateControlList, GatesAtOrAboveMask) {
  EXPECT_EQ(gates_at_or_above(0), 0xff);
  EXPECT_EQ(gates_at_or_above(6), 0xc0);
  EXPECT_EQ(gates_at_or_above(7), 0x80);
}

// Property sweep: for every phase, exactly the mask of the active entry
// answers gate_open.
class GclPhaseSweep : public ::testing::TestWithParam<int> {};

TEST_P(GclPhaseSweep, GateOpenMatchesEntryMask) {
  GateControlList gcl({{100_us, 0x80}, {150_us, 0x0f}, {250_us, 0xff}});
  const auto t = sim::microseconds(GetParam());
  const auto phase_us = GetParam() % 500;
  std::uint8_t expected = phase_us < 100 ? 0x80
                          : phase_us < 250 ? 0x0f
                                           : 0xff;
  for (std::uint8_t p = 0; p < 8; ++p) {
    EXPECT_EQ(gcl.gate_open(p, t), ((expected >> p) & 1) != 0)
        << "pcp " << int(p) << " at " << t.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Phases, GclPhaseSweep,
                         ::testing::Values(0, 50, 99, 100, 249, 250, 499, 500,
                                           555, 999, 1250));

}  // namespace
}  // namespace steelnet::tsn
