#include "tsn/schedule.hpp"

#include <gtest/gtest.h>

namespace steelnet::tsn {
namespace {

using namespace steelnet::sim::literals;

FlowSpec flow(std::uint64_t id, sim::SimTime period,
              std::vector<std::uint64_t> path, std::size_t bytes = 84) {
  FlowSpec f;
  f.flow_id = id;
  f.period = period;
  f.frame_bytes = bytes;
  f.path = std::move(path);
  return f;
}

TEST(Scheduler, EmptyInput) {
  const auto r = schedule_flows({});
  EXPECT_TRUE(r.flows.empty());
  EXPECT_TRUE(r.unschedulable.empty());
}

TEST(Scheduler, SingleFlowGetsOffsetZero) {
  const auto r = schedule_flows({flow(1, 1_ms, {100})});
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].offset, 0_ns);
  EXPECT_EQ(r.hyperperiod, 1_ms);
  EXPECT_FALSE(validate_schedule(r).has_value());
}

TEST(Scheduler, TwoFlowsSharingPortDoNotOverlap) {
  const auto r =
      schedule_flows({flow(1, 1_ms, {100}), flow(2, 1_ms, {100})});
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_NE(r.flows[0].offset, r.flows[1].offset);
  EXPECT_FALSE(validate_schedule(r).has_value());
}

TEST(Scheduler, DisjointPathsShareOffsets) {
  const auto r =
      schedule_flows({flow(1, 1_ms, {100}), flow(2, 1_ms, {200})});
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_EQ(r.flows[0].offset, 0_ns);
  EXPECT_EQ(r.flows[1].offset, 0_ns);
}

TEST(Scheduler, HarmonicPeriodsHyperperiod) {
  const auto r = schedule_flows(
      {flow(1, 1_ms, {100}), flow(2, 2_ms, {100}), flow(3, 4_ms, {100})});
  EXPECT_EQ(r.hyperperiod, 4_ms);
  EXPECT_EQ(r.flows.size(), 3u);
  EXPECT_FALSE(validate_schedule(r).has_value());
}

TEST(Scheduler, NonHarmonicPeriodsLcm) {
  const auto r =
      schedule_flows({flow(1, 2_ms, {100}), flow(2, 3_ms, {100})});
  EXPECT_EQ(r.hyperperiod, 6_ms);
  EXPECT_FALSE(validate_schedule(r).has_value());
}

TEST(Scheduler, MultiHopPathsReserveEveryPort) {
  const auto r = schedule_flows({flow(1, 1_ms, {100, 200, 300})});
  ASSERT_EQ(r.flows.size(), 1u);
  // One reservation per hop per period instance.
  EXPECT_EQ(r.reservations.size(), 3u);
}

TEST(Scheduler, OversubscribedPortReportsUnschedulable) {
  // 84B at 1Gb/s = 672ns per frame; a 2us period fits at most 2 flows
  // (with 1us granularity); the fourth cannot be placed.
  std::vector<FlowSpec> flows;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    flows.push_back(flow(i, 2_us, {100}));
  }
  SchedulerConfig cfg;
  cfg.granularity = 500_ns;
  const auto r = schedule_flows(flows, cfg);
  EXPECT_FALSE(r.unschedulable.empty());
  EXPECT_FALSE(validate_schedule(r).has_value());
}

TEST(Scheduler, RejectsBadSpecs) {
  EXPECT_THROW(schedule_flows({flow(1, 0_ns, {100})}), std::invalid_argument);
  EXPECT_THROW(schedule_flows({flow(1, 1_ms, {})}), std::invalid_argument);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  std::vector<FlowSpec> flows;
  for (std::uint64_t i = 1; i <= 8; ++i) {
    flows.push_back(flow(i, i % 2 == 0 ? 2_ms : 1_ms, {i % 3, 100}));
  }
  const auto a = schedule_flows(flows);
  const auto b = schedule_flows(flows);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].offset, b.flows[i].offset);
  }
}

TEST(Scheduler, FindLocatesFlow) {
  const auto r =
      schedule_flows({flow(7, 1_ms, {100}), flow(9, 1_ms, {100})});
  EXPECT_TRUE(r.find(7).has_value());
  EXPECT_TRUE(r.find(9).has_value());
  EXPECT_FALSE(r.find(8).has_value());
}

// Property: for a randomized batch of flows, the schedule always
// validates and scheduled+unschedulable == input count.
class SchedulerProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerProperty, AlwaysConsistent) {
  const int n = GetParam();
  std::vector<FlowSpec> flows;
  for (int i = 0; i < n; ++i) {
    const auto periods = std::vector<sim::SimTime>{500_us, 1_ms, 2_ms};
    flows.push_back(flow(std::uint64_t(i + 1),
                         periods[std::size_t(i) % periods.size()],
                         {std::uint64_t(i % 4), 100}));
  }
  const auto r = schedule_flows(flows);
  EXPECT_EQ(r.flows.size() + r.unschedulable.size(), flows.size());
  EXPECT_FALSE(validate_schedule(r).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchedulerProperty,
                         ::testing::Values(1, 3, 6, 10, 16));

}  // namespace
}  // namespace steelnet::tsn
