// Regression: a GateControlList installed on a real switch egress port
// (the EgressQueue drain path, including the gate-retry re-arm).
#include <gtest/gtest.h>

#include "net/host_node.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"
#include "tsn/gcl.hpp"

namespace steelnet::tsn {
namespace {

using namespace steelnet::sim::literals;

struct GatedFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchNode* sw;
  net::HostNode* tx;
  net::HostNode* rx;

  GatedFixture() {
    net::SwitchConfig cfg;
    cfg.mac_learning = false;
    cfg.processing_delay = 0_ns;
    sw = &network.add_node<net::SwitchNode>("sw", cfg);
    tx = &network.add_node<net::HostNode>("tx", net::MacAddress{1});
    rx = &network.add_node<net::HostNode>("rx", net::MacAddress{2});
    network.connect(tx->id(), 0, sw->id(), 0);
    network.connect(rx->id(), 0, sw->id(), 1);
    sw->add_fdb_entry(net::MacAddress{2}, 1);
  }

  void send(std::uint8_t pcp) {
    net::Frame f;
    f.dst = net::MacAddress{2};
    f.pcp = pcp;
    f.payload.resize(46);
    tx->send(std::move(f));
  }
};

TEST(GclOnSwitch, BestEffortWaitsForItsWindow) {
  GatedFixture fx;
  // pcp 0 is gated off for the first 100 us of every 1 ms cycle.
  GateControlList gcl({{100_us, 0x80}, {900_us, 0xff}});
  fx.sw->set_gate_controller(1, &gcl);

  sim::SimTime at;
  fx.rx->set_receiver([&](net::Frame, sim::SimTime t) { at = t; });
  fx.send(0);  // arrives at the switch ~1.17 us, gate closed until 100 us
  fx.simulator.run();
  EXPECT_GE(at, 100_us);
  EXPECT_LT(at, 102_us);  // released right at the gate opening
}

TEST(GclOnSwitch, HighPriorityPassesInsideWindow) {
  GatedFixture fx;
  GateControlList gcl({{100_us, 0x80}, {900_us, 0xff}});
  fx.sw->set_gate_controller(1, &gcl);
  sim::SimTime at;
  fx.rx->set_receiver([&](net::Frame, sim::SimTime t) { at = t; });
  fx.send(7);
  fx.simulator.run();
  EXPECT_LT(at, 3_us);  // no gating for pcp 7
}

TEST(GclOnSwitch, QueuedFramesReleaseInPriorityOrderAtGateOpen) {
  GatedFixture fx;
  GateControlList gcl({{100_us, 0x80}, {900_us, 0xff}});
  fx.sw->set_gate_controller(1, &gcl);
  std::vector<std::uint8_t> order;
  fx.rx->set_receiver(
      [&](net::Frame f, sim::SimTime) { order.push_back(f.pcp); });
  fx.send(0);
  fx.send(3);
  fx.send(5);
  fx.simulator.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 5);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 0);
}

TEST(GclOnSwitch, PeriodicTrafficSustainedAcrossManyCycles) {
  GatedFixture fx;
  GateControlList gcl({{100_us, 0x80}, {900_us, 0xff}});
  fx.sw->set_gate_controller(1, &gcl);
  int got = 0;
  fx.rx->set_receiver([&](net::Frame, sim::SimTime) { ++got; });
  sim::PeriodicTask task(fx.simulator, 0_ns, 250_us, [&] { fx.send(0); });
  fx.simulator.run_until(50_ms);
  // 200 frames offered; the gate delays but never starves them.
  EXPECT_EQ(got, 200);
}

}  // namespace
}  // namespace steelnet::tsn
