#include "sdn/pipeline.hpp"

#include <gtest/gtest.h>

namespace steelnet::sdn {
namespace {

net::Frame frame(std::uint64_t src, std::uint64_t dst,
                 std::vector<std::uint8_t> payload = {0}) {
  net::Frame f;
  f.src = net::MacAddress{src};
  f.dst = net::MacAddress{dst};
  f.ethertype = net::EtherType::kProfinetRt;
  f.payload = std::move(payload);
  return f;
}

std::vector<FieldSpec> key_port_src() {
  return {{FieldKind::kInPort, 0}, {FieldKind::kEthSrc, 0}};
}

TEST(ExtractKey, AllFieldKinds) {
  auto f = frame(0xaa, 0xbb, {0x11, 0x22, 0x33});
  const auto key = extract_key({{FieldKind::kInPort, 0},
                                {FieldKind::kEthSrc, 0},
                                {FieldKind::kEthDst, 0},
                                {FieldKind::kEtherType, 0},
                                {FieldKind::kPayloadU8, 1},
                                {FieldKind::kPayloadU16, 1}},
                               f, 7);
  EXPECT_EQ(key[0], 7u);
  EXPECT_EQ(key[1], 0xaau);
  EXPECT_EQ(key[2], 0xbbu);
  EXPECT_EQ(key[3], 0x8892u);
  EXPECT_EQ(key[4], 0x22u);
  EXPECT_EQ(key[5], 0x3322u);
}

TEST(ExtractKey, OutOfRangePayloadIsZero) {
  auto f = frame(1, 2, {0x11});
  const auto key =
      extract_key({{FieldKind::kPayloadU8, 5}, {FieldKind::kPayloadU16, 0}},
                  f, 0);
  EXPECT_EQ(key[0], 0u);
  EXPECT_EQ(key[1], 0u);  // u16 needs 2 bytes
}

TEST(Table, ExactMatchAndCounters) {
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {1, 0xaa};
  e.actions = {ActionPrimitive::set_egress(3)};
  const auto id = t.add_entry(std::move(e));

  auto f = frame(0xaa, 0xbb);
  std::uint64_t hit;
  const auto& a = t.match(f, 1, hit);
  EXPECT_EQ(hit, id);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].kind, ActionPrimitive::Kind::kSetEgress);
  EXPECT_EQ(t.entry(id)->hits, 1u);
  EXPECT_GT(t.entry(id)->hit_bytes, 0u);

  // Different port: default (drop), counted separately.
  t.match(f, 2, hit);
  EXPECT_EQ(hit, Table::kDefaultEntry);
  EXPECT_EQ(t.default_hits(), 1u);
}

TEST(Table, TernaryWildcard) {
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 0xaa};
  e.masks = {0, ~0ULL};  // any port, exact src
  e.actions = {ActionPrimitive::set_egress(1)};
  t.add_entry(std::move(e));
  auto f = frame(0xaa, 1);
  std::uint64_t hit;
  t.match(f, 9, hit);
  EXPECT_NE(hit, Table::kDefaultEntry);
}

TEST(Table, PriorityWins) {
  Table t("t", key_port_src());
  TableEntry low;
  low.values = {0, 0};
  low.masks = {0, 0};  // match-all
  low.priority = 1;
  low.actions = {ActionPrimitive::set_egress(1)};
  t.add_entry(std::move(low));
  TableEntry high;
  high.values = {0, 0xaa};
  high.masks = {0, ~0ULL};
  high.priority = 10;
  high.actions = {ActionPrimitive::set_egress(2)};
  t.add_entry(std::move(high));

  auto f = frame(0xaa, 1);
  std::uint64_t hit;
  EXPECT_EQ(t.match(f, 0, hit)[0].arg0, 2u);
  auto g = frame(0xcc, 1);
  EXPECT_EQ(t.match(g, 0, hit)[0].arg0, 1u);
}

TEST(Table, RemoveAndUpdateEntries) {
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {1, 2};
  e.actions = {ActionPrimitive::set_egress(1)};
  const auto id = t.add_entry(std::move(e));
  EXPECT_TRUE(t.set_actions(id, {ActionPrimitive::drop()}));
  EXPECT_EQ(t.entry(id)->actions[0].kind, ActionPrimitive::Kind::kDrop);
  EXPECT_TRUE(t.remove_entry(id));
  EXPECT_FALSE(t.remove_entry(id));
  EXPECT_FALSE(t.set_actions(id, {}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(Table, RejectsKeyWidthMismatch) {
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {1};
  EXPECT_THROW(t.add_entry(std::move(e)), std::invalid_argument);
  TableEntry m;
  m.values = {1, 2};
  m.masks = {1};
  EXPECT_THROW(t.add_entry(std::move(m)), std::invalid_argument);
}

TEST(Pipeline, EmptyPipelineDrops) {
  Pipeline p;
  auto f = frame(1, 2);
  EXPECT_TRUE(p.process(f, 0).dropped);
}

TEST(Pipeline, ForwardMirrorAndRewrite) {
  Pipeline p;
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 1};
  e.actions = {ActionPrimitive::rewrite_bytes(0, {0x99}),
               ActionPrimitive::set_egress(5),
               ActionPrimitive::add_mirror(6)};
  t.add_entry(std::move(e));
  p.add_table(std::move(t));

  auto f = frame(1, 2, {0x00, 0x01});
  const auto r = p.process(f, 0);
  ASSERT_EQ(r.egress.size(), 2u);
  EXPECT_EQ(r.egress[0].port, 5);
  EXPECT_EQ(r.egress[1].port, 6);
  EXPECT_EQ(f.payload[0], 0x99);
  EXPECT_FALSE(r.dropped);
}

TEST(Pipeline, MirrorWithDstOverride) {
  Pipeline p;
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 0};
  e.masks = {0, 0};
  e.actions = {ActionPrimitive::set_egress(1),
               ActionPrimitive::add_mirror_with_dst(2, net::MacAddress{0x77})};
  t.add_entry(std::move(e));
  p.add_table(std::move(t));
  auto f = frame(1, 2);
  const auto r = p.process(f, 0);
  ASSERT_EQ(r.egress.size(), 2u);
  EXPECT_FALSE(r.egress[0].dst_override.has_value());
  ASSERT_TRUE(r.egress[1].dst_override.has_value());
  EXPECT_EQ(r.egress[1].dst_override->bits(), 0x77u);
}

TEST(Pipeline, TransformedMirrorCarriesRewrite) {
  Pipeline p;
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 0};
  e.masks = {0, 0};
  e.actions = {ActionPrimitive::set_egress(1),
               ActionPrimitive::add_mirror_transformed(
                   2, net::MacAddress{0x77}, 1, {0xab, 0xcd})};
  t.add_entry(std::move(e));
  p.add_table(std::move(t));
  auto f = frame(1, 2, {0, 0, 0});
  const auto r = p.process(f, 0);
  ASSERT_EQ(r.egress.size(), 2u);
  ASSERT_TRUE(r.egress[1].rewrite.has_value());
  EXPECT_EQ(r.egress[1].rewrite->offset, 1u);
  EXPECT_EQ(r.egress[1].rewrite->bytes,
            (std::vector<std::uint8_t>{0xab, 0xcd}));
  // The original frame's payload is untouched by per-copy rewrites.
  EXPECT_EQ(f.payload[1], 0);
}

TEST(Pipeline, DropBeatsEgress) {
  Pipeline p;
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 0};
  e.masks = {0, 0};
  e.actions = {ActionPrimitive::set_egress(1), ActionPrimitive::drop()};
  t.add_entry(std::move(e));
  p.add_table(std::move(t));
  auto f = frame(1, 2);
  const auto r = p.process(f, 0);
  // Explicit drop removes the unicast egress; mirrors would survive
  // (none here), so the frame is dropped.
  EXPECT_TRUE(r.dropped);
}

TEST(Pipeline, GotoTableChains) {
  Pipeline p;
  Table t0("classify", {{FieldKind::kEthSrc, 0}});
  TableEntry e0;
  e0.values = {1};
  e0.actions = {ActionPrimitive::goto_table(1)};
  t0.add_entry(std::move(e0));
  p.add_table(std::move(t0));
  Table t1("route", {{FieldKind::kEthDst, 0}});
  TableEntry e1;
  e1.values = {2};
  e1.actions = {ActionPrimitive::set_egress(9)};
  t1.add_entry(std::move(e1));
  p.add_table(std::move(t1));

  auto f = frame(1, 2);
  const auto r = p.process(f, 0);
  ASSERT_EQ(r.egress.size(), 1u);
  EXPECT_EQ(r.egress[0].port, 9);
}

TEST(Pipeline, PuntFlagSet) {
  Pipeline p;
  Table t("t", key_port_src());
  TableEntry e;
  e.values = {0, 0};
  e.masks = {0, 0};
  e.actions = {ActionPrimitive::punt(), ActionPrimitive::set_egress(1)};
  t.add_entry(std::move(e));
  p.add_table(std::move(t));
  auto f = frame(1, 2);
  const auto r = p.process(f, 0);
  EXPECT_TRUE(r.punted);
  EXPECT_EQ(r.egress.size(), 1u);
}

}  // namespace
}  // namespace steelnet::sdn
