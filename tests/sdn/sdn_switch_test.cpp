#include "sdn/sdn_switch.hpp"

#include <gtest/gtest.h>

#include "net/host_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::sdn {
namespace {

using namespace steelnet::sim::literals;

struct SdnFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  SdnSwitchNode* sw;
  std::vector<net::HostNode*> hosts;

  explicit SdnFixture(std::size_t n_hosts = 3) {
    sw = &network.add_node<SdnSwitchNode>("sdn");
    for (std::size_t i = 0; i < n_hosts; ++i) {
      auto& h = network.add_node<net::HostNode>("h" + std::to_string(i),
                                                net::MacAddress{i + 1});
      network.connect(h.id(), 0, sw->id(), static_cast<net::PortId>(i));
      hosts.push_back(&h);
    }
  }

  /// Installs a match-all rule with `actions`.
  EntryId install(ActionList actions) {
    if (sw->pipeline().table_count() == 0) {
      sw->pipeline().add_table(Table("t", {{FieldKind::kInPort, 0}}));
    }
    TableEntry e;
    e.values = {0};
    e.masks = {0};
    e.actions = std::move(actions);
    return sw->pipeline().table(0).add_entry(std::move(e));
  }

  net::Frame frame_to(std::uint64_t dst) {
    net::Frame f;
    f.dst = net::MacAddress{dst};
    f.payload.resize(46);
    return f;
  }
};

TEST(SdnSwitch, EmptyPipelineDropsEverything) {
  SdnFixture fx;
  int got = 0;
  fx.hosts[1]->set_receiver([&](net::Frame, sim::SimTime) { ++got; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.simulator.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(fx.sw->counters().dropped, 1u);
  EXPECT_EQ(fx.sw->counters().frames_in, 1u);
}

TEST(SdnSwitch, ForwardRuleDelivers) {
  SdnFixture fx;
  fx.install({ActionPrimitive::set_egress(1)});
  int got = 0;
  fx.hosts[1]->set_receiver([&](net::Frame, sim::SimTime) { ++got; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.simulator.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fx.sw->counters().frames_out, 1u);
}

TEST(SdnSwitch, PipelineLatencyApplied) {
  SdnFixture fx;
  fx.install({ActionPrimitive::set_egress(1)});
  sim::SimTime at;
  fx.hosts[1]->set_receiver([&](net::Frame, sim::SimTime t) { at = t; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.simulator.run();
  // 672 ser + 500 prop + 800 pipeline + 672 ser + 500 prop.
  EXPECT_EQ(at.nanos(), 672 + 500 + 800 + 672 + 500);
}

TEST(SdnSwitch, MirrorWithDstPassesNicFilter) {
  SdnFixture fx;
  fx.install({ActionPrimitive::set_egress(1),
              ActionPrimitive::add_mirror_with_dst(
                  2, fx.hosts[2]->mac())});
  int direct = 0, mirrored = 0;
  fx.hosts[1]->set_receiver([&](net::Frame, sim::SimTime) { ++direct; });
  fx.hosts[2]->set_receiver([&](net::Frame, sim::SimTime) { ++mirrored; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.simulator.run();
  EXPECT_EQ(direct, 1);
  EXPECT_EQ(mirrored, 1);  // NIC filter passed thanks to the dst rewrite
}

TEST(SdnSwitch, PlainMirrorBlockedByNicFilter) {
  SdnFixture fx;
  fx.install({ActionPrimitive::set_egress(1),
              ActionPrimitive::add_mirror(2)});
  int mirrored = 0;
  fx.hosts[2]->set_receiver([&](net::Frame, sim::SimTime) { ++mirrored; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.simulator.run();
  EXPECT_EQ(mirrored, 0);
  EXPECT_EQ(fx.hosts[2]->counters().filtered, 1u);
}

TEST(SdnSwitch, TransformedMirrorRewritesCopyOnly) {
  SdnFixture fx;
  fx.install({ActionPrimitive::set_egress(1),
              ActionPrimitive::add_mirror_transformed(
                  2, fx.hosts[2]->mac(), 0, {0xEE})});
  std::uint8_t direct_byte = 0, mirror_byte = 0;
  fx.hosts[1]->set_receiver(
      [&](net::Frame f, sim::SimTime) { direct_byte = f.payload[0]; });
  fx.hosts[2]->set_receiver(
      [&](net::Frame f, sim::SimTime) { mirror_byte = f.payload[0]; });
  auto f = fx.frame_to(2);
  f.payload[0] = 0x11;
  fx.hosts[0]->send(std::move(f));
  fx.simulator.run();
  EXPECT_EQ(direct_byte, 0x11);
  EXPECT_EQ(mirror_byte, 0xEE);
}

TEST(SdnSwitch, PuntHandlerReceivesCopy) {
  SdnFixture fx;
  fx.install({ActionPrimitive::punt(), ActionPrimitive::drop()});
  int punted = 0;
  net::PortId punt_port = 99;
  fx.sw->set_punt_handler([&](const net::Frame&, net::PortId p) {
    ++punted;
    punt_port = p;
  });
  fx.hosts[1]->send(fx.frame_to(1));
  fx.simulator.run();
  EXPECT_EQ(punted, 1);
  EXPECT_EQ(punt_port, 1);
  EXPECT_EQ(fx.sw->counters().punted, 1u);
  EXPECT_EQ(fx.sw->counters().dropped, 1u);
}

TEST(SdnSwitch, InspectorSeesEverythingBeforePipeline) {
  SdnFixture fx;
  // No rules: everything drops -- the inspector must still see frames.
  fx.sw->pipeline().add_table(Table("t", {{FieldKind::kInPort, 0}}));
  int inspected = 0;
  fx.sw->set_inspector(
      [&](const net::Frame&, net::PortId) { ++inspected; });
  fx.hosts[0]->send(fx.frame_to(2));
  fx.hosts[1]->send(fx.frame_to(3));
  fx.simulator.run();
  EXPECT_EQ(inspected, 2);
}

TEST(SdnSwitch, InjectEmitsControlPlaneFrame) {
  SdnFixture fx;
  int got = 0;
  net::MacAddress src_seen;
  fx.hosts[2]->set_receiver([&](net::Frame f, sim::SimTime) {
    ++got;
    src_seen = f.src;
  });
  net::Frame crafted;
  crafted.dst = fx.hosts[2]->mac();
  crafted.src = net::MacAddress{0xFEED};  // impersonation is the point
  crafted.payload.resize(46);
  fx.sw->inject(std::move(crafted), 2);
  fx.simulator.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(src_seen, net::MacAddress{0xFEED});
  EXPECT_EQ(fx.sw->counters().injected, 1u);
}

TEST(SdnSwitch, RuleUpdateTakesEffectForInFlightTraffic) {
  SdnFixture fx;
  const auto id = fx.install({ActionPrimitive::set_egress(1)});
  int to1 = 0, to2 = 0;
  fx.hosts[1]->set_receiver([&](net::Frame f, sim::SimTime) {
    (void)f;
    ++to1;
  });
  fx.hosts[2]->set_receiver([&](net::Frame, sim::SimTime) { ++to2; });
  // Redirect to host 2 (with dst rewrite so the filter passes) mid-run.
  for (int i = 0; i < 10; ++i) {
    fx.simulator.schedule_at(sim::microseconds(10 * i), [&fx] {
      fx.hosts[0]->send(fx.frame_to(2));
    });
  }
  fx.simulator.schedule_at(sim::microseconds(45), [&] {
    fx.sw->pipeline().table(0).set_actions(
        id, {ActionPrimitive::set_dst(fx.hosts[2]->mac()),
             ActionPrimitive::set_egress(2)});
  });
  fx.simulator.run();
  EXPECT_EQ(to1 + to2, 10);
  EXPECT_GT(to1, 0);
  EXPECT_GT(to2, 0);
}

}  // namespace
}  // namespace steelnet::sdn
