#include "tap/reflection.hpp"

#include <gtest/gtest.h>

namespace steelnet::tap {
namespace {

using namespace steelnet::sim::literals;

ReflectionConfig quick(ebpf::ReflectorVariant v, std::size_t flows = 1,
                       std::size_t packets = 300) {
  ReflectionConfig c;
  c.variant = v;
  c.flows = flows;
  c.packets = packets;
  c.seed = 42;
  return c;
}

TEST(TrafficReflection, AllPacketsMeasuredNoLoss) {
  const auto r = run_traffic_reflection(quick(ebpf::ReflectorVariant::kBase));
  EXPECT_EQ(r.frames_lost, 0u);
  EXPECT_EQ(r.delay_us.count(), 300u);
  EXPECT_EQ(r.frames_reflected, 300u);
  EXPECT_EQ(r.variant, "Base");
}

TEST(TrafficReflection, DelaysPositiveAndPlausible) {
  const auto r = run_traffic_reflection(quick(ebpf::ReflectorVariant::kTs));
  EXPECT_GT(r.delay_us.min(), 1.0);    // at least the wire time
  EXPECT_LT(r.delay_us.max(), 100.0);  // far below a cycle
}

TEST(TrafficReflection, RingBufferVariantsSlower) {
  const auto no_rb =
      run_traffic_reflection(quick(ebpf::ReflectorVariant::kTsTs));
  const auto rb =
      run_traffic_reflection(quick(ebpf::ReflectorVariant::kTsRb));
  EXPECT_GT(rb.delay_us.median(), no_rb.delay_us.median() + 2.0);
  EXPECT_GT(rb.ringbuf_records, 0u);
  EXPECT_EQ(no_rb.ringbuf_records, 0u);
}

TEST(TrafficReflection, MoreFlowsMoreJitter) {
  const auto one =
      run_traffic_reflection(quick(ebpf::ReflectorVariant::kBase, 1, 400));
  const auto many =
      run_traffic_reflection(quick(ebpf::ReflectorVariant::kBase, 25, 400));
  EXPECT_GT(many.jitter_ns.percentile(90), one.jitter_ns.percentile(90) * 2);
  EXPECT_EQ(many.flows, 25u);
}

TEST(TrafficReflection, PtpComparisonAddsError) {
  auto c = quick(ebpf::ReflectorVariant::kBase, 1, 500);
  c.with_ptp_comparison = true;
  c.ptp.path_asymmetry = 400_ns;
  c.ptp.servo_noise = 150_ns;
  const auto r = run_traffic_reflection(c);
  ASSERT_EQ(r.ptp_delay_us.count(), r.delay_us.count());
  // The naive measurement is biased and noisier than the tap's.
  double max_err = 0;
  for (std::size_t i = 0; i < r.delay_us.raw().size(); ++i) {
    max_err = std::max(
        max_err, std::abs(r.ptp_delay_us.raw()[i] - r.delay_us.raw()[i]));
  }
  EXPECT_GT(max_err, 0.1);  // >100ns of measurement error somewhere
}

TEST(TrafficReflection, DeterministicForSeed) {
  const auto a = run_traffic_reflection(quick(ebpf::ReflectorVariant::kTsRb));
  const auto b = run_traffic_reflection(quick(ebpf::ReflectorVariant::kTsRb));
  ASSERT_EQ(a.delay_us.count(), b.delay_us.count());
  for (std::size_t i = 0; i < a.delay_us.raw().size(); ++i) {
    EXPECT_EQ(a.delay_us.raw()[i], b.delay_us.raw()[i]);
  }
}

TEST(TrafficReflection, RejectsEmptyWorkload) {
  auto c = quick(ebpf::ReflectorVariant::kBase);
  c.flows = 0;
  EXPECT_THROW(run_traffic_reflection(c), std::invalid_argument);
  c = quick(ebpf::ReflectorVariant::kBase);
  c.packets = 0;
  EXPECT_THROW(run_traffic_reflection(c), std::invalid_argument);
}

// Property sweep: every variant reflects every packet and produces a
// monotone CDF.
class AllVariantsReflect
    : public ::testing::TestWithParam<ebpf::ReflectorVariant> {};

TEST_P(AllVariantsReflect, NoLossMonotoneCdf) {
  const auto r = run_traffic_reflection(quick(GetParam(), 1, 200));
  EXPECT_EQ(r.frames_lost, 0u);
  const auto cdf = r.delay_us.cdf(50);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].cum_prob, cdf[i - 1].cum_prob);
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, AllVariantsReflect,
                         ::testing::ValuesIn(ebpf::all_reflector_variants()));

}  // namespace
}  // namespace steelnet::tap
