#include "tap/tap_node.hpp"

#include <gtest/gtest.h>

#include "net/host_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::tap {
namespace {

using namespace steelnet::sim::literals;

struct TapFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::HostNode* a;
  TapNode* tap;
  net::HostNode* b;

  TapFixture() {
    a = &network.add_node<net::HostNode>("a", net::MacAddress{1});
    tap = &network.add_node<TapNode>("tap");
    b = &network.add_node<net::HostNode>("b", net::MacAddress{2});
    network.connect(a->id(), 0, tap->id(), TapNode::kPortA);
    network.connect(tap->id(), TapNode::kPortB, b->id(), 0);
  }
};

net::Frame make(std::uint64_t flow, std::uint64_t seq) {
  net::Frame f;
  f.dst = net::MacAddress{2};
  f.flow_id = flow;
  f.seq = seq;
  f.payload.resize(46);
  return f;
}

TEST(TapNode, ForwardsThrough) {
  TapFixture fx;
  int got = 0;
  fx.b->set_receiver([&](net::Frame, sim::SimTime) { ++got; });
  fx.a->send(make(1, 0));
  fx.simulator.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(fx.tap->frames_seen(), 1u);
}

TEST(TapNode, RecordsDirectionAndIds) {
  TapFixture fx;
  fx.b->set_receiver([&](net::Frame f, sim::SimTime) {
    // bounce back
    f.dst = net::MacAddress{1};
    f.src = net::MacAddress{2};
    fx.b->send(std::move(f));
  });
  fx.a->send(make(7, 3));
  fx.simulator.run();
  ASSERT_EQ(fx.tap->observations().size(), 2u);
  EXPECT_EQ(fx.tap->observations()[0].direction, TapDirection::kAtoB);
  EXPECT_EQ(fx.tap->observations()[1].direction, TapDirection::kBtoA);
  EXPECT_EQ(fx.tap->observations()[0].flow_id, 7u);
  EXPECT_EQ(fx.tap->observations()[0].seq, 3u);
  EXPECT_LT(fx.tap->observations()[0].stamp,
            fx.tap->observations()[1].stamp);
}

TEST(TapNode, TimestampsQuantizedTo8ns) {
  TapFixture fx;
  fx.a->send(make(1, 0));
  fx.simulator.run();
  ASSERT_FALSE(fx.tap->observations().empty());
  EXPECT_EQ(fx.tap->observations()[0].stamp.nanos() % 8, 0);
}

TEST(TapNode, FindStamp) {
  TapFixture fx;
  fx.a->send(make(1, 0));
  fx.a->send(make(1, 1));
  fx.simulator.run();
  EXPECT_TRUE(fx.tap->find_stamp(1, 0, TapDirection::kAtoB).has_value());
  EXPECT_TRUE(fx.tap->find_stamp(1, 1, TapDirection::kAtoB).has_value());
  EXPECT_FALSE(fx.tap->find_stamp(1, 2, TapDirection::kAtoB).has_value());
  EXPECT_FALSE(fx.tap->find_stamp(1, 0, TapDirection::kBtoA).has_value());
}

TEST(TapNode, ClearResetsLogButNotCounter) {
  TapFixture fx;
  fx.a->send(make(1, 0));
  fx.simulator.run();
  fx.tap->clear();
  EXPECT_TRUE(fx.tap->observations().empty());
  EXPECT_EQ(fx.tap->frames_seen(), 1u);
}

}  // namespace
}  // namespace steelnet::tap
