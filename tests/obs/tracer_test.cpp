#include "obs/span_tracer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/exporters.hpp"
#include "obs/hub.hpp"

namespace steelnet::obs {
namespace {

using namespace steelnet::sim::literals;

TEST(SpanTracer, TrackInterningIsStable) {
  SpanTracer tr;
  const auto a = tr.track("node-a");
  const auto b = tr.track("node-b");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.track("node-a"), a);
  EXPECT_EQ(tr.track_name(a), "node-a");
  EXPECT_EQ(tr.track_count(), 2u);
}

TEST(SpanTracer, BeginEndNestLikeACallStack) {
  SpanTracer tr;
  const auto t = tr.track("t");
  tr.begin(t, "outer", 10_ns);
  tr.begin(t, "inner", 20_ns);
  EXPECT_EQ(tr.open_depth(t), 2u);
  tr.end(t, 30_ns);  // closes "inner" (LIFO)
  tr.end(t, 50_ns);  // closes "outer"
  EXPECT_EQ(tr.open_depth(t), 0u);
  ASSERT_EQ(tr.spans().size(), 2u);
  // Children are recorded before their parents (close order).
  EXPECT_EQ(tr.spans()[0].name, "inner");
  EXPECT_EQ(tr.spans()[1].name, "outer");
  EXPECT_EQ(tr.spans()[1].start, 10_ns);
  EXPECT_EQ(tr.spans()[1].end, 50_ns);
}

TEST(SpanTracer, EndBeforeStartThrows) {
  SpanTracer tr;
  const auto t = tr.track("t");
  tr.begin(t, "s", 100_ns);
  EXPECT_THROW(tr.end(t, 99_ns), std::logic_error);
}

TEST(SpanTracer, ParentMayNotCloseBeforeItsChildren) {
  SpanTracer tr;
  const auto t = tr.track("t");
  tr.begin(t, "outer", 0_ns);
  tr.begin(t, "inner", 10_ns);
  tr.end(t, 40_ns);
  // "outer" must extend at least to its child's end at 40 ns.
  EXPECT_THROW(tr.end(t, 30_ns), std::logic_error);
  tr.end(t, 40_ns);  // exactly the child's end is fine
}

TEST(SpanTracer, EndWithNothingOpenThrows) {
  SpanTracer tr;
  const auto t = tr.track("t");
  EXPECT_THROW(tr.end(t, 1_ns), std::logic_error);
}

TEST(SpanTracer, AddRejectsNegativeDuration) {
  SpanTracer tr;
  const auto t = tr.track("t");
  EXPECT_THROW(tr.add(t, "bad", 10_ns, 9_ns), std::logic_error);
}

TEST(SpanTracer, HopOpenCloseAndAbort) {
  SpanTracer tr;
  const auto q = tr.track("sw/p0");
  tr.hop_open(1, Hop::kQueue, q, 100_ns);
  tr.hop_close(1, Hop::kQueue, q, 250_ns);
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].trace_id, 1u);
  EXPECT_EQ(tr.spans()[0].duration(), 150_ns);

  // Abort discards without recording.
  tr.hop_open(2, Hop::kQueue, q, 300_ns);
  tr.hop_abort(2, Hop::kQueue, q);
  EXPECT_EQ(tr.spans().size(), 1u);

  // Close without open is counted, not recorded.
  tr.hop_close(3, Hop::kQueue, q, 400_ns);
  EXPECT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.unmatched_closes(), 1u);
}

TEST(SpanTracer, SpansForSortsByStartTime) {
  SpanTracer tr;
  const auto a = tr.track("a");
  const auto b = tr.track("b");
  tr.hop(7, Hop::kLink, b, 50_ns, 60_ns);
  tr.hop(7, Hop::kHostTx, a, 10_ns, 20_ns);
  tr.hop(8, Hop::kHostTx, a, 0_ns, 5_ns);  // other frame, filtered out
  const auto spans = tr.spans_for(7);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].start, 10_ns);
  EXPECT_EQ(spans[1].start, 50_ns);
}

TEST(SpanTracer, TraceIdsAreSequentialFromOne) {
  SpanTracer tr;
  EXPECT_EQ(tr.next_trace_id(), 1u);
  EXPECT_EQ(tr.next_trace_id(), 2u);
  EXPECT_EQ(tr.trace_ids_issued(), 2u);
}

TEST(ObsHub, BreakdownTilesTheDeliveryLatency) {
  ObsHub hub;
  const auto tx = hub.track("h1");
  const auto q = hub.track("h1/p0");
  const auto l = hub.track("link:h1:p0");
  const auto rx = hub.track("h2");
  const auto id = hub.assign_trace_id();
  hub.host_tx(id, tx, 0_ns, 100_ns);
  hub.queue_enter(id, q, 100_ns);
  hub.queue_exit(id, q, 150_ns);
  hub.link_transit(id, l, 150_ns, 1000_ns);
  hub.host_rx(id, rx, 1000_ns, 1100_ns);
  hub.delivered(id, rx, 0_ns, 1100_ns);

  ASSERT_EQ(hub.deliveries().size(), 1u);
  const auto d = hub.delivery_of(id);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->latency(), 1100_ns);

  const auto rows = hub.breakdown(id);
  ASSERT_EQ(rows.size(), 4u);
  sim::SimTime sum = sim::SimTime::zero();
  for (const auto& r : rows) sum += r.duration();
  EXPECT_EQ(sum, d->latency());
  EXPECT_EQ(rows[0].hop, "host-tx");
  EXPECT_EQ(rows[1].hop, "queue");
  EXPECT_EQ(rows[2].hop, "link");
  EXPECT_EQ(rows[3].hop, "host-rx");
}

TEST(Exporters, ChromeTraceJsonShape) {
  SpanTracer tr;
  const auto t = tr.track("nodeA");
  tr.hop(1, Hop::kLink, t, 1500_ns, 2750_ns);
  const auto json = chrome_trace_json(tr);
  // Complete event with sim-time microseconds at ns resolution.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.250"), std::string::npos);
  EXPECT_NE(json.find("nodeA"), std::string::npos);
  // Deterministic: same history, same bytes.
  SpanTracer tr2;
  tr2.hop(1, Hop::kLink, tr2.track("nodeA"), 1500_ns, 2750_ns);
  EXPECT_EQ(chrome_trace_json(tr2), json);
}

TEST(Exporters, SpansCsvShape) {
  SpanTracer tr;
  tr.hop(9, Hop::kQueue, tr.track("sw/p1"), 10_ns, 40_ns);
  EXPECT_EQ(spans_csv(tr),
            "trace_id,track,name,start_ns,end_ns,duration_ns\n"
            "9,sw/p1,queue,10,40,30\n");
}

}  // namespace
}  // namespace steelnet::obs
