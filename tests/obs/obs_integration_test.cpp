// The obs plane against a real simulated network: hop breakdowns must
// tile measured delivery latency exactly, and attaching the plane must
// not perturb the simulation at all.
#include <gtest/gtest.h>

#include <optional>

#include "net/host_node.hpp"
#include "net/switch_node.hpp"
#include "obs/exporters.hpp"
#include "obs/hub.hpp"
#include "sim/simulator.hpp"

namespace steelnet {
namespace {

using namespace steelnet::sim::literals;

struct Rig {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchNode* sw = nullptr;
  net::HostNode* a = nullptr;
  net::HostNode* b = nullptr;

  explicit Rig(obs::ObsHub* hub, std::size_t queue_capacity = 1024) {
    if (hub != nullptr) network.set_obs(hub);
    net::SwitchConfig cfg;
    cfg.mac_learning = false;
    cfg.queue_capacity = queue_capacity;
    sw = &network.add_node<net::SwitchNode>("sw", cfg);
    a = &network.add_node<net::HostNode>("a", net::MacAddress{1});
    b = &network.add_node<net::HostNode>("b", net::MacAddress{2});
    network.connect(a->id(), 0, sw->id(), 0);
    network.connect(b->id(), 0, sw->id(), 1);
    sw->add_fdb_entry(net::MacAddress{2}, 1);
  }

  void send_burst(int n) {
    for (int i = 0; i < n; ++i) {
      net::Frame f;
      f.dst = net::MacAddress{2};
      f.payload.resize(100);
      a->send(std::move(f));
    }
    simulator.run();
  }
};

TEST(ObsIntegration, HopBreakdownSumsToMeasuredLatency) {
  obs::ObsHub hub;
  Rig rig(&hub);
  std::optional<sim::SimTime> delivered_at;
  std::optional<sim::SimTime> created_at;
  rig.b->set_receiver([&](net::Frame f, sim::SimTime at) {
    if (!delivered_at) {
      delivered_at = at;
      created_at = f.created_at;
    }
  });
  // A burst deep enough that later frames actually queue behind earlier
  // transmissions, so the queue hop is non-trivial.
  rig.send_burst(8);

  ASSERT_EQ(hub.deliveries().size(), 8u);
  for (const auto& d : hub.deliveries()) {
    const auto rows = hub.breakdown(d.trace_id);
    ASSERT_GE(rows.size(), 5u) << "trace " << d.trace_id;
    sim::SimTime sum = sim::SimTime::zero();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      sum += rows[i].duration();
      if (i > 0) {
        // Path-ordered rows tile without gaps or overlap.
        EXPECT_EQ(rows[i].start, rows[i - 1].end) << "trace " << d.trace_id;
      }
    }
    EXPECT_EQ(sum, d.latency()) << "trace " << d.trace_id;
    EXPECT_EQ(rows.front().start, d.created_at);
    EXPECT_EQ(rows.back().end, d.delivered_at);
  }
  // The receiver callback and the ledger agree on the first frame.
  ASSERT_TRUE(delivered_at.has_value());
  EXPECT_EQ(hub.deliveries().front().delivered_at, *delivered_at);
  EXPECT_EQ(hub.deliveries().front().created_at, *created_at);
}

// Attaching the hub must change nothing observable: same event count,
// same counters, same delivery times.
TEST(ObsIntegration, TracingDoesNotPerturbTheSimulation) {
  auto run = [](obs::ObsHub* hub) {
    Rig rig(hub);
    std::vector<sim::SimTime> arrivals;
    rig.b->set_receiver(
        [&](net::Frame, sim::SimTime at) { arrivals.push_back(at); });
    rig.send_burst(16);
    return std::tuple{rig.simulator.events_executed(),
                      rig.network.counters().frames_delivered,
                      arrivals};
  };
  obs::ObsHub hub;
  const auto with = run(&hub);
  const auto without = run(nullptr);
  EXPECT_EQ(std::get<0>(with), std::get<0>(without));
  EXPECT_EQ(std::get<1>(with), std::get<1>(without));
  EXPECT_EQ(std::get<2>(with), std::get<2>(without));
  EXPECT_EQ(hub.deliveries().size(), 16u);
}

// Two identical runs must export byte-identical artifacts. Exports are
// rendered inside the run, while the bound counter owners are alive.
TEST(ObsIntegration, ExportsAreRunToRunDeterministic) {
  struct Artifacts {
    std::string chrome, spans, prom, csv;
    std::size_t span_count = 0;
    std::uint64_t unmatched = 0;
  };
  auto run = [] {
    obs::ObsHub hub;
    Rig rig(&hub);
    rig.network.register_metrics(hub);
    rig.sw->register_metrics(hub);
    rig.a->register_metrics(hub);
    rig.b->register_metrics(hub);
    rig.send_burst(12);
    return Artifacts{obs::chrome_trace_json(hub.tracer()),
                     obs::spans_csv(hub.tracer()),
                     hub.metrics().to_prometheus(),
                     hub.metrics().to_csv(),
                     hub.tracer().spans().size(),
                     hub.tracer().unmatched_closes()};
  };
  const auto a1 = run();
  const auto a2 = run();
  EXPECT_EQ(a1.chrome, a2.chrome);
  EXPECT_EQ(a1.spans, a2.spans);
  EXPECT_EQ(a1.prom, a2.prom);
  EXPECT_EQ(a1.csv, a2.csv);
  EXPECT_GT(a1.span_count, 0u);
  EXPECT_EQ(a1.unmatched, 0u);
  EXPECT_NE(a1.prom.find("steelnet_switch_frames_forwarded{node=\"sw\"} 12"),
            std::string::npos);
}

TEST(ObsIntegration, SnapshotterSamplesOnSimTime) {
  obs::ObsHub hub;
  Rig rig(&hub);
  rig.network.register_metrics(hub);
  obs::Snapshotter snap(rig.simulator, hub.metrics(), 10_us);
  for (int i = 0; i < 4; ++i) {
    net::Frame f;
    f.dst = net::MacAddress{2};
    f.payload.resize(100);
    rig.a->send(std::move(f));
  }
  rig.simulator.run_until(50_us);
  EXPECT_EQ(snap.snapshots_taken(), 5u);
  const auto csv = snap.to_csv();
  EXPECT_NE(csv.find("10000,network,net,frames_delivered"),
            std::string::npos);
  // Identical scenario, identical series.
  obs::ObsHub hub2;
  Rig rig2(&hub2);
  rig2.network.register_metrics(hub2);
  obs::Snapshotter snap2(rig2.simulator, hub2.metrics(), 10_us);
  for (int i = 0; i < 4; ++i) {
    net::Frame f;
    f.dst = net::MacAddress{2};
    f.payload.resize(100);
    rig2.a->send(std::move(f));
  }
  rig2.simulator.run_until(50_us);
  EXPECT_EQ(snap2.to_csv(), csv);
}

// Frames that never reach an application (dropped at a full egress queue)
// must not leave dangling open hops behind.
TEST(ObsIntegration, QueueDropsCloseTheirHops) {
  obs::ObsHub hub;
  Rig rig(&hub, /*queue_capacity=*/2);
  // Two senders converge on b's switch port: ingress at twice the egress
  // rate overflows the 2-frame queue.
  auto& c = rig.network.add_node<net::HostNode>("c", net::MacAddress{3});
  rig.network.connect(c.id(), 0, rig.sw->id(), 2);
  for (int i = 0; i < 32; ++i) {
    net::Frame f;
    f.dst = net::MacAddress{2};
    f.payload.resize(100);
    net::Frame g = f;
    rig.a->send(std::move(f));
    c.send(std::move(g));
  }
  rig.simulator.run();
  EXPECT_GT(rig.sw->counters().frames_dropped_overflow.value(), 0u);
  EXPECT_LT(hub.deliveries().size(), 64u);
  EXPECT_EQ(hub.tracer().unmatched_closes(), 0u);
  for (const auto& d : hub.deliveries()) {
    sim::SimTime sum = sim::SimTime::zero();
    for (const auto& r : hub.breakdown(d.trace_id)) sum += r.duration();
    EXPECT_EQ(sum, d.latency());
  }
}

}  // namespace
}  // namespace steelnet
