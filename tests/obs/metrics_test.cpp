#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace steelnet::obs {
namespace {

TEST(Counter, BehavesLikeUint64) {
  Counter c;
  EXPECT_EQ(c, 0u);
  ++c;
  c += 3;
  c.inc();
  EXPECT_EQ(c, 5u);
  EXPECT_EQ(c.value(), 5u);
  const std::uint64_t as_int = c;  // implicit conversion keeps shims working
  EXPECT_EQ(as_int, 5u);
}

TEST(MetricsRegistry, OwnedInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.make_counter({"n1", "mod", "hits"});
  Gauge& g = reg.make_gauge({"n1", "mod", "depth"});
  c += 7;
  g.set(2.5);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  // Path order: "n1/mod/depth" < "n1/mod/hits".
  EXPECT_EQ(samples[0].path.name, "depth");
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].value, 2.5);
  EXPECT_EQ(samples[1].path.name, "hits");
  EXPECT_EQ(samples[1].kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(samples[1].value, 7.0);
}

TEST(MetricsRegistry, BoundInstrumentsReadTheOwnerValue) {
  MetricsRegistry reg;
  std::uint64_t raw = 0;
  Counter migrated;
  reg.bind_counter({"sw0", "switch", "frames_in"}, &raw);
  reg.bind_counter({"sw0", "switch", "drops"}, &migrated);
  reg.bind_gauge({"sw0", "switch", "load"}, [&raw] {
    return static_cast<double>(raw) / 2.0;
  });
  raw = 10;
  migrated += 3;
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);    // drops
  EXPECT_DOUBLE_EQ(samples[1].value, 10.0);   // frames_in
  EXPECT_DOUBLE_EQ(samples[2].value, 5.0);    // load
}

TEST(MetricsRegistry, DuplicatePathThrows) {
  MetricsRegistry reg;
  reg.make_counter({"n", "m", "x"});
  EXPECT_THROW(reg.make_counter({"n", "m", "x"}), std::invalid_argument);
  EXPECT_THROW(reg.make_gauge({"n", "m", "x"}), std::invalid_argument);
  std::uint64_t v = 0;
  EXPECT_THROW(reg.bind_counter({"n", "m", "x"}, &v), std::invalid_argument);
  EXPECT_TRUE(reg.contains({"n", "m", "x"}));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, EmptyLabelSegmentThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.make_counter({"", "m", "x"}), std::invalid_argument);
  EXPECT_THROW(reg.make_counter({"n", "", "x"}), std::invalid_argument);
  EXPECT_THROW(reg.make_counter({"n", "m", ""}), std::invalid_argument);
}

TEST(MetricsRegistry, NullSourcesThrow) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.bind_counter({"n", "m", "a"},
                                static_cast<const std::uint64_t*>(nullptr)),
               std::invalid_argument);
  EXPECT_THROW(reg.bind_counter({"n", "m", "b"},
                                static_cast<const Counter*>(nullptr)),
               std::invalid_argument);
  EXPECT_THROW(reg.bind_gauge({"n", "m", "c"}, nullptr),
               std::invalid_argument);
}

TEST(MetricsRegistry, HistogramSnapshot) {
  MetricsRegistry reg;
  sim::Histogram& h = reg.make_histogram({"n", "m", "lat"}, 0.0, 100.0, 10);
  h.add(5.0);
  h.add(15.0);
  const auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricKind::kHistogram);
  ASSERT_NE(samples[0].hist, nullptr);
  EXPECT_EQ(samples[0].hist->count(), 2u);
}

// Identical registration + mutation histories must render byte-identical
// exports: the registry walks a std::map, not insertion order.
TEST(MetricsRegistry, ExportsAreDeterministic) {
  auto build = [](MetricsRegistry& reg) {
    reg.make_counter({"b", "mod", "x"}) += 2;
    reg.make_counter({"a", "mod", "y"}) += 1;
    reg.make_gauge({"a", "mod", "g"}).set(0.5);
  };
  MetricsRegistry r1, r2;
  build(r1);
  build(r2);
  EXPECT_EQ(r1.to_prometheus(), r2.to_prometheus());
  EXPECT_EQ(r1.to_csv(), r2.to_csv());
  // Path order regardless of registration order.
  const auto s = r1.snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].path.full(), "a/mod/g");
  EXPECT_EQ(s[1].path.full(), "a/mod/y");
  EXPECT_EQ(s[2].path.full(), "b/mod/x");
}

TEST(MetricsRegistry, PrometheusShape) {
  MetricsRegistry reg;
  reg.make_counter({"vplc1", "host", "sent"}) += 4;
  const auto text = reg.to_prometheus();
  EXPECT_NE(text.find("steelnet_host_sent{node=\"vplc1\"} 4"),
            std::string::npos);
}

}  // namespace
}  // namespace steelnet::obs
