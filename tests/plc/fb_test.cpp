#include "plc/function_blocks.hpp"

#include <gtest/gtest.h>

namespace steelnet::plc {
namespace {

using namespace steelnet::sim::literals;

TEST(Ton, DelaysRisingEdge) {
  Ton t(10_ms);
  EXPECT_FALSE(t.update(true, 0_ms));
  EXPECT_FALSE(t.update(true, 5_ms));
  EXPECT_TRUE(t.update(true, 10_ms));
  EXPECT_TRUE(t.update(true, 50_ms));
}

TEST(Ton, ResetsOnFallingInput) {
  Ton t(10_ms);
  t.update(true, 0_ms);
  t.update(true, 10_ms);
  EXPECT_FALSE(t.update(false, 11_ms));
  // Timer restarts from scratch.
  EXPECT_FALSE(t.update(true, 12_ms));
  EXPECT_FALSE(t.update(true, 21_ms));
  EXPECT_TRUE(t.update(true, 22_ms));
}

TEST(Ton, ElapsedSaturatesAtPreset) {
  Ton t(10_ms);
  t.update(true, 0_ms);
  EXPECT_EQ(t.elapsed(4_ms), 4_ms);
  EXPECT_EQ(t.elapsed(100_ms), 10_ms);
  t.update(false, 101_ms);
  EXPECT_EQ(t.elapsed(102_ms), 0_ms);
}

TEST(Tof, HoldsAfterFallingEdge) {
  Tof t(10_ms);
  EXPECT_TRUE(t.update(true, 0_ms));
  EXPECT_TRUE(t.update(false, 1_ms));   // holding
  EXPECT_TRUE(t.update(false, 10_ms));  // still within delay
  EXPECT_FALSE(t.update(false, 12_ms));
}

TEST(Tof, RetriggeredByNewPulse) {
  Tof t(10_ms);
  t.update(true, 0_ms);
  t.update(false, 1_ms);
  t.update(true, 5_ms);   // re-trigger
  t.update(false, 6_ms);  // new falling edge
  EXPECT_TRUE(t.update(false, 15_ms));
  EXPECT_FALSE(t.update(false, 17_ms));
}

TEST(Ctu, CountsRisingEdgesOnly) {
  Ctu c(3);
  EXPECT_FALSE(c.update(true, false));
  EXPECT_FALSE(c.update(true, false));  // held high: no new edge
  EXPECT_FALSE(c.update(false, false));
  EXPECT_FALSE(c.update(true, false));
  EXPECT_FALSE(c.update(false, false));
  EXPECT_TRUE(c.update(true, false));
  EXPECT_EQ(c.value(), 3u);
}

TEST(Ctu, ResetClearsValue) {
  Ctu c(2);
  c.update(true, false);
  c.update(false, false);
  c.update(true, false);
  EXPECT_TRUE(c.q());
  c.update(false, true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(c.q());
}

TEST(RTrig, FiresOncePerEdge) {
  RTrig r;
  EXPECT_TRUE(r.update(true));
  EXPECT_FALSE(r.update(true));
  EXPECT_FALSE(r.update(false));
  EXPECT_TRUE(r.update(true));
}

TEST(Pid, ProportionalOnly) {
  Pid pid({.kp = 2.0, .ki = 0, .kd = 0, .out_min = -100, .out_max = 100});
  EXPECT_DOUBLE_EQ(pid.update(10, 5, 0.1), 10.0);
  EXPECT_DOUBLE_EQ(pid.update(10, 12, 0.1), -4.0);
}

TEST(Pid, IntegralAccumulates) {
  Pid pid({.kp = 0, .ki = 1.0, .kd = 0, .out_min = -100, .out_max = 100});
  EXPECT_NEAR(pid.update(1, 0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(pid.update(1, 0, 1.0), 2.0, 1e-12);
}

TEST(Pid, OutputClampedAndAntiWindup) {
  Pid pid({.kp = 0, .ki = 10.0, .kd = 0, .out_min = 0, .out_max = 5});
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(pid.update(10, 0, 1.0), 5.0);
  }
  // Integral froze at saturation: recovery is immediate when error flips.
  const double recovered = pid.update(-10, 0, 1.0);
  EXPECT_LT(recovered, 5.0);
}

TEST(Pid, DerivativeKicksOnErrorChange) {
  Pid pid({.kp = 0, .ki = 0, .kd = 1.0, .out_min = -100, .out_max = 100});
  EXPECT_DOUBLE_EQ(pid.update(0, 0, 0.1), 0.0);  // first call: no d
  EXPECT_NEAR(pid.update(1, 0, 0.1), 10.0, 1e-12);  // derror/dt = 1/0.1
}

TEST(Pid, ResetClearsState) {
  Pid pid({.kp = 0, .ki = 1.0, .kd = 0, .out_min = -100, .out_max = 100});
  pid.update(5, 0, 1.0);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  EXPECT_NEAR(pid.update(1, 0, 1.0), 1.0, 1e-12);
}

}  // namespace
}  // namespace steelnet::plc
