// Cross-module integration: PLC program -> cyclic protocol -> network ->
// I/O device -> physical process, plus the hardware-redundancy baseline.
#include <gtest/gtest.h>

#include "net/switch_node.hpp"
#include "plc/plc.hpp"
#include "plc/redundancy.hpp"
#include "process/process.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet::plc {
namespace {

using namespace steelnet::sim::literals;

/// Runs the belt unconditionally: Q0 (motor) = NOT M0, and marker M0 is
/// never set. (Input bits all map to real sensor bytes, so they are not
/// usable as constants.)
IlProgram motor_on_program() {
  return IlProgram("motor-on", {
      {IlOp::kLdn, Area::kMarker, 0},
      {IlOp::kSt, Area::kOutput, 0},
  });
}

struct PlantFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::HostNode* plc_host;
  net::HostNode* dev_host;
  std::unique_ptr<profinet::CyclicController> controller;
  std::unique_ptr<profinet::IoDevice> device;
  process::Conveyor conveyor{{.length_m = 1.0, .max_speed_mps = 2.0}};
  std::unique_ptr<sim::PeriodicTask> stepper;

  PlantFixture() {
    auto& sw = network.add_node<net::SwitchNode>("sw");
    plc_host = &network.add_node<net::HostNode>("plc", net::MacAddress{0xA});
    dev_host = &network.add_node<net::HostNode>("dev", net::MacAddress{0xB});
    network.connect(plc_host->id(), 0, sw.id(), 0);
    network.connect(dev_host->id(), 0, sw.id(), 1);
    profinet::ControllerConfig cfg;
    cfg.device_mac = dev_host->mac();
    controller = std::make_unique<profinet::CyclicController>(*plc_host, cfg);
    device = std::make_unique<profinet::IoDevice>(*dev_host);
    stepper = process::bind_process(*device, conveyor, simulator);
  }
};

TEST(PlcIntegration, ProgramDrivesPhysicalProcess) {
  PlantFixture fx;
  Plc plc(*fx.controller, motor_on_program());
  // The IL program sets the motor bit (Q0); the speed setpoint lives in
  // output bytes 1..2 (bits 8..23), pre-loaded with 2000 mm/s. scan()
  // never touches those bits, so they persist across cycles.
  const std::uint16_t speed = 2000;
  for (int b = 0; b < 16; ++b) {
    plc.image().outputs[std::size_t(8 + b)] = (speed >> b) & 1;
  }
  plc.start();
  fx.simulator.run_until(2_s);
  EXPECT_GT(plc.scans(), 500u);
  EXPECT_TRUE(fx.conveyor.motor_on());
  EXPECT_GT(fx.conveyor.items_completed(), 2u);
}

TEST(PlcIntegration, WatchdogHaltsPlantWhenPlcDies) {
  PlantFixture fx;
  Plc plc(*fx.controller, motor_on_program());
  const std::uint16_t speed = 2000;
  for (int b = 0; b < 16; ++b) {
    plc.image().outputs[std::size_t(8 + b)] = (speed >> b) & 1;
  }
  plc.start();
  fx.simulator.run_until(1_s);
  ASSERT_TRUE(fx.conveyor.motor_on());
  plc.stop();
  fx.simulator.run_until(1_s + 100_ms);
  EXPECT_FALSE(fx.conveyor.motor_on());  // safe state reached
  const double pos = fx.conveyor.position_m();
  fx.simulator.run_until(3_s);
  EXPECT_DOUBLE_EQ(fx.conveyor.position_m(), pos);  // belt frozen
}

struct RedundantFixture : PlantFixture {
  net::HostNode* standby_host;
  std::unique_ptr<profinet::CyclicController> standby;

  RedundantFixture() {
    auto& sw = dynamic_cast<net::SwitchNode&>(network.node(0));
    standby_host =
        &network.add_node<net::HostNode>("plc-b", net::MacAddress{0xC});
    network.connect(standby_host->id(), 0, sw.id(), 2);
    profinet::ControllerConfig cfg;
    cfg.device_mac = dev_host->mac();
    standby =
        std::make_unique<profinet::CyclicController>(*standby_host, cfg);
  }
};

TEST(PlcIntegration, RedundantPairSwitchesOverWithinVendorWindow) {
  RedundantFixture fx;
  RedundancyConfig rcfg;
  rcfg.heartbeat = 10_ms;
  rcfg.miss_threshold = 3;
  rcfg.switchover_delay = 100_ms;
  RedundantPlcPair pair(*fx.controller, *fx.standby, rcfg, fx.simulator);
  pair.start();
  fx.simulator.run_until(500_ms);
  ASSERT_EQ(fx.controller->state(), profinet::ControllerState::kRunning);

  pair.fail_primary();
  fx.simulator.run_until(2_s);
  ASSERT_TRUE(pair.switched_over());
  const auto latency = pair.takeover_latency();
  ASSERT_TRUE(latency.has_value());
  // Detection (3 x 10ms + tick granularity) + 100ms role change: inside
  // the vendor-quoted 50..300ms corridor.
  EXPECT_GE(*latency, 50_ms);
  EXPECT_LE(*latency, 300_ms);
  EXPECT_EQ(fx.standby->state(), profinet::ControllerState::kRunning);
}

TEST(PlcIntegration, RedundantPairKeepsDeviceControlled) {
  RedundantFixture fx;
  RedundancyConfig rcfg;
  rcfg.heartbeat = 5_ms;
  rcfg.miss_threshold = 2;
  rcfg.switchover_delay = 60_ms;
  RedundantPlcPair pair(*fx.controller, *fx.standby, rcfg, fx.simulator);
  pair.start();
  fx.simulator.run_until(500_ms);
  pair.fail_primary();
  fx.simulator.run_until(5_s);
  // Device tripped its watchdog during the gap (takeover ~70ms > 3x2ms
  // watchdog) but resumed under the standby.
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
  EXPECT_GE(fx.device->counters().watchdog_trips, 1u);
  // Inputs now flow to the standby.
  EXPECT_GT(fx.standby->counters().cyclic_rx, 0u);
}

TEST(PlcIntegration, NoSwitchoverWithoutFailure) {
  RedundantFixture fx;
  RedundantPlcPair pair(*fx.controller, *fx.standby, RedundancyConfig{},
                        fx.simulator);
  pair.start();
  fx.simulator.run_until(2_s);
  EXPECT_FALSE(pair.switched_over());
  EXPECT_GT(pair.stats().heartbeats, 100u);
  EXPECT_EQ(fx.standby->state(), profinet::ControllerState::kIdle);
}

}  // namespace
}  // namespace steelnet::plc
