#include "plc/il.hpp"

#include <gtest/gtest.h>

namespace steelnet::plc {
namespace {

using namespace steelnet::sim::literals;

TEST(ProcessImage, ByteBitConversion) {
  ProcessImage img(16, 16, 16);
  img.load_input_bytes({0b1010'0001, 0xff});
  EXPECT_TRUE(img.inputs[0]);
  EXPECT_FALSE(img.inputs[1]);
  EXPECT_TRUE(img.inputs[5]);
  EXPECT_TRUE(img.inputs[7]);
  EXPECT_TRUE(img.inputs[8]);
  img.outputs[0] = true;
  img.outputs[9] = true;
  const auto bytes = img.output_bytes(2);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
}

TEST(ProcessImage, ShortInputBytesZeroFill) {
  ProcessImage img(16, 16, 16);
  img.inputs[12] = true;
  img.load_input_bytes({0x01});
  EXPECT_TRUE(img.inputs[0]);
  EXPECT_FALSE(img.inputs[12]);  // beyond provided bytes -> false
}

TEST(IlProgram, AndOrLogic) {
  // Q0 = (I0 AND I1) OR I2
  IlProgram p("logic", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kAnd, Area::kInput, 1},
      {IlOp::kOr, Area::kInput, 2},
      {IlOp::kSt, Area::kOutput, 0},
  });
  ProcessImage img;
  const auto run = [&](bool a, bool b, bool c) {
    img.inputs[0] = a;
    img.inputs[1] = b;
    img.inputs[2] = c;
    p.scan(img, 0_ms);
    return img.outputs[0];
  };
  EXPECT_FALSE(run(false, false, false));
  EXPECT_FALSE(run(true, false, false));
  EXPECT_TRUE(run(true, true, false));
  EXPECT_TRUE(run(false, false, true));
}

TEST(IlProgram, NegatedLoadsAndStores) {
  // Q0 = NOT I0; Q1 = I0 AND NOT I1
  IlProgram p("neg", {
      {IlOp::kLdn, Area::kInput, 0},
      {IlOp::kSt, Area::kOutput, 0},
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kAndn, Area::kInput, 1},
      {IlOp::kSt, Area::kOutput, 1},
  });
  ProcessImage img;
  img.inputs[0] = true;
  img.inputs[1] = false;
  p.scan(img, 0_ms);
  EXPECT_FALSE(img.outputs[0]);
  EXPECT_TRUE(img.outputs[1]);
}

TEST(IlProgram, SetResetLatch) {
  // Classic start/stop latch: SET Q0 when I0, RST Q0 when I1.
  IlProgram p("latch", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kSet, Area::kOutput, 0},
      {IlOp::kLd, Area::kInput, 1},
      {IlOp::kRst, Area::kOutput, 0},
  });
  ProcessImage img;
  img.inputs[0] = true;
  p.scan(img, 0_ms);
  EXPECT_TRUE(img.outputs[0]);
  img.inputs[0] = false;
  p.scan(img, 0_ms);
  EXPECT_TRUE(img.outputs[0]);  // latched
  img.inputs[1] = true;
  p.scan(img, 0_ms);
  EXPECT_FALSE(img.outputs[0]);
}

TEST(IlProgram, TimerDelaysOutput) {
  // Q0 = TON(I0, 10ms)
  IlProgram p("timer", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kTon, Area::kTimer, 0, (10_ms).nanos()},
      {IlOp::kSt, Area::kOutput, 0},
  });
  ProcessImage img;
  img.inputs[0] = true;
  p.scan(img, 0_ms);
  EXPECT_FALSE(img.outputs[0]);
  p.scan(img, 5_ms);
  EXPECT_FALSE(img.outputs[0]);
  p.scan(img, 10_ms);
  EXPECT_TRUE(img.outputs[0]);
}

TEST(IlProgram, CounterCountsScans) {
  // CTU on rising edges of I0, preset 2; Q0 = counter done.
  IlProgram p("count", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kCtu, Area::kCounter, 0, 2},
      {IlOp::kSt, Area::kOutput, 0},
  });
  ProcessImage img;
  img.inputs[0] = true;
  p.scan(img, 0_ms);
  EXPECT_FALSE(img.outputs[0]);
  img.inputs[0] = false;
  p.scan(img, 1_ms);
  img.inputs[0] = true;
  p.scan(img, 2_ms);
  EXPECT_TRUE(img.outputs[0]);
  EXPECT_EQ(p.counter(0).value(), 2u);
}

TEST(IlProgram, MarkersPersistAcrossScans) {
  // M0 latches I0; Q0 = M0.
  IlProgram p("marker", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kSet, Area::kMarker, 0},
      {IlOp::kLd, Area::kMarker, 0},
      {IlOp::kSt, Area::kOutput, 0},
  });
  ProcessImage img;
  img.inputs[0] = true;
  p.scan(img, 0_ms);
  img.inputs[0] = false;
  p.scan(img, 1_ms);
  EXPECT_TRUE(img.outputs[0]);
}

TEST(IlProgram, ValidationRejectsBadPrograms) {
  EXPECT_THROW(IlProgram("empty", {}), std::invalid_argument);
  EXPECT_THROW(IlProgram("store-to-input",
                         {{IlOp::kLd, Area::kInput, 0},
                          {IlOp::kSt, Area::kInput, 1}}),
               std::invalid_argument);
  EXPECT_THROW(IlProgram("oob", {{IlOp::kLd, Area::kInput, 999}}),
               std::invalid_argument);
  EXPECT_THROW(IlProgram("ton-no-preset",
                         {{IlOp::kLd, Area::kInput, 0},
                          {IlOp::kTon, Area::kTimer, 0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(IlProgram("ctu-no-preset",
                         {{IlOp::kLd, Area::kInput, 0},
                          {IlOp::kCtu, Area::kCounter, 0, 0}}),
               std::invalid_argument);
}

TEST(IlProgram, ScanCountTracked) {
  IlProgram p("count-scans", {{IlOp::kLd, Area::kInput, 0},
                              {IlOp::kSt, Area::kOutput, 0}});
  ProcessImage img;
  for (int i = 0; i < 5; ++i) p.scan(img, 1_ms * i);
  EXPECT_EQ(p.scans(), 5u);
}

TEST(IlProgram, XorOperation) {
  IlProgram p("xor", {
      {IlOp::kLd, Area::kInput, 0},
      {IlOp::kXor, Area::kInput, 1},
      {IlOp::kSt, Area::kOutput, 0},
  });
  ProcessImage img;
  img.inputs[0] = true;
  img.inputs[1] = true;
  p.scan(img, 0_ms);
  EXPECT_FALSE(img.outputs[0]);
  img.inputs[1] = false;
  p.scan(img, 0_ms);
  EXPECT_TRUE(img.outputs[0]);
}

}  // namespace
}  // namespace steelnet::plc
