#include <gtest/gtest.h>

#include <sstream>

#include "core/availability.hpp"
#include "core/report.hpp"
#include "core/traffic_mix.hpp"

namespace steelnet::core {
namespace {

using namespace steelnet::sim::literals;

TEST(Availability, SixNinesIs31point5Seconds) {
  const auto dt = downtime_per_year(0.999999);
  EXPECT_NEAR(dt.seconds(), 31.536, 0.01);  // the paper rounds to 31.5 s
}

TEST(Availability, NinesConversionsRoundTrip) {
  for (double nines : {2.0, 3.0, 4.0, 5.0, 6.0}) {
    EXPECT_NEAR(availability_to_nines(nines_to_availability(nines)), nines,
                1e-9);
  }
  EXPECT_NEAR(nines_to_availability(6.0), 0.999999, 1e-12);
}

TEST(Availability, FromDowntime) {
  EXPECT_DOUBLE_EQ(availability_from_downtime(0_s, 100_s), 1.0);
  EXPECT_DOUBLE_EQ(availability_from_downtime(1_s, 100_s), 0.99);
  EXPECT_DOUBLE_EQ(availability_from_downtime(200_s, 100_s), 0.0);
  EXPECT_THROW(availability_from_downtime(1_s, 0_s), std::invalid_argument);
}

TEST(Availability, FailoverMath) {
  // 12 failures/year at 100 ms outage = 1.2 s downtime -> ~7.4 nines.
  const double a = failover_availability(12.0, 100_ms);
  EXPECT_GT(a, nines_to_availability(6.0));
  // 12 failures/year at 55.4 s (worst k8s case in [57]) -> fails hard.
  const double bad = failover_availability(12.0, 55'400_ms);
  EXPECT_LT(bad, nines_to_availability(5.0));
  EXPECT_THROW(failover_availability(-1.0, 1_s), std::invalid_argument);
}

TEST(Availability, RowConstruction) {
  const auto row = make_row("InstaPLC", 8_ms);
  EXPECT_TRUE(row.meets_six_nines);
  const auto hw = make_row("hw-pair", 300_ms);
  EXPECT_TRUE(hw.meets_six_nines);  // 3.6 s < 31.5 s
  const auto k8s = make_row("k8s", 55'400_ms);
  EXPECT_FALSE(k8s.meets_six_nines);
}

TEST(Availability, RangeChecks) {
  EXPECT_THROW(downtime_per_year(1.5), std::invalid_argument);
  EXPECT_THROW(downtime_per_year(-0.1), std::invalid_argument);
}

TEST(TrafficMix, ClassifiesByBytes) {
  FlowStats f;
  f.total_bytes = 5 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kMice);
  f.total_bytes = 600 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
  f.total_bytes = 2ull * 1024 * 1024 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kElephant);
}

TEST(TrafficMix, VplcFlowIsItsOwnClass) {
  FlowStats f;
  f.periodic = true;
  f.open_ended = true;
  f.mean_packet_bytes = 40;
  f.total_bytes = 3ull * 1024 * 1024 * 1024;  // a year of tiny packets
  EXPECT_EQ(classify(f), FlowClass::kDeterministicMicroflow);
  // The bytes-only taxonomy misfiles it as an elephant (§2.3's point).
  EXPECT_EQ(classify_bytes_only(f), FlowClass::kElephant);
}

TEST(TrafficMix, LargePacketPeriodicFlowIsNotMicro) {
  FlowStats f;
  f.periodic = true;
  f.open_ended = true;
  f.mean_packet_bytes = 1400;  // video stream, not control traffic
  f.total_bytes = 100 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
}

TEST(TrafficMix, BoundaryBytesExactlyAtThresholds) {
  const ClassifierThresholds t;
  FlowStats f;
  // Exactly at mice_max_bytes is still a mouse (boundary inclusive) ...
  f.total_bytes = t.mice_max_bytes;
  EXPECT_EQ(classify(f), FlowClass::kMice);
  // ... one byte past it is medium.
  f.total_bytes = t.mice_max_bytes + 1;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
  // One byte short of the elephant boundary is medium; exactly at it,
  // elephant (boundary inclusive).
  f.total_bytes = t.elephant_min_bytes - 1;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
  f.total_bytes = t.elephant_min_bytes;
  EXPECT_EQ(classify(f), FlowClass::kElephant);
}

TEST(TrafficMix, MicroPacketCeilingBoundary) {
  const ClassifierThresholds t;
  FlowStats f;
  f.periodic = true;
  f.open_ended = true;
  f.total_bytes = 100 * 1024;
  // Exactly at the §2.3 payload ceiling: still a microflow.
  f.mean_packet_bytes = t.micro_packet_max_bytes;
  EXPECT_EQ(classify(f), FlowClass::kDeterministicMicroflow);
  // One byte over: falls back to the byte taxonomy.
  f.mean_packet_bytes = t.micro_packet_max_bytes + 1;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
}

TEST(TrafficMix, ElephantSizedPeriodicOpenEndedFlowIsMicro) {
  // §2.3's central case: a never-ending cyclic control flow accumulates
  // elephant-scale bytes, yet must not classify as an elephant.
  FlowStats f;
  f.periodic = true;
  f.open_ended = true;
  f.mean_packet_bytes = 50;
  f.total_bytes = 5ull * 1024 * 1024 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kDeterministicMicroflow);
  EXPECT_EQ(classify_bytes_only(f), FlowClass::kElephant);
}

TEST(TrafficMix, ClassifyBytesOnlyDivergesOnlyOnMicroflows) {
  // classify and classify_bytes_only agree unless the microflow triple
  // (periodic, open-ended, tiny packets) holds -- each leg alone is not
  // enough to diverge.
  const ClassifierThresholds t;
  FlowStats f;
  f.total_bytes = 100 * 1024;
  f.mean_packet_bytes = 50;
  for (int mask = 0; mask < 4; ++mask) {
    f.periodic = (mask & 1) != 0;
    f.open_ended = (mask & 2) != 0;
    if (f.periodic && f.open_ended) continue;
    EXPECT_EQ(classify(f, t), classify_bytes_only(f, t));
  }
  f.periodic = true;
  f.open_ended = true;
  EXPECT_NE(classify(f, t), classify_bytes_only(f, t));
}

TEST(TrafficMix, TabulateHonorsCustomThresholds) {
  // Scaled thresholds (as the flowmon measured window uses): a 2 MB flow
  // is an elephant once elephant_min_bytes drops to 1 MB.
  ClassifierThresholds scaled;
  scaled.elephant_min_bytes = 1024 * 1024;
  FlowStats f;
  f.total_bytes = 2 * 1024 * 1024;
  EXPECT_EQ(classify(f), FlowClass::kMedium);
  EXPECT_EQ(classify(f, scaled), FlowClass::kElephant);
  const auto rows = tabulate_mix({f}, scaled);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].klass, "elephant");
}

TEST(CsvWriter, EscapesAndPads) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"quote\"inside"});
  const auto s = csv.to_string();
  EXPECT_NE(s.find("a,b\n"), std::string::npos);
  EXPECT_NE(s.find("plain,\"with,comma\"\n"), std::string::npos);
  // Embedded quote doubled, short row padded to the header width.
  EXPECT_NE(s.find("\"quote\"\"inside\",\n"), std::string::npos);
}

TEST(TrafficMix, GeneratedMixHasAllClasses) {
  const auto flows = generate_mix(MixSpec{});
  const auto rows = tabulate_mix(flows);
  ASSERT_EQ(rows.size(), 4u);
  std::size_t total = 0;
  double share = 0;
  for (const auto& r : rows) {
    total += r.count;
    share += r.share_of_flows;
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(TrafficMix, MicroflowsMisclassifiedByBytesOnly) {
  MixSpec spec;
  spec.observation = 3600_s;
  const auto flows = generate_mix(spec);
  for (const auto& r : tabulate_mix(flows)) {
    if (r.klass == "deterministic-microflow") {
      EXPECT_EQ(r.count, 80u);
      // Over an hour every vPLC flow has outgrown the mice bucket.
      EXPECT_EQ(r.misclassified_by_bytes_only, 80u);
    } else {
      EXPECT_EQ(r.misclassified_by_bytes_only, 0u);
    }
  }
}

TEST(TrafficMix, DeterministicPerSeed) {
  const auto a = generate_mix(MixSpec{});
  const auto b = generate_mix(MixSpec{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].total_bytes, b[i].total_bytes);
  }
}

TEST(TextTable, FormatsAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, NumberHelpers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.5, 1), "50.0%");
}

TEST(AsciiCdf, RendersMonotonePlot) {
  sim::SampleSet s;
  for (int i = 0; i < 1000; ++i) s.add(double(i % 100));
  const auto plot = ascii_cdf(s, "us");
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("us"), std::string::npos);
  sim::SampleSet empty;
  EXPECT_EQ(ascii_cdf(empty, "us"), "(no samples)\n");
}

TEST(QuantileTable, RendersAllSeries) {
  sim::SampleSet a, b;
  for (int i = 1; i <= 100; ++i) {
    a.add(i);
    b.add(i * 2);
  }
  const auto s = quantile_table({{"fast", &a}, {"slow", &b}}, "ms");
  EXPECT_NE(s.find("fast"), std::string::npos);
  EXPECT_NE(s.find("slow"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(AsciiTimeseries, RendersBars) {
  sim::TimeSeriesBinner b(50_ms);
  for (int i = 0; i < 40; ++i) b.record(50_ms * i, i < 20 ? 40.0 : 20.0);
  const auto s = ascii_timeseries(b.bins(), "packets/50ms");
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("packets/50ms"), std::string::npos);
  EXPECT_EQ(ascii_timeseries({}, "x"), "(no data)\n");
}

}  // namespace
}  // namespace steelnet::core
