// core::SweepRunner -- the parallel seed-sweep engine's contract:
//   * slot-per-task storage: results land in task order regardless of
//     which worker ran them, so reductions are worker-count independent,
//   * jobs semantics: 0 = hardware concurrency, clamped to the task
//     count, never below 1,
//   * a throwing task surfaces as that slot's error string (the sweep
//     neither hangs nor loses the other slots),
//   * parallel runs produce exactly the sequential results.
#include "core/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace steelnet::core {
namespace {

TEST(SweepRunner, EffectiveJobsClampsToTasksAndNeverBelowOne) {
  EXPECT_EQ(effective_jobs(1, 100), 1u);
  EXPECT_EQ(effective_jobs(8, 3), 3u);   // never more workers than tasks
  EXPECT_EQ(effective_jobs(4, 4), 4u);
  EXPECT_GE(effective_jobs(0, 100), 1u);  // 0 = hardware concurrency
  EXPECT_GE(effective_jobs(0, 1), 1u);
  EXPECT_EQ(effective_jobs(8, 0), 1u);    // empty sweep still well-defined
}

TEST(SweepRunner, ShardsPerTaskDividesTheAutoJobBudget) {
  // An explicit job count is the caller's business -- shards never
  // override it.
  EXPECT_EQ(effective_jobs(4, 100, 8), 4u);
  // Auto mode (0) divides hardware concurrency by the per-task shard
  // count so sweep workers x shard threads stays ~= the core count.
  const std::size_t solo = effective_jobs(0, 1000, 1);
  const std::size_t wide = effective_jobs(0, 1000, 64);
  EXPECT_GE(solo, wide);
  EXPECT_EQ(wide, 1u);  // 64 shards/task swamps any realistic machine
  // shards = 0 is treated as 1, and the task clamp still applies last.
  EXPECT_EQ(effective_jobs(0, 1000, 0), solo);
  EXPECT_EQ(effective_jobs(8, 2, 4), 2u);
  // The runner carries the setting for bench drivers to forward.
  EXPECT_EQ(SweepRunner(0, 4).shards_per_task(), 4u);
  EXPECT_EQ(SweepRunner{}.shards_per_task(), 1u);
}

TEST(SweepRunner, ResultsLandInTaskOrderForAnyJobCount) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const auto slots = SweepRunner{jobs}.run(
        32, [](std::size_t i) { return i * i; });
    ASSERT_EQ(slots.size(), 32u);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      ASSERT_TRUE(slots[i].ok()) << slots[i].error;
      EXPECT_EQ(*slots[i].value, i * i);
    }
  }
}

TEST(SweepRunner, EmptySweepReturnsNoSlots) {
  const auto slots =
      SweepRunner{8}.run(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(slots.empty());
}

TEST(SweepRunner, EveryTaskRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  const auto slots = SweepRunner{8}.run(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  ASSERT_EQ(slots.size(), hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(SweepRunner, ThrowingTaskSurfacesAsSlotErrorNotAHang) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const auto slots = SweepRunner{jobs}.run(8, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("seed 3 exploded");
      return int(i);
    });
    ASSERT_EQ(slots.size(), 8u);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (i == 3) {
        EXPECT_FALSE(slots[i].ok());
        EXPECT_EQ(slots[i].error, "seed 3 exploded");
      } else {
        ASSERT_TRUE(slots[i].ok()) << slots[i].error;
        EXPECT_EQ(*slots[i].value, int(i));
      }
    }
  }
}

TEST(SweepRunner, NonStdExceptionBecomesGenericSlotError) {
  const auto slots = SweepRunner{1}.run(1, [](std::size_t) -> int {
    throw 42;  // not a std::exception
  });
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_FALSE(slots[0].ok());
  EXPECT_EQ(slots[0].error, "unknown exception");
}

TEST(SweepRunner, ParallelMatchesSequentialExactly) {
  // The determinism contract behind the byte-identical artifact
  // guarantee: per-task results depend only on the task index, so the
  // slot vector is invariant under the job count.
  auto fn = [](std::size_t i) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the index
    for (int round = 0; round < 1000; ++round) {
      h ^= i + std::uint64_t(round);
      h *= 1099511628211ULL;
    }
    return h;
  };
  const auto seq = SweepRunner{1}.run(64, fn);
  const auto par = SweepRunner{8}.run(64, fn);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(seq[i].ok());
    ASSERT_TRUE(par[i].ok());
    EXPECT_EQ(*seq[i].value, *par[i].value);
  }
}

TEST(SweepRunner, WeightedOrderSortsHeaviestFirstWithStableTies) {
  // (weight desc, index asc): LPT dispatch order for run_weighted.
  EXPECT_EQ(weighted_order({5, 9, 9, 1}),
            (std::vector<std::size_t>{1, 2, 0, 3}));
  // All-equal weights keep the natural order -- the no-signal case must
  // not shuffle anything.
  EXPECT_EQ(weighted_order({7, 7, 7}),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(weighted_order({}).empty());
}

TEST(SweepRunner, RunWeightedExecutesHeaviestFirstAtJobsOne) {
  // At jobs=1 the dispatch order is observable as the execution order.
  std::vector<std::size_t> executed;
  const std::vector<std::uint64_t> weights{1, 50, 10, 50};
  const auto slots = SweepRunner{1}.run_weighted(weights, [&](std::size_t i) {
    executed.push_back(i);
    return i;
  });
  EXPECT_EQ(executed, (std::vector<std::size_t>{1, 3, 2, 0}));
  // ...but slots still land in task order.
  ASSERT_EQ(slots.size(), 4u);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i].ok());
    EXPECT_EQ(*slots[i].value, i);
  }
}

TEST(SweepRunner, RunWeightedMatchesRunForAnyJobCount) {
  auto fn = [](std::size_t i) { return i * 31 + 7; };
  std::vector<std::uint64_t> weights(48);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = (i * 2654435761u) % 100;  // arbitrary deterministic skew
  }
  const auto plain = SweepRunner{1}.run(48, fn);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4},
                                 std::size_t{8}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    const auto weighted = SweepRunner{jobs}.run_weighted(weights, fn);
    ASSERT_EQ(weighted.size(), plain.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      ASSERT_TRUE(weighted[i].ok()) << weighted[i].error;
      EXPECT_EQ(*weighted[i].value, *plain[i].value);
    }
  }
}

}  // namespace
}  // namespace steelnet::core
