#include "host/host_path.hpp"

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace steelnet::host {
namespace {

using namespace steelnet::sim::literals;

TEST(Samplers, FixedIsFixed) {
  FixedSampler s(3_us);
  EXPECT_EQ(s.sample(64), 3_us);
  EXPECT_EQ(s.sample(9000), 3_us);
}

TEST(Samplers, NormalRespectsFloor) {
  NormalSampler s(100_ns, 500_ns, 50_ns, 42);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.sample(64), 50_ns);
}

TEST(Samplers, NormalMeanApproximate) {
  NormalSampler s(10_us, 100_ns, 0_ns, 42);
  sim::OnlineStats st;
  for (int i = 0; i < 20000; ++i) st.add(double(s.sample(64).nanos()));
  EXPECT_NEAR(st.mean(), 10'000, 50);
}

TEST(Samplers, LognormalMedianApproximate) {
  LognormalSampler s(5_us, 0.3, 7);
  sim::SampleSet set;
  for (int i = 0; i < 20000; ++i) set.add(double(s.sample(64).nanos()));
  EXPECT_NEAR(set.median(), 5000, 200);
  EXPECT_THROW(LognormalSampler(0_ns, 0.3, 1), std::invalid_argument);
}

TEST(Samplers, ParetoTailMostlyBase) {
  ParetoTailSampler s(1_us, 0.01, 10_us, 1.5, 11);
  int excursions = 0;
  for (int i = 0; i < 10000; ++i) {
    if (s.sample(64) > 1_us) ++excursions;
  }
  EXPECT_NEAR(excursions, 100, 60);
  EXPECT_THROW(ParetoTailSampler(1_us, 1.5, 10_us, 1.5, 1),
               std::invalid_argument);
}

TEST(Samplers, ChainSums) {
  ChainSampler c;
  c.add(std::make_unique<FixedSampler>(1_us));
  c.add(std::make_unique<FixedSampler>(2_us));
  EXPECT_EQ(c.sample(64), 3_us);
  EXPECT_EQ(c.stages(), 2u);
}

TEST(Samplers, ContentionScalesWithLoad) {
  ContentionScaledSampler s(std::make_unique<FixedSampler>(1_us), 0.1, 0.0,
                            3);
  EXPECT_EQ(s.sample(64), 1_us);  // load 1: unchanged
  s.set_load(11);                 // 1 + 0.1*10 = 2x
  EXPECT_EQ(s.sample(64), 2_us);
  s.set_load(0);  // clamps to 1
  EXPECT_EQ(s.load(), 1u);
  EXPECT_THROW(ContentionScaledSampler(nullptr, 0.1, 0.0, 3),
               std::invalid_argument);
}

TEST(Samplers, ContentionJitterGrowsWithLoad) {
  ContentionScaledSampler s(std::make_unique<FixedSampler>(10_us), 0.0, 0.02,
                            5);
  sim::OnlineStats low, high;
  for (int i = 0; i < 5000; ++i) low.add(double(s.sample(64).nanos()));
  s.set_load(25);
  for (int i = 0; i < 5000; ++i) high.add(double(s.sample(64).nanos()));
  EXPECT_LT(low.stddev(), 1.0);  // load 1: no jitter at all
  EXPECT_GT(high.stddev(), 100.0);
}

TEST(Pcie, SmallPacketOverheadDominates) {
  PcieModel pcie(PcieConfig{}, 1);
  // The paper (§2.1, [77]): PCIe contributes > 90% of NIC latency for
  // small packets common in industrial automation.
  EXPECT_GT(pcie.overhead_fraction(20), 0.9);
  EXPECT_GT(pcie.overhead_fraction(64), 0.9);
  EXPECT_LT(pcie.overhead_fraction(4096), pcie.overhead_fraction(64));
}

TEST(Pcie, NominalGrowsWithTlpCount) {
  PcieConfig cfg;
  cfg.base = 800_ns;
  cfg.tlp_bytes = 256;
  cfg.per_tlp = 100_ns;
  PcieModel pcie(cfg, 1);
  EXPECT_EQ(pcie.nominal(0), 800_ns);
  EXPECT_EQ(pcie.nominal(256), 800_ns);
  EXPECT_EQ(pcie.nominal(257), 900_ns);
  EXPECT_EQ(pcie.nominal(1024), 800_ns + 300_ns);
  EXPECT_THROW(PcieModel(PcieConfig{.tlp_bytes = 0}, 1),
               std::invalid_argument);
}

TEST(Pcie, SampleJittersAroundNominal) {
  PcieModel pcie(PcieConfig{}, 9);
  sim::OnlineStats st;
  for (int i = 0; i < 10000; ++i) st.add(double(pcie.sample(64).nanos()));
  EXPECT_NEAR(st.mean(), double(pcie.nominal(64).nanos()), 5.0);
  EXPECT_GT(st.stddev(), 10.0);
}

TEST(Kernel, PreemptRtHasTighterTailThanVanilla) {
  KernelModel vanilla(KernelKind::kVanilla, 21);
  KernelModel rt(KernelKind::kPreemptRt, 21);
  sim::SampleSet sv, sr;
  for (int i = 0; i < 50000; ++i) {
    sv.add(double(vanilla.sample(64).nanos()));
    sr.add(double(rt.sample(64).nanos()));
  }
  // §2.1/§3: PREEMPT_RT trades a slightly higher median for much better
  // tail behaviour.
  EXPECT_GT(sr.median(), sv.median());
  EXPECT_LT(sr.percentile(99.99), sv.percentile(99.99));
}

TEST(Kernel, DualKernelBeatsBothTails) {
  KernelModel dual(KernelKind::kDualKernel, 5);
  KernelModel rt(KernelKind::kPreemptRt, 5);
  sim::SampleSet sd, sr;
  for (int i = 0; i < 30000; ++i) {
    sd.add(double(dual.sample(64).nanos()));
    sr.add(double(rt.sample(64).nanos()));
  }
  EXPECT_LT(sd.percentile(99.9), sr.percentile(99.9));
  EXPECT_LT(sd.median(), sr.median());
}

TEST(Kernel, Names) {
  EXPECT_EQ(to_string(KernelKind::kVanilla), "vanilla");
  EXPECT_EQ(to_string(KernelKind::kPreemptRt), "preempt_rt");
  EXPECT_EQ(to_string(KernelKind::kDualKernel), "dual_kernel");
}

TEST(HostPath, IdealIsZero) {
  auto p = HostProfile::ideal();
  EXPECT_EQ(p->sample_rx(64), 0_ns);
  EXPECT_EQ(p->sample_tx(1500), 0_ns);
}

TEST(HostPath, ProfilesOrderedByQuality) {
  auto bare = HostProfile::bare_metal_rt(1);
  auto rt = HostProfile::server_preempt_rt(1);
  auto vm = HostProfile::virtualized_rt(1);
  sim::SampleSet sb, sr, sv;
  for (int i = 0; i < 20000; ++i) {
    sb.add(double(bare->sample_rx(64).nanos()));
    sr.add(double(rt->sample_rx(64).nanos()));
    sv.add(double(vm->sample_rx(64).nanos()));
  }
  EXPECT_LT(sb.median(), sr.median());
  EXPECT_LT(sr.median(), sv.median());
  EXPECT_LT(sb.percentile(99.9), sr.percentile(99.9));
}

TEST(HostPath, LoadIncreasesLatency) {
  auto p = HostProfile::server_preempt_rt(3);
  sim::OnlineStats before, after;
  for (int i = 0; i < 20000; ++i) before.add(double(p->sample_rx(64).nanos()));
  p->set_load(25);
  for (int i = 0; i < 20000; ++i) after.add(double(p->sample_rx(64).nanos()));
  EXPECT_GT(after.mean(), before.mean() * 1.5);
  EXPECT_GT(after.stddev(), before.stddev());
}

TEST(HostPath, ByNameRoundTrip) {
  for (const char* name : {"ideal", "bare_metal_rt", "server_preempt_rt",
                           "server_vanilla", "virtualized_rt"}) {
    EXPECT_NE(HostProfile::by_name(name, 1), nullptr) << name;
  }
  EXPECT_THROW(HostProfile::by_name("quantum", 1), std::invalid_argument);
}

TEST(HostPath, NullSamplerRejected) {
  EXPECT_THROW(HostPath(nullptr, std::make_unique<FixedSampler>(0_ns)),
               std::invalid_argument);
}

}  // namespace
}  // namespace steelnet::host
