#include "ebpf/assembler.hpp"

#include <gtest/gtest.h>

namespace steelnet::ebpf {
namespace {

TEST(Assembler, BuildsSimpleProgram) {
  Assembler a("t");
  a.mov_imm(0, 2).exit();
  const auto p = a.finish();
  EXPECT_EQ(p.name, "t");
  ASSERT_EQ(p.insns.size(), 2u);
  EXPECT_EQ(p.insns[0].op, Op::kMovImm);
  EXPECT_EQ(p.insns[1].op, Op::kExit);
}

TEST(Assembler, RetIsMovPlusExit) {
  Assembler a("t");
  a.ret(XdpVerdict::kTx);
  const auto p = a.finish();
  ASSERT_EQ(p.insns.size(), 2u);
  EXPECT_EQ(p.insns[0].imm, 3);
}

TEST(Assembler, ForwardLabelResolved) {
  Assembler a("t");
  a.mov_imm(2, 5);
  a.jeq_imm(2, 5, "done");
  a.mov_imm(2, 0);
  a.label("done");
  a.ret(XdpVerdict::kPass);
  const auto p = a.finish();
  // jeq at index 1 targets index 3 -> off = 3 - 1 - 1 = 1.
  EXPECT_EQ(p.insns[1].off, 1);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a("t");
  a.ja("nowhere");
  a.exit();
  EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a("t");
  a.label("x");
  EXPECT_THROW(a.label("x"), std::runtime_error);
}

TEST(Assembler, JumpToImmediateNextInsnHasZeroOffset) {
  Assembler a("t");
  a.ja("next");
  a.label("next");
  a.ret(XdpVerdict::kPass);
  const auto p = a.finish();
  EXPECT_EQ(p.insns[0].off, 0);
}

TEST(Assembler, DisassembleIsReadable) {
  const Insn i{Op::kMovImm, 3, 0, 0, 42};
  EXPECT_EQ(disassemble(i), "mov_imm dst=r3 src=r0 off=0 imm=42");
}

}  // namespace
}  // namespace steelnet::ebpf
