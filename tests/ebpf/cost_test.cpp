#include "ebpf/cost.hpp"

#include <gtest/gtest.h>

#include "ebpf/programs.hpp"
#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "sim/stats.hpp"

namespace steelnet::ebpf {
namespace {

net::Frame small_frame() {
  net::Frame f;
  f.payload.assign(32, 0);
  return f;
}

sim::SampleSet run_many(ReflectorVariant v, CostParams costs,
                        std::size_t flows, int n, std::uint64_t seed = 1) {
  auto p = make_reflector(v);
  verify_or_throw(p);
  Vm vm(std::move(p), costs, seed);
  vm.cost_model().set_concurrent_flows(flows);
  sim::SampleSet out;
  for (int i = 0; i < n; ++i) {
    auto f = small_frame();
    const auto r = vm.run(f, sim::SimTime::zero());
    out.add(double(r.exec_time.nanos()));
    vm.ringbuf().drain();
  }
  return out;
}

TEST(CostModel, DeterministicParamsRemoveVariance) {
  const auto costs = CostModel::deterministic(CostParams{});
  const auto s = run_many(ReflectorVariant::kTsRb, costs, 1, 1000);
  EXPECT_EQ(s.min(), s.max());
}

TEST(CostModel, VariantOrderingBaseCheapestRingBufDearest) {
  const CostParams costs{};
  const double base =
      run_many(ReflectorVariant::kBase, costs, 1, 4000).mean();
  const double ts = run_many(ReflectorVariant::kTs, costs, 1, 4000).mean();
  const double tsts =
      run_many(ReflectorVariant::kTsTs, costs, 1, 4000).mean();
  const double tsrb =
      run_many(ReflectorVariant::kTsRb, costs, 1, 4000).mean();
  EXPECT_LT(base, ts);
  EXPECT_LT(ts, tsts);
  EXPECT_LT(tsts, tsrb);
}

TEST(CostModel, RingBufVariantsHaveWiderSpread) {
  const CostParams costs{};
  const auto no_rb = run_many(ReflectorVariant::kTsTs, costs, 1, 8000);
  const auto rb = run_many(ReflectorVariant::kTsRb, costs, 1, 8000);
  const double spread_no_rb = no_rb.percentile(99) - no_rb.percentile(50);
  const double spread_rb = rb.percentile(99) - rb.percentile(50);
  EXPECT_GT(spread_rb, spread_no_rb);
}

TEST(CostModel, MoreFlowsMoreJitter) {
  const CostParams costs{};
  const auto one = run_many(ReflectorVariant::kBase, costs, 1, 8000);
  const auto many = run_many(ReflectorVariant::kBase, costs, 25, 8000);
  sim::SampleSet j1, j25;
  for (double d : one.successive_differences()) j1.add(d);
  for (double d : many.successive_differences()) j25.add(d);
  EXPECT_GT(j25.percentile(90), j1.percentile(90) * 2);
}

TEST(CostModel, FlowsClampToAtLeastOne) {
  CostModel m(CostParams{}, 1);
  m.set_concurrent_flows(0);
  EXPECT_EQ(m.concurrent_flows(), 1u);
}

TEST(CostModel, EnvironmentNoiseNonNegative) {
  CostModel m(CostParams{}, 7);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(m.environment_noise(), 0.0);
}

TEST(CostModel, CallInsnItselfFree) {
  CostModel m(CostParams{}, 1);
  EXPECT_EQ(m.insn_cost(Insn{Op::kCall, 0, 0, 0,
                             std::int64_t(HelperId::kKtimeGetNs)}),
            0.0);
}

TEST(CostModel, SameSeedSameCosts) {
  const CostParams costs{};
  const auto a = run_many(ReflectorVariant::kTsRb, costs, 5, 500, 99);
  const auto b = run_many(ReflectorVariant::kTsRb, costs, 5, 500, 99);
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    EXPECT_EQ(a.raw()[i], b.raw()[i]);
  }
}

}  // namespace
}  // namespace steelnet::ebpf
