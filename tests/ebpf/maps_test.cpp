#include "ebpf/maps.hpp"

#include <gtest/gtest.h>

namespace steelnet::ebpf {
namespace {

TEST(HashMap, LookupMissIsZero) {
  HashMap m;
  EXPECT_EQ(m.lookup(42), 0u);
  EXPECT_FALSE(m.contains(42));
}

TEST(HashMap, UpdateAndLookup) {
  HashMap m;
  EXPECT_TRUE(m.update(1, 100));
  EXPECT_TRUE(m.update(2, 200));
  EXPECT_EQ(m.lookup(1), 100u);
  EXPECT_EQ(m.lookup(2), 200u);
  EXPECT_TRUE(m.update(1, 111));  // overwrite
  EXPECT_EQ(m.lookup(1), 111u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(HashMap, CapacityEnforcedForNewKeysOnly) {
  HashMap m(2);
  EXPECT_TRUE(m.update(1, 1));
  EXPECT_TRUE(m.update(2, 2));
  EXPECT_FALSE(m.update(3, 3));   // full
  EXPECT_TRUE(m.update(1, 99));   // existing key still updatable
  EXPECT_EQ(m.lookup(3), 0u);
}

TEST(HashMap, Erase) {
  HashMap m;
  m.update(5, 50);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.lookup(5), 0u);
}

TEST(HashMap, ZeroCapacityRejected) {
  EXPECT_THROW(HashMap(0), std::invalid_argument);
}

TEST(RingBuffer, OutputAndPopFifo) {
  RingBuffer rb(1024);
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[2] = {9, 8};
  EXPECT_TRUE(rb.output(a, 4));
  EXPECT_TRUE(rb.output(b, 2));
  EXPECT_EQ(rb.produced(), 2u);
  auto r1 = rb.pop();
  EXPECT_EQ(r1.data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  auto r2 = rb.pop();
  EXPECT_EQ(r2.data, (std::vector<std::uint8_t>{9, 8}));
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, DropsWhenFull) {
  RingBuffer rb(32);  // fits two 8B records (8B header each)
  const std::uint8_t d[8] = {};
  EXPECT_TRUE(rb.output(d, 8));
  EXPECT_TRUE(rb.output(d, 8));
  EXPECT_FALSE(rb.output(d, 8));
  EXPECT_EQ(rb.dropped(), 1u);
  rb.pop();
  EXPECT_TRUE(rb.output(d, 8));  // space reclaimed
}

TEST(RingBuffer, DrainEmptiesAndFreesSpace) {
  RingBuffer rb(32);
  const std::uint8_t d[8] = {};
  rb.output(d, 8);
  rb.output(d, 8);
  rb.drain();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.used_bytes(), 0u);
  EXPECT_TRUE(rb.output(d, 8));
}

TEST(RingBuffer, PopEmptyThrows) {
  RingBuffer rb(64);
  EXPECT_THROW(rb.pop(), std::logic_error);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer(0), std::invalid_argument);
}

}  // namespace
}  // namespace steelnet::ebpf
