#include "ebpf/verifier.hpp"

#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "ebpf/programs.hpp"

namespace steelnet::ebpf {
namespace {

Program simple_ret() {
  Assembler a("ok");
  a.ret(XdpVerdict::kPass);
  return a.finish();
}

TEST(Verifier, AcceptsSimpleProgram) {
  const auto r = verify(simple_ret());
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.max_insns_executed, 2u);
}

TEST(Verifier, RejectsEmptyProgram) {
  EXPECT_FALSE(verify(Program{"empty", {}}).ok);
}

TEST(Verifier, RejectsBackwardJump) {
  Program p{"loop",
            {{Op::kMovImm, 0, 0, 0, 0},
             {Op::kJa, 0, 0, -2, 0},  // jump back to insn 0
             {Op::kExit, 0, 0, 0, 0}}};
  const auto r = verify(p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("backward"), std::string::npos);
}

TEST(Verifier, RejectsJumpOutOfRange) {
  Program p{"far", {{Op::kJa, 0, 0, 100, 0}, {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RejectsFallOffEnd) {
  Program p{"fall", {{Op::kMovImm, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RejectsConditionalJumpAsLastInsn) {
  Program p{"cond-end",
            {{Op::kMovImm, 0, 0, 0, 0}, {Op::kJeqImm, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RejectsUninitializedRead) {
  Program p{"uninit",
            {{Op::kMovReg, 0, 5, 0, 0},  // r5 never written
             {Op::kExit, 0, 0, 0, 0}}};
  const auto r = verify(p);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("uninitialized"), std::string::npos);
}

TEST(Verifier, AcceptsReadAfterWriteOnAllPaths) {
  Assembler a("both-paths");
  a.mov_imm(2, 1);
  a.jeq_imm(2, 0, "else");
  a.mov_imm(3, 10);
  a.ja("join");
  a.label("else");
  a.mov_imm(3, 20);
  a.label("join");
  a.mov_reg(0, 3);  // r3 initialized on both paths
  a.exit();
  const auto r = verify(a.finish());
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Verifier, RejectsReadInitializedOnOnePathOnly) {
  Assembler a("one-path");
  a.mov_imm(2, 1);
  a.jeq_imm(2, 0, "join");
  a.mov_imm(3, 10);  // only on fall-through path
  a.label("join");
  a.mov_reg(0, 3);
  a.exit();
  EXPECT_FALSE(verify(a.finish()).ok);
}

TEST(Verifier, RejectsWriteToFramePointer) {
  Program p{"fp", {{Op::kMovImm, 10, 0, 0, 0}, {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RejectsBadStackAccess) {
  {
    Assembler a("pos-stack");
    a.mov_imm(2, 1);
    Program p = a.finish();
    p.insns.push_back({Op::kStStackDw, 0, 2, 8, 0});  // positive offset
    p.insns.push_back({Op::kExit, 0, 0, 0, 0});
    p.insns.insert(p.insns.begin() + 1, {Op::kMovImm, 0, 0, 0, 0});
    EXPECT_FALSE(verify(p).ok);
  }
  {
    Program p{"deep-stack",
              {{Op::kMovImm, 2, 0, 0, 1},
               {Op::kStStackDw, 0, 2, -520, 0},
               {Op::kMovImm, 0, 0, 0, 0},
               {Op::kExit, 0, 0, 0, 0}}};
    EXPECT_FALSE(verify(p).ok);
  }
  {
    Program p{"unaligned",
              {{Op::kMovImm, 2, 0, 0, 1},
               {Op::kStStackDw, 0, 2, -7, 0},
               {Op::kMovImm, 0, 0, 0, 0},
               {Op::kExit, 0, 0, 0, 0}}};
    EXPECT_FALSE(verify(p).ok);
  }
}

TEST(Verifier, RejectsPacketOffsetBeyondBound) {
  Program p{"pkt-far",
            {{Op::kLdPktDw, 2, 0, 2045, 0},
             {Op::kMovImm, 0, 0, 0, 0},
             {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
  Program n{"pkt-neg",
            {{Op::kLdPktDw, 2, 0, -1, 0},
             {Op::kMovImm, 0, 0, 0, 0},
             {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(n).ok);
}

TEST(Verifier, RejectsUnknownHelperAndBadConstants) {
  Program p{"helper",
            {{Op::kCall, 0, 0, 0, 999}, {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
  Program d{"div0",
            {{Op::kMovImm, 0, 0, 0, 1},
             {Op::kDivImm, 0, 0, 0, 0},
             {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(d).ok);
  Program s{"shift",
            {{Op::kMovImm, 0, 0, 0, 1},
             {Op::kLshImm, 0, 0, 0, 64},
             {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(s).ok);
}

TEST(Verifier, RejectsTooLongProgram) {
  Program p{"long", {}};
  for (std::size_t i = 0; i < kMaxInsns + 1; ++i) {
    p.insns.push_back({Op::kMovImm, 0, 0, 0, 0});
  }
  p.insns.push_back({Op::kExit, 0, 0, 0, 0});
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, RegisterOutOfRangeRejected) {
  Program p{"r11", {{Op::kMovImm, 11, 0, 0, 0}, {Op::kExit, 0, 0, 0, 0}}};
  EXPECT_FALSE(verify(p).ok);
}

TEST(Verifier, VerifyOrThrowThrowsWithMessage) {
  EXPECT_THROW(verify_or_throw(Program{"bad", {}}), std::invalid_argument);
  EXPECT_NO_THROW(verify_or_throw(simple_ret()));
}

// Property: every program the library ships verifies.
class ShippedPrograms
    : public ::testing::TestWithParam<ReflectorVariant> {};

TEST_P(ShippedPrograms, Verify) {
  const auto r = verify(make_reflector(GetParam()));
  EXPECT_TRUE(r.ok) << r.error;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ShippedPrograms,
                         ::testing::ValuesIn(all_reflector_variants()));

TEST(Verifier, AuxiliaryProgramsVerify) {
  EXPECT_TRUE(verify(make_out_of_bounds_reader()).ok);
  EXPECT_TRUE(verify(make_flow_counter()).ok);
}

}  // namespace
}  // namespace steelnet::ebpf
