#include "ebpf/vm.hpp"

#include <gtest/gtest.h>

#include "ebpf/assembler.hpp"
#include "ebpf/programs.hpp"
#include "ebpf/verifier.hpp"

namespace steelnet::ebpf {
namespace {

using namespace steelnet::sim::literals;

net::Frame frame_with_payload(std::size_t bytes) {
  net::Frame f;
  f.payload.assign(bytes, 0);
  return f;
}

CostParams zero_costs() {
  CostParams p{};
  return CostModel::deterministic(CostParams{
      .per_run_base_ns = 0, .insn_ns = 0, .pkt_access_ns = 0,
      .stack_access_ns = 0, .ktime_ns = 0, .ringbuf_base_ns = 0,
      .map_ns = 0});
}

RunResult run_program(Program p, net::Frame& f,
                      sim::SimTime now = sim::SimTime::zero()) {
  verify_or_throw(p);
  Vm vm(std::move(p), zero_costs(), 1);
  return vm.run(f, now);
}

TEST(Vm, ReturnsVerdictFromR0) {
  Assembler a("t");
  a.ret(XdpVerdict::kDrop);
  auto f = frame_with_payload(64);
  EXPECT_EQ(run_program(a.finish(), f).verdict, XdpVerdict::kDrop);
}

TEST(Vm, InvalidVerdictValueAborts) {
  Assembler a("t");
  a.mov_imm(0, 77).exit();
  auto f = frame_with_payload(64);
  EXPECT_EQ(run_program(a.finish(), f).verdict, XdpVerdict::kAborted);
}

TEST(Vm, AluArithmetic) {
  // Compute through the ALU, store the result into the payload, PASS.
  Assembler b("alu");
  b.mov_imm(2, 10);    // 10
  b.add_imm(2, 5);
  b.mul_imm(2, 4);
  b.div_imm(2, 7);
  b.sub_imm(2, 1);
  b.lsh_imm(2, 2);
  b.rsh_imm(2, 1);
  b.and_imm(2, 0xc);
  b.or_imm(2, 1);
  b.st_pkt_dw(0, 2);
  b.ret(XdpVerdict::kPass);
  auto f2 = frame_with_payload(64);
  EXPECT_EQ(run_program(b.finish(), f2).verdict, XdpVerdict::kPass);
  EXPECT_EQ(f2.read_u64(0), 13u);
}

TEST(Vm, DivByZeroRegisterYieldsZero) {
  Assembler a("t");
  a.mov_imm(2, 100);
  a.mov_imm(3, 0);
  a.mov_reg(4, 2);
  // div_reg: dst / src
  auto p = a.finish();
  p.insns.push_back({Op::kDivReg, 4, 3, 0, 0});
  p.insns.push_back({Op::kStPktDw, 0, 4, 0, 0});
  p.insns.push_back({Op::kMovImm, 0, 0, 0, 2});
  p.insns.push_back({Op::kExit, 0, 0, 0, 0});
  auto f = frame_with_payload(64);
  const auto r = run_program(std::move(p), f);
  EXPECT_EQ(r.verdict, XdpVerdict::kPass);
  EXPECT_EQ(f.read_u64(0), 0u);
}

TEST(Vm, PacketLoadStoreRoundTrip) {
  Assembler a("t");
  a.ld_pkt_dw(2, 0);
  a.add_imm(2, 1);
  a.st_pkt_dw(8, 2);
  a.ret(XdpVerdict::kPass);
  auto f = frame_with_payload(32);
  f.write_u64(0, 0xfeed);
  EXPECT_EQ(run_program(a.finish(), f).verdict, XdpVerdict::kPass);
  EXPECT_EQ(f.read_u64(8), 0xfeeeu);
}

TEST(Vm, RuntimePacketBoundsFault) {
  auto f = frame_with_payload(32);  // program reads offset 1500
  const auto r = run_program(make_out_of_bounds_reader(), f);
  EXPECT_EQ(r.verdict, XdpVerdict::kAborted);
  EXPECT_NE(r.fault.find("out of bounds"), std::string::npos);
}

TEST(Vm, StackRoundTrip) {
  Assembler a("t");
  a.mov_imm(2, 0x1234);
  a.st_stack_dw(-16, 2);
  a.ld_stack_dw(3, -16);
  a.st_pkt_dw(0, 3);
  a.ret(XdpVerdict::kPass);
  auto f = frame_with_payload(16);
  EXPECT_EQ(run_program(a.finish(), f).verdict, XdpVerdict::kPass);
  EXPECT_EQ(f.read_u64(0), 0x1234u);
}

TEST(Vm, KtimeReflectsSimTime) {
  Assembler a("t");
  a.call(HelperId::kKtimeGetNs);
  a.st_pkt_dw(0, 0);
  a.ret(XdpVerdict::kPass);
  auto f = frame_with_payload(16);
  run_program(a.finish(), f, 5_us);
  EXPECT_EQ(f.read_u64(0), 5000u);  // zero-cost model: exactly now
}

TEST(Vm, KtimeIncludesElapsedExecutionCost) {
  Assembler a("t");
  a.call(HelperId::kKtimeGetNs);
  a.st_pkt_dw(0, 0);
  a.ret(XdpVerdict::kPass);
  CostParams costs = zero_costs();
  costs.ktime_ns = 100;  // the call itself takes 100ns
  auto p = a.finish();
  verify_or_throw(p);
  Vm vm(std::move(p), costs, 1);
  auto f = frame_with_payload(16);
  vm.run(f, 1_us);
  EXPECT_EQ(f.read_u64(0), 1100u);
}

TEST(Vm, GetPktLenHelper) {
  Assembler a("t");
  a.call(HelperId::kGetPktLen);
  a.st_pkt_dw(0, 0);
  a.ret(XdpVerdict::kPass);
  auto f = frame_with_payload(48);
  run_program(a.finish(), f);
  EXPECT_EQ(f.read_u64(0), 48u);
}

TEST(Vm, RingbufOutputStoresRecord) {
  auto p = make_reflector(ReflectorVariant::kTsRb);
  verify_or_throw(p);
  Vm vm(std::move(p), zero_costs(), 1);
  auto f = frame_with_payload(32);
  const auto r = vm.run(f, 3_us);
  EXPECT_EQ(r.verdict, XdpVerdict::kTx);
  ASSERT_EQ(vm.ringbuf().produced(), 1u);
  const auto rec = vm.ringbuf().pop();
  ASSERT_EQ(rec.data.size(), 8u);
  std::uint64_t ts = 0;
  for (int i = 7; i >= 0; --i) ts = (ts << 8) | rec.data[size_t(i)];
  EXPECT_EQ(ts, 3000u);
}

TEST(Vm, FlowCounterCountsPerFlow) {
  auto p = make_flow_counter();
  verify_or_throw(p);
  Vm vm(std::move(p), zero_costs(), 1);
  for (int i = 0; i < 3; ++i) {
    auto f = frame_with_payload(16);
    f.write_u64(0, 7);  // flow id 7
    vm.run(f, sim::SimTime::zero());
  }
  auto f2 = frame_with_payload(16);
  f2.write_u64(0, 9);
  vm.run(f2, sim::SimTime::zero());
  EXPECT_EQ(vm.map().lookup(7), 3u);
  EXPECT_EQ(vm.map().lookup(9), 1u);
  EXPECT_EQ(vm.map().lookup(8), 0u);
}

TEST(Vm, BranchTaken) {
  Assembler a("t");
  a.ld_pkt_dw(2, 0);
  a.jgt_imm(2, 100, "big");
  a.ret(XdpVerdict::kPass);
  a.label("big");
  a.ret(XdpVerdict::kDrop);
  auto p = a.finish();
  {
    auto f = frame_with_payload(16);
    f.write_u64(0, 50);
    EXPECT_EQ(run_program(p, f).verdict, XdpVerdict::kPass);
  }
  {
    auto f = frame_with_payload(16);
    f.write_u64(0, 500);
    EXPECT_EQ(run_program(p, f).verdict, XdpVerdict::kDrop);
  }
}

TEST(Vm, CountsInsnsAndHelpers) {
  auto p = make_reflector(ReflectorVariant::kTsTs);
  verify_or_throw(p);
  const std::size_t n_insns = p.insns.size();
  Vm vm(std::move(p), zero_costs(), 1);
  auto f = frame_with_payload(32);
  const auto r = vm.run(f, sim::SimTime::zero());
  EXPECT_EQ(r.helper_calls, 2u);
  EXPECT_EQ(r.insns_executed, n_insns);  // straight-line: every insn once
}

TEST(Vm, ExecTimeMatchesDeterministicCosts) {
  CostParams costs = zero_costs();
  costs.insn_ns = 10;
  Assembler a("t");
  a.mov_imm(0, 2);  // 10ns
  a.exit();         // 10ns
  auto p = a.finish();
  verify_or_throw(p);
  Vm vm(std::move(p), costs, 1);
  auto f = frame_with_payload(16);
  EXPECT_EQ(vm.run(f, sim::SimTime::zero()).exec_time, 20_ns);
}

}  // namespace
}  // namespace steelnet::ebpf
