// Property tests: the verifier's acceptance must imply safe execution.
// We generate random programs from the full ISA; any program the
// verifier accepts must (a) terminate within the static instruction
// bound and (b) never hit an internal fault other than a *packet* bounds
// fault (those are legal at runtime -- XDP's data_end model).
#include <gtest/gtest.h>

#include "ebpf/verifier.hpp"
#include "ebpf/vm.hpp"
#include "sim/random.hpp"

namespace steelnet::ebpf {
namespace {

Insn random_insn(sim::Rng& rng, std::size_t index, std::size_t length) {
  // Weighted toward ALU; jumps always forward (may still be rejected for
  // other reasons -- that's fine, rejection is a valid outcome).
  const int kind = int(rng.uniform_int(0, 9));
  auto reg = [&] { return std::uint8_t(rng.uniform_int(0, 10)); };
  auto fwd_off = [&] {
    const auto remaining = std::int64_t(length) - std::int64_t(index) - 2;
    return std::int16_t(remaining <= 0 ? 0 : rng.uniform_int(0, remaining));
  };
  switch (kind) {
    case 0:
      return {Op::kMovImm, reg(), 0, 0, rng.uniform_int(-1000, 1000)};
    case 1:
      return {Op::kMovReg, reg(), reg(), 0, 0};
    case 2:
      return {Op::kAddReg, reg(), reg(), 0, 0};
    case 3:
      return {Op::kMulImm, reg(), 0, 0, rng.uniform_int(0, 100)};
    case 4:
      return {Op::kLdPktDw, reg(), 0,
              std::int16_t(rng.uniform_int(0, 64)), 0};
    case 5:
      return {Op::kStStackDw, 0, reg(),
              std::int16_t(-8 * rng.uniform_int(1, 8)), 0};
    case 6:
      return {Op::kLdStackDw, reg(), 0,
              std::int16_t(-8 * rng.uniform_int(1, 8)), 0};
    case 7:
      return {Op::kJeqImm, reg(), 0, fwd_off(), rng.uniform_int(0, 3)};
    case 8:
      return {Op::kCall, 0, 0, 0,
              std::int64_t(rng.uniform_int(1, 5))};
    default:
      return {Op::kDivImm, reg(), 0, 0, rng.uniform_int(1, 16)};
  }
}

class VerifierSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierSoundness, AcceptedProgramsRunSafely) {
  sim::Rng rng{GetParam()};
  int accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto length = std::size_t(rng.uniform_int(3, 24));
    Program p{"fuzz-" + std::to_string(trial), {}};
    // Prologue: initialize r0..r9 so def-before-use rejections don't
    // drown out the interesting structural cases.
    for (std::uint8_t r = 0; r <= 9; ++r) {
      p.insns.push_back({Op::kMovImm, r, 0, 0, r});
    }
    const std::size_t prologue = p.insns.size();
    for (std::size_t i = 0; i + 2 < length; ++i) {
      p.insns.push_back(random_insn(rng, prologue + i, prologue + length));
    }
    // Deterministic epilogue so some programs pass the reachability and
    // fall-off checks.
    p.insns.push_back({Op::kMovImm, 0, 0, 0, 2});
    p.insns.push_back({Op::kExit, 0, 0, 0, 0});

    const auto v = verify(p);
    if (!v.ok) continue;
    ++accepted;

    Vm vm(p, CostModel::deterministic(CostParams{}), 1);
    for (const std::size_t payload : {0, 16, 72}) {
      net::Frame f;
      f.payload.assign(payload, 0xab);
      const auto r = vm.run(f, sim::SimTime::zero());
      EXPECT_LE(r.insns_executed, v.max_insns_executed + 1)
          << p.name << " exceeded the static bound";
      if (!r.fault.empty()) {
        // Legal runtime faults: packet bounds (XDP's data_end model) and
        // helper-argument validation (our verifier does not do the
        // kernel's value tracking for helper args -- a documented
        // simplification).
        const bool legal =
            r.fault.find("packet") != std::string::npos ||
            r.fault.find("ringbuf") != std::string::npos;
        EXPECT_TRUE(legal) << p.name << ": " << r.fault;
      }
    }
  }
  // The generator must actually exercise the accept path.
  EXPECT_GT(accepted, 20) << "fuzzer accepts too few programs to be useful";
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierSoundness,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace steelnet::ebpf
