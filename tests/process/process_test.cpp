#include "process/process.hpp"

#include <gtest/gtest.h>

namespace steelnet::process {
namespace {

TEST(Conveyor, MovesOnlyWhenMotorOn) {
  Conveyor c;
  c.step(1.0);
  EXPECT_DOUBLE_EQ(c.position_m(), 0.0);
  // motor on, 500 mm/s
  c.actuate({1, 0xf4, 0x01}, true);
  c.step(1.0);
  EXPECT_DOUBLE_EQ(c.position_m(), 0.5);
}

TEST(Conveyor, SpeedClampedToMax) {
  Conveyor c{{.length_m = 100.0, .max_speed_mps = 1.0}};
  c.actuate({1, 0xff, 0xff}, true);  // 65.5 m/s requested
  c.step(2.0);
  EXPECT_DOUBLE_EQ(c.position_m(), 2.0);
}

TEST(Conveyor, CompletesItemsAndWraps) {
  Conveyor c{{.length_m = 1.0, .max_speed_mps = 2.0}};
  c.actuate({1, 0xd0, 0x07}, true);  // 2 m/s
  for (int i = 0; i < 10; ++i) c.step(0.1);  // 2 m total
  EXPECT_EQ(c.items_completed(), 2u);
}

TEST(Conveyor, SafeStateStopsBelt) {
  Conveyor c;
  c.actuate({1, 0xe8, 0x03}, true);
  c.step(0.5);
  const double pos = c.position_m();
  c.actuate({}, false);  // watchdog tripped
  c.step(5.0);
  EXPECT_DOUBLE_EQ(c.position_m(), pos);
  EXPECT_FALSE(c.motor_on());
}

TEST(Conveyor, SenseEncodesPositionAndEye) {
  Conveyor c{{.length_m = 1.0, .max_speed_mps = 2.0}};
  c.actuate({1, 0xd0, 0x07}, true);
  c.step(0.49);  // 0.98 m -> eye at >= 0.95
  const auto s = c.sense(8);
  const std::uint32_t mm = s[0] | (s[1] << 8) | (s[2] << 16) |
                           (std::uint32_t(s[3]) << 24);
  EXPECT_NEAR(mm, 980, 2);
  EXPECT_EQ(s[4], 1);
  EXPECT_TRUE(c.item_at_end());
}

TEST(Tank, LevelIntegratesFlows) {
  TankLevel t{{.capacity_l = 100, .demand_lps = 0.5, .initial_l = 50}};
  t.actuate({100}, true);  // 1 l/s inflow, 0.5 l/s demand
  t.step(10.0);
  EXPECT_NEAR(t.level_l(), 55.0, 1e-9);
}

TEST(Tank, OverflowAndDryEventsCounted) {
  TankLevel t{{.capacity_l = 10, .demand_lps = 1.0, .initial_l = 9.9}};
  t.actuate({200}, true);  // 2 l/s in, 1 out -> climbs
  for (int i = 0; i < 10; ++i) t.step(0.1);
  EXPECT_EQ(t.overflow_events(), 1u);
  EXPECT_DOUBLE_EQ(t.level_l(), 10.0);
  t.actuate({0}, true);  // valve closed -> drains dry
  for (int i = 0; i < 200; ++i) t.step(0.1);
  EXPECT_EQ(t.dry_events(), 1u);
  EXPECT_DOUBLE_EQ(t.level_l(), 0.0);
}

TEST(Tank, SafeStateClosesValve) {
  TankLevel t{{.capacity_l = 100, .demand_lps = 0.0, .initial_l = 50}};
  t.actuate({200}, true);
  t.actuate({}, false);
  t.step(10.0);
  EXPECT_NEAR(t.level_l(), 50.0, 1e-9);
}

TEST(RobotAxis, TracksTargetWithVelocityLimit) {
  RobotAxis r{{.max_velocity_dps = 90.0, .tolerance_deg = 0.5}};
  // Target 45 deg = 4500 centideg.
  const std::int16_t t = 4500;
  r.actuate({std::uint8_t(t & 0xff), std::uint8_t(t >> 8)}, true);
  r.step(0.25);  // can move at most 22.5 deg
  EXPECT_NEAR(r.angle_deg(), 22.5, 1e-9);
  EXPECT_FALSE(r.in_position());
  r.step(0.25);
  EXPECT_NEAR(r.angle_deg(), 45.0, 1e-9);
  EXPECT_TRUE(r.in_position());
}

TEST(RobotAxis, NegativeTargets) {
  RobotAxis r;
  const std::int16_t t = -9000;  // -90 deg
  r.actuate({std::uint8_t(t & 0xff), std::uint8_t((t >> 8) & 0xff)}, true);
  for (int i = 0; i < 10; ++i) r.step(0.1);
  EXPECT_NEAR(r.angle_deg(), -90.0, 1e-6);
}

TEST(RobotAxis, SafeStopFreezesAxis) {
  RobotAxis r;
  const std::int16_t t = 4500;
  r.actuate({std::uint8_t(t & 0xff), std::uint8_t(t >> 8)}, true);
  r.step(0.1);
  const double a = r.angle_deg();
  r.actuate({}, false);
  r.step(1.0);
  EXPECT_DOUBLE_EQ(r.angle_deg(), a);
  EXPECT_TRUE(r.halted());
}

TEST(RobotAxis, SenseReportsAngleAndFlag) {
  RobotAxis r;
  const std::int16_t t = 1000;  // 10 deg
  r.actuate({std::uint8_t(t & 0xff), std::uint8_t(t >> 8)}, true);
  for (int i = 0; i < 10; ++i) r.step(0.1);
  const auto s = r.sense(4);
  const auto centi = static_cast<std::int16_t>(s[0] | (s[1] << 8));
  EXPECT_NEAR(centi, 1000, 2);
  EXPECT_EQ(s[2], 1);
}

}  // namespace
}  // namespace steelnet::process
