// The seed-sweep harness invariants on the InstaPLC testbed:
//   * switchover latency bounded by watchdog-cycles x cycle-time,
//   * no delivery after a kill,
//   * frame conservation (residual 0) under arbitrary fault mixes,
//   * byte-identical reruns (obs exports included) per seed,
//   * digital-twin re-sync and flap-shorter-than-watchdog behaviour.
#include "faults/scenario_runner.hpp"

#include <gtest/gtest.h>

namespace steelnet::faults {
namespace {

using namespace steelnet::sim::literals;

void expect_invariants(const ScenarioOutcome& out) {
  SCOPED_TRACE(out.scenario + " seed=" + std::to_string(out.seed));
  EXPECT_EQ(out.residual, 0) << "frame conservation violated";
  EXPECT_EQ(out.post_kill_deliveries, 0u) << "delivery after a kill";
  if (out.switched_over) {
    EXPECT_GT(out.switchover_latency, sim::SimTime::zero());
    EXPECT_LE(out.switchover_latency, switchover_bound(RunnerOptions{}));
  }
}

TEST(ScenarioRunner, SilentPrimarySwitchesOverWithinBound) {
  const ScenarioOutcome out =
      ScenarioRunner{}.run(silent_primary_scenario(1));
  expect_invariants(out);
  ASSERT_TRUE(out.switched_over);
  // The kill hits at 1s; detection needs 3 silent cycles + <=1 tick.
  EXPECT_GE(out.switchover_at, 1_s);
  EXPECT_LE(out.switchover_at, 1_s + switchover_bound(RunnerOptions{}));
  // Detection + rule flip races the device's own 3-cycle watchdog; the
  // seed behaviour allows at most one boundary trip before outputs resume.
  EXPECT_LE(out.device_watchdog_trips, 1u);
  EXPECT_LE(out.max_output_gap, 12_ms);
  EXPECT_TRUE(out.secondary_running);
}

TEST(ScenarioRunner, PrimaryCrashSwitchesOverAndNothingLeaksAfterKill) {
  const ScenarioOutcome out =
      ScenarioRunner{}.run(primary_crash_scenario(1));
  expect_invariants(out);
  ASSERT_TRUE(out.switched_over);
  EXPECT_EQ(out.post_kill_deliveries, 0u);
  // The crash is harsher than the graceful stop: in-flight frames toward
  // the dead host are absorbed and accounted.
  EXPECT_GT(out.faults.dropped_receiver_down + out.faults.suppressed_tx, 0u);
  EXPECT_LE(out.device_watchdog_trips, 1u);
  EXPECT_TRUE(out.secondary_running);
}

TEST(ScenarioRunner, LossBurstLongerThanWindowSwitchesOver) {
  const ScenarioOutcome out = ScenarioRunner{}.run(loss_burst_scenario(1));
  expect_invariants(out);
  // 10 ms of 100% loss = 5 silent cycles > the 3-cycle window.
  ASSERT_TRUE(out.switched_over);
  EXPECT_GT(out.faults.dropped_loss, 0u);
  EXPECT_LE(out.device_watchdog_trips, 1u);
}

TEST(ScenarioRunner, LinkFlapSwitchesOverDuringFirstDownWindow) {
  const ScenarioOutcome out = ScenarioRunner{}.run(link_flap_scenario(1));
  expect_invariants(out);
  ASSERT_TRUE(out.switched_over);
  EXPECT_GE(out.switchover_at, 1_s);
  EXPECT_LE(out.switchover_at, 1_s + 10_ms);
  EXPECT_GT(out.faults.dropped_link_down, 0u);
  EXPECT_EQ(out.faults.link_down_events, 3u);
  EXPECT_EQ(out.faults.link_up_events, 3u);
}

TEST(ScenarioRunner, FlapShorterThanWatchdogWindowDoesNotSwitchover) {
  const ScenarioOutcome out = ScenarioRunner{}.run(short_flap_scenario(1));
  expect_invariants(out);
  // 3 ms outage < 3 cycles x 2 ms: cyclic frames resume before the
  // monitor (or the device watchdog) can fire.
  EXPECT_FALSE(out.switched_over);
  EXPECT_EQ(out.device_watchdog_trips, 0u);
  EXPECT_GT(out.faults.dropped_link_down, 0u);
  EXPECT_LE(out.max_output_gap, 8_ms);
}

TEST(ScenarioRunner, TwinStaysSyncedThroughConnectLossBurst) {
  // 100% loss on the secondary's link exactly while it connects: the
  // ConnectReq retry budget must carry the twin sync through the burst.
  FaultScenario sc;
  sc.name = "connect_burst";
  sc.seed = 5;
  FaultSpec f;
  f.kind = FaultKind::kLoss;
  f.node = "v2";
  f.port = 0;
  f.at = 95_ms;  // secondary connects at 100ms
  f.duration = 50_ms;
  f.probability = 1.0;
  sc.faults.push_back(f);
  const ScenarioOutcome out = ScenarioRunner{}.run(sc);
  expect_invariants(out);
  EXPECT_GT(out.faults.dropped_loss, 0u);
  EXPECT_TRUE(out.twin_synced);
  EXPECT_TRUE(out.secondary_running);
  EXPECT_FALSE(out.switched_over);  // the primary was never in trouble
}

TEST(ScenarioRunner, TwinResyncsSecondaryAfterPrimaryCrashAndRestart) {
  // The primary crashes, the secondary takes over; when the old primary's
  // pod restarts it reconnects -- and the twin absorbs it as the new
  // standby, keeping the device on exactly one AR throughout.
  FaultScenario sc;
  sc.name = "crash_restart";
  sc.seed = 6;
  FaultSpec f;
  f.kind = FaultKind::kNodeCrash;
  f.node = "v1";
  f.at = 1_s;
  f.duration = 500_ms;  // pod restart at 1.5s
  sc.faults.push_back(f);
  const ScenarioOutcome out = ScenarioRunner{}.run(sc);
  expect_invariants(out);
  ASSERT_TRUE(out.switched_over);
  EXPECT_TRUE(out.twin_synced);
  EXPECT_EQ(out.faults.node_crashes, 1u);
  EXPECT_EQ(out.faults.node_restarts, 1u);
  // After switchover the device keeps exchanging data (at most the one
  // boundary trip the seed failover tests allow).
  EXPECT_LE(out.device_watchdog_trips, 1u);
}

TEST(ScenarioRunner, SameSeedSameScenarioIsByteIdentical) {
  RunnerOptions opts;
  opts.keep_exports = true;
  const ScenarioRunner runner{opts};
  for (const std::uint64_t seed : {1ULL, 17ULL}) {
    for (const FaultScenario& sc :
         {loss_burst_scenario(seed), random_scenario(seed)}) {
      SCOPED_TRACE(sc.name + " seed=" + std::to_string(seed));
      const ScenarioOutcome a = runner.run(sc);
      const ScenarioOutcome b = runner.run(sc);
      EXPECT_EQ(a.fingerprint(), b.fingerprint());
      // Byte-identical observability exports, not just equal counters.
      EXPECT_EQ(a.metrics_prom, b.metrics_prom);
      EXPECT_EQ(a.trace_json, b.trace_json);
      EXPECT_EQ(a.metrics_fp, b.metrics_fp);
      EXPECT_EQ(a.trace_fp, b.trace_fp);
    }
  }
}

TEST(ScenarioRunner, SweepJobs8MatchesJobs1ByteForByte) {
  // The parallel-sweep acceptance bar: fanning the runs across a worker
  // pool must not change a single byte of any outcome -- counters,
  // fingerprints, or the full Prometheus/Chrome-trace exports.
  RunnerOptions opts;
  opts.keep_exports = true;
  const ScenarioRunner runner{opts};
  std::vector<FaultScenario> scenarios;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    scenarios.push_back(random_scenario(seed));
  }
  const auto seq = runner.run_sweep(scenarios, /*jobs=*/1);
  const auto par = runner.run_sweep(scenarios, /*jobs=*/8);
  ASSERT_EQ(seq.size(), scenarios.size());
  ASSERT_EQ(par.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    SCOPED_TRACE(scenarios[i].name + " seed=" +
                 std::to_string(scenarios[i].seed));
    ASSERT_TRUE(seq[i].ok()) << seq[i].error;
    ASSERT_TRUE(par[i].ok()) << par[i].error;
    const ScenarioOutcome& a = *seq[i].value;
    const ScenarioOutcome& b = *par[i].value;
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.metrics_fp, b.metrics_fp);
    EXPECT_EQ(a.trace_fp, b.trace_fp);
    EXPECT_EQ(a.metrics_prom, b.metrics_prom);
    EXPECT_EQ(a.trace_json, b.trace_json);
  }
}

TEST(ScenarioRunner, SweepSlotsComeBackInScenarioOrder) {
  const ScenarioRunner runner;
  const auto scenarios = canonical_scenarios(1);
  const auto slots = runner.run_sweep(scenarios, /*jobs=*/4);
  ASSERT_EQ(slots.size(), scenarios.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ASSERT_TRUE(slots[i].ok()) << slots[i].error;
    EXPECT_EQ(slots[i].value->scenario, scenarios[i].name);
  }
}

TEST(ScenarioRunner, DifferentSeedsDiverge) {
  // A jittered link makes every arrival time seed-dependent: two seeds
  // colliding on the full trace export is effectively impossible.
  FaultScenario sc;
  sc.name = "jitter";
  FaultSpec f;
  f.kind = FaultKind::kJitter;
  f.node = "v1";
  f.port = 0;
  f.at = 200_ms;
  f.duration = 2_s;
  f.delay = 200_us;
  sc.faults.push_back(f);
  const ScenarioRunner runner;
  sc.seed = 1;
  const ScenarioOutcome a = runner.run(sc);
  sc.seed = 2;
  const ScenarioOutcome b = runner.run(sc);
  EXPECT_NE(a.trace_fp, b.trace_fp);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ScenarioRunner, RandomScenarioSweep64SeedsHoldsAllInvariants) {
  // The property sweep: 64 seeded random fault mixes (link down/flap,
  // loss, corruption, duplication, reordering, jitter, crash, stop) on
  // the full InstaPLC stack. Every run must conserve frames exactly and
  // never deliver a dead node's post-kill frames; switchovers, when they
  // happen, must stay within the watchdog bound.
  const ScenarioRunner runner;
  int switchovers = 0;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const FaultScenario sc = random_scenario(seed);
    ASSERT_FALSE(sc.faults.empty());
    // The scenario text format round-trips every generated spec.
    EXPECT_EQ(FaultScenario::parse(sc.to_text()), sc);
    const ScenarioOutcome out = runner.run(sc);
    expect_invariants(out);
    if (out.switched_over) ++switchovers;
  }
  // The mix is rich enough that some scenarios kill the primary.
  EXPECT_GT(switchovers, 0);
}

TEST(ScenarioRunner, CanonicalScenariosCoverTheFaultMatrix) {
  const auto scenarios = canonical_scenarios(3);
  ASSERT_EQ(scenarios.size(), 4u);
  EXPECT_EQ(scenarios[0].name, "silent_primary");
  EXPECT_EQ(scenarios[1].name, "loss_burst");
  EXPECT_EQ(scenarios[2].name, "link_flap");
  EXPECT_EQ(scenarios[3].name, "primary_crash");
  for (const auto& sc : scenarios) EXPECT_EQ(sc.seed, 3u);
}

}  // namespace
}  // namespace steelnet::faults
