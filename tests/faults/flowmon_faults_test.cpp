// Flowmon telemetry under injected faults: the collector's sequence-gap
// accounting and the switch egress-drop counters must equal the exact
// number of injected losses -- telemetry that can't count its own holes
// can't be trusted to count anyone else's.
#include <gtest/gtest.h>

#include "faults/fault_plane.hpp"
#include "flowmon/collector.hpp"
#include "flowmon/meter_point.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

using namespace steelnet::sim::literals;

// ---------------------------------------------------------------------
// Collector first-contact gap (regression: the pre-fix collector only
// counted gaps after it had seen a domain at least once).

flowmon::ExportRecord simple_record() {
  flowmon::ExportRecord r;
  r.key.src = net::MacAddress{0x1};
  r.key.dst = net::MacAddress{0x2};
  r.key.ethertype = net::EtherType::kIpv4;
  r.packets = 10;
  r.bytes = 1000;
  r.wire_bytes = 1180;
  r.first_seen = 10_ms;
  r.last_seen = 20_ms;
  r.min_iat = 990_us;
  r.mean_iat = 1_ms;
  r.jitter = 2_us;
  r.end_reason = flowmon::EndReason::kIdleTimeout;
  return r;
}

net::Frame export_frame(net::MacAddress dst, std::uint32_t seq,
                        std::uint32_t domain) {
  flowmon::MessageHeader h;
  h.observation_domain = domain;
  h.sequence = seq;
  h.export_time = 1_s;
  net::Frame f;
  f.dst = dst;
  f.src = net::MacAddress{0xE};
  f.ethertype = net::EtherType::kFlowmonExport;
  f.payload = flowmon::encode_message(h, flowmon::flow_template(), true,
                                      {simple_record()});
  return f;
}

TEST(CollectorGaps, FirstMessageOfADomainRevealsPriorLoss) {
  flowmon::CollectorNode c{net::MacAddress{0xC0}};
  // Exporters start at sequence 0; first contact at sequence 5 means five
  // records died before the collector ever heard from this domain.
  c.handle_frame(export_frame(c.mac(), 5, /*domain=*/1), 0);
  EXPECT_EQ(c.counters().lost_records, 5u);
  EXPECT_EQ(c.counters().records, 1u);
  // An in-order follow-up adds nothing.
  c.handle_frame(export_frame(c.mac(), 6, /*domain=*/1), 0);
  EXPECT_EQ(c.counters().lost_records, 5u);
  // Independent domains get independent first-contact accounting.
  c.handle_frame(export_frame(c.mac(), 2, /*domain=*/9), 0);
  EXPECT_EQ(c.counters().lost_records, 7u);
}

TEST(CollectorGaps, CleanFirstContactCountsNothing) {
  flowmon::CollectorNode c{net::MacAddress{0xC0}};
  c.handle_frame(export_frame(c.mac(), 0, 1), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
}

// ---------------------------------------------------------------------
// Meter -> collector over a faulted wire: the sequence-gap counter must
// reconstruct the exact number of records inside dropped export frames.

struct TelemetryFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchNode* sw;
  net::HostNode* sender;
  net::HostNode* receiver;
  net::HostNode* mgmt;
  flowmon::CollectorNode* collector;
  std::unique_ptr<flowmon::MeterPoint> meter;
  FaultPlane plane;

  explicit TelemetryFixture(std::uint64_t seed)
      : sw(&network.add_node<net::SwitchNode>("sw")),
        sender(&network.add_node<net::HostNode>("tx", net::MacAddress{0x1})),
        receiver(&network.add_node<net::HostNode>("rx", net::MacAddress{0x2})),
        mgmt(&network.add_node<net::HostNode>("mgmt", net::MacAddress{0xE})),
        collector(&network.add_node<flowmon::CollectorNode>(
            "col", net::MacAddress{0xC})),
        plane(network, seed) {
    network.connect(sender->id(), 0, sw->id(), 0);
    network.connect(receiver->id(), 0, sw->id(), 1);
    network.connect(mgmt->id(), 0, sw->id(), 2);
    network.connect(collector->id(), 0, sw->id(), 3);
    sw->add_fdb_entry(net::MacAddress{0x2}, 1);
    sw->add_fdb_entry(net::MacAddress{0xC}, 3);
    network.set_faults(&plane);

    flowmon::MeterConfig cfg;
    cfg.collector_mac = collector->mac();
    cfg.export_interval = 10_ms;
    cfg.idle_timeout = 20_ms;
    cfg.active_timeout = 50_ms;
    // Every export frame re-advertises the template: a lost first frame
    // must not leave the collector unable to decode the survivors, or
    // gap accounting could never be exact.
    cfg.template_refresh_frames = 1;
    meter = std::make_unique<flowmon::MeterPoint>(*sw, *mgmt, cfg);
  }

  void send_burst(int n, sim::SimTime period) {
    for (int i = 0; i < n; ++i) {
      simulator.schedule_at(period * i, [this] {
        net::Frame f;
        f.dst = net::MacAddress{0x2};
        f.payload.assign(100, 0);
        sender->send(std::move(f));
      });
    }
  }

  // Exact-tiling invariant: once the fault window has closed and a clean
  // export has arrived, the collector's reconstructed loss equals the
  // records the wire actually ate.
  void expect_gap_accounting_exact() const {
    const std::uint64_t exported = meter->stats().records_exported;
    const std::uint64_t received = collector->counters().records;
    EXPECT_EQ(collector->counters().lost_records, exported - received);
    EXPECT_EQ(collector->counters().records_without_template, 0u);
    EXPECT_EQ(plane.conservation_residual(), 0);
  }
};

TEST(FlowmonFaults, SequenceGapsEqualInjectedExportLoss) {
  TelemetryFixture fx{11};
  fx.send_burst(150, 1_ms);
  // Kill the management link (the export path) across the first
  // active-timeout checkpoint at ~50ms; exports resume at ~100ms.
  fx.plane.schedule(FaultScenario::parse(
      "name export_hole\n"
      "seed 11\n"
      "link_down link=mgmt:0 at=15ms dur=60ms\n"));
  fx.simulator.run_until(400_ms);

  ASSERT_GT(fx.plane.counters().dropped_link_down, 0u);
  ASSERT_LT(fx.collector->counters().records,
            fx.meter->stats().records_exported);
  fx.expect_gap_accounting_exact();
  // Only export traffic crosses the mgmt link: the metered data flow
  // itself was untouched.
  EXPECT_EQ(fx.receiver->counters().received, 150u);
}

TEST(FlowmonFaults, RandomExportLossStillTilesExactly) {
  TelemetryFixture fx{23};
  // Continuous traffic to 300ms yields checkpoints every 50ms plus the
  // idle close at ~320ms; the loss window covers the middle checkpoints
  // and the clean tail reveals every gap.
  fx.send_burst(300, 1_ms);
  fx.plane.schedule(FaultScenario::parse(
      "name export_loss\n"
      "seed 23\n"
      "loss link=mgmt:0 at=40ms dur=220ms p=0.6\n"));
  fx.simulator.run_until(600_ms);

  ASSERT_GT(fx.plane.counters().dropped_loss, 0u);
  fx.expect_gap_accounting_exact();
  EXPECT_EQ(fx.receiver->counters().received, 300u);
}

// ---------------------------------------------------------------------
// Switch egress-drop counter vs. an exactly-sized overload burst.

TEST(FlowmonFaults, EgressDropCounterMatchesBurstOverflowExactly) {
  // A slow receiver link plus a tiny egress queue: a back-to-back burst
  // of N frames fits 1 on the wire + C in the queue; the switch must
  // count exactly N - 1 - C overflow drops, and the fault plane's wire
  // ledger must stay balanced (overflow happens before the wire).
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig cfg;
  cfg.queue_capacity = 4;
  auto& sw = network.add_node<net::SwitchNode>("sw", cfg);
  auto& tx = network.add_node<net::HostNode>("tx", net::MacAddress{0x1});
  auto& rx = network.add_node<net::HostNode>("rx", net::MacAddress{0x2});
  network.connect(tx.id(), 0, sw.id(), 0);
  net::LinkParams slow;
  slow.bits_per_second = 1'000'000;  // ~1 ms per 100 B frame
  network.connect(rx.id(), 0, sw.id(), 1, slow);
  sw.add_fdb_entry(net::MacAddress{0x2}, 1);
  FaultPlane plane{network, 1};
  network.set_faults(&plane);

  constexpr int kBurst = 20;
  constexpr std::uint64_t kQueue = 4;
  for (int i = 0; i < kBurst; ++i) {
    // 2 us apart over a fast ingress link: back-to-back at the egress.
    simulator.schedule_at(sim::microseconds(i * 2), [&tx] {
      net::Frame f;
      f.dst = net::MacAddress{0x2};
      f.payload.assign(100, 0);
      tx.send(std::move(f));
    });
  }
  simulator.run_until(1_s);

  EXPECT_EQ(
      static_cast<std::uint64_t>(sw.counters().frames_dropped_overflow),
      static_cast<std::uint64_t>(kBurst) - 1 - kQueue);
  EXPECT_EQ(rx.counters().received, 1 + kQueue);
  EXPECT_EQ(plane.conservation_residual(), 0);
}

}  // namespace
}  // namespace steelnet::faults
