// Wired-path compatibility pins for the LinkBackend refactor: the
// canonical seed-1 scenario fingerprints captured before the link layer
// moved behind a driver (any byte drift in the wire math, RNG order or
// obs exports trips these), plus the mid-serialization hard-down ledger
// regression (a frame cut on the wire resolves to exactly one cause and
// the channel re-idles).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "faults/fault_plane.hpp"
#include "faults/scenario_runner.hpp"
#include "net/host_node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

using namespace steelnet::sim::literals;

TEST(WireCompat, GoldenScenarioFingerprintsUnchanged) {
  const ScenarioRunner runner;
  const struct {
    FaultScenario scenario;
    std::uint64_t fp;
  } pins[] = {
      {silent_primary_scenario(1), 11076629587395333067ull},
      {loss_burst_scenario(1), 14574447445325554356ull},
      {link_flap_scenario(1), 17955605353418343649ull},
      {primary_crash_scenario(1), 10607330835920079580ull},
  };
  for (const auto& pin : pins) {
    const ScenarioOutcome outcome = runner.run(pin.scenario);
    EXPECT_EQ(outcome.fingerprint(), pin.fp) << pin.scenario.name;
    EXPECT_EQ(outcome.residual, 0) << pin.scenario.name;
  }
}

TEST(WireCompat, HardDownMidSerializationResolvesToOneCause) {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto* a = &network.add_node<net::HostNode>("a", net::MacAddress{0xA});
  auto* b = &network.add_node<net::HostNode>("b", net::MacAddress{0xB});
  FaultPlane plane{network, 7};
  // 1 Mbit/s: the 84-byte wire frame serializes for 672 us, leaving a
  // wide window to hard-down the link mid-frame.
  network.connect(a->id(), 0, b->id(), 0, net::LinkParams{1'000'000, 500_ns});
  network.set_faults(&plane);
  std::vector<sim::SimTime> rx;
  b->set_receiver([&](net::Frame, sim::SimTime at) { rx.push_back(at); });

  const auto send = [&] {
    net::Frame f;
    f.dst = net::MacAddress{0xB};
    f.payload.resize(46);
    a->send(std::move(f));
  };
  simulator.schedule_at(sim::SimTime::zero(), send);
  // The flap lives entirely inside the serialization window [0, 672 us]:
  // by the time the wire is notionally back up, the cut frame must be
  // dead -- not delivered off the briefly-downed link.
  simulator.schedule_at(300_us,
                        [&] { plane.set_link_down(a->id(), 0, true); });
  simulator.schedule_at(400_us,
                        [&] { plane.set_link_down(a->id(), 0, false); });
  // And after the NIC frees up the channel must carry traffic again.
  simulator.schedule_at(1_ms, send);
  simulator.run();

  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx.front(), 1_ms + 672_us + 500_ns);

  // Exactly one ledger cause for the cut frame, nothing in flight, and a
  // balanced ledger: offered(2) == delivered(1) + dropped_link_down(1).
  EXPECT_EQ(network.counters().frames_offered, 2u);
  EXPECT_EQ(network.counters().frames_delivered, 1u);
  EXPECT_EQ(network.counters().frames_in_flight, 0u);
  EXPECT_EQ(plane.counters().dropped_link_down, 1u);
  EXPECT_EQ(plane.conservation_residual(), 0);
  EXPECT_TRUE(network.channel_idle(a->id(), 0));
}

TEST(WireCompat, FlapAfterSerializationLetsTheFrameThrough) {
  // Control case: the same flap strictly after tx_done must not touch the
  // frame already in flight (propagation delay stretched past the flap).
  sim::Simulator simulator;
  net::Network network{simulator};
  auto* a = &network.add_node<net::HostNode>("a", net::MacAddress{0xA});
  auto* b = &network.add_node<net::HostNode>("b", net::MacAddress{0xB});
  FaultPlane plane{network, 7};
  network.connect(a->id(), 0, b->id(), 0, net::LinkParams{1'000'000, 2_ms});
  network.set_faults(&plane);
  std::vector<sim::SimTime> rx;
  b->set_receiver([&](net::Frame, sim::SimTime at) { rx.push_back(at); });

  simulator.schedule_at(sim::SimTime::zero(), [&] {
    net::Frame f;
    f.dst = net::MacAddress{0xB};
    f.payload.resize(46);
    a->send(std::move(f));
  });
  simulator.schedule_at(1_ms, [&] { plane.set_link_down(a->id(), 0, true); });
  simulator.schedule_at(1500_us,
                        [&] { plane.set_link_down(a->id(), 0, false); });
  simulator.run();

  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx.front(), 672_us + 2_ms);
  EXPECT_EQ(plane.counters().dropped_link_down, 0u);
  EXPECT_EQ(plane.conservation_residual(), 0);
}

}  // namespace
}  // namespace steelnet::faults
