// steelnet::faults unit behaviour: scenario text format, per-cause drop
// accounting, seeded reproducibility of every fault stream, node
// crash/restart semantics, and the frame-conservation ledger.
#include "faults/fault_plane.hpp"

#include <gtest/gtest.h>

#include "faults/scenario.hpp"
#include "net/host_node.hpp"
#include "obs/exporters.hpp"
#include "obs/hub.hpp"
#include "sim/simulator.hpp"

namespace steelnet::faults {
namespace {

using namespace steelnet::sim::literals;

// ---------------------------------------------------------------------
// Scenario text format.

TEST(Scenario, TextRoundTripsExactly) {
  FaultScenario sc;
  sc.name = "mixed";
  sc.seed = 1234;
  FaultSpec down;
  down.kind = FaultKind::kLinkDown;
  down.node = "v1";
  down.port = 0;
  down.at = 1_s;
  down.duration = 30_ms;
  sc.faults.push_back(down);
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.node = "sdn";
  flap.port = 1;
  flap.at = 500_ms;
  flap.duration = 10_ms;
  flap.count = 5;
  flap.period = 20_ms;
  sc.faults.push_back(flap);
  FaultSpec loss;
  loss.kind = FaultKind::kLoss;
  loss.node = "v1";
  loss.port = 0;
  loss.at = 250_us;
  loss.duration = 10_ms;
  loss.probability = 0.25;
  sc.faults.push_back(loss);
  FaultSpec reorder;
  reorder.kind = FaultKind::kReorder;
  reorder.node = "dev";
  reorder.port = 0;
  reorder.at = 1_ms;
  reorder.duration = 750_ns;
  reorder.probability = 1;
  reorder.delay = 300_us;
  sc.faults.push_back(reorder);
  FaultSpec crash;
  crash.kind = FaultKind::kNodeCrash;
  crash.node = "v2";
  crash.at = 2_s;
  crash.duration = 500_ms;
  sc.faults.push_back(crash);

  const std::string text = sc.to_text();
  const FaultScenario parsed = FaultScenario::parse(text);
  EXPECT_EQ(parsed, sc);
  // And the rendering itself is stable.
  EXPECT_EQ(parsed.to_text(), text);
}

TEST(Scenario, ParseReadsHumanFormat) {
  const FaultScenario sc = FaultScenario::parse(
      "# a comment\n"
      "name burst\n"
      "seed 7\n"
      "loss link=v1:0 at=1s dur=10ms p=1\n"
      "stop node=v1 at=2s\n");
  EXPECT_EQ(sc.name, "burst");
  EXPECT_EQ(sc.seed, 7u);
  ASSERT_EQ(sc.faults.size(), 2u);
  EXPECT_EQ(sc.faults[0].kind, FaultKind::kLoss);
  EXPECT_EQ(sc.faults[0].node, "v1");
  EXPECT_EQ(sc.faults[0].at, 1_s);
  EXPECT_EQ(sc.faults[0].duration, 10_ms);
  EXPECT_DOUBLE_EQ(sc.faults[0].probability, 1.0);
  EXPECT_EQ(sc.faults[1].kind, FaultKind::kNodeStop);
  EXPECT_EQ(sc.faults[1].duration, sim::SimTime::zero());
}

TEST(Scenario, ParseRejectsMalformedInput) {
  EXPECT_THROW(FaultScenario::parse("explode link=v1:0 at=1s"),
               sim::SimError);
  EXPECT_THROW(FaultScenario::parse("loss at=1s p=1"), sim::SimError);
  EXPECT_THROW(FaultScenario::parse("loss link=v1:0 at=1parsec"),
               sim::SimError);
  EXPECT_THROW(FaultScenario::parse("loss link=v1 at=1s"), sim::SimError);
  EXPECT_THROW(FaultScenario::parse("loss link=v1:0 at=1s zorp=3"),
               sim::SimError);
}

// ---------------------------------------------------------------------
// A two-host wire for data-path behaviour.

struct WireFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  net::HostNode* a;
  net::HostNode* b;
  FaultPlane plane;
  std::vector<sim::SimTime> rx_times;
  std::vector<net::Frame> rx_frames;

  explicit WireFixture(std::uint64_t seed = 42)
      : a(&network.add_node<net::HostNode>("a", net::MacAddress{0xA})),
        b(&network.add_node<net::HostNode>("b", net::MacAddress{0xB})),
        plane(network, seed) {
    network.connect(a->id(), 0, b->id(), 0);
    network.set_faults(&plane);
    b->set_receiver([this](net::Frame f, sim::SimTime at) {
      rx_times.push_back(at);
      rx_frames.push_back(std::move(f));
    });
  }

  void send_burst(int n, sim::SimTime period,
                  sim::SimTime start = sim::SimTime::zero()) {
    for (int i = 0; i < n; ++i) {
      simulator.schedule_at(start + period * i, [this] {
        net::Frame f;
        f.dst = net::MacAddress{0xB};
        f.payload.assign(64, 0x55);
        a->send(std::move(f));
      });
    }
  }
};

TEST(FaultPlane, LinkDownDropsEveryFrameByCause) {
  WireFixture fx;
  fx.plane.set_link_down(fx.a->id(), 0, true);
  fx.send_burst(5, 1_ms);
  fx.simulator.run_until(100_ms);
  EXPECT_TRUE(fx.rx_times.empty());
  // The egress queue kept draining: a dead medium still serializes, so
  // all five frames were offered to the wire (no queue deadlock).
  EXPECT_EQ(fx.network.counters().frames_offered, 5u);
  EXPECT_EQ(fx.network.counters().frames_delivered, 0u);
  EXPECT_EQ(fx.plane.counters().dropped_link_down, 5u);
  EXPECT_EQ(fx.plane.counters().link_down_events, 1u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);

  // Back up: traffic flows again.
  fx.plane.set_link_down(fx.a->id(), 0, false);
  fx.send_burst(3, 1_ms, 200_ms);
  fx.simulator.run_until(300_ms);
  EXPECT_EQ(fx.rx_times.size(), 3u);
  EXPECT_EQ(fx.plane.counters().link_up_events, 1u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, LinkDownIsSymmetric) {
  WireFixture fx;
  // Down via the *peer's* endpoint: a's transmissions must die too.
  fx.plane.set_link_down(fx.b->id(), 0, true);
  EXPECT_TRUE(fx.plane.link_is_down(fx.a->id(), 0));
  fx.send_burst(2, 1_ms);
  fx.simulator.run_until(10_ms);
  EXPECT_TRUE(fx.rx_times.empty());
  EXPECT_EQ(fx.plane.counters().dropped_link_down, 2u);
}

TEST(FaultPlane, LossIsSeededAndConserved) {
  const auto dropped_with_seed = [](std::uint64_t seed) {
    WireFixture fx{seed};
    fx.plane.profile(fx.a->id(), 0).loss = 0.5;
    fx.send_burst(200, 100_us);
    fx.simulator.run_until(1_s);
    EXPECT_EQ(fx.rx_times.size() + fx.plane.counters().dropped_loss, 200u);
    EXPECT_EQ(fx.plane.conservation_residual(), 0);
    // Sanity: p=0.5 over 200 frames is never all-or-nothing.
    EXPECT_GT(fx.plane.counters().dropped_loss, 50u);
    EXPECT_LT(fx.plane.counters().dropped_loss, 150u);
    return fx.plane.counters().dropped_loss;
  };
  const std::uint64_t first = dropped_with_seed(7);
  EXPECT_EQ(first, dropped_with_seed(7));  // same seed, same losses
}

TEST(FaultPlane, CorruptionFlipsExactlyOneBit) {
  WireFixture fx;
  fx.plane.profile(fx.a->id(), 0).corrupt = 1.0;
  fx.send_burst(1, 1_ms);
  fx.simulator.run_until(10_ms);
  ASSERT_EQ(fx.rx_frames.size(), 1u);
  const auto& payload = fx.rx_frames[0].payload;
  ASSERT_EQ(payload.size(), 64u);
  int flipped_bits = 0;
  for (const std::uint8_t byte : payload) {
    for (int bit = 0; bit < 8; ++bit) {
      if (((byte >> bit) & 1) != ((0x55 >> bit) & 1)) ++flipped_bits;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(fx.plane.counters().corrupted, 1u);
  // Corrupted frames are delivered (a real NIC would FCS-drop them later;
  // here the protocol layer sees and rejects the damage), so the ledger
  // counts them as delivered, not dropped.
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, DuplicationDeliversTwiceAndBalances) {
  WireFixture fx;
  fx.plane.profile(fx.a->id(), 0).duplicate = 1.0;
  fx.send_burst(3, 1_ms);
  fx.simulator.run_until(10_ms);
  EXPECT_EQ(fx.rx_times.size(), 6u);
  EXPECT_EQ(fx.plane.counters().duplicated, 3u);
  EXPECT_EQ(fx.network.counters().frames_delivered, 6u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, ReorderedFrameIsOvertaken) {
  WireFixture fx;
  // Frame A passes a link that delays it 1 ms; the profile is cleared
  // before frame B follows, so B arrives first: a genuine reordering.
  fx.plane.profile(fx.a->id(), 0).reorder = 1.0;
  fx.plane.profile(fx.a->id(), 0).reorder_delay = 1_ms;
  fx.send_burst(1, 1_ms);
  fx.simulator.schedule_at(100_us, [&fx] {
    fx.plane.profile(fx.a->id(), 0).reorder = 0.0;
  });
  fx.send_burst(1, 1_ms, 200_us);
  fx.simulator.run_until(10_ms);
  ASSERT_EQ(fx.rx_times.size(), 2u);
  // Second arrival is the reordered first frame.
  EXPECT_GT(fx.rx_times[1], 1_ms);
  EXPECT_LT(fx.rx_times[0], 1_ms);
  EXPECT_EQ(fx.plane.counters().reordered, 1u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, JitterIsBoundedAndSeeded) {
  const auto arrivals_with_seed = [](std::uint64_t seed) {
    WireFixture fx{seed};
    fx.plane.profile(fx.a->id(), 0).jitter_max = 100_us;
    fx.send_burst(20, 1_ms);
    fx.simulator.run_until(100_ms);
    EXPECT_EQ(fx.rx_times.size(), 20u);
    EXPECT_EQ(fx.plane.counters().jittered, 20u);
    for (std::size_t i = 0; i < fx.rx_times.size(); ++i) {
      const sim::SimTime base = 1_ms * static_cast<std::int64_t>(i);
      EXPECT_GE(fx.rx_times[i], base);
      EXPECT_LE(fx.rx_times[i], base + 110_us);  // wire + <=100us jitter
    }
    return fx.rx_times;
  };
  const auto first = arrivals_with_seed(9);
  EXPECT_EQ(first, arrivals_with_seed(9));
  EXPECT_NE(first, arrivals_with_seed(10));
}

TEST(FaultPlane, CrashedReceiverAbsorbsInFlightFrames) {
  WireFixture fx;
  bool crash_seen = false;
  fx.plane.set_crash_handler(fx.b->id(), [&] { crash_seen = true; });
  fx.plane.crash_node(fx.b->id());
  EXPECT_TRUE(crash_seen);
  EXPECT_FALSE(fx.plane.node_alive(fx.b->id()));
  ASSERT_TRUE(fx.plane.crashed_at(fx.b->id()).has_value());
  fx.send_burst(4, 1_ms);
  fx.simulator.run_until(50_ms);
  EXPECT_TRUE(fx.rx_times.empty());
  EXPECT_EQ(fx.plane.counters().dropped_receiver_down, 4u);
  EXPECT_EQ(fx.b->counters().received, 0u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, CrashedSenderSuppressesBeforeTheWire) {
  WireFixture fx;
  fx.plane.crash_node(fx.a->id());
  fx.send_burst(3, 1_ms);
  fx.simulator.run_until(50_ms);
  EXPECT_TRUE(fx.rx_times.empty());
  // Suppressed at the host send hook: the frames never reached transmit().
  EXPECT_EQ(fx.plane.counters().suppressed_tx, 3u);
  EXPECT_EQ(fx.network.counters().frames_offered, 0u);
  EXPECT_EQ(fx.a->counters().sent, 0u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, RestartRestoresTrafficAndFiresHandler) {
  WireFixture fx;
  int restarts = 0;
  fx.plane.set_restart_handler(fx.b->id(), [&] { ++restarts; });
  fx.plane.crash_node(fx.b->id());
  fx.send_burst(2, 1_ms);
  fx.simulator.schedule_at(10_ms, [&fx] { fx.plane.restart_node(fx.b->id()); });
  fx.send_burst(2, 1_ms, 20_ms);
  fx.simulator.run_until(50_ms);
  EXPECT_EQ(restarts, 1);
  EXPECT_TRUE(fx.plane.node_alive(fx.b->id()));
  EXPECT_EQ(fx.rx_times.size(), 2u);
  EXPECT_EQ(fx.plane.counters().dropped_receiver_down, 2u);
  EXPECT_EQ(fx.plane.counters().node_crashes, 1u);
  EXPECT_EQ(fx.plane.counters().node_restarts, 1u);
}

TEST(FaultPlane, ScheduledScenarioDrivesTheWindows) {
  WireFixture fx;
  FaultScenario sc = FaultScenario::parse(
      "name window\n"
      "seed 42\n"
      "loss link=a:0 at=10ms dur=10ms p=1\n");
  fx.plane.schedule(sc);
  fx.send_burst(30, 1_ms);  // 0..29ms: frames in [10ms, 20ms) must die
  fx.simulator.run_until(100_ms);
  EXPECT_EQ(fx.plane.counters().dropped_loss, 10u);
  EXPECT_EQ(fx.rx_times.size(), 20u);
  EXPECT_EQ(fx.plane.conservation_residual(), 0);
}

TEST(FaultPlane, ScenarioRejectsUnknownNode) {
  WireFixture fx;
  FaultScenario sc =
      FaultScenario::parse("crash node=nonexistent at=1ms\n");
  EXPECT_THROW(fx.plane.schedule(sc), sim::SimError);
}

TEST(FaultPlane, CountersExportToMetricsPlane) {
  WireFixture fx;
  obs::ObsHub hub;
  fx.network.set_obs(&hub);
  fx.plane.register_metrics(hub);
  fx.plane.set_link_down(fx.a->id(), 0, true);
  fx.send_burst(2, 1_ms);
  fx.simulator.run_until(10_ms);
  const std::string prom = hub.metrics().to_prometheus();
  EXPECT_NE(prom.find("steelnet_faults_dropped_link_down{node=\"faults\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("steelnet_faults_link_down_events{node=\"faults\"} 1"),
            std::string::npos);
}

TEST(FaultPlane, FaultEventsAppearInFrameBreakdown) {
  WireFixture fx;
  obs::ObsHub hub;
  fx.network.set_obs(&hub);
  fx.plane.set_link_down(fx.a->id(), 0, true);
  fx.send_burst(1, 1_ms);
  fx.simulator.run_until(10_ms);
  // The frame got a trace id; its breakdown ends in a fault:link_down
  // span on the link track instead of a delivery.
  bool found = false;
  for (const auto& row : hub.breakdown(1)) {
    if (row.hop == "fault:link_down") found = true;
  }
  EXPECT_TRUE(found);
  const std::string json = obs::chrome_trace_json(hub.tracer());
  EXPECT_NE(json.find("fault:link_down"), std::string::npos);
}

TEST(FaultPlane, QuietPlaneDoesNotPerturbObsExports) {
  // Attached-but-idle faults must leave the observability exports
  // byte-identical to a run with no fault plane at all.
  const auto run = [](bool with_plane) {
    sim::Simulator simulator;
    net::Network network{simulator};
    obs::ObsHub hub;
    auto& a = network.add_node<net::HostNode>("a", net::MacAddress{0xA});
    auto& b = network.add_node<net::HostNode>("b", net::MacAddress{0xB});
    network.connect(a.id(), 0, b.id(), 0);
    network.set_obs(&hub);
    network.register_metrics(hub);
    a.register_metrics(hub);
    b.register_metrics(hub);
    FaultPlane plane{network, 42};
    if (with_plane) network.set_faults(&plane);
    for (int i = 0; i < 10; ++i) {
      simulator.schedule_at(sim::milliseconds(i), [&a] {
        net::Frame f;
        f.dst = net::MacAddress{0xB};
        f.payload.assign(64, 1);
        a.send(std::move(f));
      });
    }
    simulator.run_until(100_ms);
    return hub.metrics().to_prometheus() + "\n---\n" +
           obs::chrome_trace_json(hub.tracer());
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------
// Incarnation epochs: overlapping crash/restart schedules across node
// lifetimes.

TEST(FaultPlane, StaleEpochRestartNeverResurrectsLaterKill) {
  WireFixture fx;
  const net::NodeId a = fx.a->id();

  // Crash #1; an orchestrator schedules "bring it back at 20 ms" with the
  // epoch it saw at crash time.
  fx.simulator.schedule_at(sim::milliseconds(1),
                           [&] { fx.plane.crash_node(a); });
  std::uint64_t epoch_at_crash1 = 0;
  fx.simulator.schedule_at(sim::milliseconds(2), [&] {
    epoch_at_crash1 = fx.plane.incarnation(a);
  });
  bool stale_restart_happened = true;
  fx.simulator.schedule_at(sim::milliseconds(20), [&] {
    stale_restart_happened = fx.plane.restart_node_if(a, epoch_at_crash1);
  });

  // Meanwhile the node restarts and is killed AGAIN in a later epoch,
  // both before the scheduled restart fires.
  fx.simulator.schedule_at(sim::milliseconds(5),
                           [&] { fx.plane.restart_node(a); });
  fx.simulator.schedule_at(sim::milliseconds(10),
                           [&] { fx.plane.crash_node(a); });

  fx.simulator.run_until(sim::milliseconds(30));
  // The stale restart must have been vetoed: the second kill wins.
  EXPECT_FALSE(stale_restart_happened);
  EXPECT_FALSE(fx.plane.node_alive(a));
  EXPECT_TRUE(fx.plane.crashed_at(a).has_value());

  // A restart keyed to the CURRENT epoch still works.
  bool fresh_restart_happened = false;
  fx.simulator.schedule_at(sim::milliseconds(40), [&] {
    fresh_restart_happened =
        fx.plane.restart_node_if(a, fx.plane.incarnation(a));
  });
  fx.simulator.run_until(sim::milliseconds(50));
  EXPECT_TRUE(fresh_restart_happened);
  EXPECT_TRUE(fx.plane.node_alive(a));
}

TEST(FaultPlane, NodeWatchersSeeEveryTransitionWithMonotonicEpochs) {
  WireFixture fx;
  const net::NodeId a = fx.a->id();

  std::vector<NodeEvent> seen;
  fx.plane.add_node_watcher([&](const NodeEvent& ev) {
    if (ev.node == a) seen.push_back(ev);
  });
  std::vector<NodeEvent> seen_too;  // multi-subscriber: both get the feed
  fx.plane.add_node_watcher([&](const NodeEvent& ev) {
    if (ev.node == a) seen_too.push_back(ev);
  });

  fx.simulator.schedule_at(sim::milliseconds(1),
                           [&] { fx.plane.crash_node(a); });
  fx.simulator.schedule_at(sim::milliseconds(5),
                           [&] { fx.plane.restart_node(a); });
  fx.simulator.schedule_at(sim::milliseconds(9),
                           [&] { fx.plane.stop_node(a); });
  fx.simulator.run_until(sim::milliseconds(20));

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].kind, NodeEvent::Kind::kCrash);
  EXPECT_EQ(seen[1].kind, NodeEvent::Kind::kRestart);
  EXPECT_EQ(seen[2].kind, NodeEvent::Kind::kStop);
  EXPECT_EQ(seen[0].at, sim::milliseconds(1));
  EXPECT_EQ(seen[1].at, sim::milliseconds(5));
  EXPECT_EQ(seen[2].at, sim::milliseconds(9));
  // Every transition bumps the epoch; the last event carries the current.
  EXPECT_LT(seen[0].epoch, seen[1].epoch);
  EXPECT_LT(seen[1].epoch, seen[2].epoch);
  EXPECT_EQ(seen[2].epoch, fx.plane.incarnation(a));
  ASSERT_EQ(seen_too.size(), 3u);
  EXPECT_EQ(seen_too[1].epoch, seen[1].epoch);
}

}  // namespace
}  // namespace steelnet::faults
