// Fault injection under sharding: every cell's FaultPlane lives on its
// owning shard, so crash storms, lossy windows, watchdog trips and the
// per-cause drop ledger replay byte-identically at any shard count --
// including the switchover/outage latencies the availability story
// reports.
#include <gtest/gtest.h>

#include "net/campus.hpp"

namespace steelnet::faults {
namespace {

net::CampusOptions faulty_campus(std::size_t shards, std::uint64_t seed) {
  net::CampusOptions opt;
  opt.cells = 10;
  opt.devices_per_cell = 3;
  opt.cycle = sim::milliseconds(4);
  opt.horizon = sim::milliseconds(120);
  opt.seed = seed;
  opt.shards = shards;
  opt.faults = true;
  return opt;
}

TEST(ShardedFaults, DropLedgerByteIdenticalShards1Vs4) {
  const net::CampusResult golden = run_campus(faulty_campus(1, 33));
  const net::CampusResult sharded = run_campus(faulty_campus(4, 33));

  ASSERT_EQ(golden.cells.size(), sharded.cells.size());
  for (std::size_t i = 0; i < golden.cells.size(); ++i) {
    const net::CellReport& a = golden.cells[i];
    const net::CellReport& b = sharded.cells[i];
    EXPECT_EQ(a.dropped_loss, b.dropped_loss) << a.name;
    EXPECT_EQ(a.dropped_link_down, b.dropped_link_down) << a.name;
    EXPECT_EQ(a.dropped_sender_down, b.dropped_sender_down) << a.name;
    EXPECT_EQ(a.dropped_receiver_down, b.dropped_receiver_down) << a.name;
    EXPECT_EQ(a.node_crashes, b.node_crashes) << a.name;
    EXPECT_EQ(a.node_restarts, b.node_restarts) << a.name;
    EXPECT_EQ(a.watchdog_trips, b.watchdog_trips) << a.name;
    EXPECT_EQ(a.controller_trips, b.controller_trips) << a.name;
    EXPECT_EQ(a.outages, b.outages) << a.name;
    EXPECT_EQ(a.outage_ns_total, b.outage_ns_total) << a.name;
  }
  EXPECT_EQ(golden.to_csv(), sharded.to_csv());
  EXPECT_EQ(golden.fingerprint(), sharded.fingerprint());
}

TEST(ShardedFaults, EveryCellInjectsAndConserves) {
  const net::CampusResult r = run_campus(faulty_campus(4, 33));
  std::uint64_t crashes = 0;
  std::uint64_t trips = 0;
  for (const net::CellReport& c : r.cells) {
    crashes += c.node_crashes;
    trips += c.watchdog_trips;
    // The scenario schedules exactly one controller-host crash per cell.
    EXPECT_EQ(c.node_crashes, 1u) << c.name;
    EXPECT_EQ(c.node_restarts, 1u) << c.name;
    // Conservation: every frame the plane killed is attributed to
    // exactly one cause -- the residual is zero in every cell.
    EXPECT_EQ(c.conservation_residual, 0) << c.name;
  }
  EXPECT_EQ(crashes, r.cells.size());
  // Crash outages are longer than the watchdog, so trips occur.
  EXPECT_GT(trips, 0u);
}

TEST(ShardedFaults, OutageLatenciesMatchWatchdogSemantics) {
  const net::CampusResult r = run_campus(faulty_campus(2, 33));
  for (const net::CellReport& c : r.cells) {
    if (c.outages == 0) continue;
    // A closed outage spans watchdog-trip -> outputs-running; with a
    // 4 ms cycle it is at least one cycle and far below the horizon.
    const std::int64_t mean = c.outage_ns_total /
                              static_cast<std::int64_t>(c.outages);
    EXPECT_GE(mean, sim::milliseconds(4).nanos()) << c.name;
    EXPECT_LT(mean, sim::milliseconds(120).nanos()) << c.name;
  }
}

TEST(ShardedFaults, DifferentSeedsDifferentStorms) {
  const net::CampusResult a = run_campus(faulty_campus(2, 33));
  const net::CampusResult b = run_campus(faulty_campus(2, 34));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace steelnet::faults
