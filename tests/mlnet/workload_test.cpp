#include "mlnet/workload.hpp"

#include <gtest/gtest.h>

namespace steelnet::mlnet {
namespace {

TEST(Degradation, CleanAccuracyAtZeroSeverity) {
  for (MlApp app : all_ml_apps()) {
    for (Corruption c : {Corruption::kCompression, Corruption::kFrameLoss,
                         Corruption::kJitter}) {
      EXPECT_NEAR(accuracy(app, c, 0.0), clean_accuracy(app), 1e-9)
          << to_string(app) << "/" << to_string(c);
    }
  }
}

TEST(Degradation, MonotoneNonIncreasing) {
  for (MlApp app : all_ml_apps()) {
    for (Corruption c : {Corruption::kCompression, Corruption::kFrameLoss,
                         Corruption::kJitter}) {
      double prev = 2.0;
      for (int i = 0; i <= 100; ++i) {
        const double a = accuracy(app, c, i / 100.0);
        EXPECT_LE(a, prev + 1e-12);
        prev = a;
      }
    }
  }
}

TEST(Degradation, SeverityClamped) {
  const double lo = accuracy(MlApp::kDefectDetection,
                             Corruption::kFrameLoss, -5.0);
  EXPECT_NEAR(lo, clean_accuracy(MlApp::kDefectDetection), 1e-9);
  const double hi = accuracy(MlApp::kDefectDetection,
                             Corruption::kFrameLoss, 5.0);
  EXPECT_LT(hi, 0.6);
}

TEST(Degradation, DefectDetectionMoreSensitive) {
  // §5 / [85]: fine-grained defect features degrade before coarse object
  // features at the same corruption severity.
  for (double sev : {0.3, 0.5, 0.7, 0.9}) {
    const double obj = accuracy(MlApp::kObjectIdentification,
                                Corruption::kFrameLoss, sev) -
                       clean_accuracy(MlApp::kObjectIdentification);
    const double def = accuracy(MlApp::kDefectDetection,
                                Corruption::kFrameLoss, sev) -
                       clean_accuracy(MlApp::kDefectDetection);
    EXPECT_LE(def, obj + 1e-9) << sev;
  }
}

TEST(Degradation, RequiredBytesShrinkWithLowerTargets) {
  const auto strict = required_frame_bytes(MlApp::kDefectDetection, 0.95);
  const auto relaxed = required_frame_bytes(MlApp::kDefectDetection, 0.80);
  EXPECT_LT(relaxed, strict);
  EXPECT_GT(strict, 1024u);
  EXPECT_LT(strict, workload_params(MlApp::kDefectDetection).raw_frame_bytes);
}

TEST(Degradation, DefectNeedsMoreBytesThanObjectId) {
  // Same accuracy target, heavier data: the "accuracy vs data quantity"
  // trade-off that drives network dimensioning.
  EXPECT_GT(required_frame_bytes(MlApp::kDefectDetection, 0.9),
            required_frame_bytes(MlApp::kObjectIdentification, 0.9));
}

TEST(Degradation, ImpossibleTargetThrows) {
  EXPECT_THROW(required_frame_bytes(MlApp::kDefectDetection, 0.999),
               std::invalid_argument);
}

TEST(Degradation, OfferedLoadMatchesBytesTimesRate) {
  const auto bytes = required_frame_bytes(MlApp::kObjectIdentification, 0.9);
  const auto params = workload_params(MlApp::kObjectIdentification);
  EXPECT_DOUBLE_EQ(client_offered_bps(MlApp::kObjectIdentification, 0.9),
                   double(bytes) * 8.0 * params.fps);
}

TEST(Workload, ParamsSane) {
  for (MlApp app : all_ml_apps()) {
    const auto p = workload_params(app);
    EXPECT_GT(p.raw_frame_bytes, 0u);
    EXPECT_GT(p.fps, 0.0);
    EXPECT_GT(p.service_ns, 0);
    EXPECT_GT(p.server_workers, 0u);
  }
  EXPECT_EQ(to_string(MlApp::kDefectDetection), "Defect Detection");
}

}  // namespace
}  // namespace steelnet::mlnet
