#include "mlnet/topologies.hpp"

#include <gtest/gtest.h>

#include "mlnet/inference.hpp"
#include "sim/simulator.hpp"

namespace steelnet::mlnet {
namespace {

using namespace steelnet::sim::literals;

TEST(MlAwarePlanner, RespectsLinkBudget) {
  const auto plan = plan_ml_aware(MlApp::kDefectDetection, 128, 0.95,
                                  1'000'000'000, 0.6);
  EXPECT_GT(plan.clients_per_cell, 0u);
  EXPECT_LE(plan.cell_load_bps, 1e9 * 0.6 + plan.per_client_bps);
  EXPECT_GE(plan.cells * plan.clients_per_cell, 128u);
}

TEST(MlAwarePlanner, MoreClientsMoreCells) {
  const auto small = plan_ml_aware(MlApp::kObjectIdentification, 32, 0.95,
                                   1'000'000'000);
  const auto large = plan_ml_aware(MlApp::kObjectIdentification, 256, 0.95,
                                   1'000'000'000);
  EXPECT_EQ(small.clients_per_cell, large.clients_per_cell);
  EXPECT_GT(large.cells, small.cells);
}

TEST(MlAwarePlanner, HigherAccuracySmallerCells) {
  const auto strict = plan_ml_aware(MlApp::kDefectDetection, 128, 0.95,
                                    100'000'000);
  const auto relaxed = plan_ml_aware(MlApp::kDefectDetection, 128, 0.70,
                                     100'000'000);
  EXPECT_LE(strict.clients_per_cell, relaxed.clients_per_cell);
}

TEST(MlAwarePlanner, ZeroClientsThrows) {
  EXPECT_THROW(plan_ml_aware(MlApp::kDefectDetection, 0, 0.9, 1e9),
               std::invalid_argument);
}

class TopologyBuild : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyBuild, AllClientsCanReachTheirServer) {
  sim::Simulator simulator;
  net::Network network{simulator};
  const auto mf = build_ml_topology(network, GetParam(),
                                    MlApp::kObjectIdentification, 16);
  ASSERT_EQ(mf.clients.size(), 16u);
  ASSERT_FALSE(mf.servers.empty());
  ASSERT_EQ(mf.client_server.size(), 16u);

  // Ping each client's assigned server through the built fabric.
  int delivered = 0;
  for (std::size_t c = 0; c < mf.clients.size(); ++c) {
    auto& client = dynamic_cast<net::HostNode&>(network.node(mf.clients[c]));
    auto& server = dynamic_cast<net::HostNode&>(
        network.node(mf.servers[mf.client_server[c]]));
    server.set_receiver(
        [&delivered](net::Frame, sim::SimTime) { ++delivered; });
    net::Frame f;
    f.dst = server.mac();
    f.payload.resize(64);
    client.send(std::move(f));
  }
  simulator.run();
  EXPECT_EQ(delivered, 16);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TopologyBuild,
                         ::testing::ValuesIn(all_topologies()));

TEST(TopologyBuild, MlAwareUsesPlannedCells) {
  sim::Simulator simulator;
  net::Network network{simulator};
  const auto plan = plan_ml_aware(MlApp::kDefectDetection, 64, 0.95,
                                  1'000'000'000);
  const auto mf = build_ml_topology(network, TopologyKind::kMlAware,
                                    MlApp::kDefectDetection, 64);
  EXPECT_EQ(mf.servers.size(), plan.cells);
  // agg + one switch per cell
  EXPECT_EQ(mf.switches, plan.cells + 1);
}

TEST(TopologyBuild, RingHasSingleServer) {
  sim::Simulator simulator;
  net::Network network{simulator};
  const auto mf = build_ml_topology(network, TopologyKind::kRing,
                                    MlApp::kObjectIdentification, 32);
  EXPECT_EQ(mf.servers.size(), 1u);
  EXPECT_EQ(mf.switches, 16u);
}

TEST(TopologyBuild, ZeroClientsThrows) {
  sim::Simulator simulator;
  net::Network network{simulator};
  EXPECT_THROW(build_ml_topology(network, TopologyKind::kRing,
                                 MlApp::kObjectIdentification, 0),
               std::invalid_argument);
}

TEST(Inference, SmallExperimentCompletes) {
  InferenceConfig cfg;
  cfg.topology = TopologyKind::kMlAware;
  cfg.clients = 8;
  cfg.duration = 500_ms;
  const auto r = run_inference_experiment(cfg);
  EXPECT_GT(r.requests, 8u * 3);
  // Nearly every request answered (the drain window catches stragglers).
  EXPECT_GE(r.responses + 8, r.requests);
  EXPECT_GT(r.latency_ms.count(), 0u);
  EXPECT_GT(r.latency_ms.median(), 0.0);
  EXPECT_LT(r.latency_ms.median(), 50.0);
}

TEST(Inference, Fig6OrderingHoldsAtModestScale) {
  // The headline claim at reduced scale (64 clients, short run):
  // ML-aware < leaf-spine < ring in median latency.
  InferenceConfig cfg;
  cfg.app = MlApp::kDefectDetection;
  cfg.clients = 64;
  cfg.duration = 1_s;
  double medians[3] = {};
  for (TopologyKind k : all_topologies()) {
    cfg.topology = k;
    medians[std::size_t(k)] = run_inference_experiment(cfg).latency_ms.median();
  }
  EXPECT_LT(medians[std::size_t(TopologyKind::kMlAware)],
            medians[std::size_t(TopologyKind::kLeafSpine)]);
  EXPECT_LT(medians[std::size_t(TopologyKind::kLeafSpine)],
            medians[std::size_t(TopologyKind::kRing)]);
}

TEST(Inference, DeterministicForSeed) {
  InferenceConfig cfg;
  cfg.topology = TopologyKind::kLeafSpine;
  cfg.clients = 8;
  cfg.duration = 300_ms;
  cfg.seed = 77;
  const auto a = run_inference_experiment(cfg);
  const auto b = run_inference_experiment(cfg);
  EXPECT_EQ(a.requests, b.requests);
  ASSERT_EQ(a.latency_ms.count(), b.latency_ms.count());
  EXPECT_EQ(a.latency_ms.median(), b.latency_ms.median());
}

}  // namespace
}  // namespace steelnet::mlnet
