#include "flowmon/ipfix.hpp"

#include <gtest/gtest.h>

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

ExportRecord sample_record() {
  ExportRecord r;
  r.key.src = net::MacAddress{0x0a'1234'5678'9aULL};
  r.key.dst = net::MacAddress{0x0c'0000'000007ULL};
  r.key.pcp = 6;
  r.key.ethertype = net::EtherType::kProfinetRt;
  r.packets = 12345;
  r.bytes = 987654;
  r.wire_bytes = 1222333;
  r.first_seen = 1_ms;
  r.last_seen = 1900_ms;
  r.min_iat = 990_us;
  r.mean_iat = 1_ms;
  r.jitter = 3_us;
  r.end_reason = EndReason::kActiveTimeout;
  return r;
}

MessageHeader header_with(std::uint32_t seq) {
  MessageHeader h;
  h.observation_domain = 7;
  h.sequence = seq;
  h.export_time = 2_s;
  return h;
}

void expect_equal(const ExportRecord& a, const ExportRecord& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.first_seen, b.first_seen);
  EXPECT_EQ(a.last_seen, b.last_seen);
  EXPECT_EQ(a.min_iat, b.min_iat);
  EXPECT_EQ(a.mean_iat, b.mean_iat);
  EXPECT_EQ(a.jitter, b.jitter);
  EXPECT_EQ(a.end_reason, b.end_reason);
}

TEST(Ipfix, RoundTripThroughTemplate) {
  const auto buf = encode_message(header_with(42), flow_template(),
                                  /*include_template=*/true,
                                  {sample_record(), sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.version, MessageHeader::kVersion);
  EXPECT_EQ(msg->header.observation_domain, 7u);
  EXPECT_EQ(msg->header.sequence, 42u);
  EXPECT_EQ(msg->header.export_time, 2_s);
  EXPECT_EQ(msg->templates_learned, 1);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_EQ(msg->records.size(), 2u);
  expect_equal(msg->records[0], sample_record());
  expect_equal(msg->records[1], sample_record());
  EXPECT_EQ(msg->records_without_template, 0);
}

TEST(Ipfix, DataBeforeTemplateIsSkippedThenDecodesAfterLearning) {
  TemplateStore store;
  const auto data_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/false,
                                        {sample_record()});
  auto msg = decode_message(data_only, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 0u);
  EXPECT_EQ(msg->records_without_template, 1);

  // Template-only advertisement, then the same data decodes.
  const auto tmpl_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/true, {});
  ASSERT_TRUE(decode_message(tmpl_only, store).has_value());
  msg = decode_message(data_only, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  expect_equal(msg->records[0], sample_record());
}

TEST(Ipfix, TemplatesAreScopedPerObservationDomain) {
  TemplateStore store;
  const auto tmpl_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/true, {});
  ASSERT_TRUE(decode_message(tmpl_only, store).has_value());
  // A different domain has not advertised template 256.
  auto other = header_with(0);
  other.observation_domain = 9;
  const auto data = encode_message(other, flow_template(),
                                   /*include_template=*/false,
                                   {sample_record()});
  const auto msg = decode_message(data, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 0u);
  EXPECT_EQ(msg->records_without_template, 1);
}

TEST(Ipfix, UnknownFieldsSkippedByWidth) {
  // A future meter exports an extra private field the collector does not
  // understand; template-driven decode skips it by width and still gets
  // the known fields right.
  Template extended;
  extended.id = 300;
  extended.fields = {{FieldId::kSrcMac, 6},
                     {static_cast<FieldId>(0x7777), 3},  // unknown to us
                     {FieldId::kPackets, 8},
                     {FieldId::kEndReason, 1}};
  ExportRecord r;
  r.key.src = net::MacAddress{0xbeef};
  r.packets = 999;
  r.end_reason = EndReason::kIdleTimeout;
  TemplateStore store;
  const auto buf =
      encode_message(header_with(0), extended, /*include_template=*/true, {r});
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].key.src.bits(), 0xbeefu);
  EXPECT_EQ(msg->records[0].packets, 999u);
  EXPECT_EQ(msg->records[0].end_reason, EndReason::kIdleTimeout);
}

TEST(Ipfix, MalformedBuffersRejected) {
  TemplateStore store;
  // Empty and garbage-version buffers.
  EXPECT_FALSE(decode_message({}, store).has_value());
  std::vector<std::uint8_t> bad(20, 0);
  bad[0] = 99;  // version != 10
  EXPECT_FALSE(decode_message(bad, store).has_value());
  // A valid message truncated mid-record: total length exceeds buffer.
  auto buf = encode_message(header_with(0), flow_template(),
                            /*include_template=*/true, {sample_record()});
  buf.resize(buf.size() - 10);
  EXPECT_FALSE(decode_message(buf, store).has_value());
  // Template advertising an absurd field width.
  std::vector<std::uint8_t> w = encode_message(header_with(0), flow_template(),
                                               /*include_template=*/true, {});
  // First field width lives at header(20) + set hdr(4) + tmpl id(2) +
  // field count(2) + field id(2); stomp it to 0.
  w[20 + 4 + 2 + 2 + 2] = 0;
  w[20 + 4 + 2 + 2 + 3] = 0;
  EXPECT_FALSE(decode_message(w, store).has_value());
}

TEST(Ipfix, ExportRecordSnapshotGuardsUnsampledIat) {
  FlowRecord r;
  r.key.src = net::MacAddress{1};
  r.packets = 1;
  r.bytes = 100;
  r.min_iat = sim::SimTime::max();  // never updated: single packet
  const auto e = to_export_record(r, EndReason::kForcedEnd);
  EXPECT_EQ(e.min_iat, sim::SimTime::zero());
  EXPECT_EQ(e.mean_iat, sim::SimTime::zero());
  EXPECT_EQ(e.jitter, sim::SimTime::zero());
  EXPECT_EQ(e.end_reason, EndReason::kForcedEnd);
}

TEST(Ipfix, RecordBytesMatchesTemplate) {
  // 6+6+2+1+8*8+1 = 80 bytes per record, the budget MeterConfig's
  // max_records_per_frame is sized against.
  EXPECT_EQ(flow_template().record_bytes(), 80u);
}

}  // namespace
}  // namespace steelnet::flowmon
