#include "flowmon/ipfix.hpp"

#include <gtest/gtest.h>

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

ExportRecord sample_record() {
  ExportRecord r;
  r.key.src = net::MacAddress{0x0a'1234'5678'9aULL};
  r.key.dst = net::MacAddress{0x0c'0000'000007ULL};
  r.key.pcp = 6;
  r.key.ethertype = net::EtherType::kProfinetRt;
  r.packets = 12345;
  r.bytes = 987654;
  r.wire_bytes = 1222333;
  r.first_seen = 1_ms;
  r.last_seen = 1900_ms;
  r.min_iat = 990_us;
  r.mean_iat = 1_ms;
  r.jitter = 3_us;
  r.end_reason = EndReason::kActiveTimeout;
  return r;
}

MessageHeader header_with(std::uint32_t seq) {
  MessageHeader h;
  h.observation_domain = 7;
  h.sequence = seq;
  h.export_time = 2_s;
  return h;
}

void expect_equal(const ExportRecord& a, const ExportRecord& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.first_seen, b.first_seen);
  EXPECT_EQ(a.last_seen, b.last_seen);
  EXPECT_EQ(a.min_iat, b.min_iat);
  EXPECT_EQ(a.mean_iat, b.mean_iat);
  EXPECT_EQ(a.jitter, b.jitter);
  EXPECT_EQ(a.end_reason, b.end_reason);
}

TEST(Ipfix, RoundTripThroughTemplate) {
  const auto buf = encode_message(header_with(42), flow_template(),
                                  /*include_template=*/true,
                                  {sample_record(), sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.version, MessageHeader::kVersion);
  EXPECT_EQ(msg->header.observation_domain, 7u);
  EXPECT_EQ(msg->header.sequence, 42u);
  EXPECT_EQ(msg->header.export_time, 2_s);
  EXPECT_EQ(msg->templates_learned, 1);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_EQ(msg->records.size(), 2u);
  expect_equal(msg->records[0], sample_record());
  expect_equal(msg->records[1], sample_record());
  EXPECT_EQ(msg->records_without_template, 0);
}

TEST(Ipfix, DataBeforeTemplateIsSkippedThenDecodesAfterLearning) {
  TemplateStore store;
  const auto data_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/false,
                                        {sample_record()});
  auto msg = decode_message(data_only, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 0u);
  EXPECT_EQ(msg->records_without_template, 1);

  // Template-only advertisement, then the same data decodes.
  const auto tmpl_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/true, {});
  ASSERT_TRUE(decode_message(tmpl_only, store).has_value());
  msg = decode_message(data_only, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  expect_equal(msg->records[0], sample_record());
}

TEST(Ipfix, TemplatesAreScopedPerObservationDomain) {
  TemplateStore store;
  const auto tmpl_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/true, {});
  ASSERT_TRUE(decode_message(tmpl_only, store).has_value());
  // A different domain has not advertised template 256.
  auto other = header_with(0);
  other.observation_domain = 9;
  const auto data = encode_message(other, flow_template(),
                                   /*include_template=*/false,
                                   {sample_record()});
  const auto msg = decode_message(data, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 0u);
  EXPECT_EQ(msg->records_without_template, 1);
}

TEST(Ipfix, UnknownFieldsSkippedByWidth) {
  // A future meter exports an extra private field the collector does not
  // understand; template-driven decode skips it by width and still gets
  // the known fields right.
  Template extended;
  extended.id = 300;
  extended.fields = {{FieldId::kSrcMac, 6},
                     {static_cast<FieldId>(0x7777), 3},  // unknown to us
                     {FieldId::kPackets, 8},
                     {FieldId::kEndReason, 1}};
  ExportRecord r;
  r.key.src = net::MacAddress{0xbeef};
  r.packets = 999;
  r.end_reason = EndReason::kIdleTimeout;
  TemplateStore store;
  const auto buf =
      encode_message(header_with(0), extended, /*include_template=*/true, {r});
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].key.src.bits(), 0xbeefu);
  EXPECT_EQ(msg->records[0].packets, 999u);
  EXPECT_EQ(msg->records[0].end_reason, EndReason::kIdleTimeout);
}

TEST(Ipfix, MalformedBuffersRejected) {
  TemplateStore store;
  // Empty and garbage-version buffers.
  EXPECT_FALSE(decode_message({}, store).has_value());
  std::vector<std::uint8_t> bad(20, 0);
  bad[0] = 99;  // version (BE u16 at offset 0) != 10
  EXPECT_FALSE(decode_message(bad, store).has_value());
  // A valid message truncated mid-record: total length exceeds buffer.
  auto buf = encode_message(header_with(0), flow_template(),
                            /*include_template=*/true, {sample_record()});
  buf.resize(buf.size() - 10);
  EXPECT_FALSE(decode_message(buf, store).has_value());
  // Template advertising an absurd field width.
  std::vector<std::uint8_t> w = encode_message(header_with(0), flow_template(),
                                               /*include_template=*/true, {});
  // First field width lives at header(16) + set hdr(4) + tmpl id(2) +
  // field count(2) + field id(2); stomp it to 0.
  w[16 + 4 + 2 + 2 + 2] = 0;
  w[16 + 4 + 2 + 2 + 3] = 0;
  EXPECT_FALSE(decode_message(w, store).has_value());
  // A set whose declared length overruns the message.
  std::vector<std::uint8_t> s = encode_message(header_with(0), flow_template(),
                                               /*include_template=*/true, {});
  wire::patch_be16(s, 16 + 2, static_cast<std::uint16_t>(s.size() + 8));
  EXPECT_FALSE(decode_message(s, store).has_value());
}

TEST(Ipfix, GoldenBigEndianWireBytes) {
  // Byte-exact RFC 7011 framing of a two-field template (one IANA, one
  // enterprise-specific) plus one data record: network byte order, the
  // 16-byte header, E-bit + PEN in the template set, 4-byte set padding.
  Template tmpl;
  tmpl.id = 257;
  tmpl.fields = {{FieldId::kPackets, 4}, {FieldId::kMinIatNs, 2}};
  ExportRecord r;
  r.packets = 0x01020304;
  r.min_iat = sim::SimTime{0x1122};

  MessageHeader h;
  h.export_time = 3_s;
  h.sequence = 0x0a0b0c0d;
  h.observation_domain = 5;
  const auto buf = encode_message(h, tmpl, /*include_template=*/true, {r});

  const std::vector<std::uint8_t> expected = {
      // header: version 10, length 48, exportTime 3 s, seq, domain 5
      0x00, 0x0a, 0x00, 0x30, 0x00, 0x00, 0x00, 0x03,
      0x0a, 0x0b, 0x0c, 0x0d, 0x00, 0x00, 0x00, 0x05,
      // template set (id 2, length 20): template 257, 2 fields
      0x00, 0x02, 0x00, 0x14, 0x01, 0x01, 0x00, 0x02,
      // packetDeltaCount(2) width 4; E-bit|1 width 2 + PEN 0xBEEF
      0x00, 0x02, 0x00, 0x04, 0x80, 0x01, 0x00, 0x02,
      0x00, 0x00, 0xbe, 0xef,
      // data set (id 257, length 12): record + 2 padding octets
      0x01, 0x01, 0x00, 0x0c, 0x01, 0x02, 0x03, 0x04,
      0x11, 0x22, 0x00, 0x00};
  EXPECT_EQ(buf, expected);

  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.sequence, 0x0a0b0c0du);
  EXPECT_EQ(msg->header.observation_domain, 5u);
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].packets, 0x01020304u);
  EXPECT_EQ(msg->records[0].min_iat.nanos(), 0x1122);
}

TEST(Ipfix, ExportTimeTruncatesToWireSeconds) {
  // exportTime is the RFC's 32-bit epoch-seconds field: sub-second
  // precision does not survive the wire.
  auto h = header_with(0);
  h.export_time = 2500_ms;
  TemplateStore store;
  const auto msg =
      decode_message(encode_message(h, flow_template(), true, {}), store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.export_time, 2_s);
}

TEST(Ipfix, ForeignPenFieldDecodesAsOpaquePadding) {
  // A template whose enterprise field belongs to someone else's PEN:
  // the decoder honours its width (records still tile) but binds the
  // value to nothing.
  Template tmpl;
  tmpl.id = 300;
  tmpl.fields = {{FieldId::kPackets, 8},
                 {FieldId::kMinIatNs, 4},
                 {FieldId::kOctets, 8}};
  ExportRecord r;
  r.packets = 7;
  r.min_iat = sim::SimTime{0x55};
  r.bytes = 1234;
  auto buf = encode_message(header_with(0), tmpl, /*include_template=*/true,
                            {r});
  // PEN of the second field: header(16) + set hdr(4) + id/count(4) +
  // field1(4) + field2 id/width(4) => offset 32..35. Stomp to a foreign
  // enterprise.
  buf[34] = 0xde;
  buf[35] = 0xad;
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].packets, 7u);
  EXPECT_EQ(msg->records[0].bytes, 1234u);
  EXPECT_EQ(msg->records[0].min_iat, sim::SimTime::zero());  // unbound
}

TEST(Ipfix, DataSetMustTileIntoWholeRecords) {
  // Hand-built message: an 8-byte-record template, then a data set whose
  // 6 payload octets neither tile into records nor pass as <=3 padding.
  std::vector<std::uint8_t> buf;
  wire::put_be(buf, MessageHeader::kVersion, 2);
  wire::put_be(buf, 0, 2);  // length, patched below
  wire::put_be(buf, 0, 4);
  wire::put_be(buf, 0, 4);
  wire::put_be(buf, 1, 4);
  wire::put_be(buf, 2, 2);   // template set
  wire::put_be(buf, 12, 2);  // set hdr + id/count + one field
  wire::put_be(buf, 256, 2);
  wire::put_be(buf, 1, 2);
  wire::put_be(buf, static_cast<std::uint16_t>(FieldId::kPackets), 2);
  wire::put_be(buf, 8, 2);
  wire::put_be(buf, 256, 2);  // data set: 6 octets of "record"
  wire::put_be(buf, 10, 2);
  for (int i = 0; i < 6; ++i) buf.push_back(0);
  wire::patch_be16(buf, 2, static_cast<std::uint16_t>(buf.size()));
  TemplateStore store;
  EXPECT_FALSE(decode_message(buf, store).has_value());

  // The same set carrying one whole record + 3 octets is legal padding.
  buf.resize(buf.size() - 6);
  wire::patch_be16(buf, buf.size() - 2, 4 + 8 + 3);
  wire::put_be(buf, 0x0000000000000009ULL, 8);
  for (int i = 0; i < 3; ++i) buf.push_back(0);
  wire::patch_be16(buf, 2, static_cast<std::uint16_t>(buf.size()));
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].packets, 9u);
}

TEST(Ipfix, MessagesAreFourByteAligned) {
  for (std::size_t n : {0u, 1u, 2u, 3u}) {
    const std::vector<ExportRecord> records(n, sample_record());
    const auto buf = encode_message(header_with(0), flow_template(),
                                    /*include_template=*/true, records);
    EXPECT_EQ(buf.size() % 4, 0u) << n << " records";
    // The wire length field agrees with the actual buffer.
    const std::size_t declared = (std::size_t(buf[2]) << 8) | buf[3];
    EXPECT_EQ(declared, buf.size());
  }
}

TEST(Ipfix, TemplatesAreScopedPerExporterSession) {
  // Two exporters sharing an observation domain must not clobber each
  // other's templates: the store keys on (session, domain, id).
  TemplateStore store;
  const auto tmpl_only = encode_message(header_with(0), flow_template(),
                                        /*include_template=*/true, {});
  ASSERT_TRUE(decode_message(tmpl_only, store, /*session=*/0xAA).has_value());
  const auto data = encode_message(header_with(1), flow_template(),
                                   /*include_template=*/false,
                                   {sample_record()});
  // Session 0xBB never advertised template 256.
  auto msg = decode_message(data, store, /*session=*/0xBB);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 0u);
  EXPECT_EQ(msg->records_without_template, 1);
  // Session 0xAA decodes it fine.
  msg = decode_message(data, store, /*session=*/0xAA);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 1u);
}

TEST(Ipfix, ExportRecordSnapshotGuardsUnsampledIat) {
  FlowRecord r;
  r.key.src = net::MacAddress{1};
  r.packets = 1;
  r.bytes = 100;
  r.min_iat = sim::SimTime::max();  // never updated: single packet
  const auto e = to_export_record(r, EndReason::kForcedEnd);
  EXPECT_EQ(e.min_iat, sim::SimTime::zero());
  EXPECT_EQ(e.mean_iat, sim::SimTime::zero());
  EXPECT_EQ(e.jitter, sim::SimTime::zero());
  EXPECT_EQ(e.end_reason, EndReason::kForcedEnd);
}

TEST(Ipfix, RecordBytesMatchesTemplate) {
  // 6+6+2+1+8*8+1 = 80 bytes per record, the budget MeterConfig's
  // max_records_per_frame is sized against.
  EXPECT_EQ(flow_template().record_bytes(), 80u);
}

}  // namespace
}  // namespace steelnet::flowmon
