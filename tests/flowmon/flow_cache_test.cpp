#include "flowmon/flow_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

net::Frame make_frame(std::uint64_t src, std::uint64_t dst,
                      std::size_t payload = 100, std::uint8_t pcp = 0) {
  net::Frame f;
  f.src = net::MacAddress{src};
  f.dst = net::MacAddress{dst};
  f.pcp = pcp;
  f.payload.assign(payload, 0);
  return f;
}

TEST(FlowKey, IdentityAndHashStability) {
  const auto f = make_frame(1, 2, 64, 3);
  const FlowKey k = FlowKey::of(f);
  EXPECT_EQ(k.src.bits(), 1u);
  EXPECT_EQ(k.dst.bits(), 2u);
  EXPECT_EQ(k.pcp, 3);
  EXPECT_EQ(k, FlowKey::of(f));
  EXPECT_EQ(k.hash(), FlowKey::of(f).hash());
  // Different pcp -> different flow.
  const FlowKey k2 = FlowKey::of(make_frame(1, 2, 64, 4));
  EXPECT_FALSE(k == k2);
  // PCP is masked to its 3 wire bits.
  net::Frame weird = make_frame(1, 2);
  weird.pcp = 0x7 | 0x10;
  EXPECT_EQ(FlowKey::of(weird).pcp, 0x7);
}

TEST(FlowCache, FindOrCreateAccumulates) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2, 150);
  EXPECT_NE(cache.record(f, 1_us), nullptr);
  EXPECT_NE(cache.record(f, 2_us), nullptr);
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->packets, 2u);
  EXPECT_EQ(r->bytes, 300u);
  // wire bytes: 150 payload + 18 L2 overhead, no VLAN tag, no padding.
  EXPECT_EQ(r->wire_bytes, 2 * (150 + 18));
  EXPECT_EQ(r->first_seen, 1_us);
  EXPECT_EQ(r->last_seen, 2_us);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(FlowCache, InterArrivalStatistics) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2);
  // Arrivals at 0, 100, 210, 300 us: IATs 100, 110, 90.
  for (std::int64_t t : {0, 100, 210, 300}) {
    cache.record(f, sim::microseconds(t));
  }
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->min_iat, 90_us);
  EXPECT_EQ(r->max_iat, 110_us);
  EXPECT_EQ(r->mean_iat(), 100_us);
  // Jitter: mean of |110-100| and |90-110| = (10+20)/2 = 15 us.
  EXPECT_EQ(r->mean_jitter(), 15_us);
}

TEST(FlowCache, IatUndefinedBelowThreePackets) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2);
  cache.record(f, 1_ms);
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mean_iat(), sim::SimTime::zero());
  EXPECT_EQ(r->mean_jitter(), sim::SimTime::zero());
  cache.record(f, 2_ms);
  EXPECT_EQ(r->mean_iat(), 1_ms);
  EXPECT_EQ(r->mean_jitter(), sim::SimTime::zero());
}

TEST(FlowCache, CapacityRoundsUpAndCapsLoad) {
  FlowCache cache(10);  // rounds to 16; load cap 12
  EXPECT_EQ(cache.capacity(), 16u);
  EXPECT_EQ(cache.load_cap(), 12u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    EXPECT_NE(cache.record(make_frame(i + 1, 99), 1_us), nullptr);
  }
  // Table at the cap: a new flow is refused ...
  EXPECT_EQ(cache.record(make_frame(100, 99), 2_us), nullptr);
  EXPECT_EQ(cache.stats().dropped_full, 1u);
  // ... but existing flows keep metering.
  EXPECT_NE(cache.record(make_frame(5, 99), 3_us), nullptr);
  EXPECT_EQ(cache.size(), 12u);
}

TEST(FlowCache, EraseKeepsClustersReachable) {
  // Fill a small table to force collision clusters, erase every other
  // flow, and verify backward-shift compaction keeps every survivor
  // findable (the classic open-addressing deletion bug this guards).
  FlowCache cache(32);  // load cap 24
  std::vector<FlowKey> keys;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto f = make_frame(i * 7 + 1, 42);
    ASSERT_NE(cache.record(f, sim::microseconds(std::int64_t(i))), nullptr);
    keys.push_back(FlowKey::of(f));
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(cache.erase(keys[i]));
  }
  EXPECT_EQ(cache.size(), 12u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const FlowRecord* r = cache.find(keys[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(r, nullptr);
    } else {
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->key, keys[i]);
    }
  }
  // Erasing a missing key is a no-op.
  EXPECT_FALSE(cache.erase(keys[0]));
  // Freed slots are reusable.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    const auto f = make_frame(keys[i].src.bits(), 42);
    EXPECT_NE(cache.record(f, 1_ms), nullptr);
  }
  EXPECT_EQ(cache.size(), 24u);
}

TEST(FlowCache, ForEachVisitsEveryLiveRecord) {
  FlowCache cache(64);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    cache.record(make_frame(i, 2), 1_us);
  }
  std::size_t seen = 0;
  std::uint64_t src_sum = 0;
  cache.for_each([&](const FlowRecord& r) {
    ++seen;
    src_sum += r.key.src.bits();
  });
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(src_sum, 55u);
}

// ---------------------------------------------------------------------
// Expiry engines: canonical eviction order, wheel/scan equivalence.

FlowCacheConfig engine_config(ExpiryEngine engine) {
  FlowCacheConfig cfg;
  cfg.capacity = 256;
  cfg.idle_timeout = 10_ms;
  cfg.active_timeout = 40_ms;
  cfg.engine = engine;
  cfg.wheel_tick = 2_ms;
  return cfg;
}

struct Emitted {
  FlowKey key;
  std::uint64_t packets;
  EndReason reason;
  sim::SimTime at;
  bool operator==(const Emitted&) const = default;
};

/// Drives one cache through a deterministic arrival pattern with sweeps
/// every 2 ms; returns every emitted record in emission order.
std::vector<Emitted> drive(ExpiryEngine engine) {
  FlowCache cache{engine_config(engine)};
  std::vector<Emitted> out;
  sim::SimTime now;
  const auto emit = [&](const FlowRecord& r, EndReason reason) {
    out.push_back({r.key, r.packets, reason, now});
  };
  // 40 flows with staggered starts and varying cadences; a few share a
  // deadline tick so the canonical (first_seen, key) ordering matters.
  for (std::int64_t t = 0; t < 120; ++t) {
    now = sim::milliseconds(t);
    for (std::uint64_t f = 0; f < 40; ++f) {
      const std::int64_t start = std::int64_t(f) % 7;
      const std::int64_t period = 1 + std::int64_t(f) % 3;
      const std::int64_t stop = 30 + std::int64_t(f * 2);
      if (t >= start && t <= stop && (t - start) % period == 0) {
        cache.record(make_frame(f + 1, 99), now);
      }
    }
    if (t % 2 == 0) cache.sweep(now, emit);
  }
  now = sim::milliseconds(200);
  cache.sweep(now, emit);  // everything idle by now
  cache.flush(emit);       // and the cache must already be empty
  return out;
}

TEST(FlowCache, WheelAndScanEmitByteIdenticalStreams) {
  const auto scan = drive(ExpiryEngine::kScan);
  const auto wheel = drive(ExpiryEngine::kWheel);
  ASSERT_FALSE(scan.empty());
  ASSERT_EQ(scan.size(), wheel.size());
  for (std::size_t i = 0; i < scan.size(); ++i) {
    EXPECT_EQ(scan[i], wheel[i]) << "record " << i;
  }
  // The pattern exercised both expiry paths.
  bool saw_idle = false, saw_active = false;
  for (const Emitted& e : scan) {
    saw_idle |= e.reason == EndReason::kIdleTimeout;
    saw_active |= e.reason == EndReason::kActiveTimeout;
  }
  EXPECT_TRUE(saw_idle);
  EXPECT_TRUE(saw_active);
}

TEST(FlowCache, EvictionOrderIsCanonicalNotSlotOrder) {
  // Several flows expire in the same sweep; they must come out sorted by
  // (first_seen, key), independent of hash/slot placement.
  for (const ExpiryEngine engine :
       {ExpiryEngine::kScan, ExpiryEngine::kWheel}) {
    FlowCache cache{engine_config(engine)};
    // Insert in deliberately scrambled key order at two distinct times.
    for (const std::uint64_t src : {9ULL, 3ULL, 7ULL, 1ULL}) {
      cache.record(make_frame(src, 99), 1_ms);
    }
    for (const std::uint64_t src : {8ULL, 2ULL}) {
      cache.record(make_frame(src, 99), 2_ms);
    }
    std::vector<std::uint64_t> order;
    cache.sweep(100_ms, [&](const FlowRecord& r, EndReason) {
      order.push_back(r.key.src.bits());
    });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 7, 9, 2, 8}))
        << (engine == ExpiryEngine::kScan ? "scan" : "wheel");
  }
}

TEST(FlowCache, FlushEmitsCanonicallyAndEmpties) {
  FlowCache cache{engine_config(ExpiryEngine::kWheel)};
  for (const std::uint64_t src : {5ULL, 2ULL, 9ULL}) {
    cache.record(make_frame(src, 99), 1_ms);
  }
  std::vector<std::uint64_t> order;
  const std::size_t n = cache.flush([&](const FlowRecord& r, EndReason e) {
    EXPECT_EQ(e, EndReason::kForcedEnd);
    order.push_back(r.key.src.bits());
  });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{2, 5, 9}));
  EXPECT_EQ(cache.size(), 0u);
  // The wheel forgot its timers too: nothing fires later.
  std::size_t fired = 0;
  cache.sweep(1_s, [&](const FlowRecord&, EndReason) { ++fired; });
  EXPECT_EQ(fired, 0u);
}

TEST(FlowCache, WheelSurvivesEraseCompactionMoves) {
  // Backward-shift compaction moves records between slots; the wheel
  // timers must follow (cookie rebinding) or expiry would fire on stale
  // slots. Erase half the flows, then expire the rest and check exactly
  // the survivors come out.
  FlowCache cache{engine_config(ExpiryEngine::kWheel)};
  std::vector<FlowKey> keys;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto f = make_frame(i * 7 + 1, 42);
    ASSERT_NE(cache.record(f, 1_ms), nullptr);
    keys.push_back(FlowKey::of(f));
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(cache.erase(keys[i]));
  }
  std::vector<std::uint64_t> out;
  cache.sweep(100_ms, [&](const FlowRecord& r, EndReason) {
    out.push_back(r.key.src.bits());
  });
  ASSERT_EQ(out.size(), 12u);
  std::vector<std::uint64_t> expected;
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    expected.push_back(keys[i].src.bits());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FlowCache, WheelStatsCountFiresAndRearms) {
  FlowCache cache{engine_config(ExpiryEngine::kWheel)};
  cache.record(make_frame(1, 2), 1_ms);
  std::size_t emitted = 0;
  cache.sweep(100_ms, [&](const FlowRecord&, EndReason) { ++emitted; });
  EXPECT_EQ(emitted, 1u);
  EXPECT_GE(cache.stats().wheel_fires, 1u);
  // The scan engine never touches the wheel.
  FlowCache scan{engine_config(ExpiryEngine::kScan)};
  scan.record(make_frame(1, 2), 1_ms);
  scan.sweep(100_ms, [&](const FlowRecord&, EndReason) {});
  EXPECT_EQ(scan.stats().wheel_fires, 0u);
  EXPECT_EQ(scan.stats().wheel_rearms, 0u);
}

}  // namespace
}  // namespace steelnet::flowmon
