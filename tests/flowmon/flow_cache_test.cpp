#include "flowmon/flow_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

net::Frame make_frame(std::uint64_t src, std::uint64_t dst,
                      std::size_t payload = 100, std::uint8_t pcp = 0) {
  net::Frame f;
  f.src = net::MacAddress{src};
  f.dst = net::MacAddress{dst};
  f.pcp = pcp;
  f.payload.assign(payload, 0);
  return f;
}

TEST(FlowKey, IdentityAndHashStability) {
  const auto f = make_frame(1, 2, 64, 3);
  const FlowKey k = FlowKey::of(f);
  EXPECT_EQ(k.src.bits(), 1u);
  EXPECT_EQ(k.dst.bits(), 2u);
  EXPECT_EQ(k.pcp, 3);
  EXPECT_EQ(k, FlowKey::of(f));
  EXPECT_EQ(k.hash(), FlowKey::of(f).hash());
  // Different pcp -> different flow.
  const FlowKey k2 = FlowKey::of(make_frame(1, 2, 64, 4));
  EXPECT_FALSE(k == k2);
  // PCP is masked to its 3 wire bits.
  net::Frame weird = make_frame(1, 2);
  weird.pcp = 0x7 | 0x10;
  EXPECT_EQ(FlowKey::of(weird).pcp, 0x7);
}

TEST(FlowCache, FindOrCreateAccumulates) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2, 150);
  EXPECT_NE(cache.record(f, 1_us), nullptr);
  EXPECT_NE(cache.record(f, 2_us), nullptr);
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->packets, 2u);
  EXPECT_EQ(r->bytes, 300u);
  // wire bytes: 150 payload + 18 L2 overhead, no VLAN tag, no padding.
  EXPECT_EQ(r->wire_bytes, 2 * (150 + 18));
  EXPECT_EQ(r->first_seen, 1_us);
  EXPECT_EQ(r->last_seen, 2_us);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(FlowCache, InterArrivalStatistics) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2);
  // Arrivals at 0, 100, 210, 300 us: IATs 100, 110, 90.
  for (std::int64_t t : {0, 100, 210, 300}) {
    cache.record(f, sim::microseconds(t));
  }
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->min_iat, 90_us);
  EXPECT_EQ(r->max_iat, 110_us);
  EXPECT_EQ(r->mean_iat(), 100_us);
  // Jitter: mean of |110-100| and |90-110| = (10+20)/2 = 15 us.
  EXPECT_EQ(r->mean_jitter(), 15_us);
}

TEST(FlowCache, IatUndefinedBelowThreePackets) {
  FlowCache cache(64);
  const auto f = make_frame(1, 2);
  cache.record(f, 1_ms);
  const FlowRecord* r = cache.find(FlowKey::of(f));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->mean_iat(), sim::SimTime::zero());
  EXPECT_EQ(r->mean_jitter(), sim::SimTime::zero());
  cache.record(f, 2_ms);
  EXPECT_EQ(r->mean_iat(), 1_ms);
  EXPECT_EQ(r->mean_jitter(), sim::SimTime::zero());
}

TEST(FlowCache, CapacityRoundsUpAndCapsLoad) {
  FlowCache cache(10);  // rounds to 16; load cap 12
  EXPECT_EQ(cache.capacity(), 16u);
  EXPECT_EQ(cache.load_cap(), 12u);
  for (std::uint64_t i = 0; i < 12; ++i) {
    EXPECT_NE(cache.record(make_frame(i + 1, 99), 1_us), nullptr);
  }
  // Table at the cap: a new flow is refused ...
  EXPECT_EQ(cache.record(make_frame(100, 99), 2_us), nullptr);
  EXPECT_EQ(cache.stats().dropped_full, 1u);
  // ... but existing flows keep metering.
  EXPECT_NE(cache.record(make_frame(5, 99), 3_us), nullptr);
  EXPECT_EQ(cache.size(), 12u);
}

TEST(FlowCache, EraseKeepsClustersReachable) {
  // Fill a small table to force collision clusters, erase every other
  // flow, and verify backward-shift compaction keeps every survivor
  // findable (the classic open-addressing deletion bug this guards).
  FlowCache cache(32);  // load cap 24
  std::vector<FlowKey> keys;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto f = make_frame(i * 7 + 1, 42);
    ASSERT_NE(cache.record(f, sim::microseconds(std::int64_t(i))), nullptr);
    keys.push_back(FlowKey::of(f));
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    EXPECT_TRUE(cache.erase(keys[i]));
  }
  EXPECT_EQ(cache.size(), 12u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const FlowRecord* r = cache.find(keys[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(r, nullptr);
    } else {
      ASSERT_NE(r, nullptr);
      EXPECT_EQ(r->key, keys[i]);
    }
  }
  // Erasing a missing key is a no-op.
  EXPECT_FALSE(cache.erase(keys[0]));
  // Freed slots are reusable.
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    const auto f = make_frame(keys[i].src.bits(), 42);
    EXPECT_NE(cache.record(f, 1_ms), nullptr);
  }
  EXPECT_EQ(cache.size(), 24u);
}

TEST(FlowCache, ForEachVisitsEveryLiveRecord) {
  FlowCache cache(64);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    cache.record(make_frame(i, 2), 1_us);
  }
  std::size_t seen = 0;
  std::uint64_t src_sum = 0;
  cache.for_each([&](const FlowRecord& r) {
    ++seen;
    src_sum += r.key.src.bits();
  });
  EXPECT_EQ(seen, 10u);
  EXPECT_EQ(src_sum, 55u);
}

}  // namespace
}  // namespace steelnet::flowmon
