// Mediation transforms between federation tiers: drop / remap / re-scale
// rules compiled against the input template, and the full encode ->
// decode round trip a plant-tier collector performs on mediated records.
#include "flowmon/transform.hpp"

#include <gtest/gtest.h>

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

ExportRecord sample_record() {
  ExportRecord r;
  r.key.src = net::MacAddress{0x0a'1234'5678'9aULL};
  r.key.dst = net::MacAddress{0x0c'0000'000007ULL};
  r.key.pcp = 5;
  r.key.ethertype = net::EtherType::kIpv4;
  r.packets = 120;
  r.bytes = 48'000;
  r.wire_bytes = 50'160;
  r.first_seen = 1_ms;
  r.last_seen = 900_ms;
  r.min_iat = 990_us;
  r.mean_iat = 1_ms;
  r.jitter = 3_us;
  r.end_reason = EndReason::kIdleTimeout;
  return r;
}

TEST(Transform, IdentityRulesPassRecordsVerbatim) {
  const CompiledTransform t{TransformRules{}, flow_template()};
  EXPECT_EQ(t.wire_template().fields.size(),
            flow_template().fields.size());
  EXPECT_EQ(t.wire_template().id, flow_template().id);
  EXPECT_TRUE(t.keep(sample_record()));
  EXPECT_EQ(t.domain_or(42), 42u);

  MessageHeader h;
  h.observation_domain = 42;
  const auto buf = encode_transformed(h, t, /*include_template=*/true,
                                      {sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].packets, 120u);
  EXPECT_EQ(msg->records[0].bytes, 48'000u);
  EXPECT_EQ(msg->records[0].min_iat, 990_us);
  EXPECT_EQ(msg->records[0].key, sample_record().key);
}

TEST(Transform, DropRemovesFieldFromWireTemplate) {
  TransformRules rules;
  rules.drops = {FieldId::kMinIatNs, FieldId::kJitterNs};
  const CompiledTransform t{rules, flow_template()};
  EXPECT_EQ(t.wire_template().fields.size(),
            flow_template().fields.size() - 2);
  for (const auto& f : t.wire_template().fields) {
    EXPECT_NE(f.id, FieldId::kMinIatNs);
    EXPECT_NE(f.id, FieldId::kJitterNs);
  }

  MessageHeader h;
  const auto buf = encode_transformed(h, t, true, {sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  // Dropped fields come back as defaults; the rest survive.
  EXPECT_EQ(msg->records[0].min_iat, sim::SimTime::zero());
  EXPECT_EQ(msg->records[0].jitter, sim::SimTime::zero());
  EXPECT_EQ(msg->records[0].mean_iat, 1_ms);
  EXPECT_EQ(msg->records[0].packets, 120u);
}

TEST(Transform, RemapExportsValueUnderNewId) {
  // The plant schema wants payload octets reported as layer-2 octets
  // (say its per-cell links bill on L2): remap kOctets -> kLayer2Octets,
  // dropping the original L2 counter to avoid a duplicate id.
  TransformRules rules;
  rules.drops = {FieldId::kLayer2Octets};
  rules.remaps = {{FieldId::kOctets, FieldId::kLayer2Octets}};
  const CompiledTransform t{rules, flow_template()};
  MessageHeader h;
  const auto buf = encode_transformed(h, t, true, {sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].wire_bytes, 48'000u);  // payload under L2's id
  EXPECT_EQ(msg->records[0].bytes, 0u);            // original id gone
}

TEST(Transform, ScaleRewritesUnitsWithoutOverflow) {
  TransformRules rules;
  rules.scales = {{FieldId::kMinIatNs, 1, 1000},   // ns -> us
                  {FieldId::kOctets, 8, 1}};       // bytes -> bits
  const CompiledTransform t{rules, flow_template()};
  auto r = sample_record();
  // A value where naive v * num would overflow 64 bits: ~2^61 ns.
  r.min_iat = sim::SimTime{0x2000'0000'0000'0000LL};
  MessageHeader h;
  const auto buf = encode_transformed(h, t, true, {r});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].min_iat.nanos(),
            0x2000'0000'0000'0000LL / 1000);
  EXPECT_EQ(msg->records[0].bytes, 48'000u * 8u);
}

TEST(Transform, DomainAndTemplateIdRewrites) {
  TransformRules rules;
  rules.rewrite_domain = 900;
  rules.rewrite_template_id = 400;
  const CompiledTransform t{rules, flow_template()};
  EXPECT_EQ(t.domain_or(42), 900u);
  EXPECT_EQ(t.wire_template().id, 400u);

  MessageHeader h;
  h.observation_domain = t.domain_or(42);
  const auto buf = encode_transformed(h, t, true, {sample_record()});
  TemplateStore store;
  const auto msg = decode_message(buf, store);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->header.observation_domain, 900u);
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0].packets, 120u);
}

TEST(Transform, MinPacketsFiltersMediatedRecords) {
  TransformRules rules;
  rules.min_packets = 100;
  const CompiledTransform t{rules, flow_template()};
  auto keepable = sample_record();
  EXPECT_TRUE(t.keep(keepable));
  keepable.packets = 99;
  EXPECT_FALSE(t.keep(keepable));
}

TEST(Transform, ChainedTransformsSurviveTwoTiers) {
  // Cell -> plant -> site: the plant re-applies its own rules to what
  // the cell already mediated, the realistic two-hop chain. The second
  // compile binds against the first hop's *wire* template.
  TransformRules cell_rules;
  cell_rules.drops = {FieldId::kMinIatNs};
  cell_rules.scales = {{FieldId::kJitterNs, 1, 1000}};
  const CompiledTransform cell{cell_rules, flow_template()};

  TransformRules site_rules;
  site_rules.drops = {FieldId::kJitterNs};
  site_rules.rewrite_template_id = 500;
  const CompiledTransform site{site_rules, cell.wire_template()};

  MessageHeader h;
  const auto hop1 = encode_transformed(h, cell, true, {sample_record()});
  TemplateStore mid_store;
  const auto mid = decode_message(hop1, mid_store);
  ASSERT_TRUE(mid.has_value());
  ASSERT_EQ(mid->records.size(), 1u);
  EXPECT_EQ(mid->records[0].jitter.nanos(), 3);  // us now

  const auto hop2 = encode_transformed(h, site, true, mid->records);
  TemplateStore end_store;
  const auto end = decode_message(hop2, end_store);
  ASSERT_TRUE(end.has_value());
  ASSERT_EQ(end->records.size(), 1u);
  EXPECT_EQ(end->records[0].jitter, sim::SimTime::zero());
  EXPECT_EQ(end->records[0].min_iat, sim::SimTime::zero());
  EXPECT_EQ(end->records[0].packets, 120u);
  EXPECT_EQ(end->records[0].key, sample_record().key);
}

}  // namespace
}  // namespace steelnet::flowmon
