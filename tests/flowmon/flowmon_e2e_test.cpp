// The flowmon pipeline end to end: meter -> IPFIX export over the
// simulated network -> collector -> measured taxonomy, the golden
// determinism pin, and the InstaPLC flowmon-backed liveness monitor.
#include <gtest/gtest.h>

#include "core/traffic_mix.hpp"
#include "flowmon/collector.hpp"
#include "flowmon/meter_point.hpp"
#include "flowmon/mix_scenario.hpp"
#include "flowmon/report.hpp"
#include "instaplc/instaplc.hpp"
#include "net/switch_node.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

// ---------------------------------------------------------------------
// Collector unit behaviour, fed with hand-built export frames.

net::Frame export_frame(net::MacAddress dst, std::uint32_t seq,
                        bool with_template,
                        const std::vector<ExportRecord>& records,
                        std::uint32_t domain = 1) {
  MessageHeader h;
  h.observation_domain = domain;
  h.sequence = seq;
  h.export_time = 1_s;
  net::Frame f;
  f.dst = dst;
  f.src = net::MacAddress{0xE};
  f.ethertype = net::EtherType::kFlowmonExport;
  f.payload = encode_message(h, flow_template(), with_template, records);
  return f;
}

ExportRecord record_with(std::uint64_t packets, std::uint64_t bytes,
                         EndReason reason) {
  ExportRecord r;
  r.key.src = net::MacAddress{0x1};
  r.key.dst = net::MacAddress{0x2};
  r.key.ethertype = net::EtherType::kIpv4;
  r.packets = packets;
  r.bytes = bytes;
  r.wire_bytes = bytes + packets * 18;
  r.first_seen = 10_ms;
  r.last_seen = 10_ms + sim::milliseconds(std::int64_t(packets));
  r.min_iat = 990_us;
  r.mean_iat = 1_ms;
  r.jitter = 2_us;
  r.end_reason = reason;
  return r;
}

TEST(Collector, CheckpointsDoNotDoubleCount) {
  CollectorNode c{net::MacAddress{0xC0}};
  // Active-timeout checkpoint carries absolute totals; the closing record
  // supersedes it rather than adding to it.
  c.handle_frame(export_frame(c.mac(), 0, true,
                              {record_with(50, 5000,
                                           EndReason::kActiveTimeout)}),
                 0);
  c.handle_frame(export_frame(c.mac(), 1, false,
                              {record_with(100, 10000,
                                           EndReason::kIdleTimeout)}),
                 0);
  const auto flows = c.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 100u);
  EXPECT_EQ(flows[0].bytes, 10000u);
  EXPECT_EQ(flows[0].incarnations, 1u);
  EXPECT_FALSE(flows[0].open_ended);
  EXPECT_EQ(c.counters().records, 2u);
  EXPECT_EQ(c.counters().lost_records, 0u);
}

TEST(Collector, IdleRestartCountsIncarnationsAndSums) {
  CollectorNode c{net::MacAddress{0xC0}};
  c.handle_frame(export_frame(c.mac(), 0, true,
                              {record_with(10, 1000,
                                           EndReason::kIdleTimeout)}),
                 0);
  // The flow restarts later: a fresh cache incarnation, fresh totals.
  c.handle_frame(export_frame(c.mac(), 1, false,
                              {record_with(5, 500, EndReason::kIdleTimeout)}),
                 0);
  const auto flows = c.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 15u);
  EXPECT_EQ(flows[0].bytes, 1500u);
  EXPECT_EQ(flows[0].incarnations, 2u);
}

TEST(Collector, ForcedFlushMeansOpenEnded) {
  CollectorNode c{net::MacAddress{0xC0}};
  c.handle_frame(export_frame(c.mac(), 0, true,
                              {record_with(20, 2000,
                                           EndReason::kForcedEnd)}),
                 0);
  const auto flows = c.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].open_ended);
}

TEST(Collector, PeriodicityRequiresSamplesAndLowJitter) {
  const auto flow_of = [](ExportRecord r) {
    CollectorNode c{net::MacAddress{0xC0}};
    c.handle_frame(export_frame(c.mac(), 0, true, {r}), 0);
    return c.flows().at(0);
  };
  // Steady cadence, plenty of packets: periodic.
  auto r = record_with(100, 5000, EndReason::kForcedEnd);
  EXPECT_TRUE(flow_of(r).periodic);
  // Same cadence but jitter above 10% of the mean IAT: not periodic.
  r.jitter = 200_us;
  EXPECT_FALSE(flow_of(r).periodic);
  // Too few packets to call it: not periodic.
  r = record_with(5, 250, EndReason::kForcedEnd);
  EXPECT_FALSE(flow_of(r).periodic);
}

TEST(Collector, SequenceGapsCountLostRecords) {
  CollectorNode c{net::MacAddress{0xC0}};
  c.handle_frame(export_frame(c.mac(), 0, true,
                              {record_with(1, 100, EndReason::kIdleTimeout),
                               record_with(2, 200, EndReason::kIdleTimeout)}),
                 0);
  // Next message claims 5 records were sent before it: 3 never arrived.
  c.handle_frame(export_frame(c.mac(), 5, false,
                              {record_with(3, 300, EndReason::kIdleTimeout)}),
                 0);
  EXPECT_EQ(c.counters().lost_records, 3u);
  EXPECT_EQ(c.counters().records, 3u);
}

TEST(Collector, FiltersForeignTraffic) {
  CollectorNode c{net::MacAddress{0xC0}};
  net::Frame f;
  f.dst = net::MacAddress{0x99};  // not ours
  f.ethertype = net::EtherType::kFlowmonExport;
  c.handle_frame(f, 0);
  net::Frame g;
  g.dst = c.mac();
  g.ethertype = net::EtherType::kIpv4;  // not telemetry
  c.handle_frame(g, 0);
  EXPECT_EQ(c.counters().frames_filtered, 2u);
  net::Frame bad = export_frame(c.mac(), 0, true, {});
  bad.payload.resize(5);
  c.handle_frame(bad, 0);
  EXPECT_EQ(c.counters().malformed, 1u);
}

// ---------------------------------------------------------------------
// Meter -> network -> collector, end to end on a real switch.

struct TapFixture {
  sim::Simulator sim;
  net::Network net{sim};
  net::SwitchNode* sw;
  net::HostNode* sender;
  net::HostNode* receiver;
  net::HostNode* mgmt;
  CollectorNode* collector;
  std::unique_ptr<MeterPoint> meter;

  TapFixture() {
    sw = &net.add_node<net::SwitchNode>("sw");
    sender = &net.add_node<net::HostNode>("tx", net::MacAddress{0x1});
    receiver = &net.add_node<net::HostNode>("rx", net::MacAddress{0x2});
    mgmt = &net.add_node<net::HostNode>("mgmt", net::MacAddress{0xE});
    collector = &net.add_node<CollectorNode>("col", net::MacAddress{0xC});
    net.connect(sender->id(), 0, sw->id(), 0);
    net.connect(receiver->id(), 0, sw->id(), 1);
    net.connect(mgmt->id(), 0, sw->id(), 2);
    net.connect(collector->id(), 0, sw->id(), 3);
    sw->add_fdb_entry(net::MacAddress{0x2}, 1);
    sw->add_fdb_entry(net::MacAddress{0xC}, 3);

    MeterConfig cfg;
    cfg.collector_mac = collector->mac();
    cfg.export_interval = 10_ms;
    cfg.idle_timeout = 20_ms;
    cfg.active_timeout = 50_ms;
    meter = std::make_unique<MeterPoint>(*sw, *mgmt, cfg);
  }

  void send_burst(int n, sim::SimTime period, std::size_t payload = 100) {
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(period * i, [this, payload] {
        net::Frame f;
        f.dst = net::MacAddress{0x2};
        f.payload.assign(payload, 0);
        sender->send(std::move(f));
      });
    }
  }
};

TEST(FlowmonE2e, MeteredFlowReachesCollectorOverTheWire) {
  TapFixture fx;
  fx.send_burst(100, 1_ms);
  fx.sim.run_until(200_ms);
  fx.meter.reset();  // detach + stop sweeping; queue drains

  ASSERT_EQ(fx.collector->counters().records_without_template, 0u);
  EXPECT_EQ(fx.collector->counters().lost_records, 0u);
  EXPECT_GE(fx.collector->counters().templates_learned, 1u);
  const auto flows = fx.collector->flows();
  ASSERT_EQ(flows.size(), 1u);
  const FlowView& v = flows[0];
  EXPECT_EQ(v.key.src.bits(), 0x1u);
  EXPECT_EQ(v.key.dst.bits(), 0x2u);
  EXPECT_EQ(v.packets, 100u);
  EXPECT_EQ(v.bytes, 100u * 100u);
  // 1 ms cadence, zero jitter at the tap: detected periodic; the flow
  // went silent and idle-expired: not open-ended.
  EXPECT_TRUE(v.periodic);
  EXPECT_FALSE(v.open_ended);
  EXPECT_EQ(v.mean_iat, 1_ms);
  // The active-timeout checkpoint plus the idle eviction both exported;
  // totals must not double-count.
  EXPECT_GE(fx.collector->counters().records, 2u);

  // Telemetry frames were seen by the meter but not metered.
  EXPECT_EQ(fx.meter, nullptr);  // released above
}

TEST(FlowmonE2e, MeasuredStatsClassifyLikeTheFlowWasConfigured) {
  TapFixture fx;
  fx.send_burst(100, 1_ms);  // 10 KB total: a mouse, measured
  fx.sim.run_until(200_ms);
  const auto stats = fx.collector->measured_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(core::classify(stats[0]), core::FlowClass::kMice);
  EXPECT_EQ(stats[0].total_bytes, 10'000u);
}

TEST(FlowmonE2e, LivenessViewTracksSilence) {
  TapFixture fx;
  fx.send_burst(50, 1_ms);
  fx.sim.run_until(55_ms);
  const auto seen = fx.meter->last_seen_from(net::MacAddress{0x1});
  ASSERT_TRUE(seen.has_value());
  // The last frame left the sender at 49 ms and arrived shortly after.
  EXPECT_GE(*seen, 49_ms);
  EXPECT_LE(*seen, 50_ms);

  net::Frame probe_frame;
  probe_frame.dst = net::MacAddress{0x2};
  probe_frame.src = net::MacAddress{0x1};
  probe_frame.payload.assign(100, 0);
  const FlowKey key = FlowKey::of(probe_frame);
  const auto silent = fx.meter->silent_cycles(key, 1_ms, fx.sim.now());
  ASSERT_TRUE(silent.has_value());
  EXPECT_GE(*silent, 5);  // ~55 - ~49 ms at 1 ms cycles
  EXPECT_LE(*silent, 6);
  // Unknown flows have no liveness.
  EXPECT_FALSE(fx.meter->last_seen_from(net::MacAddress{0x77}).has_value());
}

TEST(FlowmonE2e, ReportRendersMeasuredFlows) {
  TapFixture fx;
  fx.send_burst(20, 1_ms);
  fx.sim.run_until(100_ms);
  const auto flows = fx.collector->flows();
  ASSERT_FALSE(flows.empty());
  const auto table = flows_table(flows);
  EXPECT_NE(table.find("pkts"), std::string::npos);
  EXPECT_NE(table.find("00:00:00:00:00:01"), std::string::npos);
  const auto csv = flows_csv(flows);
  EXPECT_NE(csv.find("src,dst,pcp"), std::string::npos);
  EXPECT_NE(csv.find("00:00:00:00:00:01,00:00:00:00:00:02"),
            std::string::npos);
}

TEST(FlowmonE2e, OnePacketFlowExportsZeroMinIatNotTheSentinel) {
  // A single-packet flow has no inter-arrival gap, so FlowRecord::min_iat
  // still holds its SimTime::max() sentinel when the record is exported.
  // The sentinel must never reach the wire, the merged collector view, or
  // the rendered taxonomy artifacts -- all must report zero.
  TapFixture fx;
  fx.send_burst(1, 1_ms);
  fx.sim.run_until(100_ms);  // one packet, then idle-expire + export

  const auto flows = fx.collector->flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 1u);
  EXPECT_EQ(flows[0].min_iat, sim::SimTime::zero());
  EXPECT_EQ(flows[0].mean_iat, sim::SimTime::zero());

  const auto csv = flows_csv(flows);
  const auto sentinel = std::to_string(sim::SimTime::max().nanos());
  EXPECT_EQ(csv.find(sentinel), std::string::npos) << csv;
}

TEST(Collector, WireSentinelMinIatNeverLeaksIntoMergedView) {
  // Decoded records are untrusted wire data: an exporter that skips the
  // single-packet guard (or a corrupted-but-parseable frame) can carry
  // the sentinel alongside a multi-packet count. The merge must drop it.
  CollectorNode c{net::MacAddress{0xC0}};
  auto r = record_with(10, 1000, EndReason::kIdleTimeout);
  r.min_iat = sim::SimTime::max();
  c.handle_frame(export_frame(c.mac(), 0, true, {r}), 0);
  const auto flows = c.flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].min_iat, sim::SimTime::zero());
}

// ---------------------------------------------------------------------
// The measured §2.3 mix: golden determinism + taxonomy from measurement.

TEST(FlowmonE2e, GoldenMeasuredMixIdenticalForIdenticalSeeds) {
  MeasuredMixSpec spec;
  const auto a = run_measured_mix(spec);
  const auto b = run_measured_mix(spec);
  // Identical seeds -> identical measured flow records, bit for bit.
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].key, b.flows[i].key);
    EXPECT_EQ(a.flows[i].packets, b.flows[i].packets);
    EXPECT_EQ(a.flows[i].bytes, b.flows[i].bytes);
    EXPECT_EQ(a.flows[i].jitter, b.flows[i].jitter);
  }
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  // A different seed must not reproduce the fingerprint.
  MeasuredMixSpec other = spec;
  other.seed = spec.seed + 1;
  EXPECT_NE(run_measured_mix(other).fingerprint, a.fingerprint);
}

TEST(FlowmonE2e, MeasuredTaxonomyMatchesOfferedWorkload) {
  MeasuredMixSpec spec;
  const auto result = run_measured_mix(spec);

  // Every offered flow was measured; telemetry was lossless.
  EXPECT_EQ(result.flows.size(), result.flows_offered);
  EXPECT_EQ(result.collector.lost_records, 0u);
  EXPECT_EQ(result.collector.records_without_template, 0u);
  EXPECT_EQ(result.collector.malformed, 0u);
  EXPECT_EQ(result.cache.dropped_full, 0u);
  EXPECT_EQ(result.meter.frames_seen, result.frames_sent);

  // Classify the *measured* stats and compare against what was offered.
  const auto thresholds = spec.thresholds();
  std::size_t mice = 0, medium = 0, elephant = 0, micro = 0;
  for (const auto& s : result.measured) {
    switch (core::classify(s, thresholds)) {
      case core::FlowClass::kMice: ++mice; break;
      case core::FlowClass::kMedium: ++medium; break;
      case core::FlowClass::kElephant: ++elephant; break;
      case core::FlowClass::kDeterministicMicroflow: ++micro; break;
    }
  }
  EXPECT_EQ(mice, spec.mice);
  EXPECT_EQ(medium, spec.medium);
  EXPECT_EQ(elephant, spec.elephants);
  EXPECT_EQ(micro, spec.vplc_flows);

  // The §2.3 punchline, measured: every vPLC flow is periodic+open-ended
  // by cadence, and the bytes-only taxonomy misfiles at least some.
  std::size_t misfiled = 0;
  for (const auto& s : result.measured) {
    if (core::classify(s, thresholds) !=
        core::FlowClass::kDeterministicMicroflow) {
      continue;
    }
    EXPECT_TRUE(s.periodic);
    EXPECT_TRUE(s.open_ended);
    if (core::classify_bytes_only(s, thresholds) !=
        core::FlowClass::kDeterministicMicroflow) {
      ++misfiled;
    }
  }
  EXPECT_GT(misfiled, 0u);
}

// ---------------------------------------------------------------------
// InstaPLC consuming flowmon as its liveness monitor backend.

struct InstaFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  sdn::SdnSwitchNode* sw;
  net::HostNode* dev_host;
  net::HostNode* vplc1_host;
  net::HostNode* vplc2_host;
  net::HostNode* mgmt;
  std::unique_ptr<profinet::IoDevice> device;
  std::unique_ptr<profinet::CyclicController> vplc1;
  std::unique_ptr<profinet::CyclicController> vplc2;
  std::unique_ptr<instaplc::InstaPlcApp> app;
  std::unique_ptr<MeterPoint> meter;

  InstaFixture() {
    sw = &network.add_node<sdn::SdnSwitchNode>("sdn");
    dev_host = &network.add_node<net::HostNode>("dev", net::MacAddress{0xD});
    vplc1_host = &network.add_node<net::HostNode>("v1", net::MacAddress{0x1});
    vplc2_host = &network.add_node<net::HostNode>("v2", net::MacAddress{0x2});
    mgmt = &network.add_node<net::HostNode>("mgmt", net::MacAddress{0xE});
    network.connect(dev_host->id(), 0, sw->id(), 0);
    network.connect(vplc1_host->id(), 0, sw->id(), 1);
    network.connect(vplc2_host->id(), 0, sw->id(), 2);
    network.connect(mgmt->id(), 0, sw->id(), 3);
    device = std::make_unique<profinet::IoDevice>(*dev_host);
    app = std::make_unique<instaplc::InstaPlcApp>(
        *sw, instaplc::InstaPlcConfig{.device_port = 0,
                                      .switchover_cycles = 3});

    profinet::ControllerConfig c1;
    c1.ar_id = 1;
    c1.device_mac = dev_host->mac();
    vplc1 = std::make_unique<profinet::CyclicController>(*vplc1_host, c1);
    profinet::ControllerConfig c2 = c1;
    c2.ar_id = 2;
    vplc2 = std::make_unique<profinet::CyclicController>(*vplc2_host, c2);

    // The meter taps the same sdn switch; exports go unanswered (no
    // collector here) and are invisible to the app's pipeline anyway.
    meter = std::make_unique<MeterPoint>(*sw, *mgmt, MeterConfig{});
  }
};

TEST(FlowmonInstaPlc, ProbeAnswerPreferredOverInternalCounter) {
  InstaFixture fx;
  // A probe frozen at t=0 makes the primary look dead from the start --
  // if the monitor consults it, switchover fires despite a live primary.
  fx.app->set_liveness_probe([] {
    return std::optional<sim::SimTime>{sim::SimTime::zero()};
  });
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(300_ms);
  EXPECT_TRUE(fx.app->switched_over());
}

TEST(FlowmonInstaPlc, FlowmonBackedMonitorSwitchesOverOnSilence) {
  InstaFixture fx;
  fx.app->set_liveness_probe(
      make_liveness_probe(*fx.meter, fx.vplc1_host->mac()));
  fx.vplc1->connect();
  fx.simulator.run_until(50_ms);
  fx.vplc2->connect();
  fx.simulator.run_until(500_ms);
  // The measured liveness view tracks the healthy primary: no switchover.
  ASSERT_FALSE(fx.app->switched_over());
  ASSERT_TRUE(fx.meter->last_seen_from(fx.vplc1_host->mac()).has_value());

  fx.vplc1->stop();
  fx.simulator.run_until(1_s);
  ASSERT_TRUE(fx.app->switched_over());
  // Detection latency from in-network telemetry stays within the same
  // few-cycle bound as the bespoke counter (2 ms I/O cycle, 3 cycles).
  const auto detect = *fx.app->stats().switchover_at - 500_ms;
  EXPECT_LE(detect, 10_ms);
  EXPECT_EQ(fx.device->state(), profinet::DeviceState::kDataExchange);
}

}  // namespace
}  // namespace steelnet::flowmon
