// The two-tier collector federation (cell meters -> cell collectors ->
// plant collector) and the RFC 7011 sequence accounting that underpins
// its record-conservation guarantees: per-stream serial-number
// arithmetic across 2^32 wraparound, per-domain streams, reorder
// tolerance.
#include "flowmon/federation.hpp"

#include <gtest/gtest.h>

#include "flowmon/report.hpp"

namespace steelnet::flowmon {
namespace {

using namespace steelnet::sim::literals;

// ---------------------------------------------------------------------
// Sequence accounting, unit level: hand-built export frames.

net::Frame seq_frame(const CollectorNode& col, std::uint64_t exporter,
                     std::uint32_t domain, std::uint32_t seq,
                     std::size_t n_records) {
  ExportRecord r;
  r.key.src = net::MacAddress{0x1};
  r.key.dst = net::MacAddress{0x2};
  r.packets = 10;
  r.bytes = 1000;
  r.end_reason = EndReason::kIdleTimeout;
  const std::vector<ExportRecord> records(n_records, r);
  MessageHeader h;
  h.observation_domain = domain;
  h.sequence = seq;
  net::Frame f;
  f.dst = col.mac();
  f.src = net::MacAddress{exporter};
  f.ethertype = net::EtherType::kFlowmonExport;
  f.payload = encode_message(h, flow_template(), /*include_template=*/true,
                             records);
  return f;
}

TEST(CollectorSequence, SurvivesThirtyTwoBitWraparound) {
  CollectorNode c{net::MacAddress{0xC0}};
  // Walk the stream's expectation up to just below 2^32 with two large
  // (but < 2^31, so resync-able) forward gaps...
  c.handle_frame(seq_frame(c, 0xE, 1, 0x7fff'ffffu, 1), 0);
  EXPECT_EQ(c.counters().lost_records, 0x7fff'ffffu);
  c.handle_frame(seq_frame(c, 0xE, 1, 0xffff'fffdu, 5), 0);
  EXPECT_EQ(c.counters().lost_records,
            0x7fff'ffffull + 0x7fff'fffdull);
  // ...so the expectation is now 0xfffffffd + 5 == 2 (mod 2^32). The
  // next in-order message crosses zero without being charged as loss.
  const std::uint64_t lost_before_wrap = c.counters().lost_records;
  c.handle_frame(seq_frame(c, 0xE, 1, 2, 4), 0);
  EXPECT_EQ(c.counters().lost_records, lost_before_wrap);
  EXPECT_EQ(c.counters().sequence_reordered, 0u);
  // And the stream keeps counting on the far side of the wrap.
  c.handle_frame(seq_frame(c, 0xE, 1, 6, 2), 0);
  EXPECT_EQ(c.counters().lost_records, lost_before_wrap);
}

TEST(CollectorSequence, BackwardStepIsReorderNotLoss) {
  CollectorNode c{net::MacAddress{0xC0}};
  c.handle_frame(seq_frame(c, 0xE, 1, 0, 3), 0);
  c.handle_frame(seq_frame(c, 0xE, 1, 3, 2), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
  // A replayed / late message must not resync the stream backwards nor
  // count astronomically as loss.
  c.handle_frame(seq_frame(c, 0xE, 1, 0, 3), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
  EXPECT_EQ(c.counters().sequence_reordered, 1u);
  // The expectation survived: the true next message is still in-order.
  c.handle_frame(seq_frame(c, 0xE, 1, 5, 1), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
}

TEST(CollectorSequence, StreamsAreScopedPerDomainAndExporter) {
  CollectorNode c{net::MacAddress{0xC0}};
  // Interleaved domains from one exporter: independent sequence spaces.
  c.handle_frame(seq_frame(c, 0xE, 1, 0, 3), 0);
  c.handle_frame(seq_frame(c, 0xE, 2, 0, 2), 0);
  c.handle_frame(seq_frame(c, 0xE, 1, 3, 1), 0);
  c.handle_frame(seq_frame(c, 0xE, 2, 2, 1), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
  EXPECT_EQ(c.counters().sequence_reordered, 0u);
  // A second exporter sharing domain 1 starts its own stream at 0.
  c.handle_frame(seq_frame(c, 0xF, 1, 0, 2), 0);
  EXPECT_EQ(c.counters().lost_records, 0u);
}

// ---------------------------------------------------------------------
// The federation scenario end to end.

FederationSpec small_spec() {
  FederationSpec spec;
  spec.cells = 2;
  spec.hosts_per_cell = 2;
  spec.bursty_per_host = 2;
  spec.vplc_per_cell = 3;
  spec.observation = 600_ms;
  spec.seed = 21;
  return spec;
}

TEST(Federation, ConservesRecordsAcrossBothTiers) {
  const auto r = run_federation(small_spec());
  EXPECT_TRUE(r.cell_conservation_ok);
  EXPECT_TRUE(r.plant_conservation_ok);
  ASSERT_EQ(r.cells.size(), 2u);
  std::uint64_t offered = 0;
  for (const TierRow& cell : r.cells) {
    EXPECT_GT(cell.offered, 0u) << cell.tier;
    EXPECT_EQ(cell.lost, 0u) << cell.tier;
    EXPECT_EQ(cell.malformed, 0u) << cell.tier;
    EXPECT_EQ(cell.template_misses, 0u) << cell.tier;
    EXPECT_GT(cell.flows, 0u) << cell.tier;
    offered += cell.offered;
  }
  EXPECT_EQ(r.plant.received + r.plant.lost + r.plant.transform_dropped,
            r.plant.offered);
  EXPECT_GT(r.plant.received, 0u);
  EXPECT_GT(r.plant.flows, 0u);
  EXPECT_GT(r.frames_sent, 0u);
}

TEST(Federation, PlantLagIncludesTheExtraHop) {
  const auto r = run_federation(small_spec());
  // Per-record staleness at the plant strictly exceeds the cell tier's:
  // the mediation queue + uplink hop only ever add delay.
  double max_cell_mean = 0.0;
  for (const TierRow& cell : r.cells) {
    ASSERT_GT(cell.lag_mean_us, 0.0);
    max_cell_mean = std::max(max_cell_mean, cell.lag_mean_us);
  }
  EXPECT_GT(r.plant.lag_mean_us, max_cell_mean);
}

TEST(Federation, MediationRulesApplyOnTheUplink) {
  // Default spec rules drop kMinIatNs; add a packet filter and check the
  // plant sees fewer (but conserved) records. Bursty flows carry at most
  // 40 frames, vPLC checkpoints at least ~50: the threshold separates
  // the two populations regardless of seed.
  FederationSpec spec = small_spec();
  spec.reexport.rules.min_packets = 41;
  const auto r = run_federation(spec);
  EXPECT_TRUE(r.cell_conservation_ok);
  EXPECT_TRUE(r.plant_conservation_ok);
  std::uint64_t dropped = 0, received = 0;
  for (const TierRow& cell : r.cells) dropped += cell.transform_dropped;
  for (const TierRow& cell : r.cells) received += cell.received;
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(r.plant.received + dropped, received);
}

TEST(Federation, DeterministicAcrossRunsAndSeedSensitive) {
  const auto a = run_federation(small_spec());
  const auto b = run_federation(small_spec());
  EXPECT_EQ(a.plant_fingerprint, b.plant_fingerprint);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].offered, b.cells[i].offered);
    EXPECT_EQ(a.cells[i].received, b.cells[i].received);
    EXPECT_EQ(a.cells[i].lag_mean_us, b.cells[i].lag_mean_us);
  }
  FederationSpec other = small_spec();
  other.seed = 22;
  EXPECT_NE(run_federation(other).plant_fingerprint, a.plant_fingerprint);
}

TEST(Federation, ReportRendersTiersAndConservation) {
  const auto r = run_federation(small_spec());
  const auto table = federation_table(r);
  EXPECT_NE(table.find("tier"), std::string::npos);
  EXPECT_NE(table.find("cell0"), std::string::npos);
  EXPECT_NE(table.find("plant"), std::string::npos);
  EXPECT_NE(table.find("lag p95"), std::string::npos);
  const auto csv = federation_csv(r);
  EXPECT_NE(csv.find("tier,offered,received,lost"), std::string::npos);
  EXPECT_NE(csv.find("plant,"), std::string::npos);
  // The obs metrics plane saw the federation counters.
  EXPECT_NE(r.metrics_prom.find("flowmon_records"), std::string::npos);
  EXPECT_NE(r.metrics_prom.find("export_lag_us"), std::string::npos);
}

}  // namespace
}  // namespace steelnet::flowmon
