// Tier-1 guard for the allocation-free hot path: after warm-up, a cyclic
// host<->host traffic loop drawing frames from the FramePool must execute
// zero heap allocations per cycle. This is the acceptance criterion of
// the pooled-frame/slab-kernel work -- a regression that reintroduces
// per-frame or per-event churn fails this test, not just a benchmark.
//
// The binary overrides global operator new/delete to count allocations.
// Sanitizer builds replace the allocator themselves, so the override (and
// the test) compiles out there and the test reports SKIPPED.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "net/host_node.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define STEELNET_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define STEELNET_ALLOC_COUNTING 0
#else
#define STEELNET_ALLOC_COUNTING 1
#endif
#else
#define STEELNET_ALLOC_COUNTING 1
#endif

#if STEELNET_ALLOC_COUNTING

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // STEELNET_ALLOC_COUNTING

namespace steelnet::net {
namespace {

using namespace steelnet::sim::literals;

TEST(AllocFree, SteadyStateCyclicTrafficDoesNotAllocate) {
#if !STEELNET_ALLOC_COUNTING
  GTEST_SKIP() << "allocation counting is disabled under sanitizers";
#else
  sim::Simulator simulator;
  Network network{simulator};
  HostNode& a = network.add_node<HostNode>("a", MacAddress{1});
  HostNode& b = network.add_node<HostNode>("b", MacAddress{2});
  network.connect(a.id(), 0, b.id(), 0, LinkParams{1'000'000'000, 500_ns});

  // b echoes every request back through the pool; a retires responses.
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  b.set_receiver([&](Frame f, sim::SimTime) {
    Frame reply = network.frame_pool().make(46);
    reply.dst = MacAddress{1};
    reply.src = MacAddress{2};
    network.frame_pool().recycle(std::move(f));
    b.send(std::move(reply));
  });
  a.set_receiver([&](Frame f, sim::SimTime) {
    ++responses;
    network.frame_pool().recycle(std::move(f));
  });

  sim::PeriodicTask producer(simulator, 0_ns, 100_us, [&] {
    Frame f = network.frame_pool().make(46);
    f.dst = MacAddress{2};
    f.src = MacAddress{1};
    ++requests;
    a.send(std::move(f));
  });

  // Warm-up: grow the event-queue slab/heap, the pool free list, and any
  // lazily-built node state to their steady-state footprint.
  simulator.run_until(sim::milliseconds(10));
  ASSERT_GT(responses, 50u);

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const std::uint64_t responses_before = responses;
  simulator.run_until(sim::milliseconds(110));  // 1000 more cycles
  const std::uint64_t during =
      g_allocations.load(std::memory_order_relaxed) - before;

  EXPECT_GE(responses, responses_before + 999);
  EXPECT_EQ(requests, producer.fired());
  // The whole point: a thousand request/response cycles -- schedule,
  // serialize, deliver, echo, retire -- without touching the allocator.
  EXPECT_EQ(during, 0u) << "steady-state cyclic traffic allocated " << during
                        << " times over 1000 cycles";
#endif
}

}  // namespace
}  // namespace steelnet::net
