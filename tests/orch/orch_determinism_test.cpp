// Determinism regression for the orchestration layer: one seed must
// reproduce the placement trace and the full Prometheus export (fleet
// counters included) byte for byte, and sweeps must be invariant to the
// worker-pool size.
#include <gtest/gtest.h>

#include "orch/orch_runner.hpp"

namespace steelnet::orch {
namespace {

OrchConfig stormy(std::uint64_t seed) {
  OrchConfig cfg = small_orch_config(seed);
  cfg.scenario = OrchScenario::kRackFailure;
  return cfg;
}

TEST(OrchDeterminism, SameSeedIsByteIdentical) {
  OrchConfig cfg = stormy(5);
  cfg.keep_exports = true;
  const OrchOutcome a = OrchRunner::run(cfg);
  const OrchOutcome b = OrchRunner::run(cfg);
  ASSERT_TRUE(a.place_error.empty()) << a.place_error;
  EXPECT_EQ(a.trace_text, b.trace_text);
  EXPECT_EQ(a.metrics_prom, b.metrics_prom);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.trace_fp, 0u);
  EXPECT_NE(a.metrics_fp, 0u);
}

TEST(OrchDeterminism, PrometheusExportCarriesFleetCounters) {
  OrchConfig cfg = stormy(5);
  cfg.keep_exports = true;
  const OrchOutcome out = OrchRunner::run(cfg);
  // Fleet counters are part of the deterministic obs surface: the export
  // must carry the orch ledger, not just the network-plane metrics.
  for (const char* metric :
       {"steelnet_orch_failovers_started{node=\"fleet\"}",
        "steelnet_orch_switchovers{node=\"fleet\"}",
        "steelnet_orch_heartbeats_rx", "steelnet_orch_slo_violations",
        "steelnet_orch_switchover_latency_us_count"}) {
    EXPECT_NE(out.metrics_prom.find(metric), std::string::npos)
        << "missing " << metric << " in export";
  }
}

TEST(OrchDeterminism, DifferentSeedsDiverge) {
  const OrchOutcome a = OrchRunner::run(stormy(1));
  const OrchOutcome b = OrchRunner::run(stormy(2));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(OrchDeterminism, SweepIsInvariantToJobCount) {
  std::vector<OrchConfig> cfgs;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    OrchConfig cfg = stormy(s);
    cfg.scenario = (s % 2 == 0) ? OrchScenario::kRollingUpgrade
                                : OrchScenario::kRackFailure;
    cfgs.push_back(cfg);
  }
  const auto serial = OrchRunner::run_sweep(cfgs, /*jobs=*/1);
  const auto pooled = OrchRunner::run_sweep(cfgs, /*jobs=*/4);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(pooled.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(pooled[i].ok()) << pooled[i].error;
    EXPECT_EQ(serial[i].value->fingerprint(), pooled[i].value->fingerprint())
        << "slot " << i << " diverged across pool sizes";
  }
}

}  // namespace
}  // namespace steelnet::orch
