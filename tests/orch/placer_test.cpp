// Placement edge cases: the Placer must answer every degenerate fleet
// with a typed error (never a crash), and both policies must rank
// feasible nodes exactly as documented (ties to the lowest index, so
// placement replays byte-identically).
#include "orch/placer.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace steelnet::orch {
namespace {

ComputeNodeState make_node(std::uint32_t rack, std::uint32_t capacity,
                           std::uint32_t used = 0) {
  ComputeNodeState n;
  n.spec.rack = rack;
  n.spec.capacity_mcpu = capacity;
  n.used_mcpu = used;
  return n;
}

PlacementRequest demand(std::uint32_t mcpu) {
  PlacementRequest req;
  req.demand_mcpu = mcpu;
  return req;
}

TEST(Placer, EmptyFleetIsTypedError) {
  BinPackPolicy policy;
  const auto r = Placer{policy}.place({}, demand(100));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, PlaceError::kNoNodes);
}

TEST(Placer, ZeroCapacityNodesPlaceNothing) {
  BinPackPolicy policy;
  const std::vector<ComputeNodeState> nodes = {make_node(0, 0),
                                               make_node(1, 0)};
  const auto r = Placer{policy}.place(nodes, demand(1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, PlaceError::kInsufficientCapacity);
}

TEST(Placer, DemandLargerThanEveryNodeIsInsufficientCapacity) {
  BinPackPolicy policy;
  const std::vector<ComputeNodeState> nodes = {make_node(0, 4000),
                                               make_node(1, 4000)};
  const auto r = Placer{policy}.place(nodes, demand(4001));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, PlaceError::kInsufficientCapacity);
}

TEST(Placer, AllNodesDeadOrDrainingIsNoEligibleNode) {
  BinPackPolicy policy;
  std::vector<ComputeNodeState> nodes = {make_node(0, 4000),
                                         make_node(1, 4000)};
  nodes[0].alive = false;
  nodes[1].draining = true;
  const auto r = Placer{policy}.place(nodes, demand(100));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, PlaceError::kNoEligibleNode);
}

TEST(Placer, SingleRackAntiAffinityUnsatisfiable) {
  BinPackPolicy policy;
  // All capacity lives in rack 0; a twin excluded from rack 0 has
  // nowhere to go, and the error says so (not "insufficient capacity").
  const std::vector<ComputeNodeState> nodes = {make_node(0, 4000),
                                               make_node(0, 4000)};
  PlacementRequest req = demand(100);
  req.exclude_rack = 0;
  const auto r = Placer{policy}.place(nodes, req);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, PlaceError::kAntiAffinityUnsatisfiable);
}

TEST(Placer, AntiAffinitySkipsExcludedRack) {
  BinPackPolicy policy;
  // Rack 0 is fuller (bin-pack would prefer it) but excluded.
  const std::vector<ComputeNodeState> nodes = {make_node(0, 4000, 3000),
                                               make_node(1, 4000, 100)};
  PlacementRequest req = demand(100);
  req.exclude_rack = 0;
  const auto r = Placer{policy}.place(nodes, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.node, 1u);
}

TEST(Placer, BinPackPrefersFullestFeasibleNode) {
  BinPackPolicy policy;
  const std::vector<ComputeNodeState> nodes = {
      make_node(0, 4000, 1000), make_node(0, 4000, 3500),
      make_node(0, 4000, 3950)};  // too full for 100 mcpu
  const auto r = Placer{policy}.place(nodes, demand(100));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.node, 1u);
}

TEST(Placer, LatencyAwarePrefersPreferredRackEvenWhenBusier) {
  LatencyAwarePolicy policy;
  const std::vector<ComputeNodeState> nodes = {make_node(0, 4000, 0),
                                               make_node(1, 4000, 3000)};
  PlacementRequest req = demand(100);
  req.preferred_rack = 1;
  const auto r = Placer{policy}.place(nodes, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.node, 1u) << "locality must dominate load";
}

TEST(Placer, LatencyAwareSpreadsLoadInsideRack) {
  LatencyAwarePolicy policy;
  const std::vector<ComputeNodeState> nodes = {make_node(0, 4000, 2000),
                                               make_node(0, 4000, 500)};
  PlacementRequest req = demand(100);
  req.preferred_rack = 0;
  const auto r = Placer{policy}.place(nodes, req);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.node, 1u);
}

TEST(Placer, TiesBreakTowardLowestIndex) {
  BinPackPolicy binpack;
  LatencyAwarePolicy latency;
  const std::vector<ComputeNodeState> nodes = {
      make_node(0, 4000, 1000), make_node(0, 4000, 1000),
      make_node(0, 4000, 1000)};
  PlacementRequest req = demand(100);
  req.preferred_rack = 0;
  const auto rb = Placer{binpack}.place(nodes, req);
  const auto rl = Placer{latency}.place(nodes, req);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_EQ(*rb.node, 0u);
  EXPECT_EQ(*rl.node, 0u);
}

TEST(Placer, PlacementIsPureAndRepeatable) {
  LatencyAwarePolicy policy;
  std::vector<ComputeNodeState> nodes;
  for (std::uint32_t i = 0; i < 16; ++i) {
    nodes.push_back(make_node(i % 4, 4000, (i * 977) % 3000));
  }
  PlacementRequest req = demand(250);
  req.preferred_rack = 2;
  const auto first = Placer{policy}.place(nodes, req);
  for (int i = 0; i < 10; ++i) {
    const auto again = Placer{policy}.place(nodes, req);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*again.node, *first.node);
  }
}

TEST(ComputeNode, CpuDemandScalesInverselyWithCycleTime) {
  using namespace steelnet::sim::literals;
  EXPECT_EQ(cpu_demand_mcpu(sim::milliseconds(1)), 200u);
  EXPECT_EQ(cpu_demand_mcpu(sim::milliseconds(2)), 100u);
  EXPECT_EQ(cpu_demand_mcpu(sim::milliseconds(4)), 50u);
  // Glacial controllers still cost at least one millicore.
  EXPECT_GE(cpu_demand_mcpu(sim::seconds(60)), 1u);
}

}  // namespace
}  // namespace steelnet::orch
