// FleetManager behaviour on a small live testbed: heartbeats over real
// frames, watchdog detection + fencing, failover storms, rolling
// upgrades, and the failover-conservation ledger.
#include "orch/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "faults/fault_plane.hpp"
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "orch/orch_runner.hpp"
#include "sim/simulator.hpp"

namespace steelnet::orch {
namespace {

using namespace steelnet::sim::literals;

/// A flat testbed: every compute host plus the manager hangs off one
/// switch (heartbeats flood, which is fine at this scale), racks are
/// assigned round-robin.
struct FleetFixture {
  sim::Simulator simulator;
  net::Network network{simulator};
  faults::FaultPlane plane{network, 7};
  FleetManager fleet;
  std::vector<net::HostNode*> hosts;
  net::HostNode* mgr;

  explicit FleetFixture(std::uint32_t n_nodes, std::uint32_t n_racks,
                        std::uint32_t capacity_mcpu = 4000,
                        FleetConfig cfg = {})
      : fleet(simulator, cfg) {
    network.set_faults(&plane);
    net::SwitchConfig sw_cfg;
    sw_cfg.num_ports = n_nodes + 1;
    auto& sw = network.add_node<net::SwitchNode>("sw", sw_cfg);
    for (std::uint32_t i = 0; i < n_nodes; ++i) {
      auto& h = network.add_node<net::HostNode>("node" + std::to_string(i),
                                                net::host_mac(1 + i));
      network.connect(sw.id(), static_cast<net::PortId>(i), h.id(), 0);
      hosts.push_back(&h);
      fleet.add_compute(h, i % n_racks, capacity_mcpu);
    }
    mgr = &network.add_node<net::HostNode>("mgr", net::host_mac(0));
    network.connect(sw.id(), static_cast<net::PortId>(n_nodes), mgr->id(), 0);
    fleet.attach_manager(*mgr);
    fleet.attach_faults(plane);
  }

  std::optional<FleetManager::FleetError> place(std::size_t n_vplcs,
                                                sim::SimTime cycle = 2_ms) {
    std::vector<VplcSpec> specs(n_vplcs);
    for (auto& s : specs) s.cycle = cycle;
    return fleet.place_fleet(specs);
  }
};

/// Settled-state cross-check of the placement books: every vPLC's
/// primary/secondary pointer is mirrored by exactly one list entry on
/// that node (no stale or duplicated entries), and each alive node's
/// used_mcpu equals the sum of what its hosted vPLCs reserve. Only valid
/// once no activation is in flight.
void ExpectFleetBooksConsistent(const FleetManager& fleet) {
  const auto& nodes = fleet.nodes();
  const auto& vplcs = fleet.vplcs();
  const FleetConfig& cfg = fleet.config();
  const auto twin_idle = [&](std::uint32_t demand) {
    return std::max(
        1u, static_cast<std::uint32_t>(demand * cfg.twin_idle_fraction));
  };
  std::vector<std::uint32_t> want_mcpu(nodes.size(), 0);
  std::size_t want_primaries = 0;
  std::size_t want_secondaries = 0;
  for (VplcId v = 0; v < vplcs.size(); ++v) {
    const VplcState& s = vplcs[v];
    ASSERT_FALSE(s.activating) << "vPLC " << v << " not settled";
    if (s.primary.has_value()) {
      ++want_primaries;
      want_mcpu[*s.primary] += s.demand_mcpu;
      EXPECT_EQ(std::count(nodes[*s.primary].primaries.begin(),
                           nodes[*s.primary].primaries.end(), v),
                1)
          << "vPLC " << v << " primary list entry";
    }
    if (s.secondary.has_value()) {
      ++want_secondaries;
      want_mcpu[*s.secondary] += twin_idle(s.demand_mcpu);
      EXPECT_EQ(std::count(nodes[*s.secondary].secondaries.begin(),
                           nodes[*s.secondary].secondaries.end(), v),
                1)
          << "vPLC " << v << " secondary list entry";
    }
  }
  std::size_t have_primaries = 0;
  std::size_t have_secondaries = 0;
  for (ComputeId i = 0; i < nodes.size(); ++i) {
    have_primaries += nodes[i].primaries.size();
    have_secondaries += nodes[i].secondaries.size();
    if (nodes[i].alive) {
      EXPECT_EQ(nodes[i].used_mcpu, want_mcpu[i])
          << "node " << i << " CPU books";
    }
  }
  // Any excess here is a stale entry some cleanup path failed to erase.
  EXPECT_EQ(have_primaries, want_primaries);
  EXPECT_EQ(have_secondaries, want_secondaries);
}

TEST(Fleet, HeartbeatCodecRoundTrips) {
  Heartbeat hb;
  hb.node = 17;
  hb.incarnation = 3;
  hb.seq = 0x1122334455667788ULL;
  net::Frame f;
  f.payload.assign(Heartbeat::kBytes, 0);  // encode() fills, never grows
  hb.encode(f);
  const auto back = Heartbeat::decode(f);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, 17u);
  EXPECT_EQ(back->incarnation, 3u);
  EXPECT_EQ(back->seq, 0x1122334455667788ULL);

  net::Frame runt;
  runt.payload.assign(4, 0);
  EXPECT_FALSE(Heartbeat::decode(runt).has_value());
}

TEST(Fleet, WatchdogBoundAndWarmupFormulas) {
  sim::Simulator simulator;
  FleetConfig cfg;
  cfg.heartbeat_period = 2_ms;
  cfg.watchdog_heartbeats = 3;
  FleetManager fleet(simulator, cfg);
  EXPECT_EQ(fleet.watchdog_bound(), 8_ms);
  EXPECT_EQ(fleet.twin_warmup(0), cfg.twin_warmup_base);
  // Per begun KiB, rounded up: sub-KiB snapshots (incl. the 256 B
  // default) are charged one full unit, never a truncated zero.
  EXPECT_EQ(fleet.twin_warmup(1),
            cfg.twin_warmup_base + cfg.twin_sync_per_kib);
  EXPECT_EQ(fleet.twin_warmup(256),
            cfg.twin_warmup_base + cfg.twin_sync_per_kib);
  EXPECT_EQ(fleet.twin_warmup(1025),
            cfg.twin_warmup_base + 2 * cfg.twin_sync_per_kib);
  EXPECT_EQ(fleet.twin_warmup(2048),
            cfg.twin_warmup_base + 2 * cfg.twin_sync_per_kib);
}

TEST(Fleet, PlaceFleetPairsAreRackDisjoint) {
  FleetFixture fx(6, 3);
  ASSERT_FALSE(fx.place(12).has_value());
  EXPECT_EQ(fx.fleet.vplcs().size(), 12u);
  for (const auto& v : fx.fleet.vplcs()) {
    ASSERT_TRUE(v.primary.has_value());
    ASSERT_TRUE(v.secondary.has_value());
    EXPECT_TRUE(v.twin_warm);
    EXPECT_NE(fx.fleet.nodes()[*v.primary].spec.rack,
              fx.fleet.nodes()[*v.secondary].spec.rack);
  }
  EXPECT_EQ(fx.fleet.unprotected(), 0u);
}

TEST(Fleet, OversubscribedFleetIsTypedErrorNotCrash) {
  // 2 nodes x 100 mcpu; a 1 ms-cycle vPLC needs 200 mcpu.
  FleetFixture fx(2, 2, /*capacity_mcpu=*/100);
  const auto err = fx.place(1, 1_ms);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->error, PlaceError::kInsufficientCapacity);
  EXPECT_TRUE(err->primary);
  EXPECT_EQ(err->vplc, 0u);
}

TEST(Fleet, SingleRackTopologyCannotProtectTwins) {
  FleetFixture fx(4, /*n_racks=*/1);
  const auto err = fx.place(1);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->error, PlaceError::kAntiAffinityUnsatisfiable);
  EXPECT_FALSE(err->primary) << "the twin is what anti-affinity blocks";
}

TEST(Fleet, SteadyStateHeartbeatsFlowAndNothingFails) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(8).has_value());
  fx.fleet.start();
  fx.simulator.run_until(200_ms);
  const auto& c = fx.fleet.counters();
  EXPECT_GT(c.heartbeats_tx, 0u);
  // At most the final in-flight beat per node can be cut by the horizon.
  EXPECT_GE(c.heartbeats_rx + 4, c.heartbeats_tx);
  EXPECT_GT(c.heartbeats_rx, 0u);
  EXPECT_EQ(c.failovers_started, 0u);
  EXPECT_EQ(c.nodes_declared_dead, 0u);
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
  EXPECT_DOUBLE_EQ(fx.fleet.availability(), 1.0);
}

TEST(Fleet, CrashedNodeFailsOverWithinWatchdogBound) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(8).has_value());
  fx.fleet.start();
  fx.simulator.schedule_at(50_ms,
                           [&] { fx.plane.crash_node(fx.hosts[0]->id()); });
  fx.simulator.run_until(200_ms);
  const auto& c = fx.fleet.counters();
  EXPECT_EQ(c.nodes_declared_dead, 1u);
  EXPECT_GT(c.failovers_started, 0u);
  EXPECT_EQ(c.switchovers, c.failovers_started);
  EXPECT_EQ(c.switchovers, c.switchovers_within_bound + c.slo_violations);
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
  // A lone node death with warm twins stays inside the bound.
  EXPECT_EQ(c.slo_violations, 0u);
  ASSERT_FALSE(fx.fleet.switchover_latency_us().empty());
  EXPECT_LE(fx.fleet.switchover_latency_us().max() * 1000.0,
            static_cast<double>(fx.fleet.watchdog_bound().nanos()));
  // The crashed node is already plane-dead: no fencing needed.
  EXPECT_EQ(c.nodes_fenced, 0u);
}

TEST(Fleet, SilentButAliveNodeIsFenced) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(8).has_value());
  fx.fleet.start();
  // stop_node kills the agent process but leaves the NIC up -- the
  // "silent primary": the watchdog must declare it dead AND fence it
  // (crash through the plane) before promoting twins.
  fx.simulator.schedule_at(50_ms,
                          [&] { fx.plane.stop_node(fx.hosts[1]->id()); });
  fx.simulator.run_until(200_ms);
  const auto& c = fx.fleet.counters();
  EXPECT_EQ(c.nodes_declared_dead, 1u);
  EXPECT_EQ(c.nodes_fenced, 1u);
  EXPECT_FALSE(fx.plane.node_alive(fx.hosts[1]->id()));
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
}

TEST(Fleet, ColdFailoverReleasesStaleTwinPlacement) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(8).has_value());
  fx.fleet.start();
  // Kill a rack-1 node first: its hosted twins re-protect onto the other
  // rack-1 node and start a ~21 ms warm-up. Then kill a rack-0 node in
  // the middle of that window: vPLCs whose replacement twin is still
  // syncing must fail over COLD, and the not-yet-warm twin placement
  // (idle reservation + secondaries entry) must be fully released --
  // leaking it double-books the node and re-dispatches the vPLC a second
  // time if that node later dies.
  fx.simulator.schedule_at(51_ms,
                           [&] { fx.plane.crash_node(fx.hosts[1]->id()); });
  fx.simulator.schedule_at(62_ms,
                           [&] { fx.plane.crash_node(fx.hosts[0]->id()); });
  fx.simulator.run_until(400_ms);
  const auto& c = fx.fleet.counters();
  ASSERT_GT(c.cold_restarts, 0u) << "scenario must exercise the cold path";
  EXPECT_EQ(c.nodes_declared_dead, 2u);
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
  EXPECT_EQ(c.switchovers, c.failovers_started);
  EXPECT_EQ(c.switchovers, c.switchovers_within_bound + c.slo_violations);
  ExpectFleetBooksConsistent(fx.fleet);
}

TEST(Fleet, SubWatchdogBlipOnActivationTargetDoesNotStrandVplcs) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(16).has_value());
  fx.fleet.start();
  // Crash a rack-0 node; ~6 ms later the watchdog declares it dead and
  // failover activations (500 us each, 2 slots) start on the rack-1 twin
  // nodes. Crash one activation target mid-flight and restart it BEFORE
  // its own watchdog deadline: the manager never declares it dead, so
  // only the rejoin path can reclaim the node's activation slots and
  // re-dispatch the in-flight + queued work the crash killed. Without
  // that, those vPLCs stay activating/down forever.
  fx.simulator.schedule_at(51_ms,
                           [&] { fx.plane.crash_node(fx.hosts[0]->id()); });
  fx.simulator.schedule_at(51_ms + 5200_us,
                           [&] { fx.plane.crash_node(fx.hosts[1]->id()); });
  fx.simulator.schedule_at(58_ms,
                           [&] { fx.plane.restart_node(fx.hosts[1]->id()); });
  fx.simulator.run_until(300_ms);
  const auto& c = fx.fleet.counters();
  EXPECT_EQ(c.nodes_declared_dead, 1u) << "the blip must stay undetected";
  EXPECT_EQ(c.nodes_rejoined, 0u);
  // Re-dispatched activations run again: more runs than completions.
  EXPECT_GT(c.activations_run, c.switchovers)
      << "scenario must catch activations in flight on the blipped node";
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
  EXPECT_EQ(c.switchovers, c.failovers_started);
  EXPECT_EQ(c.switchovers, c.switchovers_within_bound + c.slo_violations);
  ExpectFleetBooksConsistent(fx.fleet);
}

TEST(Fleet, RestartedNodeRejoinsAndHeartbeatsResume) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(8).has_value());
  fx.fleet.start();
  fx.simulator.schedule_at(50_ms,
                           [&] { fx.plane.crash_node(fx.hosts[0]->id()); });
  fx.simulator.schedule_at(120_ms,
                           [&] { fx.plane.restart_node(fx.hosts[0]->id()); });
  fx.simulator.run_until(300_ms);
  const auto& c = fx.fleet.counters();
  EXPECT_EQ(c.nodes_rejoined, 1u);
  EXPECT_TRUE(fx.fleet.nodes()[0].alive);
  EXPECT_TRUE(fx.fleet.nodes()[0].placeable());
  EXPECT_EQ(fx.fleet.ledger_residual(), 0);
  EXPECT_EQ(fx.fleet.currently_down(), 0u);
}

TEST(Fleet, RollingUpgradeHandsOverAndReadmitsEveryNode) {
  OrchConfig cfg = small_orch_config(11);
  cfg.scenario = OrchScenario::kRollingUpgrade;
  const OrchOutcome out = OrchRunner::run(cfg);
  ASSERT_TRUE(out.place_error.empty()) << out.place_error;
  EXPECT_EQ(out.fleet.upgrades_started, 1u);
  EXPECT_GT(out.fleet.graceful_handovers, 0u);
  EXPECT_EQ(out.fleet.nodes_rejoined, out.compute_nodes);
  EXPECT_EQ(out.ledger_residual, 0);
  EXPECT_EQ(out.currently_down, 0u);
  EXPECT_EQ(out.fleet.switchovers,
            out.fleet.switchovers_within_bound + out.fleet.slo_violations);
}

TEST(Fleet, RackStormSettlesWithZeroResidual) {
  OrchConfig cfg = small_orch_config(3);
  cfg.scenario = OrchScenario::kRackFailure;
  const OrchOutcome out = OrchRunner::run(cfg);
  ASSERT_TRUE(out.place_error.empty()) << out.place_error;
  EXPECT_GT(out.fleet.failovers_started, 0u);
  EXPECT_EQ(out.fleet.switchovers, out.fleet.failovers_started);
  EXPECT_EQ(out.fleet.switchovers,
            out.fleet.switchovers_within_bound + out.fleet.slo_violations);
  EXPECT_EQ(out.ledger_residual, 0);
  EXPECT_EQ(out.currently_down, 0u);
  EXPECT_EQ(out.conservation_residual, 0);
  EXPECT_LT(out.availability, 1.0);
  if (out.fleet.slo_violations == 0) {
    EXPECT_LE(out.latency_max_us * 1000.0,
              static_cast<double>(out.watchdog_bound_ns));
  }
}

TEST(Fleet, PlacementTraceRecordsEveryDecision) {
  FleetFixture fx(4, 2);
  ASSERT_FALSE(fx.place(4).has_value());
  const std::string& trace = fx.fleet.placement_trace();
  EXPECT_NE(trace.find("t_ns,vplc,role,node,cause"), std::string::npos);
  // 4 primaries + 4 twins -> 8 decision lines after the header.
  std::size_t lines = 0;
  for (const char ch : trace) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 9u);
}

}  // namespace
}  // namespace steelnet::orch
