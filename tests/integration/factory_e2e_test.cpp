// Whole-stack integration: everything the paper talks about, in one
// factory -- InstaPLC-protected vPLC pair, physical process, best-effort
// cross-traffic, and a failure -- production must not stop.
#include <gtest/gtest.h>

#include "instaplc/instaplc.hpp"
#include "process/process.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/simulator.hpp"

namespace steelnet {
namespace {

using namespace steelnet::sim::literals;

TEST(FactoryE2E, ProductionSurvivesVplcCrashUnderInstaPlc) {
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<sdn::SdnSwitchNode>("sdn");
  auto& dev_host = network.add_node<net::HostNode>("belt-io",
                                                   net::MacAddress{0xD1});
  auto& v1 = network.add_node<net::HostNode>("v1", net::MacAddress{0x11});
  auto& v2 = network.add_node<net::HostNode>("v2", net::MacAddress{0x22});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1.id(), 0, sw.id(), 1);
  network.connect(v2.id(), 0, sw.id(), 2);

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});

  // Both controllers command "motor on, 2 m/s" every cycle.
  auto motor_on = [](std::size_t n) {
    std::vector<std::uint8_t> out(n, 0);
    out[0] = 1;
    out[1] = 0xd0;  // 2000 mm/s
    out[2] = 0x07;
    return out;
  };
  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  profinet::CyclicController vplc1(v1, c1);
  vplc1.set_output_provider(motor_on);
  profinet::ControllerConfig c2 = c1;
  c2.ar_id = 2;
  profinet::CyclicController vplc2(v2, c2);
  vplc2.set_output_provider(motor_on);

  process::Conveyor belt({.length_m = 0.5, .max_speed_mps = 2.0});
  auto stepper = process::bind_process(device, belt, simulator);

  vplc1.connect();
  simulator.schedule_at(100_ms, [&] { vplc2.connect(); });
  simulator.run_until(2_s);
  const auto items_before = belt.items_completed();
  ASSERT_GT(items_before, 5u);  // ~4 items/s

  // Crash the primary. InstaPLC must keep the belt running.
  vplc1.stop();
  simulator.run_until(4_s);
  const auto items_after = belt.items_completed();

  EXPECT_TRUE(app.switched_over());
  EXPECT_EQ(device.counters().watchdog_trips, 0u);
  // Two more seconds of production at ~4 items/s, minus at most one item
  // around the switchover.
  EXPECT_GE(items_after, items_before + 6);
  EXPECT_TRUE(belt.motor_on());
}

TEST(FactoryE2E, WithoutStandbyProductionHalts) {
  // The control experiment: same cell, no secondary -- the crash stops
  // the belt via the watchdog (the §2.2 problem InstaPLC exists for).
  sim::Simulator simulator;
  net::Network network{simulator};
  auto& sw = network.add_node<sdn::SdnSwitchNode>("sdn");
  auto& dev_host = network.add_node<net::HostNode>("belt-io",
                                                   net::MacAddress{0xD1});
  auto& v1 = network.add_node<net::HostNode>("v1", net::MacAddress{0x11});
  network.connect(dev_host.id(), 0, sw.id(), 0);
  network.connect(v1.id(), 0, sw.id(), 1);

  profinet::IoDevice device(dev_host);
  instaplc::InstaPlcApp app(sw, {.device_port = 0, .switchover_cycles = 3});
  profinet::ControllerConfig c1;
  c1.ar_id = 1;
  c1.device_mac = dev_host.mac();
  profinet::CyclicController vplc1(v1, c1);
  vplc1.set_output_provider([](std::size_t n) {
    std::vector<std::uint8_t> out(n, 0);
    out[0] = 1;
    out[1] = 0xd0;
    out[2] = 0x07;
    return out;
  });
  process::Conveyor belt({.length_m = 0.5, .max_speed_mps = 2.0});
  auto stepper = process::bind_process(device, belt, simulator);

  vplc1.connect();
  simulator.run_until(2_s);
  vplc1.stop();
  simulator.run_until(2_s + 100_ms);
  const auto items_at_halt = belt.items_completed();
  simulator.run_until(4_s);

  EXPECT_FALSE(app.switched_over());
  EXPECT_GE(device.counters().watchdog_trips, 1u);
  EXPECT_FALSE(belt.motor_on());
  EXPECT_EQ(belt.items_completed(), items_at_halt);
}

}  // namespace
}  // namespace steelnet
