// Integration: the no-wait schedule synthesizer drives real traffic.
// Flows transmitted at their computed offsets through a shared port
// never queue behind each other -- every frame's latency equals the
// uncontended path latency, cycle after cycle.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "net/host_node.hpp"
#include "net/switch_node.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "tsn/schedule.hpp"

namespace steelnet {
namespace {

using namespace steelnet::sim::literals;

TEST(TsnScheduleIntegration, ScheduledFlowsNeverQueue) {
  // Four senders, one receiver, all crossing the same egress port.
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig cfg;
  cfg.mac_learning = false;
  cfg.processing_delay = 600_ns;
  auto& sw = network.add_node<net::SwitchNode>("sw", cfg);
  auto& rx = network.add_node<net::HostNode>("rx", net::MacAddress{0x99});
  network.connect(rx.id(), 0, sw.id(), 0);
  sw.add_fdb_entry(rx.mac(), 0);

  constexpr std::size_t kFlows = 4;
  std::vector<net::HostNode*> senders;
  for (std::size_t i = 0; i < kFlows; ++i) {
    auto& h = network.add_node<net::HostNode>("tx" + std::to_string(i),
                                              net::MacAddress{i + 1});
    network.connect(h.id(), 0, sw.id(), static_cast<net::PortId>(i + 1));
    senders.push_back(&h);
  }

  // Schedule all four flows over the shared egress port (key 0).
  std::vector<tsn::FlowSpec> specs;
  for (std::size_t i = 0; i < kFlows; ++i) {
    tsn::FlowSpec f;
    f.flow_id = i;
    f.period = i % 2 == 0 ? 1_ms : 2_ms;
    f.frame_bytes = 84;
    f.path = {0};
    specs.push_back(f);
  }
  tsn::SchedulerConfig scfg;
  scfg.granularity = 10_us;
  const auto schedule = tsn::schedule_flows(specs, scfg);
  ASSERT_TRUE(schedule.unschedulable.empty());
  ASSERT_FALSE(tsn::validate_schedule(schedule).has_value());

  // Drive each flow at its computed offset; collect per-flow latency.
  std::array<sim::SampleSet, kFlows> latency_ns;
  rx.set_receiver([&](net::Frame f, sim::SimTime at) {
    latency_ns[f.flow_id].add(double((at - f.created_at).nanos()));
  });
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
  for (std::size_t i = 0; i < kFlows; ++i) {
    const auto sched = schedule.find(i);
    ASSERT_TRUE(sched.has_value());
    tasks.push_back(std::make_unique<sim::PeriodicTask>(
        simulator, sched->offset, sched->period, [&, i] {
          net::Frame f;
          f.dst = rx.mac();
          f.pcp = 7;
          f.flow_id = i;
          f.payload.resize(46);
          senders[i]->send(std::move(f));
        }));
  }
  simulator.run_until(500_ms);

  // No-wait property: every frame of every flow sees the identical,
  // minimal latency (zero queueing variance).
  for (std::size_t i = 0; i < kFlows; ++i) {
    ASSERT_GT(latency_ns[i].count(), 100u) << "flow " << i;
    EXPECT_EQ(latency_ns[i].min(), latency_ns[i].max())
        << "flow " << i << " experienced queueing";
  }
}

TEST(TsnScheduleIntegration, UnscheduledSameFlowsDoQueue) {
  // Control: the same four flows all transmitting at offset 0 collide at
  // the shared port and see variable latency -- proving the offsets (not
  // luck) produced the flat profile above.
  sim::Simulator simulator;
  net::Network network{simulator};
  net::SwitchConfig cfg;
  cfg.mac_learning = false;
  auto& sw = network.add_node<net::SwitchNode>("sw", cfg);
  auto& rx = network.add_node<net::HostNode>("rx", net::MacAddress{0x99});
  network.connect(rx.id(), 0, sw.id(), 0);
  sw.add_fdb_entry(rx.mac(), 0);

  sim::SampleSet latency_ns;
  rx.set_receiver([&](net::Frame f, sim::SimTime at) {
    latency_ns.add(double((at - f.created_at).nanos()));
  });
  std::vector<std::unique_ptr<sim::PeriodicTask>> tasks;
  std::vector<net::HostNode*> senders;
  for (std::size_t i = 0; i < 4; ++i) {
    auto& h = network.add_node<net::HostNode>("tx" + std::to_string(i),
                                              net::MacAddress{i + 1});
    network.connect(h.id(), 0, sw.id(), static_cast<net::PortId>(i + 1));
    senders.push_back(&h);
    tasks.push_back(std::make_unique<sim::PeriodicTask>(
        simulator, 0_ns, 1_ms, [&, i] {
          net::Frame f;
          f.dst = rx.mac();
          f.pcp = 7;
          f.flow_id = i;
          f.payload.resize(46);
          senders[i]->send(std::move(f));
        }));
  }
  simulator.run_until(100_ms);
  EXPECT_GT(latency_ns.max(), latency_ns.min())
      << "expected head-of-line queueing without a schedule";
}

}  // namespace
}  // namespace steelnet
