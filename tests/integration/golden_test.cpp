// Golden determinism tests: identical seeds must produce bit-identical
// results forever. If a change to the library intentionally alters
// behaviour, update the pinned fingerprints below (and say so in the
// change description) -- an *unintended* fingerprint change is a
// regression in the determinism guarantee.
#include <gtest/gtest.h>

#include <cstring>

#include "core/traffic_mix.hpp"
#include "sim/random.hpp"
#include "sim/trace.hpp"
#include "tap/reflection.hpp"

namespace steelnet {
namespace {

using namespace steelnet::sim::literals;

/// FNV-1a over a double sequence's bit patterns.
std::uint64_t fingerprint(const std::vector<double>& values) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (double v : values) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

TEST(Golden, RngStreamPinned) {
  sim::Rng rng{2025};
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 64; ++i) {
    const auto v = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  EXPECT_EQ(h, 10222540825773612038ULL) << "xoshiro sequence changed";
}

TEST(Golden, ReflectionDelaysPinned) {
  tap::ReflectionConfig cfg;
  cfg.variant = ebpf::ReflectorVariant::kTsRb;
  cfg.packets = 200;
  cfg.seed = 99;
  const auto r = tap::run_traffic_reflection(cfg);
  EXPECT_EQ(fingerprint(r.delay_us.raw()), 13599000041657250848ULL)
      << "traffic-reflection sample stream changed";
}

TEST(Golden, TrafficMixPinned) {
  core::MixSpec spec;
  const auto flows = core::generate_mix(spec);
  std::vector<double> bytes;
  bytes.reserve(flows.size());
  for (const auto& f : flows) bytes.push_back(double(f.total_bytes));
  EXPECT_EQ(fingerprint(bytes), 17498984022749266986ULL)
      << "traffic-mix generation changed";
}

TEST(Golden, TraceFingerprintStableAcrossRuns) {
  // Structural (not pinned): two identical runs emit identical traces.
  auto run = [] {
    sim::Trace trace;
    sim::Rng rng{5};
    for (int i = 0; i < 100; ++i) {
      trace.emit(sim::SimTime{i * 100}, "v",
                 std::to_string(rng.uniform_int(0, 1 << 20)));
    }
    return trace.fingerprint();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace steelnet
