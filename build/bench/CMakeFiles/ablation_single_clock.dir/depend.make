# Empty dependencies file for ablation_single_clock.
# This may be replaced when dependencies are built.
