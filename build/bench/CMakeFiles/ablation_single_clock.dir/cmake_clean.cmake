file(REMOVE_RECURSE
  "CMakeFiles/ablation_single_clock.dir/ablation_single_clock.cpp.o"
  "CMakeFiles/ablation_single_clock.dir/ablation_single_clock.cpp.o.d"
  "ablation_single_clock"
  "ablation_single_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_single_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
