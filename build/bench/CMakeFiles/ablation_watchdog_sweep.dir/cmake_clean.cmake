file(REMOVE_RECURSE
  "CMakeFiles/ablation_watchdog_sweep.dir/ablation_watchdog_sweep.cpp.o"
  "CMakeFiles/ablation_watchdog_sweep.dir/ablation_watchdog_sweep.cpp.o.d"
  "ablation_watchdog_sweep"
  "ablation_watchdog_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_watchdog_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
