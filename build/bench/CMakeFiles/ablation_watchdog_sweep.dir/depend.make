# Empty dependencies file for ablation_watchdog_sweep.
# This may be replaced when dependencies are built.
