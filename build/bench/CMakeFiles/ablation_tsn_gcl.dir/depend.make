# Empty dependencies file for ablation_tsn_gcl.
# This may be replaced when dependencies are built.
