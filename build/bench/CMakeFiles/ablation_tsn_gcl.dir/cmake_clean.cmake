file(REMOVE_RECURSE
  "CMakeFiles/ablation_tsn_gcl.dir/ablation_tsn_gcl.cpp.o"
  "CMakeFiles/ablation_tsn_gcl.dir/ablation_tsn_gcl.cpp.o.d"
  "ablation_tsn_gcl"
  "ablation_tsn_gcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tsn_gcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
