file(REMOVE_RECURSE
  "CMakeFiles/fig4_traffic_reflection.dir/fig4_traffic_reflection.cpp.o"
  "CMakeFiles/fig4_traffic_reflection.dir/fig4_traffic_reflection.cpp.o.d"
  "fig4_traffic_reflection"
  "fig4_traffic_reflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_traffic_reflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
