# Empty dependencies file for fig4_traffic_reflection.
# This may be replaced when dependencies are built.
