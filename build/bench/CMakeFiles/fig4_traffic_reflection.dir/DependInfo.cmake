
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_traffic_reflection.cpp" "bench/CMakeFiles/fig4_traffic_reflection.dir/fig4_traffic_reflection.cpp.o" "gcc" "bench/CMakeFiles/fig4_traffic_reflection.dir/fig4_traffic_reflection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tap/CMakeFiles/steelnet_tap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/steelnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tsn/CMakeFiles/steelnet_tsn.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/steelnet_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
