file(REMOVE_RECURSE
  "CMakeFiles/ablation_vplc_scaling.dir/ablation_vplc_scaling.cpp.o"
  "CMakeFiles/ablation_vplc_scaling.dir/ablation_vplc_scaling.cpp.o.d"
  "ablation_vplc_scaling"
  "ablation_vplc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vplc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
