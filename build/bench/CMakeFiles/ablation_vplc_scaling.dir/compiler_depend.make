# Empty compiler generated dependencies file for ablation_vplc_scaling.
# This may be replaced when dependencies are built.
