# Empty dependencies file for fig1_research_gap.
# This may be replaced when dependencies are built.
