file(REMOVE_RECURSE
  "CMakeFiles/fig1_research_gap.dir/fig1_research_gap.cpp.o"
  "CMakeFiles/fig1_research_gap.dir/fig1_research_gap.cpp.o.d"
  "fig1_research_gap"
  "fig1_research_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_research_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
