file(REMOVE_RECURSE
  "CMakeFiles/fig5_instaplc.dir/fig5_instaplc.cpp.o"
  "CMakeFiles/fig5_instaplc.dir/fig5_instaplc.cpp.o.d"
  "fig5_instaplc"
  "fig5_instaplc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_instaplc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
