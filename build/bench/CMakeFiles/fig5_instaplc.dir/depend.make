# Empty dependencies file for fig5_instaplc.
# This may be replaced when dependencies are built.
