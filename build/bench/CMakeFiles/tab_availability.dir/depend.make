# Empty dependencies file for tab_availability.
# This may be replaced when dependencies are built.
