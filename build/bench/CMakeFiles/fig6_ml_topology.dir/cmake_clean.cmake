file(REMOVE_RECURSE
  "CMakeFiles/fig6_ml_topology.dir/fig6_ml_topology.cpp.o"
  "CMakeFiles/fig6_ml_topology.dir/fig6_ml_topology.cpp.o.d"
  "fig6_ml_topology"
  "fig6_ml_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ml_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
