# Empty compiler generated dependencies file for fig6_ml_topology.
# This may be replaced when dependencies are built.
