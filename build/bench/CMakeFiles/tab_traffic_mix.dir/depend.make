# Empty dependencies file for tab_traffic_mix.
# This may be replaced when dependencies are built.
