file(REMOVE_RECURSE
  "CMakeFiles/tab_traffic_mix.dir/tab_traffic_mix.cpp.o"
  "CMakeFiles/tab_traffic_mix.dir/tab_traffic_mix.cpp.o.d"
  "tab_traffic_mix"
  "tab_traffic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_traffic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
