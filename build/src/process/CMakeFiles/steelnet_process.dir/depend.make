# Empty dependencies file for steelnet_process.
# This may be replaced when dependencies are built.
