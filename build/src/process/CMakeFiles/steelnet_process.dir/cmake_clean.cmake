file(REMOVE_RECURSE
  "CMakeFiles/steelnet_process.dir/process.cpp.o"
  "CMakeFiles/steelnet_process.dir/process.cpp.o.d"
  "libsteelnet_process.a"
  "libsteelnet_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
