file(REMOVE_RECURSE
  "libsteelnet_process.a"
)
