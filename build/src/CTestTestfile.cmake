# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("tsn")
subdirs("host")
subdirs("ebpf")
subdirs("tap")
subdirs("profinet")
subdirs("process")
subdirs("plc")
subdirs("sdn")
subdirs("instaplc")
subdirs("mlnet")
subdirs("textmine")
subdirs("core")
