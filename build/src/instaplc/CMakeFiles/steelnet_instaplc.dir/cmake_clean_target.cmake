file(REMOVE_RECURSE
  "libsteelnet_instaplc.a"
)
