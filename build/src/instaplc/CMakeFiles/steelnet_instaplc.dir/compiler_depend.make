# Empty compiler generated dependencies file for steelnet_instaplc.
# This may be replaced when dependencies are built.
