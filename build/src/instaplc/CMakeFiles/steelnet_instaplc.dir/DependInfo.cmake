
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instaplc/digital_twin.cpp" "src/instaplc/CMakeFiles/steelnet_instaplc.dir/digital_twin.cpp.o" "gcc" "src/instaplc/CMakeFiles/steelnet_instaplc.dir/digital_twin.cpp.o.d"
  "/root/repo/src/instaplc/instaplc.cpp" "src/instaplc/CMakeFiles/steelnet_instaplc.dir/instaplc.cpp.o" "gcc" "src/instaplc/CMakeFiles/steelnet_instaplc.dir/instaplc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdn/CMakeFiles/steelnet_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/profinet/CMakeFiles/steelnet_profinet.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
