file(REMOVE_RECURSE
  "CMakeFiles/steelnet_instaplc.dir/digital_twin.cpp.o"
  "CMakeFiles/steelnet_instaplc.dir/digital_twin.cpp.o.d"
  "CMakeFiles/steelnet_instaplc.dir/instaplc.cpp.o"
  "CMakeFiles/steelnet_instaplc.dir/instaplc.cpp.o.d"
  "libsteelnet_instaplc.a"
  "libsteelnet_instaplc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_instaplc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
