file(REMOVE_RECURSE
  "libsteelnet_host.a"
)
