# Empty dependencies file for steelnet_host.
# This may be replaced when dependencies are built.
