
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/host_path.cpp" "src/host/CMakeFiles/steelnet_host.dir/host_path.cpp.o" "gcc" "src/host/CMakeFiles/steelnet_host.dir/host_path.cpp.o.d"
  "/root/repo/src/host/kernel.cpp" "src/host/CMakeFiles/steelnet_host.dir/kernel.cpp.o" "gcc" "src/host/CMakeFiles/steelnet_host.dir/kernel.cpp.o.d"
  "/root/repo/src/host/pcie.cpp" "src/host/CMakeFiles/steelnet_host.dir/pcie.cpp.o" "gcc" "src/host/CMakeFiles/steelnet_host.dir/pcie.cpp.o.d"
  "/root/repo/src/host/samplers.cpp" "src/host/CMakeFiles/steelnet_host.dir/samplers.cpp.o" "gcc" "src/host/CMakeFiles/steelnet_host.dir/samplers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
