file(REMOVE_RECURSE
  "CMakeFiles/steelnet_host.dir/host_path.cpp.o"
  "CMakeFiles/steelnet_host.dir/host_path.cpp.o.d"
  "CMakeFiles/steelnet_host.dir/kernel.cpp.o"
  "CMakeFiles/steelnet_host.dir/kernel.cpp.o.d"
  "CMakeFiles/steelnet_host.dir/pcie.cpp.o"
  "CMakeFiles/steelnet_host.dir/pcie.cpp.o.d"
  "CMakeFiles/steelnet_host.dir/samplers.cpp.o"
  "CMakeFiles/steelnet_host.dir/samplers.cpp.o.d"
  "libsteelnet_host.a"
  "libsteelnet_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
