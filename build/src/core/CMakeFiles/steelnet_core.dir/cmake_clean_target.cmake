file(REMOVE_RECURSE
  "libsteelnet_core.a"
)
