# Empty compiler generated dependencies file for steelnet_core.
# This may be replaced when dependencies are built.
