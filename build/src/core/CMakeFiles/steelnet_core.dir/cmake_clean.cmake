file(REMOVE_RECURSE
  "CMakeFiles/steelnet_core.dir/availability.cpp.o"
  "CMakeFiles/steelnet_core.dir/availability.cpp.o.d"
  "CMakeFiles/steelnet_core.dir/report.cpp.o"
  "CMakeFiles/steelnet_core.dir/report.cpp.o.d"
  "CMakeFiles/steelnet_core.dir/traffic_mix.cpp.o"
  "CMakeFiles/steelnet_core.dir/traffic_mix.cpp.o.d"
  "libsteelnet_core.a"
  "libsteelnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
