file(REMOVE_RECURSE
  "CMakeFiles/steelnet_sdn.dir/pipeline.cpp.o"
  "CMakeFiles/steelnet_sdn.dir/pipeline.cpp.o.d"
  "CMakeFiles/steelnet_sdn.dir/sdn_switch.cpp.o"
  "CMakeFiles/steelnet_sdn.dir/sdn_switch.cpp.o.d"
  "libsteelnet_sdn.a"
  "libsteelnet_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
