# Empty compiler generated dependencies file for steelnet_sdn.
# This may be replaced when dependencies are built.
