file(REMOVE_RECURSE
  "libsteelnet_sdn.a"
)
