
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdn/pipeline.cpp" "src/sdn/CMakeFiles/steelnet_sdn.dir/pipeline.cpp.o" "gcc" "src/sdn/CMakeFiles/steelnet_sdn.dir/pipeline.cpp.o.d"
  "/root/repo/src/sdn/sdn_switch.cpp" "src/sdn/CMakeFiles/steelnet_sdn.dir/sdn_switch.cpp.o" "gcc" "src/sdn/CMakeFiles/steelnet_sdn.dir/sdn_switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
