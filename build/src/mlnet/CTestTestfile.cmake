# CMake generated Testfile for 
# Source directory: /root/repo/src/mlnet
# Build directory: /root/repo/build/src/mlnet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
