file(REMOVE_RECURSE
  "libsteelnet_mlnet.a"
)
