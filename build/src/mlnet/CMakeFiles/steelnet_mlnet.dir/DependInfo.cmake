
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlnet/inference.cpp" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/inference.cpp.o" "gcc" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/inference.cpp.o.d"
  "/root/repo/src/mlnet/topologies.cpp" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/topologies.cpp.o" "gcc" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/topologies.cpp.o.d"
  "/root/repo/src/mlnet/workload.cpp" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/workload.cpp.o" "gcc" "src/mlnet/CMakeFiles/steelnet_mlnet.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
