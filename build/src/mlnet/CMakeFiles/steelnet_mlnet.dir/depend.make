# Empty dependencies file for steelnet_mlnet.
# This may be replaced when dependencies are built.
