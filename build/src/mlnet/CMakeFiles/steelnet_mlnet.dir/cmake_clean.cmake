file(REMOVE_RECURSE
  "CMakeFiles/steelnet_mlnet.dir/inference.cpp.o"
  "CMakeFiles/steelnet_mlnet.dir/inference.cpp.o.d"
  "CMakeFiles/steelnet_mlnet.dir/topologies.cpp.o"
  "CMakeFiles/steelnet_mlnet.dir/topologies.cpp.o.d"
  "CMakeFiles/steelnet_mlnet.dir/workload.cpp.o"
  "CMakeFiles/steelnet_mlnet.dir/workload.cpp.o.d"
  "libsteelnet_mlnet.a"
  "libsteelnet_mlnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_mlnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
