file(REMOVE_RECURSE
  "libsteelnet_ebpf.a"
)
