
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/assembler.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/assembler.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/assembler.cpp.o.d"
  "/root/repo/src/ebpf/cost.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/cost.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/cost.cpp.o.d"
  "/root/repo/src/ebpf/isa.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/isa.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/isa.cpp.o.d"
  "/root/repo/src/ebpf/maps.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/maps.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/maps.cpp.o.d"
  "/root/repo/src/ebpf/programs.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/programs.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/programs.cpp.o.d"
  "/root/repo/src/ebpf/verifier.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/verifier.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/verifier.cpp.o.d"
  "/root/repo/src/ebpf/vm.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/vm.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/vm.cpp.o.d"
  "/root/repo/src/ebpf/xdp.cpp" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/xdp.cpp.o" "gcc" "src/ebpf/CMakeFiles/steelnet_ebpf.dir/xdp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
