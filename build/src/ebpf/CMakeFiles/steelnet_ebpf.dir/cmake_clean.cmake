file(REMOVE_RECURSE
  "CMakeFiles/steelnet_ebpf.dir/assembler.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/assembler.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/cost.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/cost.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/isa.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/isa.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/maps.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/maps.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/programs.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/programs.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/verifier.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/verifier.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/vm.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/vm.cpp.o.d"
  "CMakeFiles/steelnet_ebpf.dir/xdp.cpp.o"
  "CMakeFiles/steelnet_ebpf.dir/xdp.cpp.o.d"
  "libsteelnet_ebpf.a"
  "libsteelnet_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
