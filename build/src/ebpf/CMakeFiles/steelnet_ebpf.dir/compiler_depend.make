# Empty compiler generated dependencies file for steelnet_ebpf.
# This may be replaced when dependencies are built.
