file(REMOVE_RECURSE
  "libsteelnet_textmine.a"
)
