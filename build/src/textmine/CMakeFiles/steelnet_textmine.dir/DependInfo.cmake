
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textmine/aho_corasick.cpp" "src/textmine/CMakeFiles/steelnet_textmine.dir/aho_corasick.cpp.o" "gcc" "src/textmine/CMakeFiles/steelnet_textmine.dir/aho_corasick.cpp.o.d"
  "/root/repo/src/textmine/corpus.cpp" "src/textmine/CMakeFiles/steelnet_textmine.dir/corpus.cpp.o" "gcc" "src/textmine/CMakeFiles/steelnet_textmine.dir/corpus.cpp.o.d"
  "/root/repo/src/textmine/terms.cpp" "src/textmine/CMakeFiles/steelnet_textmine.dir/terms.cpp.o" "gcc" "src/textmine/CMakeFiles/steelnet_textmine.dir/terms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
