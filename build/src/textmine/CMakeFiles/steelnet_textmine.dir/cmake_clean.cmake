file(REMOVE_RECURSE
  "CMakeFiles/steelnet_textmine.dir/aho_corasick.cpp.o"
  "CMakeFiles/steelnet_textmine.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/steelnet_textmine.dir/corpus.cpp.o"
  "CMakeFiles/steelnet_textmine.dir/corpus.cpp.o.d"
  "CMakeFiles/steelnet_textmine.dir/terms.cpp.o"
  "CMakeFiles/steelnet_textmine.dir/terms.cpp.o.d"
  "libsteelnet_textmine.a"
  "libsteelnet_textmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_textmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
