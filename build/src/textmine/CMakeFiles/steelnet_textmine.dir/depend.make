# Empty dependencies file for steelnet_textmine.
# This may be replaced when dependencies are built.
