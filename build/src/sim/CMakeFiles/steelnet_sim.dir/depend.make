# Empty dependencies file for steelnet_sim.
# This may be replaced when dependencies are built.
