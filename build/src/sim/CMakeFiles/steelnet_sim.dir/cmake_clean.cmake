file(REMOVE_RECURSE
  "CMakeFiles/steelnet_sim.dir/event_queue.cpp.o"
  "CMakeFiles/steelnet_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/steelnet_sim.dir/random.cpp.o"
  "CMakeFiles/steelnet_sim.dir/random.cpp.o.d"
  "CMakeFiles/steelnet_sim.dir/simulator.cpp.o"
  "CMakeFiles/steelnet_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/steelnet_sim.dir/stats.cpp.o"
  "CMakeFiles/steelnet_sim.dir/stats.cpp.o.d"
  "CMakeFiles/steelnet_sim.dir/time.cpp.o"
  "CMakeFiles/steelnet_sim.dir/time.cpp.o.d"
  "CMakeFiles/steelnet_sim.dir/trace.cpp.o"
  "CMakeFiles/steelnet_sim.dir/trace.cpp.o.d"
  "libsteelnet_sim.a"
  "libsteelnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
