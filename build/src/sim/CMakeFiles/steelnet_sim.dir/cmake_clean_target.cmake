file(REMOVE_RECURSE
  "libsteelnet_sim.a"
)
