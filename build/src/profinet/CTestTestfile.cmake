# CMake generated Testfile for 
# Source directory: /root/repo/src/profinet
# Build directory: /root/repo/build/src/profinet
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
