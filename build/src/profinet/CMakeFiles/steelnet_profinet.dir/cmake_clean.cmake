file(REMOVE_RECURSE
  "CMakeFiles/steelnet_profinet.dir/controller.cpp.o"
  "CMakeFiles/steelnet_profinet.dir/controller.cpp.o.d"
  "CMakeFiles/steelnet_profinet.dir/io_device.cpp.o"
  "CMakeFiles/steelnet_profinet.dir/io_device.cpp.o.d"
  "CMakeFiles/steelnet_profinet.dir/wire.cpp.o"
  "CMakeFiles/steelnet_profinet.dir/wire.cpp.o.d"
  "libsteelnet_profinet.a"
  "libsteelnet_profinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_profinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
