# Empty dependencies file for steelnet_profinet.
# This may be replaced when dependencies are built.
