file(REMOVE_RECURSE
  "libsteelnet_profinet.a"
)
