# Empty compiler generated dependencies file for steelnet_tsn.
# This may be replaced when dependencies are built.
