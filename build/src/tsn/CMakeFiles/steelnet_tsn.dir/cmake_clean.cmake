file(REMOVE_RECURSE
  "CMakeFiles/steelnet_tsn.dir/gcl.cpp.o"
  "CMakeFiles/steelnet_tsn.dir/gcl.cpp.o.d"
  "CMakeFiles/steelnet_tsn.dir/ptp.cpp.o"
  "CMakeFiles/steelnet_tsn.dir/ptp.cpp.o.d"
  "CMakeFiles/steelnet_tsn.dir/schedule.cpp.o"
  "CMakeFiles/steelnet_tsn.dir/schedule.cpp.o.d"
  "libsteelnet_tsn.a"
  "libsteelnet_tsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_tsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
