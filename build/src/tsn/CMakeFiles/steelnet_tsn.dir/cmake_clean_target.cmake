file(REMOVE_RECURSE
  "libsteelnet_tsn.a"
)
