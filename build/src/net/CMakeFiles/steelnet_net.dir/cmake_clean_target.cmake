file(REMOVE_RECURSE
  "libsteelnet_net.a"
)
