
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/egress_queue.cpp" "src/net/CMakeFiles/steelnet_net.dir/egress_queue.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/egress_queue.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/steelnet_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/host_node.cpp" "src/net/CMakeFiles/steelnet_net.dir/host_node.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/host_node.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/steelnet_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/network.cpp.o.d"
  "/root/repo/src/net/switch_node.cpp" "src/net/CMakeFiles/steelnet_net.dir/switch_node.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/switch_node.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/steelnet_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/steelnet_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
