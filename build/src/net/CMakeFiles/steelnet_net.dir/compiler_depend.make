# Empty compiler generated dependencies file for steelnet_net.
# This may be replaced when dependencies are built.
