file(REMOVE_RECURSE
  "CMakeFiles/steelnet_net.dir/egress_queue.cpp.o"
  "CMakeFiles/steelnet_net.dir/egress_queue.cpp.o.d"
  "CMakeFiles/steelnet_net.dir/frame.cpp.o"
  "CMakeFiles/steelnet_net.dir/frame.cpp.o.d"
  "CMakeFiles/steelnet_net.dir/host_node.cpp.o"
  "CMakeFiles/steelnet_net.dir/host_node.cpp.o.d"
  "CMakeFiles/steelnet_net.dir/network.cpp.o"
  "CMakeFiles/steelnet_net.dir/network.cpp.o.d"
  "CMakeFiles/steelnet_net.dir/switch_node.cpp.o"
  "CMakeFiles/steelnet_net.dir/switch_node.cpp.o.d"
  "CMakeFiles/steelnet_net.dir/topology.cpp.o"
  "CMakeFiles/steelnet_net.dir/topology.cpp.o.d"
  "libsteelnet_net.a"
  "libsteelnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
