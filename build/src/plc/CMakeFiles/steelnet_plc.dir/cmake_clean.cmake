file(REMOVE_RECURSE
  "CMakeFiles/steelnet_plc.dir/function_blocks.cpp.o"
  "CMakeFiles/steelnet_plc.dir/function_blocks.cpp.o.d"
  "CMakeFiles/steelnet_plc.dir/il.cpp.o"
  "CMakeFiles/steelnet_plc.dir/il.cpp.o.d"
  "CMakeFiles/steelnet_plc.dir/plc.cpp.o"
  "CMakeFiles/steelnet_plc.dir/plc.cpp.o.d"
  "CMakeFiles/steelnet_plc.dir/redundancy.cpp.o"
  "CMakeFiles/steelnet_plc.dir/redundancy.cpp.o.d"
  "libsteelnet_plc.a"
  "libsteelnet_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
