# Empty dependencies file for steelnet_plc.
# This may be replaced when dependencies are built.
