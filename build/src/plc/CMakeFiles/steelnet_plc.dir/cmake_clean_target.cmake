file(REMOVE_RECURSE
  "libsteelnet_plc.a"
)
