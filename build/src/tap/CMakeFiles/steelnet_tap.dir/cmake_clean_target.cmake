file(REMOVE_RECURSE
  "libsteelnet_tap.a"
)
