file(REMOVE_RECURSE
  "CMakeFiles/steelnet_tap.dir/reflection.cpp.o"
  "CMakeFiles/steelnet_tap.dir/reflection.cpp.o.d"
  "CMakeFiles/steelnet_tap.dir/tap_node.cpp.o"
  "CMakeFiles/steelnet_tap.dir/tap_node.cpp.o.d"
  "libsteelnet_tap.a"
  "libsteelnet_tap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steelnet_tap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
