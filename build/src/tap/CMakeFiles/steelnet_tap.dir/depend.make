# Empty dependencies file for steelnet_tap.
# This may be replaced when dependencies are built.
