file(REMOVE_RECURSE
  "CMakeFiles/ml_inspection.dir/ml_inspection.cpp.o"
  "CMakeFiles/ml_inspection.dir/ml_inspection.cpp.o.d"
  "ml_inspection"
  "ml_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
