# Empty compiler generated dependencies file for ml_inspection.
# This may be replaced when dependencies are built.
