# Empty dependencies file for ebpf_playground.
# This may be replaced when dependencies are built.
