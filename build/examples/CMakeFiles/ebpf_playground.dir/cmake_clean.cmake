file(REMOVE_RECURSE
  "CMakeFiles/ebpf_playground.dir/ebpf_playground.cpp.o"
  "CMakeFiles/ebpf_playground.dir/ebpf_playground.cpp.o.d"
  "ebpf_playground"
  "ebpf_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
