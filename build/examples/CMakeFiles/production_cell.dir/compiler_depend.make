# Empty compiler generated dependencies file for production_cell.
# This may be replaced when dependencies are built.
