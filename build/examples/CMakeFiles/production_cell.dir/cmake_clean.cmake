file(REMOVE_RECURSE
  "CMakeFiles/production_cell.dir/production_cell.cpp.o"
  "CMakeFiles/production_cell.dir/production_cell.cpp.o.d"
  "production_cell"
  "production_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
