file(REMOVE_RECURSE
  "CMakeFiles/process_tests.dir/process/process_test.cpp.o"
  "CMakeFiles/process_tests.dir/process/process_test.cpp.o.d"
  "process_tests"
  "process_tests.pdb"
  "process_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
