# Empty dependencies file for process_tests.
# This may be replaced when dependencies are built.
