file(REMOVE_RECURSE
  "CMakeFiles/tap_tests.dir/tap/reflection_test.cpp.o"
  "CMakeFiles/tap_tests.dir/tap/reflection_test.cpp.o.d"
  "CMakeFiles/tap_tests.dir/tap/tap_test.cpp.o"
  "CMakeFiles/tap_tests.dir/tap/tap_test.cpp.o.d"
  "tap_tests"
  "tap_tests.pdb"
  "tap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
