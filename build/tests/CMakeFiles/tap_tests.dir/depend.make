# Empty dependencies file for tap_tests.
# This may be replaced when dependencies are built.
