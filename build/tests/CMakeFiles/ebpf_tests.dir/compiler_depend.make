# Empty compiler generated dependencies file for ebpf_tests.
# This may be replaced when dependencies are built.
