
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ebpf/assembler_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/assembler_test.cpp.o.d"
  "/root/repo/tests/ebpf/cost_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/cost_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/cost_test.cpp.o.d"
  "/root/repo/tests/ebpf/maps_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/maps_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/maps_test.cpp.o.d"
  "/root/repo/tests/ebpf/verifier_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/verifier_test.cpp.o.d"
  "/root/repo/tests/ebpf/vm_property_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/vm_property_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/vm_property_test.cpp.o.d"
  "/root/repo/tests/ebpf/vm_test.cpp" "tests/CMakeFiles/ebpf_tests.dir/ebpf/vm_test.cpp.o" "gcc" "tests/CMakeFiles/ebpf_tests.dir/ebpf/vm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebpf/CMakeFiles/steelnet_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
