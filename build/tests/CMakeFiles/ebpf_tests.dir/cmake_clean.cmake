file(REMOVE_RECURSE
  "CMakeFiles/ebpf_tests.dir/ebpf/assembler_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/assembler_test.cpp.o.d"
  "CMakeFiles/ebpf_tests.dir/ebpf/cost_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/cost_test.cpp.o.d"
  "CMakeFiles/ebpf_tests.dir/ebpf/maps_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/maps_test.cpp.o.d"
  "CMakeFiles/ebpf_tests.dir/ebpf/verifier_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/verifier_test.cpp.o.d"
  "CMakeFiles/ebpf_tests.dir/ebpf/vm_property_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/vm_property_test.cpp.o.d"
  "CMakeFiles/ebpf_tests.dir/ebpf/vm_test.cpp.o"
  "CMakeFiles/ebpf_tests.dir/ebpf/vm_test.cpp.o.d"
  "ebpf_tests"
  "ebpf_tests.pdb"
  "ebpf_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebpf_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
