# Empty compiler generated dependencies file for mlnet_tests.
# This may be replaced when dependencies are built.
