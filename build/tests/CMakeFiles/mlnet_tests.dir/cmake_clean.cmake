file(REMOVE_RECURSE
  "CMakeFiles/mlnet_tests.dir/mlnet/topology_test.cpp.o"
  "CMakeFiles/mlnet_tests.dir/mlnet/topology_test.cpp.o.d"
  "CMakeFiles/mlnet_tests.dir/mlnet/workload_test.cpp.o"
  "CMakeFiles/mlnet_tests.dir/mlnet/workload_test.cpp.o.d"
  "mlnet_tests"
  "mlnet_tests.pdb"
  "mlnet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlnet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
