file(REMOVE_RECURSE
  "CMakeFiles/instaplc_tests.dir/instaplc/instaplc_test.cpp.o"
  "CMakeFiles/instaplc_tests.dir/instaplc/instaplc_test.cpp.o.d"
  "instaplc_tests"
  "instaplc_tests.pdb"
  "instaplc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instaplc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
