# Empty dependencies file for instaplc_tests.
# This may be replaced when dependencies are built.
