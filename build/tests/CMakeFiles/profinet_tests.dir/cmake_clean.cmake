file(REMOVE_RECURSE
  "CMakeFiles/profinet_tests.dir/profinet/exchange_test.cpp.o"
  "CMakeFiles/profinet_tests.dir/profinet/exchange_test.cpp.o.d"
  "CMakeFiles/profinet_tests.dir/profinet/wire_test.cpp.o"
  "CMakeFiles/profinet_tests.dir/profinet/wire_test.cpp.o.d"
  "profinet_tests"
  "profinet_tests.pdb"
  "profinet_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profinet_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
