# Empty dependencies file for profinet_tests.
# This may be replaced when dependencies are built.
