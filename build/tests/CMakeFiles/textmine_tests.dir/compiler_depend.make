# Empty compiler generated dependencies file for textmine_tests.
# This may be replaced when dependencies are built.
