file(REMOVE_RECURSE
  "CMakeFiles/textmine_tests.dir/textmine/aho_test.cpp.o"
  "CMakeFiles/textmine_tests.dir/textmine/aho_test.cpp.o.d"
  "CMakeFiles/textmine_tests.dir/textmine/terms_test.cpp.o"
  "CMakeFiles/textmine_tests.dir/textmine/terms_test.cpp.o.d"
  "textmine_tests"
  "textmine_tests.pdb"
  "textmine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
