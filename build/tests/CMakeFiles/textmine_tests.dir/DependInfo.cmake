
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/textmine/aho_test.cpp" "tests/CMakeFiles/textmine_tests.dir/textmine/aho_test.cpp.o" "gcc" "tests/CMakeFiles/textmine_tests.dir/textmine/aho_test.cpp.o.d"
  "/root/repo/tests/textmine/terms_test.cpp" "tests/CMakeFiles/textmine_tests.dir/textmine/terms_test.cpp.o" "gcc" "tests/CMakeFiles/textmine_tests.dir/textmine/terms_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/textmine/CMakeFiles/steelnet_textmine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
