file(REMOVE_RECURSE
  "CMakeFiles/plc_tests.dir/plc/fb_test.cpp.o"
  "CMakeFiles/plc_tests.dir/plc/fb_test.cpp.o.d"
  "CMakeFiles/plc_tests.dir/plc/il_test.cpp.o"
  "CMakeFiles/plc_tests.dir/plc/il_test.cpp.o.d"
  "CMakeFiles/plc_tests.dir/plc/plc_integration_test.cpp.o"
  "CMakeFiles/plc_tests.dir/plc/plc_integration_test.cpp.o.d"
  "plc_tests"
  "plc_tests.pdb"
  "plc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
