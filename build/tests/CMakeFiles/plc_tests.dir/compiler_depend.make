# Empty compiler generated dependencies file for plc_tests.
# This may be replaced when dependencies are built.
