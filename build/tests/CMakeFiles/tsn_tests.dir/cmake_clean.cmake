file(REMOVE_RECURSE
  "CMakeFiles/tsn_tests.dir/tsn/gcl_switch_test.cpp.o"
  "CMakeFiles/tsn_tests.dir/tsn/gcl_switch_test.cpp.o.d"
  "CMakeFiles/tsn_tests.dir/tsn/gcl_test.cpp.o"
  "CMakeFiles/tsn_tests.dir/tsn/gcl_test.cpp.o.d"
  "CMakeFiles/tsn_tests.dir/tsn/ptp_test.cpp.o"
  "CMakeFiles/tsn_tests.dir/tsn/ptp_test.cpp.o.d"
  "CMakeFiles/tsn_tests.dir/tsn/schedule_test.cpp.o"
  "CMakeFiles/tsn_tests.dir/tsn/schedule_test.cpp.o.d"
  "tsn_tests"
  "tsn_tests.pdb"
  "tsn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
