file(REMOVE_RECURSE
  "CMakeFiles/sdn_tests.dir/sdn/pipeline_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/pipeline_test.cpp.o.d"
  "CMakeFiles/sdn_tests.dir/sdn/sdn_switch_test.cpp.o"
  "CMakeFiles/sdn_tests.dir/sdn/sdn_switch_test.cpp.o.d"
  "sdn_tests"
  "sdn_tests.pdb"
  "sdn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
