
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sdn/pipeline_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/pipeline_test.cpp.o.d"
  "/root/repo/tests/sdn/sdn_switch_test.cpp" "tests/CMakeFiles/sdn_tests.dir/sdn/sdn_switch_test.cpp.o" "gcc" "tests/CMakeFiles/sdn_tests.dir/sdn/sdn_switch_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdn/CMakeFiles/steelnet_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
