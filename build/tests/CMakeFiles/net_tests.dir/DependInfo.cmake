
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/frame_test.cpp" "tests/CMakeFiles/net_tests.dir/net/frame_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/frame_test.cpp.o.d"
  "/root/repo/tests/net/host_path_integration_test.cpp" "tests/CMakeFiles/net_tests.dir/net/host_path_integration_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/host_path_integration_test.cpp.o.d"
  "/root/repo/tests/net/network_test.cpp" "tests/CMakeFiles/net_tests.dir/net/network_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/network_test.cpp.o.d"
  "/root/repo/tests/net/switch_test.cpp" "tests/CMakeFiles/net_tests.dir/net/switch_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/switch_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/net_tests.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/net_tests.dir/net/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/steelnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/steelnet_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/steelnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
