# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/tsn_tests[1]_include.cmake")
include("/root/repo/build/tests/host_tests[1]_include.cmake")
include("/root/repo/build/tests/ebpf_tests[1]_include.cmake")
include("/root/repo/build/tests/tap_tests[1]_include.cmake")
include("/root/repo/build/tests/profinet_tests[1]_include.cmake")
include("/root/repo/build/tests/process_tests[1]_include.cmake")
include("/root/repo/build/tests/plc_tests[1]_include.cmake")
include("/root/repo/build/tests/sdn_tests[1]_include.cmake")
include("/root/repo/build/tests/instaplc_tests[1]_include.cmake")
include("/root/repo/build/tests/mlnet_tests[1]_include.cmake")
include("/root/repo/build/tests/textmine_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
