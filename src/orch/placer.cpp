#include "orch/placer.hpp"

namespace steelnet::orch {

const char* to_string(PlaceError e) {
  switch (e) {
    case PlaceError::kNone:
      return "ok";
    case PlaceError::kNoNodes:
      return "no compute nodes registered";
    case PlaceError::kAntiAffinityUnsatisfiable:
      return "anti-affinity unsatisfiable (capacity only in excluded rack)";
    case PlaceError::kInsufficientCapacity:
      return "insufficient capacity on every eligible node";
    case PlaceError::kNoEligibleNode:
      return "no alive, non-draining node";
  }
  return "?";
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBinPack:
      return "binpack";
    case PolicyKind::kLatencyAware:
      return "latency";
  }
  return "?";
}

std::unique_ptr<PlacementPolicy> make_policy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kBinPack:
      return std::make_unique<BinPackPolicy>();
    case PolicyKind::kLatencyAware:
      return std::make_unique<LatencyAwarePolicy>();
  }
  return std::make_unique<BinPackPolicy>();
}

double BinPackPolicy::score(const ComputeNodeState& node,
                            const PlacementRequest& req) const {
  if (node.spec.capacity_mcpu == 0) return 0.0;
  return static_cast<double>(node.used_mcpu + req.demand_mcpu) /
         node.spec.capacity_mcpu;
}

double LatencyAwarePolicy::score(const ComputeNodeState& node,
                                 const PlacementRequest& req) const {
  // In-rack nodes occupy the [2, 3) score band, cross-rack nodes [0, 1):
  // locality always dominates, load spreading (1 - utilization) ranks
  // within a band.
  const bool local = req.preferred_rack != kNoRack &&
                     node.spec.rack == req.preferred_rack;
  return (local ? 2.0 : 0.0) + (1.0 - node.utilization());
}

PlaceResult Placer::place(const std::vector<ComputeNodeState>& nodes,
                          const PlacementRequest& req) const {
  PlaceResult result;
  if (nodes.empty()) {
    result.error = PlaceError::kNoNodes;
    return result;
  }
  bool any_eligible = false;
  bool any_outside_excluded_rack = false;
  bool best_found = false;
  double best_score = 0.0;
  ComputeId best = 0;
  for (ComputeId i = 0; i < nodes.size(); ++i) {
    const ComputeNodeState& n = nodes[i];
    if (!n.placeable()) continue;
    any_eligible = true;
    if (req.exclude_rack != kNoRack && n.spec.rack == req.exclude_rack) {
      continue;
    }
    any_outside_excluded_rack = true;
    if (n.free_mcpu() < req.demand_mcpu) continue;
    const double s = policy_.score(n, req);
    if (!best_found || s > best_score) {
      best_found = true;
      best_score = s;
      best = i;  // strict '>' keeps ties on the lowest index
    }
  }
  if (best_found) {
    result.node = best;
    return result;
  }
  if (!any_eligible) {
    result.error = PlaceError::kNoEligibleNode;
  } else if (!any_outside_excluded_rack) {
    result.error = PlaceError::kAntiAffinityUnsatisfiable;
  } else {
    result.error = PlaceError::kInsufficientCapacity;
  }
  return result;
}

}  // namespace steelnet::orch
