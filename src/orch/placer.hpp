// steelnet::orch -- placement: which compute node runs a vPLC.
//
// The Placer separates *feasibility* from *preference*:
//   * feasibility (node alive, not draining, capacity >= demand, rack not
//     excluded by anti-affinity) is checked by the Placer itself, and the
//     reason the fleet could not be placed comes back as a typed error --
//     an oversubscribed fleet is an answer, never a crash;
//   * preference is a pluggable PlacementPolicy scoring every feasible
//     node through one shared interface. Ties break toward the lowest
//     node index, so placement is a pure function of (nodes, request,
//     policy) and placement traces replay byte-identically.
//
// Two policies ship (the tab_orch ablation):
//   * bin-packing  -- best-fit: prefer the fullest feasible node, which
//     consolidates the fleet onto few nodes and leaves big holes for
//     future placements (classic consolidation scheduler);
//   * latency-aware -- prefer nodes in the rack closest to the vPLC's
//     field devices (the request's preferred rack), and spread load
//     inside a rack; cross-rack placements pay a hop penalty. This is
//     the policy that keeps cycle-time slack and caps the activation
//     queue depth any single node sees during a failover storm.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "orch/compute.hpp"

namespace steelnet::orch {

struct PlacementRequest {
  VplcId vplc = 0;
  std::uint32_t demand_mcpu = 0;
  /// Rack of the vPLC's field devices (locality hint); kNoRack = none.
  std::uint32_t preferred_rack = kNoRack;
  /// Anti-affinity: never place in this rack (a secondary must not share
  /// the primary's failure domain); kNoRack = unconstrained.
  std::uint32_t exclude_rack = kNoRack;
};

/// Why a placement could not be made. Ordered by specificity: the Placer
/// reports the most informative error that explains the rejection.
enum class PlaceError : std::uint8_t {
  kNone = 0,
  /// No compute nodes registered at all.
  kNoNodes,
  /// Capacity exists only in the excluded rack: anti-affinity cannot be
  /// satisfied (e.g. a single-rack topology asking for rack-disjoint
  /// twins).
  kAntiAffinityUnsatisfiable,
  /// Every eligible node lacks free capacity for the demand.
  kInsufficientCapacity,
  /// All nodes are dead or draining.
  kNoEligibleNode,
};

[[nodiscard]] const char* to_string(PlaceError e);

/// Outcome of one placement attempt: a node index, or a typed error.
struct PlaceResult {
  std::optional<ComputeId> node;
  PlaceError error = PlaceError::kNone;

  [[nodiscard]] bool ok() const { return node.has_value(); }
};

/// Shared scoring interface of all placement policies. The Placer calls
/// score() only for feasible nodes; higher wins, ties break toward the
/// lower node index.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual double score(const ComputeNodeState& node,
                                     const PlacementRequest& req) const = 0;
};

/// Best-fit bin packing: score = post-placement utilization.
class BinPackPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "binpack"; }
  [[nodiscard]] double score(const ComputeNodeState& node,
                             const PlacementRequest& req) const override;
};

/// Rack locality first, then load spreading: in-rack nodes outrank any
/// cross-rack node; within a tier the least-utilized node wins.
class LatencyAwarePolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "latency"; }
  [[nodiscard]] double score(const ComputeNodeState& node,
                             const PlacementRequest& req) const override;
};

enum class PolicyKind : std::uint8_t { kBinPack, kLatencyAware };

[[nodiscard]] const char* to_string(PolicyKind k);
[[nodiscard]] std::unique_ptr<PlacementPolicy> make_policy(PolicyKind k);

/// Stateless placement driver: scans `nodes` in index order, filters by
/// feasibility, ranks by `policy`. Does NOT reserve capacity -- the
/// caller (FleetManager) commits the reservation so rejected candidates
/// leave no trace.
class Placer {
 public:
  explicit Placer(const PlacementPolicy& policy) : policy_(policy) {}

  [[nodiscard]] PlaceResult place(
      const std::vector<ComputeNodeState>& nodes,
      const PlacementRequest& req) const;

 private:
  const PlacementPolicy& policy_;
};

}  // namespace steelnet::orch
