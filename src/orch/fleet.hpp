// steelnet::orch -- the FleetManager: fleet-scale vPLC orchestration.
//
// One manager keeps thousands of vPLCs alive across racks of compute
// nodes:
//
//   * every vPLC gets a PRIMARY placement plus a warm InstaPLC twin
//     (SECONDARY) with rack anti-affinity -- the pair never shares a
//     failure domain;
//   * every compute node runs a NodeAgent that heartbeats the manager
//     over the *simulated network* (real frames through real switches,
//     visible to the obs/flowmon planes); the manager's per-node watchdog
//     declares a node dead after `watchdog_heartbeats` silent periods,
//     exactly the InstaPLC monitor discipline, so switchover latency is
//     bounded by (watchdog_heartbeats + 1) x heartbeat_period;
//   * a declared-dead node triggers a failover for every primary it
//     hosted: the warm twin is activated on its node (activation slots
//     per node serialize a storm -- the queueing is the measured tail),
//     promoted to primary, and a fresh twin is re-placed elsewhere;
//   * faults::FaultPlane crash/stop/restart transitions arrive through
//     the plane's node-watcher API; the manager uses them only for agent
//     lifecycle and accounting -- *detection* always goes through the
//     heartbeat path, so measured latencies are honest;
//   * rolling upgrades drain nodes one by one (make-before-break
//     handover while the primary still runs), reboot them through the
//     fault plane with an epoch-guarded restart, and re-admit them when
//     their heartbeats resume.
//
// Every decision iterates vectors in index order and all randomness stays
// with the caller, so the placement trace, the SLO ledger and the obs
// export are byte-identical for identical histories.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "faults/fault_plane.hpp"
#include "net/host_node.hpp"
#include "orch/compute.hpp"
#include "orch/placer.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::orch {

/// What one vPLC needs from the fleet.
struct VplcSpec {
  sim::SimTime cycle = sim::milliseconds(2);  ///< control cycle (=> CPU)
  std::uint32_t preferred_rack = kNoRack;  ///< rack of its field devices
  /// Digital-twin state that must ship to warm a standby (use
  /// instaplc::TwinSnapshot::byte_size() of the twin being mirrored).
  std::uint32_t twin_state_bytes = 256;
};

struct FleetConfig {
  sim::SimTime heartbeat_period = sim::milliseconds(2);
  /// Silent heartbeat periods before a node is declared dead.
  std::uint16_t watchdog_heartbeats = 3;
  /// Time to activate one warm twin (config swap + takeover).
  sim::SimTime activation_cost = sim::microseconds(500);
  /// Concurrent activations one compute node can run; further ones queue.
  std::uint32_t activation_slots = 2;
  /// Base warm-sync time of a fresh twin, plus per-KiB shipping cost
  /// (charged per begun KiB: even a sub-KiB snapshot ships one unit).
  sim::SimTime twin_warmup_base = sim::milliseconds(20);
  sim::SimTime twin_sync_per_kib = sim::milliseconds(1);
  /// CPU a parked warm twin costs, as a fraction of the vPLC demand.
  double twin_idle_fraction = 0.25;
  /// CPU demand of a 1 kHz (1 ms cycle) vPLC, millicores.
  std::uint32_t mcpu_per_khz = 200;
  PolicyKind policy = PolicyKind::kLatencyAware;
};

/// The fleet ledger. Failover conservation:
///   failovers_started == switchovers + currently_down()
/// and every completed switchover is classified exactly once:
///   switchovers == switchovers_within_bound + slo_violations.
struct FleetCounters {
  std::uint64_t placements = 0;          ///< initial primary+twin placements
  std::uint64_t placement_failures = 0;  ///< typed rejections at runtime
  std::uint64_t migrations = 0;          ///< twin/primary moves after t=0
  std::uint64_t failovers_started = 0;   ///< primaries lost
  std::uint64_t switchovers = 0;         ///< failovers completed
  std::uint64_t switchovers_within_bound = 0;
  std::uint64_t slo_violations = 0;
  std::uint64_t violations_activation_queue = 0;  ///< warm, but queued late
  std::uint64_t violations_cold = 0;              ///< no warm twin left
  std::uint64_t cold_restarts = 0;
  std::uint64_t graceful_handovers = 0;  ///< drain promotions, zero gap
  std::uint64_t oversubscribed_promotions = 0;
  std::uint64_t nodes_declared_dead = 0;
  std::uint64_t nodes_fenced = 0;
  std::uint64_t nodes_rejoined = 0;
  std::uint64_t upgrades_started = 0;
  std::uint64_t heartbeats_tx = 0;
  std::uint64_t heartbeats_rx = 0;
  std::uint64_t twins_warmed = 0;
  std::uint64_t activations_run = 0;
  std::uint64_t activation_queue_peak = 0;
  std::uint64_t downtime_ns_total = 0;  ///< summed vPLC control-loss time
};

/// 16-byte node heartbeat payload: node index, agent incarnation, seq.
struct Heartbeat {
  std::uint32_t node = 0;
  std::uint32_t incarnation = 0;
  std::uint64_t seq = 0;

  static constexpr std::size_t kBytes = 16;
  void encode(net::Frame& f) const;
  [[nodiscard]] static std::optional<Heartbeat> decode(const net::Frame& f);
};

/// Orchestrator view of one vPLC.
struct VplcState {
  VplcSpec spec;
  std::uint32_t demand_mcpu = 0;
  std::optional<ComputeId> primary;
  std::optional<ComputeId> secondary;
  bool twin_warm = false;
  /// Bumped on every twin placement or loss; a warm-up completion only
  /// counts if the generation it was scheduled under is still current,
  /// so a stale timer can never warm a later twin on the same node.
  std::uint64_t twin_generation = 0;
  /// An activation (failover, cold restart or handover) is in flight.
  bool activating = false;
  /// Set while the primary is gone: when control was lost (last heartbeat
  /// received from the failed node -- the observable basis, matching the
  /// InstaPLC watchdog measurement).
  std::optional<sim::SimTime> down_since;
  /// Rack the failed primary lived in (downtime attribution).
  std::uint32_t failed_rack = kNoRack;
};

struct RollingUpgradeOptions {
  sim::SimTime start = sim::milliseconds(500);
  /// Gap between successive node drains.
  sim::SimTime node_interval = sim::milliseconds(200);
  /// Drain grace: the node is force-rebooted this long after its drain
  /// begins, whether or not every vPLC has moved off (an aggressive
  /// schedule turns stragglers into real failovers -- accounted, never
  /// lost).
  sim::SimTime grace = sim::milliseconds(150);
  /// Reboot duration before the upgraded node rejoins.
  sim::SimTime reboot = sim::milliseconds(100);
};

class FleetManager {
 public:
  FleetManager(sim::Simulator& sim, FleetConfig cfg);
  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;
  ~FleetManager();

  // --- wiring (before start) ----------------------------------------------
  /// Registers a compute node backed by a simulated host. The host's
  /// frames carry the heartbeats; its net::NodeId is how fault-plane
  /// events map back to this node.
  ComputeId add_compute(net::HostNode& host, std::uint32_t rack,
                        std::uint32_t capacity_mcpu = 4000);
  /// The manager's own host: receives every heartbeat.
  void attach_manager(net::HostNode& mgr);
  /// Subscribes to the plane's node watcher (agent lifecycle, fencing,
  /// epoch-guarded upgrade reboots).
  void attach_faults(faults::FaultPlane& plane);

  /// Places primaries and rack-disjoint warm twins for every spec, in
  /// order. On failure returns the typed error and the vPLC it failed
  /// for; the fleet is then unusable (rebuild with more capacity).
  struct FleetError {
    PlaceError error = PlaceError::kNone;
    VplcId vplc = 0;
    bool primary = true;
  };
  [[nodiscard]] std::optional<FleetError> place_fleet(
      const std::vector<VplcSpec>& specs);

  /// Starts heartbeats (staggered per node) and arms the watchdogs.
  void start();

  /// Drains, reboots (through the fault plane, epoch-guarded) and
  /// re-admits every node, in index order. Requires attach_faults.
  void rolling_upgrade(const RollingUpgradeOptions& opts);

  // --- introspection -------------------------------------------------------
  [[nodiscard]] const FleetCounters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<ComputeNodeState>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const std::vector<VplcState>& vplcs() const { return vplcs_; }
  /// Completed-switchover latency samples (us), in completion order.
  [[nodiscard]] const sim::SampleSet& switchover_latency_us() const {
    return latency_us_;
  }
  /// Watchdog bound on detection + activation:
  /// (watchdog_heartbeats + 1) x heartbeat_period.
  [[nodiscard]] sim::SimTime watchdog_bound() const;
  /// Warm-sync time of a twin with `bytes` of snapshot state.
  [[nodiscard]] sim::SimTime twin_warmup(std::uint32_t bytes) const;

  /// Failover-conservation residual; 0 means every lost primary is either
  /// recovered (classified within-bound or violation) or still accounted
  /// as down.
  [[nodiscard]] std::int64_t ledger_residual() const;
  /// vPLCs currently without a running primary.
  [[nodiscard]] std::uint64_t currently_down() const { return down_now_; }
  /// vPLCs lacking a warm twin right now (unprotected).
  [[nodiscard]] std::uint64_t unprotected() const;
  /// Fraction of primaries placed in their preferred rack.
  [[nodiscard]] double rack_local_fraction() const;
  /// max/mean node utilization over alive nodes (1.0 = perfectly even).
  [[nodiscard]] double utilization_spread() const;
  /// Fleet availability over [0, now]: 1 - downtime / (vplcs x window).
  [[nodiscard]] double availability() const;
  /// Per-rack accumulated control-loss time.
  [[nodiscard]] const std::vector<std::uint64_t>& rack_downtime_ns() const {
    return rack_downtime_ns_;
  }
  [[nodiscard]] std::uint32_t rack_count() const;

  /// The placement trace: one CSV line per decision
  /// (`t_ns,vplc,role,node,cause`), appended in event order -- the
  /// byte-identical determinism artifact.
  [[nodiscard]] const std::string& placement_trace() const { return trace_; }

  /// Binds every fleet counter/gauge plus the switchover-latency
  /// histogram under `<label>/orch/...`, and per-rack downtime/death
  /// counters under `rack<r>/orch/...`. Call after add_compute and
  /// before traffic.
  void register_metrics(obs::ObsHub& hub, const std::string& label = "fleet");

  [[nodiscard]] const FleetConfig& config() const { return cfg_; }

 private:
  enum class ActKind : std::uint8_t {
    kFailover,  ///< warm-twin promotion after a declared death
    kCold,      ///< cold restart (no warm twin available)
    kHandover,  ///< drain-time make-before-break promotion
  };
  struct PendingActivation {
    VplcId vplc;
    ActKind kind;
    sim::SimTime extra;  ///< added to activation_cost (cold warm-sync)
  };
  /// Runtime companion of nodes_[i] (simulation wiring, not placement
  /// state).
  struct NodeRuntime {
    net::HostNode* host = nullptr;
    std::unique_ptr<sim::PeriodicTask> hb_task;
    std::uint32_t agent_incarnation = 0;
    std::uint64_t hb_seq = 0;
    sim::SimTime last_hb_rx;
    sim::EventHandle deadline;
    std::uint32_t busy_slots = 0;
    std::deque<PendingActivation> queue;
    /// Activations dispatched but not yet acked, in dispatch order. An
    /// entry leaves on completion; a node death clears it; a sub-watchdog
    /// crash+restart re-dispatches it (the crash killed the work).
    std::vector<PendingActivation> inflight;
  };

  void send_heartbeat(ComputeId idx);
  void start_agent(ComputeId idx, sim::SimTime first);
  void on_heartbeat(const Heartbeat& hb, sim::SimTime at);
  void arm_deadline(ComputeId idx, sim::SimTime at);
  void on_node_silent(ComputeId idx, std::uint64_t incarnation);
  void on_plane_event(const faults::NodeEvent& ev);
  void mark_node_down(ComputeId idx, sim::SimTime impact);
  void rejoin(ComputeId idx);

  void failover(VplcId v, sim::SimTime impact);
  void cold_restart(VplcId v);
  void protect(VplcId v);  ///< place + warm a fresh twin
  void schedule_twin_warmup(VplcId v, ComputeId node);
  /// Releases a still-placed twin (reservation + secondaries entry) and
  /// voids any in-flight warm-up for it.
  void lose_twin(VplcId v);
  void set_down(VplcId v, sim::SimTime impact, std::uint32_t rack);
  void enqueue_activation(ComputeId node, VplcId v, ActKind kind,
                          sim::SimTime extra);
  void start_activation(ComputeId node, const PendingActivation& act);
  void on_activation_done(ComputeId node, std::uint64_t incarnation,
                          PendingActivation act);
  void complete_switchover(VplcId v, ComputeId node, ActKind kind,
                           sim::SimTime extra);
  void retry_pending();

  void drain_node(ComputeId idx, const RollingUpgradeOptions& opts);
  void reboot_node(ComputeId idx, sim::SimTime reboot);

  [[nodiscard]] PlaceResult place(const PlacementRequest& req);
  void reserve(ComputeId node, std::uint32_t mcpu);
  void release(ComputeId node, std::uint32_t mcpu);
  [[nodiscard]] std::uint32_t twin_idle_mcpu(std::uint32_t demand) const;
  void record_trace(VplcId v, char role, ComputeId node, const char* cause);

  sim::Simulator& sim_;
  FleetConfig cfg_;
  std::unique_ptr<PlacementPolicy> policy_;
  Placer placer_;

  std::vector<ComputeNodeState> nodes_;
  std::vector<NodeRuntime> runtime_;
  std::vector<VplcState> vplcs_;
  std::unordered_map<net::NodeId, ComputeId> by_net_id_;
  net::HostNode* mgr_ = nullptr;
  faults::FaultPlane* plane_ = nullptr;
  bool started_ = false;

  /// vPLCs whose primary (or twin) could not be placed; retried in id
  /// order whenever capacity returns.
  std::vector<VplcId> pending_primary_;
  std::vector<VplcId> pending_twin_;

  FleetCounters counters_;
  std::uint64_t down_now_ = 0;
  sim::SampleSet latency_us_;
  std::vector<std::uint64_t> rack_downtime_ns_;
  std::vector<std::uint64_t> rack_deaths_;
  std::string trace_;
  sim::Histogram* latency_hist_ = nullptr;  ///< registry-owned, optional
};

}  // namespace steelnet::orch
