#include "orch/orch_runner.hpp"

#include <algorithm>
#include <cstring>

#include "faults/scenario_runner.hpp"  // fnv1a64
#include "net/switch_node.hpp"
#include "net/topology.hpp"
#include "obs/hub.hpp"
#include "sim/random.hpp"

namespace steelnet::orch {

namespace {

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 little-endian bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
}

void hash_double(std::uint64_t& h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  hash_u64(h, bits);
}

}  // namespace

const char* to_string(OrchScenario s) {
  switch (s) {
    case OrchScenario::kSteady:
      return "steady";
    case OrchScenario::kRollingUpgrade:
      return "rolling";
    case OrchScenario::kRollingAggressive:
      return "rolling-aggressive";
    case OrchScenario::kRackFailure:
      return "rack-failure";
  }
  return "?";
}

OrchConfig small_orch_config(std::uint64_t seed) {
  OrchConfig cfg;
  cfg.seed = seed;
  cfg.racks = 3;
  cfg.nodes_per_rack = 2;
  cfg.vplcs = 12;
  cfg.node_capacity_mcpu = 4000;
  cfg.horizon = sim::milliseconds(400);
  cfg.fail_at = sim::milliseconds(100);
  cfg.storm_nodes = 2;
  return cfg;
}

std::uint64_t OrchOutcome::fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;
  hash_u64(h, faults::fnv1a64(scenario));
  hash_u64(h, faults::fnv1a64(policy));
  hash_u64(h, seed);
  hash_u64(h, compute_nodes);
  hash_u64(h, racks);
  hash_u64(h, vplcs_placed);
  hash_u64(h, faults::fnv1a64(place_error));
  hash_u64(h, fleet.placements);
  hash_u64(h, fleet.placement_failures);
  hash_u64(h, fleet.migrations);
  hash_u64(h, fleet.failovers_started);
  hash_u64(h, fleet.switchovers);
  hash_u64(h, fleet.switchovers_within_bound);
  hash_u64(h, fleet.slo_violations);
  hash_u64(h, fleet.violations_activation_queue);
  hash_u64(h, fleet.violations_cold);
  hash_u64(h, fleet.cold_restarts);
  hash_u64(h, fleet.graceful_handovers);
  hash_u64(h, fleet.oversubscribed_promotions);
  hash_u64(h, fleet.nodes_declared_dead);
  hash_u64(h, fleet.nodes_fenced);
  hash_u64(h, fleet.nodes_rejoined);
  hash_u64(h, fleet.upgrades_started);
  hash_u64(h, fleet.heartbeats_tx);
  hash_u64(h, fleet.heartbeats_rx);
  hash_u64(h, fleet.twins_warmed);
  hash_u64(h, fleet.activations_run);
  hash_u64(h, fleet.activation_queue_peak);
  hash_u64(h, fleet.downtime_ns_total);
  hash_u64(h, static_cast<std::uint64_t>(ledger_residual));
  hash_u64(h, currently_down);
  hash_u64(h, unprotected);
  hash_double(h, availability);
  hash_double(h, rack_local_fraction);
  hash_double(h, utilization_spread);
  hash_u64(h, watchdog_bound_ns);
  hash_u64(h, latency_count);
  hash_double(h, latency_mean_us);
  hash_double(h, latency_p50_us);
  hash_double(h, latency_p99_us);
  hash_double(h, latency_max_us);
  hash_u64(h, frames_delivered);
  hash_u64(h, static_cast<std::uint64_t>(conservation_residual));
  hash_u64(h, trace_fp);
  hash_u64(h, metrics_fp);
  return h;
}

OrchOutcome OrchRunner::run(const OrchConfig& cfg) {
  OrchOutcome out;
  out.scenario = to_string(cfg.scenario);
  out.policy = to_string(cfg.policy);
  out.seed = cfg.seed;
  out.racks = cfg.racks;

  sim::Simulator sim;
  net::Network net(sim);
  faults::FaultPlane plane(net, cfg.seed);
  net.set_faults(&plane);

  FleetConfig fc = cfg.fleet;
  fc.policy = cfg.policy;
  FleetManager fleet(sim, fc);

  // --- leaf-spine topology: spine -> one ToR per rack -> compute hosts,
  //     manager on its own spine port. Heartbeats route to the manager
  //     via static FDB entries (the manager never transmits, so MAC
  //     learning alone would flood every heartbeat fleet-wide).
  const net::MacAddress mgr_mac = net::host_mac(0);
  net::SwitchConfig spine_cfg;
  spine_cfg.num_ports = cfg.racks + 1;
  auto& spine = net.add_node<net::SwitchNode>("spine", spine_cfg);
  spine.add_fdb_entry(mgr_mac, static_cast<net::PortId>(cfg.racks));

  std::vector<net::NodeId> host_ids;  // rack-major, the storm victim order
  host_ids.reserve(static_cast<std::size_t>(cfg.racks) * cfg.nodes_per_rack);
  for (std::uint32_t r = 0; r < cfg.racks; ++r) {
    net::SwitchConfig tor_cfg;
    tor_cfg.num_ports = cfg.nodes_per_rack + 1;
    auto& tor =
        net.add_node<net::SwitchNode>("tor" + std::to_string(r), tor_cfg);
    const auto uplink = static_cast<net::PortId>(cfg.nodes_per_rack);
    tor.add_fdb_entry(mgr_mac, uplink);
    net.connect(spine.id(), static_cast<net::PortId>(r), tor.id(), uplink);
    for (std::uint32_t j = 0; j < cfg.nodes_per_rack; ++j) {
      const auto idx = static_cast<std::uint32_t>(host_ids.size());
      auto& host = net.add_node<net::HostNode>(
          "node-r" + std::to_string(r) + "n" + std::to_string(j),
          net::host_mac(1 + idx));
      net.connect(tor.id(), static_cast<net::PortId>(j), host.id(), 0);
      host_ids.push_back(host.id());
      fleet.add_compute(host, r, cfg.node_capacity_mcpu);
    }
  }
  auto& mgr = net.add_node<net::HostNode>("fleet-mgr", mgr_mac);
  net.connect(spine.id(), static_cast<net::PortId>(cfg.racks), mgr.id(), 0);
  fleet.attach_manager(mgr);
  fleet.attach_faults(plane);
  out.compute_nodes = static_cast<std::uint32_t>(host_ids.size());

  // --- the fleet, drawn from named streams: same seed, same fleet.
  sim::Rng spec_rng = sim::Rng(cfg.seed).derive("orch/specs");
  std::vector<VplcSpec> specs;
  specs.reserve(cfg.vplcs);
  for (std::uint32_t v = 0; v < cfg.vplcs; ++v) {
    VplcSpec spec;
    const auto tier = spec_rng.uniform_int(0, 2);
    spec.cycle = sim::milliseconds(std::int64_t{1} << tier);  // 1/2/4 ms
    spec.preferred_rack = static_cast<std::uint32_t>(
        spec_rng.uniform_int(0, static_cast<std::int64_t>(cfg.racks) - 1));
    spec.twin_state_bytes =
        static_cast<std::uint32_t>(spec_rng.uniform_int(64, 4096));
    specs.push_back(spec);
  }
  if (const auto err = fleet.place_fleet(specs)) {
    out.place_error = std::string(err->primary ? "primary" : "twin") +
                      " vplc" + std::to_string(err->vplc) + ": " +
                      to_string(err->error);
    return out;
  }
  out.vplcs_placed = static_cast<std::uint32_t>(fleet.vplcs().size());

  std::optional<obs::ObsHub> hub;
  if (cfg.with_obs) {
    obs::TraceConfig tc;
    tc.trace_frames = false;  // heartbeats are bulk traffic; metrics only
    tc.track_deliveries = false;
    hub.emplace(tc);
    net.register_metrics(*hub);
    plane.register_metrics(*hub);
    fleet.register_metrics(*hub);
  }

  fleet.start();

  // --- scenario ------------------------------------------------------------
  switch (cfg.scenario) {
    case OrchScenario::kSteady:
      break;
    case OrchScenario::kRollingUpgrade: {
      RollingUpgradeOptions opts;
      opts.start = cfg.fail_at;
      opts.node_interval = sim::milliseconds(20);
      opts.grace = sim::milliseconds(10);
      opts.reboot = sim::milliseconds(5);
      fleet.rolling_upgrade(opts);
      break;
    }
    case OrchScenario::kRollingAggressive: {
      RollingUpgradeOptions opts;
      opts.start = cfg.fail_at;
      opts.node_interval = sim::milliseconds(10);
      opts.grace = sim::milliseconds(1);  // shorter than a twin warm-up
      opts.reboot = sim::milliseconds(5);
      fleet.rolling_upgrade(opts);
      break;
    }
    case OrchScenario::kRackFailure: {
      std::uint32_t victim_rack = cfg.victim_rack;
      if (victim_rack == kNoRack) {
        sim::Rng storm_rng = sim::Rng(cfg.seed).derive("orch/storm");
        victim_rack = static_cast<std::uint32_t>(storm_rng.uniform_int(
            0, static_cast<std::int64_t>(cfg.racks) - 1));
      }
      victim_rack = std::min(victim_rack, cfg.racks - 1);
      const std::uint32_t width =
          std::min(cfg.storm_nodes, cfg.nodes_per_rack);
      std::vector<net::NodeId> victims;
      victims.reserve(width);
      for (std::uint32_t j = 0; j < width; ++j) {
        victims.push_back(host_ids[static_cast<std::size_t>(victim_rack) *
                                       cfg.nodes_per_rack +
                                   j]);
      }
      sim.schedule_at(cfg.fail_at, [&plane, victims] {
        for (const net::NodeId id : victims) plane.crash_node(id);
      });
      break;
    }
  }

  sim.run_until(cfg.horizon);

  // --- collect -------------------------------------------------------------
  out.fleet = fleet.counters();
  out.ledger_residual = fleet.ledger_residual();
  out.currently_down = fleet.currently_down();
  out.unprotected = fleet.unprotected();
  out.availability = fleet.availability();
  out.rack_local_fraction = fleet.rack_local_fraction();
  out.utilization_spread = fleet.utilization_spread();
  out.watchdog_bound_ns =
      static_cast<std::uint64_t>(fleet.watchdog_bound().nanos());
  const sim::SampleSet& lat = fleet.switchover_latency_us();
  out.latency_count = lat.count();
  if (!lat.empty()) {
    out.latency_mean_us = lat.mean();
    out.latency_p50_us = lat.percentile(50.0);
    out.latency_p99_us = lat.percentile(99.0);
    out.latency_max_us = lat.max();
  }
  out.frames_delivered = net.counters().frames_delivered;
  out.conservation_residual = plane.conservation_residual();
  out.trace_fp = faults::fnv1a64(fleet.placement_trace());
  if (hub.has_value()) {
    const std::string prom = hub->metrics().to_prometheus();
    out.metrics_fp = faults::fnv1a64(prom);
    if (cfg.keep_exports) out.metrics_prom = prom;
  }
  if (cfg.keep_exports) out.trace_text = fleet.placement_trace();
  return out;
}

std::vector<core::SweepSlot<OrchOutcome>> OrchRunner::run_sweep(
    const std::vector<OrchConfig>& cfgs, std::size_t jobs) {
  return core::SweepRunner{jobs}.run(
      cfgs.size(), [&cfgs](std::size_t i) { return run(cfgs[i]); });
}

}  // namespace steelnet::orch
