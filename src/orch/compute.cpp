#include "orch/compute.hpp"

#include <algorithm>

namespace steelnet::orch {

std::uint32_t cpu_demand_mcpu(sim::SimTime cycle, std::uint32_t mcpu_per_khz) {
  if (cycle <= sim::SimTime::zero()) return mcpu_per_khz;
  const double cycles_per_ms = 1e6 / static_cast<double>(cycle.nanos());
  const auto demand =
      static_cast<std::uint32_t>(cycles_per_ms * mcpu_per_khz);
  return std::max(1u, demand);
}

void erase_vplc(std::vector<VplcId>& list, VplcId v) {
  const auto it = std::find(list.begin(), list.end(), v);
  if (it != list.end()) list.erase(it);
}

}  // namespace steelnet::orch
