// steelnet::orch -- the fleet-scale orchestration testbed and sweep
// harness.
//
// OrchRunner stands up a leaf-spine data center (one spine switch, one
// ToR switch per rack, `nodes_per_rack` compute hosts behind each ToR,
// the fleet manager host on its own spine port), places a vPLC fleet
// drawn from named RNG streams, and runs one orchestration scenario to a
// horizon:
//
//   * steady        -- no faults; heartbeats, warm twins, zero failovers;
//   * rolling       -- drain/reboot every node with a grace period longer
//                      than a handover, so the fleet upgrades with zero
//                      control gaps (graceful handovers only);
//   * rolling-aggressive -- grace shorter than a twin warm-up: stragglers
//                      are rebooted out from under their vPLCs, producing
//                      real, accounted failovers mid-upgrade;
//   * rack-failure  -- `storm_nodes` hosts of one rack crash at the same
//                      instant (correlated power/ToR failure); every
//                      hosted primary fails over in one mass switchover
//                      storm whose latency distribution vs the
//                      (watchdog_heartbeats + 1) x heartbeat_period bound
//                      is the experiment.
//
// Everything the invariant checks need comes back in an OrchOutcome:
// the SLO ledger (residual must be 0), the switchover latency
// distribution, the placement-trace and obs-export fingerprints (two
// runs of the same config must collide exactly), and run_sweep fans
// configurations across a core::SweepRunner pool with task-order
// results, so aggregates are independent of --jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep_runner.hpp"
#include "orch/fleet.hpp"

namespace steelnet::orch {

enum class OrchScenario : std::uint8_t {
  kSteady,
  kRollingUpgrade,
  kRollingAggressive,
  kRackFailure,
};

[[nodiscard]] const char* to_string(OrchScenario s);

struct OrchConfig {
  std::uint64_t seed = 1;
  OrchScenario scenario = OrchScenario::kSteady;
  PolicyKind policy = PolicyKind::kLatencyAware;

  // Topology / fleet shape.
  std::uint32_t racks = 8;
  std::uint32_t nodes_per_rack = 8;
  std::uint32_t vplcs = 1024;
  std::uint32_t node_capacity_mcpu = 8000;

  sim::SimTime horizon = sim::seconds(2);
  /// When the fault (storm / first drain) lands.
  sim::SimTime fail_at = sim::milliseconds(500);
  /// Rack-failure storm width: hosts of the victim rack crashed at
  /// fail_at (clamped to nodes_per_rack).
  std::uint32_t storm_nodes = 8;
  /// Rack the storm hits; kNoRack (default) draws it from the
  /// "orch/storm" stream. Pinning it makes policy ablations compare the
  /// same blast radius.
  std::uint32_t victim_rack = kNoRack;

  FleetConfig fleet;

  /// Attach an ObsHub and fingerprint the Prometheus export.
  bool with_obs = true;
  /// Keep full export/trace text in the outcome (byte-diff tests).
  bool keep_exports = false;
};

/// A small, fast configuration for unit tests: 3 racks x 2 nodes,
/// 12 vPLCs, 300 ms horizon.
[[nodiscard]] OrchConfig small_orch_config(std::uint64_t seed);

struct OrchOutcome {
  std::string scenario;
  std::string policy;
  std::uint64_t seed = 0;

  // Shape.
  std::uint32_t compute_nodes = 0;
  std::uint32_t racks = 0;
  std::uint32_t vplcs_placed = 0;
  /// Non-empty when initial placement failed (typed Placer error).
  std::string place_error;

  // Ledger + fleet behaviour.
  FleetCounters fleet;
  std::int64_t ledger_residual = 0;  ///< must be 0
  std::uint64_t currently_down = 0;
  std::uint64_t unprotected = 0;
  double availability = 1.0;
  double rack_local_fraction = 1.0;
  double utilization_spread = 1.0;

  // Switchover latency distribution (us) vs the watchdog bound.
  std::uint64_t watchdog_bound_ns = 0;
  std::uint64_t latency_count = 0;
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p99_us = 0.0;
  double latency_max_us = 0.0;

  // Network-plane sanity (heartbeats really crossed switches).
  std::uint64_t frames_delivered = 0;
  std::int64_t conservation_residual = 0;  ///< frame ledger; must be 0

  // Fingerprints (FNV-1a over exact bytes; 0 when not collected).
  std::uint64_t trace_fp = 0;    ///< placement trace
  std::uint64_t metrics_fp = 0;  ///< Prometheus export
  std::string trace_text;        ///< only with keep_exports
  std::string metrics_prom;      ///< only with keep_exports

  /// One hash over every determinism-relevant field above -- two runs of
  /// the same OrchConfig must collide exactly, at any --jobs.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

class OrchRunner {
 public:
  /// Builds a fresh testbed on this call's stack, runs `cfg` to its
  /// horizon. Reentrant: concurrent run() calls share nothing.
  [[nodiscard]] static OrchOutcome run(const OrchConfig& cfg);

  /// Runs every config through a core::SweepRunner pool (`jobs` as
  /// there; 1 = inline). Slots come back in config order.
  [[nodiscard]] static std::vector<core::SweepSlot<OrchOutcome>> run_sweep(
      const std::vector<OrchConfig>& cfgs, std::size_t jobs = 1);
};

}  // namespace steelnet::orch
