// steelnet::orch -- the compute-node model of the vPLC fleet layer.
//
// The paper moves PLCs into data centers; this module models what they
// land on: racks of compute nodes with a finite CPU budget. Load is
// accounted in millicores and derived from each vPLC's cycle time (a
// 1 ms-cycle controller costs twice the CPU of a 2 ms one -- the control
// loop runs twice as often), plus a fractional charge for every warm
// InstaPLC twin parked on the node.
//
// ComputeNodeState is plain data: the Placer scores it, the FleetManager
// mutates it, and everything iterates in node-index order so placement
// traces are byte-identical for a given seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::orch {

/// Fleet-level vPLC index (dense, assigned in spec order).
using VplcId = std::uint32_t;
/// Orchestrator-level compute-node index (dense, creation order). Maps to
/// a net::NodeId only when the fleet is wired onto a simulated network.
using ComputeId = std::uint32_t;

inline constexpr std::uint32_t kNoRack = 0xffffffffu;

/// Static description of one compute node.
struct ComputeNodeSpec {
  std::string name;
  std::uint32_t rack = 0;            ///< failure-domain label
  std::uint32_t capacity_mcpu = 4000;  ///< CPU budget, millicores
};

/// CPU demand of a vPLC with the given control cycle: a 1 ms cycle costs
/// `mcpu_per_khz` millicores, scaling inversely with the cycle time (and
/// clamping to 1 mcpu so even glacial controllers are accounted).
[[nodiscard]] std::uint32_t cpu_demand_mcpu(sim::SimTime cycle,
                                            std::uint32_t mcpu_per_khz = 200);

/// Mutable per-node accounting the Placer scores and the FleetManager
/// maintains.
struct ComputeNodeState {
  ComputeNodeSpec spec;
  std::uint32_t used_mcpu = 0;
  bool alive = true;
  /// Refuses new placements (rolling upgrade drains).
  bool draining = false;
  /// Orchestrator-visible incarnation; bumped on every declared death and
  /// rejoin so stale liveness verdicts never apply to a reborn node.
  std::uint64_t incarnation = 0;

  /// vPLC primaries / warm secondaries hosted here, in placement order
  /// (the deterministic iteration order for storms and drains).
  std::vector<VplcId> primaries;
  std::vector<VplcId> secondaries;

  [[nodiscard]] std::uint32_t free_mcpu() const {
    return spec.capacity_mcpu > used_mcpu ? spec.capacity_mcpu - used_mcpu
                                          : 0;
  }
  [[nodiscard]] double utilization() const {
    return spec.capacity_mcpu == 0
               ? 1.0
               : static_cast<double>(used_mcpu) / spec.capacity_mcpu;
  }
  /// Eligible to receive new placements.
  [[nodiscard]] bool placeable() const { return alive && !draining; }
};

/// Removes the first occurrence of `v` from `list` (placement lists are
/// short and order-preserving removal keeps iteration deterministic).
void erase_vplc(std::vector<VplcId>& list, VplcId v);

}  // namespace steelnet::orch
