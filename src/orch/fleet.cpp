#include "orch/fleet.hpp"

#include <algorithm>

#include "net/frame.hpp"
#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::orch {

// --- Heartbeat wire format ---------------------------------------------------

void Heartbeat::encode(net::Frame& f) const {
  f.write_u32(0, node);
  f.write_u32(4, incarnation);
  f.write_u64(8, seq);
}

std::optional<Heartbeat> Heartbeat::decode(const net::Frame& f) {
  if (f.payload.size() < kBytes) return std::nullopt;
  Heartbeat hb;
  hb.node = f.read_u32(0);
  hb.incarnation = f.read_u32(4);
  hb.seq = f.read_u64(8);
  return hb;
}

// --- construction / wiring ---------------------------------------------------

FleetManager::FleetManager(sim::Simulator& sim, FleetConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      policy_(make_policy(cfg.policy)),
      placer_(*policy_),
      trace_("t_ns,vplc,role,node,cause\n") {}

FleetManager::~FleetManager() = default;

ComputeId FleetManager::add_compute(net::HostNode& host, std::uint32_t rack,
                                    std::uint32_t capacity_mcpu) {
  const auto idx = static_cast<ComputeId>(nodes_.size());
  ComputeNodeState n;
  n.spec.name = host.name();
  n.spec.rack = rack;
  n.spec.capacity_mcpu = capacity_mcpu;
  nodes_.push_back(std::move(n));
  runtime_.emplace_back();
  runtime_.back().host = &host;
  by_net_id_[host.id()] = idx;
  if (rack != kNoRack && rack >= rack_downtime_ns_.size()) {
    rack_downtime_ns_.resize(rack + 1, 0);
    rack_deaths_.resize(rack + 1, 0);
  }
  return idx;
}

void FleetManager::attach_manager(net::HostNode& mgr) {
  mgr_ = &mgr;
  mgr.set_receiver([this](net::Frame f, sim::SimTime at) {
    if (const auto hb = Heartbeat::decode(f)) on_heartbeat(*hb, at);
  });
}

void FleetManager::attach_faults(faults::FaultPlane& plane) {
  plane_ = &plane;
  plane.add_node_watcher(
      [this](const faults::NodeEvent& ev) { on_plane_event(ev); });
}

// --- placement ---------------------------------------------------------------

PlaceResult FleetManager::place(const PlacementRequest& req) {
  return placer_.place(nodes_, req);
}

void FleetManager::reserve(ComputeId node, std::uint32_t mcpu) {
  nodes_[node].used_mcpu += mcpu;
}

void FleetManager::release(ComputeId node, std::uint32_t mcpu) {
  auto& used = nodes_[node].used_mcpu;
  used = used > mcpu ? used - mcpu : 0;
}

std::uint32_t FleetManager::twin_idle_mcpu(std::uint32_t demand) const {
  const auto idle =
      static_cast<std::uint32_t>(demand * cfg_.twin_idle_fraction);
  return std::max(1u, idle);
}

void FleetManager::record_trace(VplcId v, char role, ComputeId node,
                                const char* cause) {
  trace_ += std::to_string(sim_.now().nanos());
  trace_ += ',';
  trace_ += std::to_string(v);
  trace_ += ',';
  trace_ += role;
  trace_ += ',';
  trace_ += nodes_[node].spec.name;
  trace_ += ',';
  trace_ += cause;
  trace_ += '\n';
}

std::optional<FleetManager::FleetError> FleetManager::place_fleet(
    const std::vector<VplcSpec>& specs) {
  vplcs_.reserve(vplcs_.size() + specs.size());
  for (const VplcSpec& spec : specs) {
    const auto v = static_cast<VplcId>(vplcs_.size());
    VplcState s;
    s.spec = spec;
    s.demand_mcpu = cpu_demand_mcpu(spec.cycle, cfg_.mcpu_per_khz);

    PlacementRequest preq;
    preq.vplc = v;
    preq.demand_mcpu = s.demand_mcpu;
    preq.preferred_rack = spec.preferred_rack;
    const PlaceResult pres = place(preq);
    if (!pres.ok()) return FleetError{pres.error, v, true};
    const ComputeId p = *pres.node;
    reserve(p, s.demand_mcpu);
    nodes_[p].primaries.push_back(v);
    s.primary = p;
    ++counters_.placements;

    PlacementRequest treq;
    treq.vplc = v;
    treq.demand_mcpu = twin_idle_mcpu(s.demand_mcpu);
    treq.preferred_rack = spec.preferred_rack;
    treq.exclude_rack = nodes_[p].spec.rack;
    const PlaceResult tres = place(treq);
    if (!tres.ok()) return FleetError{tres.error, v, false};
    const ComputeId t = *tres.node;
    reserve(t, treq.demand_mcpu);
    nodes_[t].secondaries.push_back(v);
    s.secondary = t;
    s.twin_warm = true;  // fleets start fully protected
    ++counters_.twins_warmed;
    ++counters_.placements;

    vplcs_.push_back(std::move(s));
    record_trace(v, 'P', p, "initial");
    record_trace(v, 'S', t, "initial");
  }
  return std::nullopt;
}

// --- heartbeats & watchdogs --------------------------------------------------

void FleetManager::start() {
  started_ = true;
  if (mgr_ == nullptr || runtime_.empty()) return;
  const auto n = static_cast<std::int64_t>(runtime_.size());
  for (ComputeId i = 0; i < runtime_.size(); ++i) {
    // Stagger first transmissions across one period so the fleet never
    // synchronizes its heartbeats into a burst.
    const sim::SimTime offset =
        sim::nanoseconds(cfg_.heartbeat_period.nanos() * i / n);
    runtime_[i].last_hb_rx = sim_.now();
    start_agent(i, offset);
    arm_deadline(i, sim_.now() + offset +
                        sim::nanoseconds(cfg_.heartbeat_period.nanos() *
                                         cfg_.watchdog_heartbeats));
  }
}

void FleetManager::start_agent(ComputeId idx, sim::SimTime first) {
  NodeRuntime& rt = runtime_[idx];
  rt.hb_task = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + first, cfg_.heartbeat_period,
      [this, idx] { send_heartbeat(idx); });
}

void FleetManager::send_heartbeat(ComputeId idx) {
  NodeRuntime& rt = runtime_[idx];
  if (plane_ != nullptr && !plane_->node_alive(rt.host->id())) return;
  ++rt.hb_seq;
  net::Frame f = rt.host->network().frame_pool().make(Heartbeat::kBytes);
  f.dst = mgr_->mac();
  f.src = rt.host->mac();
  f.pcp = 7;  // liveness shares the control-traffic priority class
  Heartbeat hb;
  hb.node = idx;
  hb.incarnation = rt.agent_incarnation;
  hb.seq = rt.hb_seq;
  hb.encode(f);
  rt.host->send(std::move(f));
  ++counters_.heartbeats_tx;
}

void FleetManager::on_heartbeat(const Heartbeat& hb, sim::SimTime at) {
  if (hb.node >= runtime_.size()) return;
  NodeRuntime& rt = runtime_[hb.node];
  if (hb.incarnation != rt.agent_incarnation) return;  // stale in-flight
  if (!nodes_[hb.node].alive) return;  // already declared dead (and fenced)
  ++counters_.heartbeats_rx;
  rt.last_hb_rx = at;
  arm_deadline(hb.node,
               at + sim::nanoseconds(cfg_.heartbeat_period.nanos() *
                                     cfg_.watchdog_heartbeats));
}

void FleetManager::arm_deadline(ComputeId idx, sim::SimTime at) {
  NodeRuntime& rt = runtime_[idx];
  rt.deadline.cancel();
  rt.deadline =
      sim_.schedule_at(at, [this, idx, inc = nodes_[idx].incarnation] {
        on_node_silent(idx, inc);
      });
}

void FleetManager::on_node_silent(ComputeId idx, std::uint64_t incarnation) {
  ComputeNodeState& n = nodes_[idx];
  if (!n.alive || n.incarnation != incarnation) return;
  ++counters_.nodes_declared_dead;
  // Control was last observably alive at the final heartbeat; every
  // switchover gap is measured from there, the same basis the InstaPLC
  // watchdog uses.
  mark_node_down(idx, runtime_[idx].last_hb_rx);
  // Fencing: a silent-but-running node (stopped process, partitioned NIC)
  // must not keep actuating after its vPLCs move -- kill it via the fault
  // plane (STONITH) before promoting twins elsewhere.
  const net::NodeId nid = runtime_[idx].host->id();
  if (plane_ != nullptr && plane_->node_alive(nid)) {
    ++counters_.nodes_fenced;
    plane_->crash_node(nid);
  }
}

void FleetManager::on_plane_event(const faults::NodeEvent& ev) {
  const auto it = by_net_id_.find(ev.node);
  if (it == by_net_id_.end()) return;
  const ComputeId idx = it->second;
  NodeRuntime& rt = runtime_[idx];
  switch (ev.kind) {
    case faults::NodeEvent::Kind::kCrash:
    case faults::NodeEvent::Kind::kStop:
      // The node agent dies with its node; *detection* still rides the
      // heartbeat path (the watchdog deadline), so measured switchover
      // latencies include the real detection delay. Controlled reboots
      // (rolling upgrade) are the exception: the orchestrator initiated
      // the crash, so it proceeds immediately.
      rt.hb_task.reset();
      break;
    case faults::NodeEvent::Kind::kRestart:
      rejoin(idx);
      break;
  }
}

// --- node death & recovery ---------------------------------------------------

void FleetManager::mark_node_down(ComputeId idx, sim::SimTime impact) {
  ComputeNodeState& n = nodes_[idx];
  if (!n.alive) return;
  n.alive = false;
  n.draining = false;
  ++n.incarnation;
  n.used_mcpu = 0;
  NodeRuntime& rt = runtime_[idx];
  rt.deadline.cancel();
  rt.hb_task.reset();
  rt.queue.clear();   // queued + in-flight activations die with the node;
  rt.inflight.clear();  // their vPLCs are re-dispatched below via the
  rt.busy_slots = 0;    // secondaries list
  if (n.spec.rack != kNoRack) ++rack_deaths_[n.spec.rack];

  const std::vector<VplcId> primaries = std::move(n.primaries);
  const std::vector<VplcId> secondaries = std::move(n.secondaries);
  n.primaries.clear();
  n.secondaries.clear();

  for (const VplcId v : primaries) {
    VplcState& s = vplcs_[v];
    s.primary.reset();
    set_down(v, impact, n.spec.rack);
    ++counters_.failovers_started;
    ++down_now_;
    if (s.activating) continue;  // mid-handover: the promotion in flight
                                 // completes and clears the gap
    failover(v, impact);
  }
  for (const VplcId v : secondaries) {
    VplcState& s = vplcs_[v];
    s.secondary.reset();
    s.twin_warm = false;
    if (s.activating) {
      // The activation was running (or queued) on the dead node.
      s.activating = false;
      if (s.down_since.has_value()) {
        cold_restart(v);  // failover target died too: rebuild from scratch
      } else if (s.primary.has_value()) {
        protect(v);  // handover target died; primary still runs
      }
    } else if (s.primary.has_value()) {
      protect(v);  // lost the warm twin only: restore redundancy
    }
  }
}

void FleetManager::rejoin(ComputeId idx) {
  ComputeNodeState& n = nodes_[idx];
  NodeRuntime& rt = runtime_[idx];
  if (!n.alive) {
    n.alive = true;
    n.draining = false;
    ++n.incarnation;
    ++counters_.nodes_rejoined;
  } else {
    // Crash + restart inside the watchdog window: the node was never
    // declared dead, but the crash still killed the agent and every
    // in-flight or queued activation. Bump the incarnation so their
    // stale completion (and warm-up) timers are void, then re-dispatch
    // the lost activations on the fresh agent -- twin placements and
    // reservations are unchanged, and the down-clock of any failing-over
    // vPLC keeps running, so the blip honestly lengthens its gap.
    n.draining = false;
    ++n.incarnation;
    rt.busy_slots = 0;
    std::vector<PendingActivation> lost = std::move(rt.inflight);
    rt.inflight.clear();
    lost.insert(lost.end(), rt.queue.begin(), rt.queue.end());
    rt.queue.clear();
    for (const PendingActivation& act : lost) {
      enqueue_activation(idx, act.vplc, act.kind, act.extra);
    }
    // Twins still warming here lost their half-shipped snapshot in the
    // crash; restart the sync from scratch. (Fully warm twins keep their
    // replicated state -- the same blip semantics that keep primaries.)
    for (const VplcId v : n.secondaries) {
      VplcState& s = vplcs_[v];
      if (s.secondary == idx && !s.twin_warm && !s.activating) {
        schedule_twin_warmup(v, idx);
      }
    }
  }
  ++rt.agent_incarnation;
  const auto cnt = static_cast<std::int64_t>(runtime_.size());
  const sim::SimTime offset =
      sim::nanoseconds(cfg_.heartbeat_period.nanos() * idx / cnt);
  rt.last_hb_rx = sim_.now();
  start_agent(idx, offset);
  arm_deadline(idx, sim_.now() + offset +
                        sim::nanoseconds(cfg_.heartbeat_period.nanos() *
                                         cfg_.watchdog_heartbeats));
  retry_pending();
}

// --- failover machinery ------------------------------------------------------

void FleetManager::set_down(VplcId v, sim::SimTime impact,
                            std::uint32_t rack) {
  VplcState& s = vplcs_[v];
  if (s.down_since.has_value()) return;
  s.down_since = impact;
  s.failed_rack = rack;
}

void FleetManager::failover(VplcId v, sim::SimTime impact) {
  (void)impact;
  VplcState& s = vplcs_[v];
  if (s.twin_warm && s.secondary.has_value() &&
      nodes_[*s.secondary].alive) {
    s.twin_warm = false;  // consumed by the promotion
    enqueue_activation(*s.secondary, v, ActKind::kFailover,
                       sim::SimTime::zero());
  } else {
    cold_restart(v);
  }
}

void FleetManager::lose_twin(VplcId v) {
  VplcState& s = vplcs_[v];
  ++s.twin_generation;  // voids any warm-up still in flight for this twin
  s.twin_warm = false;
  if (!s.secondary.has_value()) return;
  const ComputeId node = *s.secondary;
  s.secondary.reset();
  if (nodes_[node].alive) {
    release(node, twin_idle_mcpu(s.demand_mcpu));
    erase_vplc(nodes_[node].secondaries, v);
  }
}

void FleetManager::cold_restart(VplcId v) {
  VplcState& s = vplcs_[v];
  // A twin that is still placed but unusable (cold, mid-warm-up) is no
  // help to a cold restart; release it first or its idle reservation and
  // secondaries entry leak -- and a later death of that node would
  // re-dispatch this vPLC a second time.
  lose_twin(v);
  PlacementRequest req;
  req.vplc = v;
  req.demand_mcpu = s.demand_mcpu;  // full demand: it becomes the primary
  req.preferred_rack = s.spec.preferred_rack;
  const PlaceResult res = place(req);
  if (!res.ok()) {
    ++counters_.placement_failures;
    pending_primary_.push_back(v);
    return;
  }
  ++counters_.cold_restarts;
  const ComputeId node = *res.node;
  reserve(node, s.demand_mcpu);
  nodes_[node].secondaries.push_back(v);
  s.secondary = node;
  record_trace(v, 'C', node, "cold_restart");
  enqueue_activation(node, v, ActKind::kCold,
                     twin_warmup(s.spec.twin_state_bytes));
}

void FleetManager::protect(VplcId v) {
  VplcState& s = vplcs_[v];
  if (s.secondary.has_value() || !s.primary.has_value()) return;
  PlacementRequest req;
  req.vplc = v;
  req.demand_mcpu = twin_idle_mcpu(s.demand_mcpu);
  req.preferred_rack = s.spec.preferred_rack;
  req.exclude_rack = nodes_[*s.primary].spec.rack;
  const PlaceResult res = place(req);
  if (!res.ok()) {
    ++counters_.placement_failures;
    pending_twin_.push_back(v);
    return;
  }
  const ComputeId node = *res.node;
  reserve(node, req.demand_mcpu);
  nodes_[node].secondaries.push_back(v);
  s.secondary = node;
  s.twin_warm = false;
  if (started_) ++counters_.migrations;
  record_trace(v, 'S', node, started_ ? "reprotect" : "initial");
  // The twin is usable only once its state snapshot has shipped and
  // replayed; until then the vPLC is unprotected.
  schedule_twin_warmup(v, node);
}

void FleetManager::schedule_twin_warmup(VplcId v, ComputeId node) {
  VplcState& s = vplcs_[v];
  // The generation pins the timer to THIS placement: if the twin is
  // consumed or lost and a later twin lands on the same (still-alive,
  // same-incarnation) node, the stale timer must not warm it early.
  const std::uint64_t gen = ++s.twin_generation;
  sim_.schedule_in(twin_warmup(s.spec.twin_state_bytes),
                   [this, v, node, gen, inc = nodes_[node].incarnation] {
                     if (!nodes_[node].alive ||
                         nodes_[node].incarnation != inc) {
                       return;
                     }
                     VplcState& sv = vplcs_[v];
                     if (sv.secondary == node && !sv.twin_warm &&
                         sv.twin_generation == gen) {
                       sv.twin_warm = true;
                       ++counters_.twins_warmed;
                     }
                   });
}

void FleetManager::enqueue_activation(ComputeId node, VplcId v, ActKind kind,
                                      sim::SimTime extra) {
  vplcs_[v].activating = true;
  NodeRuntime& rt = runtime_[node];
  const PendingActivation act{v, kind, extra};
  if (rt.busy_slots < cfg_.activation_slots) {
    start_activation(node, act);
    return;
  }
  rt.queue.push_back(act);
  counters_.activation_queue_peak =
      std::max<std::uint64_t>(counters_.activation_queue_peak,
                              rt.queue.size());
}

void FleetManager::start_activation(ComputeId node,
                                    const PendingActivation& act) {
  NodeRuntime& rt = runtime_[node];
  ++rt.busy_slots;
  rt.inflight.push_back(act);
  ++counters_.activations_run;
  sim_.schedule_in(cfg_.activation_cost + act.extra,
                   [this, node, inc = nodes_[node].incarnation, act] {
                     on_activation_done(node, inc, act);
                   });
}

void FleetManager::on_activation_done(ComputeId node,
                                      std::uint64_t incarnation,
                                      PendingActivation act) {
  ComputeNodeState& n = nodes_[node];
  if (!n.alive || n.incarnation != incarnation) return;  // died mid-flight
  NodeRuntime& rt = runtime_[node];
  // Completion is the target node's ack; a node the fault plane already
  // killed (but the watchdog has not yet declared) never acks. The vPLC
  // stays `activating` (and the activation stays in `inflight`) until the
  // node's declared death -- or a sub-watchdog restart -- re-dispatches it.
  if (plane_ != nullptr && !plane_->node_alive(rt.host->id())) return;
  if (rt.busy_slots > 0) --rt.busy_slots;
  for (auto it = rt.inflight.begin(); it != rt.inflight.end(); ++it) {
    if (it->vplc == act.vplc) {
      rt.inflight.erase(it);
      break;
    }
  }
  complete_switchover(act.vplc, node, act.kind, act.extra);
  while (rt.busy_slots < cfg_.activation_slots && !rt.queue.empty()) {
    const PendingActivation next = rt.queue.front();
    rt.queue.pop_front();
    start_activation(node, next);
  }
}

void FleetManager::complete_switchover(VplcId v, ComputeId node, ActKind kind,
                                       sim::SimTime extra) {
  (void)extra;
  VplcState& s = vplcs_[v];
  s.activating = false;

  // Make-before-break: the old primary (if still running) releases only
  // now that the replacement is live.
  if (s.primary.has_value()) {
    ComputeNodeState& old = nodes_[*s.primary];
    if (old.alive) {
      release(*s.primary, s.demand_mcpu);
      erase_vplc(old.primaries, v);
    }
  }

  ComputeNodeState& n = nodes_[node];
  erase_vplc(n.secondaries, v);
  n.primaries.push_back(v);
  s.primary = node;
  s.secondary.reset();
  if (kind != ActKind::kCold) {
    // The reservation was a parked twin's idle share; promotion charges
    // the full demand. During a storm this may transiently exceed the
    // node budget -- accounted, and relieved as protect() re-places.
    reserve(node, s.demand_mcpu - twin_idle_mcpu(s.demand_mcpu));
    if (n.used_mcpu > n.spec.capacity_mcpu) {
      ++counters_.oversubscribed_promotions;
    }
  }
  record_trace(v, 'P', node,
               kind == ActKind::kHandover && !s.down_since.has_value()
                   ? "handover"
                   : (kind == ActKind::kCold ? "cold" : "failover"));

  if (s.down_since.has_value()) {
    const sim::SimTime gap = sim_.now() - *s.down_since;
    ++counters_.switchovers;
    if (down_now_ > 0) --down_now_;
    counters_.downtime_ns_total += static_cast<std::uint64_t>(gap.nanos());
    if (s.failed_rack != kNoRack && s.failed_rack < rack_downtime_ns_.size()) {
      rack_downtime_ns_[s.failed_rack] +=
          static_cast<std::uint64_t>(gap.nanos());
    }
    const double us = static_cast<double>(gap.nanos()) / 1e3;
    latency_us_.add(us);
    if (latency_hist_ != nullptr) latency_hist_->add(us);
    if (gap <= watchdog_bound()) {
      ++counters_.switchovers_within_bound;
    } else {
      ++counters_.slo_violations;
      if (kind == ActKind::kCold) {
        ++counters_.violations_cold;
      } else {
        ++counters_.violations_activation_queue;
      }
    }
    s.down_since.reset();
    s.failed_rack = kNoRack;
  } else if (kind == ActKind::kHandover) {
    ++counters_.graceful_handovers;
  }

  protect(v);
  retry_pending();
}

void FleetManager::retry_pending() {
  if (!pending_primary_.empty()) {
    std::vector<VplcId> prim = std::move(pending_primary_);
    pending_primary_.clear();
    for (const VplcId v : prim) {
      VplcState& s = vplcs_[v];
      if (s.down_since.has_value() && !s.activating) {
        cold_restart(v);  // failures re-enter pending_primary_
      }
    }
  }
  if (!pending_twin_.empty()) {
    std::vector<VplcId> twins = std::move(pending_twin_);
    pending_twin_.clear();
    for (const VplcId v : twins) {
      VplcState& s = vplcs_[v];
      if (s.primary.has_value() && !s.secondary.has_value()) protect(v);
    }
  }
}

// --- rolling upgrade ---------------------------------------------------------

void FleetManager::rolling_upgrade(const RollingUpgradeOptions& opts) {
  ++counters_.upgrades_started;
  for (ComputeId i = 0; i < nodes_.size(); ++i) {
    const sim::SimTime at =
        opts.start + sim::nanoseconds(opts.node_interval.nanos() * i);
    sim_.schedule_at(at, [this, i, opts] { drain_node(i, opts); });
  }
}

void FleetManager::drain_node(ComputeId idx, const RollingUpgradeOptions& opts) {
  ComputeNodeState& n = nodes_[idx];
  if (!n.alive) return;  // already dead; nothing to drain or upgrade
  n.draining = true;
  const std::vector<VplcId> primaries = n.primaries;  // handovers mutate it
  for (const VplcId v : primaries) {
    VplcState& s = vplcs_[v];
    if (s.activating) continue;
    if (s.twin_warm && s.secondary.has_value() &&
        nodes_[*s.secondary].alive) {
      ++counters_.migrations;
      s.twin_warm = false;
      enqueue_activation(*s.secondary, v, ActKind::kHandover,
                         sim::SimTime::zero());
    }
    // No warm twin: nothing graceful to do. The forced reboot below turns
    // this vPLC's move into a real, accounted failover.
  }
  sim_.schedule_in(opts.grace, [this, idx, reboot = opts.reboot,
                                inc = nodes_[idx].incarnation] {
    if (nodes_[idx].incarnation != inc) return;  // crashed organically first
    reboot_node(idx, reboot);
  });
}

void FleetManager::reboot_node(ComputeId idx, sim::SimTime reboot) {
  if (plane_ == nullptr) return;
  const net::NodeId nid = runtime_[idx].host->id();
  plane_->crash_node(nid);
  // A controlled reboot needs no watchdog detection: the orchestrator
  // initiated the crash, so vPLCs still on the node fail over immediately
  // (their downtime clock starts at the kill, honestly).
  mark_node_down(idx, sim_.now());
  const std::uint64_t epoch = plane_->incarnation(nid);
  sim_.schedule_in(reboot, [this, nid, epoch] {
    // Epoch-guarded: a permanent kill landing between drain and reboot
    // completion supersedes this restart -- the node stays dead.
    plane_->restart_node_if(nid, epoch);
  });
}

// --- introspection -----------------------------------------------------------

sim::SimTime FleetManager::watchdog_bound() const {
  return sim::nanoseconds(cfg_.heartbeat_period.nanos() *
                          (cfg_.watchdog_heartbeats + 1));
}

sim::SimTime FleetManager::twin_warmup(std::uint32_t bytes) const {
  // Per begun KiB, rounded up: a sub-KiB snapshot (the default 256 B)
  // still ships one real unit instead of a truncated fraction.
  const auto kib = static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(bytes) + 1023) / 1024);
  return sim::nanoseconds(cfg_.twin_warmup_base.nanos() +
                          cfg_.twin_sync_per_kib.nanos() * kib);
}

std::int64_t FleetManager::ledger_residual() const {
  return static_cast<std::int64_t>(counters_.failovers_started) -
         static_cast<std::int64_t>(counters_.switchovers) -
         static_cast<std::int64_t>(down_now_);
}

std::uint64_t FleetManager::unprotected() const {
  std::uint64_t n = 0;
  for (const VplcState& s : vplcs_) {
    if (s.down_since.has_value()) continue;  // counted as down, not exposed
    if (!s.secondary.has_value() || !s.twin_warm) ++n;
  }
  return n;
}

double FleetManager::rack_local_fraction() const {
  std::uint64_t eligible = 0;
  std::uint64_t local = 0;
  for (const VplcState& s : vplcs_) {
    if (!s.primary.has_value() || s.spec.preferred_rack == kNoRack) continue;
    ++eligible;
    if (nodes_[*s.primary].spec.rack == s.spec.preferred_rack) ++local;
  }
  return eligible == 0 ? 1.0
                       : static_cast<double>(local) /
                             static_cast<double>(eligible);
}

double FleetManager::utilization_spread() const {
  double sum = 0.0;
  double peak = 0.0;
  std::uint64_t n = 0;
  for (const ComputeNodeState& node : nodes_) {
    if (!node.alive || node.spec.capacity_mcpu == 0) continue;
    const double u = node.utilization();
    sum += u;
    peak = std::max(peak, u);
    ++n;
  }
  if (n == 0 || sum == 0.0) return 1.0;
  return peak / (sum / static_cast<double>(n));
}

double FleetManager::availability() const {
  if (vplcs_.empty() || sim_.now() <= sim::SimTime::zero()) return 1.0;
  double down_ns = static_cast<double>(counters_.downtime_ns_total);
  for (const VplcState& s : vplcs_) {
    if (s.down_since.has_value()) {
      down_ns += static_cast<double>((sim_.now() - *s.down_since).nanos());
    }
  }
  const double window = static_cast<double>(sim_.now().nanos()) *
                        static_cast<double>(vplcs_.size());
  return 1.0 - down_ns / window;
}

std::uint32_t FleetManager::rack_count() const {
  return static_cast<std::uint32_t>(rack_downtime_ns_.size());
}

// --- metrics -----------------------------------------------------------------

void FleetManager::register_metrics(obs::ObsHub& hub,
                                    const std::string& label) {
  obs::MetricsRegistry& m = hub.metrics();
  const auto bind = [&](const char* name, const std::uint64_t* value) {
    m.bind_counter({label, "orch", name}, value);
  };
  bind("placements", &counters_.placements);
  bind("placement_failures", &counters_.placement_failures);
  bind("migrations", &counters_.migrations);
  bind("failovers_started", &counters_.failovers_started);
  bind("switchovers", &counters_.switchovers);
  bind("switchovers_within_bound", &counters_.switchovers_within_bound);
  bind("slo_violations", &counters_.slo_violations);
  bind("violations_activation_queue",
       &counters_.violations_activation_queue);
  bind("violations_cold", &counters_.violations_cold);
  bind("cold_restarts", &counters_.cold_restarts);
  bind("graceful_handovers", &counters_.graceful_handovers);
  bind("oversubscribed_promotions", &counters_.oversubscribed_promotions);
  bind("nodes_declared_dead", &counters_.nodes_declared_dead);
  bind("nodes_fenced", &counters_.nodes_fenced);
  bind("nodes_rejoined", &counters_.nodes_rejoined);
  bind("upgrades_started", &counters_.upgrades_started);
  bind("heartbeats_tx", &counters_.heartbeats_tx);
  bind("heartbeats_rx", &counters_.heartbeats_rx);
  bind("twins_warmed", &counters_.twins_warmed);
  bind("activations_run", &counters_.activations_run);
  bind("activation_queue_peak", &counters_.activation_queue_peak);
  bind("downtime_ns_total", &counters_.downtime_ns_total);
  m.bind_gauge({label, "orch", "currently_down"},
               [this] { return static_cast<double>(down_now_); });
  m.bind_gauge({label, "orch", "unprotected"},
               [this] { return static_cast<double>(unprotected()); });
  m.bind_gauge({label, "orch", "availability"},
               [this] { return availability(); });
  m.bind_gauge({label, "orch", "rack_local_fraction"},
               [this] { return rack_local_fraction(); });
  latency_hist_ = &m.make_histogram({label, "orch", "switchover_latency_us"},
                                    0.0, 50'000.0, 200);
  // Per-rack availability surface. The vectors are sized by add_compute;
  // register after the fleet topology is final so the bound pointers
  // stay stable.
  for (std::size_t r = 0; r < rack_downtime_ns_.size(); ++r) {
    const std::string rack = "rack" + std::to_string(r);
    m.bind_counter({rack, "orch", "downtime_ns"}, &rack_downtime_ns_[r]);
    m.bind_counter({rack, "orch", "node_deaths"}, &rack_deaths_[r]);
  }
}

}  // namespace steelnet::orch
