// steelnet::obs -- deterministic sim-time span tracing.
//
// A span is a named [start, end] interval on a track (a node, a port
// queue, a link). Spans optionally carry a trace id -- the per-frame
// causality key stamped into net::Frame::trace_id when a host first sends
// a frame -- so one frame's journey decomposes into per-hop spans that
// tile its end-to-end latency exactly.
//
// Everything is keyed off sim::SimTime: identical seeds produce identical
// span streams, and recording a span never schedules events or draws
// randomness, so enabling tracing cannot perturb a simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::obs {

using TrackId = std::uint32_t;
constexpr TrackId kInvalidTrack = static_cast<TrackId>(-1);

/// The per-frame hop kinds instrumented through the stack.
enum class Hop : std::uint8_t {
  kHostTx,  ///< application send() -> NIC queue (host-path tx latency)
  kQueue,   ///< egress enqueue -> transmission start (queueing delay)
  kLink,    ///< first bit on the wire -> delivery at the peer
  kProc,    ///< switch ingress -> egress enqueue (lookup / pipeline)
  kXdp,     ///< NIC program entry -> verdict applied
  kHostRx,  ///< NIC -> application delivery (host-path rx latency)
};

[[nodiscard]] const char* to_string(Hop hop);

struct Span {
  TrackId track = kInvalidTrack;
  std::string name;
  std::uint64_t trace_id = 0;  ///< 0: not bound to a frame
  sim::SimTime start;
  sim::SimTime end;

  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

class SpanTracer {
 public:
  /// Interns `name` into a TrackId (stable for the tracer's lifetime).
  TrackId track(std::string_view name);
  [[nodiscard]] const std::string& track_name(TrackId id) const;
  [[nodiscard]] std::size_t track_count() const { return track_names_.size(); }

  // --- scoped spans: strictly LIFO per track ------------------------------
  // begin/end pairs nest like a call stack; end() closes the innermost open
  // span and enforces the span invariants: end >= start, and a parent may
  // not close before the latest end of its children (child-within-parent).
  void begin(TrackId track, std::string name, sim::SimTime at,
             std::uint64_t trace_id = 0);
  void end(TrackId track, sim::SimTime at);
  [[nodiscard]] std::size_t open_depth(TrackId track) const;

  /// Records a complete span (both endpoints known up front).
  void add(TrackId track, std::string name, sim::SimTime start,
           sim::SimTime end, std::uint64_t trace_id = 0);

  // --- frame hops ---------------------------------------------------------
  /// Complete hop span for trace `trace_id`.
  void hop(std::uint64_t trace_id, Hop hop, TrackId track, sim::SimTime start,
           sim::SimTime end);
  /// Open/close form for hops whose end is not known at entry (queueing).
  /// A close without a matching open is counted, not recorded.
  void hop_open(std::uint64_t trace_id, Hop hop, TrackId track,
                sim::SimTime at);
  void hop_close(std::uint64_t trace_id, Hop hop, TrackId track,
                 sim::SimTime at);
  /// Drops the open hop without recording a span (frame was discarded).
  void hop_abort(std::uint64_t trace_id, Hop hop, TrackId track);

  /// Deterministic frame trace ids, starting at 1.
  std::uint64_t next_trace_id() { return ++last_trace_id_; }
  [[nodiscard]] std::uint64_t trace_ids_issued() const {
    return last_trace_id_;
  }

  /// All spans in recording order (deterministic execution order).
  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  /// Spans of one frame, stably sorted by start time.
  [[nodiscard]] std::vector<Span> spans_for(std::uint64_t trace_id) const;
  /// hop_close calls that found no matching hop_open.
  [[nodiscard]] std::uint64_t unmatched_closes() const {
    return unmatched_closes_;
  }

  void clear();

 private:
  struct OpenSpan {
    Span span;
    sim::SimTime max_child_end;
  };
  using HopKey = std::tuple<std::uint64_t, std::uint8_t, TrackId>;

  std::vector<std::string> track_names_;
  std::unordered_map<std::string, TrackId> track_index_;
  std::vector<Span> spans_;
  std::map<TrackId, std::vector<OpenSpan>> open_;  ///< per-track stacks
  std::map<HopKey, sim::SimTime> open_hops_;
  std::uint64_t last_trace_id_ = 0;
  std::uint64_t unmatched_closes_ = 0;
};

}  // namespace steelnet::obs
