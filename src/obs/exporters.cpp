#include "obs/exporters.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace steelnet::obs {

namespace {

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Nanoseconds rendered as microseconds with fixed three decimals --
/// Chrome trace `ts`/`dur` are in µs; three decimals keep ns resolution.
std::string us(sim::SimTime t) {
  char buf[40];
  const std::int64_t ns = t.nanos();
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const SpanTracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer);
  return os.str();
}

void write_chrome_trace(std::ostream& os, const SpanTracer& tracer) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (TrackId t = 0; t < tracer.track_count(); ++t) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"" << json_escape(tracer.track_name(t))
       << "\"}}";
  }
  for (const Span& s : tracer.spans()) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"X\",\"cat\":\"frame\",\"name\":\"" << json_escape(s.name)
       << "\",\"pid\":1,\"tid\":" << s.track << ",\"ts\":" << us(s.start)
       << ",\"dur\":" << us(s.duration());
    if (s.trace_id != 0) {
      os << ",\"args\":{\"trace_id\":" << s.trace_id << "}";
    }
    os << "}";
  }
  os << "]}\n";
}

std::string spans_csv(const SpanTracer& tracer) {
  std::ostringstream os;
  os << "trace_id,track,name,start_ns,end_ns,duration_ns\n";
  for (const Span& s : tracer.spans()) {
    os << s.trace_id << ',' << tracer.track_name(s.track) << ',' << s.name
       << ',' << s.start.nanos() << ',' << s.end.nanos() << ','
       << s.duration().nanos() << '\n';
  }
  return os.str();
}

Snapshotter::Snapshotter(sim::Simulator& sim, const MetricsRegistry& registry,
                         sim::SimTime period)
    : sim_(sim),
      registry_(registry),
      task_(std::make_unique<sim::PeriodicTask>(sim, period, period,
                                                [this] { take(); })) {}

void Snapshotter::stop() {
  if (task_) task_->stop();
}

void Snapshotter::take() {
  ++taken_;
  const sim::SimTime now = sim_.now();
  for (const MetricSample& s : registry_.snapshot()) {
    series_.push_back({now, s.path, s.value});
  }
}

std::string Snapshotter::to_csv() const {
  std::ostringstream os;
  os << "time_ns,node,module,metric,value\n";
  for (const Row& r : series_) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", r.value);
    os << r.at.nanos() << ',' << r.path.node << ',' << r.path.module << ','
       << r.path.name << ',' << buf << '\n';
  }
  return os.str();
}

}  // namespace steelnet::obs
