#include "obs/span_tracer.hpp"

#include <algorithm>
#include <stdexcept>

namespace steelnet::obs {

const char* to_string(Hop hop) {
  switch (hop) {
    case Hop::kHostTx:
      return "host-tx";
    case Hop::kQueue:
      return "queue";
    case Hop::kLink:
      return "link";
    case Hop::kProc:
      return "proc";
    case Hop::kXdp:
      return "xdp";
    case Hop::kHostRx:
      return "host-rx";
  }
  return "?";
}

TrackId SpanTracer::track(std::string_view name) {
  const auto it = track_index_.find(std::string(name));
  if (it != track_index_.end()) return it->second;
  const auto id = static_cast<TrackId>(track_names_.size());
  track_names_.emplace_back(name);
  track_index_.emplace(track_names_.back(), id);
  return id;
}

const std::string& SpanTracer::track_name(TrackId id) const {
  return track_names_.at(id);
}

void SpanTracer::begin(TrackId track, std::string name, sim::SimTime at,
                       std::uint64_t trace_id) {
  if (track >= track_names_.size()) {
    throw std::invalid_argument("SpanTracer::begin: unknown track");
  }
  open_[track].push_back(
      {Span{track, std::move(name), trace_id, at, at}, sim::SimTime::zero()});
}

void SpanTracer::end(TrackId track, sim::SimTime at) {
  auto it = open_.find(track);
  if (it == open_.end() || it->second.empty()) {
    throw std::logic_error("SpanTracer::end: no open span on track \"" +
                           track_name(track) + "\"");
  }
  // Validate before mutating: a rejected close leaves the span open, so
  // the caller can retry with a later timestamp.
  const OpenSpan& top = it->second.back();
  if (at < top.span.start) {
    throw std::logic_error("SpanTracer::end: span \"" + top.span.name +
                           "\" would end before it starts");
  }
  if (at < top.max_child_end) {
    throw std::logic_error("SpanTracer::end: span \"" + top.span.name +
                           "\" would end before its children");
  }
  Span span = std::move(it->second.back().span);
  it->second.pop_back();
  span.end = at;
  if (!it->second.empty()) {
    auto& parent = it->second.back();
    parent.max_child_end = std::max(parent.max_child_end, at);
  }
  spans_.push_back(std::move(span));
}

std::size_t SpanTracer::open_depth(TrackId track) const {
  const auto it = open_.find(track);
  return it == open_.end() ? 0 : it->second.size();
}

void SpanTracer::add(TrackId track, std::string name, sim::SimTime start,
                     sim::SimTime end, std::uint64_t trace_id) {
  if (end < start) {
    throw std::logic_error("SpanTracer::add: span \"" + name +
                           "\" ends before it starts");
  }
  spans_.push_back(Span{track, std::move(name), trace_id, start, end});
}

void SpanTracer::hop(std::uint64_t trace_id, Hop hop, TrackId track,
                     sim::SimTime start, sim::SimTime end) {
  add(track, to_string(hop), start, end, trace_id);
}

void SpanTracer::hop_open(std::uint64_t trace_id, Hop hop, TrackId track,
                          sim::SimTime at) {
  open_hops_[{trace_id, static_cast<std::uint8_t>(hop), track}] = at;
}

void SpanTracer::hop_close(std::uint64_t trace_id, Hop hop, TrackId track,
                           sim::SimTime at) {
  const HopKey key{trace_id, static_cast<std::uint8_t>(hop), track};
  const auto it = open_hops_.find(key);
  if (it == open_hops_.end()) {
    ++unmatched_closes_;
    return;
  }
  const sim::SimTime start = it->second;
  open_hops_.erase(it);
  add(track, to_string(hop), start, at, trace_id);
}

void SpanTracer::hop_abort(std::uint64_t trace_id, Hop hop, TrackId track) {
  open_hops_.erase({trace_id, static_cast<std::uint8_t>(hop), track});
}

std::vector<Span> SpanTracer::spans_for(std::uint64_t trace_id) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) { return a.start < b.start; });
  return out;
}

void SpanTracer::clear() {
  spans_.clear();
  open_.clear();
  open_hops_.clear();
  unmatched_closes_ = 0;
}

}  // namespace steelnet::obs
