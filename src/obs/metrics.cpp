#include "obs/metrics.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace steelnet::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

double MetricsRegistry::Entry::value() const {
  if (bound_u64 != nullptr) return static_cast<double>(*bound_u64);
  if (bound_counter != nullptr) {
    return static_cast<double>(bound_counter->value());
  }
  if (read) return read();
  if (owned_counter) return static_cast<double>(owned_counter->value());
  if (owned_gauge) return owned_gauge->value();
  if (owned_hist) return static_cast<double>(owned_hist->count());
  return 0.0;
}

MetricsRegistry::Entry& MetricsRegistry::emplace(MetricPath path,
                                                 MetricKind kind) {
  if (path.node.empty() || path.module.empty() || path.name.empty()) {
    throw std::invalid_argument("MetricsRegistry: empty label segment in \"" +
                                path.full() + "\"");
  }
  auto [it, inserted] = entries_.try_emplace(path.full());
  if (!inserted) {
    throw std::invalid_argument("MetricsRegistry: duplicate metric \"" +
                                path.full() + "\"");
  }
  it->second.path = std::move(path);
  it->second.kind = kind;
  return it->second;
}

Counter& MetricsRegistry::make_counter(MetricPath path) {
  Entry& e = emplace(std::move(path), MetricKind::kCounter);
  e.owned_counter = std::make_unique<Counter>();
  return *e.owned_counter;
}

Gauge& MetricsRegistry::make_gauge(MetricPath path) {
  Entry& e = emplace(std::move(path), MetricKind::kGauge);
  e.owned_gauge = std::make_unique<Gauge>();
  return *e.owned_gauge;
}

sim::Histogram& MetricsRegistry::make_histogram(MetricPath path, double lo,
                                                double hi, std::size_t bins) {
  Entry& e = emplace(std::move(path), MetricKind::kHistogram);
  e.owned_hist = std::make_unique<sim::Histogram>(lo, hi, bins);
  return *e.owned_hist;
}

void MetricsRegistry::bind_counter(MetricPath path,
                                   const std::uint64_t* value) {
  if (value == nullptr) {
    throw std::invalid_argument("MetricsRegistry::bind_counter: null source");
  }
  emplace(std::move(path), MetricKind::kCounter).bound_u64 = value;
}

void MetricsRegistry::bind_counter(MetricPath path, const Counter* value) {
  if (value == nullptr) {
    throw std::invalid_argument("MetricsRegistry::bind_counter: null source");
  }
  emplace(std::move(path), MetricKind::kCounter).bound_counter = value;
}

void MetricsRegistry::bind_gauge(MetricPath path,
                                 std::function<double()> read) {
  if (!read) {
    throw std::invalid_argument("MetricsRegistry::bind_gauge: null reader");
  }
  emplace(std::move(path), MetricKind::kGauge).read = std::move(read);
}

bool MetricsRegistry::contains(const MetricPath& path) const {
  return entries_.contains(path.full());
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    (void)key;
    out.push_back({e.path, e.kind, e.value(), e.owned_hist.get()});
  }
  return out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
std::string prom_sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

/// Fixed-format double: integers print bare, the rest with 6 significant
/// digits -- locale-free and stable across platforms.
std::string num(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [key, e] : entries_) {
    (void)key;
    const std::string name =
        "steelnet_" + prom_sanitize(e.path.module) + "_" +
        prom_sanitize(e.path.name);
    const char* type = e.kind == MetricKind::kCounter ? "counter" : "gauge";
    if (e.kind == MetricKind::kHistogram) type = "histogram";
    os << "# TYPE " << name << ' ' << type << '\n';
    if (e.kind == MetricKind::kHistogram && e.owned_hist != nullptr) {
      const sim::Histogram& h = *e.owned_hist;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.bins(); ++i) {
        cum += h.bin_count(i);
        os << name << "_bucket{node=\"" << e.path.node << "\",le=\""
           << num(h.bin_hi(i)) << "\"} " << cum << '\n';
      }
      os << name << "_bucket{node=\"" << e.path.node << "\",le=\"+Inf\"} "
         << h.count() << '\n';
      os << name << "_count{node=\"" << e.path.node << "\"} " << h.count()
         << '\n';
      continue;
    }
    os << name << "{node=\"" << e.path.node << "\"} " << num(e.value())
       << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream os;
  os << "node,module,metric,kind,value\n";
  for (const auto& [key, e] : entries_) {
    (void)key;
    os << e.path.node << ',' << e.path.module << ',' << e.path.name << ','
       << to_string(e.kind) << ',' << num(e.value()) << '\n';
  }
  return os.str();
}

}  // namespace steelnet::obs
