// steelnet::obs -- the hub: one object that carries the whole observability
// plane for a run (metrics registry + span tracer + delivery ledger).
//
// Wiring: construct an ObsHub next to the Simulator/Network, call
// net::Network::set_obs(&hub), and the instrumented data path (host NIC,
// egress queues, links, switches, XDP hook) starts stamping trace ids into
// frames and recording per-hop spans. Without a hub attached every hook
// site is a single pointer-null branch -- the disabled-mode overhead is
// pinned below 2 ns/frame by bench/micro_benchmarks.
//
// The hub is an observer only: it never schedules events, never draws from
// an RNG, and never mutates frames beyond the trace_id metadata field, so
// golden traces are byte-identical with observability on or off.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sim/time.hpp"

namespace steelnet::obs {

struct TraceConfig {
  /// Record per-frame hop spans (and stamp trace ids into frames).
  bool trace_frames = true;
  /// Record end-to-end delivery records (needed for breakdown()).
  bool track_deliveries = true;
};

/// One frame's application-to-application journey.
struct Delivery {
  std::uint64_t trace_id = 0;
  TrackId at = kInvalidTrack;  ///< receiving host's track
  sim::SimTime created_at;     ///< sender application emitted the frame
  sim::SimTime delivered_at;   ///< receiver application saw it

  [[nodiscard]] sim::SimTime latency() const {
    return delivered_at - created_at;
  }
};

/// One row of a per-frame hop breakdown.
struct HopRow {
  std::string hop;    ///< hop kind ("queue", "link", ...)
  std::string track;  ///< where ("vplc1/p0", "link:instaplc-switch:p0", ...)
  sim::SimTime start;
  sim::SimTime end;

  [[nodiscard]] sim::SimTime duration() const { return end - start; }
};

class ObsHub {
 public:
  explicit ObsHub(TraceConfig cfg = {});

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] SpanTracer& tracer() { return tracer_; }
  [[nodiscard]] const SpanTracer& tracer() const { return tracer_; }
  [[nodiscard]] const TraceConfig& config() const { return cfg_; }

  [[nodiscard]] bool frames_enabled() const { return cfg_.trace_frames; }

  // --- frame hook surface (called by net/sdn with `obs != nullptr` as the
  //     only hot-path cost; all no-ops when trace_frames is off or the
  //     frame carries no trace id) ------------------------------------------
  /// New trace id for a frame entering the network at a host NIC.
  [[nodiscard]] std::uint64_t assign_trace_id();
  /// Interns a track (node name, "name/pN" queue, "link:name:pN" channel).
  TrackId track(std::string_view name) { return tracer_.track(name); }

  void host_tx(std::uint64_t trace, TrackId t, sim::SimTime start,
               sim::SimTime end);
  void queue_enter(std::uint64_t trace, TrackId t, sim::SimTime at);
  void queue_exit(std::uint64_t trace, TrackId t, sim::SimTime at);
  /// Frame dropped at a full queue: discard the open queue hop.
  void queue_drop(std::uint64_t trace, TrackId t);
  void link_transit(std::uint64_t trace, TrackId t, sim::SimTime depart,
                    sim::SimTime arrive);
  void proc(std::uint64_t trace, TrackId t, sim::SimTime start,
            sim::SimTime end);
  void xdp(std::uint64_t trace, TrackId t, sim::SimTime start,
           sim::SimTime end);
  void host_rx(std::uint64_t trace, TrackId t, sim::SimTime start,
               sim::SimTime end);
  void delivered(std::uint64_t trace, TrackId t, sim::SimTime created_at,
                 sim::SimTime at);
  /// Instant (zero-width) span marking an injected fault hitting the
  /// frame at `t` -- named "fault:<cause>", so breakdown() and the
  /// Perfetto export show exactly where a frame died or was mutated.
  void fault_event(std::uint64_t trace, TrackId t, sim::SimTime at,
                   const char* cause);

  // --- analysis ------------------------------------------------------------
  [[nodiscard]] const std::vector<Delivery>& deliveries() const {
    return deliveries_;
  }
  /// First delivery of `trace`, if any.
  [[nodiscard]] std::optional<Delivery> delivery_of(std::uint64_t trace) const;
  /// The frame's hop spans in path order. For a unicast frame the rows
  /// tile [created_at, delivered_at] exactly: sum(duration) == latency().
  [[nodiscard]] std::vector<HopRow> breakdown(std::uint64_t trace) const;

 private:
  TraceConfig cfg_;
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  std::vector<Delivery> deliveries_;
};

}  // namespace steelnet::obs
