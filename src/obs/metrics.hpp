// steelnet::obs -- the metrics registry: one named home for every counter,
// gauge and histogram in the stack.
//
// Metrics are identified by a hierarchical label path `node/module/metric`
// (e.g. "vplc1/host/frames_sent"): `node` is the network element the value
// belongs to, `module` the subsystem that produces it, `metric` the field.
// Paths are unique; registering the same path twice throws.
//
// Two ways onto the registry, both free on the hot path:
//   * bind_*  -- the value stays where it always lived (a module's counter
//     struct); the registry keeps a read-only pointer or closure and reads
//     it at snapshot time. Migration cost: zero. Hot-path cost: zero.
//   * make_*  -- the registry owns the value and hands back a stable
//     reference; new code increments that directly (one add, no lookup).
//
// Snapshots are taken in path order (a std::map walk), so identical runs
// produce byte-identical Prometheus/CSV dumps -- the registry is part of
// the determinism surface, never a perturbation of it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace steelnet::obs {

/// A monotonic 64-bit counter that can live inline in a module's counter
/// struct and still be exported by name. Converts implicitly to its value
/// so existing accessors (`counters().dropped_overflow == 3`) keep working
/// unchanged after a field migrates from plain uint64_t.
class Counter {
 public:
  constexpr Counter() = default;
  constexpr Counter(std::uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  Counter& operator++() {
    ++v_;
    return *this;
  }
  Counter& operator+=(std::uint64_t d) {
    v_ += d;
    return *this;
  }
  void inc(std::uint64_t d = 1) { v_ += d; }

  constexpr operator std::uint64_t() const { return v_; }  // NOLINT
  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// A settable instantaneous value.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricKind k);

/// Hierarchical label set of one metric.
struct MetricPath {
  std::string node;
  std::string module;
  std::string name;

  [[nodiscard]] std::string full() const {
    return node + "/" + module + "/" + name;
  }
};

/// One metric's value at snapshot time. `hist` is non-null only for
/// histograms (and points at registry-owned storage).
struct MetricSample {
  MetricPath path;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  const sim::Histogram* hist = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- registry-owned instruments (stable addresses for the caller) ---
  Counter& make_counter(MetricPath path);
  Gauge& make_gauge(MetricPath path);
  sim::Histogram& make_histogram(MetricPath path, double lo, double hi,
                                 std::size_t bins);

  // --- bound instruments: value stays with its owner, which must outlive
  //     the registry (or the registry must be dropped first; both are
  //     per-run objects in practice) ---
  void bind_counter(MetricPath path, const std::uint64_t* value);
  void bind_counter(MetricPath path, const Counter* value);
  /// A computed read-out, sampled at snapshot time.
  void bind_gauge(MetricPath path, std::function<double()> read);

  [[nodiscard]] bool contains(const MetricPath& path) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// All metrics in path order; deterministic for identical histories.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition: `steelnet_<module>_<name>{node="..."}`.
  [[nodiscard]] std::string to_prometheus() const;
  /// `node,module,metric,kind,value` lines (histograms export count/mean).
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Entry {
    MetricPath path;
    MetricKind kind;
    const std::uint64_t* bound_u64 = nullptr;
    const Counter* bound_counter = nullptr;
    std::function<double()> read;
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<sim::Histogram> owned_hist;

    [[nodiscard]] double value() const;
  };

  Entry& emplace(MetricPath path, MetricKind kind);

  std::map<std::string, Entry> entries_;  ///< keyed by full path
};

}  // namespace steelnet::obs
