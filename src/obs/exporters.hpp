// steelnet::obs -- exporters: Chrome-trace/Perfetto JSON, CSV span dumps,
// and a Simulator-driven periodic metrics snapshotter.
//
// All output is rendered from deterministic sim-time state with fixed
// formatting, so identical seeds produce byte-identical files.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/hub.hpp"
#include "sim/simulator.hpp"

namespace steelnet::obs {

/// Chrome trace-event JSON ("traceEvents" array of complete events plus
/// track-name metadata), loadable in Perfetto / chrome://tracing.
/// Timestamps are sim-time microseconds with nanosecond resolution
/// (ts/dur carry three decimals).
[[nodiscard]] std::string chrome_trace_json(const SpanTracer& tracer);
void write_chrome_trace(std::ostream& os, const SpanTracer& tracer);

/// `trace_id,track,name,start_ns,end_ns,duration_ns` lines.
[[nodiscard]] std::string spans_csv(const SpanTracer& tracer);

/// Samples every registry metric on a fixed sim-time period -- the
/// time-series companion to a single end-of-run dump. Rows accumulate in
/// memory; export with to_csv() (`time_ns,node,module,metric,value`).
class Snapshotter {
 public:
  /// Snapshots first at `period`, then every `period`, until stopped or
  /// the simulation ends.
  Snapshotter(sim::Simulator& sim, const MetricsRegistry& registry,
              sim::SimTime period);

  void stop();
  [[nodiscard]] std::size_t snapshots_taken() const { return taken_; }
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Row {
    sim::SimTime at;
    MetricPath path;
    double value;
  };

  void take();

  sim::Simulator& sim_;
  const MetricsRegistry& registry_;
  std::vector<Row> series_;
  std::size_t taken_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

}  // namespace steelnet::obs
