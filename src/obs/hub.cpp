#include "obs/hub.hpp"

namespace steelnet::obs {

ObsHub::ObsHub(TraceConfig cfg) : cfg_(cfg) {}

std::uint64_t ObsHub::assign_trace_id() {
  if (!cfg_.trace_frames) return 0;
  return tracer_.next_trace_id();
}

void ObsHub::host_tx(std::uint64_t trace, TrackId t, sim::SimTime start,
                     sim::SimTime end) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop(trace, Hop::kHostTx, t, start, end);
}

void ObsHub::queue_enter(std::uint64_t trace, TrackId t, sim::SimTime at) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop_open(trace, Hop::kQueue, t, at);
}

void ObsHub::queue_exit(std::uint64_t trace, TrackId t, sim::SimTime at) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop_close(trace, Hop::kQueue, t, at);
}

void ObsHub::queue_drop(std::uint64_t trace, TrackId t) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop_abort(trace, Hop::kQueue, t);
}

void ObsHub::link_transit(std::uint64_t trace, TrackId t, sim::SimTime depart,
                          sim::SimTime arrive) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop(trace, Hop::kLink, t, depart, arrive);
}

void ObsHub::proc(std::uint64_t trace, TrackId t, sim::SimTime start,
                  sim::SimTime end) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop(trace, Hop::kProc, t, start, end);
}

void ObsHub::xdp(std::uint64_t trace, TrackId t, sim::SimTime start,
                 sim::SimTime end) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop(trace, Hop::kXdp, t, start, end);
}

void ObsHub::host_rx(std::uint64_t trace, TrackId t, sim::SimTime start,
                     sim::SimTime end) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.hop(trace, Hop::kHostRx, t, start, end);
}

void ObsHub::fault_event(std::uint64_t trace, TrackId t, sim::SimTime at,
                         const char* cause) {
  if (!cfg_.trace_frames || trace == 0) return;
  tracer_.add(t, std::string("fault:") + cause, at, at, trace);
}

void ObsHub::delivered(std::uint64_t trace, TrackId t, sim::SimTime created_at,
                       sim::SimTime at) {
  if (!cfg_.track_deliveries || trace == 0) return;
  deliveries_.push_back(Delivery{trace, t, created_at, at});
}

std::optional<Delivery> ObsHub::delivery_of(std::uint64_t trace) const {
  for (const Delivery& d : deliveries_) {
    if (d.trace_id == trace) return d;
  }
  return std::nullopt;
}

std::vector<HopRow> ObsHub::breakdown(std::uint64_t trace) const {
  std::vector<HopRow> rows;
  for (const Span& s : tracer_.spans_for(trace)) {
    rows.push_back(
        {s.name, tracer_.track_name(s.track), s.start, s.end});
  }
  return rows;
}

}  // namespace steelnet::obs
