#include "net/radio_backend.hpp"

#include <algorithm>
#include <cmath>

namespace steelnet::net {

namespace {
constexpr double kMinPathDistance = 1.0;  ///< meters; the PL reference
}  // namespace

LossyRadioBackend::LossyRadioBackend(RadioConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.aps.empty()) {
    throw LinkError(LinkErrorCode::kBadRadioConfig,
                    "LossyRadioBackend: at least one access point required");
  }
  if (cfg_.rates.empty()) {
    throw LinkError(LinkErrorCode::kBadRadioConfig,
                    "LossyRadioBackend: empty rate ladder");
  }
  for (std::size_t i = 0; i < cfg_.rates.size(); ++i) {
    if (cfg_.rates[i].bits_per_second < kMinLinkBitRate) {
      throw LinkError(LinkErrorCode::kBadRadioConfig,
                      "LossyRadioBackend: rate rung " + std::to_string(i) +
                          " below kMinLinkBitRate");
    }
    if (i > 0 && cfg_.rates[i].min_snr_db <= cfg_.rates[i - 1].min_snr_db) {
      throw LinkError(LinkErrorCode::kBadRadioConfig,
                      "LossyRadioBackend: rate ladder min_snr_db must be "
                      "strictly ascending");
    }
  }
  if (cfg_.fading_sigma_db < 0.0 || cfg_.fer_slope_db <= 0.0 ||
      cfg_.path_loss_exponent <= 0.0) {
    throw LinkError(LinkErrorCode::kBadRadioConfig,
                    "LossyRadioBackend: negative fading sigma, non-positive "
                    "FER slope or path-loss exponent");
  }
  if (cfg_.scan_interval <= sim::SimTime::zero() ||
      cfg_.assoc_delay < sim::SimTime::zero() ||
      cfg_.handoff_dead_time < sim::SimTime::zero()) {
    throw LinkError(LinkErrorCode::kBadRadioConfig,
                    "LossyRadioBackend: scan_interval must be > 0 and "
                    "assoc/handoff delays >= 0");
  }
}

std::size_t LossyRadioBackend::add_station(
    std::string name, std::vector<RadioWaypoint> waypoints) {
  if (waypoints.empty()) {
    throw LinkError(LinkErrorCode::kBadRadioConfig,
                    "add_station '" + name + "': empty waypoint track");
  }
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    if (waypoints[i].at < waypoints[i - 1].at) {
      throw LinkError(LinkErrorCode::kBadRadioConfig,
                      "add_station '" + name + "': waypoints not time-sorted");
    }
  }
  Station s;
  s.name = std::move(name);
  s.waypoints = std::move(waypoints);
  const sim::Rng root(cfg_.seed);
  s.fade_rng = root.derive("radio/fade/" + s.name);
  s.loss_rng = root.derive("radio/loss/" + s.name);
  stations_.push_back(std::move(s));
  return stations_.size() - 1;
}

void LossyRadioBackend::bind_link(NodeId a, PortId port_a, NodeId b,
                                  PortId port_b, std::size_t station) {
  if (station >= stations_.size()) {
    throw LinkError(LinkErrorCode::kUnboundStation,
                    "bind_link: station id " + std::to_string(station) +
                        " out of range");
  }
  for (const std::uint64_t k : {link_key(a, port_a), link_key(b, port_b)}) {
    if (bindings_.contains(k)) {
      throw LinkError(LinkErrorCode::kDuplicateBinding,
                      "bind_link: direction already bound to a station");
    }
  }
  bindings_.emplace(link_key(a, port_a), station);
  bindings_.emplace(link_key(b, port_b), station);
}

void LossyRadioBackend::validate_link(NodeId node, PortId port,
                                      const LinkParams& params) {
  (void)params;
  if (!bindings_.contains(link_key(node, port))) {
    throw LinkError(LinkErrorCode::kUnboundStation,
                    "LossyRadioBackend: (" + std::to_string(node) + ", p" +
                        std::to_string(port) +
                        ") has no bound station -- call bind_link before "
                        "Network::connect");
  }
}

LossyRadioBackend::Station& LossyRadioBackend::station_of(NodeId node,
                                                          PortId port) {
  const auto it = bindings_.find(link_key(node, port));
  if (it == bindings_.end()) {
    throw LinkError(LinkErrorCode::kUnboundStation,
                    "LossyRadioBackend: unbound (" + std::to_string(node) +
                        ", p" + std::to_string(port) + ")");
  }
  return stations_[it->second];
}

void LossyRadioBackend::position_at(const Station& s, std::int64_t t_ns,
                                    double& x, double& y) {
  const auto& wp = s.waypoints;
  if (t_ns <= wp.front().at.nanos()) {
    x = wp.front().x;
    y = wp.front().y;
    return;
  }
  if (t_ns >= wp.back().at.nanos()) {
    x = wp.back().x;
    y = wp.back().y;
    return;
  }
  for (std::size_t i = 1; i < wp.size(); ++i) {
    if (t_ns > wp[i].at.nanos()) continue;
    const std::int64_t t0 = wp[i - 1].at.nanos();
    const std::int64_t t1 = wp[i].at.nanos();
    const double f = t1 == t0 ? 1.0
                              : static_cast<double>(t_ns - t0) /
                                    static_cast<double>(t1 - t0);
    x = wp[i - 1].x + f * (wp[i].x - wp[i - 1].x);
    y = wp[i - 1].y + f * (wp[i].y - wp[i - 1].y);
    return;
  }
  x = wp.back().x;
  y = wp.back().y;
}

double LossyRadioBackend::mean_snr_db(const Station& s, std::size_t ap,
                                      std::int64_t t_ns) const {
  double x = 0.0;
  double y = 0.0;
  position_at(s, t_ns, x, y);
  const RadioAp& a = cfg_.aps[ap];
  const double dx = x - a.x;
  const double dy = y - a.y;
  const double d = std::max(kMinPathDistance, std::sqrt(dx * dx + dy * dy));
  const double path_loss =
      cfg_.path_loss_ref_db + 10.0 * cfg_.path_loss_exponent * std::log10(d);
  return a.tx_power_dbm - path_loss - cfg_.noise_floor_dbm +
         cfg_.snr_offset_db;
}

void LossyRadioBackend::advance(Station& s, std::int64_t now_ns) {
  while (s.next_scan_ns <= now_ns) {
    const std::int64_t t = s.next_scan_ns;
    s.next_scan_ns += cfg_.scan_interval.nanos();
    // Beacon scan: fade-free mean SNR to every AP (ties break toward the
    // lower AP index, so the decision is a pure function of time).
    std::size_t best = 0;
    double best_snr = mean_snr_db(s, 0, t);
    for (std::size_t a = 1; a < cfg_.aps.size(); ++a) {
      const double snr = mean_snr_db(s, a, t);
      if (snr > best_snr) {
        best = a;
        best_snr = snr;
      }
    }
    if (s.assoc_ap < 0) {
      if (best_snr >= cfg_.assoc_min_snr_db) {
        // Discovery + association exchange: dead air until it completes.
        s.assoc_ap = static_cast<int>(best);
        s.air_ready_ns = t + cfg_.assoc_delay.nanos();
        ++s.assoc_events;
        ++counters_.assoc_events;
      }
      continue;
    }
    const double cur_snr =
        mean_snr_db(s, static_cast<std::size_t>(s.assoc_ap), t);
    if (cur_snr < cfg_.assoc_min_snr_db) {
      // Fell below the association floor: drop off the AP and rediscover
      // at a later scan.
      s.assoc_ap = -1;
      ++counters_.disassoc_events;
      continue;
    }
    if (static_cast<int>(best) != s.assoc_ap &&
        best_snr >= cur_snr + cfg_.roam_hysteresis_db) {
      // Roam: handoff dead time, then traffic resumes on the new AP.
      s.assoc_ap = static_cast<int>(best);
      s.air_ready_ns = t + cfg_.handoff_dead_time.nanos();
      ++s.roam_events;
      ++counters_.roam_events;
    }
  }
}

int LossyRadioBackend::rate_for(double snr_db) const {
  int best = -1;
  for (std::size_t i = 0; i < cfg_.rates.size(); ++i) {
    if (snr_db >= cfg_.rates[i].min_snr_db) best = static_cast<int>(i);
  }
  return best;
}

sim::SimTime LossyRadioBackend::serialize_estimate(NodeId node, PortId port,
                                                   const Frame& frame,
                                                   const LinkParams& params,
                                                   sim::SimTime now) {
  (void)params;
  Station& s = station_of(node, port);
  advance(s, now.nanos());
  // Fade-free estimate at the currently adapted mean-SNR rate; dead air
  // serializes at the bottom rung (most pessimistic occupancy).
  std::uint64_t bps = cfg_.rates.front().bits_per_second;
  if (s.assoc_ap >= 0 && now.nanos() >= s.air_ready_ns) {
    const int r = rate_for(
        mean_snr_db(s, static_cast<std::size_t>(s.assoc_ap), now.nanos()));
    if (r >= 0) bps = cfg_.rates[static_cast<std::size_t>(r)].bits_per_second;
  }
  return serialization_time(frame.occupancy_bytes(), bps);
}

LinkTxPlan LossyRadioBackend::plan_transmit(NodeId node, PortId port,
                                            const Frame& frame,
                                            const LinkParams& params,
                                            sim::SimTime now) {
  Station& s = station_of(node, port);
  advance(s, now.nanos());
  ++counters_.frames_planned;

  LinkTxPlan plan;
  plan.propagate = params.propagation;
  // Dead air still occupies the NIC: serialize at the bottom rung.
  plan.bits_per_second = cfg_.rates.front().bits_per_second;

  if (s.assoc_ap < 0) {
    plan.survives = false;
    plan.cause = "radio_no_assoc";
    ++counters_.dropped_no_assoc;
  } else if (now.nanos() < s.air_ready_ns) {
    plan.survives = false;
    plan.cause = "radio_handoff";
    ++counters_.dropped_handoff;
  } else {
    const double mean =
        mean_snr_db(s, static_cast<std::size_t>(s.assoc_ap), now.nanos());
    const double snr = mean + s.fade_rng.normal(0.0, cfg_.fading_sigma_db);
    const std::int64_t mdb = std::llround(snr * 1000.0);
    counters_.snr_millidb_total += mdb;
    counters_.snr_millidb_min = std::min(counters_.snr_millidb_min, mdb);
    counters_.snr_millidb_max = std::max(counters_.snr_millidb_max, mdb);
    const int r = rate_for(snr);
    if (r < 0) {
      // Faded below receiver sensitivity.
      plan.survives = false;
      plan.cause = "radio_snr";
      ++counters_.dropped_snr;
    } else {
      plan.bits_per_second =
          cfg_.rates[static_cast<std::size_t>(r)].bits_per_second;
      counters_.rate_bps_total += plan.bits_per_second;
      ++counters_.rate_frames;
      const double p_loss =
          1.0 / (1.0 + std::exp((snr - cfg_.fer_mid_snr_db) /
                                cfg_.fer_slope_db));
      if (s.loss_rng.bernoulli(p_loss)) {
        plan.survives = false;
        plan.cause = "radio_snr";
        ++counters_.dropped_snr;
      }
    }
  }
  plan.serialize =
      serialization_time(frame.occupancy_bytes(), plan.bits_per_second);
  return plan;
}

LossyRadioBackend::StationStatus LossyRadioBackend::station_status(
    std::size_t station) const {
  const Station& s = stations_.at(station);
  StationStatus st;
  st.associated = s.assoc_ap >= 0;
  st.ap = s.assoc_ap >= 0 ? static_cast<std::size_t>(s.assoc_ap) : 0;
  st.assoc_events = s.assoc_events;
  st.roam_events = s.roam_events;
  return st;
}

}  // namespace steelnet::net
