// steelnet::net -- an end host: NIC + optional XDP-style hook + optional
// host-path latency model + application callback.
#pragma once

#include <cstdint>
#include <functional>

#include "net/egress_queue.hpp"
#include "net/node.hpp"

namespace steelnet::net {

/// What a NIC-level packet program decided (mirrors XDP verdicts).
enum class NicAction : std::uint8_t {
  kPass,     ///< deliver up the host stack to the application
  kDrop,     ///< discard
  kTx,       ///< bounce back out of the receiving NIC (possibly rewritten)
  kAborted,  ///< program error; frame discarded and counted separately
};

/// A packet program attached at the NIC (implemented by steelnet::ebpf's
/// XDP hook). `cost_out` is the processing time the program consumed; the
/// resulting action takes effect only after that time has elapsed.
class NicProcessor {
 public:
  virtual ~NicProcessor() = default;
  virtual NicAction process(Frame& frame, sim::SimTime now,
                            sim::SimTime& cost_out) = 0;
};

/// Host-path latency (PCIe + kernel + scheduling); implemented by
/// steelnet::host. Samples are drawn per frame and may be stochastic.
class HostPathModel {
 public:
  virtual ~HostPathModel() = default;
  /// NIC -> application delivery latency for a frame of `bytes`.
  virtual sim::SimTime sample_rx(std::size_t bytes) = 0;
  /// Application send() -> wire latency for a frame of `bytes`.
  virtual sim::SimTime sample_tx(std::size_t bytes) = 0;
};

struct HostCounters {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t filtered = 0;  ///< dst MAC not ours (flooded traffic)
  std::uint64_t nic_pass = 0;
  std::uint64_t nic_drop = 0;
  std::uint64_t nic_tx = 0;
  std::uint64_t nic_aborted = 0;
};

/// A single-NIC end host (port 0).
class HostNode : public Node {
 public:
  /// Receives the frame and the time the application saw it.
  using Receiver = std::function<void(Frame, sim::SimTime)>;

  explicit HostNode(MacAddress mac);

  [[nodiscard]] MacAddress mac() const { return mac_; }

  /// Application-level send; stamps created_at, applies host tx latency,
  /// then queues at the NIC.
  void send(Frame frame);

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }
  /// Attaches/detaches a NIC packet program (XDP-style). Not owned.
  void set_nic_processor(NicProcessor* prog) { nic_prog_ = prog; }
  /// Attaches a host-path latency model. Not owned; nullptr = ideal host.
  void set_host_path(HostPathModel* model) { host_path_ = model; }

  void handle_frame(Frame frame, PortId in_port) override;
  void on_channel_idle(PortId port) override;

  [[nodiscard]] const HostCounters& counters() const { return counters_; }
  [[nodiscard]] const EgressCounters& nic_queue_counters() const {
    return egress_.counters();
  }

  /// Binds host + NIC-queue counters under `<name>/host/...`.
  void register_metrics(obs::ObsHub& hub);

  static constexpr PortId kNicPort = 0;

 private:
  void deliver_up(Frame frame);
  std::uint32_t obs_track(obs::ObsHub& hub);

  MacAddress mac_;
  std::uint32_t obs_track_ = static_cast<std::uint32_t>(-1);
  EgressQueue egress_;
  Receiver receiver_;
  NicProcessor* nic_prog_ = nullptr;
  HostPathModel* host_path_ = nullptr;
  HostCounters counters_;
};

}  // namespace steelnet::net
