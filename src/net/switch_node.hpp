// steelnet::net -- a store-and-forward Ethernet switch with 8 strict
// priority queues per port and optional MAC learning / TSN gating.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/egress_queue.hpp"
#include "net/node.hpp"

namespace steelnet::net {

struct SwitchConfig {
  std::size_t num_ports = 8;
  /// Fixed per-frame processing latency (lookup + crossbar).
  sim::SimTime processing_delay = sim::nanoseconds(600);
  /// Per-priority egress queue capacity (frames); 0 = unbounded.
  std::size_t queue_capacity = 1024;
  /// Learn source MACs from traffic; unknown unicast floods if true,
  /// otherwise unknown destinations are dropped.
  bool mac_learning = true;
};

struct SwitchCounters {
  std::uint64_t frames_in = 0;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t frames_flooded = 0;
  std::uint64_t frames_dropped_unknown = 0;
  /// Frames lost to full egress priority queues, summed over all ports
  /// (per-port breakdown: port_counters(p).dropped_overflow). Lives on
  /// the obs metrics plane; reads still convert to uint64_t implicitly.
  obs::Counter frames_dropped_overflow;
};

class SwitchNode : public Node {
 public:
  explicit SwitchNode(SwitchConfig cfg = {});

  void handle_frame(Frame frame, PortId in_port) override;
  void on_channel_idle(PortId port) override;
  void on_egress_drop(PortId port, const Frame& frame) override;

  /// Installs a static forwarding entry (used by Topology routing).
  void add_fdb_entry(MacAddress mac, PortId out_port);
  [[nodiscard]] std::optional<PortId> lookup(MacAddress mac) const;

  /// Installs a TSN gate controller on one egress port.
  void set_gate_controller(PortId port, const GateController* gates);

  [[nodiscard]] const SwitchCounters& counters() const { return counters_; }
  [[nodiscard]] const EgressCounters& port_counters(PortId port) const;
  [[nodiscard]] const SwitchConfig& config() const { return cfg_; }

  /// Binds switch + per-port egress counters under `<name>/switch/...`.
  /// Materializes the egress queue of every connected port so their
  /// counters exist before traffic flows (lazy creation is unchanged
  /// otherwise). Call after the node is attached and links connected.
  void register_metrics(obs::ObsHub& hub);

 private:
  EgressQueue& queue_for(PortId port);
  void forward(Frame frame, PortId out_port);

  SwitchConfig cfg_;
  std::map<std::uint64_t, PortId> fdb_;
  std::vector<std::unique_ptr<EgressQueue>> egress_;  // lazily sized
  std::uint32_t obs_track_ = static_cast<std::uint32_t>(-1);
  SwitchCounters counters_;
};

}  // namespace steelnet::net
