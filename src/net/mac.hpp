// steelnet::net -- MAC addresses and well-known ether types.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace steelnet::net {

/// A 48-bit MAC address stored in the low bits of a u64.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint64_t bits)
      : bits_(bits & 0xffff'ffff'ffffULL) {}

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return bits_ == 0xffff'ffff'ffffULL;
  }
  [[nodiscard]] constexpr bool is_multicast() const {
    return (bits_ >> 40) & 0x01;
  }

  static constexpr MacAddress broadcast() {
    return MacAddress{0xffff'ffff'ffffULL};
  }

  constexpr auto operator<=>(const MacAddress&) const = default;

  /// "aa:bb:cc:dd:ee:ff"
  [[nodiscard]] std::string to_string() const {
    char buf[18];
    std::uint64_t b = bits_;
    static const char* hex = "0123456789abcdef";
    for (int i = 5; i >= 0; --i) {
      const auto byte = static_cast<unsigned>(b & 0xff);
      buf[i * 3] = hex[byte >> 4];
      buf[i * 3 + 1] = hex[byte & 0xf];
      if (i != 5) buf[i * 3 + 2] = ':';
      b >>= 8;
    }
    buf[17] = '\0';
    return buf;
  }

 private:
  std::uint64_t bits_ = 0;
};

/// Ether types used inside steelnet. Values mirror real registrations
/// where one exists.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kVlan = 0x8100,
  kProfinetRt = 0x8892,  ///< PROFINET cyclic real-time
  kPtp = 0x88f7,         ///< IEEE 1588
  kExperimental = 0x88b5,
  kFlowmonExport = 0x88b6,  ///< flowmon IPFIX-style telemetry export
};

}  // namespace steelnet::net
