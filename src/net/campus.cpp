#include "net/campus.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <utility>

#include "faults/fault_plane.hpp"
#include "faults/scenario.hpp"
#include "faults/scenario_runner.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "profinet/controller.hpp"
#include "profinet/io_device.hpp"
#include "sim/random.hpp"

namespace steelnet::net {

namespace {

/// Everything one cell owns. Only its owning shard's worker thread ever
/// touches any of it, so no member needs synchronization.
struct CellPlant {
  explicit CellPlant(sim::Simulator& sim) : net(sim) {}

  Network net;
  Fabric fabric;
  std::vector<std::unique_ptr<profinet::CyclicController>> controllers;
  std::vector<std::unique_ptr<profinet::IoDevice>> devices;
  std::unique_ptr<faults::FaultPlane> plane;
  std::unique_ptr<sim::PeriodicTask> reporter;
  std::vector<std::uint32_t> report_dsts;

  // Sink-side accounting of inbound cross-cell reports.
  std::uint64_t reports_received = 0;
  std::uint64_t report_bytes = 0;
  std::int64_t report_latency_ns_total = 0;
  std::uint64_t reports_sent = 0;

  // Device safe-state windows: trip time -> outputs-running again.
  std::vector<std::int64_t> outage_started;  ///< per device, -1 = running
  std::uint64_t outages = 0;
  std::int64_t outage_ns_total = 0;
};

constexpr std::size_t kReportBytes = 32;
constexpr std::size_t kGwHost = 0;
constexpr std::size_t kSinkHost = 1;
constexpr std::size_t kFirstDeviceHost = 2;

std::string cell_name(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "cell_%03zu", i);
  return buf;
}

/// One deterministic per-cell fault script: the first controller's host
/// crashes mid-run and restarts, and the first device's link gets a lossy
/// window. All draws come from the cell's own derived stream, so the
/// script is a pure function of (campus seed, cell id).
faults::FaultScenario cell_scenario(sim::Rng& rng, const CampusOptions& opt,
                                    std::size_t devices) {
  faults::FaultScenario sc;
  sc.name = "campus-cell";
  sc.seed = rng.next_u64();
  const std::int64_t horizon = opt.horizon.nanos();
  const std::int64_t cycle = opt.cycle.nanos();

  faults::FaultSpec crash;
  crash.kind = faults::FaultKind::kNodeCrash;
  crash.node = "c-h" + std::to_string(kFirstDeviceHost + devices);
  crash.at = sim::SimTime{rng.uniform_int(horizon / 4, horizon / 2)};
  crash.duration = sim::SimTime{rng.uniform_int(5 * cycle, 15 * cycle)};
  sc.faults.push_back(crash);

  faults::FaultSpec loss;
  loss.kind = faults::FaultKind::kLoss;
  loss.node = "c-h" + std::to_string(kFirstDeviceHost);
  loss.port = HostNode::kNicPort;
  loss.at = sim::SimTime{rng.uniform_int(0, horizon / 4)};
  loss.duration = sim::SimTime{rng.uniform_int(10 * cycle, 20 * cycle)};
  loss.probability = 0.2;
  sc.faults.push_back(loss);
  return sc;
}

void build_cell(sim::ShardedSimulator::Cell& cell, CellPlant& plant,
                const CampusOptions& opt, sim::Rng cell_rng) {
  const std::size_t devices = opt.devices_per_cell;
  TopologyOptions topt;
  topt.name_prefix = "c";
  plant.fabric = build_star(plant.net, 2 + 2 * devices, topt);
  install_shortest_path_routes(plant.fabric);

  // Sink: terminates rebuilt cross-cell report frames, closes the pool
  // loop, samples origin-to-sink latency from the stamped send time.
  HostNode& sink = plant.fabric.host(kSinkHost);
  sink.set_receiver([&plant](Frame frame, sim::SimTime at) {
    ++plant.reports_received;
    plant.report_bytes += frame.payload.size();
    plant.report_latency_ns_total +=
        at.nanos() - static_cast<std::int64_t>(frame.read_u64(8));
    plant.net.frame_pool().recycle(std::move(frame));
  });

  // PROFINET plants: device d on host 2+d, its controller on host 2+D+d.
  sim::Rng connect_rng = cell_rng.derive("connect");
  plant.outage_started.assign(devices, -1);
  for (std::size_t d = 0; d < devices; ++d) {
    HostNode& dev_host = plant.fabric.host(kFirstDeviceHost + d);
    HostNode& ctl_host = plant.fabric.host(kFirstDeviceHost + devices + d);

    auto dev = std::make_unique<profinet::IoDevice>(dev_host);
    dev->set_output_handler(
        [&plant, &cell, d](const std::vector<std::uint8_t>&, bool run) {
          std::int64_t& started = plant.outage_started[d];
          const std::int64_t now = cell.sim().now().nanos();
          if (!run && started < 0) {
            started = now;
          } else if (run && started >= 0) {
            ++plant.outages;
            plant.outage_ns_total += now - started;
            started = -1;
          }
        });
    plant.devices.push_back(std::move(dev));

    profinet::ControllerConfig cfg;
    cfg.ar_id = static_cast<std::uint16_t>(d + 1);
    cfg.device_mac = dev_host.mac();
    cfg.cycle = opt.cycle;
    cfg.input_bytes = 16;
    cfg.output_bytes = 16;
    auto ctl = std::make_unique<profinet::CyclicController>(ctl_host,
                                                            std::move(cfg));
    profinet::CyclicController* ctl_raw = ctl.get();
    plant.controllers.push_back(std::move(ctl));

    // Stagger connection establishment inside the first cycle so the
    // cell's traffic is phase-shifted deterministically per device.
    const std::int64_t jitter =
        connect_rng.uniform_int(0, opt.cycle.nanos() - 1);
    cell.sim().schedule_at(sim::SimTime{jitter},
                           [ctl_raw] { ctl_raw->connect(); });
  }

  if (opt.faults) {
    plant.plane = std::make_unique<faults::FaultPlane>(
        plant.net, cell_rng.derive("faults").next_u64());
    plant.net.set_faults(plant.plane.get());
    for (std::size_t d = 0; d < devices; ++d) {
      const NodeId ctl_node =
          plant.fabric.hosts[kFirstDeviceHost + devices + d];
      profinet::CyclicController* ctl_raw = plant.controllers[d].get();
      plant.plane->set_crash_handler(ctl_node, [ctl_raw] { ctl_raw->stop(); });
      plant.plane->set_restart_handler(ctl_node,
                                       [ctl_raw] { ctl_raw->connect(); });
    }
    sim::Rng scen_rng = cell_rng.derive("scenario");
    plant.plane->schedule(cell_scenario(scen_rng, opt, devices));
  }

  // Periodic cross-cell telemetry: a 32-byte report to every backbone
  // neighbor. Cell::send stamps send_ns/seq, so the receiver's merge
  // order -- and everything downstream -- is shard-count independent.
  if (!plant.report_dsts.empty()) {
    const std::int64_t stagger =
        cell_rng.derive("report").uniform_int(0, opt.report_period.nanos() / 4);
    plant.reporter = std::make_unique<sim::PeriodicTask>(
        cell.sim(), opt.report_period + sim::SimTime{stagger},
        opt.report_period, [&plant, &cell] {
          sim::ShardMsg msg;
          msg.kind = kCampusReportMsg;
          std::uint64_t tx = 0;
          for (const auto& c : plant.controllers) tx += c->counters().cyclic_tx;
          msg.a = tx;
          msg.b = plant.reports_received;
          std::uint8_t payload[kReportBytes] = {};
          msg.set_data(payload, kReportBytes);
          for (const std::uint32_t dst : plant.report_dsts) {
            cell.send(dst, msg);
            ++plant.reports_sent;
          }
        });
  }
}

}  // namespace

CampusResult run_campus(const CampusOptions& opt) {
  if (opt.cells == 0) throw sim::SimError("run_campus: cells must be >= 1");
  sim::ShardedSimulator ss;
  ss.set_record_fire_log(opt.record_fire_log);
  // Declared weights stay uniform even under skew -- skew exists to make
  // the up-front guess wrong, so only a measured profile can fix it.
  for (std::size_t i = 0; i < opt.cells; ++i) {
    ss.add_cell(cell_name(i), opt.devices_per_cell);
  }
  const std::size_t hot_cells = opt.skew ? std::max<std::size_t>(1, opt.cells / 4) : 0;

  static const sim::LptPartitioner kMeasuredStrategy;
  if (opt.partitioner == CampusPartitioner::kMeasuredRate) {
    if (opt.measured_weights.empty()) {
      throw sim::PartitionError(
          sim::PartitionErrorCode::kProfileMismatch,
          "run_campus: measured-rate partitioner needs measured_weights "
          "(run a calibration pass and feed its profile back)");
    }
    ss.set_partitioner(&kMeasuredStrategy);
    ss.set_measured_weights(opt.measured_weights);
  }

  // Ring backbone with chords: cell i reports to (i+1 .. i+degree) mod n.
  std::vector<std::vector<std::uint32_t>> dsts(opt.cells);
  if (opt.cells > 1) {
    const std::size_t degree =
        std::min(opt.backbone_degree, opt.cells - 1);
    for (std::size_t i = 0; i < opt.cells; ++i) {
      for (std::size_t d = 1; d <= degree; ++d) {
        const auto dst = static_cast<std::uint32_t>((i + d) % opt.cells);
        ss.connect(static_cast<std::uint32_t>(i), dst, opt.backbone_latency);
        dsts[i].push_back(dst);
      }
    }
  }

  const sim::Rng root(opt.seed);
  std::vector<std::unique_ptr<CellPlant>> plants;
  plants.reserve(opt.cells);
  for (std::size_t i = 0; i < opt.cells; ++i) {
    sim::ShardedSimulator::Cell& cell = ss.cell(static_cast<std::uint32_t>(i));
    auto plant = std::make_unique<CellPlant>(cell.sim());
    plant->report_dsts = dsts[i];
    // Hot cells of the skew zone: 4x cyclic rate and a fault storm,
    // concentrated in the leading quarter so a contiguous equal-weight
    // split piles them onto the first shards.
    CampusOptions eff = opt;
    if (i < hot_cells) {
      eff.cycle = sim::SimTime{std::max<std::int64_t>(opt.cycle.nanos() / 4, 1)};
      eff.faults = true;
    }
    build_cell(cell, *plant, eff, root.derive(cell.name()));
    CellPlant* p = plant.get();
    // Inbound report: rebuild the frame from *this* cell's pool (the
    // allocation-free cross-shard handoff) and inject it at the gateway.
    cell.set_handler([p](sim::ShardedSimulator::Cell& c,
                         const sim::ShardMsg& msg) {
      if (msg.kind != kCampusReportMsg) return;
      Frame frame = p->net.frame_pool().make(msg.len);
      std::copy(msg.data, msg.data + msg.len, frame.payload.begin());
      HostNode& gw = p->fabric.host(kGwHost);
      HostNode& sink = p->fabric.host(kSinkHost);
      frame.dst = sink.mac();
      frame.src = gw.mac();
      frame.flow_id = msg.src_cell;
      frame.seq = msg.seq;
      frame.write_u64(0, msg.a);
      frame.write_u64(8, static_cast<std::uint64_t>(msg.send_ns));
      (void)c;
      gw.send(std::move(frame));
    });
    plants.push_back(std::move(plant));
  }

  CampusResult result;
  result.horizon_ns = opt.horizon.nanos();
  result.stats = ss.run(opt.horizon, opt.shards);

  // Placement diagnostics: judge whatever partition ran by the rates the
  // run actually measured. Diagnostic-only -- never rendered into the
  // fingerprinted artifacts, which must stay placement-invariant.
  result.partition = ss.partition_map();
  result.profile = ss.rate_profile();
  const sim::PartitionStats pstats =
      sim::partition_stats(result.profile.weights(), result.partition);
  result.shard_events = pstats.shard_load;
  result.imbalance_permille = pstats.imbalance_permille();

  result.cells.reserve(opt.cells);
  for (std::size_t i = 0; i < opt.cells; ++i) {
    sim::ShardedSimulator::Cell& cell = ss.cell(static_cast<std::uint32_t>(i));
    CellPlant& p = *plants[i];
    CellReport r;
    r.cell = static_cast<std::uint32_t>(i);
    r.name = cell.name();
    r.events_executed = cell.sim().events_executed();
    r.msgs_delivered = cell.msgs_delivered();
    for (const auto& c : p.controllers) {
      r.cyclic_tx += c->counters().cyclic_tx;
      r.cyclic_rx += c->counters().cyclic_rx;
      r.controller_trips += c->counters().device_watchdog_trips;
    }
    for (const auto& d : p.devices) {
      r.device_tx += d->counters().cyclic_tx;
      r.device_rx += d->counters().cyclic_rx;
      r.watchdog_trips += d->counters().watchdog_trips;
    }
    r.frames_offered = p.net.counters().frames_offered;
    r.frames_delivered = p.net.counters().frames_delivered;
    r.bytes_delivered = p.net.counters().bytes_delivered;
    r.pool_reused = p.net.frame_pool().stats().reused;
    r.reports_sent = p.reports_sent;
    r.reports_received = p.reports_received;
    r.report_bytes = p.report_bytes;
    r.report_latency_ns_total = p.report_latency_ns_total;
    if (p.plane) {
      const faults::FaultCounters& fc = p.plane->counters();
      r.node_crashes = fc.node_crashes;
      r.node_restarts = fc.node_restarts;
      r.dropped_loss = fc.dropped_loss;
      r.dropped_link_down = fc.dropped_link_down;
      r.dropped_sender_down = fc.dropped_sender_down;
      r.dropped_receiver_down = fc.dropped_receiver_down;
      r.conservation_residual = p.plane->conservation_residual();
    }
    r.outages = p.outages;
    r.outage_ns_total = p.outage_ns_total;
    result.cells.push_back(std::move(r));
  }
  return result;
}

// --- artifacts --------------------------------------------------------------
//
// All three renderers read CellReports only -- never ShardRunStats'
// timing-dependent fields -- so the byte streams are invariant to shard
// count and thread scheduling.

std::string CampusResult::to_prometheus() const {
  obs::MetricsRegistry reg;
  for (const CellReport& r : cells) {
    const auto add = [&](const char* name, std::uint64_t v) {
      reg.make_counter({r.name, "campus", name}) += v;
    };
    add("events_executed", r.events_executed);
    add("cyclic_tx", r.cyclic_tx);
    add("cyclic_rx", r.cyclic_rx);
    add("device_tx", r.device_tx);
    add("device_rx", r.device_rx);
    add("watchdog_trips", r.watchdog_trips);
    add("controller_trips", r.controller_trips);
    add("frames_offered", r.frames_offered);
    add("frames_delivered", r.frames_delivered);
    add("bytes_delivered", r.bytes_delivered);
    add("pool_reused", r.pool_reused);
    add("reports_sent", r.reports_sent);
    add("reports_received", r.reports_received);
    add("report_bytes", r.report_bytes);
    add("node_crashes", r.node_crashes);
    add("node_restarts", r.node_restarts);
    add("dropped_loss", r.dropped_loss);
    add("dropped_link_down", r.dropped_link_down);
    add("dropped_sender_down", r.dropped_sender_down);
    add("dropped_receiver_down", r.dropped_receiver_down);
    add("outages", r.outages);
    reg.make_counter({r.name, "campus", "report_latency_ns_total"}) +=
        static_cast<std::uint64_t>(r.report_latency_ns_total);
    reg.make_counter({r.name, "campus", "outage_ns_total"}) +=
        static_cast<std::uint64_t>(r.outage_ns_total);
    // The per-cell load-rate gauge: the same events + delivered-messages
    // sum a RateProfile row folds to, so a scrape of this family *is* a
    // calibration profile. Deterministic (both terms are part of the
    // determinism contract), hence safe inside the fingerprinted export.
    reg.make_gauge({r.name, "campus", "load_rate"})
        .set(static_cast<double>(r.events_executed + r.msgs_delivered));
  }
  return reg.to_prometheus();
}

std::string CampusResult::to_chrome_trace() const {
  // Hand-rendered trace-event JSON: one "X" span per cell over the run,
  // one "C" counter sample at the horizon. Integer-only formatting.
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"campus\"}}";
  char buf[512];
  const auto us = [](std::int64_t ns) { return ns / 1000; };
  const auto frac = [](std::int64_t ns) { return ns % 1000; };
  for (const CellReport& r : cells) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":0.000,\"dur\":%" PRId64 ".%03" PRId64
                  ",\"args\":{\"events\":%" PRIu64 "}}",
                  r.name.c_str(), r.cell, us(horizon_ns), frac(horizon_ns),
                  r.events_executed);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"cyclic\",\"ph\":\"C\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%" PRId64 ".%03" PRId64
                  ",\"args\":{\"tx\":%" PRIu64 ",\"rx\":%" PRIu64
                  ",\"reports\":%" PRIu64 "}}",
                  r.cell, us(horizon_ns), frac(horizon_ns), r.cyclic_tx,
                  r.cyclic_rx, r.reports_received);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string CampusResult::to_csv() const {
  std::string out =
      "cell,name,events,cyclic_tx,cyclic_rx,device_tx,device_rx,"
      "watchdog_trips,controller_trips,frames_offered,frames_delivered,"
      "bytes_delivered,pool_reused,reports_sent,reports_received,"
      "report_bytes,report_latency_ns_total,node_crashes,node_restarts,"
      "dropped_loss,dropped_link_down,dropped_sender_down,"
      "dropped_receiver_down,conservation_residual,outages,"
      "outage_ns_total\n";
  char buf[640];
  for (const CellReport& r : cells) {
    std::snprintf(
        buf, sizeof(buf),
        "%" PRIu32 ",%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRId64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRId64 ",%" PRIu64 ",%" PRId64 "\n",
        r.cell, r.name.c_str(), r.events_executed, r.cyclic_tx, r.cyclic_rx,
        r.device_tx, r.device_rx, r.watchdog_trips, r.controller_trips,
        r.frames_offered, r.frames_delivered, r.bytes_delivered,
        r.pool_reused, r.reports_sent, r.reports_received, r.report_bytes,
        r.report_latency_ns_total, r.node_crashes, r.node_restarts,
        r.dropped_loss, r.dropped_link_down, r.dropped_sender_down,
        r.dropped_receiver_down, r.conservation_residual, r.outages,
        r.outage_ns_total);
    out += buf;
  }
  return out;
}

std::uint64_t CampusResult::fingerprint() const {
  std::uint64_t h = faults::fnv1a64(to_csv());
  h ^= faults::fnv1a64(to_prometheus()) * 0x100000001b3ULL;
  h ^= faults::fnv1a64(to_chrome_trace()) * 0x100000001b3ULL;
  return h;
}

}  // namespace steelnet::net
