// steelnet::net -- the lossy-radio factory floor.
//
// The paper's wired results assume the device link is a deterministic
// wire; this workload asks what happens to the InstaPLC availability
// story when that link is a factory-floor radio segment instead. Every
// cell of one sim::ShardedSimulator run is a complete InstaPlcTestbed
// (faults/instaplc_testbed.hpp) whose device <-> switch link dispatches
// through its own LossyRadioBackend:
//
//   * an SNR ladder -- the fault matrix (clean + the four canonical PR 3
//     scenarios) crossed with descending snr_offset_db rungs, measuring
//     how the (switchover_cycles + 1) x io_cycle watchdog bound degrades
//     as the radio worsens;
//   * roaming storms -- a station oscillating between two access points,
//     each handoff opening a dead-air window over the device link.
//
// Cells share no channels (each testbed is self-contained), so every
// cell's lookahead is infinite and shards run them embarrassingly
// parallel -- yet all artifacts are rendered post-run from per-cell
// integer state only, so the byte streams are identical at any shard
// count (the same contract as net::run_campus).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/partitioner.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/time.hpp"

namespace steelnet::net {

struct RadioFloorOptions {
  sim::SimTime horizon = sim::seconds(3);
  std::uint64_t seed = 1;
  std::size_t shards = 1;
  /// Silent I/O cycles before the in-network monitor switches over.
  std::uint16_t switchover_cycles = 3;
  sim::SimTime io_cycle = sim::milliseconds(2);
  /// Placement strategy (same semantics as CampusOptions): prefix-quota
  /// over uniform declared weights, or LPT over `measured_weights`. The
  /// SNR ladder is naturally skewed -- dead rungs execute far fewer
  /// events than healthy ones -- so a calibration profile has real
  /// signal here. Artifacts are byte-identical under either choice.
  bool measured_partition = false;
  std::vector<std::uint64_t> measured_weights;
};

/// Deterministic per-cell outcome -- the only state artifacts are
/// rendered from. All-integer (SNR telemetry in millidB).
struct RadioCellReport {
  std::uint32_t cell = 0;
  std::string name;
  std::string scenario;  ///< fault-matrix row ("clean", "link_flap", ...)
  std::uint64_t seed = 0;
  std::int64_t snr_offset_millidb = 0;  ///< ladder rung (0 = healthy)
  std::uint64_t events_executed = 0;
  // InstaPLC behaviour.
  std::uint32_t switched_over = 0;
  std::int64_t switchover_latency_ns = 0;
  /// Worst device-output gap including the dead tail to the horizon;
  /// the full horizon when the device never produced an output.
  std::int64_t max_output_gap_ns = 0;
  std::uint64_t watchdog_trips = 0;
  // Ledger.
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t dropped_backend = 0;  ///< network-side radio-drop count
  std::int64_t residual = 0;          ///< conservation residual; must be 0
  // Radio channel.
  std::uint64_t radio_planned = 0;
  std::uint64_t radio_dropped_snr = 0;
  std::uint64_t radio_dropped_no_assoc = 0;
  std::uint64_t radio_dropped_handoff = 0;
  std::uint64_t assoc_events = 0;
  std::uint64_t roam_events = 0;
  std::uint64_t disassoc_events = 0;
  std::uint64_t rate_avg_bps = 0;      ///< mean selected PHY rate
  std::int64_t snr_avg_millidb = 0;    ///< mean faded SNR over drawn frames
  // Obs export fingerprints of the cell's testbed.
  std::uint64_t metrics_fp = 0;
  std::uint64_t trace_fp = 0;

  /// Radio drops per thousand planned frames (0 when nothing planned).
  [[nodiscard]] std::uint64_t drop_permille() const {
    const std::uint64_t dropped =
        radio_dropped_snr + radio_dropped_no_assoc + radio_dropped_handoff;
    return radio_planned == 0 ? 0 : dropped * 1000 / radio_planned;
  }

  [[nodiscard]] bool operator==(const RadioCellReport&) const = default;
};

struct RadioFloorResult {
  std::vector<RadioCellReport> cells;
  sim::ShardRunStats stats;  ///< rounds/spins/wall are timing-dependent
  std::int64_t horizon_ns = 0;

  // Placement diagnostics -- shard-count dependent, never rendered into
  // the fingerprinted artifacts (same contract as CampusResult).
  std::vector<std::uint32_t> partition;    ///< cell -> shard of this run
  std::vector<std::uint64_t> shard_events; ///< measured load per shard
  std::uint64_t imbalance_permille = 0;    ///< max/mean load, 1000 = balanced
  sim::RateProfile profile;                ///< measured per-cell rates
  /// (switchover_cycles + 1) x io_cycle -- the wired watchdog bound the
  /// degradation curve is measured against.
  std::int64_t watchdog_bound_ns = 0;
  std::int64_t io_cycle_ns = 0;

  /// Prometheus text exposition of every per-cell counter, path-ordered.
  [[nodiscard]] std::string to_prometheus() const;
  /// Chrome trace-event JSON: one span per cell plus counter samples.
  [[nodiscard]] std::string to_chrome_trace() const;
  /// `cell,name,...` rows in cell order (header included).
  [[nodiscard]] std::string to_csv() const;
  /// FNV-1a over all three artifacts -- one number that pins the entire
  /// export surface for cross-shard-count comparisons.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Builds the floor (fault matrix x SNR ladder + roaming-storm cells) and
/// runs it to `opt.horizon` on `opt.shards` worker threads.
/// Deterministic: identical options (ignoring `shards`) produce identical
/// RadioCellReports and artifacts at any shard count.
[[nodiscard]] RadioFloorResult run_radio_floor(const RadioFloorOptions& opt);

/// The acceptance curve: within every fault-matrix scenario family, both
/// the radio drop rate and the worst output gap must be non-decreasing
/// down the SNR ladder, and the worst rung must be strictly worse than
/// the healthy one. Gaps are compared in whole I/O cycles -- sub-cycle
/// timing jitter between rungs is noise, not degradation. Roaming-storm
/// cells are excluded.
[[nodiscard]] bool degradation_monotone(const RadioFloorResult& result);

}  // namespace steelnet::net
