// steelnet::net -- recycled frame payload buffers for the data-path hot
// loop.
//
// Every Frame carries a std::vector payload; without pooling, each frame a
// producer builds costs one heap allocation and each frame that dies (is
// delivered, dropped, filtered, or absorbed by the fault plane) frees one.
// The FramePool breaks that churn: frame death sites inside the kernel
// hand their payload buffer back, producers draw the next payload from the
// free list, and steady-state cyclic traffic (ProfiNet I/O, InstaPLC
// probes, ML inference requests) runs allocation-free after warm-up.
//
// Recycling is cooperative and optional -- a Frame is still a plain value
// type, and a frame that is never recycled simply frees its buffer as
// before. Application receivers that want the closed loop call
// `network().frame_pool().recycle(std::move(frame))` when they are done.
// Not thread-safe; one pool per Network, like the Network itself.
#pragma once

#include <cstdint>
#include <vector>

#include "net/frame.hpp"

namespace steelnet::net {

struct FramePoolStats {
  std::uint64_t acquired = 0;   ///< make() + clone() served
  std::uint64_t reused = 0;     ///< ... of which from the free list
  std::uint64_t fresh = 0;      ///< ... of which newly constructed
  std::uint64_t recycled = 0;   ///< buffers returned to the free list
  std::uint64_t discarded = 0;  ///< returns dropped (pool at capacity)
};

class FramePool {
 public:
  /// `max_buffers` bounds the free list (memory ceiling, not a rate
  /// limit); returns beyond it fall through to the allocator.
  explicit FramePool(std::size_t max_buffers = 4096)
      : max_buffers_(max_buffers) {}

  /// A frame with a zero-filled payload of `payload_bytes`, reusing a
  /// recycled buffer when one is available. Byte-identical to building a
  /// fresh Frame and `payload.assign(n, 0)` -- pooling never changes what
  /// goes on the wire.
  [[nodiscard]] Frame make(std::size_t payload_bytes) {
    Frame f;
    f.payload = acquire();
    f.payload.assign(payload_bytes, 0);
    return f;
  }

  /// A full copy of `f` (payload bytes and all metadata, including
  /// trace_id/seq) into a recycled buffer. Used for fault-plane
  /// duplication and switch flooding.
  [[nodiscard]] Frame clone(const Frame& f) {
    Frame c;
    c.payload = acquire();
    c.payload.assign(f.payload.begin(), f.payload.end());
    c.dst = f.dst;
    c.src = f.src;
    c.ethertype = f.ethertype;
    c.pcp = f.pcp;
    c.vlan_id = f.vlan_id;
    c.flow_id = f.flow_id;
    c.seq = f.seq;
    c.created_at = f.created_at;
    c.trace_id = f.trace_id;
    return c;
  }

  /// Returns a dead frame's payload buffer to the free list.
  void recycle(Frame&& f) { recycle_buffer(std::move(f.payload)); }

  void recycle_buffer(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0) return;  // nothing worth keeping
    if (free_.size() >= max_buffers_) {
      ++stats_.discarded;
      return;
    }
    ++stats_.recycled;
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] const FramePoolStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }

 private:
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    ++stats_.acquired;
    if (!free_.empty()) {
      ++stats_.reused;
      std::vector<std::uint8_t> buf = std::move(free_.back());
      free_.pop_back();
      return buf;
    }
    ++stats_.fresh;
    return {};
  }

  std::vector<std::vector<std::uint8_t>> free_;
  std::size_t max_buffers_;
  FramePoolStats stats_;
};

}  // namespace steelnet::net
