// steelnet::net -- the campus: hundreds of production cells on the
// sharded kernel.
//
// A campus is the paper's steel-plant network at fleet scale: every cell
// is a complete PROFINET island (star fabric, cyclic controllers and I/O
// devices, its own FramePool, optionally its own FaultPlane), mapped onto
// one sim::ShardedSimulator cell so the partitioner can spread cells over
// worker threads. Cells exchange periodic telemetry reports over a
// latency-stamped ring backbone -- the inter-cell channels whose minimum
// delay supplies the conservative lookahead -- and a report crossing a
// cell boundary is rebuilt from the *receiving* cell's FramePool, so the
// cross-shard handoff allocates nothing and never shares a buffer across
// threads.
//
// Everything exported (Prometheus, Chrome trace, CSV) is rendered after
// the run from per-cell deterministic state only, which is why the
// artifacts are byte-identical at any shard count -- the property the
// campus tier-1 test and the CI diff gate pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/partitioner.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/time.hpp"

namespace steelnet::net {

/// ShardMsg.kind of an inter-cell telemetry report.
inline constexpr std::uint32_t kCampusReportMsg = 1;

/// Placement strategy for the campus run. Placement decides wall-clock
/// only; artifacts are byte-identical under either choice.
enum class CampusPartitioner : std::uint8_t {
  kPrefixQuota,   ///< contiguous walk over declared weights (the default)
  kMeasuredRate,  ///< LPT bin-pack over `measured_weights` (profile-guided)
};

struct CampusOptions {
  std::size_t cells = 8;
  std::size_t devices_per_cell = 4;
  sim::SimTime cycle = sim::milliseconds(4);      ///< PROFINET cyclic period
  sim::SimTime horizon = sim::milliseconds(200);  ///< simulated duration
  std::uint64_t seed = 1;
  std::size_t shards = 1;
  /// Outbound report channels per cell: neighbors (i+1 .. i+degree) mod n
  /// on the ring backbone.
  std::size_t backbone_degree = 2;
  /// Minimum inter-cell delivery delay == the conservative lookahead.
  sim::SimTime backbone_latency = sim::microseconds(20);
  sim::SimTime report_period = sim::milliseconds(10);
  /// Inject a deterministic controller-crash + link-loss scenario in
  /// every cell (per-cell FaultPlane, seed derived from `seed` and the
  /// cell id).
  bool faults = false;
  bool record_fire_log = false;
  /// Skewed-load mode: the first quarter of the cells (at least one) runs
  /// at a 4x cyclic rate with fault storms enabled, while declared cell
  /// weights stay uniform -- the workload the static prefix-quota
  /// partition is deliberately wrong about, and the profile-guided one
  /// fixes. The hot zone is contiguous so it lands on few shards under a
  /// contiguous equal-weight split.
  bool skew = false;
  CampusPartitioner partitioner = CampusPartitioner::kPrefixQuota;
  /// Measured per-cell rates (one per cell, e.g. RateProfile::weights()
  /// of a calibration run). Required non-empty with kMeasuredRate;
  /// run_campus throws sim::PartitionError{kProfileMismatch} otherwise.
  std::vector<std::uint64_t> measured_weights;
};

/// Deterministic per-cell outcome -- the only state artifacts are
/// rendered from.
struct CellReport {
  std::uint32_t cell = 0;
  std::string name;
  std::uint64_t events_executed = 0;
  std::uint64_t msgs_delivered = 0;  ///< cross-shard reports handled here
  // PROFINET plane (summed over the cell's controllers/devices).
  std::uint64_t cyclic_tx = 0;
  std::uint64_t cyclic_rx = 0;
  std::uint64_t device_tx = 0;
  std::uint64_t device_rx = 0;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t controller_trips = 0;
  // Network plane.
  std::uint64_t frames_offered = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t pool_reused = 0;
  // Cross-cell reports.
  std::uint64_t reports_sent = 0;
  std::uint64_t reports_received = 0;  ///< sink deliveries in this cell
  std::uint64_t report_bytes = 0;
  std::int64_t report_latency_ns_total = 0;  ///< origin send -> sink rx
  // Fault plane (zero when faults are off).
  std::uint64_t node_crashes = 0;
  std::uint64_t node_restarts = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_sender_down = 0;
  std::uint64_t dropped_receiver_down = 0;
  std::int64_t conservation_residual = 0;
  // Device outage bookkeeping (safe-state windows).
  std::uint64_t outages = 0;
  std::int64_t outage_ns_total = 0;  ///< watchdog trip -> outputs running

  [[nodiscard]] bool operator==(const CellReport&) const = default;
};

struct CampusResult {
  std::vector<CellReport> cells;
  sim::ShardRunStats stats;  ///< rounds/spins/wall are timing-dependent
  std::int64_t horizon_ns = 0;

  // Placement diagnostics. The partition map and per-shard loads depend
  // on the shard count and partitioner choice, so they are reported here
  // (and in bench JSON) but NEVER rendered into the fingerprinted
  // artifacts below -- those must stay invariant to placement.
  std::vector<std::uint32_t> partition;    ///< cell -> shard of this run
  std::vector<std::uint64_t> shard_events; ///< measured load per shard
  std::uint64_t imbalance_permille = 0;    ///< max/mean load, 1000 = balanced
  /// Measured per-cell rates (deterministic) -- the `--profile-out`
  /// payload whose weights() feed a later run's measured partition.
  sim::RateProfile profile;

  /// Prometheus text exposition of every per-cell counter, path-ordered.
  [[nodiscard]] std::string to_prometheus() const;
  /// Chrome trace-event JSON: one span per cell plus counter samples.
  [[nodiscard]] std::string to_chrome_trace() const;
  /// `cell,name,...` rows in cell order (header included).
  [[nodiscard]] std::string to_csv() const;
  /// FNV-1a over all three artifacts -- one number that pins the entire
  /// export surface for cross-shard-count comparisons.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Builds the campus and runs it to `opt.horizon` on `opt.shards` worker
/// threads. Deterministic: identical options (ignoring `shards`) produce
/// identical CellReports and artifacts at any shard count.
[[nodiscard]] CampusResult run_campus(const CampusOptions& opt);

}  // namespace steelnet::net
