#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>

namespace steelnet::net {

MacAddress host_mac(std::uint32_t i) {
  // 02:sn:00:xx:xx:xx -- locally administered, unicast.
  return MacAddress{0x02'53'00'000000ULL + i};
}

HostNode& Fabric::host(std::size_t i) const {
  return dynamic_cast<HostNode&>(net->node(hosts.at(i)));
}

SwitchNode& Fabric::sw(std::size_t i) const {
  return dynamic_cast<SwitchNode&>(net->node(switches.at(i)));
}

namespace {

/// Shared helper: create a switch.
NodeId make_switch(Network& net, const TopologyOptions& opt, std::size_t i) {
  auto cfg = opt.switch_cfg;
  cfg.mac_learning = false;  // static routing installed explicitly
  return net.add_node<SwitchNode>(opt.name_prefix + "-sw" + std::to_string(i),
                                  cfg)
      .id();
}

/// Shared helper: create `count` hosts on switch `sw`, using ascending
/// switch-side port numbers starting at `first_port`.
void attach_hosts(Network& net, const TopologyOptions& opt, NodeId sw,
                  PortId first_port, std::size_t count, Fabric& fabric) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::uint32_t>(fabric.hosts.size());
    NodeId h = net.add_node<HostNode>(
                      opt.name_prefix + "-h" + std::to_string(idx),
                      host_mac(idx))
                   .id();
    net.connect(h, HostNode::kNicPort, sw,
                static_cast<PortId>(first_port + i), opt.host_link);
    fabric.hosts.push_back(h);
  }
}

}  // namespace

Fabric build_line(Network& net, std::size_t n_switches,
                  std::size_t hosts_per_switch, TopologyOptions opt) {
  if (n_switches == 0) throw std::invalid_argument("build_line: 0 switches");
  Fabric f;
  f.net = &net;
  for (std::size_t i = 0; i < n_switches; ++i) {
    f.switches.push_back(make_switch(net, opt, i));
  }
  // Trunk ports 0 (left) and 1 (right); hosts start at port 2.
  for (std::size_t i = 0; i + 1 < n_switches; ++i) {
    net.connect(f.switches[i], 1, f.switches[i + 1], 0, opt.trunk_link);
  }
  for (std::size_t i = 0; i < n_switches; ++i) {
    attach_hosts(net, opt, f.switches[i], 2, hosts_per_switch, f);
  }
  return f;
}

Fabric build_ring(Network& net, std::size_t n_switches,
                  std::size_t hosts_per_switch, TopologyOptions opt) {
  if (n_switches < 3) throw std::invalid_argument("build_ring: need >= 3");
  Fabric f;
  f.net = &net;
  for (std::size_t i = 0; i < n_switches; ++i) {
    f.switches.push_back(make_switch(net, opt, i));
  }
  for (std::size_t i = 0; i < n_switches; ++i) {
    net.connect(f.switches[i], 1, f.switches[(i + 1) % n_switches], 0,
                opt.trunk_link);
  }
  for (std::size_t i = 0; i < n_switches; ++i) {
    attach_hosts(net, opt, f.switches[i], 2, hosts_per_switch, f);
  }
  return f;
}

Fabric build_star(Network& net, std::size_t n_hosts, TopologyOptions opt) {
  Fabric f;
  f.net = &net;
  f.switches.push_back(make_switch(net, opt, 0));
  attach_hosts(net, opt, f.switches[0], 0, n_hosts, f);
  return f;
}

Fabric build_tree(Network& net, std::size_t depth, std::size_t fanout,
                  std::size_t hosts_per_leaf, TopologyOptions opt) {
  if (depth == 0 || fanout == 0) {
    throw std::invalid_argument("build_tree: bad shape");
  }
  Fabric f;
  f.net = &net;
  // Level-order construction; port 0 of a child connects to its parent.
  std::vector<std::vector<NodeId>> levels(depth);
  std::size_t counter = 0;
  levels[0].push_back(make_switch(net, opt, counter++));
  f.switches.push_back(levels[0][0]);
  for (std::size_t d = 1; d < depth; ++d) {
    for (NodeId parent : levels[d - 1]) {
      for (std::size_t c = 0; c < fanout; ++c) {
        NodeId child = make_switch(net, opt, counter++);
        f.switches.push_back(child);
        levels[d].push_back(child);
        // Parent's downlink ports start at 1 (+fanout for deeper ports).
        net.connect(parent, static_cast<PortId>(1 + c +
                                                (d == 1 ? 0 : 0)),
                    child, 0, opt.trunk_link);
      }
    }
  }
  for (NodeId leaf : levels[depth - 1]) {
    attach_hosts(net, opt, leaf, static_cast<PortId>(1 + fanout),
                 hosts_per_leaf, f);
  }
  return f;
}

Fabric build_leaf_spine(Network& net, std::size_t n_spines,
                        std::size_t n_leaves, std::size_t hosts_per_leaf,
                        TopologyOptions opt) {
  if (n_spines == 0 || n_leaves == 0) {
    throw std::invalid_argument("build_leaf_spine: bad shape");
  }
  Fabric f;
  f.net = &net;
  std::vector<NodeId> spines, leaves;
  for (std::size_t s = 0; s < n_spines; ++s) {
    spines.push_back(make_switch(net, opt, s));
    f.switches.push_back(spines.back());
  }
  for (std::size_t l = 0; l < n_leaves; ++l) {
    leaves.push_back(make_switch(net, opt, n_spines + l));
    f.switches.push_back(leaves.back());
  }
  // Leaf port s connects to spine s; spine port l connects to leaf l.
  for (std::size_t l = 0; l < n_leaves; ++l) {
    for (std::size_t s = 0; s < n_spines; ++s) {
      net.connect(leaves[l], static_cast<PortId>(s), spines[s],
                  static_cast<PortId>(l), opt.trunk_link);
    }
  }
  for (std::size_t l = 0; l < n_leaves; ++l) {
    attach_hosts(net, opt, leaves[l], static_cast<PortId>(n_spines),
                 hosts_per_leaf, f);
  }
  return f;
}

namespace {

struct SwitchGraph {
  // adjacency: switch id -> (port, neighbor switch id)
  std::map<NodeId, std::vector<std::pair<PortId, NodeId>>> adj;
  // host attachment: host id -> (switch id, switch port)
  std::map<NodeId, std::pair<NodeId, PortId>> host_at;
};

SwitchGraph analyze(const Fabric& f) {
  SwitchGraph g;
  const std::set<NodeId> sw_set(f.switches.begin(), f.switches.end());
  for (NodeId s : f.switches) {
    for (const auto& [port, peer] : f.net->ports_of(s)) {
      if (sw_set.contains(peer)) {
        g.adj[s].emplace_back(port, peer);
      }
    }
  }
  for (NodeId h : f.hosts) {
    const auto p = f.net->peer(h, HostNode::kNicPort);
    if (!p) throw std::logic_error("host not connected");
    g.host_at[h] = *p;
  }
  return g;
}

}  // namespace

void install_shortest_path_routes(const Fabric& fabric) {
  const SwitchGraph g = analyze(fabric);

  for (NodeId h : fabric.hosts) {
    const auto [root_sw, root_port] = g.host_at.at(h);
    const MacAddress mac =
        dynamic_cast<HostNode&>(fabric.net->node(h)).mac();

    // BFS outward from the host's switch; dist in switch hops.
    std::map<NodeId, int> dist;
    dist[root_sw] = 0;
    std::deque<NodeId> bfs{root_sw};
    while (!bfs.empty()) {
      const NodeId u = bfs.front();
      bfs.pop_front();
      const auto it = g.adj.find(u);
      if (it == g.adj.end()) continue;
      for (const auto& [port, v] : it->second) {
        (void)port;
        if (!dist.contains(v)) {
          dist[v] = dist[u] + 1;
          bfs.push_back(v);
        }
      }
    }

    // Each switch forwards toward a strictly-closer neighbor (lowest port
    // wins for determinism); the root switch forwards to the host port.
    for (NodeId s : fabric.switches) {
      auto& sw = dynamic_cast<SwitchNode&>(fabric.net->node(s));
      if (s == root_sw) {
        sw.add_fdb_entry(mac, root_port);
        continue;
      }
      const auto dit = dist.find(s);
      if (dit == dist.end()) continue;  // disconnected
      const auto ait = g.adj.find(s);
      if (ait == g.adj.end()) continue;
      // All equal-cost next hops, then a deterministic per-destination
      // pick (hash ECMP): spreads distinct hosts across parallel paths
      // (leaf-spine) while keeping each flow on one stable path.
      std::vector<PortId> candidates;
      for (const auto& [port, v] : ait->second) {
        const auto dv = dist.find(v);
        if (dv != dist.end() && dv->second == dit->second - 1) {
          candidates.push_back(port);
        }
      }
      if (!candidates.empty()) {
        sw.add_fdb_entry(mac,
                         candidates[mac.bits() % candidates.size()]);
      }
    }
  }
}

int route_hops(const Fabric& fabric, std::size_t src_host,
               std::size_t dst_host) {
  if (src_host == dst_host) return 0;
  const SwitchGraph g = analyze(fabric);
  const MacAddress dst_mac = fabric.host(dst_host).mac();
  auto [cur_sw, in_port] = g.host_at.at(fabric.hosts.at(src_host));
  (void)in_port;
  const auto [dst_sw, dst_port] = g.host_at.at(fabric.hosts.at(dst_host));
  (void)dst_port;
  int hops = 0;
  std::set<NodeId> visited;
  while (true) {
    ++hops;
    if (hops > static_cast<int>(fabric.switches.size()) + 1) return -1;
    if (!visited.insert(cur_sw).second) return -1;  // loop
    auto& sw = dynamic_cast<SwitchNode&>(fabric.net->node(cur_sw));
    const auto out = sw.lookup(dst_mac);
    if (!out) return -1;
    if (cur_sw == dst_sw) {
      const auto peer = fabric.net->peer(cur_sw, *out);
      if (peer && peer->first == fabric.hosts.at(dst_host)) return hops;
    }
    const auto peer = fabric.net->peer(cur_sw, *out);
    if (!peer) return -1;
    cur_sw = peer->first;
  }
}

}  // namespace steelnet::net
