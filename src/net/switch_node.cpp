#include "net/switch_node.hpp"

#include "obs/hub.hpp"

namespace steelnet::net {

SwitchNode::SwitchNode(SwitchConfig cfg) : cfg_(cfg) {}

EgressQueue& SwitchNode::queue_for(PortId port) {
  if (egress_.size() <= port) egress_.resize(port + 1u);
  if (!egress_[port]) {
    egress_[port] =
        std::make_unique<EgressQueue>(*this, port, cfg_.queue_capacity);
  }
  return *egress_[port];
}

void SwitchNode::add_fdb_entry(MacAddress mac, PortId out_port) {
  fdb_[mac.bits()] = out_port;
}

std::optional<PortId> SwitchNode::lookup(MacAddress mac) const {
  const auto it = fdb_.find(mac.bits());
  if (it == fdb_.end()) return std::nullopt;
  return it->second;
}

void SwitchNode::set_gate_controller(PortId port, const GateController* gates) {
  queue_for(port).set_gate_controller(gates);
}

const EgressCounters& SwitchNode::port_counters(PortId port) const {
  static const EgressCounters kEmpty{};
  if (port >= egress_.size() || !egress_[port]) return kEmpty;
  return egress_[port]->counters();
}

void SwitchNode::handle_frame(Frame frame, PortId in_port) {
  observe_frame(frame, in_port);
  ++counters_.frames_in;
  if (cfg_.mac_learning && !frame.src.is_multicast()) {
    fdb_[frame.src.bits()] = in_port;
  }

  if (obs::ObsHub* hub = network().obs();
      hub != nullptr && frame.trace_id != 0) {
    if (obs_track_ == static_cast<std::uint32_t>(-1)) {
      obs_track_ = hub->track(name());
    }
    const sim::SimTime now = network().sim().now();
    hub->proc(frame.trace_id, obs_track_, now, now + cfg_.processing_delay);
  }

  // Store-and-forward processing delay, then queue at egress.
  Frame f = std::move(frame);
  network().sim().schedule_in(
      cfg_.processing_delay, [this, f = std::move(f), in_port]() mutable {
        const auto out = lookup(f.dst);
        if (out.has_value()) {
          if (*out == in_port) {  // would hairpin; drop
            network().frame_pool().recycle(std::move(f));
            return;
          }
          ++counters_.frames_forwarded;
          forward(std::move(f), *out);
          return;
        }
        if (f.dst.is_broadcast() || f.dst.is_multicast() ||
            cfg_.mac_learning) {
          // Flood to every connected port except ingress; each copy
          // draws its payload buffer from the pool.
          ++counters_.frames_flooded;
          for (const auto& [port, peer] : network().ports_of(id())) {
            (void)peer;
            if (port == in_port) continue;
            forward(network().frame_pool().clone(f), port);
          }
          network().frame_pool().recycle(std::move(f));
          return;
        }
        ++counters_.frames_dropped_unknown;
        network().frame_pool().recycle(std::move(f));
      });
}

void SwitchNode::forward(Frame frame, PortId out_port) {
  queue_for(out_port).enqueue(std::move(frame));
}

void SwitchNode::on_channel_idle(PortId port) {
  if (port < egress_.size() && egress_[port]) egress_[port]->drain();
}

void SwitchNode::on_egress_drop(PortId port, const Frame& frame) {
  (void)port;
  (void)frame;
  ++counters_.frames_dropped_overflow;
}

void SwitchNode::register_metrics(obs::ObsHub& hub) {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({name(), "switch", "frames_in"}, &counters_.frames_in);
  reg.bind_counter({name(), "switch", "frames_forwarded"},
                   &counters_.frames_forwarded);
  reg.bind_counter({name(), "switch", "frames_flooded"},
                   &counters_.frames_flooded);
  reg.bind_counter({name(), "switch", "frames_dropped_unknown"},
                   &counters_.frames_dropped_unknown);
  reg.bind_counter({name(), "switch", "frames_dropped_overflow"},
                   &counters_.frames_dropped_overflow);
  for (const auto& [port, peer] : network().ports_of(id())) {
    (void)peer;
    queue_for(port).register_metrics(hub);
  }
}

}  // namespace steelnet::net
