// steelnet::net -- the unit of transmission.
#pragma once

#include <cstdint>
#include <vector>

#include "net/mac.hpp"
#include "sim/time.hpp"

namespace steelnet::net {

/// An Ethernet-like frame plus simulation metadata.
///
/// The payload is real bytes: protocol modules (profinet, ptp, ...) serialize
/// their PDUs into it and parse them back out, exactly as on a wire.
struct Frame {
  MacAddress dst;
  MacAddress src;
  EtherType ethertype = EtherType::kExperimental;

  /// 802.1Q priority code point, 0 (best effort) .. 7 (highest).
  std::uint8_t pcp = 0;
  /// VLAN id; 0 means "untagged" (no 802.1Q header on the wire).
  std::uint16_t vlan_id = 0;

  std::vector<std::uint8_t> payload;

  // --- simulation metadata (not on the wire) ---
  std::uint64_t flow_id = 0;   ///< logical flow for bookkeeping
  std::uint64_t seq = 0;       ///< per-flow sequence number
  sim::SimTime created_at;     ///< when the sending application emitted it
  /// Observability causality key: stamped by the first sending host when
  /// an obs::ObsHub is attached to the Network, 0 otherwise. Carried
  /// through queues, links and rewrites so per-hop spans of one frame can
  /// be correlated into an end-to-end latency breakdown.
  std::uint64_t trace_id = 0;

  /// L2 bytes: header + optional 802.1Q tag + padded payload + FCS.
  [[nodiscard]] std::size_t wire_bytes() const;
  /// Wire bytes plus preamble/SFD/inter-frame gap -- what a link is
  /// occupied for while serializing this frame.
  [[nodiscard]] std::size_t occupancy_bytes() const;

  /// Little-endian u64 accessors into the payload, used by programs that
  /// stamp timestamps into packets (e.g. the TS-OW eBPF variant).
  /// All six accessors throw std::out_of_range when [offset, offset+n)
  /// does not fit the payload -- including offsets large enough that
  /// `offset + n` would wrap (a fault-corrupted offset must fail loudly,
  /// never read through an overflowed bounds check as UB).
  [[nodiscard]] std::uint64_t read_u64(std::size_t offset) const;
  void write_u64(std::size_t offset, std::uint64_t value);
  [[nodiscard]] std::uint32_t read_u32(std::size_t offset) const;
  void write_u32(std::size_t offset, std::uint32_t value);
  [[nodiscard]] std::uint16_t read_u16(std::size_t offset) const;
  void write_u16(std::size_t offset, std::uint16_t value);

 private:
  /// Overflow-safe range check: true iff [offset, offset + n) is inside
  /// the payload. Written subtraction-side so a huge `offset` cannot
  /// wrap the addition and sneak past the bound.
  [[nodiscard]] bool payload_range_ok(std::size_t offset,
                                      std::size_t n) const {
    return payload.size() >= n && offset <= payload.size() - n;
  }
};

/// Serialization time of `bytes` at `bits_per_second`.
[[nodiscard]] sim::SimTime serialization_time(std::size_t bytes,
                                              std::uint64_t bits_per_second);

}  // namespace steelnet::net
