#include "net/frame.hpp"

#include <algorithm>
#include <stdexcept>

namespace steelnet::net {

namespace {
constexpr std::size_t kEthHeader = 14;
constexpr std::size_t kVlanTag = 4;
constexpr std::size_t kFcs = 4;
constexpr std::size_t kMinPayload = 46;
constexpr std::size_t kPreambleSfdIfg = 8 + 12;
}  // namespace

std::size_t Frame::wire_bytes() const {
  const std::size_t pay = std::max(payload.size(), kMinPayload);
  return kEthHeader + (vlan_id != 0 || pcp != 0 ? kVlanTag : 0) + pay + kFcs;
}

std::size_t Frame::occupancy_bytes() const {
  return wire_bytes() + kPreambleSfdIfg;
}

std::uint64_t Frame::read_u64(std::size_t offset) const {
  if (!payload_range_ok(offset, 8)) {
    throw std::out_of_range("Frame::read_u64 past payload end");
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | payload[offset + std::size_t(i)];
  return v;
}

void Frame::write_u64(std::size_t offset, std::uint64_t value) {
  if (!payload_range_ok(offset, 8)) {
    throw std::out_of_range("Frame::write_u64 past payload end");
  }
  for (std::size_t i = 0; i < 8; ++i) {
    payload[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint32_t Frame::read_u32(std::size_t offset) const {
  if (!payload_range_ok(offset, 4)) {
    throw std::out_of_range("Frame::read_u32 past payload end");
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | payload[offset + std::size_t(i)];
  return v;
}

void Frame::write_u32(std::size_t offset, std::uint32_t value) {
  if (!payload_range_ok(offset, 4)) {
    throw std::out_of_range("Frame::write_u32 past payload end");
  }
  for (std::size_t i = 0; i < 4; ++i) {
    payload[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

std::uint16_t Frame::read_u16(std::size_t offset) const {
  if (!payload_range_ok(offset, 2)) {
    throw std::out_of_range("Frame::read_u16 past payload end");
  }
  return static_cast<std::uint16_t>(payload[offset] |
                                    (payload[offset + 1] << 8));
}

void Frame::write_u16(std::size_t offset, std::uint16_t value) {
  if (!payload_range_ok(offset, 2)) {
    throw std::out_of_range("Frame::write_u16 past payload end");
  }
  payload[offset] = static_cast<std::uint8_t>(value);
  payload[offset + 1] = static_cast<std::uint8_t>(value >> 8);
}

sim::SimTime serialization_time(std::size_t bytes,
                                std::uint64_t bits_per_second) {
  if (bits_per_second == 0) {
    throw std::invalid_argument("serialization_time: zero bandwidth");
  }
  // ns = bits * 1e9 / bps, rounded up so a frame never finishes "early".
  const auto bits = static_cast<std::uint64_t>(bytes) * 8ULL;
  const auto ns = (bits * 1'000'000'000ULL + bits_per_second - 1) /
                  bits_per_second;
  return sim::SimTime{static_cast<std::int64_t>(ns)};
}

}  // namespace steelnet::net
