// steelnet::net -- node and gate-controller interfaces.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/time.hpp"

namespace steelnet::net {

using NodeId = std::uint32_t;
using PortId = std::uint16_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Network;

/// A passive ingress tap: sees every frame a node receives, read-only,
/// before the node processes it (port-mirror / SPAN semantics). Attached
/// via Node::add_frame_observer; steelnet::flowmon's MeterPoint is the
/// main implementation.
class FrameObserver {
 public:
  virtual ~FrameObserver() = default;
  virtual void on_frame(const Frame& frame, PortId in_port) = 0;
};

/// A device attached to the network. Subclasses: SwitchNode, HostNode,
/// TapNode, SdnSwitchNode, ...
class Node {
 public:
  virtual ~Node() = default;

  /// Called by the Network when a frame finishes arriving on `in_port`.
  virtual void handle_frame(Frame frame, PortId in_port) = 0;

  /// Called when the egress channel of `port` becomes idle and more
  /// frames may be transmitted. Default: nothing.
  virtual void on_channel_idle(PortId port) { (void)port; }

  /// Called by the node's own EgressQueue when a frame is dropped because
  /// a priority queue is full. Default: nothing.
  virtual void on_egress_drop(PortId port, const Frame& frame) {
    (void)port;
    (void)frame;
  }

  /// Registers/removes an ingress tap. Observers are not owned and must
  /// outlive the node or detach first.
  void add_frame_observer(FrameObserver* obs) { observers_.push_back(obs); }
  void remove_frame_observer(FrameObserver* obs) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), obs),
                     observers_.end());
  }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Network& network() const { return *network_; }
  /// False for a node constructed standalone (unit tests drive
  /// handle_frame directly); network() is only valid when attached.
  [[nodiscard]] bool attached() const { return network_ != nullptr; }

 protected:
  Node() = default;

  /// Subclasses call this at the top of handle_frame so attached taps see
  /// every arriving frame.
  void observe_frame(const Frame& frame, PortId in_port) {
    for (auto* obs : observers_) obs->on_frame(frame, in_port);
  }

 private:
  friend class Network;
  void attach(Network& net, NodeId id, std::string name) {
    network_ = &net;
    id_ = id;
    name_ = std::move(name);
  }

  Network* network_ = nullptr;
  NodeId id_ = kInvalidNode;
  std::string name_;
  std::vector<FrameObserver*> observers_;
};

/// Fault-injection hook surface (implemented by steelnet::faults'
/// FaultPlane). The data path consults it at each hook site behind a
/// single pointer-null branch -- detached, faults cost nothing, exactly
/// like the observability plane. The injector owns all fault state,
/// randomness and counters; the data path only asks and obeys.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// What should happen to a frame entering the wire at (node, port).
  /// `corrupted` frames were already mutated in place; `duplicate` asks
  /// the network to deliver a second copy; `extra_delay` postpones the
  /// arrival (jitter, or reordering via delayed re-enqueue).
  struct TransitVerdict {
    bool drop = false;
    const char* cause = nullptr;  ///< drop cause ("loss", "link_down", ...)
    bool corrupted = false;
    bool duplicate = false;
    bool reordered = false;
    sim::SimTime extra_delay;
  };

  /// False while the node is crashed: the network drops deliveries to it
  /// and the node's own tx path suppresses sends.
  [[nodiscard]] virtual bool node_alive(NodeId node) const = 0;

  /// Consulted by Network::transmit once per offered frame. May mutate
  /// the frame (bit corruption) and draws from the injector's seeded
  /// fault streams.
  virtual TransitVerdict on_transit(NodeId node, PortId port, Frame& frame,
                                    sim::SimTime now) = 0;

  /// An in-flight frame arrived at a crashed node and was discarded.
  virtual void on_receiver_down(NodeId node, const Frame& frame,
                                sim::SimTime now) = 0;
  /// A frame was suppressed before reaching the wire (send/enqueue on a
  /// crashed node, or a queue purge while the node was down).
  virtual void on_tx_suppressed(NodeId node, const Frame& frame) = 0;
  /// A frame was handed to a crashed node outside the network delivery
  /// path and discarded.
  virtual void on_rx_suppressed(NodeId node, const Frame& frame) = 0;
};

/// Transmission gating hook (implemented by the TSN time-aware shaper).
/// The egress queue consults it before starting a frame.
class GateController {
 public:
  virtual ~GateController() = default;

  /// May a frame of priority `pcp` taking `duration` on the wire start
  /// transmitting at `now`? (A Qbv shaper also enforces that the gate
  /// stays open for the whole duration -- no guard-band violations.)
  [[nodiscard]] virtual bool can_start(std::uint8_t pcp, sim::SimTime now,
                                       sim::SimTime duration) const = 0;

  /// Earliest time >= now at which can_start(pcp, t, duration) could be
  /// true. Used to re-arm the queue drain.
  [[nodiscard]] virtual sim::SimTime next_opportunity(
      std::uint8_t pcp, sim::SimTime now, sim::SimTime duration) const = 0;
};

}  // namespace steelnet::net
