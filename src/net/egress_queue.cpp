#include "net/egress_queue.hpp"

#include "obs/hub.hpp"

namespace steelnet::net {

EgressQueue::EgressQueue(Node& owner, PortId port,
                         std::size_t capacity_per_queue)
    : owner_(owner), port_(port), capacity_(capacity_per_queue) {}

std::uint32_t EgressQueue::obs_track(obs::ObsHub& hub) {
  if (obs_track_ == static_cast<std::uint32_t>(-1)) {
    obs_track_ =
        hub.track(owner_.name() + "/p" + std::to_string(port_));
  }
  return obs_track_;
}

void EgressQueue::register_metrics(obs::ObsHub& hub) const {
  obs::MetricsRegistry& reg = hub.metrics();
  const std::string module = "p" + std::to_string(port_) + "/egress";
  reg.bind_counter({owner_.name(), module, "enqueued"}, &counters_.enqueued);
  reg.bind_counter({owner_.name(), module, "transmitted"},
                   &counters_.transmitted);
  reg.bind_counter({owner_.name(), module, "dropped_overflow"},
                   &counters_.dropped_overflow);
}

void EgressQueue::enqueue(Frame frame) {
  // A crashed node's egress path is dead: the frame is suppressed at the
  // fault plane instead of queueing (and stale frames are purged by
  // drain() below when the crash hits a non-empty queue).
  if (FaultInjector* fp = owner_.network().faults();
      fp != nullptr && !fp->node_alive(owner_.id())) {
    if (obs::ObsHub* hub = owner_.network().obs();
        hub != nullptr && frame.trace_id != 0) {
      hub->fault_event(frame.trace_id, obs_track(*hub),
                       owner_.network().sim().now(), "tx_suppressed");
    }
    fp->on_tx_suppressed(owner_.id(), frame);
    owner_.network().frame_pool().recycle(std::move(frame));
    return;
  }
  const std::uint8_t pcp = frame.pcp & 0x7;
  obs::ObsHub* hub = owner_.network().obs();
  if (capacity_ != 0 && queues_[pcp].size() >= capacity_) {
    ++counters_.dropped_overflow;
    if (hub != nullptr && frame.trace_id != 0) {
      hub->queue_drop(frame.trace_id, obs_track(*hub));
    }
    owner_.on_egress_drop(port_, frame);
    owner_.network().frame_pool().recycle(std::move(frame));
    return;
  }
  ++counters_.enqueued;
  if (hub != nullptr && frame.trace_id != 0) {
    hub->queue_enter(frame.trace_id, obs_track(*hub),
                     owner_.network().sim().now());
  }
  queues_[pcp].push_back(std::move(frame));
  drain();
}

std::size_t EgressQueue::depth() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void EgressQueue::drain() {
  Network& net = owner_.network();
  obs::ObsHub* hub = net.obs();
  if (FaultInjector* fp = net.faults();
      fp != nullptr && !fp->node_alive(owner_.id())) {
    // The owning node crashed with frames still queued: purge them (a
    // dead NIC's buffers do not survive), keeping the fault ledger exact.
    for (auto& q : queues_) {
      while (!q.empty()) {
        if (hub != nullptr && q.front().trace_id != 0) {
          hub->queue_drop(q.front().trace_id, obs_track(*hub));
          hub->fault_event(q.front().trace_id, obs_track(*hub),
                           net.sim().now(), "tx_suppressed");
        }
        fp->on_tx_suppressed(owner_.id(), q.front());
        net.frame_pool().recycle(std::move(q.front()));
        q.pop_front();
      }
    }
    return;
  }
  if (!net.has_channel(owner_.id(), port_)) {
    // Unconnected port: drain everything into the network's drop counter
    // (transmit() on a missing channel counts frames_dropped_no_link).
    for (auto& q : queues_) {
      while (!q.empty()) {
        if (hub != nullptr && q.front().trace_id != 0) {
          hub->queue_exit(q.front().trace_id, obs_track(*hub),
                          net.sim().now());
        }
        net.transmit(owner_.id(), port_, std::move(q.front()));
        q.pop_front();
      }
    }
    return;
  }
  if (!net.channel_idle(owner_.id(), port_)) return;  // re-drained on idle

  const sim::SimTime now = net.sim().now();
  // Gate checks need the head frame's wire occupancy; the channel's link
  // backend supplies the estimate (wired: occupancy at the channel rate,
  // recomputed identically by Network::transmit; radio: the currently
  // adapted rate).
  sim::SimTime best_retry = sim::SimTime::max();
  for (int pcp = static_cast<int>(kPriorities) - 1; pcp >= 0; --pcp) {
    auto& q = queues_[static_cast<std::size_t>(pcp)];
    if (q.empty()) continue;
    Frame& head = q.front();
    if (gates_ != nullptr) {
      const sim::SimTime dur =
          net.serialization_estimate(owner_.id(), port_, head);
      if (!gates_->can_start(static_cast<std::uint8_t>(pcp), now, dur)) {
        const sim::SimTime t =
            gates_->next_opportunity(static_cast<std::uint8_t>(pcp), now, dur);
        if (t < best_retry) best_retry = t;
        continue;  // lower priorities may still be eligible
      }
    }
    Frame f = std::move(head);
    q.pop_front();
    ++counters_.transmitted;
    if (hub != nullptr && f.trace_id != 0) {
      hub->queue_exit(f.trace_id, obs_track(*hub), now);
    }
    net.transmit(owner_.id(), port_, std::move(f));
    return;
  }
  // Nothing eligible now; if a gate opens later, retry then.
  if (best_retry != sim::SimTime::max()) {
    gate_retry_.cancel();
    gate_retry_ = net.sim().schedule_at(best_retry, [this] { drain(); });
  }
}

}  // namespace steelnet::net
