#include "net/fake_backend.hpp"

namespace steelnet::net {

FakeAction FakeBackend::next_action(NodeId node, PortId port) {
  if (const auto it = scripts_.find(link_key(node, port));
      it != scripts_.end() && !it->second.empty()) {
    FakeAction a = it->second.front();
    it->second.pop_front();
    return a;
  }
  if (!global_.empty()) {
    FakeAction a = global_.front();
    global_.pop_front();
    return a;
  }
  return {};
}

sim::SimTime FakeBackend::serialize_estimate(NodeId node, PortId port,
                                             const Frame& frame,
                                             const LinkParams& params,
                                             sim::SimTime now) {
  (void)now;
  // Peek-only (estimates must not consume script actions): use the rate
  // the next scripted action would apply, if any.
  std::uint64_t bps = params.bits_per_second;
  if (const auto it = scripts_.find(link_key(node, port));
      it != scripts_.end() && !it->second.empty()) {
    if (it->second.front().rate_override != 0) {
      bps = it->second.front().rate_override;
    }
  } else if (!global_.empty() && global_.front().rate_override != 0) {
    bps = global_.front().rate_override;
  }
  return serialization_time(frame.occupancy_bytes(), bps);
}

LinkTxPlan FakeBackend::plan_transmit(NodeId node, PortId port,
                                      const Frame& frame,
                                      const LinkParams& params,
                                      sim::SimTime now) {
  (void)now;
  ++frames_seen_;
  const FakeAction a = next_action(node, port);
  LinkTxPlan plan;
  const std::uint64_t bps =
      a.rate_override != 0 ? a.rate_override : params.bits_per_second;
  plan.bits_per_second = bps;
  plan.serialize = serialization_time(frame.occupancy_bytes(), bps);
  plan.propagate = params.propagation + a.extra_propagation;
  if (a.drop) {
    plan.survives = false;
    plan.cause = a.cause;
    ++frames_dropped_;
  }
  return plan;
}

std::size_t FakeBackend::pending_actions() const {
  std::size_t n = global_.size();
  for (const auto& [k, q] : scripts_) n += q.size();
  return n;
}

}  // namespace steelnet::net
