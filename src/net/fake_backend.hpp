// steelnet::net -- the scriptable test driver.
//
// FakeBackend lets a test dictate the exact fate of every offered frame:
// drop it under a named cause, override the serialization rate, stretch
// the flight time -- without touching the Network, the fault plane or any
// RNG stream. Actions are consumed in transmit order from a per-(node,
// port) script (falling back to a global script, then to wired behavior
// once the script is exhausted), so a test can write
//
//   fake.script_global({{.drop = true, .cause = "fake_drop"}, {}});
//
// and know frame 1 dies, frame 2 sails through, and frame 3 onward is an
// ideal wire.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/link_backend.hpp"

namespace steelnet::net {

/// One scripted per-frame impairment. Default-constructed == behave like
/// the ideal wire for this frame.
struct FakeAction {
  bool drop = false;
  const char* cause = "fake_drop";    ///< ledger bucket when drop is set
  std::uint64_t rate_override = 0;    ///< 0 = use LinkParams rate
  sim::SimTime extra_propagation;     ///< added to LinkParams propagation
};

class FakeBackend final : public LinkBackend {
 public:
  [[nodiscard]] const char* kind() const override { return "fake"; }

  /// Appends actions consumed (FIFO) by frames offered on exactly
  /// (node, port); takes priority over the global script.
  void script(NodeId node, PortId port, std::deque<FakeAction> actions) {
    auto& q = scripts_[link_key(node, port)];
    for (auto& a : actions) q.push_back(a);
  }

  /// Appends actions consumed by any frame with no per-port script left.
  void script_global(std::deque<FakeAction> actions) {
    for (auto& a : actions) global_.push_back(a);
  }

  [[nodiscard]] sim::SimTime serialize_estimate(NodeId node, PortId port,
                                                const Frame& frame,
                                                const LinkParams& params,
                                                sim::SimTime now) override;
  [[nodiscard]] LinkTxPlan plan_transmit(NodeId node, PortId port,
                                         const Frame& frame,
                                         const LinkParams& params,
                                         sim::SimTime now) override;

  [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_;
  }
  /// Scripted actions not yet consumed (per-port + global).
  [[nodiscard]] std::size_t pending_actions() const;

 private:
  static std::uint64_t link_key(NodeId node, PortId port) {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }
  /// Pops the next action for (node, port): per-port script first, then
  /// the global one, then the wired default.
  FakeAction next_action(NodeId node, PortId port);

  std::unordered_map<std::uint64_t, std::deque<FakeAction>> scripts_;
  std::deque<FakeAction> global_;
  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace steelnet::net
