// steelnet::net -- the lossy-radio link driver.
//
// Models the paper's missing scenario: mobile stations (AGVs, handheld
// HMIs) on a factory-floor radio segment. Per frame, the backend draws a
// shadow-fading sample around the deterministic mean SNR (log-distance
// path loss from the station's waypoint position to its access point),
// adapts the PHY rate to the faded SNR against a rate ladder, and kills
// the frame with an SNR-dependent error probability. On top of the
// per-frame channel sits a deterministic discovery/association protocol:
// stations scan on a fixed epoch grid, associate with the strongest AP
// above the association floor, and roam when another AP beats the current
// one by the hysteresis margin -- each handoff opening a dead-air window
// during which frames are lost to "radio_handoff".
//
// Determinism: association/roaming decisions are pure functions of sim
// time (fade-free mean SNR), advanced lazily from plan_transmit, and the
// only randomness is the per-station fade/loss streams drawn in transmit
// order -- so the same seed replays byte-identically at any shard or job
// count. All exported telemetry is integral (millidB via llround).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link_backend.hpp"
#include "sim/random.hpp"

namespace steelnet::net {

/// One access point: a fixed antenna position and transmit power.
struct RadioAp {
  std::string name;
  double x = 0.0;  ///< meters
  double y = 0.0;
  double tx_power_dbm = 20.0;
  std::uint32_t channel = 1;  ///< logical frequency slot
};

/// One rung of the rate-adaptation ladder: the slowest SNR at which this
/// MCS is selected, and the PHY bit rate it yields.
struct RadioRateStep {
  double min_snr_db = 0.0;
  std::uint64_t bits_per_second = 0;
};

/// One timed position sample of a station's waypoint track; positions
/// interpolate linearly between samples and clamp beyond the ends.
struct RadioWaypoint {
  sim::SimTime at;
  double x = 0.0;
  double y = 0.0;
};

struct RadioConfig {
  std::vector<RadioAp> aps;
  /// Ascending min_snr_db; the last affordable rung is selected per
  /// frame. Below rates.front().min_snr_db the frame is dropped outright
  /// (below receiver sensitivity).
  std::vector<RadioRateStep> rates;
  double noise_floor_dbm = -94.0;
  double path_loss_ref_db = 40.0;  ///< loss at the 1 m reference distance
  double path_loss_exponent = 3.0;
  double fading_sigma_db = 3.0;  ///< per-frame lognormal shadow fading
  /// Global SNR shift in dB -- the "SNR ladder" knob tab_radio sweeps
  /// (interference, absorption, antenna misalignment).
  double snr_offset_db = 0.0;
  /// Logistic frame-error curve: p_loss = 1 / (1 + exp((snr - mid)/slope)).
  double fer_mid_snr_db = 12.0;
  double fer_slope_db = 1.5;
  double assoc_min_snr_db = 5.0;   ///< weakest mean SNR worth associating
  double roam_hysteresis_db = 4.0; ///< candidate must beat current by this
  sim::SimTime scan_interval = sim::milliseconds(50);
  sim::SimTime assoc_delay = sim::milliseconds(2);      ///< discovery+assoc
  sim::SimTime handoff_dead_time = sim::milliseconds(5);///< roam dead air
  std::uint64_t seed = 1;
};

/// Aggregate telemetry across every station of one backend instance --
/// integral only, so artifacts rendered from it stay byte-stable.
struct RadioCounters {
  std::uint64_t frames_planned = 0;
  std::uint64_t dropped_snr = 0;       ///< faded below sensitivity / FER
  std::uint64_t dropped_no_assoc = 0;  ///< no AP associated
  std::uint64_t dropped_handoff = 0;   ///< inside a handoff dead window
  std::uint64_t assoc_events = 0;
  std::uint64_t roam_events = 0;
  std::uint64_t disassoc_events = 0;
  std::uint64_t rate_bps_total = 0;  ///< sum of selected per-frame rates
  std::uint64_t rate_frames = 0;     ///< frames that selected a rate
  std::int64_t snr_millidb_total = 0;
  std::int64_t snr_millidb_min = INT64_MAX;
  std::int64_t snr_millidb_max = INT64_MIN;
};

class LossyRadioBackend final : public LinkBackend {
 public:
  /// Validates the configuration up front: throws LinkError
  /// (kBadRadioConfig) on an empty AP set, an empty/unsorted rate ladder,
  /// a rung below kMinLinkBitRate, or non-positive protocol timers.
  explicit LossyRadioBackend(RadioConfig cfg);

  /// Registers a mobile station and returns its id. `waypoints` must be
  /// non-empty and time-sorted (LinkError kBadRadioConfig otherwise).
  std::size_t add_station(std::string name,
                          std::vector<RadioWaypoint> waypoints);

  /// Binds both directions of the (a, port_a) <-> (b, port_b) link to
  /// `station` -- uplink and downlink share the station's channel state.
  /// LinkError kDuplicateBinding when either direction is already bound.
  void bind_link(NodeId a, PortId port_a, NodeId b, PortId port_b,
                 std::size_t station);

  [[nodiscard]] const char* kind() const override { return "lossy_radio"; }
  void validate_link(NodeId node, PortId port,
                     const LinkParams& params) override;
  [[nodiscard]] sim::SimTime serialize_estimate(NodeId node, PortId port,
                                                const Frame& frame,
                                                const LinkParams& params,
                                                sim::SimTime now) override;
  [[nodiscard]] LinkTxPlan plan_transmit(NodeId node, PortId port,
                                         const Frame& frame,
                                         const LinkParams& params,
                                         sim::SimTime now) override;

  [[nodiscard]] const RadioCounters& counters() const { return counters_; }
  [[nodiscard]] const RadioConfig& config() const { return cfg_; }

  /// Post-run introspection of one station (tests, reports).
  struct StationStatus {
    bool associated = false;
    std::size_t ap = 0;  ///< valid when associated
    std::uint64_t assoc_events = 0;
    std::uint64_t roam_events = 0;
  };
  [[nodiscard]] StationStatus station_status(std::size_t station) const;

 private:
  struct Station {
    std::string name;
    std::vector<RadioWaypoint> waypoints;
    sim::Rng fade_rng{0};  ///< reseeded from cfg.seed in add_station
    sim::Rng loss_rng{0};
    std::int64_t next_scan_ns = 0;
    int assoc_ap = -1;
    /// Association handshake / roam handoff completes here; frames before
    /// this instant are dead air.
    std::int64_t air_ready_ns = 0;
    std::uint64_t assoc_events = 0;
    std::uint64_t roam_events = 0;
  };

  static std::uint64_t link_key(NodeId node, PortId port) {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }
  Station& station_of(NodeId node, PortId port);
  /// Station position at `t_ns` (piecewise-linear waypoint track).
  static void position_at(const Station& s, std::int64_t t_ns, double& x,
                          double& y);
  /// Fade-free mean SNR from station `s` to AP `ap` at `t_ns` -- the pure
  /// function every association/roaming decision is made from.
  [[nodiscard]] double mean_snr_db(const Station& s, std::size_t ap,
                                   std::int64_t t_ns) const;
  /// Advances the scan/associate/roam state machine through every scan
  /// epoch <= now. Draws no randomness.
  void advance(Station& s, std::int64_t now_ns);
  /// Highest affordable rung for `snr_db`, or -1 below sensitivity.
  [[nodiscard]] int rate_for(double snr_db) const;

  RadioConfig cfg_;
  std::vector<Station> stations_;
  std::unordered_map<std::uint64_t, std::size_t> bindings_;
  RadioCounters counters_;
};

}  // namespace steelnet::net
