#include "net/network.hpp"

#include <stdexcept>

#include "obs/hub.hpp"

namespace steelnet::net {

Network::Network(sim::Simulator& sim)
    : sim_(sim), wired_(std::make_unique<WiredBackend>()) {}

Network::~Network() = default;

void Network::connect(NodeId a, PortId port_a, NodeId b, PortId port_b,
                      LinkParams params, LinkBackend* backend) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw sim::SimError("Network::connect: unknown node");
  }
  if (channels_.contains(key(a, port_a)) || channels_.contains(key(b, port_b))) {
    throw sim::SimError("Network::connect: port already connected");
  }
  if (params.bits_per_second == 0) {
    throw LinkError(LinkErrorCode::kZeroBitRate,
                    "Network::connect: bits_per_second must be > 0 (" +
                        nodes_.at(a)->name() + ":p" + std::to_string(port_a) +
                        " <-> " + nodes_.at(b)->name() + ":p" +
                        std::to_string(port_b) + ")");
  }
  if (params.bits_per_second < kMinLinkBitRate) {
    throw LinkError(LinkErrorCode::kBitRateTooLow,
                    "Network::connect: bits_per_second " +
                        std::to_string(params.bits_per_second) + " below " +
                        std::to_string(kMinLinkBitRate) + " (" +
                        nodes_.at(a)->name() + ":p" + std::to_string(port_a) +
                        " <-> " + nodes_.at(b)->name() + ":p" +
                        std::to_string(port_b) + ")");
  }
  LinkBackend* be = backend != nullptr ? backend : wired_.get();
  be->validate_link(a, port_a, params);
  be->validate_link(b, port_b, params);
  channels_.emplace(key(a, port_a),
                    Channel{b, port_b, params, sim::SimTime::zero(), be});
  channels_.emplace(key(b, port_b),
                    Channel{a, port_a, params, sim::SimTime::zero(), be});
}

bool Network::has_channel(NodeId node, PortId port) const {
  return channels_.contains(key(node, port));
}

bool Network::channel_idle(NodeId node, PortId port) const {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) return false;
  return it->second.busy_until <= sim_.now();
}

std::uint64_t Network::channel_rate(NodeId node, PortId port) const {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) {
    throw sim::SimError("Network::channel_rate: port not connected");
  }
  return it->second.params.bits_per_second;
}

LinkBackend& Network::channel_backend(NodeId node, PortId port) const {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) {
    throw sim::SimError("Network::channel_backend: port not connected");
  }
  return *it->second.backend;
}

sim::SimTime Network::serialization_estimate(NodeId node, PortId port,
                                             const Frame& frame) {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) {
    throw sim::SimError("Network::serialization_estimate: port not connected");
  }
  Channel& ch = it->second;
  return ch.backend->serialize_estimate(node, port, frame, ch.params,
                                        sim_.now());
}

std::uint32_t Network::link_track(Channel& ch, NodeId node, PortId port) {
  if (ch.obs_track == static_cast<std::uint32_t>(-1)) {
    ch.obs_track = obs_->track("link:" + nodes_.at(node)->name() + ":p" +
                               std::to_string(port));
  }
  return ch.obs_track;
}

sim::SimTime Network::transmit(NodeId node, PortId port, Frame frame) {
  ++counters_.frames_offered;
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) {
    ++counters_.frames_dropped_no_link;
    pool_.recycle(std::move(frame));
    return sim_.now();
  }
  Channel& ch = it->second;
  if (ch.busy_until > sim_.now()) {
    throw sim::SimError("Network::transmit on busy channel from node " +
                        nodes_.at(node)->name());
  }
  // Backend verdict first: it sets how long the frame occupies the medium
  // and how long it flies, and may kill it outright (radio fade). Wired
  // reproduces the legacy fixed-rate math exactly.
  const LinkTxPlan plan =
      ch.backend->plan_transmit(node, port, frame, ch.params, sim_.now());
  const sim::SimTime tx_done = sim_.now() + plan.serialize;
  sim::SimTime arrival = tx_done + plan.propagate;
  ch.busy_until = tx_done;
  ++ch.frames_sent;

  // Fault verdict before the obs link span so the span reflects the true
  // (possibly jittered/reordered) arrival, or is replaced by the fault
  // event if the frame dies on this link.
  bool survives = true;
  bool duplicate = false;
  if (faults_ != nullptr) {
    const FaultInjector::TransitVerdict v =
        faults_->on_transit(node, port, frame, sim_.now());
    survives = !v.drop;
    duplicate = v.duplicate;
    arrival += v.extra_delay;
    if (obs_ != nullptr && frame.trace_id != 0) {
      if (v.corrupted) {
        obs_->fault_event(frame.trace_id, link_track(ch, node, port),
                          sim_.now(), "corrupt");
      }
      if (v.duplicate) {
        obs_->fault_event(frame.trace_id, link_track(ch, node, port),
                          sim_.now(), "duplicate");
      }
      if (v.reordered) {
        obs_->fault_event(frame.trace_id, link_track(ch, node, port),
                          sim_.now(), "reorder");
      }
      if (v.drop) {
        obs_->fault_event(frame.trace_id, link_track(ch, node, port),
                          sim_.now(), v.cause);
      }
    }
  }

  if (survives && !plan.survives) {
    // The medium itself killed the frame. The fault plane's verdict wins
    // when both fire (its cause was already counted above), so every
    // offered frame still resolves to exactly one ledger bucket.
    survives = false;
    ++counters_.frames_dropped_backend;
    if (obs_ != nullptr && frame.trace_id != 0) {
      obs_->fault_event(frame.trace_id, link_track(ch, node, port), sim_.now(),
                        plan.cause);
    }
  }

  if (survives) {
    if (obs_ != nullptr && frame.trace_id != 0) {
      obs_->link_transit(frame.trace_id, link_track(ch, node, port),
                         sim_.now(), arrival);
    }
    const NodeId peer_node = ch.peer_node;
    const PortId peer_port = ch.peer_port;
    const std::size_t wire = frame.wire_bytes();
    // The fault plane's duplicate re-enqueue draws its copy from the
    // pool, so steady duplication storms do not churn the allocator.
    std::optional<Frame> copy;
    if (duplicate) copy = pool_.clone(frame);
    const std::uint64_t trace_id = frame.trace_id;
    ++counters_.frames_in_flight;
    ch.pending[0].trace_id = trace_id;
    ch.pending[0].ev =
        sim_.schedule_at(arrival, [this, peer_node, peer_port, wire,
                                   f = std::move(frame)]() mutable {
          deliver_frame(peer_node, peer_port, wire, std::move(f));
        });
    ch.pending[1] = PendingDelivery{};
    if (copy.has_value()) {
      ++counters_.frames_in_flight;
      ch.pending[1].trace_id = trace_id;
      ch.pending[1].ev =
          sim_.schedule_at(arrival, [this, peer_node, peer_port, wire,
                                     f = std::move(*copy)]() mutable {
            deliver_frame(peer_node, peer_port, wire, std::move(f));
          });
    }
  } else {
    // Killed on the wire (link down, loss, sender down, backend): the
    // payload buffer goes back to the pool once the ledger has seen it.
    pool_.recycle(std::move(frame));
    ch.pending[0] = PendingDelivery{};
    ch.pending[1] = PendingDelivery{};
  }
  // Tell the sender its channel is free again (fires after the frame's
  // last bit leaves, before/independent of delivery at the peer -- even a
  // dead medium occupies the NIC for the serialization time).
  sim_.schedule_at(tx_done, [this, node, port] {
    nodes_.at(node)->on_channel_idle(port);
  });
  return tx_done;
}

std::uint64_t Network::kill_in_flight(NodeId node, PortId port,
                                      const char* cause) {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) return 0;
  Channel& ch = it->second;
  if (ch.busy_until <= sim_.now()) return 0;  // nothing mid-serialization
  std::uint64_t killed = 0;
  for (PendingDelivery& p : ch.pending) {
    if (!p.ev.pending()) continue;
    // Lazy cancel: the Frame inside the event's closure is destroyed when
    // the heap entry is reclaimed, so the buffer is freed, not pooled --
    // deterministic either way.
    p.ev.cancel();
    --counters_.frames_in_flight;
    ++killed;
    if (obs_ != nullptr && p.trace_id != 0) {
      obs_->fault_event(p.trace_id, link_track(ch, node, port), sim_.now(),
                        cause);
    }
    p = PendingDelivery{};
  }
  return killed;
}

void Network::deliver_frame(NodeId peer_node, PortId peer_port,
                            std::size_t wire, Frame frame) {
  --counters_.frames_in_flight;
  if (faults_ != nullptr && !faults_->node_alive(peer_node)) {
    if (obs_ != nullptr && frame.trace_id != 0) {
      obs_->fault_event(frame.trace_id,
                        obs_->track(nodes_.at(peer_node)->name()), sim_.now(),
                        "receiver_down");
    }
    faults_->on_receiver_down(peer_node, frame, sim_.now());
    pool_.recycle(std::move(frame));
    return;
  }
  ++counters_.frames_delivered;
  counters_.bytes_delivered += wire;
  nodes_.at(peer_node)->handle_frame(std::move(frame), peer_port);
}

void Network::register_metrics(obs::ObsHub& hub,
                               const std::string& node_label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({node_label, "net", "frames_offered"},
                   &counters_.frames_offered);
  reg.bind_counter({node_label, "net", "frames_delivered"},
                   &counters_.frames_delivered);
  reg.bind_counter({node_label, "net", "frames_dropped_no_link"},
                   &counters_.frames_dropped_no_link);
  reg.bind_counter({node_label, "net", "frames_in_flight"},
                   &counters_.frames_in_flight);
  reg.bind_counter({node_label, "net", "bytes_delivered"},
                   &counters_.bytes_delivered);
}

std::optional<std::pair<NodeId, PortId>> Network::peer(NodeId node,
                                                       PortId port) const {
  const auto it = channels_.find(key(node, port));
  if (it == channels_.end()) return std::nullopt;
  return std::make_pair(it->second.peer_node, it->second.peer_port);
}

std::vector<std::pair<PortId, NodeId>> Network::ports_of(NodeId node) const {
  std::vector<std::pair<PortId, NodeId>> out;
  for (const auto& [k, ch] : channels_) {
    if ((k >> 16) == node) {
      out.emplace_back(static_cast<PortId>(k & 0xffff), ch.peer_node);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace steelnet::net
