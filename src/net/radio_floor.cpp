#include "net/radio_floor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <utility>

#include "faults/instaplc_testbed.hpp"
#include "faults/scenario_runner.hpp"
#include "net/radio_backend.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace steelnet::net {

namespace {

/// The SNR ladder: healthy link down to below the association floor.
/// With the default geometry (station 10 m from its AP) the mean SNR is
/// 44 dB + offset, so the rungs land at 44/29/19/14/9/4 dB -- frame-loss
/// probabilities of ~0, ~1e-5, ~1%, ~21%, ~88% and "never associates".
constexpr double kSnrLadderDb[] = {0.0, -15.0, -25.0, -30.0, -35.0, -40.0};
constexpr std::size_t kLadderRungs = std::size(kSnrLadderDb);

struct ScenarioRow {
  const char* short_name;  ///< cell-name prefix
  const char* scenario;    ///< matrix row; "clean" = no faults
};
constexpr ScenarioRow kMatrix[] = {
    {"clean", "clean"},       {"silent", "silent_primary"},
    {"loss", "loss_burst"},   {"flap", "link_flap"},
    {"crash", "primary_crash"},
};
constexpr std::size_t kMatrixRows = std::size(kMatrix);

/// Rate-adaptation ladder shared by every cell (802.11-flavored MCS
/// steps; bottom rung doubles as the receiver sensitivity floor).
std::vector<RadioRateStep> rate_ladder() {
  return {{2.0, 6'000'000},   {5.0, 12'000'000},  {9.0, 24'000'000},
          {12.0, 36'000'000}, {15.0, 48'000'000}, {18.0, 54'000'000},
          {25.0, 100'000'000}};
}

faults::FaultScenario matrix_scenario(const char* name, std::uint64_t seed) {
  const std::string n = name;
  if (n == "silent_primary") return faults::silent_primary_scenario(seed);
  if (n == "loss_burst") return faults::loss_burst_scenario(seed);
  if (n == "link_flap") return faults::link_flap_scenario(seed);
  if (n == "primary_crash") return faults::primary_crash_scenario(seed);
  faults::FaultScenario sc;
  sc.name = "clean";
  sc.seed = seed;
  return sc;
}

/// Everything one cell owns; only its shard's worker thread touches it.
struct FloorCell {
  std::string scenario;
  std::int64_t snr_offset_millidb = 0;
  std::uint64_t seed = 0;
  std::unique_ptr<LossyRadioBackend> backend;
  std::unique_ptr<faults::InstaPlcTestbed> testbed;
};

std::unique_ptr<FloorCell> build_cell(sim::ShardedSimulator::Cell& cell,
                                      const RadioFloorOptions& opt,
                                      const std::string& scenario_name,
                                      double snr_offset_db, bool roaming) {
  const sim::Rng cell_rng = sim::Rng(opt.seed).derive(cell.name());

  auto fc = std::make_unique<FloorCell>();
  fc->scenario = scenario_name;
  fc->snr_offset_millidb =
      static_cast<std::int64_t>(snr_offset_db * 1000.0);
  fc->seed = cell_rng.derive("scenario").next_u64();

  RadioConfig rcfg;
  rcfg.rates = rate_ladder();
  rcfg.snr_offset_db = snr_offset_db;
  rcfg.seed = cell_rng.derive("radio").next_u64();
  std::vector<RadioWaypoint> track;
  if (roaming) {
    // Two APs 20 m apart; the station shuttles between them every 400 ms,
    // roaming near the midpoint once the far AP wins by the hysteresis.
    rcfg.aps = {{"ap0", 0.0, 0.0}, {"ap1", 20.0, 0.0}};
    rcfg.roam_hysteresis_db = 2.0;
    for (int leg = 0; leg < 8; ++leg) {
      track.push_back({sim::milliseconds(400 * leg),
                       leg % 2 == 0 ? 2.0 : 18.0, 0.0});
    }
  } else {
    // One AP, station parked 10 m away: mean SNR 44 dB + ladder offset.
    rcfg.aps = {{"ap0", 0.0, 0.0}};
    track.push_back({sim::SimTime::zero(), 10.0, 0.0});
  }
  fc->backend = std::make_unique<LossyRadioBackend>(rcfg);
  const std::size_t station = fc->backend->add_station("agv", std::move(track));

  faults::InstaPlcTestbed::Config tcfg;
  tcfg.opts.horizon = opt.horizon;
  tcfg.opts.switchover_cycles = opt.switchover_cycles;
  tcfg.opts.io_cycle = opt.io_cycle;
  tcfg.device_backend = fc->backend.get();
  LossyRadioBackend* be = fc->backend.get();
  tcfg.before_device_connect = [be, station](NodeId dev, PortId dev_port,
                                             NodeId sw, PortId sw_port) {
    be->bind_link(dev, dev_port, sw, sw_port, station);
  };
  fc->testbed = std::make_unique<faults::InstaPlcTestbed>(
      cell.sim(), matrix_scenario(fc->scenario.c_str(), fc->seed),
      std::move(tcfg));
  fc->testbed->start();
  return fc;
}

}  // namespace

RadioFloorResult run_radio_floor(const RadioFloorOptions& opt) {
  sim::ShardedSimulator ss;
  std::vector<std::unique_ptr<FloorCell>> floor_cells;

  // Fault matrix x SNR ladder, scenario-major; then the roaming storms.
  // No inter-cell channels: every cell's lookahead is infinite.
  for (const ScenarioRow& row : kMatrix) {
    for (const double off : kSnrLadderDb) {
      char name[32];
      std::snprintf(name, sizeof(name), "%s_snr%02d", row.short_name,
                    static_cast<int>(-off));
      const std::uint32_t id = ss.add_cell(name);
      floor_cells.push_back(
          build_cell(ss.cell(id), opt, row.scenario, off, /*roaming=*/false));
    }
  }
  for (const char* scen : {"clean", "link_flap"}) {
    const std::string name =
        std::string("roam_") + (std::string(scen) == "clean" ? "clean" : "flap");
    const std::uint32_t id = ss.add_cell(name);
    floor_cells.push_back(
        build_cell(ss.cell(id), opt, scen, 0.0, /*roaming=*/true));
  }

  RadioFloorResult result;
  result.horizon_ns = opt.horizon.nanos();
  faults::RunnerOptions bound_opts;
  bound_opts.switchover_cycles = opt.switchover_cycles;
  bound_opts.io_cycle = opt.io_cycle;
  result.watchdog_bound_ns = faults::switchover_bound(bound_opts).nanos();
  result.io_cycle_ns = opt.io_cycle.nanos();

  static const sim::LptPartitioner kMeasuredStrategy;
  if (opt.measured_partition) {
    if (opt.measured_weights.empty()) {
      throw sim::PartitionError(
          sim::PartitionErrorCode::kProfileMismatch,
          "run_radio_floor: measured partition needs measured_weights");
    }
    ss.set_partitioner(&kMeasuredStrategy);
    ss.set_measured_weights(opt.measured_weights);
  }
  result.stats = ss.run(opt.horizon, opt.shards);

  // Placement diagnostics, judged by the rates this run measured.
  // Diagnostic-only: excluded from the fingerprinted artifacts.
  result.partition = ss.partition_map();
  result.profile = ss.rate_profile();
  const sim::PartitionStats pstats =
      sim::partition_stats(result.profile.weights(), result.partition);
  result.shard_events = pstats.shard_load;
  result.imbalance_permille = pstats.imbalance_permille();

  result.cells.reserve(floor_cells.size());
  for (std::size_t i = 0; i < floor_cells.size(); ++i) {
    sim::ShardedSimulator::Cell& cell = ss.cell(static_cast<std::uint32_t>(i));
    FloorCell& fc = *floor_cells[i];
    const faults::ScenarioOutcome out = fc.testbed->collect();
    const RadioCounters& rc = fc.backend->counters();

    RadioCellReport r;
    r.cell = static_cast<std::uint32_t>(i);
    r.name = cell.name();
    r.scenario = fc.scenario;
    r.seed = fc.seed;
    r.snr_offset_millidb = fc.snr_offset_millidb;
    r.events_executed = cell.sim().events_executed();
    r.switched_over = out.switched_over ? 1 : 0;
    r.switchover_latency_ns = out.switchover_latency.nanos();
    // Fold in the dead tail: a device that stopped producing outputs (or
    // never started) is a gap up to the horizon, not a gap of zero.
    const std::int64_t tail =
        fc.testbed->saw_output()
            ? opt.horizon.nanos() - fc.testbed->last_valid_output().nanos()
            : opt.horizon.nanos();
    r.max_output_gap_ns = std::max(out.max_output_gap.nanos(), tail);
    r.watchdog_trips = out.device_watchdog_trips;
    r.frames_offered = out.net.frames_offered;
    r.frames_delivered = out.net.frames_delivered;
    r.dropped_backend = out.net.frames_dropped_backend;
    r.residual = out.residual;
    r.radio_planned = rc.frames_planned;
    r.radio_dropped_snr = rc.dropped_snr;
    r.radio_dropped_no_assoc = rc.dropped_no_assoc;
    r.radio_dropped_handoff = rc.dropped_handoff;
    r.assoc_events = rc.assoc_events;
    r.roam_events = rc.roam_events;
    r.disassoc_events = rc.disassoc_events;
    r.rate_avg_bps =
        rc.rate_frames == 0 ? 0 : rc.rate_bps_total / rc.rate_frames;
    const std::uint64_t faded =
        rc.frames_planned - rc.dropped_no_assoc - rc.dropped_handoff;
    r.snr_avg_millidb =
        faded == 0 ? 0
                   : rc.snr_millidb_total / static_cast<std::int64_t>(faded);
    r.metrics_fp = out.metrics_fp;
    r.trace_fp = out.trace_fp;
    result.cells.push_back(std::move(r));
  }
  return result;
}

bool degradation_monotone(const RadioFloorResult& result) {
  if (result.io_cycle_ns <= 0) return false;
  const auto gap_cycles = [&](const RadioCellReport& r) {
    return r.max_output_gap_ns / result.io_cycle_ns;
  };
  for (std::size_t s = 0; s < kMatrixRows; ++s) {
    const std::size_t base = s * kLadderRungs;
    if (base + kLadderRungs > result.cells.size()) return false;
    for (std::size_t o = 1; o < kLadderRungs; ++o) {
      const RadioCellReport& prev = result.cells[base + o - 1];
      const RadioCellReport& cur = result.cells[base + o];
      if (cur.drop_permille() < prev.drop_permille()) return false;
      if (gap_cycles(cur) < gap_cycles(prev)) return false;
    }
    const RadioCellReport& healthy = result.cells[base];
    const RadioCellReport& worst = result.cells[base + kLadderRungs - 1];
    if (gap_cycles(worst) <= gap_cycles(healthy)) return false;
    if (worst.drop_permille() <= healthy.drop_permille()) return false;
  }
  return true;
}

// --- artifacts --------------------------------------------------------------
//
// All three renderers read RadioCellReports only -- never ShardRunStats'
// timing-dependent fields -- so the byte streams are invariant to shard
// count and thread scheduling.

std::string RadioFloorResult::to_prometheus() const {
  obs::MetricsRegistry reg;
  for (const RadioCellReport& r : cells) {
    const auto add = [&](const char* name, std::uint64_t v) {
      reg.make_counter({r.name, "radio", name}) += v;
    };
    add("events_executed", r.events_executed);
    add("switched_over", r.switched_over);
    add("switchover_latency_ns",
        static_cast<std::uint64_t>(r.switchover_latency_ns));
    add("max_output_gap_ns", static_cast<std::uint64_t>(r.max_output_gap_ns));
    add("watchdog_trips", r.watchdog_trips);
    add("frames_offered", r.frames_offered);
    add("frames_delivered", r.frames_delivered);
    add("dropped_backend", r.dropped_backend);
    add("radio_planned", r.radio_planned);
    add("radio_dropped_snr", r.radio_dropped_snr);
    add("radio_dropped_no_assoc", r.radio_dropped_no_assoc);
    add("radio_dropped_handoff", r.radio_dropped_handoff);
    add("assoc_events", r.assoc_events);
    add("roam_events", r.roam_events);
    add("disassoc_events", r.disassoc_events);
    add("rate_avg_bps", r.rate_avg_bps);
    add("drop_permille", r.drop_permille());
    // Per-cell load-rate gauge (the calibration-profile weight). Radio
    // cells exchange no cross-shard messages, so it is just the event
    // count -- deterministic, hence safe in the fingerprinted export.
    reg.make_gauge({r.name, "radio", "load_rate"})
        .set(static_cast<double>(r.events_executed));
  }
  return reg.to_prometheus();
}

std::string RadioFloorResult::to_chrome_trace() const {
  // Hand-rendered trace-event JSON, integer-only formatting.
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"radio_floor\"}}";
  char buf[512];
  const auto us = [](std::int64_t ns) { return ns / 1000; };
  const auto frac = [](std::int64_t ns) { return ns % 1000; };
  for (const RadioCellReport& r : cells) {
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":0.000,\"dur\":%" PRId64 ".%03" PRId64
                  ",\"args\":{\"events\":%" PRIu64 ",\"drop_permille\":%" PRIu64
                  "}}",
                  r.name.c_str(), r.cell, us(horizon_ns), frac(horizon_ns),
                  r.events_executed, r.drop_permille());
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",{\"name\":\"gap\",\"ph\":\"C\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%" PRId64 ".%03" PRId64
                  ",\"args\":{\"max_output_gap_ns\":%" PRId64
                  ",\"roams\":%" PRIu64 "}}",
                  r.cell, us(horizon_ns), frac(horizon_ns),
                  r.max_output_gap_ns, r.roam_events);
    out += buf;
  }
  out += "]}";
  return out;
}

std::string RadioFloorResult::to_csv() const {
  std::string out =
      "cell,name,scenario,seed,snr_offset_millidb,events,switched_over,"
      "switchover_latency_ns,max_output_gap_ns,watchdog_bound_ns,"
      "watchdog_trips,frames_offered,frames_delivered,dropped_backend,"
      "radio_planned,radio_dropped_snr,radio_dropped_no_assoc,"
      "radio_dropped_handoff,drop_permille,assoc_events,roam_events,"
      "disassoc_events,rate_avg_bps,snr_avg_millidb,residual,metrics_fp,"
      "trace_fp\n";
  char buf[768];
  for (const RadioCellReport& r : cells) {
    std::snprintf(
        buf, sizeof(buf),
        "%" PRIu32 ",%s,%s,%" PRIu64 ",%" PRId64 ",%" PRIu64 ",%" PRIu32
        ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
        ",%" PRIu64 ",%" PRId64 ",%" PRId64 ",%016" PRIx64 ",%016" PRIx64
        "\n",
        r.cell, r.name.c_str(), r.scenario.c_str(), r.seed,
        r.snr_offset_millidb, r.events_executed, r.switched_over,
        r.switchover_latency_ns, r.max_output_gap_ns, watchdog_bound_ns,
        r.watchdog_trips, r.frames_offered, r.frames_delivered,
        r.dropped_backend, r.radio_planned, r.radio_dropped_snr,
        r.radio_dropped_no_assoc, r.radio_dropped_handoff, r.drop_permille(),
        r.assoc_events, r.roam_events, r.disassoc_events, r.rate_avg_bps,
        r.snr_avg_millidb, r.residual, r.metrics_fp, r.trace_fp);
    out += buf;
  }
  return out;
}

std::uint64_t RadioFloorResult::fingerprint() const {
  std::uint64_t h = faults::fnv1a64(to_csv());
  h ^= faults::fnv1a64(to_prometheus()) * 0x100000001b3ULL;
  h ^= faults::fnv1a64(to_chrome_trace()) * 0x100000001b3ULL;
  return h;
}

}  // namespace steelnet::net
