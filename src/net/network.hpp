// steelnet::net -- the Network: owns nodes and links, moves frames.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::net {

/// Physical characteristics of one link (applied to both directions).
struct LinkParams {
  std::uint64_t bits_per_second = 1'000'000'000;  ///< 1 GbE default
  sim::SimTime propagation = sim::nanoseconds(500);  ///< ~100 m of fiber
};

/// Aggregate per-network counters.
///
/// Conservation ledger: every transmit() offer resolves to exactly one of
/// {delivered, dropped_no_link, a FaultInjector drop cause}, plus the
/// frames currently between wire and peer (frames_in_flight). With a
/// fault plane attached,
///   frames_offered + duplicates == frames_delivered + frames_dropped_no_link
///                                  + injector wire drops + frames_in_flight
/// holds at every instant -- the invariant the faults test harness sweeps.
struct NetworkCounters {
  std::uint64_t frames_offered = 0;    ///< transmit() calls
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_no_link = 0;
  std::uint64_t frames_in_flight = 0;  ///< scheduled, not yet delivered
  std::uint64_t bytes_delivered = 0;
};

/// Owns all nodes and the channel (directed-link) table.
///
/// Transmission model: each directed channel serializes one frame at a
/// time (bandwidth), then the frame propagates (fixed delay) and is handed
/// to the peer's handle_frame. Nodes queue frames themselves (EgressQueue)
/// and are notified via on_channel_idle when the channel frees up, which
/// is what lets priority queueing and TSN gates reorder traffic.
class Network {
 public:
  explicit Network(sim::Simulator& sim) : sim_(sim) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; the network takes ownership. Returns its id.
  template <typename T, typename... Args>
  T& add_node(std::string name, Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->attach(*this, id, std::move(name));
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Connects a.port_a <-> b.port_b with symmetric parameters.
  void connect(NodeId a, PortId port_a, NodeId b, PortId port_b,
               LinkParams params = {});

  /// True if (node, port) has an attached idle channel.
  [[nodiscard]] bool channel_idle(NodeId node, PortId port) const;
  [[nodiscard]] bool has_channel(NodeId node, PortId port) const;
  /// Channel bit rate of (node, port); throws if not connected.
  [[nodiscard]] std::uint64_t channel_rate(NodeId node, PortId port) const;

  /// Starts transmitting `frame` out of (node, port).
  ///
  /// Precondition: the channel exists and is idle (assert via
  /// channel_idle); callers are expected to queue otherwise. Returns the
  /// time at which the channel becomes idle again.
  sim::SimTime transmit(NodeId node, PortId port, Frame frame);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Peer of (node, port): (peer_node, peer_port), if connected.
  [[nodiscard]] std::optional<std::pair<NodeId, PortId>> peer(
      NodeId node, PortId port) const;

  /// All (port, peer) pairs of a node, in port order.
  [[nodiscard]] std::vector<std::pair<PortId, NodeId>> ports_of(
      NodeId node) const;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const NetworkCounters& counters() const { return counters_; }

  /// Recycled payload buffers for the data path. Producers draw frames
  /// with `frame_pool().make(bytes)`; every frame the kernel kills (drop,
  /// filter, fault absorption) returns its buffer here, and application
  /// receivers may close the loop by recycling frames they consumed.
  [[nodiscard]] FramePool& frame_pool() { return pool_; }

  /// Attaches/detaches the observability plane. Not owned; must outlive
  /// the network (or be detached first). nullptr = observability off --
  /// every hook site in the data path then costs one pointer-null branch.
  void set_obs(obs::ObsHub* hub) { obs_ = hub; }
  [[nodiscard]] obs::ObsHub* obs() const { return obs_; }

  /// Attaches/detaches the fault-injection plane. Not owned; must outlive
  /// the network (or be detached first). nullptr = faults off -- every
  /// hook site in the data path then costs one pointer-null branch.
  void set_faults(FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

  /// Binds the network-level delivery counters onto `registry` under
  /// `node_label/net/...`.
  void register_metrics(obs::ObsHub& hub,
                        const std::string& node_label = "network") const;

 private:
  /// Delivery at the peer: consults the fault plane (a crashed receiver
  /// absorbs the frame) and keeps the conservation ledger balanced.
  void deliver_frame(NodeId peer_node, PortId peer_port, std::size_t wire,
                     Frame frame);

  struct Channel {
    NodeId peer_node;
    PortId peer_port;
    LinkParams params;
    sim::SimTime busy_until;
    std::uint64_t frames_sent = 0;
    /// Cached obs::TrackId of this directed channel (interned lazily on
    /// the first traced frame; invalid until then).
    std::uint32_t obs_track = static_cast<std::uint32_t>(-1);
  };

  static std::uint64_t key(NodeId node, PortId port) {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, Channel> channels_;
  FramePool pool_;
  NetworkCounters counters_;
  obs::ObsHub* obs_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace steelnet::net
