// steelnet::net -- the Network: owns nodes and links, moves frames.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/frame.hpp"
#include "net/frame_pool.hpp"
#include "net/link_backend.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace steelnet::obs {
class ObsHub;
}

namespace steelnet::net {

/// Aggregate per-network counters.
///
/// Conservation ledger: every transmit() offer resolves to exactly one of
/// {delivered, dropped_no_link, a backend drop, a FaultInjector drop
/// cause}, plus the frames currently between wire and peer
/// (frames_in_flight). With a fault plane attached,
///   frames_offered + duplicates == frames_delivered + frames_dropped_no_link
///                                  + frames_dropped_backend
///                                  + injector wire drops + frames_in_flight
/// holds at every instant -- the invariant the faults test harness sweeps.
struct NetworkCounters {
  std::uint64_t frames_offered = 0;    ///< transmit() calls
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped_no_link = 0;
  std::uint64_t frames_in_flight = 0;  ///< scheduled, not yet delivered
  std::uint64_t bytes_delivered = 0;
  /// Frames the link backend refused to carry (radio fades, scripted test
  /// impairment). Always 0 on wired links.
  std::uint64_t frames_dropped_backend = 0;
};

/// Owns all nodes and the channel (directed-link) table.
///
/// Transmission model: each directed channel serializes one frame at a
/// time (bandwidth), then the frame propagates (fixed delay) and is handed
/// to the peer's handle_frame. Nodes queue frames themselves (EgressQueue)
/// and are notified via on_channel_idle when the channel frees up, which
/// is what lets priority queueing and TSN gates reorder traffic.
class Network {
 public:
  explicit Network(sim::Simulator& sim);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a node; the network takes ownership. Returns its id.
  template <typename T, typename... Args>
  T& add_node(std::string name, Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *node;
    const NodeId id = static_cast<NodeId>(nodes_.size());
    node->attach(*this, id, std::move(name));
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Connects a.port_a <-> b.port_b with symmetric parameters. Rejects
  /// unusable bit rates (zero or below kMinLinkBitRate) with a typed
  /// LinkError instead of letting serialization_time divide by zero or
  /// overflow SimTime mid-run. `backend` (not owned; must outlive the
  /// network) drives both directions; nullptr selects the network's
  /// built-in WiredBackend.
  void connect(NodeId a, PortId port_a, NodeId b, PortId port_b,
               LinkParams params = {}, LinkBackend* backend = nullptr);

  /// True if (node, port) has an attached idle channel.
  [[nodiscard]] bool channel_idle(NodeId node, PortId port) const;
  [[nodiscard]] bool has_channel(NodeId node, PortId port) const;
  /// Channel bit rate of (node, port); throws if not connected.
  [[nodiscard]] std::uint64_t channel_rate(NodeId node, PortId port) const;
  /// Backend driving (node, port); throws if not connected.
  [[nodiscard]] LinkBackend& channel_backend(NodeId node, PortId port) const;
  /// Serialization time the head frame would take on (node, port), per
  /// the channel's backend (gate/guard-band checks). Throws if not
  /// connected. Non-const: a backend may advance lazy deterministic
  /// state (never its random streams) to answer.
  [[nodiscard]] sim::SimTime serialization_estimate(NodeId node, PortId port,
                                                    const Frame& frame);

  /// Starts transmitting `frame` out of (node, port).
  ///
  /// Precondition: the channel exists and is idle (assert via
  /// channel_idle); callers are expected to queue otherwise. Returns the
  /// time at which the channel becomes idle again.
  sim::SimTime transmit(NodeId node, PortId port, Frame frame);

  /// Kills the frame(s) still *serializing* out of (node, port) -- the
  /// fault plane calls this when a link hard-downs mid-frame, so the cut
  /// frame resolves to exactly one ledger cause instead of arriving off a
  /// dead wire. Cancels the pending delivery event(s) (primary plus any
  /// fault-plane duplicate), decrements frames_in_flight once per kill,
  /// and emits an obs fault event per traced frame. The channel still
  /// re-idles at the original tx_done: the NIC was occupied either way.
  /// Returns the number of frames killed (0 when the channel is idle,
  /// unconnected, or the frame already finished serializing).
  std::uint64_t kill_in_flight(NodeId node, PortId port, const char* cause);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Peer of (node, port): (peer_node, peer_port), if connected.
  [[nodiscard]] std::optional<std::pair<NodeId, PortId>> peer(
      NodeId node, PortId port) const;

  /// All (port, peer) pairs of a node, in port order.
  [[nodiscard]] std::vector<std::pair<PortId, NodeId>> ports_of(
      NodeId node) const;

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] const NetworkCounters& counters() const { return counters_; }

  /// Recycled payload buffers for the data path. Producers draw frames
  /// with `frame_pool().make(bytes)`; every frame the kernel kills (drop,
  /// filter, fault absorption) returns its buffer here, and application
  /// receivers may close the loop by recycling frames they consumed.
  [[nodiscard]] FramePool& frame_pool() { return pool_; }

  /// Attaches/detaches the observability plane. Not owned; must outlive
  /// the network (or be detached first). nullptr = observability off --
  /// every hook site in the data path then costs one pointer-null branch.
  void set_obs(obs::ObsHub* hub) { obs_ = hub; }
  [[nodiscard]] obs::ObsHub* obs() const { return obs_; }

  /// Attaches/detaches the fault-injection plane. Not owned; must outlive
  /// the network (or be detached first). nullptr = faults off -- every
  /// hook site in the data path then costs one pointer-null branch.
  void set_faults(FaultInjector* injector) { faults_ = injector; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

  /// Binds the network-level delivery counters onto `registry` under
  /// `node_label/net/...`.
  void register_metrics(obs::ObsHub& hub,
                        const std::string& node_label = "network") const;

 private:
  /// Delivery at the peer: consults the fault plane (a crashed receiver
  /// absorbs the frame) and keeps the conservation ledger balanced.
  void deliver_frame(NodeId peer_node, PortId peer_port, std::size_t wire,
                     Frame frame);

  /// One not-yet-delivered frame of the current serialization window:
  /// the cancellable delivery event plus the trace id kill_in_flight
  /// reports to obs (the Frame itself lives inside the event's closure).
  struct PendingDelivery {
    sim::EventHandle ev;
    std::uint64_t trace_id = 0;
  };

  struct Channel {
    NodeId peer_node;
    PortId peer_port;
    LinkParams params;
    sim::SimTime busy_until;
    LinkBackend* backend = nullptr;
    std::uint64_t frames_sent = 0;
    /// Cached obs::TrackId of this directed channel (interned lazily on
    /// the first traced frame; invalid until then).
    std::uint32_t obs_track = static_cast<std::uint32_t>(-1);
    /// Deliveries scheduled by the most recent transmit (primary and an
    /// optional fault duplicate) -- the frames a mid-serialization
    /// hard-down can still cancel. Overwritten by the next transmit.
    PendingDelivery pending[2];
  };

  /// Interns (lazily) and returns the obs track of the directed channel.
  std::uint32_t link_track(Channel& ch, NodeId node, PortId port);

  static std::uint64_t key(NodeId node, PortId port) {
    return (static_cast<std::uint64_t>(node) << 16) | port;
  }

  sim::Simulator& sim_;
  /// Default driver for channels connected without an explicit backend.
  std::unique_ptr<LinkBackend> wired_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, Channel> channels_;
  FramePool pool_;
  NetworkCounters counters_;
  obs::ObsHub* obs_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace steelnet::net
