// steelnet::net -- topology builders and static shortest-path routing.
//
// Industrial networks use line/ring/star/tree layouts engineered around the
// physical plant (§2.3 of the paper); data centers use leaf-spine/Clos.
// All of them are built here over the same Network substrate so experiments
// can swap topologies without touching application code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/host_node.hpp"
#include "net/network.hpp"
#include "net/switch_node.hpp"

namespace steelnet::net {

/// Deterministic locally-administered MAC for host index `i`.
[[nodiscard]] MacAddress host_mac(std::uint32_t i);

/// A built topology: node ids of all hosts and switches, in creation order.
struct Fabric {
  Network* net = nullptr;
  std::vector<NodeId> hosts;
  std::vector<NodeId> switches;

  [[nodiscard]] HostNode& host(std::size_t i) const;
  [[nodiscard]] SwitchNode& sw(std::size_t i) const;
  [[nodiscard]] std::size_t host_count() const { return hosts.size(); }
};

struct TopologyOptions {
  LinkParams host_link{};   ///< host <-> switch links
  LinkParams trunk_link{};  ///< switch <-> switch links
  SwitchConfig switch_cfg{};
  std::string name_prefix = "n";
};

/// `n_switches` in a line, `hosts_per_switch` hosts on each.
Fabric build_line(Network& net, std::size_t n_switches,
                  std::size_t hosts_per_switch, TopologyOptions opt = {});

/// Classic industrial ring of `n_switches`.
Fabric build_ring(Network& net, std::size_t n_switches,
                  std::size_t hosts_per_switch, TopologyOptions opt = {});

/// One switch, `n_hosts` spokes.
Fabric build_star(Network& net, std::size_t n_hosts, TopologyOptions opt = {});

/// Balanced tree of switches with `fanout` children per switch and
/// `hosts_per_leaf` hosts on each leaf switch.
Fabric build_tree(Network& net, std::size_t depth, std::size_t fanout,
                  std::size_t hosts_per_leaf, TopologyOptions opt = {});

/// Two-tier leaf-spine: every leaf connects to every spine.
Fabric build_leaf_spine(Network& net, std::size_t n_spines,
                        std::size_t n_leaves, std::size_t hosts_per_leaf,
                        TopologyOptions opt = {});

/// Computes shortest paths over the switch graph and installs static
/// forwarding entries for every host MAC on every switch. Ties break
/// toward the lowest port id, so routing is deterministic.
void install_shortest_path_routes(const Fabric& fabric);

/// Hop count of the installed route between two hosts (number of switches
/// traversed), or -1 if unreachable. Useful for tests and dimensioning.
int route_hops(const Fabric& fabric, std::size_t src_host,
               std::size_t dst_host);

}  // namespace steelnet::net
