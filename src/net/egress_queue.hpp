// steelnet::net -- per-port egress queueing with strict priority and an
// optional TSN gate controller.
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "net/frame.hpp"
#include "net/node.hpp"
#include "net/network.hpp"

namespace steelnet::net {

/// Per-priority drop/transmit counters of one egress port.
struct EgressCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t dropped_overflow = 0;
};

/// Eight strict-priority FIFO queues in front of one channel.
///
/// Owned by a Node for each of its ports. The owning node must forward
/// on_channel_idle(port) to drain(). If a GateController is installed,
/// frames only start when their gate is open for the frame's whole
/// duration (802.1Qbv semantics, including the implicit guard band).
class EgressQueue {
 public:
  static constexpr std::size_t kPriorities = 8;

  /// `capacity_per_queue` == 0 means unbounded.
  EgressQueue(Node& owner, PortId port, std::size_t capacity_per_queue = 1024);

  /// Queues the frame (by pcp) and drains if possible.
  void enqueue(Frame frame);

  /// Attempts to start transmitting the best eligible frame. Called on
  /// enqueue, on channel idle, and when a gate opens.
  void drain();

  void set_gate_controller(const GateController* gates) { gates_ = gates; }

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t depth(std::uint8_t pcp) const {
    return queues_[pcp].size();
  }
  [[nodiscard]] const EgressCounters& counters() const { return counters_; }

 private:
  Node& owner_;
  PortId port_;
  std::size_t capacity_;
  std::array<std::deque<Frame>, kPriorities> queues_;
  const GateController* gates_ = nullptr;
  sim::EventHandle gate_retry_;
  EgressCounters counters_;
};

}  // namespace steelnet::net
