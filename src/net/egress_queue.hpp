// steelnet::net -- per-port egress queueing with strict priority and an
// optional TSN gate controller.
#pragma once

#include <array>
#include <cstdint>

#include "net/frame.hpp"
#include "net/node.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/ring_queue.hpp"

namespace steelnet::net {

/// Per-priority drop/transmit counters of one egress port. The overflow
/// drop counter lives on the obs metrics plane (an obs::Counter is a
/// plain uint64 with a name-bindable address); the accessor API is
/// unchanged -- it converts implicitly wherever a uint64_t was read.
struct EgressCounters {
  std::uint64_t enqueued = 0;
  std::uint64_t transmitted = 0;
  obs::Counter dropped_overflow;
};

/// Eight strict-priority FIFO queues in front of one channel.
///
/// Owned by a Node for each of its ports. The owning node must forward
/// on_channel_idle(port) to drain(). If a GateController is installed,
/// frames only start when their gate is open for the frame's whole
/// duration (802.1Qbv semantics, including the implicit guard band).
class EgressQueue {
 public:
  static constexpr std::size_t kPriorities = 8;

  /// `capacity_per_queue` == 0 means unbounded.
  EgressQueue(Node& owner, PortId port, std::size_t capacity_per_queue = 1024);

  /// Queues the frame (by pcp) and drains if possible.
  void enqueue(Frame frame);

  /// Attempts to start transmitting the best eligible frame. Called on
  /// enqueue, on channel idle, and when a gate opens.
  void drain();

  void set_gate_controller(const GateController* gates) { gates_ = gates; }

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t depth(std::uint8_t pcp) const {
    return queues_[pcp].size();
  }
  [[nodiscard]] const EgressCounters& counters() const { return counters_; }

  /// Binds this port's counters onto the hub's registry under
  /// `<owner>/pN/egress/...`.
  void register_metrics(obs::ObsHub& hub) const;

 private:
  /// Interned "owner/pN" obs track, lazily resolved (the owner's name is
  /// only known after Network::add_node attaches it).
  std::uint32_t obs_track(obs::ObsHub& hub);

  Node& owner_;
  PortId port_;
  std::size_t capacity_;
  /// Ring buffers, not deques: steady-state push/pop at depth 0-1 must
  /// not touch the allocator (deque block churn breaks the kernel's
  /// allocation-free guarantee; see sim/ring_queue.hpp).
  std::array<sim::RingQueue<Frame>, kPriorities> queues_;
  const GateController* gates_ = nullptr;
  sim::EventHandle gate_retry_;
  std::uint32_t obs_track_ = static_cast<std::uint32_t>(-1);
  EgressCounters counters_;
};

}  // namespace steelnet::net
