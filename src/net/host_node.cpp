#include "net/host_node.hpp"

#include "obs/hub.hpp"

namespace steelnet::net {

HostNode::HostNode(MacAddress mac)
    : mac_(mac), egress_(*this, kNicPort, /*capacity_per_queue=*/4096) {}

std::uint32_t HostNode::obs_track(obs::ObsHub& hub) {
  if (obs_track_ == static_cast<std::uint32_t>(-1)) {
    obs_track_ = hub.track(name());
  }
  return obs_track_;
}

void HostNode::register_metrics(obs::ObsHub& hub) {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({name(), "host", "sent"}, &counters_.sent);
  reg.bind_counter({name(), "host", "received"}, &counters_.received);
  reg.bind_counter({name(), "host", "filtered"}, &counters_.filtered);
  reg.bind_counter({name(), "host", "nic_pass"}, &counters_.nic_pass);
  reg.bind_counter({name(), "host", "nic_drop"}, &counters_.nic_drop);
  reg.bind_counter({name(), "host", "nic_tx"}, &counters_.nic_tx);
  reg.bind_counter({name(), "host", "nic_aborted"}, &counters_.nic_aborted);
  egress_.register_metrics(hub);
}

void HostNode::send(Frame frame) {
  // A crashed host's application cannot reach its NIC (fault-plane hook:
  // the send is suppressed, counted, and never touches the wire).
  if (FaultInjector* fp = network().faults();
      fp != nullptr && !fp->node_alive(id())) {
    fp->on_tx_suppressed(id(), frame);
    network().frame_pool().recycle(std::move(frame));
    return;
  }
  ++counters_.sent;
  frame.created_at = network().sim().now();
  if (frame.src.bits() == 0) frame.src = mac_;
  const sim::SimTime tx_lat =
      host_path_ != nullptr
          ? host_path_->sample_tx(frame.payload.size())
          : sim::SimTime::zero();
  if (obs::ObsHub* hub = network().obs();
      hub != nullptr && hub->frames_enabled()) {
    if (frame.trace_id == 0) frame.trace_id = hub->assign_trace_id();
    hub->host_tx(frame.trace_id, obs_track(*hub), frame.created_at,
                 frame.created_at + tx_lat);
  }
  if (tx_lat == sim::SimTime::zero()) {
    egress_.enqueue(std::move(frame));
    return;
  }
  network().sim().schedule_in(tx_lat, [this, f = std::move(frame)]() mutable {
    egress_.enqueue(std::move(f));
  });
}

void HostNode::handle_frame(Frame frame, PortId in_port) {
  // Safety net for frames handed to a crashed host outside the network
  // delivery path (which already absorbs them at the fault plane).
  if (FaultInjector* fp = network().faults();
      fp != nullptr && !fp->node_alive(id())) {
    fp->on_rx_suppressed(id(), frame);
    network().frame_pool().recycle(std::move(frame));
    return;
  }
  observe_frame(frame, in_port);
  (void)in_port;
  // NIC destination filter: unicast frames for somebody else (flooded by
  // a learning switch) are dropped before any processing.
  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
      frame.dst != mac_) {
    ++counters_.filtered;
    network().frame_pool().recycle(std::move(frame));
    return;
  }
  if (nic_prog_ != nullptr) {
    sim::SimTime cost = sim::SimTime::zero();
    const sim::SimTime now = network().sim().now();
    const NicAction action = nic_prog_->process(frame, now, cost);
    if (obs::ObsHub* hub = network().obs();
        hub != nullptr && frame.trace_id != 0) {
      hub->xdp(frame.trace_id, obs_track(*hub), now, now + cost);
    }
    switch (action) {
      case NicAction::kDrop:
        ++counters_.nic_drop;
        network().frame_pool().recycle(std::move(frame));
        return;
      case NicAction::kAborted:
        ++counters_.nic_aborted;
        network().frame_pool().recycle(std::move(frame));
        return;
      case NicAction::kTx: {
        ++counters_.nic_tx;
        // Bounce back out after the program's processing time.
        network().sim().schedule_in(cost,
                                    [this, f = std::move(frame)]() mutable {
                                      egress_.enqueue(std::move(f));
                                    });
        return;
      }
      case NicAction::kPass:
        ++counters_.nic_pass;
        if (cost > sim::SimTime::zero()) {
          network().sim().schedule_in(
              cost, [this, f = std::move(frame)]() mutable {
                deliver_up(std::move(f));
              });
          return;
        }
        break;
    }
  }
  deliver_up(std::move(frame));
}

void HostNode::deliver_up(Frame frame) {
  ++counters_.received;
  const sim::SimTime rx_lat =
      host_path_ != nullptr
          ? host_path_->sample_rx(frame.payload.size())
          : sim::SimTime::zero();
  if (obs::ObsHub* hub = network().obs();
      hub != nullptr && frame.trace_id != 0) {
    const sim::SimTime now = network().sim().now();
    hub->host_rx(frame.trace_id, obs_track(*hub), now, now + rx_lat);
    hub->delivered(frame.trace_id, obs_track(*hub), frame.created_at,
                   now + rx_lat);
  }
  if (rx_lat == sim::SimTime::zero()) {
    if (receiver_) receiver_(std::move(frame), network().sim().now());
    return;
  }
  network().sim().schedule_in(rx_lat, [this, f = std::move(frame)]() mutable {
    if (receiver_) receiver_(std::move(f), network().sim().now());
  });
}

void HostNode::on_channel_idle(PortId port) {
  if (port == kNicPort) egress_.drain();
}

}  // namespace steelnet::net
