#include "net/host_node.hpp"

namespace steelnet::net {

HostNode::HostNode(MacAddress mac)
    : mac_(mac), egress_(*this, kNicPort, /*capacity_per_queue=*/4096) {}

void HostNode::send(Frame frame) {
  ++counters_.sent;
  frame.created_at = network().sim().now();
  if (frame.src.bits() == 0) frame.src = mac_;
  const sim::SimTime tx_lat =
      host_path_ != nullptr
          ? host_path_->sample_tx(frame.payload.size())
          : sim::SimTime::zero();
  if (tx_lat == sim::SimTime::zero()) {
    egress_.enqueue(std::move(frame));
    return;
  }
  network().sim().schedule_in(tx_lat, [this, f = std::move(frame)]() mutable {
    egress_.enqueue(std::move(f));
  });
}

void HostNode::handle_frame(Frame frame, PortId in_port) {
  observe_frame(frame, in_port);
  (void)in_port;
  // NIC destination filter: unicast frames for somebody else (flooded by
  // a learning switch) are dropped before any processing.
  if (!frame.dst.is_broadcast() && !frame.dst.is_multicast() &&
      frame.dst != mac_) {
    ++counters_.filtered;
    return;
  }
  if (nic_prog_ != nullptr) {
    sim::SimTime cost = sim::SimTime::zero();
    const NicAction action =
        nic_prog_->process(frame, network().sim().now(), cost);
    switch (action) {
      case NicAction::kDrop:
        ++counters_.nic_drop;
        return;
      case NicAction::kAborted:
        ++counters_.nic_aborted;
        return;
      case NicAction::kTx: {
        ++counters_.nic_tx;
        // Bounce back out after the program's processing time.
        network().sim().schedule_in(cost,
                                    [this, f = std::move(frame)]() mutable {
                                      egress_.enqueue(std::move(f));
                                    });
        return;
      }
      case NicAction::kPass:
        ++counters_.nic_pass;
        if (cost > sim::SimTime::zero()) {
          network().sim().schedule_in(
              cost, [this, f = std::move(frame)]() mutable {
                deliver_up(std::move(f));
              });
          return;
        }
        break;
    }
  }
  deliver_up(std::move(frame));
}

void HostNode::deliver_up(Frame frame) {
  ++counters_.received;
  const sim::SimTime rx_lat =
      host_path_ != nullptr
          ? host_path_->sample_rx(frame.payload.size())
          : sim::SimTime::zero();
  if (rx_lat == sim::SimTime::zero()) {
    if (receiver_) receiver_(std::move(frame), network().sim().now());
    return;
  }
  network().sim().schedule_in(rx_lat, [this, f = std::move(frame)]() mutable {
    if (receiver_) receiver_(std::move(f), network().sim().now());
  });
}

void HostNode::on_channel_idle(PortId port) {
  if (port == kNicPort) egress_.drain();
}

}  // namespace steelnet::net
