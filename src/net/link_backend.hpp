// steelnet::net -- the pluggable link-layer driver abstraction.
//
// Every directed channel of a Network dispatches its physical-layer
// decisions through a LinkBackend: how long a frame occupies the medium
// (serialization), how long it flies afterwards (propagation), and
// whether the medium itself kills it (a radio fade, a scripted test
// impairment). The Network keeps owning the ledger, the fault plane and
// the delivery schedule; the backend only answers questions, one frame at
// a time, in transmit order -- which is what keeps every driver as
// deterministic as the wired path it replaces.
//
// Drivers:
//   * WiredBackend      -- the ideal wire (bit-for-bit the pre-backend
//                          behavior; the Network's default).
//   * LossyRadioBackend -- seeded SNR/rate/roaming model (radio_backend.hpp).
//   * FakeBackend       -- scriptable impairment for tests (fake_backend.hpp).
//
// Construction and configuration errors are typed (LinkError with a
// LinkErrorCode), mirroring the sharded kernel's ShardingError, so tests
// can assert the exact failure instead of matching message strings.
#pragma once

#include <cstdint>
#include <string>

#include "net/frame.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace steelnet::net {

/// Physical characteristics of one link (applied to both directions).
struct LinkParams {
  std::uint64_t bits_per_second = 1'000'000'000;  ///< 1 GbE default
  sim::SimTime propagation = sim::nanoseconds(500);  ///< ~100 m of fiber
};

/// Links slower than this are rejected at connect(): below ~1 kbit/s a
/// single frame's serialization time overflows any realistic horizon and
/// almost always indicates an uninitialized LinkParams.
inline constexpr std::uint64_t kMinLinkBitRate = 1'000;

enum class LinkErrorCode : std::uint8_t {
  kZeroBitRate,      ///< LinkParams::bits_per_second == 0 (divides by zero)
  kBitRateTooLow,    ///< below kMinLinkBitRate (SimTime overflow territory)
  kBadRadioConfig,   ///< RadioConfig rejected at construction
  kUnboundStation,   ///< radio link connected with no station bound
  kDuplicateBinding, ///< (node, port) already bound to a station
};

[[nodiscard]] const char* to_string(LinkErrorCode code);

/// Typed link-layer configuration error. Derives from sim::SimError so
/// pre-existing catch sites keep working.
class LinkError : public sim::SimError {
 public:
  LinkError(LinkErrorCode code, const std::string& what)
      : sim::SimError(std::string("LinkError[") + to_string(code) +
                      "]: " + what),
        code_(code) {}
  [[nodiscard]] LinkErrorCode code() const { return code_; }

 private:
  LinkErrorCode code_;
};

/// The backend's per-frame verdict: occupancy, flight time, and whether
/// the medium delivered the frame at all. When `survives` is false the
/// frame still occupies the sender's NIC for `serialize` (a dead medium
/// blocks the transmitter exactly like a live one) and `cause` names the
/// ledger bucket ("radio_snr", "fake_drop", ...).
struct LinkTxPlan {
  bool survives = true;
  const char* cause = nullptr;
  sim::SimTime serialize;
  sim::SimTime propagate;
  std::uint64_t bits_per_second = 0;  ///< rate actually used (telemetry)
};

/// Abstract link-layer driver. One instance may back any number of
/// directed channels; all per-link state is keyed on (node, port) inside
/// the backend. Backends never touch the simulator -- time arrives as an
/// argument and state machines advance lazily, which is what makes a
/// backend usable unchanged inside sharded cells.
class LinkBackend {
 public:
  virtual ~LinkBackend() = default;

  [[nodiscard]] virtual const char* kind() const = 0;

  /// Called once per Network::connect() that attaches this backend, for
  /// each direction. Throws LinkError when the backend cannot serve the
  /// link (e.g. a radio link with no bound station).
  virtual void validate_link(NodeId node, PortId port,
                             const LinkParams& params) {
    (void)node;
    (void)port;
    (void)params;
  }

  /// Serialization time the next frame on (node, port) would take, for
  /// gate/guard-band checks (EgressQueue). Must not draw randomness: the
  /// estimate may be requested any number of times without perturbing
  /// the per-frame streams.
  [[nodiscard]] virtual sim::SimTime serialize_estimate(
      NodeId node, PortId port, const Frame& frame, const LinkParams& params,
      sim::SimTime now) = 0;

  /// The per-frame verdict, called exactly once per offered frame in
  /// transmit order. May advance internal (deterministic) state and draw
  /// from the backend's seeded streams.
  [[nodiscard]] virtual LinkTxPlan plan_transmit(NodeId node, PortId port,
                                                 const Frame& frame,
                                                 const LinkParams& params,
                                                 sim::SimTime now) = 0;
};

/// The ideal wire: fixed rate from LinkParams, fixed propagation, no
/// loss. Byte-for-byte the pre-backend transmit math -- pinned by the
/// golden-artifact equality tests.
class WiredBackend final : public LinkBackend {
 public:
  [[nodiscard]] const char* kind() const override { return "wired"; }

  [[nodiscard]] sim::SimTime serialize_estimate(NodeId node, PortId port,
                                                const Frame& frame,
                                                const LinkParams& params,
                                                sim::SimTime now) override {
    (void)node;
    (void)port;
    (void)now;
    return serialization_time(frame.occupancy_bytes(), params.bits_per_second);
  }

  [[nodiscard]] LinkTxPlan plan_transmit(NodeId node, PortId port,
                                         const Frame& frame,
                                         const LinkParams& params,
                                         sim::SimTime now) override {
    (void)node;
    (void)port;
    (void)now;
    LinkTxPlan plan;
    plan.serialize =
        serialization_time(frame.occupancy_bytes(), params.bits_per_second);
    plan.propagate = params.propagation;
    plan.bits_per_second = params.bits_per_second;
    return plan;
  }
};

}  // namespace steelnet::net
