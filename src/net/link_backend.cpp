#include "net/link_backend.hpp"

namespace steelnet::net {

const char* to_string(LinkErrorCode code) {
  switch (code) {
    case LinkErrorCode::kZeroBitRate: return "zero-bit-rate";
    case LinkErrorCode::kBitRateTooLow: return "bit-rate-too-low";
    case LinkErrorCode::kBadRadioConfig: return "bad-radio-config";
    case LinkErrorCode::kUnboundStation: return "unbound-station";
    case LinkErrorCode::kDuplicateBinding: return "duplicate-binding";
  }
  return "unknown";
}

}  // namespace steelnet::net
