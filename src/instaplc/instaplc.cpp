#include "instaplc/instaplc.hpp"

#include "net/network.hpp"
#include "obs/hub.hpp"

namespace steelnet::instaplc {

namespace {

/// Little-endian bytes of an AR id, for payload rewrites.
std::vector<std::uint8_t> ar_bytes(std::uint16_t ar) {
  return {static_cast<std::uint8_t>(ar), static_cast<std::uint8_t>(ar >> 8)};
}

}  // namespace

InstaPlcApp::InstaPlcApp(sdn::SdnSwitchNode& sw, InstaPlcConfig cfg)
    : sw_(sw), cfg_(cfg) {
  // One table keyed on (ingress port, source MAC, PDU type); PDU type is
  // wildcarded by most rules but lets the monitor distinguish cyclic
  // traffic. Default: drop (an industrial cell has no business carrying
  // unknown traffic).
  table_ = sw_.pipeline().add_table(sdn::Table(
      "instaplc",
      {{sdn::FieldKind::kInPort, 0},
       {sdn::FieldKind::kEthSrc, 0},
       {sdn::FieldKind::kPayloadU8, profinet::offsets::kPduType}}));
  sw_.set_inspector([this](const net::Frame& f, net::PortId p) {
    on_ingress(f, p);
  });
}

void InstaPlcApp::emit(InstaPlcEvent ev) {
  if (observer_) observer_(ev, sw_.network().sim().now());
}

void InstaPlcApp::on_ingress(const net::Frame& frame, net::PortId in_port) {
  if (frame.ethertype != net::EtherType::kProfinetRt) return;
  const auto pdu = profinet::decode(frame.payload);
  if (!pdu.has_value()) return;

  if (in_port == cfg_.device_port) {
    twin_.observe(*pdu, /*from_device=*/true);
    if (std::holds_alternative<profinet::CyclicData>(*pdu)) {
      ++stats_.from_device;
      emit(InstaPlcEvent::kFromDevice);
    }
    return;
  }

  const bool is_primary =
      primary_ && primary_->port == in_port && primary_->mac == frame.src;
  const bool is_secondary = secondary_ && secondary_->port == in_port &&
                            secondary_->mac == frame.src;

  if (const auto* req = std::get_if<profinet::ConnectReq>(&*pdu)) {
    if (!primary_) {
      designate_primary(frame, in_port, *req);
      return;
    }
    if (is_primary) {
      stats_.primary_last_seen = sw_.network().sim().now();
      return;
    }
    if (!secondary_) {
      designate_secondary(frame, in_port, *req);
      // fall through: the twin also answers this ConnectReq
    }
  }

  if (is_primary) {
    twin_.observe(*pdu, /*from_device=*/false);
    if (std::holds_alternative<profinet::CyclicData>(*pdu)) {
      ++stats_.primary_cyclic;
      stats_.primary_last_seen = sw_.network().sim().now();
      emit(InstaPlcEvent::kPrimaryCyclic);
      if (!switched_over()) {
        ++stats_.to_device;
        emit(InstaPlcEvent::kToDevice);
      }
    }
    return;
  }

  if (is_secondary || (secondary_ && secondary_->mac == frame.src)) {
    if (std::holds_alternative<profinet::CyclicData>(*pdu)) {
      ++stats_.secondary_cyclic;
      emit(InstaPlcEvent::kSecondaryCyclic);
      if (switched_over()) {
        ++stats_.to_device;
        emit(InstaPlcEvent::kToDevice);
      }
      return;
    }
    handle_secondary_pdu(frame, *pdu);
  }
}

void InstaPlcApp::designate_primary(const net::Frame& frame,
                                    net::PortId in_port,
                                    const profinet::ConnectReq& req) {
  primary_ = VplcInfo{frame.src, in_port, req.ar_id};
  device_mac_ = frame.dst;
  io_cycle_ = sim::microseconds(req.cycle_time_us);
  stats_.primary_last_seen = sw_.network().sim().now();
  twin_.observe(profinet::Pdu{req}, /*from_device=*/false);

  auto& table = sw_.pipeline().table(table_);
  // Rule (4): everything from the primary goes to the physical device.
  sdn::TableEntry to_dev;
  to_dev.values = {in_port, frame.src.bits(), 0};
  to_dev.masks = {~0ULL, ~0ULL, 0};
  to_dev.priority = 10;
  to_dev.actions = {sdn::ActionPrimitive::set_egress(cfg_.device_port)};
  to_dev.label = "primary->device";
  primary_to_device_ = table.add_entry(std::move(to_dev));

  // Device replies go to the primary (extended to rule (3) -- mirror to
  // the secondary -- once one exists).
  sdn::TableEntry from_dev;
  from_dev.values = {cfg_.device_port, 0, 0};
  from_dev.masks = {~0ULL, 0, 0};
  from_dev.priority = 10;
  from_dev.actions = {sdn::ActionPrimitive::set_egress(in_port)};
  from_dev.label = "device->controllers";
  device_out_ = table.add_entry(std::move(from_dev));

  // Data-plane liveness monitor at half-cycle granularity.
  const sim::SimTime tick =
      sim::SimTime{std::max<std::int64_t>(io_cycle_.nanos() / 2, 1)};
  monitor_ = std::make_unique<sim::PeriodicTask>(
      sw_.network().sim(), sw_.network().sim().now() + tick, tick,
      [this] { monitor_tick(); });
}

void InstaPlcApp::designate_secondary(const net::Frame& frame,
                                      net::PortId in_port,
                                      const profinet::ConnectReq& req) {
  secondary_ = VplcInfo{frame.src, in_port, req.ar_id};

  auto& table = sw_.pipeline().table(table_);
  // Rule (2): the secondary's frames reach the digital twin only -- on
  // the wire they are dropped; the twin consumes them via the inspector.
  sdn::TableEntry sec;
  sec.values = {in_port, frame.src.bits(), 0};
  sec.masks = {~0ULL, ~0ULL, 0};
  sec.priority = 20;
  sec.actions = {sdn::ActionPrimitive::drop()};
  sec.label = "secondary->twin";
  secondary_rule_ = table.add_entry(std::move(sec));

  // Rule (3): device frames now also mirror to the secondary, with the
  // copy's dst MAC and AR id translated so the standby's stack accepts
  // them as its own communication relationship.
  table.set_actions(
      *device_out_,
      {sdn::ActionPrimitive::set_egress(primary_->port),
       sdn::ActionPrimitive::add_mirror_transformed(
           in_port, frame.src, profinet::offsets::kArId,
           ar_bytes(req.ar_id))});
}

void InstaPlcApp::handle_secondary_pdu(const net::Frame& frame,
                                       const profinet::Pdu& pdu) {
  const auto reply = twin_.handle_from_secondary(pdu);
  if (!reply.has_value()) return;
  // Rule (1) inverted: the twin's (config) replies are injected toward
  // the secondary, impersonating the device.
  net::Frame out = sw_.network().frame_pool().make(0);
  out.dst = frame.src;
  out.src = device_mac_;
  out.ethertype = net::EtherType::kProfinetRt;
  out.pcp = 6;
  profinet::encode_into(*reply, out.payload);
  sw_.inject(std::move(out), secondary_->port);
}

void InstaPlcApp::monitor_tick() {
  if (switched_over() || !secondary_ || !stats_.primary_last_seen) return;
  sim::SimTime last_seen = *stats_.primary_last_seen;
  if (liveness_probe_) {
    if (const auto probed = liveness_probe_()) last_seen = *probed;
  }
  const sim::SimTime silent = sw_.network().sim().now() - last_seen;
  if (silent >
      io_cycle_ * static_cast<std::int64_t>(cfg_.switchover_cycles)) {
    do_switchover();
  }
}

void InstaPlcApp::do_switchover() {
  auto& table = sw_.pipeline().table(table_);
  // The secondary's cyclic frames now flow to the physical device, with
  // the AR id rewritten to the one the device has open.
  table.set_actions(
      *secondary_rule_,
      {sdn::ActionPrimitive::rewrite_bytes(profinet::offsets::kArId,
                                           ar_bytes(primary_->ar_id)),
       sdn::ActionPrimitive::set_egress(cfg_.device_port)});
  // Stop forwarding toward the dead primary; keep the secondary mirror
  // as the (now sole) consumer of device frames.
  table.set_actions(
      *device_out_,
      {sdn::ActionPrimitive::add_mirror_transformed(
          secondary_->port, secondary_->mac, profinet::offsets::kArId,
          ar_bytes(secondary_->ar_id))});
  stats_.switchover_at = sw_.network().sim().now();
  emit(InstaPlcEvent::kSwitchover);
}

void InstaPlcApp::register_metrics(obs::ObsHub& hub,
                                   const std::string& node_label) const {
  obs::MetricsRegistry& reg = hub.metrics();
  reg.bind_counter({node_label, "instaplc", "primary_cyclic"},
                   &stats_.primary_cyclic);
  reg.bind_counter({node_label, "instaplc", "secondary_cyclic"},
                   &stats_.secondary_cyclic);
  reg.bind_counter({node_label, "instaplc", "to_device"}, &stats_.to_device);
  reg.bind_counter({node_label, "instaplc", "from_device"},
                   &stats_.from_device);
  reg.bind_gauge({node_label, "instaplc", "switchover_at_ns"}, [this] {
    return stats_.switchover_at.has_value()
               ? static_cast<double>(stats_.switchover_at->nanos())
               : -1.0;
  });
  reg.bind_gauge({node_label, "instaplc", "switchovers"}, [this] {
    return stats_.switchover_at.has_value() ? 1.0 : 0.0;
  });
}

}  // namespace steelnet::instaplc
