#include "instaplc/digital_twin.hpp"

namespace steelnet::instaplc {

void DigitalTwin::observe(const profinet::Pdu& pdu, bool from_device) {
  ++counters_.observed_pdus;
  if (from_device) {
    if (const auto* resp = std::get_if<profinet::ConnectResp>(&pdu)) {
      if (resp->status == 0) device_id_ = resp->device_id;
    }
    return;
  }
  if (const auto* req = std::get_if<profinet::ConnectReq>(&pdu)) {
    cycle_time_us_ = req->cycle_time_us;
    watchdog_factor_ = req->watchdog_factor;
  } else if (const auto* rec = std::get_if<profinet::ParamRecord>(&pdu)) {
    learned_records_[rec->record_index] = rec->data;
  }
}

std::optional<profinet::Pdu> DigitalTwin::handle_from_secondary(
    const profinet::Pdu& pdu) {
  if (const auto* req = std::get_if<profinet::ConnectReq>(&pdu)) {
    if (!ready()) return std::nullopt;  // nothing learned yet: stay silent
    secondary_ar_ = req->ar_id;
    ++counters_.answered_connects;
    profinet::ConnectResp resp;
    resp.ar_id = req->ar_id;
    resp.status = 0;
    resp.device_id = *device_id_;
    return profinet::Pdu{resp};
  }
  if (const auto* rec = std::get_if<profinet::ParamRecord>(&pdu)) {
    secondary_records_[rec->record_index] = rec->data;
    ++counters_.absorbed_params;
    return std::nullopt;
  }
  // ParamDone / CyclicData / Release need no reply from a device that is
  // (from the secondary's point of view) already delivering inputs.
  return std::nullopt;
}

std::size_t TwinSnapshot::byte_size() const {
  // Fixed header: device id (4) + cycle time (4) + watchdog factor (2) +
  // record count (2); per record: index (2) + length (2) + payload.
  std::size_t bytes = 12;
  for (const auto& [index, data] : learned_records) {
    (void)index;
    bytes += 4 + data.size();
  }
  return bytes;
}

TwinSnapshot DigitalTwin::snapshot() const {
  TwinSnapshot snap;
  snap.device_id = device_id_;
  snap.cycle_time_us = cycle_time_us_;
  snap.watchdog_factor = watchdog_factor_;
  snap.learned_records = learned_records_;
  return snap;
}

void DigitalTwin::restore(const TwinSnapshot& snap) {
  device_id_ = snap.device_id;
  cycle_time_us_ = snap.cycle_time_us;
  watchdog_factor_ = snap.watchdog_factor;
  learned_records_ = snap.learned_records;
  secondary_records_.clear();
  secondary_ar_.reset();
  counters_ = TwinCounters{};
}

}  // namespace steelnet::instaplc
