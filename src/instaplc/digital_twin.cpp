#include "instaplc/digital_twin.hpp"

namespace steelnet::instaplc {

void DigitalTwin::observe(const profinet::Pdu& pdu, bool from_device) {
  ++counters_.observed_pdus;
  if (from_device) {
    if (const auto* resp = std::get_if<profinet::ConnectResp>(&pdu)) {
      if (resp->status == 0) device_id_ = resp->device_id;
    }
    return;
  }
  if (const auto* req = std::get_if<profinet::ConnectReq>(&pdu)) {
    cycle_time_us_ = req->cycle_time_us;
    watchdog_factor_ = req->watchdog_factor;
  } else if (const auto* rec = std::get_if<profinet::ParamRecord>(&pdu)) {
    learned_records_[rec->record_index] = rec->data;
  }
}

std::optional<profinet::Pdu> DigitalTwin::handle_from_secondary(
    const profinet::Pdu& pdu) {
  if (const auto* req = std::get_if<profinet::ConnectReq>(&pdu)) {
    if (!ready()) return std::nullopt;  // nothing learned yet: stay silent
    secondary_ar_ = req->ar_id;
    ++counters_.answered_connects;
    profinet::ConnectResp resp;
    resp.ar_id = req->ar_id;
    resp.status = 0;
    resp.device_id = *device_id_;
    return profinet::Pdu{resp};
  }
  if (const auto* rec = std::get_if<profinet::ParamRecord>(&pdu)) {
    secondary_records_[rec->record_index] = rec->data;
    ++counters_.absorbed_params;
    return std::nullopt;
  }
  // ParamDone / CyclicData / Release need no reply from a device that is
  // (from the secondary's point of view) already delivering inputs.
  return std::nullopt;
}

}  // namespace steelnet::instaplc
