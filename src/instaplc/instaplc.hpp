// steelnet::instaplc -- the in-network vPLC high-availability application.
//
// Implements §4's design on the sdn match-action switch:
//   * first vPLC to connect to an I/O device becomes PRIMARY;
//   * a later vPLC becomes SECONDARY and talks to the digital twin;
//   * rule (1) twin -> secondary config replies are injected in-network;
//   * rule (2) secondary packets go to the twin only (dropped on wire);
//   * rule (3) device packets are forwarded to BOTH vPLCs;
//   * rule (4) primary packets go to the physical device;
//   * a data-plane monitor counts primary cyclic frames and, after a
//     configurable number of silent I/O cycles, rewrites rule (2) so the
//     secondary's frames flow to the device -- the switchover.
// No dedicated links between the vPLCs are required.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "instaplc/digital_twin.hpp"
#include "sdn/sdn_switch.hpp"
#include "sim/simulator.hpp"

namespace steelnet::instaplc {

struct InstaPlcConfig {
  /// Switch port the physical I/O device is attached to.
  net::PortId device_port = 0;
  /// Silent I/O cycles before the data-plane monitor triggers the
  /// switchover (the paper: "a configurable number of I/O cycles").
  std::uint16_t switchover_cycles = 3;
};

enum class VplcRole : std::uint8_t { kPrimary, kSecondary };

struct VplcInfo {
  net::MacAddress mac;
  net::PortId port = 0;
  std::uint16_t ar_id = 0;
};

struct InstaPlcStats {
  std::uint64_t primary_cyclic = 0;
  std::uint64_t secondary_cyclic = 0;
  std::uint64_t to_device = 0;
  std::uint64_t from_device = 0;
  std::optional<sim::SimTime> primary_last_seen;
  std::optional<sim::SimTime> switchover_at;
};

/// Observable events, timestamped, for the Fig. 5 time series.
enum class InstaPlcEvent : std::uint8_t {
  kPrimaryCyclic,
  kSecondaryCyclic,
  kToDevice,
  kFromDevice,
  kSwitchover,
};

class InstaPlcApp {
 public:
  /// Binds to `sw` (installs its pipeline, inspector and monitor task).
  InstaPlcApp(sdn::SdnSwitchNode& sw, InstaPlcConfig cfg);

  void set_observer(
      std::function<void(InstaPlcEvent, sim::SimTime)> fn) {
    observer_ = std::move(fn);
  }

  /// When the monitored liveness signal should come from somewhere other
  /// than the app's own frame inspector -- e.g. steelnet::flowmon's
  /// MeterPoint (make_liveness_probe) -- install a probe returning the
  /// primary's last-seen time. The monitor prefers the probe's answer and
  /// falls back to the built-in counter when the probe has none (the
  /// telemetry flow may itself have idle-expired).
  using LivenessProbe = std::function<std::optional<sim::SimTime>()>;
  void set_liveness_probe(LivenessProbe probe) {
    liveness_probe_ = std::move(probe);
  }

  [[nodiscard]] const DigitalTwin& twin() const { return twin_; }
  [[nodiscard]] const InstaPlcStats& stats() const { return stats_; }
  [[nodiscard]] std::optional<VplcInfo> primary() const { return primary_; }
  [[nodiscard]] std::optional<VplcInfo> secondary() const {
    return secondary_;
  }
  [[nodiscard]] bool switched_over() const {
    return stats_.switchover_at.has_value();
  }

  /// Binds switchover stats under `<node_label>/instaplc/...`. The
  /// switchover instant is exported as a gauge (ns; -1 until it happens).
  void register_metrics(obs::ObsHub& hub, const std::string& node_label) const;

 private:
  void on_ingress(const net::Frame& frame, net::PortId in_port);
  void designate_primary(const net::Frame& frame, net::PortId in_port,
                         const profinet::ConnectReq& req);
  void designate_secondary(const net::Frame& frame, net::PortId in_port,
                           const profinet::ConnectReq& req);
  void handle_secondary_pdu(const net::Frame& frame,
                            const profinet::Pdu& pdu);
  void monitor_tick();
  void do_switchover();
  void emit(InstaPlcEvent ev);

  sdn::SdnSwitchNode& sw_;
  InstaPlcConfig cfg_;
  DigitalTwin twin_;

  std::size_t table_ = 0;
  std::optional<sdn::EntryId> primary_to_device_;
  std::optional<sdn::EntryId> device_out_;
  std::optional<sdn::EntryId> secondary_rule_;

  std::optional<VplcInfo> primary_;
  std::optional<VplcInfo> secondary_;
  net::MacAddress device_mac_;
  sim::SimTime io_cycle_ = sim::milliseconds(2);

  std::unique_ptr<sim::PeriodicTask> monitor_;
  LivenessProbe liveness_probe_;
  InstaPlcStats stats_;
  std::function<void(InstaPlcEvent, sim::SimTime)> observer_;
};

}  // namespace steelnet::instaplc
