// steelnet::sim -- the latency-stamped channel between two cells of the
// sharded kernel.
//
// A ShardChannel models one directed inter-cell link: a fixed minimum
// latency (the conservative lookahead bound -- every message sent at time
// t is delivered no earlier than t + latency) over an SpscRing of POD
// messages. The minimum latency is what makes conservative parallel
// simulation possible at all: the receiving cell may safely execute
// everything strictly before min over inbound channels of
// (sender clock lower bound + latency), the classic null-message bound.
//
// Messages are fixed-size PODs with a small inline payload so a
// cross-shard frame handoff copies bytes through the ring and rebuilds
// the frame from the *receiving* cell's FramePool -- no heap allocation
// and no cross-thread buffer ownership on the steady-state path.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "sim/spsc_ring.hpp"

namespace steelnet::sim {

/// Inline payload budget of one cross-shard message. Sized for the small
/// control/report PDUs that cross cell boundaries (PROFINET cyclic
/// payloads are tens of bytes); senders of larger payloads must fragment.
inline constexpr std::size_t kShardMsgInlineBytes = 96;

/// One cross-shard message. `deliver_ns >= send_ns + channel latency`
/// always holds; (deliver_ns, src_cell, seq) is the total delivery order
/// at the receiver, which is what makes the merge deterministic at any
/// shard count.
struct ShardMsg {
  std::int64_t deliver_ns = 0;
  std::int64_t send_ns = 0;
  std::uint32_t src_cell = 0;
  std::uint32_t kind = 0;          ///< application-defined discriminator
  std::uint64_t seq = 0;           ///< per-sender send sequence
  std::uint64_t a = 0;             ///< application payload word
  std::uint64_t b = 0;             ///< application payload word
  std::uint16_t len = 0;           ///< bytes used in `data`
  std::uint8_t data[kShardMsgInlineBytes] = {};

  void set_data(const void* bytes, std::size_t n) {
    len = static_cast<std::uint16_t>(n);
    if (n > 0) std::memcpy(data, bytes, n);
  }
};
static_assert(std::is_trivially_copyable_v<ShardMsg>);
static_assert(sizeof(ShardMsg) <= 160);

/// The directed channel: ring + metadata. The published-clock atomic the
/// receiver combines with `latency_ns` lives on the *sending cell* (one
/// clock serves all of its outbound channels), so the channel itself is
/// plain data plus the ring.
struct ShardChannel {
  ShardChannel(std::uint32_t src_cell, std::uint32_t dst_cell,
               std::int64_t latency, std::size_t capacity)
      : src(src_cell), dst(dst_cell), latency_ns(latency), ring(capacity) {}

  std::uint32_t src;
  std::uint32_t dst;
  std::int64_t latency_ns;  ///< minimum delivery delay; must be > 0
  SpscRing<ShardMsg> ring;
};

}  // namespace steelnet::sim
