// steelnet::sim -- deterministic random number generation.
//
// We do not use <random>'s engines/distributions for simulation state:
// their algorithms differ across standard libraries, which would break
// golden-trace tests. All algorithms here are fixed and self-contained.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace steelnet::sim {

/// SplitMix64 -- used for seeding derived streams.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 -- the workhorse generator.
///
/// Each simulation component takes its own Rng stream (derived via
/// Rng::fork or Rng::derive) so adding a component never perturbs the
/// random sequence seen by the others.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();
  double normal(double mean, double stddev);
  double lognormal(double mu, double sigma);
  double exponential(double rate);
  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy tail).
  double pareto(double xm, double alpha);
  /// Draws an index in [0, weights.size()) proportional to weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// A new independent stream seeded from this one.
  Rng fork();
  /// A new stream deterministically derived from a label -- the same
  /// (seed, label) pair always yields the same stream, regardless of how
  /// many draws the parent has made.
  [[nodiscard]] Rng derive(std::string_view label) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace steelnet::sim
