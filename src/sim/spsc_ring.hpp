// steelnet::sim -- a bounded lock-free single-producer/single-consumer
// ring.
//
// The cross-shard counterpart of RingQueue: where RingQueue is the
// single-threaded growable FIFO of the egress path, SpscRing is the
// fixed-capacity wait-free channel buffer between two worker threads of
// the sharded kernel. One thread pushes, one thread pops; the only shared
// state is two cache-line-separated atomic cursors with acquire/release
// pairing, so a popped element is always fully visible to the consumer.
//
// Capacity is fixed (rounded up to a power of two) because a growable
// buffer cannot be resized lock-free; the sharded kernel treats a full
// ring as backpressure (the producer drains its own inbound rings and
// retries), never as loss.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace steelnet::sim {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024)
      : buf_(round_up_pow2(capacity)), mask_(buf_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buf_.size()) {
      return false;
    }
    buf_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Rvalue producer side: moves instead of copying. The fullness check
  /// runs *before* the move, so a false return leaves `value` intact --
  /// which is what lets the sharded kernel's backpressure loop retry the
  /// same message. Same acquire/release protocol as the copy overload.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == buf_.size()) {
      return false;
    }
    buf_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == head) return false;
    out = std::move(buf_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Batched consumer side: moves up to `max` elements into `out` and
  /// returns the count (0 when empty). One acquire load of the producer
  /// cursor and one release store of the consumer cursor cover the whole
  /// batch -- the amortization the sharded kernel's drain loop relies on,
  /// where per-message try_pop pays a cross-core cursor round-trip each.
  /// A partial batch (count < max) means the ring was empty at the
  /// snapshot; elements pushed during the batch surface on the next call,
  /// exactly as they would across two try_pop calls.
  std::size_t try_pop_n(T* out, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t avail =
        tail_.load(std::memory_order_acquire) - head;
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(avail, max));
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(buf_[(head + i) & mask_]);
    }
    if (n != 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Racy size estimate -- exact only when both sides are quiescent
  /// (which is when the sharded kernel reads it, after the join).
  [[nodiscard]] std::size_t size_approx() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
};

}  // namespace steelnet::sim
