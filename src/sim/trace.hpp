// steelnet::sim -- structured trace recording for golden tests and debugging.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::sim {

/// Append-only recorder of (time, key, value) triples.
///
/// Components emit trace records on interesting transitions; golden tests
/// assert byte-identical traces for identical seeds, which is how the
/// determinism guarantee is enforced.
class Trace {
 public:
  struct Record {
    SimTime time;
    std::string key;
    std::string value;
  };

  void emit(SimTime time, std::string key, std::string value);

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  /// Records whose key matches exactly.
  [[nodiscard]] std::vector<Record> filter(const std::string& key) const;

  /// Renders "time_ns,key,value" lines. Stable across platforms.
  [[nodiscard]] std::string to_csv() const;
  void write_csv(std::ostream& os) const;

  /// FNV-1a hash of the CSV form -- a compact fingerprint for golden tests.
  [[nodiscard]] std::uint64_t fingerprint() const;

  void clear() { records_.clear(); }

 private:
  std::vector<Record> records_;
};

}  // namespace steelnet::sim
