// Cell -> shard placement strategies for the sharded PDES kernel.
//
// A Partitioner maps per-cell weights to shard ids. Placement decides
// wall-clock only, never simulation results: the kernel's determinism
// contract (per-cell fire order a pure function of initial state + own
// RNG + totally ordered inbound messages) holds for *any* assignment,
// so strategies are free to chase balance. Two strategies ship:
//
//   * PrefixQuotaPartitioner -- the static contiguous walk the kernel
//     has always used; cheap, cache-friendly groups, assumes declared
//     weights are honest.
//   * LptPartitioner -- longest-processing-time greedy bin-pack over
//     *measured* per-cell rates (see RateProfile); the profile-guided
//     strategy for skewed floors. Tie-break rule: an all-equal profile
//     reproduces the prefix-quota assignment exactly, so calibration
//     noise-free uniform floors cannot churn placements.
//
// Everything here is deterministic: same inputs, same assignment, on
// every platform. Randomness, clocks, and iteration-order dependence
// are all banned.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace steelnet::sim {

enum class PartitionErrorCode : std::uint8_t {
  kBadShardCount,    ///< assign() with shards == 0
  kBadAssignment,    ///< strategy returned an invalid cell->shard map
  kProfileMismatch,  ///< measured weights don't match the cell count
  kMalformedProfile, ///< RateProfile::parse on text that isn't a profile
};

[[nodiscard]] const char* to_string(PartitionErrorCode code);

class PartitionError : public SimError {
 public:
  PartitionError(PartitionErrorCode code, const std::string& what)
      : SimError(what), code_(code) {}
  [[nodiscard]] PartitionErrorCode code() const { return code_; }

 private:
  PartitionErrorCode code_;
};

/// Strategy interface. assign() returns one shard id per weight, with
/// every shard id in [0, min(shards, weights.size())) used at least
/// once. Implementations must be deterministic and side-effect free.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Throws PartitionError{kBadShardCount} when shards == 0. An empty
  /// weight vector yields an empty assignment. shards above the cell
  /// count clamps (trailing shards would be empty otherwise).
  [[nodiscard]] virtual std::vector<std::uint32_t> assign(
      const std::vector<std::uint64_t>& weights, std::size_t shards) const = 0;
};

/// Contiguous weighted walk: cell i joins shard s until the weight
/// prefix crosses quota (s+1)/shards of the total, with a must-advance
/// guard that keeps every later shard nonempty. Groups are contiguous
/// cell ranges -- friendly to topologies wired by index locality.
class PrefixQuotaPartitioner final : public Partitioner {
 public:
  [[nodiscard]] const char* name() const override { return "prefix"; }
  [[nodiscard]] std::vector<std::uint32_t> assign(
      const std::vector<std::uint64_t>& weights,
      std::size_t shards) const override;
};

/// Greedy LPT bin-pack over measured rates: cells sorted by (weight
/// desc, id asc), each assigned to the least-loaded shard (lowest id on
/// load ties). Zero weights are clamped to 1 so idle cells still count
/// as occupancy. When every weight is equal the measured profile says
/// nothing prefix-quota doesn't already know, so LPT delegates to it
/// verbatim -- the regression pin that keeps uniform floors stable.
class LptPartitioner final : public Partitioner {
 public:
  [[nodiscard]] const char* name() const override { return "measured"; }
  [[nodiscard]] std::vector<std::uint32_t> assign(
      const std::vector<std::uint64_t>& weights,
      std::size_t shards) const override;
};

/// Post-hoc balance report for an assignment under (possibly different)
/// weights -- e.g. judge a declared-weight partition by measured rates.
struct PartitionStats {
  std::vector<std::uint64_t> shard_load;  ///< summed weight per shard
  std::uint64_t total_load = 0;
  std::uint64_t max_load = 0;

  /// max-shard-load over mean-shard-load, in integer permille so the
  /// metric is bit-stable across platforms. 1000 = perfectly balanced;
  /// 2000 = the hottest shard carries twice the mean. 1000 when empty.
  [[nodiscard]] std::uint64_t imbalance_permille() const;
};

/// Throws PartitionError{kBadAssignment} on size mismatch. Shard count
/// is inferred as max(assignment)+1.
[[nodiscard]] PartitionStats partition_stats(
    const std::vector<std::uint64_t>& weights,
    const std::vector<std::uint32_t>& assignment);

/// Validates an assignment against the Partitioner contract (size,
/// range, no empty shard) -- the kernel runs this on whatever strategy
/// the caller plugged in before trusting it with worker threads.
void validate_assignment(const std::vector<std::uint32_t>& assignment,
                         std::size_t n_cells, std::size_t shards);

/// Measured per-cell load from a calibration run, the unit of the
/// `--profile-out` / `--profile-in` round-trip. Text format, one line
/// per cell after a fixed header (comments start with '#'):
///
///     # steelnet cell-rate profile v1
///     cell,events,msgs
///     cell_000,182403,5521
///
/// Cell order in the file is the kernel's cell-id order; the parser
/// preserves it. weights() folds each row to max(events + msgs, 1) --
/// the per-cell work estimate the LPT strategy packs by.
struct RateProfile {
  struct CellRate {
    std::string name;
    std::uint64_t events = 0;  ///< local simulator events executed
    std::uint64_t msgs = 0;    ///< cross-shard messages delivered
  };
  std::vector<CellRate> cells;

  [[nodiscard]] std::vector<std::uint64_t> weights() const;
  [[nodiscard]] std::string to_text() const;
  /// Throws PartitionError{kMalformedProfile} on anything that isn't a
  /// v1 profile: missing header, short rows, non-numeric counts.
  [[nodiscard]] static RateProfile parse(const std::string& text);
};

}  // namespace steelnet::sim
