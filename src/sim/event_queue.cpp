#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace steelnet::sim {

EventQueue::EventQueue()
    : gens_(std::make_shared<detail::EventGenerations>()) {}

void EventQueue::heap_push(Entry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

void EventQueue::release_slot(std::uint32_t slot) {
  slots_[slot].reset();
  free_slots_.push_back(slot);
}

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    gens_->gen.push_back(0);
  }
  const std::uint32_t gen = gens_->gen[slot];
  slots_[slot] = std::move(cb);
  heap_push(Entry{at, seq_++, slot, gen});
  return EventHandle{gens_, slot, gen};
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && entry_dead(heap_.front())) {
    release_slot(heap_.front().slot);
    ++reclaimed_cancelled_;
    heap_pop();
  }
}

bool EventQueue::pop_next(SimTime& time_out, Callback& cb_out) {
  drop_dead_front();
  if (heap_.empty()) return false;
  const Entry top = heap_.front();
  time_out = top.time;
  cb_out = std::move(slots_[top.slot]);
  // The event is fired the moment it is handed to the caller: outstanding
  // handles must stop reporting pending() and cancel() becomes a no-op.
  ++gens_->gen[top.slot];
  release_slot(top.slot);
  heap_pop();
  return true;
}

SimTime EventQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? SimTime::max() : heap_.front().time;
}

bool EventQueue::empty() {
  drop_dead_front();
  return heap_.empty();
}

void EventQueue::clear() {
  // Bump the generation of every live entry so outstanding handles do not
  // keep reporting pending() against an empty queue; already-cancelled
  // entries just get reclaimed.
  for (const Entry& e : heap_) {
    if (entry_dead(e)) {
      ++reclaimed_cancelled_;
    } else {
      ++gens_->gen[e.slot];
    }
    release_slot(e.slot);
  }
  heap_.clear();
}

}  // namespace steelnet::sim
