#include "sim/event_queue.hpp"

#include <utility>

namespace steelnet::sim {

EventHandle EventQueue::schedule(SimTime at, Callback cb) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{at, seq_++, std::move(cb), alive});
  return EventHandle{std::move(alive)};
}

void EventQueue::drop_dead_front() {
  while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
}

bool EventQueue::pop_next(SimTime& time_out, Callback& cb_out) {
  drop_dead_front();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via a
  // const_cast, which is safe because the entry is popped immediately.
  auto& top = const_cast<Entry&>(heap_.top());
  time_out = top.time;
  cb_out = std::move(top.cb);
  // The event is fired the moment it is handed to the caller: outstanding
  // handles must stop reporting pending() and cancel() becomes a no-op.
  *top.alive = false;
  heap_.pop();
  return true;
}

SimTime EventQueue::next_time() {
  drop_dead_front();
  return heap_.empty() ? SimTime::max() : heap_.top().time;
}

bool EventQueue::empty() {
  drop_dead_front();
  return heap_.empty();
}

void EventQueue::clear() {
  // Kill the liveness flag of every discarded entry so outstanding
  // handles do not keep reporting pending() against an empty queue.
  while (!heap_.empty()) {
    *heap_.top().alive = false;
    heap_.pop();
  }
}

}  // namespace steelnet::sim
