// steelnet::sim -- a growable circular FIFO.
//
// Replacement for std::deque in per-frame hot paths: libstdc++'s deque
// allocates/frees a block node roughly every ~512 bytes of throughput even
// at steady-state depth 0-1, which breaks the kernel's allocation-free
// guarantee. RingQueue keeps one contiguous power-of-two buffer that only
// grows (amortized doubling); steady-state push/pop never allocates.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace steelnet::sim {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() { return buf_[head_]; }
  [[nodiscard]] const T& front() const { return buf_[head_]; }

  void push_back(T value) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
    ++size_;
  }

  void pop_front() {
    buf_[head_] = T{};  // release resources held by the popped element
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? kInitialCapacity : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace steelnet::sim
