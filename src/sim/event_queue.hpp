// steelnet::sim -- the pending-event set of the discrete-event kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::sim {

/// Opaque handle used to cancel a scheduled event.
///
/// Cancellation is lazy: the event stays in the heap but is skipped when
/// popped. This keeps scheduling O(log n) with no heap surgery.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has not fired, been
  /// cancelled, or been discarded by EventQueue::clear() yet.
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

  void cancel() {
    if (alive_) *alive_ = false;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of (time, insertion-sequence) ordered callbacks.
///
/// Two events scheduled for the same instant fire in insertion order, which
/// makes simulations fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `at`. Returns a cancellable handle.
  EventHandle schedule(SimTime at, Callback cb);

  /// Pops the earliest live event. Returns false if the queue is empty
  /// (after discarding any cancelled events at the front).
  bool pop_next(SimTime& time_out, Callback& cb_out);

  /// Earliest live event time, or SimTime::max() when empty.
  [[nodiscard]] SimTime next_time();

  [[nodiscard]] bool empty();
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead_front();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace steelnet::sim
