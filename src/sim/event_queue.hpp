// steelnet::sim -- the pending-event set of the discrete-event kernel.
//
// Allocation-free after warm-up: callbacks live in a slab of
// generation-counted slots recycled through a free list, cancellation
// handles are {slot, generation} pairs (no per-event control block), and
// the binary heap orders 24-byte {time, seq, slot, generation} entries.
// The only allocations are amortized growth of the slab, the free list
// and the heap vector -- steady-state cyclic traffic schedules and fires
// without touching the heap allocator.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/time.hpp"

namespace steelnet::sim {

namespace detail {
/// Generation table shared between a queue and its outstanding handles
/// (one shared_ptr control block per *queue*, not per event). Handles
/// only ever read/bump generations, so they stay safe after the queue --
/// and its callback slab -- are gone.
struct EventGenerations {
  std::vector<std::uint32_t> gen;
  /// Successful handle cancellations (first cancel of a live event).
  std::uint64_t cancelled_total = 0;
};
}  // namespace detail

/// Opaque handle used to cancel a scheduled event.
///
/// Cancellation is lazy: the event's slot generation is bumped, the heap
/// entry stays in place and is reclaimed when popped. Scheduling stays
/// O(log n), cancel/pending are O(1), and no heap surgery ever happens.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the handle refers to an event that has not fired, been
  /// cancelled, or been discarded by EventQueue::clear() yet.
  [[nodiscard]] bool pending() const {
    return gens_ != nullptr && gens_->gen[slot_] == gen_;
  }

  void cancel() {
    // The generation guard makes double-cancel and cancel-after-fire
    // no-ops, and keeps a stale handle from killing a recycled slot's
    // next occupant.
    if (pending()) {
      ++gens_->gen[slot_];
      ++gens_->cancelled_total;
    }
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<detail::EventGenerations> gens,
              std::uint32_t slot, std::uint32_t gen)
      : gens_(std::move(gens)), slot_(slot), gen_(gen) {}

  std::shared_ptr<detail::EventGenerations> gens_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Min-heap of (time, insertion-sequence) ordered callbacks.
///
/// Two events scheduled for the same instant fire in insertion order, which
/// makes simulations fully deterministic.
class EventQueue {
 public:
  using Callback = InplaceFunction<kEventCallbackCapacity>;

  EventQueue();

  /// Schedules `cb` at absolute time `at`. Returns a cancellable handle.
  EventHandle schedule(SimTime at, Callback cb);

  /// Pops the earliest live event. Returns false if the queue is empty
  /// (after reclaiming any cancelled events at the front).
  bool pop_next(SimTime& time_out, Callback& cb_out);

  /// Earliest live event time, or SimTime::max() when empty.
  [[nodiscard]] SimTime next_time();

  [[nodiscard]] bool empty();

  /// Number of *live* (not-yet-fired, not-cancelled) events. Cancelled
  /// entries awaiting lazy reclamation are excluded.
  [[nodiscard]] std::size_t size() const { return live_size(); }
  [[nodiscard]] std::size_t live_size() const {
    return heap_.size() - dead_in_heap();
  }
  /// Heap entries including cancelled-but-unpopped ones.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  [[nodiscard]] std::uint64_t scheduled_total() const { return seq_; }
  /// Events cancelled through a handle over the queue's lifetime.
  [[nodiscard]] std::uint64_t cancelled_total() const {
    return gens_->cancelled_total;
  }
  /// Callback slots ever allocated. Stays flat once the working set is
  /// warm -- the recycling assertion the kernel benches pin.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  /// Min-heap order: std::push_heap builds a max-heap, so "greater" sorts
  /// the earliest (time, seq) to the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Cancelled entries still sitting in the heap.
  [[nodiscard]] std::size_t dead_in_heap() const {
    return static_cast<std::size_t>(gens_->cancelled_total -
                                    reclaimed_cancelled_);
  }

  [[nodiscard]] bool entry_dead(const Entry& e) const {
    return gens_->gen[e.slot] != e.gen;
  }

  void heap_push(Entry e);
  void heap_pop();
  /// Releases the popped entry's callback slot back to the free list.
  void release_slot(std::uint32_t slot);
  void drop_dead_front();

  std::vector<Entry> heap_;  ///< binary min-heap via std::push/pop_heap
  std::vector<Callback> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::shared_ptr<detail::EventGenerations> gens_;
  std::uint64_t seq_ = 0;
  std::uint64_t reclaimed_cancelled_ = 0;
};

}  // namespace steelnet::sim
