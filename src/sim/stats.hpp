// steelnet::sim -- online and batch statistics used by every experiment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::sim {

/// Welford online mean/variance plus min/max. O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One (x, P(X <= x)) point of an empirical CDF.
struct CdfPoint {
  double value;
  double cum_prob;
};

/// Stores every sample; supports exact percentiles and CDF extraction.
/// Use for experiment outputs (bounded sample counts), not hot paths.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Exact percentile by nearest-rank, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Empirical CDF downsampled to at most `max_points` points.
  [[nodiscard]] std::vector<CdfPoint> cdf(std::size_t max_points = 200) const;

  /// Mean absolute successive difference -- the "jitter" metric used in
  /// the paper's Fig. 4 (cycle-to-cycle variation).
  [[nodiscard]] double mean_successive_jitter() const;
  /// Per-sample |x_i - x_{i-1}| series (one shorter than the input).
  [[nodiscard]] std::vector<double> successive_differences() const;

  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge bins. O(1) insert, O(bins) memory.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  /// Approximate percentile from bin midpoints (nearest-rank; p in
  /// [0, 100], else std::invalid_argument). p=0 is the first occupied
  /// bin, p=100 the last. Throws std::logic_error when empty.
  [[nodiscard]] double percentile(double p) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Bins event timestamps into fixed windows -- used for "packets per 50 ms"
/// time series (Fig. 5).
class TimeSeriesBinner {
 public:
  explicit TimeSeriesBinner(SimTime bin_width);

  void record(SimTime at, double weight = 1.0);

  struct Bin {
    SimTime start;
    double value;
  };
  /// All bins from t=0 through the last recorded event (gaps are zero).
  [[nodiscard]] std::vector<Bin> bins() const;
  [[nodiscard]] SimTime bin_width() const { return width_; }
  [[nodiscard]] double total() const { return total_; }

 private:
  SimTime width_;
  std::vector<double> values_;
  double total_ = 0.0;
};

/// Longest run of consecutive `true` flags -- used for "consecutive jitter
/// events" / watchdog analysis (§2.1).
[[nodiscard]] std::size_t longest_true_run(const std::vector<bool>& flags);

}  // namespace steelnet::sim
