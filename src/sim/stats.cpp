#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace steelnet::sim {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ += delta * static_cast<double>(o.n_) / n;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty SampleSet");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  ensure_sorted();
  // Nearest-rank.
  const auto n = sorted_.size();
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * double(n)));
  if (rank > 0) --rank;
  if (rank >= n) rank = n - 1;
  return sorted_[rank];
}

std::vector<CdfPoint> SampleSet::cdf(std::size_t max_points) const {
  ensure_sorted();
  std::vector<CdfPoint> out;
  const auto n = sorted_.size();
  if (n == 0) return out;
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.push_back({sorted_[i], double(i + 1) / double(n)});
  }
  if (out.back().value != sorted_.back() || out.back().cum_prob != 1.0) {
    out.push_back({sorted_.back(), 1.0});
  }
  return out;
}

std::vector<double> SampleSet::successive_differences() const {
  std::vector<double> d;
  if (samples_.size() < 2) return d;
  d.reserve(samples_.size() - 1);
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    d.push_back(std::abs(samples_[i] - samples_[i - 1]));
  }
  return d;
}

double SampleSet::mean_successive_jitter() const {
  const auto d = successive_differences();
  if (d.empty()) return 0.0;
  double s = 0;
  for (double x : d) s += x;
  return s / static_cast<double>(d.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || hi <= lo) throw std::invalid_argument("Histogram: bad range");
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }
double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::percentile(double p) const {
  if (total_ == 0) throw std::logic_error("percentile of empty Histogram");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  // Nearest-rank over bins; the max(1, ...) keeps p=0 pointing at the
  // first *occupied* bin (a target of 0 would match an empty leading bin).
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total_))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return bin_lo(i) + width_ / 2;
  }
  return bin_hi(counts_.size() - 1);
}

TimeSeriesBinner::TimeSeriesBinner(SimTime bin_width) : width_(bin_width) {
  if (bin_width <= SimTime::zero()) {
    throw std::invalid_argument("TimeSeriesBinner: bin width must be positive");
  }
}

void TimeSeriesBinner::record(SimTime at, double weight) {
  if (at < SimTime::zero()) {
    throw std::invalid_argument("TimeSeriesBinner: negative time");
  }
  const auto idx = static_cast<std::size_t>(at / width_);
  if (idx >= values_.size()) values_.resize(idx + 1, 0.0);
  values_[idx] += weight;
  total_ += weight;
}

std::vector<TimeSeriesBinner::Bin> TimeSeriesBinner::bins() const {
  std::vector<Bin> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.push_back({width_ * static_cast<std::int64_t>(i), values_[i]});
  }
  return out;
}

std::size_t longest_true_run(const std::vector<bool>& flags) {
  std::size_t best = 0, cur = 0;
  for (bool f : flags) {
    cur = f ? cur + 1 : 0;
    best = std::max(best, cur);
  }
  return best;
}

}  // namespace steelnet::sim
