#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace steelnet::sim {

std::string SimTime::to_string() const {
  char buf[48];
  const double a = std::abs(static_cast<double>(nanos_));
  if (a < 1e3) {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(nanos_));
  } else if (a < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3f us", static_cast<double>(nanos_) / 1e3);
  } else if (a < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3f ms", static_cast<double>(nanos_) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", static_cast<double>(nanos_) / 1e9);
  }
  return buf;
}

}  // namespace steelnet::sim
