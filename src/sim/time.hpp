// steelnet::sim -- simulated time.
//
// All simulation time is carried as a strongly typed nanosecond count.
// A strong type (rather than a bare int64_t) prevents accidentally mixing
// durations with unrelated integers (cycle counters, byte counts, ...).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace steelnet::sim {

/// A point in simulated time or a duration, in nanoseconds.
///
/// SimTime is a regular value type: copyable, comparable, hashable.
/// Arithmetic is closed over SimTime (time + duration = time); scaling by
/// an integral factor is provided for building schedules.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  [[nodiscard]] constexpr std::int64_t nanos() const { return nanos_; }
  [[nodiscard]] constexpr double micros() const {
    return static_cast<double>(nanos_) / 1e3;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    nanos_ += rhs.nanos_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    nanos_ -= rhs.nanos_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.nanos_ + b.nanos_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.nanos_ - b.nanos_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.nanos_ * k};
  }
  friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.nanos_ * k};
  }
  /// Integer division: how many whole `b` periods fit in `a`.
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.nanos_ / b.nanos_;
  }
  friend constexpr SimTime operator%(SimTime a, SimTime b) {
    return SimTime{a.nanos_ % b.nanos_};
  }

  /// Human-readable rendering with an adaptive unit, e.g. "1.500 ms".
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t nanos_ = 0;
};

constexpr SimTime nanoseconds(std::int64_t n) { return SimTime{n}; }
constexpr SimTime microseconds(std::int64_t n) { return SimTime{n * 1'000}; }
constexpr SimTime milliseconds(std::int64_t n) {
  return SimTime{n * 1'000'000};
}
constexpr SimTime seconds(std::int64_t n) { return SimTime{n * 1'000'000'000}; }

namespace literals {
constexpr SimTime operator""_ns(unsigned long long n) {
  return SimTime{static_cast<std::int64_t>(n)};
}
constexpr SimTime operator""_us(unsigned long long n) {
  return microseconds(static_cast<std::int64_t>(n));
}
constexpr SimTime operator""_ms(unsigned long long n) {
  return milliseconds(static_cast<std::int64_t>(n));
}
constexpr SimTime operator""_s(unsigned long long n) {
  return seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace steelnet::sim
