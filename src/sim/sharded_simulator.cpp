#include "sim/sharded_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace steelnet::sim {

namespace {
/// Thread-local view of the worker's own cell group, used to relieve
/// backpressure: a producer spinning on a full ring drains the rings of
/// the cells it owns, which is what breaks cyclic buffer-full deadlocks
/// (every spinning producer is somebody else's consumer).
thread_local const std::vector<ShardedSimulator::Cell*>* tl_group = nullptr;
}  // namespace

const char* to_string(ShardingErrorCode code) {
  switch (code) {
    case ShardingErrorCode::kZeroLookahead: return "zero-lookahead";
    case ShardingErrorCode::kSelfChannel: return "self-channel";
    case ShardingErrorCode::kDuplicateChannel: return "duplicate-channel";
    case ShardingErrorCode::kBadCell: return "bad-cell";
    case ShardingErrorCode::kNoChannel: return "no-channel";
    case ShardingErrorCode::kBadShardCount: return "bad-shard-count";
    case ShardingErrorCode::kAlreadyRan: return "already-ran";
    case ShardingErrorCode::kNoCells: return "no-cells";
  }
  return "unknown";
}

// --- Cell -------------------------------------------------------------------

void ShardedSimulator::Cell::send(std::uint32_t dst_cell,
                                  const ShardMsg& payload,
                                  SimTime extra_delay) {
  const auto it = out_by_dst_.find(dst_cell);
  if (it == out_by_dst_.end()) {
    throw ShardingError(ShardingErrorCode::kNoChannel,
                        "send: cell " + name_ + " has no channel to cell " +
                            std::to_string(dst_cell));
  }
  if (extra_delay < SimTime::zero()) {
    throw SimError("send: negative extra delay");
  }
  ShardChannel& ch = *it->second;
  ShardMsg msg = payload;
  msg.src_cell = id_;
  msg.seq = ++send_seq_;
  msg.send_ns = sim_.now().nanos();
  msg.deliver_ns = msg.send_ns + ch.latency_ns + extra_delay.nanos();
  ++msgs_sent_;
  owner_.route(ch, std::move(msg));
}

SimTime ShardedSimulator::Cell::latency_to(std::uint32_t dst_cell) const {
  const auto it = out_by_dst_.find(dst_cell);
  if (it == out_by_dst_.end()) {
    throw ShardingError(ShardingErrorCode::kNoChannel,
                        "latency_to: no channel to cell " +
                            std::to_string(dst_cell));
  }
  return SimTime{it->second->latency_ns};
}

SimTime ShardedSimulator::Cell::lookahead() const {
  SimTime min = SimTime::max();
  for (const ShardChannel* ch : inbound_) {
    min = std::min(min, SimTime{ch->latency_ns});
  }
  return min;
}

// --- construction -----------------------------------------------------------

std::uint32_t ShardedSimulator::add_cell(std::string name,
                                         std::uint64_t weight) {
  const auto id = static_cast<std::uint32_t>(cells_.size());
  cells_.emplace_back(new Cell(*this, id, std::move(name), weight));
  return id;
}

void ShardedSimulator::check_cell_id(std::uint32_t id) const {
  if (id >= cells_.size()) {
    throw ShardingError(ShardingErrorCode::kBadCell,
                        "cell id " + std::to_string(id) + " out of range");
  }
}

void ShardedSimulator::connect(std::uint32_t src, std::uint32_t dst,
                               SimTime min_latency, std::size_t capacity) {
  check_cell_id(src);
  check_cell_id(dst);
  if (src == dst) {
    throw ShardingError(ShardingErrorCode::kSelfChannel,
                        "connect: cell " + std::to_string(src) +
                            " cannot be channeled to itself");
  }
  if (min_latency <= SimTime::zero()) {
    // A zero (or negative) minimum latency would make the receiver's
    // lookahead window empty: in any cycle of such channels no cell could
    // ever prove an event safe, so the conservative protocol rejects the
    // topology up front instead of deadlocking at runtime.
    throw ShardingError(ShardingErrorCode::kZeroLookahead,
                        "connect: channel " + std::to_string(src) + "->" +
                            std::to_string(dst) +
                            " has zero lookahead (min latency " +
                            min_latency.to_string() + " must be > 0)");
  }
  if (cells_[src]->out_by_dst_.count(dst) != 0) {
    throw ShardingError(ShardingErrorCode::kDuplicateChannel,
                        "connect: duplicate channel " + std::to_string(src) +
                            "->" + std::to_string(dst));
  }
  channels_.push_back(std::make_unique<ShardChannel>(
      src, dst, min_latency.nanos(), capacity));
  ShardChannel* ch = channels_.back().get();
  cells_[src]->out_by_dst_.emplace(dst, ch);
  cells_[dst]->inbound_.push_back(ch);
}

ShardedSimulator::Cell& ShardedSimulator::cell(std::uint32_t id) {
  check_cell_id(id);
  return *cells_[id];
}

// --- partitioner ------------------------------------------------------------

std::vector<std::uint32_t> ShardedSimulator::partition(
    const std::vector<std::uint64_t>& weights, std::size_t shards) {
  // The algorithm lives in PrefixQuotaPartitioner now; this static
  // keeps the original signature and its ShardingError contract.
  if (shards == 0) {
    throw ShardingError(ShardingErrorCode::kBadShardCount,
                        "partition: shards must be >= 1");
  }
  return PrefixQuotaPartitioner{}.assign(weights, shards);
}

RateProfile ShardedSimulator::rate_profile() const {
  RateProfile profile;
  profile.cells.reserve(cells_.size());
  for (const auto& c : cells_) {
    profile.cells.push_back(
        {c->name_, c->sim_.events_executed(), c->msgs_delivered_});
  }
  return profile;
}

// --- engine -----------------------------------------------------------------

void ShardedSimulator::route(ShardChannel& channel, ShardMsg&& msg) {
  if (reference_mode_) {
    cells_[channel.dst]->staging_.push(std::move(msg));
    return;
  }
  while (!channel.ring.try_push(std::move(msg))) {
    // Backpressure: drain our own inbound rings while we wait, so a cycle
    // of full channels always has at least one draining consumer.
    push_spins_.fetch_add(1, std::memory_order_relaxed);
    if (tl_group != nullptr) {
      for (Cell* mine : *tl_group) drain_inbound(*mine);
    }
    std::this_thread::yield();
  }
}

bool ShardedSimulator::drain_inbound(Cell& c) {
  // Batched drain: one cursor round-trip per batch instead of per
  // message. A partial batch means the ring was empty at the snapshot --
  // anything pushed since lands next round, same as per-message pops.
  constexpr std::size_t kBatch = 16;
  bool any = false;
  ShardMsg buf[kBatch];
  for (ShardChannel* ch : c.inbound_) {
    std::size_t n;
    while ((n = ch->ring.try_pop_n(buf, kBatch)) != 0) {
      for (std::size_t i = 0; i < n; ++i) c.staging_.push(buf[i]);
      any = true;
      if (n < kBatch) break;
    }
  }
  return any;
}

bool ShardedSimulator::advance_cell(Cell& c, std::int64_t bound_ns) {
  bool any = false;
  while (true) {
    const SimTime local = c.sim_.next_event_time();
    const std::int64_t local_ns =
        local == SimTime::max() ? kForeverNs : local.nanos();
    const std::int64_t msg_ns =
        c.staging_.empty() ? kForeverNs : c.staging_.top().deliver_ns;
    const std::int64_t t = std::min(local_ns, msg_ns);
    if (t >= bound_ns) break;
    if (msg_ns <= local_ns) {
      // Deterministic tie-break: at equal timestamps, cross-shard
      // messages execute before local events (and among themselves in
      // (src_cell, seq) order). run_reference() applies the same rule.
      const ShardMsg msg = c.staging_.top();
      c.staging_.pop();
      c.sim_.advance_clock_to(SimTime{msg.deliver_ns});
      if (record_fire_log_) {
        c.fire_log_.push_back({msg.deliver_ns, 1, msg.src_cell, msg.seq});
      }
      ++c.msgs_delivered_;
      if (c.handler_) c.handler_(c, msg);
    } else {
      if (record_fire_log_) {
        c.fire_log_.push_back({local_ns, 0, c.id_, c.sim_.events_executed()});
      }
      c.sim_.step();
    }
    any = true;
  }
  return any;
}

bool ShardedSimulator::cell_round(Cell& c, std::int64_t horizon_ns) {
  // Order matters: snapshot the published clocks *before* draining the
  // rings. Any message not yet visible in a ring after the snapshot was
  // sent after its sender published the snapshotted bound, so its
  // delivery time is >= that bound + latency >= the LBTS we compute --
  // it cannot be needed below the window we are about to execute.
  //
  // Idle-neighbour fast path: the forever sentinel is absorbing (a done
  // cell never sends again, its published clock never moves back down),
  // so once every inbound sender has published it and one more drain has
  // emptied the rings, no message can ever arrive here again -- the
  // snapshot and drain become pure cache traffic and are skipped for the
  // rest of the run.
  std::int64_t lbts = kForeverNs;
  bool drained = false;
  if (!c.inbound_quiet_) {
    bool all_forever = true;
    for (const ShardChannel* ch : c.inbound_) {
      const std::int64_t pub =
          cells_[ch->src]->pub_.load(std::memory_order_acquire);
      if (pub < kForeverNs) all_forever = false;
      lbts = std::min(lbts, sat_add(pub, ch->latency_ns));
    }
    drained = drain_inbound(c);
    if (all_forever) c.inbound_quiet_ = true;
  } else {
    fast_skips_.fetch_add(1, std::memory_order_relaxed);
  }
  if (c.done_) return drained;

  const std::int64_t bound = std::min(lbts, sat_add(horizon_ns, 1));
  const bool executed = advance_cell(c, bound);

  const SimTime local = c.sim_.next_event_time();
  const std::int64_t local_ns =
      local == SimTime::max() ? kForeverNs : local.nanos();
  const std::int64_t msg_ns =
      c.staging_.empty() ? kForeverNs : c.staging_.top().deliver_ns;

  if (lbts > horizon_ns && local_ns > horizon_ns && msg_ns > horizon_ns) {
    // Nothing at or below the horizon can still execute here or arrive
    // from a neighbor: this cell is finished. Publish "never sends again"
    // so downstream LBTS windows open all the way.
    c.done_ = true;
    c.pub_shadow_ = kForeverNs;
    ++c.publishes_;
    c.pub_.store(kForeverNs, std::memory_order_release);
    return drained || executed;
  }

  // The null message: everything this cell might still send originates
  // from its next local event, its next staged message, or a message yet
  // to arrive (no earlier than LBTS). Monotone by construction. The store
  // is coalesced onto frontier advances: pub_shadow_ is the owner
  // thread's copy of the last published value, so an unchanged frontier
  // costs no atomic op at all. Receivers then read a possibly stale but
  // still monotone lower bound -- their LBTS can only be tighter than the
  // truth, never looser, which is the safe direction.
  const std::int64_t lb = std::min({local_ns, msg_ns, lbts});
  if (lb > c.pub_shadow_) {
    c.pub_shadow_ = lb;
    ++c.publishes_;
    c.pub_.store(lb, std::memory_order_release);
  }
  return drained || executed;
}

void ShardedSimulator::worker(const std::vector<Cell*>& group,
                              std::int64_t horizon_ns, std::size_t n_shards) {
  tl_group = &group;
  bool reported = false;
  try {
    while (!done_flag_.load(std::memory_order_acquire)) {
      bool progress = false;
      bool all_done = true;
      for (Cell* c : group) {
        progress |= cell_round(*c, horizon_ns);
        all_done &= c->done_;
      }
      rounds_.fetch_add(1, std::memory_order_relaxed);
      if (all_done && !reported) {
        reported = true;
        if (done_shards_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            n_shards) {
          done_flag_.store(true, std::memory_order_release);
        }
      }
      // Keep draining after this shard finished: neighbors may still push
      // beyond-horizon messages, and a full ring would stall them.
      if (!progress) std::this_thread::yield();
    }
  } catch (const std::exception& e) {
    {
      const std::lock_guard<std::mutex> lock(failure_mu_);
      if (!failed_.load(std::memory_order_relaxed)) failure_ = e.what();
    }
    failed_.store(true, std::memory_order_release);
    done_flag_.store(true, std::memory_order_release);
  }
  tl_group = nullptr;
}

ShardRunStats ShardedSimulator::run(SimTime horizon, std::size_t shards) {
  if (ran_) {
    throw ShardingError(ShardingErrorCode::kAlreadyRan,
                        "run: ShardedSimulator is one-shot");
  }
  if (shards == 0) {
    throw ShardingError(ShardingErrorCode::kBadShardCount,
                        "run: shards must be >= 1");
  }
  if (cells_.empty()) {
    throw ShardingError(ShardingErrorCode::kNoCells, "run: no cells");
  }
  ran_ = true;
  shards = std::min(shards, cells_.size());

  std::vector<std::uint64_t> weights;
  if (measured_weights_.empty()) {
    weights.reserve(cells_.size());
    for (const auto& c : cells_) weights.push_back(c->weight_);
  } else {
    if (measured_weights_.size() != cells_.size()) {
      throw PartitionError(PartitionErrorCode::kProfileMismatch,
                           "run: " + std::to_string(measured_weights_.size()) +
                               " measured weights for " +
                               std::to_string(cells_.size()) + " cells");
    }
    weights = measured_weights_;
  }
  static const PrefixQuotaPartitioner kDefaultPartitioner;
  const Partitioner& strategy =
      partitioner_ != nullptr ? *partitioner_ : kDefaultPartitioner;
  partition_map_ = strategy.assign(weights, shards);
  validate_assignment(partition_map_, cells_.size(), shards);

  std::vector<std::vector<Cell*>> groups(shards);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    groups[partition_map_[i]].push_back(cells_[i].get());
  }

  const std::int64_t horizon_ns = horizon.nanos();
  const auto wall_start = std::chrono::steady_clock::now();

  if (shards == 1) {
    // Inline, no threads -- the same conservative engine, so artifacts
    // are identical to any threaded shard count by construction.
    worker(groups[0], horizon_ns, 1);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(shards - 1);
    for (std::size_t s = 1; s < shards; ++s) {
      pool.emplace_back([this, &groups, s, horizon_ns, shards] {
        worker(groups[s], horizon_ns, shards);
      });
    }
    worker(groups[0], horizon_ns, shards);
    for (std::thread& t : pool) t.join();
  }

  const auto wall_end = std::chrono::steady_clock::now();
  if (failed_.load(std::memory_order_acquire)) {
    throw SimError("sharded run failed: " + failure_);
  }

  // Quiescent now: drain ring leftovers (beyond-horizon traffic) so the
  // accounting is exact and deterministic.
  ShardRunStats stats;
  stats.shards = shards;
  for (auto& c : cells_) {
    drain_inbound(*c);
    while (!c->staging_.empty()) {
      ++c->beyond_horizon_;
      c->staging_.pop();
    }
    stats.events += c->sim_.events_executed();
    stats.msgs_delivered += c->msgs_delivered_;
    stats.msgs_sent += c->msgs_sent_;
    stats.beyond_horizon += c->beyond_horizon_;
    stats.clock_publishes += c->publishes_;
  }
  stats.rounds = rounds_.load(std::memory_order_relaxed);
  stats.push_spins = push_spins_.load(std::memory_order_relaxed);
  stats.fast_skips = fast_skips_.load(std::memory_order_relaxed);
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return stats;
}

ShardRunStats ShardedSimulator::run_reference(SimTime horizon) {
  if (ran_) {
    throw ShardingError(ShardingErrorCode::kAlreadyRan,
                        "run_reference: ShardedSimulator is one-shot");
  }
  if (cells_.empty()) {
    throw ShardingError(ShardingErrorCode::kNoCells, "run_reference: no cells");
  }
  ran_ = true;
  reference_mode_ = true;
  const std::int64_t horizon_ns = horizon.nanos();
  const auto wall_start = std::chrono::steady_clock::now();

  // Globally ordered execution: always the earliest next action across
  // all cells; ties across cells break toward the lower cell id (cells
  // cannot interact at equal times -- every channel has latency >= 1 ns
  // -- so this tie-break is cosmetic, not causal).
  while (true) {
    Cell* best = nullptr;
    std::int64_t best_t = kForeverNs;
    for (auto& c : cells_) {
      const SimTime local = c->sim_.next_event_time();
      const std::int64_t local_ns =
          local == SimTime::max() ? kForeverNs : local.nanos();
      const std::int64_t msg_ns =
          c->staging_.empty() ? kForeverNs : c->staging_.top().deliver_ns;
      const std::int64_t t = std::min(local_ns, msg_ns);
      if (t < best_t) {
        best_t = t;
        best = c.get();
      }
    }
    if (best == nullptr || best_t > horizon_ns) break;
    advance_cell(*best, best_t + 1);
  }

  const auto wall_end = std::chrono::steady_clock::now();
  ShardRunStats stats;
  stats.shards = 1;
  for (auto& c : cells_) {
    while (!c->staging_.empty()) {
      ++c->beyond_horizon_;
      c->staging_.pop();
    }
    stats.events += c->sim_.events_executed();
    stats.msgs_delivered += c->msgs_delivered_;
    stats.msgs_sent += c->msgs_sent_;
    stats.beyond_horizon += c->beyond_horizon_;
  }
  stats.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return stats;
}

}  // namespace steelnet::sim
