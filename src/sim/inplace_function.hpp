// steelnet::sim -- a move-only callable with fixed inline storage.
//
// The event kernel's replacement for std::function<void()>: every capture
// set is stored inside the object itself, so scheduling an event never
// touches the heap. Oversized captures are a compile error (static_assert),
// not a silent heap fallback -- the kernel's allocation-free guarantee is
// enforced at build time. See DESIGN.md "Event kernel" for the capture
// budget and how it was sized.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace steelnet::sim {

/// Inline capture budget of the event kernel, in bytes. Sized to fit the
/// largest closure the kernel itself schedules: a frame-delivery
/// continuation capturing a net::Frame (~80 bytes) plus routing metadata.
/// Two cache lines; every schedule() moves at most this much.
inline constexpr std::size_t kEventCallbackCapacity = 128;

/// A move-only `void()` callable with `Capacity` bytes of inline storage.
///
/// Unlike std::function there is no small-buffer *optimization* -- inline
/// storage is the only storage. Assigning a callable whose size or
/// alignment exceeds the budget fails to compile, and the callable's move
/// constructor must be noexcept (moves happen during slab growth).
template <std::size_t Capacity,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "InplaceFunction target must be callable as void()");
    static_assert(sizeof(D) <= Capacity,
                  "callback captures exceed the event kernel's inline "
                  "budget (kEventCallbackCapacity); shrink the capture set "
                  "or raise the budget in inplace_function.hpp");
    static_assert(alignof(D) <= Align,
                  "callback captures over-aligned for the event kernel");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callback captures must be nothrow-move-constructible");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    ops_ = &kOpsFor<D>;
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    /// Move-constructs the target into `dst` from `src`, then destroys
    /// the moved-from source (a destructive move, i.e. relocation).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename D>
  static constexpr Ops kOpsFor{
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) { static_cast<D*>(self)->~D(); },
  };

  const Ops* ops_ = nullptr;
  alignas(Align) unsigned char storage_[Capacity];
};

}  // namespace steelnet::sim
