// steelnet::sim -- a hierarchical timing wheel.
//
// The classic kernel-style timer structure: four levels of 64 slots, each
// level covering 64x the span of the one below, with timers cascading down
// as time approaches their deadline. arm / cancel / re-cookie are O(1);
// advance() is amortized O(1) per fired timer plus O(ticks crossed), so a
// cache holding millions of deadlines pays per *expiry*, never per live
// entry -- the property flowmon's plant-scale FlowCache needs (ROADMAP
// item 2, after the expire_*_entries idiom of ipfix-wrt's LInEx flow sets,
// indexed instead of scanned).
//
// Determinism: the wheel is a plain data structure (no clock, no RNG).
// Timers fire in tick order; within one tick, in arm order (FIFO). A
// deadline is mapped to the tick floor(deadline / tick_width), so a timer
// can fire up to one tick *early* but never late -- callers re-check the
// real deadline and re-arm (lazy evaluation), which is what keeps
// wheel-driven expiry byte-identical to a full scan at the same sweep
// times (see FlowCache).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace steelnet::sim {

class TimerWheel {
 public:
  using TimerId = std::uint32_t;
  static constexpr TimerId kInvalidTimer = 0xffff'ffffu;

  /// `tick` is the wheel granularity (> 0). Deadlines are bucketed into
  /// ticks of this width starting at `origin`.
  explicit TimerWheel(SimTime tick, SimTime origin = SimTime::zero());

  /// Arms a timer for `deadline` carrying `cookie`. Deadlines at or
  /// before the current tick are clamped to the next tick (a timer never
  /// fires inside advance() of the tick it was armed in). O(1).
  TimerId arm(SimTime deadline, std::uint64_t cookie);

  /// Disarms a live timer. The id is invalid afterwards (and may be
  /// recycled by a later arm). O(1).
  void cancel(TimerId id);

  /// Rebinds a live timer's cookie (e.g. a flow record moved to another
  /// cache slot under compaction). O(1).
  void set_cookie(TimerId id, std::uint64_t cookie);

  /// Advances the wheel to `now`, appending the cookie of every timer
  /// whose tick has been reached to `due` (tick order, FIFO within a
  /// tick). Fired timers are freed; their ids become invalid.
  void advance(SimTime now, std::vector<std::uint64_t>& due);

  [[nodiscard]] std::size_t armed() const { return armed_; }
  [[nodiscard]] SimTime tick() const { return tick_; }
  /// Timers moved between levels by advance() -- a cost/behaviour probe.
  [[nodiscard]] std::uint64_t cascades() const { return cascades_; }

  /// Disarms everything and rewinds to the origin tick.
  void clear();

 private:
  static constexpr std::size_t kSlotBits = 6;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 64
  static constexpr std::size_t kLevels = 4;
  /// Ticks covered by the whole wheel; deadlines beyond re-cascade from
  /// the top level as time catches up.
  static constexpr std::uint64_t kHorizon = std::uint64_t{1}
                                            << (kSlotBits * kLevels);

  struct Node {
    std::uint64_t tick = 0;  ///< absolute due tick
    std::uint64_t cookie = 0;
    std::uint32_t next = kInvalidTimer;
    std::uint32_t prev = kInvalidTimer;
    std::uint16_t slot = 0;  ///< level * kSlots + slot while armed
    bool live = false;
  };

  struct SlotList {
    std::uint32_t head = kInvalidTimer;
    std::uint32_t tail = kInvalidTimer;
  };

  [[nodiscard]] std::uint64_t tick_of(SimTime t) const {
    return static_cast<std::uint64_t>((t - origin_).nanos() / tick_.nanos());
  }
  std::uint32_t alloc_node();
  void place(std::uint32_t id);
  void unlink(std::uint32_t id);
  void append(std::uint16_t slot, std::uint32_t id);

  SimTime tick_;
  SimTime origin_;
  std::uint64_t cur_ = 0;  ///< last processed tick
  std::size_t armed_ = 0;
  std::uint64_t cascades_ = 0;
  SlotList slots_[kLevels * kSlots];
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kInvalidTimer;
};

}  // namespace steelnet::sim
