#include "sim/random.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace steelnet::sim {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
/// FNV-1a over a label, for derive().
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  SplitMix64 sm{seed};
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("exponential: rate <= 0");
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0 || alpha <= 0) throw std::invalid_argument("pareto: bad params");
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("categorical: zero total weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;  // floating-point slack
}

Rng Rng::fork() { return Rng{next_u64()}; }

Rng Rng::derive(std::string_view label) const {
  SplitMix64 sm{seed_ ^ fnv1a(label)};
  return Rng{sm.next()};
}

}  // namespace steelnet::sim
